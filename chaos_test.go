package sparseap_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sparseap"
	"sparseap/internal/workloads"
)

// chaosKills fires an injected crash each time the chaos-hook poll count
// crosses one of the thresholds in at; the counter spans resumes.
type chaosKills struct {
	checks int64
	at     []int64
	next   int
}

func (k *chaosKills) hook(pos int64) bool {
	k.checks++
	if k.next < len(k.at) && k.checks >= k.at[k.next] {
		k.next++
		return true
	}
	return false
}

// soakApp builds one suite application at chaos-soak scale.
func soakApp(t *testing.T, abbr string) (*workloads.App, *sparseap.Engine, *sparseap.Partition) {
	t.Helper()
	app, err := workloads.Build(abbr, workloads.Config{Divisor: 64, InputLen: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sparseap.DefaultAPConfig()
	cfg.Capacity = 375 // half-core scaled by the divisor
	eng := sparseap.NewEngine(cfg)
	n := len(app.Input) / 100
	if n < 2 {
		n = 2
	}
	p, err := eng.Partition(app.Net, app.Input[:n])
	if err != nil {
		t.Fatal(err)
	}
	return app, eng, p
}

func sameReports(a, b []sparseap.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosSoakBaseAPSpAP kills each suite application at five seeded
// points spread across its whole execution and resumes from the durable
// store every time. The final report stream must be bit-identical to the
// uninterrupted run's — no duplicates, no losses — and every kill point
// must actually fire.
func TestChaosSoakBaseAPSpAP(t *testing.T) {
	apps := []string{"HM", "Snort", "Fermi", "PEN", "TCP"}
	if testing.Short() {
		apps = apps[:2]
	}
	ctx := context.Background()
	for _, abbr := range apps {
		t.Run(abbr, func(t *testing.T) {
			app, eng, p := soakApp(t, abbr)
			want, err := eng.RunBaseAPSpAPContext(ctx, p, app.Input)
			if err != nil {
				t.Fatal(err)
			}
			// Probe pass counts chaos polls so the five kill thresholds
			// cover early, middle, and late execution.
			probe := &chaosKills{}
			if _, err := eng.RunBaseAPSpAPCheckpointed(ctx, p, app.Input,
				&sparseap.CheckpointRunner{CrashAt: probe.hook}); err != nil {
				t.Fatal(err)
			}
			kills := &chaosKills{}
			for i := 1; i <= 5; i++ {
				kills.at = append(kills.at, probe.checks*int64(2*i-1)/10)
			}
			store, err := sparseap.OpenCheckpointStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			var got *sparseap.ExecResult
			for attempt := 0; ; attempt++ {
				if attempt > len(kills.at)+2 {
					t.Fatalf("kill/resume loop did not converge after %d attempts", attempt)
				}
				ck := &sparseap.CheckpointRunner{Store: store, Name: "spap", Every: 256, CrashAt: kills.hook}
				got, err = eng.RunBaseAPSpAPCheckpointed(ctx, p, app.Input, ck)
				if err == nil {
					break
				}
				if !errors.Is(err, sparseap.ErrCrashInjected) {
					t.Fatalf("attempt %d: %v", attempt, err)
				}
			}
			if kills.next != len(kills.at) {
				t.Fatalf("only %d of %d kill points fired", kills.next, len(kills.at))
			}
			if !sameReports(got.Reports, want.Reports) {
				t.Fatalf("resumed stream diverged: %d vs %d reports", len(got.Reports), len(want.Reports))
			}
			if got.NumReports != want.NumReports {
				t.Fatalf("NumReports = %d, want %d (duplicate or lost reports across resumes)",
					got.NumReports, want.NumReports)
			}
		})
	}
}

// TestChaosSoakGuarded runs the kill/resume soak through the guarded
// executor, whose ladder state (attempts, fallbacks) must also survive.
func TestChaosSoakGuarded(t *testing.T) {
	ctx := context.Background()
	app, eng, p := soakApp(t, "HM")
	g := sparseap.DefaultGuard()
	want, err := eng.RunGuarded(ctx, p, app.Input, g)
	if err != nil {
		t.Fatal(err)
	}
	probe := &chaosKills{}
	if _, err := eng.RunGuardedCheckpointed(ctx, p, app.Input, g,
		&sparseap.CheckpointRunner{CrashAt: probe.hook}); err != nil {
		t.Fatal(err)
	}
	kills := &chaosKills{}
	for i := 1; i <= 5; i++ {
		kills.at = append(kills.at, probe.checks*int64(2*i-1)/10)
	}
	store, err := sparseap.OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var got *sparseap.ExecResult
	for attempt := 0; ; attempt++ {
		if attempt > len(kills.at)+2 {
			t.Fatalf("kill/resume loop did not converge after %d attempts", attempt)
		}
		ck := &sparseap.CheckpointRunner{Store: store, Name: "spap", Every: 256, CrashAt: kills.hook}
		got, err = eng.RunGuardedCheckpointed(ctx, p, app.Input, g, ck)
		if err == nil {
			break
		}
		if !errors.Is(err, sparseap.ErrCrashInjected) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
	}
	if !sameReports(got.Reports, want.Reports) {
		t.Fatalf("guarded resumed stream diverged: %d vs %d reports", len(got.Reports), len(want.Reports))
	}
	if (got.Guard == nil) != (want.Guard == nil) {
		t.Fatalf("guard stats presence diverged")
	}
}

// TestChaosSoakBaselineWithCorruption soaks the baseline system and, on
// top of the kill/resume loop, corrupts the newest checkpoint slot after
// the first crash: recovery must come from the previous good slot and the
// stream must still match exactly.
func TestChaosSoakBaselineWithCorruption(t *testing.T) {
	ctx := context.Background()
	app, eng, _ := soakApp(t, "HM")
	want, _, err := eng.RunBaselineCheckpointed(ctx, app.Net, app.Input, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantReports := sparseap.Match(app.Net, app.Input)

	dir := t.TempDir()
	store, err := sparseap.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	kills := &chaosKills{at: []int64{900, 2100, 3300}}
	corrupted := false
	var got []sparseap.Report
	var res *sparseap.BaselineResult
	for attempt := 0; ; attempt++ {
		if attempt > len(kills.at)+2 {
			t.Fatalf("kill/resume loop did not converge after %d attempts", attempt)
		}
		ck := &sparseap.CheckpointRunner{Store: store, Name: "baseline", Every: 256, CrashAt: kills.hook}
		res, got, err = eng.RunBaselineCheckpointed(ctx, app.Net, app.Input, ck)
		if err == nil {
			break
		}
		if !errors.Is(err, sparseap.ErrCrashInjected) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if !corrupted {
			// Flip a byte in the newest slot; the next resume must fall
			// back to the rotated previous checkpoint.
			path := filepath.Join(dir, "baseline.ckpt")
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			b[len(b)-1] ^= 0xff
			if werr := os.WriteFile(path, b, 0o644); werr != nil {
				t.Fatal(werr)
			}
			corrupted = true
		}
	}
	if res.Batches != want.Batches || res.Reports != want.Reports {
		t.Fatalf("baseline result diverged: %+v vs %+v", res, want)
	}
	if !sameReports(got, wantReports) {
		t.Fatalf("baseline resumed stream diverged: %d vs %d reports", len(got), len(wantReports))
	}
}
