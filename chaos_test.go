package sparseap_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparseap"
	"sparseap/internal/workloads"
)

// chaosKills fires an injected crash each time the chaos-hook poll count
// crosses one of the thresholds in at; the counter spans resumes.
type chaosKills struct {
	checks int64
	at     []int64
	next   int
}

func (k *chaosKills) hook(pos int64) bool {
	k.checks++
	if k.next < len(k.at) && k.checks >= k.at[k.next] {
		k.next++
		return true
	}
	return false
}

// soakApp builds one suite application at chaos-soak scale.
func soakApp(t *testing.T, abbr string) (*workloads.App, *sparseap.Engine, *sparseap.Partition) {
	t.Helper()
	app, err := workloads.Build(abbr, workloads.Config{Divisor: 64, InputLen: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sparseap.DefaultAPConfig()
	cfg.Capacity = 375 // half-core scaled by the divisor
	eng := sparseap.NewEngine(cfg)
	n := len(app.Input) / 100
	if n < 2 {
		n = 2
	}
	p, err := eng.Partition(app.Net, app.Input[:n])
	if err != nil {
		t.Fatal(err)
	}
	return app, eng, p
}

func sameReports(a, b []sparseap.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosSoakBaseAPSpAP kills each suite application at five seeded
// points spread across its whole execution and resumes from the durable
// store every time. The final report stream must be bit-identical to the
// uninterrupted run's — no duplicates, no losses — and every kill point
// must actually fire.
func TestChaosSoakBaseAPSpAP(t *testing.T) {
	apps := []string{"HM", "Snort", "Fermi", "PEN", "TCP"}
	if testing.Short() {
		apps = apps[:2]
	}
	ctx := context.Background()
	for _, abbr := range apps {
		t.Run(abbr, func(t *testing.T) {
			app, eng, p := soakApp(t, abbr)
			want, err := eng.RunBaseAPSpAPContext(ctx, p, app.Input)
			if err != nil {
				t.Fatal(err)
			}
			// Probe pass counts chaos polls so the five kill thresholds
			// cover early, middle, and late execution.
			probe := &chaosKills{}
			if _, err := eng.RunBaseAPSpAPCheckpointed(ctx, p, app.Input,
				&sparseap.CheckpointRunner{CrashAt: probe.hook}); err != nil {
				t.Fatal(err)
			}
			kills := &chaosKills{}
			for i := 1; i <= 5; i++ {
				kills.at = append(kills.at, probe.checks*int64(2*i-1)/10)
			}
			store, err := sparseap.OpenCheckpointStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			var got *sparseap.ExecResult
			for attempt := 0; ; attempt++ {
				if attempt > len(kills.at)+2 {
					t.Fatalf("kill/resume loop did not converge after %d attempts", attempt)
				}
				ck := &sparseap.CheckpointRunner{Store: store, Name: "spap", Every: 256, CrashAt: kills.hook}
				got, err = eng.RunBaseAPSpAPCheckpointed(ctx, p, app.Input, ck)
				if err == nil {
					break
				}
				if !errors.Is(err, sparseap.ErrCrashInjected) {
					t.Fatalf("attempt %d: %v", attempt, err)
				}
			}
			if kills.next != len(kills.at) {
				t.Fatalf("only %d of %d kill points fired", kills.next, len(kills.at))
			}
			if !sameReports(got.Reports, want.Reports) {
				t.Fatalf("resumed stream diverged: %d vs %d reports", len(got.Reports), len(want.Reports))
			}
			if got.NumReports != want.NumReports {
				t.Fatalf("NumReports = %d, want %d (duplicate or lost reports across resumes)",
					got.NumReports, want.NumReports)
			}
		})
	}
}

// TestChaosSoakGuarded runs the kill/resume soak through the guarded
// executor, whose ladder state (attempts, fallbacks) must also survive.
func TestChaosSoakGuarded(t *testing.T) {
	ctx := context.Background()
	app, eng, p := soakApp(t, "HM")
	g := sparseap.DefaultGuard()
	want, err := eng.RunGuarded(ctx, p, app.Input, g)
	if err != nil {
		t.Fatal(err)
	}
	probe := &chaosKills{}
	if _, err := eng.RunGuardedCheckpointed(ctx, p, app.Input, g,
		&sparseap.CheckpointRunner{CrashAt: probe.hook}); err != nil {
		t.Fatal(err)
	}
	kills := &chaosKills{}
	for i := 1; i <= 5; i++ {
		kills.at = append(kills.at, probe.checks*int64(2*i-1)/10)
	}
	store, err := sparseap.OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var got *sparseap.ExecResult
	for attempt := 0; ; attempt++ {
		if attempt > len(kills.at)+2 {
			t.Fatalf("kill/resume loop did not converge after %d attempts", attempt)
		}
		ck := &sparseap.CheckpointRunner{Store: store, Name: "spap", Every: 256, CrashAt: kills.hook}
		got, err = eng.RunGuardedCheckpointed(ctx, p, app.Input, g, ck)
		if err == nil {
			break
		}
		if !errors.Is(err, sparseap.ErrCrashInjected) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
	}
	if !sameReports(got.Reports, want.Reports) {
		t.Fatalf("guarded resumed stream diverged: %d vs %d reports", len(got.Reports), len(want.Reports))
	}
	if (got.Guard == nil) != (want.Guard == nil) {
		t.Fatalf("guard stats presence diverged")
	}
}

// TestChaosSoakBaselineWithCorruption soaks the baseline system and, on
// top of the kill/resume loop, corrupts the newest checkpoint slot after
// the first crash: recovery must come from the previous good slot and the
// stream must still match exactly.
func TestChaosSoakBaselineWithCorruption(t *testing.T) {
	ctx := context.Background()
	app, eng, _ := soakApp(t, "HM")
	want, _, err := eng.RunBaselineCheckpointed(ctx, app.Net, app.Input, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantReports := sparseap.Match(app.Net, app.Input)

	dir := t.TempDir()
	store, err := sparseap.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	kills := &chaosKills{at: []int64{900, 2100, 3300}}
	corrupted := false
	var got []sparseap.Report
	var res *sparseap.BaselineResult
	for attempt := 0; ; attempt++ {
		if attempt > len(kills.at)+2 {
			t.Fatalf("kill/resume loop did not converge after %d attempts", attempt)
		}
		ck := &sparseap.CheckpointRunner{Store: store, Name: "baseline", Every: 256, CrashAt: kills.hook}
		res, got, err = eng.RunBaselineCheckpointed(ctx, app.Net, app.Input, ck)
		if err == nil {
			break
		}
		if !errors.Is(err, sparseap.ErrCrashInjected) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if !corrupted {
			// Flip a byte in the newest slot; the next resume must fall
			// back to the rotated previous checkpoint.
			path := filepath.Join(dir, "baseline.ckpt")
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			b[len(b)-1] ^= 0xff
			if werr := os.WriteFile(path, b, 0o644); werr != nil {
				t.Fatal(werr)
			}
			corrupted = true
		}
	}
	if res.Batches != want.Batches || res.Reports != want.Reports {
		t.Fatalf("baseline result diverged: %+v vs %+v", res, want)
	}
	if !sameReports(got, wantReports) {
		t.Fatalf("baseline resumed stream diverged: %d vs %d reports", len(got), len(wantReports))
	}
}

// serveChaosHarness is one in-process server generation over a shared
// checkpoint directory: aborting it and starting the next generation is
// the in-process stand-in for SIGKILL + restart (the out-of-process
// version, with a real SIGKILL, lives in scripts/serve_soak.sh).
type serveChaosHarness struct {
	t    *testing.T
	dir  string
	apps []*workloads.App
	cfg  workloads.Config

	mu  sync.Mutex
	s   *sparseap.MatchServer
	ts  *httptest.Server
	url atomic.Value
}

func newServeChaosHarness(t *testing.T, abbrs []string) *serveChaosHarness {
	t.Helper()
	h := &serveChaosHarness{t: t, dir: t.TempDir(),
		cfg: workloads.Config{Divisor: 64, InputLen: 131072}}
	for _, abbr := range abbrs {
		app, err := workloads.Build(abbr, h.cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.apps = append(h.apps, app)
	}
	h.start()
	return h
}

// start brings up the next server generation over the shared store.
func (h *serveChaosHarness) start() {
	h.t.Helper()
	store, err := sparseap.OpenCheckpointStore(h.dir)
	if err != nil {
		h.t.Fatal(err)
	}
	s := sparseap.NewMatchServer(sparseap.ServeConfig{Store: store, Every: 2048})
	for _, app := range h.apps {
		if err := s.AddApp(app.Abbr, app.Net, h.cfg.Fingerprint(app.Abbr)); err != nil {
			h.t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	h.t.Cleanup(ts.Close)
	h.mu.Lock()
	h.s, h.ts = s, ts
	h.mu.Unlock()
	h.url.Store(ts.URL)
}

// TestChaosServeKillResume is the serve chaos cell: three applications
// stream concurrently through the server, the server is killed twice
// mid-stream (crash semantics: no checkpoint on the way down) and
// restarted over the same store, and every resumed session must deliver
// a report stream bit-identical to an uninterrupted local run — no
// duplicates, no losses.
func TestChaosServeKillResume(t *testing.T) {
	abbrs := []string{"HM", "PEN", "TCP"}
	h := newServeChaosHarness(t, abbrs)

	type gen struct {
		s  *sparseap.MatchServer
		ts *httptest.Server
	}
	// Kill schedule: two kills while the streams are in flight.
	done := make(chan struct{})
	var kills int
	go func() {
		defer close(done)
		for _, delay := range []time.Duration{40 * time.Millisecond, 120 * time.Millisecond} {
			time.Sleep(delay)
			h.mu.Lock()
			old := gen{h.s, h.ts}
			h.mu.Unlock()
			h.start() // next generation over the same store
			old.s.Abort()
			old.ts.CloseClientConnections()
			kills++
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, len(h.apps))
	retries := new(atomic.Int64)
	for i, app := range h.apps {
		wg.Add(1)
		go func(i int, app *workloads.App) {
			defer wg.Done()
			cl := &sparseap.ServeClient{
				URL:    func() string { return h.url.Load().(string) },
				Tenant: fmt.Sprintf("tenant-%d", i),
				Chunk:  512,
				Pace:   300 * time.Microsecond, // stretch past both kills
			}
			res, err := cl.Stream(context.Background(), app.Abbr, app.Input)
			retries.Add(cl.Retries.Load())
			if err != nil {
				errs <- fmt.Errorf("%s: %w", app.Abbr, err)
				return
			}
			want := sparseap.Match(app.Net, app.Input)
			if !sameReports(res.Reports, want) {
				errs <- fmt.Errorf("%s: resumed stream diverged: %d vs %d reports",
					app.Abbr, len(res.Reports), len(want))
				return
			}
			errs <- nil
		}(i, app)
	}
	wg.Wait()
	<-done
	for range h.apps {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if kills != 2 {
		t.Fatalf("kill schedule fired %d of 2 kills", kills)
	}
	if retries.Load() == 0 {
		t.Fatal("no client ever retried — the kills missed every stream and the cell tested nothing")
	}
}

// TestChaosServeOverload drives the loadgen's overload phase against a
// deliberately tiny server: the server must shed explicitly (non-zero
// shed count) and never fail a request it accepted.
func TestChaosServeOverload(t *testing.T) {
	cfg := workloads.Config{Divisor: 64, InputLen: 65536}
	s := sparseap.NewMatchServer(sparseap.ServeConfig{MaxSessions: 2, MaxPerTenant: 1})
	app, err := workloads.Build("HM", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddApp("HM", app.Net, cfg.Fingerprint("HM")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bench, err := sparseap.RunServeLoadgen(context.Background(), sparseap.LoadgenOptions{
		URL:           ts.URL,
		Apps:          []string{"HM"},
		AppConfig:     cfg,
		StreamsPerApp: 1,
		Requests:      8,
		Overload:      48,
		Tenants:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bench.StreamsOK != bench.Streams {
		t.Fatalf("only %d/%d streams verified", bench.StreamsOK, bench.Streams)
	}
	if bench.OverloadShed == 0 {
		t.Fatalf("overload burst produced no sheds (accepted %d)", bench.OverloadOK)
	}
	if bench.FailedAccepted != 0 {
		t.Fatalf("%d accepted requests failed — admission control accepted work it could not serve", bench.FailedAccepted)
	}
	if bench.P50Ms <= 0 || bench.P99Ms < bench.P50Ms {
		t.Fatalf("latency percentiles malformed: p50=%.3f p99=%.3f", bench.P50Ms, bench.P99Ms)
	}
}

// TestChaosServeClusterFailover is the cluster chaos cell: node A
// replicates every committed checkpoint slot to follower B (ack quorum
// 1, so reports release only once B holds the covering slot), the
// client streams against A with B as a peer, and A is SIGKILLed
// (Abort + dropped connections) mid-stream and never comes back. The
// client must fail over to B, resume from the replicated slots, and
// assemble a report stream bit-identical to an uninterrupted local run
// — without ever restarting from scratch. The out-of-process version,
// with a real SIGKILL, lives in scripts/cluster_soak.sh.
func TestChaosServeClusterFailover(t *testing.T) {
	cfg := workloads.Config{Divisor: 64, InputLen: 131072}
	app, err := workloads.Build("HM", cfg)
	if err != nil {
		t.Fatal(err)
	}

	storeB, err := sparseap.OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sB := sparseap.NewMatchServer(sparseap.ServeConfig{Store: storeB, Every: 2048})
	if err := sB.AddApp("HM", app.Net, cfg.Fingerprint("HM")); err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(sB.Handler())
	defer tsB.Close()

	localA, err := sparseap.OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sA := sparseap.NewMatchServer(sparseap.ServeConfig{
		Store: sparseap.NewReplicatedStore(localA, sparseap.ReplicaOptions{
			Followers: []string{tsB.URL},
			Ack:       1,
		}),
		Every: 2048,
	})
	if err := sA.AddApp("HM", app.Net, cfg.Fingerprint("HM")); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA.Handler())
	defer tsA.Close()

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(40 * time.Millisecond)
		sA.Abort()
		tsA.CloseClientConnections()
	}()

	cl := &sparseap.ServeClient{
		URL:    func() string { return tsA.URL },
		Peers:  []string{tsB.URL},
		Tenant: "tenant-0",
		Chunk:  512,
		Pace:   300 * time.Microsecond, // stretch the stream past the kill
	}
	res, err := cl.Stream(context.Background(), "HM", app.Input)
	<-killed
	if err != nil {
		t.Fatal(err)
	}
	want := sparseap.Match(app.Net, app.Input)
	if !sameReports(res.Reports, want) {
		t.Fatalf("failed-over stream diverged: %d vs %d reports", len(res.Reports), len(want))
	}
	if cl.Retries.Load() == 0 {
		t.Fatal("no retry happened — the kill missed the stream and the cell tested nothing")
	}
	if cl.Failovers.Load() == 0 {
		t.Fatal("client never failed over to the follower")
	}
	if cl.Resumes.Load() == 0 {
		t.Fatal("client never resumed from the replicated slots")
	}
	if cl.Restarts.Load() != 0 {
		t.Fatalf("failover forced %d restarts; replication must make the resume seamless", cl.Restarts.Load())
	}
}

// TestChaosServeFailoverWithoutReplication is the degraded-mode
// contract: node A does NOT replicate (plain local store), dies
// permanently mid-stream, and the client fails over to peer B whose
// store has never heard of the session. The stream must still complete
// bit-identically — B reruns it from symbol 0 — and the degradation
// must be explicit: the client counts a forced restart, never silently
// splicing streams.
func TestChaosServeFailoverWithoutReplication(t *testing.T) {
	cfg := workloads.Config{Divisor: 64, InputLen: 131072}
	app, err := workloads.Build("HM", cfg)
	if err != nil {
		t.Fatal(err)
	}

	mk := func() (*sparseap.MatchServer, *httptest.Server) {
		store, err := sparseap.OpenCheckpointStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s := sparseap.NewMatchServer(sparseap.ServeConfig{Store: store, Every: 2048})
		if err := s.AddApp("HM", app.Net, cfg.Fingerprint("HM")); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return s, ts
	}
	sA, tsA := mk()
	_, tsB := mk()

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(40 * time.Millisecond)
		sA.Abort()
		tsA.CloseClientConnections()
	}()

	cl := &sparseap.ServeClient{
		URL:    func() string { return tsA.URL },
		Peers:  []string{tsB.URL},
		Tenant: "tenant-0",
		Chunk:  512,
		Pace:   300 * time.Microsecond,
	}
	res, err := cl.Stream(context.Background(), "HM", app.Input)
	<-killed
	if err != nil {
		t.Fatal(err)
	}
	want := sparseap.Match(app.Net, app.Input)
	if !sameReports(res.Reports, want) {
		t.Fatalf("restarted stream diverged: %d vs %d reports", len(res.Reports), len(want))
	}
	if cl.Retries.Load() == 0 {
		t.Fatal("no retry happened — the kill missed the stream and the cell tested nothing")
	}
	if cl.Restarts.Load() == 0 {
		t.Fatal("unreplicated node loss must surface as an explicit restart, not a silent splice")
	}
}
