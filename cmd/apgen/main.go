// Command apgen materializes the generated benchmark suite as ANML files
// plus raw input streams, so the workloads can be fed to other automata
// tools (VASim, MNCaRT, hardware compilers).
//
//	apgen -app Snort -o out/            # one application
//	apgen -all -o out/                  # all 26
//	apgen -all -opt -o out/             # all 26, minimized by the rewriter
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sparseap/internal/anml"
	"sparseap/internal/lint"
	"sparseap/internal/workloads"
)

func main() {
	var (
		appName  = flag.String("app", "", "application abbreviation")
		all      = flag.Bool("all", false, "emit every application")
		outDir   = flag.String("o", ".", "output directory")
		divisor  = flag.Int("divisor", 8, "scale divisor")
		inputLen = flag.Int("input", 131072, "input length")
		seed     = flag.Int64("seed", 1, "generation seed")
		noLint   = flag.Bool("nolint", false, "skip linting the emitted networks")
		strict   = flag.Bool("strict", false, "fail (exit 1) when the linter reports findings instead of warning")
		capacity = flag.Int("capacity", 3000, "half-core capacity for the lint capacity analyzer")
		opt      = flag.Bool("opt", false, "emit the minimized networks (proof-carrying rewriter) instead of the raw generated ones")
	)
	flag.Parse()
	cfg := workloads.Config{Divisor: *divisor, InputLen: *inputLen, Seed: *seed, Optimize: *opt}

	var names []string
	switch {
	case *all:
		names = workloads.Names()
	case *appName != "":
		names = []string{*appName}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	for _, name := range names {
		app, err := workloads.Build(name, cfg)
		if err != nil {
			fail(err)
		}
		// Lint every emitted network so downstream tools never ingest a
		// suspect automaton: warn by default, fail under -strict.
		if !*noLint {
			res := lint.Run(app.Net, lint.Options{Capacity: *capacity})
			if len(res.Diags) > 0 {
				fmt.Fprintf(os.Stderr, "apgen: lint %s: %s\n", name, res.Summary())
				for _, d := range res.Diags {
					fmt.Fprintf(os.Stderr, "  %s\n", d)
				}
				if *strict {
					fail(fmt.Errorf("apgen: %s has lint findings (rerun without -strict to emit anyway)", name))
				}
			}
		}
		anmlPath := filepath.Join(*outDir, name+".anml")
		f, err := os.Create(anmlPath)
		if err != nil {
			fail(err)
		}
		if err := anml.Write(f, app.Net, app.Name); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		inPath := filepath.Join(*outDir, name+".input")
		if err := os.WriteFile(inPath, app.Input, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("%s: %d states -> %s, %d bytes -> %s\n",
			name, app.Net.Len(), anmlPath, len(app.Input), inPath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
