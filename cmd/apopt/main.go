// Command apopt minimizes automata networks with the proof-carrying
// rewriter (internal/rewrite): semantically-unreachable and dead state
// elimination, symbol-empty edge pruning, subsumed-sibling folding, and
// capacity-guarded bisimulation merging including cross-NFA redundant
// start folding. The report stream is provably unchanged — every removal
// and merge carries a certificate that is machine-checked before it is
// applied, and -check re-verifies the full certificate chain afterwards.
//
//	apopt -anml rules.anml -o min.anml   # minimize an ANML file
//	apopt -anml rules.anml -diff         # dry run: per-NFA deltas only
//	apopt -app Snort -diff               # inspect one generated suite app
//	apopt -all                           # suite-wide savings table
//	apopt -all -o outdir/                # minimize the whole suite
//
// Exit status: 0 on success, 1 when -check fails, 2 on usage or I/O
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sparseap/internal/anml"
	"sparseap/internal/automata"
	"sparseap/internal/metrics"
	"sparseap/internal/rewrite"
	"sparseap/internal/symset"
	"sparseap/internal/workloads"
)

// optTarget is one network to minimize.
type optTarget struct {
	name string
	net  *automata.Network
}

// optReport is the per-target JSON payload.
type optReport struct {
	Name  string         `json:"name"`
	Stats *rewrite.Stats `json:"stats"`
	Out   string         `json:"out,omitempty"`
}

func main() {
	var (
		appName   = flag.String("app", "", "built-in application abbreviation")
		all       = flag.Bool("all", false, "minimize every generated application")
		anmlPath  = flag.String("anml", "", "ANML automaton file")
		outPath   = flag.String("o", "", "output: ANML path for one target, directory with -all ('-' = stdout; empty = dry run)")
		diffOnly  = flag.Bool("diff", false, "dry run: report per-NFA state/edge deltas without writing")
		alphaSpec = flag.String("alphabet", "", "assumed input alphabet as a symbol class (e.g. '[a-z0-9]'); empty = all 256 symbols")
		capacity  = flag.Int("capacity", rewrite.DefaultCapacity, "AP half-core capacity guarding cross-NFA merges (<0 = unguarded)")
		noMerge   = flag.Bool("nomerge", false, "disable state merging; only delete and prune")
		check     = flag.Bool("check", false, "re-verify the full certificate chain of the rewrite")
		jsonOut   = flag.Bool("json", false, "emit statistics as JSON")
		maxPer    = flag.Int("max", 20, "max changed NFAs listed per target in text mode (0 = unlimited)")
		divisor   = flag.Int("divisor", 8, "workload scale divisor (with -app/-all)")
		inputLen  = flag.Int("input", 131072, "generated input length (with -app/-all)")
		seed      = flag.Int64("seed", 1, "generation seed (with -app/-all)")
	)
	flag.Parse()

	ropts := rewrite.Options{Capacity: *capacity, NoMerge: *noMerge}
	if *alphaSpec != "" {
		a, err := symset.Parse(bracketed(*alphaSpec))
		if err != nil {
			fail(2, fmt.Errorf("-alphabet: %w", err))
		}
		ropts.Alphabet = a
	}
	targets, err := resolve(*appName, *all, *anmlPath,
		workloads.Config{Divisor: *divisor, InputLen: *inputLen, Seed: *seed})
	if err != nil {
		fail(2, err)
	}
	if *outPath != "" && *outPath != "-" && *all {
		if err := os.MkdirAll(*outPath, 0o755); err != nil {
			fail(2, err)
		}
	}

	var reports []optReport
	table := metrics.NewTable("App", "States", "Min", "Δ%", "Edges", "Min", "NFAs", "Min")
	for _, t := range targets {
		res, err := rewrite.Rewrite(t.net, ropts)
		if err != nil {
			fail(2, fmt.Errorf("%s: %w", t.name, err))
		}
		if *check {
			if err := res.Check(ropts.Alphabet); err != nil {
				fail(1, fmt.Errorf("%s: certificate check failed: %w", t.name, err))
			}
		}
		rep := optReport{Name: t.name, Stats: &res.Stats}
		if *outPath != "" && !*diffOnly {
			rep.Out, err = write(*outPath, t.name, res.Net, *all)
			if err != nil {
				fail(2, fmt.Errorf("%s: %w", t.name, err))
			}
		}
		reports = append(reports, rep)
		st := &res.Stats
		table.AddRowf(t.name, st.StatesBefore, st.StatesAfter, savings(st),
			st.EdgesBefore, st.EdgesAfter, st.NFAsBefore, st.NFAsAfter)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail(2, err)
		}
	case len(reports) > 1:
		fmt.Print(table)
	default:
		printOne(reports[0], *maxPer, *check)
	}
}

// printOne renders a single target's rewrite in detail.
func printOne(rep optReport, maxPer int, checked bool) {
	st := rep.Stats
	fmt.Printf("%s: states %d -> %d (%.1f%% saved), edges %d -> %d, NFAs %d -> %d, %d rounds\n",
		rep.Name, st.StatesBefore, st.StatesAfter, savings(st),
		st.EdgesBefore, st.EdgesAfter, st.NFAsBefore, st.NFAsAfter, st.Rounds)
	fmt.Printf("  %d unreachable, %d dead, %d subsumed, %d merged, %d starts folded, %d edges pruned\n",
		st.Unreachable, st.Dead, st.Subsumed, st.Merged, st.StartsFolded, st.EdgesPruned)
	if st.DemotedClasses > 0 {
		fmt.Printf("  %d merge classes demoted by the capacity guard\n", st.DemotedClasses)
	}
	shown := 0
	for _, d := range st.PerNFA {
		if d.StatesBefore == d.StatesAfter && d.EdgesBefore == d.EdgesAfter {
			continue
		}
		if maxPer > 0 && shown >= maxPer {
			fmt.Println("  … more changed NFAs (rerun with -max 0 to see all)")
			break
		}
		shown++
		fmt.Printf("  NFA %d: states %d -> %d, edges %d -> %d\n",
			d.NFA, d.StatesBefore, d.StatesAfter, d.EdgesBefore, d.EdgesAfter)
	}
	if checked {
		fmt.Println("  certificate chain verified")
	}
	if rep.Out != "" {
		fmt.Printf("  wrote %s\n", rep.Out)
	}
}

// savings is the percentage of states removed.
func savings(st *rewrite.Stats) float64 {
	if st.StatesBefore == 0 {
		return 0
	}
	return 100 * float64(st.StatesRemoved()) / float64(st.StatesBefore)
}

// write emits one minimized network: to stdout ("-"), to the named file,
// or — with -all — into the output directory as <name>.anml.
func write(outPath, name string, net *automata.Network, all bool) (string, error) {
	if outPath == "-" {
		return "", anml.Write(os.Stdout, net, name)
	}
	path := outPath
	if all {
		path = filepath.Join(outPath, name+".anml")
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := anml.Write(f, net, name); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// resolve builds the targets from the flag combination.
func resolve(appName string, all bool, anmlPath string, cfg workloads.Config) ([]optTarget, error) {
	switch {
	case all:
		apps, err := workloads.BuildAll(cfg)
		if err != nil {
			return nil, err
		}
		ts := make([]optTarget, len(apps))
		for i, a := range apps {
			ts[i] = optTarget{name: a.Abbr, net: a.Net}
		}
		return ts, nil
	case appName != "":
		a, err := workloads.Build(appName, cfg)
		if err != nil {
			return nil, err
		}
		return []optTarget{{name: a.Abbr, net: a.Net}}, nil
	case anmlPath != "":
		f, err := os.Open(anmlPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		net, err := anml.Read(f)
		if err != nil {
			return nil, err
		}
		return []optTarget{{name: strings.TrimSuffix(filepath.Base(anmlPath), ".anml"), net: net}}, nil
	}
	return nil, fmt.Errorf("need -app, -all or -anml (try: apopt -all)")
}

// bracketed wraps a bare multi-symbol class in [] so users can write
// -alphabet a-z as well as the full '[a-z]' symset syntax.
func bracketed(spec string) string {
	if spec == "*" || len(spec) == 1 || strings.HasPrefix(spec, "[") {
		return spec
	}
	if len(spec) == 2 && spec[0] == '\\' {
		return spec
	}
	return "[" + spec + "]"
}

func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "apopt:", err)
	os.Exit(code)
}
