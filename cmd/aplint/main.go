// Command aplint runs the static-analysis registry of internal/lint over
// automata networks — generated suite applications, ANML files from
// external tools, or compiled regexes — and reports structured diagnostics
// with stable codes (AP001…).
//
//	aplint -all                        # lint the generated 26-app suite
//	aplint -app Snort -partition 0.01  # one app, incl. partition analyzers
//	aplint -anml rules.anml            # ANML produced by another toolchain
//	aplint -regex 'err[0-9]{3}'        # compiled patterns (repeatable flag)
//	aplint -anml r.anml -diff          # dry-run the rewriter, show deltas
//	aplint -anml r.anml -fix -o m.anml # write the minimized network
//	aplint -list                       # catalogue every analyzer
//
// -enable/-disable filter by code or name, -json switches to machine
// output, -alphabet restricts the semantic analyzers (AP017…) and the
// rewriter to a symbol class. Exit status: 0 clean, 1 when any
// error-severity diagnostic was reported (with -strict: any warning or
// error), 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sparseap/internal/anml"
	"sparseap/internal/automata"
	"sparseap/internal/hotcold"
	"sparseap/internal/lint"
	"sparseap/internal/regexc"
	"sparseap/internal/rewrite"
	"sparseap/internal/symset"
	"sparseap/internal/workloads"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// target is one network to lint.
type target struct {
	name  string
	net   *automata.Network
	input []byte // profiling stream for -partition, when available
}

// report is the per-target JSON payload.
type report struct {
	Name      string            `json:"name"`
	States    int               `json:"states"`
	NFAs      int               `json:"nfas"`
	Diags     []lint.Diagnostic `json:"diagnostics"`
	Skipped   []string          `json:"skipped,omitempty"`
	Partition bool              `json:"partition,omitempty"`
	Rewrite   *rewrite.Stats    `json:"rewrite,omitempty"`
}

func main() {
	var (
		appName   = flag.String("app", "", "built-in application abbreviation")
		all       = flag.Bool("all", false, "lint every generated application")
		anmlPath  = flag.String("anml", "", "ANML automaton file")
		inPath    = flag.String("in", "", "input stream file (profiling source for -anml -partition)")
		regexes   multiFlag
		list      = flag.Bool("list", false, "list every registered analyzer and exit")
		jsonOut   = flag.Bool("json", false, "emit diagnostics as JSON")
		enable    = flag.String("enable", "", "comma-separated codes/names to run exclusively")
		disable   = flag.String("disable", "", "comma-separated codes/names to skip")
		capacity  = flag.Int("capacity", 3000, "AP half-core capacity for the capacity analyzer (0 disables)")
		partition = flag.Float64("partition", 0, "also build a hot/cold partition profiling this input fraction and run the partition analyzers")
		strict    = flag.Bool("strict", false, "exit non-zero on warnings, not only errors")
		alphaSpec = flag.String("alphabet", "", "assumed input alphabet as a symbol class (e.g. '[a-z0-9]'); empty = all 256 symbols")
		fix       = flag.Bool("fix", false, "apply the proof-carrying rewriter and write the minimized network as ANML (single target; see -o)")
		diffOnly  = flag.Bool("diff", false, "dry-run the rewriter and print per-NFA state/edge deltas without writing")
		outPath   = flag.String("o", "", "minimized-ANML output path for -fix (default stdout)")
		maxPer    = flag.Int("max", 20, "max diagnostics printed per code per target in text mode (0 = unlimited)")
		divisor   = flag.Int("divisor", 8, "workload scale divisor (with -app/-all)")
		inputLen  = flag.Int("input", 131072, "generated input length (with -app/-all)")
		seed      = flag.Int64("seed", 1, "generation seed (with -app/-all)")
	)
	flag.Var(&regexes, "regex", "pattern to compile and lint (repeatable)")
	flag.Parse()

	if *list {
		listAnalyzers()
		return
	}
	opts := lint.Options{
		Capacity: *capacity,
		Enable:   splitCodes(*enable),
		Disable:  splitCodes(*disable),
	}
	if *alphaSpec != "" {
		a, err := symset.Parse(bracketed(*alphaSpec))
		if err != nil {
			fmt.Fprintln(os.Stderr, "aplint: -alphabet:", err)
			os.Exit(2)
		}
		opts.Alphabet = a
	}
	// A typo'd filter would otherwise silently lint nothing and report
	// "clean"; reject anything that names no registered analyzer.
	for _, c := range append(append([]string(nil), opts.Enable...), opts.Disable...) {
		if !knownAnalyzer(c) {
			fmt.Fprintf(os.Stderr, "aplint: unknown analyzer %q (see aplint -list)\n", c)
			os.Exit(2)
		}
	}
	targets, err := resolve(*appName, *all, *anmlPath, *inPath, regexes,
		workloads.Config{Divisor: *divisor, InputLen: *inputLen, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aplint:", err)
		os.Exit(2)
	}

	if *fix && len(targets) != 1 {
		fmt.Fprintln(os.Stderr, "aplint: -fix needs exactly one target (it writes one minimized network)")
		os.Exit(2)
	}

	var reports []report
	var merged lint.Result
	for _, t := range targets {
		rep := report{Name: t.name, States: t.net.Len(), NFAs: t.net.NumNFAs()}
		res := lint.Run(t.net, opts)
		rep.Diags = res.Diags
		rep.Skipped = res.Skipped
		if *partition > 0 {
			pres, err := lintPartition(t, *partition, *capacity, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aplint: %s: partition: %v\n", t.name, err)
				os.Exit(2)
			}
			rep.Partition = true
			rep.Diags = append(rep.Diags, pres.Diags...)
			// Partition findings arrive after the network ones; restore
			// the global (NFA, state, code) order so output is stable.
			lint.SortDiagnostics(rep.Diags)
		}
		if *fix || *diffOnly {
			ropts := rewrite.Options{Alphabet: opts.Alphabet, Capacity: *capacity}
			if *capacity <= 0 {
				ropts.Capacity = -1 // capacity checking disabled: merge unguarded
			}
			rres, err := rewrite.Rewrite(t.net, ropts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aplint: %s: rewrite: %v\n", t.name, err)
				os.Exit(2)
			}
			rep.Rewrite = &rres.Stats
			if *fix {
				if err := writeMinimized(*outPath, rres.Net, t.name); err != nil {
					fmt.Fprintf(os.Stderr, "aplint: %s: %v\n", t.name, err)
					os.Exit(2)
				}
			}
		}
		merged.Diags = append(merged.Diags, rep.Diags...)
		reports = append(reports, rep)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "aplint:", err)
			os.Exit(2)
		}
	} else {
		for _, rep := range reports {
			printText(rep, *maxPer)
		}
	}
	// Exit status mirrors Result.Err/ErrAt exactly: the text summary and
	// the exit code count the same diagnostics.
	threshold := lint.Error
	if *strict {
		threshold = lint.Warning
	}
	if merged.ErrAt(threshold) != nil {
		os.Exit(1)
	}
}

// writeMinimized writes the rewritten network as ANML to path ("" or "-"
// meaning stdout).
func writeMinimized(path string, net *automata.Network, name string) error {
	if path == "" || path == "-" {
		return anml.Write(os.Stdout, net, name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := anml.Write(f, net, name); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// bracketed wraps a bare multi-symbol class in [] so users can write
// -alphabet a-z as well as the full '[a-z]' symset syntax.
func bracketed(spec string) string {
	if spec == "*" || len(spec) == 1 || strings.HasPrefix(spec, "[") {
		return spec
	}
	if len(spec) == 2 && spec[0] == '\\' {
		return spec // a single escaped symbol or class shorthand
	}
	return "[" + spec + "]"
}

// lintPartition profiles a fraction of the target's input, builds the
// hot/cold partition, and runs the partition analyzers over it.
func lintPartition(t target, frac float64, capacity int, opts lint.Options) (*lint.Result, error) {
	if len(t.input) == 0 {
		return nil, fmt.Errorf("no input stream to profile (use -in with -anml)")
	}
	n := int(frac * float64(len(t.input)))
	if n < 1 {
		n = 1
	}
	if n > len(t.input) {
		n = len(t.input)
	}
	part, err := hotcold.BuildFromProfile(t.net, t.input[:n], hotcold.Options{Capacity: capacity})
	if err != nil {
		return nil, err
	}
	return lint.RunPartition(part.LintInfo(), opts), nil
}

// resolve builds the lint targets from the flag combination.
func resolve(appName string, all bool, anmlPath, inPath string, regexes []string, cfg workloads.Config) ([]target, error) {
	switch {
	case all:
		apps, err := workloads.BuildAll(cfg)
		if err != nil {
			return nil, err
		}
		ts := make([]target, len(apps))
		for i, a := range apps {
			ts[i] = target{name: a.Abbr, net: a.Net, input: a.Input}
		}
		return ts, nil
	case appName != "":
		a, err := workloads.Build(appName, cfg)
		if err != nil {
			return nil, err
		}
		return []target{{name: a.Abbr, net: a.Net, input: a.Input}}, nil
	case anmlPath != "":
		f, err := os.Open(anmlPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Lax read: aplint's job is to report structural findings, so a
		// broken network must reach the analyzers instead of failing I/O.
		net, err := anml.ReadLax(f)
		if err != nil {
			return nil, err
		}
		t := target{name: anmlPath, net: net}
		if inPath != "" {
			if t.input, err = os.ReadFile(inPath); err != nil {
				return nil, err
			}
		}
		return []target{t}, nil
	case len(regexes) > 0:
		net, err := regexc.CompileAll(regexes, regexc.Options{})
		if err != nil {
			return nil, err
		}
		return []target{{name: "regex", net: net}}, nil
	}
	return nil, fmt.Errorf("need -app, -all, -anml or -regex (try: aplint -all)")
}

// printText renders one target's findings in the line-oriented text format.
func printText(rep report, maxPer int) {
	fmt.Printf("== %s: %d states, %d NFAs ==\n", rep.Name, rep.States, rep.NFAs)
	shown := make(map[string]int)
	hidden := make(map[string]int)
	var errs, warns, infos int
	for _, d := range rep.Diags {
		switch d.Severity {
		case lint.Error:
			errs++
		case lint.Warning:
			warns++
		default:
			infos++
		}
		if maxPer > 0 && shown[d.Code] >= maxPer {
			hidden[d.Code]++
			continue
		}
		shown[d.Code]++
		fmt.Println("  " + d.String())
	}
	for _, a := range lint.All() {
		if n := hidden[a.Code]; n > 0 {
			fmt.Printf("  %s: … and %d more (rerun with -max 0 to see all)\n", a.Code, n)
		}
	}
	if len(rep.Skipped) > 0 {
		fmt.Printf("  skipped (network unsound): %s\n", strings.Join(rep.Skipped, ", "))
	}
	if len(rep.Diags) == 0 {
		fmt.Println("  clean")
	} else {
		fmt.Printf("  %d errors, %d warnings, %d info\n", errs, warns, infos)
	}
	if rep.Rewrite != nil {
		printRewrite(rep.Rewrite, maxPer)
	}
}

// printRewrite renders the rewriter's dry-run/applied statistics with
// per-NFA deltas for the NFAs that changed.
func printRewrite(st *rewrite.Stats, maxPer int) {
	if st.StatesRemoved() == 0 && st.EdgesBefore == st.EdgesAfter {
		fmt.Println("  rewrite: no change (network is already minimal)")
		return
	}
	pct := 0.0
	if st.StatesBefore > 0 {
		pct = 100 * float64(st.StatesRemoved()) / float64(st.StatesBefore)
	}
	fmt.Printf("  rewrite: states %d -> %d (-%.1f%%), edges %d -> %d, NFAs %d -> %d, %d rounds\n",
		st.StatesBefore, st.StatesAfter, pct,
		st.EdgesBefore, st.EdgesAfter, st.NFAsBefore, st.NFAsAfter, st.Rounds)
	fmt.Printf("  rewrite: %d unreachable, %d dead, %d subsumed, %d merged, %d starts folded, %d edges pruned",
		st.Unreachable, st.Dead, st.Subsumed, st.Merged, st.StartsFolded, st.EdgesPruned)
	if st.DemotedClasses > 0 {
		fmt.Printf(" (%d merge classes demoted by the capacity guard)", st.DemotedClasses)
	}
	fmt.Println()
	shown := 0
	for _, d := range st.PerNFA {
		if d.StatesBefore == d.StatesAfter && d.EdgesBefore == d.EdgesAfter {
			continue
		}
		if maxPer > 0 && shown >= maxPer {
			fmt.Printf("  rewrite: … and more changed NFAs (rerun with -max 0 to see all)\n")
			break
		}
		shown++
		fmt.Printf("  rewrite: NFA %d: states %d -> %d, edges %d -> %d\n",
			d.NFA, d.StatesBefore, d.StatesAfter, d.EdgesBefore, d.EdgesAfter)
	}
}

// listAnalyzers prints the analyzer catalogue.
func listAnalyzers() {
	for _, a := range lint.All() {
		kind := "network"
		if a.NeedsPartition {
			kind = "partition"
		}
		fmt.Printf("%s %-16s %-9s %-9s %s\n", a.Code, a.Name, a.Default, kind, a.Doc)
	}
}

// knownAnalyzer reports whether s names a registered analyzer by code or
// short name.
func knownAnalyzer(s string) bool {
	if lint.Lookup(s) != nil {
		return true
	}
	for _, a := range lint.All() {
		if a.Name == s {
			return true
		}
	}
	return false
}

// splitCodes parses a comma-separated code list.
func splitCodes(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
