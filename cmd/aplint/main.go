// Command aplint runs the static-analysis registry of internal/lint over
// automata networks — generated suite applications, ANML files from
// external tools, or compiled regexes — and reports structured diagnostics
// with stable codes (AP001…).
//
//	aplint -all                        # lint the generated 26-app suite
//	aplint -app Snort -partition 0.01  # one app, incl. partition analyzers
//	aplint -anml rules.anml            # ANML produced by another toolchain
//	aplint -regex 'err[0-9]{3}'        # compiled patterns (repeatable flag)
//	aplint -list                       # catalogue every analyzer
//
// -enable/-disable filter by code or name, -json switches to machine
// output. Exit status: 0 clean, 1 when any error-severity diagnostic was
// reported (with -strict: any warning or error), 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sparseap/internal/anml"
	"sparseap/internal/automata"
	"sparseap/internal/hotcold"
	"sparseap/internal/lint"
	"sparseap/internal/regexc"
	"sparseap/internal/workloads"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// target is one network to lint.
type target struct {
	name  string
	net   *automata.Network
	input []byte // profiling stream for -partition, when available
}

// report is the per-target JSON payload.
type report struct {
	Name      string            `json:"name"`
	States    int               `json:"states"`
	NFAs      int               `json:"nfas"`
	Diags     []lint.Diagnostic `json:"diagnostics"`
	Skipped   []string          `json:"skipped,omitempty"`
	Partition bool              `json:"partition,omitempty"`
}

func main() {
	var (
		appName   = flag.String("app", "", "built-in application abbreviation")
		all       = flag.Bool("all", false, "lint every generated application")
		anmlPath  = flag.String("anml", "", "ANML automaton file")
		inPath    = flag.String("in", "", "input stream file (profiling source for -anml -partition)")
		regexes   multiFlag
		list      = flag.Bool("list", false, "list every registered analyzer and exit")
		jsonOut   = flag.Bool("json", false, "emit diagnostics as JSON")
		enable    = flag.String("enable", "", "comma-separated codes/names to run exclusively")
		disable   = flag.String("disable", "", "comma-separated codes/names to skip")
		capacity  = flag.Int("capacity", 3000, "AP half-core capacity for the capacity analyzer (0 disables)")
		partition = flag.Float64("partition", 0, "also build a hot/cold partition profiling this input fraction and run the partition analyzers")
		strict    = flag.Bool("strict", false, "exit non-zero on warnings, not only errors")
		maxPer    = flag.Int("max", 20, "max diagnostics printed per code per target in text mode (0 = unlimited)")
		divisor   = flag.Int("divisor", 8, "workload scale divisor (with -app/-all)")
		inputLen  = flag.Int("input", 131072, "generated input length (with -app/-all)")
		seed      = flag.Int64("seed", 1, "generation seed (with -app/-all)")
	)
	flag.Var(&regexes, "regex", "pattern to compile and lint (repeatable)")
	flag.Parse()

	if *list {
		listAnalyzers()
		return
	}
	opts := lint.Options{
		Capacity: *capacity,
		Enable:   splitCodes(*enable),
		Disable:  splitCodes(*disable),
	}
	// A typo'd filter would otherwise silently lint nothing and report
	// "clean"; reject anything that names no registered analyzer.
	for _, c := range append(append([]string(nil), opts.Enable...), opts.Disable...) {
		if !knownAnalyzer(c) {
			fmt.Fprintf(os.Stderr, "aplint: unknown analyzer %q (see aplint -list)\n", c)
			os.Exit(2)
		}
	}
	targets, err := resolve(*appName, *all, *anmlPath, *inPath, regexes,
		workloads.Config{Divisor: *divisor, InputLen: *inputLen, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aplint:", err)
		os.Exit(2)
	}

	var reports []report
	worst := lint.Info
	haveDiags := false
	for _, t := range targets {
		rep := report{Name: t.name, States: t.net.Len(), NFAs: t.net.NumNFAs()}
		res := lint.Run(t.net, opts)
		rep.Diags = res.Diags
		rep.Skipped = res.Skipped
		if *partition > 0 {
			pres, err := lintPartition(t, *partition, *capacity, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aplint: %s: partition: %v\n", t.name, err)
				os.Exit(2)
			}
			rep.Partition = true
			rep.Diags = append(rep.Diags, pres.Diags...)
		}
		for _, d := range rep.Diags {
			haveDiags = true
			if d.Severity > worst {
				worst = d.Severity
			}
		}
		reports = append(reports, rep)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "aplint:", err)
			os.Exit(2)
		}
	} else {
		for _, rep := range reports {
			printText(rep, *maxPer)
		}
	}
	if worst >= lint.Error || (*strict && haveDiags && worst >= lint.Warning) {
		os.Exit(1)
	}
}

// lintPartition profiles a fraction of the target's input, builds the
// hot/cold partition, and runs the partition analyzers over it.
func lintPartition(t target, frac float64, capacity int, opts lint.Options) (*lint.Result, error) {
	if len(t.input) == 0 {
		return nil, fmt.Errorf("no input stream to profile (use -in with -anml)")
	}
	n := int(frac * float64(len(t.input)))
	if n < 1 {
		n = 1
	}
	if n > len(t.input) {
		n = len(t.input)
	}
	part, err := hotcold.BuildFromProfile(t.net, t.input[:n], hotcold.Options{Capacity: capacity})
	if err != nil {
		return nil, err
	}
	return lint.RunPartition(part.LintInfo(), opts), nil
}

// resolve builds the lint targets from the flag combination.
func resolve(appName string, all bool, anmlPath, inPath string, regexes []string, cfg workloads.Config) ([]target, error) {
	switch {
	case all:
		apps, err := workloads.BuildAll(cfg)
		if err != nil {
			return nil, err
		}
		ts := make([]target, len(apps))
		for i, a := range apps {
			ts[i] = target{name: a.Abbr, net: a.Net, input: a.Input}
		}
		return ts, nil
	case appName != "":
		a, err := workloads.Build(appName, cfg)
		if err != nil {
			return nil, err
		}
		return []target{{name: a.Abbr, net: a.Net, input: a.Input}}, nil
	case anmlPath != "":
		f, err := os.Open(anmlPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Lax read: aplint's job is to report structural findings, so a
		// broken network must reach the analyzers instead of failing I/O.
		net, err := anml.ReadLax(f)
		if err != nil {
			return nil, err
		}
		t := target{name: anmlPath, net: net}
		if inPath != "" {
			if t.input, err = os.ReadFile(inPath); err != nil {
				return nil, err
			}
		}
		return []target{t}, nil
	case len(regexes) > 0:
		net, err := regexc.CompileAll(regexes, regexc.Options{})
		if err != nil {
			return nil, err
		}
		return []target{{name: "regex", net: net}}, nil
	}
	return nil, fmt.Errorf("need -app, -all, -anml or -regex (try: aplint -all)")
}

// printText renders one target's findings in the line-oriented text format.
func printText(rep report, maxPer int) {
	fmt.Printf("== %s: %d states, %d NFAs ==\n", rep.Name, rep.States, rep.NFAs)
	shown := make(map[string]int)
	hidden := make(map[string]int)
	var errs, warns, infos int
	for _, d := range rep.Diags {
		switch d.Severity {
		case lint.Error:
			errs++
		case lint.Warning:
			warns++
		default:
			infos++
		}
		if maxPer > 0 && shown[d.Code] >= maxPer {
			hidden[d.Code]++
			continue
		}
		shown[d.Code]++
		fmt.Println("  " + d.String())
	}
	for _, a := range lint.All() {
		if n := hidden[a.Code]; n > 0 {
			fmt.Printf("  %s: … and %d more (rerun with -max 0 to see all)\n", a.Code, n)
		}
	}
	if len(rep.Skipped) > 0 {
		fmt.Printf("  skipped (network unsound): %s\n", strings.Join(rep.Skipped, ", "))
	}
	if len(rep.Diags) == 0 {
		fmt.Println("  clean")
	} else {
		fmt.Printf("  %d errors, %d warnings, %d info\n", errs, warns, infos)
	}
}

// listAnalyzers prints the analyzer catalogue.
func listAnalyzers() {
	for _, a := range lint.All() {
		kind := "network"
		if a.NeedsPartition {
			kind = "partition"
		}
		fmt.Printf("%s %-16s %-9s %-9s %s\n", a.Code, a.Name, a.Default, kind, a.Doc)
	}
}

// knownAnalyzer reports whether s names a registered analyzer by code or
// short name.
func knownAnalyzer(s string) bool {
	if lint.Lookup(s) != nil {
		return true
	}
	for _, a := range lint.All() {
		if a.Name == s {
			return true
		}
	}
	return false
}

// splitCodes parses a comma-separated code list.
func splitCodes(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
