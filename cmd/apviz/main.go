// Command apviz emits the evaluation's figure data as CSV files, one per
// artifact, ready for plotting (gnuplot, matplotlib, spreadsheets):
//
//	apviz -o csv/            # all figures at the default 1/8 scale
//
// Files: fig1.csv, fig5_hot.csv, fig5_cold.csv, table1.csv, fig8.csv,
// fig10a.csv, fig10b.csv, fig11.csv, table4.csv, fig13a.csv, fig13b.csv.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"sparseap/internal/ap"
	"sparseap/internal/exp"
	"sparseap/internal/workloads"
)

func main() {
	var (
		outDir   = flag.String("o", ".", "output directory")
		divisor  = flag.Int("divisor", 8, "scale divisor")
		inputLen = flag.Int("input", 131072, "input length")
		capacity = flag.Int("capacity", 3000, "half-core capacity")
		seed     = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	wl := workloads.Config{Divisor: *divisor, InputLen: *inputLen, Seed: *seed}
	s := exp.NewSuite(wl, ap.DefaultConfig().WithCapacity(*capacity))

	emit(*outDir, "fig1.csv", func(w *csv.Writer) error {
		r, err := exp.Fig1(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "hot_frac", "hot", "cold"})
		for _, row := range r.Rows {
			w.Write([]string{row.Abbr, f(row.HotFrac), itoa(row.Hot), itoa(row.Cold)})
		}
		return nil
	})
	emit(*outDir, "fig5_hot.csv", func(w *csv.Writer) error {
		r, err := exp.Fig5(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "shallow", "medium", "deep"})
		for _, row := range r.Hot {
			w.Write([]string{row.Abbr, f(row.Shallow), f(row.Medium), f(row.Deep)})
		}
		return nil
	})
	emit(*outDir, "fig5_cold.csv", func(w *csv.Writer) error {
		r, err := exp.Fig5(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "shallow", "medium", "deep"})
		for _, row := range r.Cold {
			w.Write([]string{row.Abbr, f(row.Shallow), f(row.Medium), f(row.Deep)})
		}
		return nil
	})
	emit(*outDir, "table1.csv", func(w *csv.Writer) error {
		r, err := exp.Table1(s)
		if err != nil {
			return err
		}
		w.Write([]string{"input_frac", "accuracy", "recall", "precision"})
		for _, row := range r.Rows {
			w.Write([]string{f(row.Fraction), f(row.Accuracy), f(row.Recall), f(row.Precision)})
		}
		return nil
	})
	emit(*outDir, "fig8.csv", func(w *csv.Writer) error {
		r, err := exp.Fig8(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "constrained_frac"})
		for _, row := range r.Rows {
			w.Write([]string{row.Abbr, f(row.Constrained)})
		}
		return nil
	})
	emit(*outDir, "fig10a.csv", func(w *csv.Writer) error {
		r, err := exp.Fig10(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "apcpu_01", "apcpu_1", "spap_01", "spap_1"})
		for _, row := range r.Rows {
			w.Write([]string{row.Abbr, f(row.APCPU01), f(row.APCPU1), f(row.SpAP01), f(row.SpAP1)})
		}
		return nil
	})
	emit(*outDir, "fig10b.csv", func(w *csv.Writer) error {
		r, err := exp.Fig10(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "saving_01", "saving_1"})
		for _, row := range r.Rows {
			w.Write([]string{row.Abbr, f(row.Saving01), f(row.Saving1)})
		}
		return nil
	})
	emit(*outDir, "fig11.csv", func(w *csv.Writer) error {
		c := *capacity
		r, err := exp.Fig11(s, []int{c / 4, c / 2, c, c * 49 / 24})
		if err != nil {
			return err
		}
		w.Write([]string{"capacity", "baseline_perf_per_ste", "spap_perf_per_ste"})
		for _, row := range r.Rows {
			w.Write([]string{itoa(row.Capacity), f(row.BaselineMean), f(row.SpAPMean)})
		}
		return nil
	})
	emit(*outDir, "table4.csv", func(w *csv.Writer) error {
		r, err := exp.Table4(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "baseline_exec", "baseap_exec", "spap_exec", "im_reports", "estalls", "jump_ratio"})
		for _, row := range r.Rows {
			jr := ""
			if !math.IsNaN(row.JumpRatio) {
				jr = f(row.JumpRatio)
			}
			w.Write([]string{row.Abbr, itoa(row.BaselineExecutions), itoa(row.BaseAPExecutions),
				itoa(row.SpAPExecutions), i64(row.IntermediateReports), i64(row.EnableStalls), jr})
		}
		return nil
	})
	emit(*outDir, "fig13a.csv", func(w *csv.Writer) error {
		r, err := exp.Fig13(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "spap_01", "spap_1"})
		for _, row := range r.Low.Rows {
			w.Write([]string{row.Abbr, f(row.SpAP01), f(row.SpAP1)})
		}
		return nil
	})
	emit(*outDir, "fig13b.csv", func(w *csv.Writer) error {
		r, err := exp.Fig13(s)
		if err != nil {
			return err
		}
		w.Write([]string{"app", "spap_01", "spap_1"})
		for _, row := range r.High.Rows {
			w.Write([]string{row.Abbr, f(row.SpAP01), f(row.SpAP1)})
		}
		return nil
	})
}

func emit(dir, name string, fill func(*csv.Writer) error) {
	file, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fail(err)
	}
	w := csv.NewWriter(file)
	if err := fill(w); err != nil {
		fail(fmt.Errorf("%s: %w", name, err))
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fail(err)
	}
	if err := file.Close(); err != nil {
		fail(err)
	}
	fmt.Println("wrote", filepath.Join(dir, name))
}

func f(v float64) string { return fmt.Sprintf("%.6g", v) }
func itoa(v int) string  { return fmt.Sprintf("%d", v) }
func i64(v int64) string { return fmt.Sprintf("%d", v) }
func fail(err error)     { fmt.Fprintln(os.Stderr, err); os.Exit(1) }
