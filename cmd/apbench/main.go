// Command apbench regenerates every table and figure of the paper's
// evaluation (Section VII) on the synthesized 26-application suite.
//
// Usage:
//
//	apbench [-exp all|table2,fig1,fig5,table1,fig8,fig10,fig11,fig12,table4,fig13,ablation,sensitivity,resilience,predict] \
//	        [-divisor 8] [-input 131072] [-capacity 3000] [-seed 1]
//
// The defaults run the 1/8-scaled configuration described in DESIGN.md:
// 24K-STE half-core → 3K, 1 MiB input → 128 KiB, Table II NFA counts ÷ 8.
// Use -divisor 1 -input 1048576 -capacity 24000 for a full-size run.
//
// Throughput mode:
//
//	apbench -json [-apps all|PEN,Snort,...] [-benchtime 1s] [-out BENCH_sim.json] \
//	        [-check] [-tolerance 0.20] [-divisor 8] [-input 131072] [-seed 1]
//
// benchmarks the simulator's step kernels (sparse walk, dense pass,
// adaptive) per application and writes MB/s, ns/symbol, and allocs/op to
// -out. With -check it exits nonzero if the adaptive kernel is more than
// -tolerance slower than the sparse walk on any selected app — a
// machine-independent regression gate CI runs on the PEN/Snort benches.
//
// Batch mode:
//
//	apbench -streams 64 [-apps all|PEN,Snort,...] [-benchtime 1s] [-out BENCH_batch.json] \
//	        [-check] [-tolerance 0.20] [-divisor 8] [-input 131072] [-seed 1]
//
// benchmarks the multi-stream bit-sliced batch kernel: N concurrent
// streams in lockstep lanes of one batch engine versus the same streams
// run sequentially on a solo engine, over a phase-aligned lane set (the
// amortizable shape) and an independent-phase set (the honesty cell).
// Every lane's batch report stream is verified bit-identical to a solo
// run before timing. With -check it exits nonzero if the aligned cell's
// speedup falls below 2x minus -tolerance — the CI bench-batch gate.
//
// Adversarial mode:
//
//	apbench -adversarial [-apps all|PEN,Snort,...] [-benchtime 1s] [-out BENCH_adversarial.json] \
//	        [-check] [-tolerance 0.20] [-divisor 8] [-input 131072] [-seed 1]
//
// runs the certified worst-case analysis per application, synthesizes an
// adversarial witness (seeded with the canonical input), and benchmarks
// every step kernel on both the canonical and the adversarial input.
// With -check it exits nonzero on a soundness violation, a witness
// weaker than the canonical input, a bound/witness gap geomean above 4x,
// or the adaptive kernel falling more than -tolerance behind the dense
// pass on the adversarial input — the CI bench-adversarial gate.
//
// Prediction mode:
//
//	apbench -predict [-apps all|PEN,Snort,...] [-out BENCH_predict.json] [-check] \
//	        [-divisor 8] [-input 131072] [-capacity 3000] [-seed 1]
//
// runs the profile-free static partitioning study (exp.Predict) and writes
// the per-app speedups and geomeans to -out. With -check it exits nonzero
// if the static strategy's geomean speedup falls below the
// normalized-depth baseline's, or if any strategy's report stream
// diverges — the CI bench-predict gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"sparseap/internal/ap"
	"sparseap/internal/exp"
	"sparseap/internal/workloads"
)

type experiment struct {
	name string
	run  func(*exp.Suite) (interface{ Render() string }, error)
}

func experiments() []experiment {
	return []experiment{
		{"table2", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Table2(s) }},
		{"fig1", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Fig1(s) }},
		{"fig5", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Fig5(s) }},
		{"table1", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Table1(s) }},
		{"fig8", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Fig8(s) }},
		{"fig10", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Fig10(s) }},
		{"fig11", func(s *exp.Suite) (interface{ Render() string }, error) {
			c := s.AP.Capacity
			return exp.Fig11(s, []int{c / 4, c / 2, c, c * 49 / 24})
		}},
		{"fig12", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Fig12(s) }},
		{"table4", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Table4(s) }},
		{"fig13", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Fig13(s) }},
		{"ablation", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Ablation(s) }},
		{"sensitivity", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Sensitivity(s) }},
		{"resilience", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Resilience(s) }},
		{"predict", func(s *exp.Suite) (interface{ Render() string }, error) { return exp.Predict(s, nil) }},
	}
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiments, or 'all'")
		divisor  = flag.Int("divisor", 8, "scale divisor vs the paper's Table II")
		inputLen = flag.Int("input", 131072, "input stream length in bytes")
		capacity = flag.Int("capacity", 3000, "AP half-core capacity in STEs")
		seed     = flag.Int64("seed", 1, "generation seed")

		jsonFlag  = flag.Bool("json", false, "throughput mode: benchmark step kernels per app, write JSON")
		appsFlag  = flag.String("apps", "all", "throughput mode: comma-separated apps, or 'all'")
		outFlag   = flag.String("out", "BENCH_sim.json", "throughput mode: output path")
		benchtime = flag.String("benchtime", "1s", "throughput mode: time (or Nx iterations) per measurement")
		checkFlag = flag.Bool("check", false, "throughput mode: fail if the adaptive kernel regresses vs the sparse walk")
		tolerance = flag.Float64("tolerance", 0.20, "throughput mode: allowed adaptive-vs-sparse slowdown for -check")

		predictFlag = flag.Bool("predict", false, "prediction mode: static vs profiled partitioning study, write JSON")
		streamsF    = flag.Int("streams", 0, "batch mode: solo-vs-batch throughput over N concurrent streams, write JSON")
		advFlag     = flag.Bool("adversarial", false, "adversarial mode: certified worst-case bounds, witness synthesis and kernel throughput under attack, write JSON")
	)
	testing.Init() // registers test.benchtime before Parse; throughput mode sets it
	flag.Parse()

	wl := workloads.Config{InputLen: *inputLen, Divisor: *divisor, Seed: *seed}
	if *streamsF > 0 {
		out := *outFlag
		if out == "BENCH_sim.json" { // the throughput-mode default; not meaningful here
			out = "BENCH_batch.json"
		}
		if err := runStreams(wl, *appsFlag, out, *benchtime, *streamsF, *checkFlag, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "apbench -streams: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *advFlag {
		out := *outFlag
		if out == "BENCH_sim.json" { // the throughput-mode default; not meaningful here
			out = "BENCH_adversarial.json"
		}
		if err := runAdversarial(wl, *appsFlag, out, *benchtime, *checkFlag, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "apbench -adversarial: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonFlag {
		if err := runThroughput(wl, *appsFlag, *outFlag, *benchtime, *checkFlag, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "apbench -json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *predictFlag {
		out := *outFlag
		if out == "BENCH_sim.json" { // the throughput-mode default; not meaningful here
			out = "BENCH_predict.json"
		}
		if err := runPredict(wl, *appsFlag, *capacity, out, *checkFlag); err != nil {
			fmt.Fprintf(os.Stderr, "apbench -predict: %v\n", err)
			os.Exit(1)
		}
		return
	}
	apCfg := ap.DefaultConfig().WithCapacity(*capacity)
	suite := exp.NewSuite(wl, apCfg)

	wanted := map[string]bool{}
	all := *expFlag == "all"
	for _, n := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(n)] = true
	}
	fmt.Printf("sparseap benchmark harness: divisor=%d input=%d capacity=%d seed=%d\n\n",
		*divisor, *inputLen, *capacity, *seed)
	ran := 0
	for _, e := range experiments() {
		if !all && !wanted[e.name] {
			continue
		}
		start := time.Now()
		res, err := e.run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.name, time.Since(start).Seconds(), res.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *expFlag)
		os.Exit(2)
	}
}
