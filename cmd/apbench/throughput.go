package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"sparseap/internal/sim"
	"sparseap/internal/workloads"
)

// Throughput mode (-json): per-application simulator microbenchmarks over
// the three step kernels, written as BENCH_sim.json so the repository
// carries a measured perf trajectory. Measurements use testing.Benchmark
// on a pooled engine — the same steady state the paper's streaming model
// assumes — so allocs/op is expected to be 0.

// kernelStats is one (app, kernel) measurement. Every record carries the
// parallelism context it was measured under: GOMAXPROCS (the runtime can
// move the benchmark goroutine across cores) and the batch width (1 for
// the solo kernels, the lane count for batch-kernel records), so records
// from different machines and modes are comparable.
type kernelStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerSymbol float64 `json:"ns_per_symbol"`
	MBPerSec    float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	BatchWidth  int     `json:"batch_width"`
}

// appBench aggregates one application's measurements.
type appBench struct {
	App          string                 `json:"app"`
	Name         string                 `json:"name"`
	States       int                    `json:"states"`
	NFAs         int                    `json:"nfas"`
	InputLen     int                    `json:"input_len"`
	Reports      int64                  `json:"reports"`
	DenseStepPct float64                `json:"dense_step_pct"` // share of cycles the auto kernel ran dense
	Kernels      map[string]kernelStats `json:"kernels"`
}

// benchFile is the BENCH_sim.json schema.
type benchFile struct {
	Config struct {
		Divisor   int    `json:"divisor"`
		InputLen  int    `json:"input_len"`
		Seed      int64  `json:"seed"`
		Benchtime string `json:"benchtime"`
		Go        string `json:"go"`
	} `json:"config"`
	Apps []appBench `json:"apps"`
}

var benchKernels = []sim.Kernel{sim.KernelSparse, sim.KernelDense, sim.KernelAuto}

// runThroughput executes the -json mode and returns an error on failure
// (including a -check regression).
func runThroughput(cfg workloads.Config, appsFlag, outPath, benchtime string, check bool, tolerance float64) error {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("bad -benchtime: %w", err)
	}
	names := workloads.Names()
	if appsFlag != "all" {
		names = nil
		for _, n := range strings.Split(appsFlag, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	var out benchFile
	out.Config.Divisor = cfg.Divisor
	out.Config.InputLen = cfg.InputLen
	out.Config.Seed = cfg.Seed
	out.Config.Benchtime = benchtime
	out.Config.Go = runtime.Version()
	var failures []string
	for _, name := range names {
		app, err := workloads.Build(name, cfg)
		if err != nil {
			return err
		}
		row := appBench{
			App:      app.Abbr,
			Name:     app.Name,
			States:   app.Net.Len(),
			NFAs:     app.Net.NumNFAs(),
			InputLen: len(app.Input),
			Kernels:  make(map[string]kernelStats, len(benchKernels)),
		}
		// One instrumented pass for report count and the auto kernel's
		// dense-cycle share.
		eng := sim.AcquireEngine(app.Net, sim.Options{})
		for i, b := range app.Input {
			eng.Step(int64(i), b)
		}
		row.Reports = eng.NumReports()
		if total := eng.DenseSteps() + eng.SparseSteps(); total > 0 {
			row.DenseStepPct = 100 * float64(eng.DenseSteps()) / float64(total)
		}
		eng.Release()
		for _, k := range benchKernels {
			row.Kernels[k.String()] = measureKernel(app, k)
		}
		auto, sparse := row.Kernels[sim.KernelAuto.String()], row.Kernels[sim.KernelSparse.String()]
		verdict := ""
		if check && auto.NsPerSymbol > sparse.NsPerSymbol*(1+tolerance) {
			verdict = "  REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: auto %.2f ns/sym vs sparse %.2f ns/sym (tolerance %.0f%%)",
					app.Abbr, auto.NsPerSymbol, sparse.NsPerSymbol, 100*tolerance))
		}
		fmt.Printf("%-6s %7d states  sparse %8.2f ns/sym  dense %8.2f ns/sym  auto %8.2f ns/sym (%5.1f%% dense, %.1f MB/s)%s\n",
			app.Abbr, row.States,
			sparse.NsPerSymbol, row.Kernels[sim.KernelDense.String()].NsPerSymbol,
			auto.NsPerSymbol, row.DenseStepPct, auto.MBPerSec, verdict)
		out.Apps = append(out.Apps, row)
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d apps)\n", outPath, len(out.Apps))
	if len(failures) > 0 {
		return fmt.Errorf("adaptive kernel regressed beyond tolerance:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return nil
}

// measureKernel benchmarks one (app, kernel) cell on a pooled engine in
// steady state (Reset + full input per iteration).
func measureKernel(app *workloads.App, k sim.Kernel) kernelStats {
	eng := sim.AcquireEngine(app.Net, sim.Options{Kernel: k})
	defer eng.Release()
	input := app.Input
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			eng.Reset()
			for i, c := range input {
				eng.Step(int64(i), c)
			}
		}
	})
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	return kernelStats{
		NsPerOp:     nsPerOp,
		NsPerSymbol: nsPerOp / float64(len(input)),
		MBPerSec:    float64(len(input)) / 1e6 / (nsPerOp / 1e9),
		AllocsPerOp: r.AllocsPerOp(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BatchWidth:  1,
	}
}
