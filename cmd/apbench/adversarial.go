package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"sparseap/internal/sim"
	"sparseap/internal/workloads"
	"sparseap/internal/worstcase"
)

// Adversarial mode (-adversarial): per-application certified worst-case
// study, written as BENCH_adversarial.json so the repository carries the
// static bounds, the synthesized adversarial witnesses, and the kernels'
// behaviour under attack as a measured trajectory.
//
// For every app the mode runs the full worst-case analysis, certifies it
// with the witness portfolio (seeded with the app's canonical input, so
// the witness is never weaker than it), and benchmarks each step kernel
// on both the canonical and the adversarial input. With -check it exits
// nonzero when any of the gates fail:
//
//   - soundness: a witness replay must never exceed the static bound;
//   - dominance: the witness peak must be at least the canonical input's
//     peak (the portfolio includes the canonical input as a seed);
//   - precision: the geomean bound/witness gap must stay within
//     advGapCeiling — a property of the whole suite's gap distribution,
//     so it is only enforced when -apps all is selected (a two-app CI
//     subset would fence on its own, unrepresentative geomean);
//   - resilience: on the adversarial input the adaptive kernel must stay
//     within -tolerance of the dense pass — the wide frontier is exactly
//     the regime the dense escape hatch exists for.

// advGapCeiling is the -check precision gate: the geomean of
// FrontierBound / witness peak across the selected apps. The committed
// BENCH_adversarial.json sits near 3.8 at the default 1/8 scale.
const advGapCeiling = 4.0

// advKernel is one (app, kernel) pair measured on both inputs.
type advKernel struct {
	CanonNsPerSymbol float64 `json:"canon_ns_per_symbol"`
	AdvNsPerSymbol   float64 `json:"adv_ns_per_symbol"`
	// Slowdown is adversarial over canonical ns/symbol: how much this
	// kernel degrades under attack (dense should sit near 1.0).
	Slowdown float64 `json:"slowdown"`
}

// advApp aggregates one application's bounds, witness and measurements.
type advApp struct {
	App           string               `json:"app"`
	Name          string               `json:"name"`
	States        int                  `json:"states"`
	FrontierBound int                  `json:"frontier_bound"`
	Bound1        int                  `json:"bound_layer1"`
	BoundPair     int                  `json:"bound_layer2"`
	BoundGram     int                  `json:"bound_layer3"`
	ReportBound   int                  `json:"report_bound"`
	WitnessPeak   int                  `json:"witness_peak"`
	WitnessLen    int                  `json:"witness_len"`
	CanonPeak     int                  `json:"canon_peak"`
	Gap           float64              `json:"gap"`
	Sound         bool                 `json:"sound"`
	Kernels       map[string]advKernel `json:"kernels"`
}

// advFile is the BENCH_adversarial.json schema.
type advFile struct {
	Config struct {
		Divisor   int    `json:"divisor"`
		InputLen  int    `json:"input_len"`
		Seed      int64  `json:"seed"`
		Benchtime string `json:"benchtime"`
		Go        string `json:"go"`
	} `json:"config"`
	GapGeomean float64  `json:"gap_geomean"`
	Apps       []advApp `json:"apps"`
}

// runAdversarial executes the -adversarial mode and returns an error on
// failure (including any -check gate).
func runAdversarial(cfg workloads.Config, appsFlag, outPath, benchtime string, check bool, tolerance float64) error {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("bad -benchtime: %w", err)
	}
	names := workloads.Names()
	if appsFlag != "all" {
		names = nil
		for _, n := range strings.Split(appsFlag, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	var out advFile
	out.Config.Divisor = cfg.Divisor
	out.Config.InputLen = cfg.InputLen
	out.Config.Seed = cfg.Seed
	out.Config.Benchtime = benchtime
	out.Config.Go = runtime.Version()
	var failures []string
	logGap := 0.0
	for _, name := range names {
		app, err := workloads.Build(name, cfg)
		if err != nil {
			return err
		}
		a := worstcase.Analyze(app.Net, worstcase.Config{})
		w, rep := a.Certify(worstcase.WitnessOptions{
			MaxLen: len(app.Input),
			Seeds:  [][]byte{app.Input},
		})
		canon := a.Validate(app.Input)
		row := advApp{
			App:           app.Abbr,
			Name:          app.Name,
			States:        app.Net.Len(),
			FrontierBound: a.FrontierBound,
			Bound1:        a.Bound1,
			BoundPair:     a.BoundPair,
			BoundGram:     a.BoundGram,
			ReportBound:   a.ReportBound,
			WitnessPeak:   rep.PeakFrontier,
			WitnessLen:    len(w.Input),
			CanonPeak:     canon.PeakFrontier,
			Gap:           rep.Gap,
			Sound:         rep.Sound && canon.Sound,
			Kernels:       make(map[string]advKernel, len(benchKernels)),
		}
		logGap += math.Log(math.Max(rep.Gap, 1)) // a degenerate 0-bound app contributes neutrally
		for _, k := range benchKernels {
			cs := measureInput(app, k, app.Input)
			as := measureInput(app, k, w.Input)
			row.Kernels[k.String()] = advKernel{
				CanonNsPerSymbol: cs,
				AdvNsPerSymbol:   as,
				Slowdown:         as / cs,
			}
		}
		verdict := ""
		if !row.Sound {
			verdict = "  UNSOUND"
			failures = append(failures, fmt.Sprintf(
				"%s: replay peak %d exceeds static bound %d", app.Abbr, rep.PeakFrontier, a.FrontierBound))
		}
		if rep.PeakFrontier < canon.PeakFrontier {
			verdict += "  WEAK-WITNESS"
			failures = append(failures, fmt.Sprintf(
				"%s: witness peak %d below canonical input's %d", app.Abbr, rep.PeakFrontier, canon.PeakFrontier))
		}
		auto := row.Kernels[sim.KernelAuto.String()]
		dense := row.Kernels[sim.KernelDense.String()]
		if check && auto.AdvNsPerSymbol > dense.AdvNsPerSymbol*(1+tolerance) {
			verdict += "  REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s: adversarial auto %.2f ns/sym vs dense %.2f ns/sym (tolerance %.0f%%)",
				app.Abbr, auto.AdvNsPerSymbol, dense.AdvNsPerSymbol, 100*tolerance))
		}
		fmt.Printf("%-6s bound %6d  witness %6d (gap %6.2f)  canon %6d  adv auto %8.2f ns/sym (dense %8.2f)%s\n",
			app.Abbr, a.FrontierBound, rep.PeakFrontier, rep.Gap, canon.PeakFrontier,
			auto.AdvNsPerSymbol, dense.AdvNsPerSymbol, verdict)
		out.Apps = append(out.Apps, row)
	}
	if len(out.Apps) > 0 {
		out.GapGeomean = math.Exp(logGap / float64(len(out.Apps)))
	}
	if check && appsFlag == "all" && out.GapGeomean > advGapCeiling {
		failures = append(failures, fmt.Sprintf(
			"gap geomean %.3f exceeds ceiling %.1f", out.GapGeomean, advGapCeiling))
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d apps, gap geomean %.3f)\n", outPath, len(out.Apps), out.GapGeomean)
	if len(failures) > 0 {
		return fmt.Errorf("adversarial gates failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// measureInput benchmarks one (app, kernel) cell on an arbitrary input
// in steady state and returns ns/symbol.
func measureInput(app *workloads.App, k sim.Kernel, input []byte) float64 {
	eng := sim.AcquireEngine(app.Net, sim.Options{Kernel: k})
	defer eng.Release()
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for n := 0; n < b.N; n++ {
			eng.Reset()
			for i, c := range input {
				eng.Step(int64(i), c)
			}
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N) / float64(len(input))
}
