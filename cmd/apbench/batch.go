package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"sparseap/internal/sim"
	"sparseap/internal/workloads"
)

// Batch mode (-streams N): per-application solo-vs-batch throughput over
// the multi-stream bit-sliced kernel, written as BENCH_batch.json.
//
// The solo baseline runs the N lane inputs sequentially on one pooled
// adaptive-kernel engine. Two batch cells run the same total bytes in
// lockstep lanes of one BatchEngine:
//
//   - "batch" (the headline and the -check gate): ragged-length prefixes
//     of the app's input stream — concurrent scans of shared content, the
//     shape the serve batcher coalesces. Lanes read the same byte each
//     cycle, so every per-symbol image access is paid once for the whole
//     batch and the speedup approaches the lane count.
//   - "indep_batch" (the honesty cell, recorded but not gated): the same
//     ragged lengths at 64 independent phases. Uncorrelated lanes share
//     neither symbols nor frontier states, so bit-slicing has little to
//     amortize and can lose to the solo engine — the recorded number is
//     the cost of batching the wrong workload.
//
// Before measuring, both lane sets' per-lane batch report streams are
// checked bit-identical to solo runs — a mismatch fails the run
// regardless of -check. With -check, the run also fails if the aligned
// cell's speedup falls below 2x minus the tolerance: the amortization
// claim, fenced.

// batchAppBench is one application's solo-vs-batch measurement.
type batchAppBench struct {
	App               string      `json:"app"`
	Name              string      `json:"name"`
	States            int         `json:"states"`
	NFAs              int         `json:"nfas"`
	Streams           int         `json:"streams"`
	TotalBytes        int64       `json:"total_bytes"`
	Reports           int64       `json:"reports"`
	DenseTickPct      float64     `json:"dense_tick_pct"` // aligned cell's dense share
	Solo              kernelStats `json:"solo"`
	Batch             kernelStats `json:"batch"`       // phase-aligned lanes
	Speedup           float64     `json:"speedup"`     // batch MB/s over solo MB/s
	IndepBatch        kernelStats `json:"indep_batch"` // independent-phase lanes
	IndepSpeedup      float64     `json:"indep_speedup"`
	IndepDenseTickPct float64     `json:"indep_dense_tick_pct"`
}

// batchBenchFile is the BENCH_batch.json schema.
type batchBenchFile struct {
	Config struct {
		Divisor    int    `json:"divisor"`
		InputLen   int    `json:"input_len"`
		Seed       int64  `json:"seed"`
		Benchtime  string `json:"benchtime"`
		Go         string `json:"go"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Streams    int    `json:"streams"`
	} `json:"config"`
	Apps []batchAppBench `json:"apps"`
}

// laneLengths draws the ragged per-lane lengths (60-100% of the app
// input), deterministic in the workload seed.
func laneLengths(app *workloads.App, streams int, seed int64) []int {
	r := rand.New(rand.NewSource(seed*1_000_003 + int64(len(app.Input))))
	ns := make([]int, streams)
	for l := range ns {
		ns[l] = len(app.Input) * (60 + r.Intn(41)) / 100
	}
	return ns
}

// alignedLaneInputs builds the phase-aligned lane set: ragged prefixes of
// the app's input. Running lanes read identical bytes each cycle.
func alignedLaneInputs(app *workloads.App, ns []int) [][]byte {
	out := make([][]byte, len(ns))
	for l, n := range ns {
		out[l] = app.Input[:n]
	}
	return out
}

// indepLaneInputs builds the independent-phase lane set: the same ragged
// lengths, each lane rotated to its own random offset in the input.
func indepLaneInputs(app *workloads.App, ns []int, seed int64) [][]byte {
	r := rand.New(rand.NewSource(seed*7_368_787 + int64(len(app.Input))))
	out := make([][]byte, len(ns))
	for l, n := range ns {
		off := r.Intn(len(app.Input))
		in := make([]byte, n)
		for i := range in {
			in[i] = app.Input[(off+i)%len(app.Input)]
		}
		out[l] = in
	}
	return out
}

// runStreams executes the -streams mode.
func runStreams(cfg workloads.Config, appsFlag, outPath, benchtime string, streams int, check bool, tolerance float64) error {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("bad -benchtime: %w", err)
	}
	if streams > sim.MaxLanes {
		return fmt.Errorf("-streams %d exceeds the %d-lane batch kernel", streams, sim.MaxLanes)
	}
	names := workloads.Names()
	if appsFlag != "all" {
		names = nil
		for _, n := range strings.Split(appsFlag, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	var out batchBenchFile
	out.Config.Divisor = cfg.Divisor
	out.Config.InputLen = cfg.InputLen
	out.Config.Seed = cfg.Seed
	out.Config.Benchtime = benchtime
	out.Config.Go = runtime.Version()
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Config.Streams = streams
	var failures []string
	for _, name := range names {
		app, err := workloads.Build(name, cfg)
		if err != nil {
			return err
		}
		ns := laneLengths(app, streams, cfg.Seed)
		aligned := alignedLaneInputs(app, ns)
		indep := indepLaneInputs(app, ns, cfg.Seed)
		var totalBytes int64
		for _, n := range ns {
			totalBytes += int64(n)
		}
		// Per-lane equivalence gate on both lane sets: the batch kernel
		// must reproduce the solo report stream bit-for-bit on every lane
		// before we bother timing it.
		var reports int64
		for _, inputs := range [][][]byte{aligned, indep} {
			reports = 0
			for l, res := range sim.RunBatch(app.Net, inputs, sim.BatchOptions{CollectReports: true}) {
				solo := sim.Run(app.Net, inputs[l], sim.Options{CollectReports: true})
				if err := sameBatchReports(res.Reports, solo.Reports); err != nil {
					return fmt.Errorf("%s lane %d diverged from solo: %w", app.Abbr, l, err)
				}
				reports += res.NumReports
			}
		}
		row := batchAppBench{
			App:        app.Abbr,
			Name:       app.Name,
			States:     app.Net.Len(),
			NFAs:       app.Net.NumNFAs(),
			Streams:    streams,
			TotalBytes: totalBytes,
			Reports:    reports,
			Solo:       measureSoloLanes(app, aligned, totalBytes),
		}
		row.Batch, row.DenseTickPct = measureBatchLanes(app, aligned, totalBytes, streams)
		row.Speedup = row.Batch.MBPerSec / row.Solo.MBPerSec
		row.IndepBatch, row.IndepDenseTickPct = measureBatchLanes(app, indep, totalBytes, streams)
		row.IndepSpeedup = row.IndepBatch.MBPerSec / row.Solo.MBPerSec
		verdict := ""
		if check && row.Speedup < 2*(1-tolerance) {
			verdict = "  REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: aligned batch speedup %.2fx below the %.2fx fence (batch %.1f vs solo %.1f MB/s)",
					app.Abbr, row.Speedup, 2*(1-tolerance), row.Batch.MBPerSec, row.Solo.MBPerSec))
		}
		fmt.Printf("%-6s %7d states  solo %8.1f MB/s  batch %8.1f MB/s  %6.2fx aligned  %5.2fx indep%s\n",
			app.Abbr, row.States, row.Solo.MBPerSec, row.Batch.MBPerSec, row.Speedup,
			row.IndepSpeedup, verdict)
		out.Apps = append(out.Apps, row)
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d apps, %d streams)\n", outPath, len(out.Apps), streams)
	if len(failures) > 0 {
		return fmt.Errorf("batch kernel fell below the amortization fence:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return nil
}

// sameBatchReports compares two report streams exactly.
func sameBatchReports(got, want []sim.Report) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d reports, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("report %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// measureSoloLanes times the sequential baseline: every lane input run to
// completion, one after another, on a single pooled adaptive-kernel
// engine.
func measureSoloLanes(app *workloads.App, inputs [][]byte, totalBytes int64) kernelStats {
	eng := sim.AcquireEngine(app.Net, sim.Options{})
	defer eng.Release()
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(totalBytes)
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			for _, input := range inputs {
				eng.Reset()
				for i, c := range input {
					eng.Step(int64(i), c)
				}
			}
		}
	})
	return lanesStats(r, totalBytes, 1)
}

// measureBatchLanes times the same lane inputs run in lockstep on one
// batch engine, and returns the dense-tick share of an instrumented pass.
func measureBatchLanes(app *workloads.App, inputs [][]byte, totalBytes int64, streams int) (kernelStats, float64) {
	be := sim.AcquireBatchEngine(app.Net, sim.BatchOptions{})
	defer be.Release()
	runOnce := func() {
		be.Reset()
		for _, in := range inputs {
			be.Join(in)
		}
		for be.Running() > 0 {
			be.Tick()
		}
	}
	runOnce() // instrumented warm-up pass for the kernel-mix split
	densePct := 0.0
	if total := be.DenseTicks() + be.SparseTicks(); total > 0 {
		densePct = 100 * float64(be.DenseTicks()) / float64(total)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(totalBytes)
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			runOnce()
		}
	})
	return lanesStats(r, totalBytes, streams), densePct
}

// lanesStats converts a benchmark result over totalBytes of streamed
// input into the shared kernelStats record.
func lanesStats(r testing.BenchmarkResult, totalBytes int64, width int) kernelStats {
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	return kernelStats{
		NsPerOp:     nsPerOp,
		NsPerSymbol: nsPerOp / float64(totalBytes),
		MBPerSec:    float64(totalBytes) / 1e6 / (nsPerOp / 1e9),
		AllocsPerOp: r.AllocsPerOp(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BatchWidth:  width,
	}
}
