package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sparseap/internal/ap"
	"sparseap/internal/exp"
	"sparseap/internal/workloads"
)

// Prediction mode (-predict): the profile-free static partitioning study,
// written as BENCH_predict.json so the repository carries the measured
// static-vs-profiled trajectory. With -check it doubles as the CI
// bench-predict gate: the static strategy's geomean speedup must not fall
// below the normalized-depth baseline's, and every strategy's report
// stream must be identical.

// predictApp is one application's row in BENCH_predict.json.
type predictApp struct {
	App            string  `json:"app"`
	Static         float64 `json:"static"`
	Profiled       float64 `json:"profiled"`
	Fixed          float64 `json:"fixed"`
	NormDepth      float64 `json:"norm_depth"`
	Oracle         float64 `json:"oracle"`
	PredHotFrac    float64 `json:"pred_hot_frac"`
	ProfHotFrac    float64 `json:"prof_hot_frac"`
	WithinProfiled bool    `json:"within_profiled"`
}

// predictFile is the BENCH_predict.json schema.
type predictFile struct {
	Config struct {
		Divisor    int     `json:"divisor"`
		InputLen   int     `json:"input_len"`
		Capacity   int     `json:"capacity"`
		Seed       int64   `json:"seed"`
		FixedParam float64 `json:"fixed_param"`
		DepthParam float64 `json:"depth_param"`
		Tolerance  float64 `json:"tolerance"`
		Go         string  `json:"go"`
	} `json:"config"`
	Apps     []predictApp `json:"apps"`
	Geomeans struct {
		Static    float64 `json:"static"`
		Profiled  float64 `json:"profiled"`
		Fixed     float64 `json:"fixed"`
		NormDepth float64 `json:"norm_depth"`
		Oracle    float64 `json:"oracle"`
	} `json:"geomeans"`
	WithinProfiled   int  `json:"within_profiled"`
	ReportsIdentical bool `json:"reports_identical"`
}

// runPredict executes the -predict mode and returns an error on failure
// (including a -check gate trip).
func runPredict(wl workloads.Config, appsFlag string, capacity int, outPath string, check bool) error {
	var names []string
	if appsFlag != "all" {
		for _, n := range strings.Split(appsFlag, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	suite := exp.NewSuite(wl, ap.DefaultConfig().WithCapacity(capacity))
	res, err := exp.Predict(suite, names)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())

	var out predictFile
	out.Config.Divisor = wl.Divisor
	out.Config.InputLen = wl.InputLen
	out.Config.Capacity = capacity
	out.Config.Seed = wl.Seed
	out.Config.FixedParam = res.FixedParam
	out.Config.DepthParam = res.DepthParam
	out.Config.Tolerance = exp.PredictTolerance
	out.Config.Go = runtime.Version()
	for _, row := range res.Rows {
		out.Apps = append(out.Apps, predictApp{
			App:            row.Abbr,
			Static:         row.Static,
			Profiled:       row.Profiled,
			Fixed:          row.Fixed,
			NormDepth:      row.NormDepth,
			Oracle:         row.Oracle,
			PredHotFrac:    row.PredHotFrac,
			ProfHotFrac:    row.ProfHotFrac,
			WithinProfiled: row.WithinProfiled,
		})
	}
	out.Geomeans.Static = res.GeoStatic
	out.Geomeans.Profiled = res.GeoProfiled
	out.Geomeans.Fixed = res.GeoFixed
	out.Geomeans.NormDepth = res.GeoNormDepth
	out.Geomeans.Oracle = res.GeoOracle
	out.WithinProfiled = res.WithinProfiled
	out.ReportsIdentical = res.ReportsIdentical

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if check {
		var failures []string
		if !res.ReportsIdentical {
			failures = append(failures, "report streams diverged across strategies")
		}
		if res.GeoStatic < res.GeoNormDepth {
			failures = append(failures, fmt.Sprintf(
				"static geomean speedup %.3f below normalized-depth baseline %.3f",
				res.GeoStatic, res.GeoNormDepth))
		}
		if len(failures) > 0 {
			return fmt.Errorf("prediction gate failed:\n  %s", strings.Join(failures, "\n  "))
		}
		fmt.Printf("check passed: static %.3f ≥ norm-depth %.3f, reports identical\n",
			res.GeoStatic, res.GeoNormDepth)
	}
	return nil
}
