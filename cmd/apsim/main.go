// Command apsim runs one automata application under the paper's three
// execution systems (Table III) and prints cycle and report statistics.
//
// The application comes either from the built-in workload suite (-app) or
// from an ANML file plus an input file (-anml/-in):
//
//	apsim -app Snort                          # generated suite app
//	apsim -anml rules.anml -in traffic.bin    # user-provided automaton
//
// Flags select the system (-system ap|apcpu|spap|all), the profiling
// fraction (-profile 0.01) and the half-core capacity (-capacity 3000).
//
// Resilience flags: -timeout bounds the wall-clock of each execution
// (partial statistics are printed on expiry); -guard runs the BaseAP/SpAP
// system under the adaptive watchdog; -fault injects deterministic faults
// ("stuckoff=0.01,drop=0.05" syntax, seeded by -faultseed); -repair remaps
// injected stuck faults onto spare STEs (-spares per block, 0 = minimum)
// and fails if the repaired run's reports diverge from the fault-free
// network's.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"sparseap"
	"sparseap/internal/lint"
	"sparseap/internal/sim"
	"sparseap/internal/workloads"
)

func main() {
	var (
		appName   = flag.String("app", "", "built-in application abbreviation (see apstat -list)")
		anmlPath  = flag.String("anml", "", "ANML automaton file")
		inPath    = flag.String("in", "", "input stream file (with -anml)")
		system    = flag.String("system", "all", "execution system: ap, apcpu, spap, or all")
		profile   = flag.Float64("profile", 0.01, "profiling input fraction")
		strategy  = flag.String("strategy", "profiled", "partition strategy: profiled (paper, default) or static (profile-free hotness analysis)")
		capacity  = flag.Int("capacity", 3000, "AP half-core capacity in STEs")
		divisor   = flag.Int("divisor", 8, "workload scale divisor (with -app)")
		inputLen  = flag.Int("input", 131072, "generated input length (with -app)")
		seed      = flag.Int64("seed", 1, "generation seed (with -app)")
		trace     = flag.String("trace", "", "write a per-cycle frontier-size CSV to this file")
		noLint    = flag.Bool("nolint", false, "skip linting the ingested network")
		opt       = flag.Bool("opt", false, "minimize the network with the proof-carrying rewriter before execution")
		strict    = flag.Bool("strict", false, "fail (exit 1) when the linter reports findings instead of warning")
		timeout   = flag.Duration("timeout", 0, "wall-clock deadline per execution (0 = none); partial stats are printed on expiry")
		guard     = flag.Bool("guard", false, "run BaseAP/SpAP under the adaptive guard (watchdog + widened-k retry + baseline fallback)")
		preflight = flag.Bool("preflight", false, "with -guard: statically certify or pre-size the partition from the worst-case report bound before the first attempt (safe/sized/hopeless ladder)")
		faultSpec = flag.String("fault", "", "inject faults: comma-separated kind=rate of stuckoff|stuckon|flip|drop|loadfail|crash")
		faultSeed = flag.Int64("faultseed", 1, "fault-injection seed (with -fault)")
		repair    = flag.Bool("repair", false, "repair injected stuck faults via spare-STE remapping and verify report equivalence")
		spares    = flag.Int("spares", 0, "spare STEs per block for -repair (0 = the minimum that suffices)")
		ckDir     = flag.String("checkpoint", "", "durable checkpoint directory: state is captured every -every symbols so a killed run can -resume")
		ckEvery   = flag.Int64("every", 0, "checkpoint capture interval in input symbols (0 = 8192)")
		ckResume  = flag.Bool("resume", false, "resume from the -checkpoint directory instead of starting fresh")
		reportOut = flag.String("reportout", "", "write the final report stream (one 'pos state' line per report) to this file")
	)
	flag.Parse()

	net, input, err := load(*appName, *anmlPath, *inPath, *divisor, *inputLen, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *opt {
		min, st, err := sparseap.Minimize(net)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsim: minimize:", err)
			os.Exit(1)
		}
		fmt.Printf("minimized:     states %d -> %d, edges %d -> %d, NFAs %d -> %d (report stream certified identical)\n",
			st.StatesBefore, st.StatesAfter, st.EdgesBefore, st.EdgesAfter, st.NFAsBefore, st.NFAsAfter)
		net = min
	}
	// Lint whatever we are about to execute — generated app or external
	// ANML: warn by default, fail under -strict.
	if !*noLint {
		if res := lint.Run(net, lint.Options{Capacity: *capacity}); len(res.Diags) > 0 {
			fmt.Fprintf(os.Stderr, "apsim: lint: %s (run aplint for details)\n", res.Summary())
			if *strict {
				os.Exit(1)
			}
		}
	}
	a := sparseap.Analyze(net, input)
	fmt.Printf("application: %d states, %d NFAs, max topo %d, %d reporting states\n",
		a.States, a.NFAs, a.MaxTopo, a.Reporting)
	fmt.Printf("hot states under this input: %d (%.1f%%)\n\n", a.Hot, 100*a.HotFrac)

	if *trace != "" {
		if err := writeTrace(*trace, net, input); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("frontier trace written to %s\n\n", *trace)
	}

	cfg := sparseap.DefaultAPConfig().WithCapacity(*capacity)
	eng := sparseap.NewEngine(cfg)

	// Fault injection: stuck-at faults transform the network before any
	// execution (optionally repaired via spare STEs); the remaining fault
	// classes hook into the partitioned executors through eng.Faults.
	plan, err := sparseap.ParseFaultPlan(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	inj := sparseap.NewFaultInjector(plan)
	if inj.Active() {
		eng.Faults = inj
		injection := inj.InjectStuck(net)
		if len(injection.Faults) > 0 {
			fmt.Printf("faults:        %s (seed %d)\n", injection.Summary(), plan.Seed)
			if *repair {
				sp := *spares
				if sp == 0 {
					sp = injection.MinSparesPerBlock(cfg)
				}
				repaired, rst, err := injection.Repair(cfg, sp)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("repair:        %d STEs remapped across %d blocks (max %d/block, %d spares each)\n",
					rst.Remapped, rst.BlocksTouched, rst.MaxPerBlock, sp)
				if got, want := len(sparseap.Match(repaired, input)), len(sparseap.Match(net, input)); got != want {
					fmt.Fprintf(os.Stderr, "apsim: repaired network reports diverge: %d vs %d fault-free\n", got, want)
					os.Exit(1)
				}
				fmt.Printf("repair:        report equivalence verified against the fault-free network\n")
				net = repaired
			} else {
				net = injection.Net
			}
		}
	}

	// Checkpointing: open the store, then start fresh (clearing stale
	// state) or resume — validating through the manifest that the stored
	// run matches this invocation's application, scale, and knobs. The
	// manifest's resume count doubles as the chaos epoch: every resumed
	// process rolls a fresh injected-crash schedule, so a kill/resume loop
	// terminates with probability 1.
	var store *sparseap.CheckpointStore
	var manifest *sparseap.CheckpointManifest
	epoch := int64(0)
	if *ckDir != "" {
		s, err := sparseap.OpenCheckpointStore(*ckDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsim: checkpoint:", err)
			os.Exit(1)
		}
		store = s
		fp := runFingerprint(*appName, *anmlPath, *inPath, *divisor, *inputLen, *seed,
			*capacity, *system, *guard, *preflight, *opt, *faultSpec, *faultSeed)
		var m *sparseap.CheckpointManifest
		if *ckResume {
			m, err = store.ResumeManifest(fp, int64(len(input)))
		} else {
			m, err = store.FreshManifest(fp, int64(len(input)))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsim: checkpoint:", err)
			os.Exit(1)
		}
		manifest = m
		epoch = m.Resumes
		ev := *ckEvery
		if ev <= 0 {
			ev = 8192
		}
		fmt.Printf("checkpoint:    dir %s, every %d symbols, epoch %d\n", *ckDir, ev, epoch)
	}
	// mkRunner builds the per-system checkpoint stream; the chaos hook is
	// wired even without -checkpoint so crash plans kill plain runs too.
	mkRunner := func(name string) *sparseap.CheckpointRunner {
		r := &sparseap.CheckpointRunner{Store: store, Name: name, Every: *ckEvery}
		if inj.Active() {
			r.CrashAt = func(pos int64) bool { return inj.CrashAt(epoch, pos) }
		}
		return r
	}
	useCk := store != nil || plan.CrashRate > 0
	markDone := func() {
		if store != nil && manifest != nil {
			manifest.Done = true
			if err := store.SaveManifest(manifest); err != nil {
				fmt.Fprintln(os.Stderr, "apsim: checkpoint:", err)
			}
		}
	}
	writeReports := func(reports []sparseap.Report) {
		if *reportOut == "" {
			return
		}
		if err := writeReportFile(*reportOut, reports); err != nil {
			fmt.Fprintln(os.Stderr, "apsim:", err)
			os.Exit(1)
		}
	}

	// runCtx builds the per-execution context; expired runs print partial
	// statistics flagged with "(cancelled)".
	runCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}
	note := func(err error) string {
		if err != nil {
			return " (cancelled: partial)"
		}
		return ""
	}
	// crashExit turns an injected crash into a hard process death with a
	// distinctive exit code; the soak harness keys its kill/resume loop on
	// it. The last persisted checkpoint remains valid for the next attempt.
	crashExit := func(err error) {
		if err != nil && errors.Is(err, sparseap.ErrCrashInjected) {
			fmt.Fprintln(os.Stderr, "apsim:", err)
			os.Exit(17)
		}
	}
	fatal := func(err error) {
		if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	ctx, cancel := runCtx()
	var base *sparseap.BaselineResult
	var baseReports []sparseap.Report
	if useCk || (*reportOut != "" && *system == "ap") {
		base, baseReports, err = eng.RunBaselineCheckpointed(ctx, net, input, mkRunner("baseline"))
	} else {
		base, err = eng.RunBaselineContext(ctx, net, input)
	}
	cancel()
	crashExit(err)
	fatal(err)
	fmt.Printf("baseline AP:   %d batches, %d cycles, %d reports, %.3f ms%s\n",
		base.Batches, base.Cycles, base.Reports, base.TimeNS/1e6, note(err))
	if *system == "ap" {
		writeReports(baseReports)
		markDone()
		return
	}

	var part *sparseap.Partition
	switch *strategy {
	case "profiled":
		n := int(*profile * float64(len(input)))
		if n < 1 {
			n = 1
		}
		part, err = eng.Partition(net, input[:n])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("partition:     %.1f%% resource saving, %d intermediate reporting states (profiled on %d symbols)\n",
			100*part.ResourceSaving(), part.NumIntermediate, n)
	case "static":
		part, err = eng.PartitionStatic(net)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("partition:     %.1f%% resource saving, %d intermediate reporting states (static hotness analysis, no profiling)\n",
			100*part.ResourceSaving(), part.NumIntermediate)
	default:
		fmt.Fprintf(os.Stderr, "unknown -strategy %q (want profiled or static)\n", *strategy)
		os.Exit(2)
	}

	if *system == "spap" || *system == "all" {
		ctx, cancel := runCtx()
		var res *sparseap.ExecResult
		g := sparseap.DefaultGuard()
		g.Preflight = *preflight
		switch {
		case useCk && *guard:
			res, err = eng.RunGuardedCheckpointed(ctx, part, input, g, mkRunner("spap"))
		case useCk:
			res, err = eng.RunBaseAPSpAPCheckpointed(ctx, part, input, mkRunner("spap"))
		case *guard:
			res, err = eng.RunGuarded(ctx, part, input, g)
		default:
			res, err = eng.RunBaseAPSpAPContext(ctx, part, input)
		}
		cancel()
		crashExit(err)
		fatal(err)
		jr := "-"
		if !math.IsNaN(res.JumpRatio) {
			jr = fmt.Sprintf("%.2f%%", 100*res.JumpRatio)
		}
		fmt.Printf("BaseAP/SpAP:   %d+%d executions, %d cycles, %d reports, %d IM reports, %d stalls, jump %s, speedup %.2fx%s\n",
			res.BaseAPBatches, res.SpAPExecutions, res.TotalCycles, res.NumReports,
			res.IntermediateReports, res.EnableStalls, jr,
			sparseap.Speedup(base.Cycles, res.TotalCycles), note(err))
		if g := res.Guard; g != nil && (g.Trips > 0 || g.BatchFallbacks > 0) {
			fmt.Printf("guard:         %d attempts, %d trips, widened=%v, baseline-fallback=%v, %d batch fallbacks, %d wasted + %d fallback cycles\n",
				g.Attempts, g.Trips, g.Widened, g.FallbackBaseline, g.BatchFallbacks,
				g.WastedCycles, g.FallbackCycles)
		}
		if gs := res.Guard; gs != nil && gs.Preflight != nil {
			pf := gs.Preflight
			fmt.Printf("preflight:     intermediate bound %.3f/cycle, safe=%v, sized=%v, hopeless=%v (witness peak %d, density %.3f/cycle)\n",
				pf.Density, pf.Safe, pf.K != nil, pf.Hopeless, pf.WitnessPeak, pf.WitnessDensity)
		}
		if res.Fault.Any() {
			fmt.Printf("faults hit:    %s\n", res.Fault)
		}
		if rs := res.Resume; rs != nil && rs.Resumed {
			fmt.Printf("resume:        continued in phase %s at position %d (recovered=%v), %d saves this run\n",
				rs.Phase, rs.Pos, rs.Recovered, rs.Saves)
		}
		writeReports(res.Reports)
	}
	if *system == "apcpu" || *system == "all" {
		ctx, cancel := runCtx()
		res, err := eng.RunAPCPUContext(ctx, part, input)
		cancel()
		fatal(err)
		fmt.Printf("AP-CPU:        %d executions, %.3f ms (%.3f ms on CPU), %d reports, speedup %.2fx%s\n",
			res.BaseAPBatches, res.TimeNS/1e6, res.CPUTimeNS/1e6, res.NumReports,
			base.TimeNS/res.TimeNS, note(err))
		if *system == "apcpu" {
			writeReports(res.Reports)
		}
	}
	markDone()
}

// runFingerprint renders the invocation parameters that determine a run's
// checkpointed state, for the manifest's identity check.
func runFingerprint(app, anml, in string, divisor, inputLen int, seed int64, capacity int, system string, guard, preflight, opt bool, faultSpec string, faultSeed int64) string {
	var src string
	if app != "" {
		src = workloads.Config{Divisor: divisor, InputLen: inputLen, Seed: seed, Optimize: opt}.Fingerprint(app)
	} else {
		src = fmt.Sprintf("anml:%s:in:%s:opt%t", anml, in, opt)
	}
	fp := fmt.Sprintf("%s/cap%d/sys%s/guard%t/fault:%s:s%d", src, capacity, system, guard, faultSpec, faultSeed)
	if preflight {
		// Appended only when set so fingerprints of plain guarded runs
		// keep their historical form: a preflighted run may execute a
		// pre-widened partition, so its checkpoints are not resumable
		// into a non-preflighted run (or vice versa).
		fp += "/preflight"
	}
	return fp
}

// writeReportFile writes the report stream as one "pos state" line per
// report — the soak harness's diffable canonical form.
func writeReportFile(path string, reports []sparseap.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range reports {
		fmt.Fprintf(w, "%d %d\n", r.Pos, r.State)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace samples the dynamically enabled state count each cycle and
// writes a CSV usable for frontier-over-time plots.
func writeTrace(path string, net *sparseap.Network, input []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	eng := sim.NewEngine(net, sim.Options{})
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "cycle,enabled,reports")
	reports := int64(0)
	eng.OnReport = func(pos int64, s sparseap.StateID) { reports++ }
	for i, b := range input {
		eng.Step(int64(i), b)
		fmt.Fprintf(w, "%d,%d,%d\n", i, eng.FrontierLen(), reports)
	}
	return w.Flush()
}

// load resolves the application from flags.
func load(appName, anmlPath, inPath string, divisor, inputLen int, seed int64) (*sparseap.Network, []byte, error) {
	switch {
	case appName != "":
		app, err := workloads.Build(appName, workloads.Config{
			Divisor: divisor, InputLen: inputLen, Seed: seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return app.Net, app.Input, nil
	case anmlPath != "":
		if inPath == "" {
			return nil, nil, fmt.Errorf("apsim: -anml requires -in")
		}
		f, err := os.Open(anmlPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		net, err := sparseap.ReadANML(f)
		if err != nil {
			return nil, nil, err
		}
		input, err := os.ReadFile(inPath)
		if err != nil {
			return nil, nil, err
		}
		return net, input, nil
	}
	return nil, nil, fmt.Errorf("apsim: need -app or -anml (try -app Snort)")
}
