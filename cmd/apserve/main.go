// Command apserve runs the fault-tolerant multi-tenant streaming match
// service, or drives one as a load generator.
//
// Server mode (default) makes a set of workload-suite applications
// resident and serves the session protocol over HTTP:
//
//	apserve -addr :8425 -store /var/lib/apserve -apps HM,PEN,TCP
//
// SIGTERM/SIGINT drain gracefully: new work is refused with 503 and
// every in-flight stream session is checkpointed and suspended, so
// clients resume against the next process. SIGKILL (or a crash) loses
// nothing either — sessions resume from their last durable capture with
// exactly-once report delivery.
//
// In a cluster, -peers names sibling nodes and -replicas ships every
// committed checkpoint slot to follower nodes:
//
//	apserve -addr :8425 -store /var/lib/a \
//	        -peers http://b:8425 -replicas http://b:8425 -ack 1
//
// SIGTERM then drain-migrates live sessions to a healthy peer (clients
// follow the `moved` record with no restart wait), and SIGKILL of a
// node only pauses its sessions until the clients fail over to a
// follower holding the replicated slots. Pass -peers to the loadgen too
// so its clients exercise the same failover path.
//
// Loadgen mode exercises a running server and writes a benchmark record:
//
//	apserve -loadgen -url http://127.0.0.1:8425 -apps HM,PEN,TCP \
//	        -streams 2 -requests 64 -overload 32 -bench BENCH_serve.json
//
// Every completed stream is verified bit-identical against a local
// uninterrupted run, so the loadgen doubles as an end-to-end checker.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sparseap/internal/checkpoint"
	"sparseap/internal/metrics"
	"sparseap/internal/replica"
	"sparseap/internal/serve"
	"sparseap/internal/workloads"
)

func main() {
	var (
		addr     = flag.String("addr", ":8425", "listen address (server mode)")
		storeDir = flag.String("store", "", "checkpoint store directory (empty = sessions not resumable)")
		apps     = flag.String("apps", "HM,PEN,TCP", "comma-separated workload abbreviations to make resident")
		divisor  = flag.Int("divisor", 8, "workload scale divisor")
		inputLen = flag.Int("input", 131072, "generated input length")
		seed     = flag.Int64("seed", 1, "generation seed")
		every    = flag.Int64("every", 0, "checkpoint capture interval in symbols (0 = 8192)")

		maxSessions  = flag.Int("max-sessions", 256, "global concurrent session cap (shed 503 beyond)")
		maxPerTenant = flag.Int("max-per-tenant", 32, "per-tenant concurrent session cap (shed 429 beyond)")
		rate         = flag.Float64("rate", 64, "per-tenant admission rate (sessions/sec)")
		burst        = flag.Float64("burst", 0, "per-tenant admission burst (0 = 2x rate)")
		memBudget    = flag.Int64("membudget", 0, "resident memory budget in bytes (0 = unlimited)")
		drainWait    = flag.Duration("drain", 30*time.Second, "graceful drain timeout on SIGTERM")
		batchLanes   = flag.Int("batch-streams", 0, "coalesce concurrent /v1/match calls into batch ticks of up to N lanes (0/1 = solo path)")
		batchWindow  = flag.Duration("batch-window", 0, "admission window a lone match waits for batch company (0 = 500us default)")

		peers    = flag.String("peers", "", "comma-separated sibling node base URLs: migration targets for /v1/migrate, SIGTERM drain-migrates live sessions to them; loadgen mode fails clients over to them")
		replicas = flag.String("replicas", "", "comma-separated follower base URLs: every committed checkpoint slot is shipped to them, so sessions survive this node's loss (requires -store)")
		ack      = flag.Int("ack", 1, "follower acks required before reports release to the client (clamped to the replica count; fewer acks = degraded local-only durability)")

		loadgen  = flag.Bool("loadgen", false, "run as load generator against -url instead of serving")
		url      = flag.String("url", "http://127.0.0.1:8425", "server base URL (loadgen mode)")
		streams  = flag.Int("streams", 2, "verified stream sessions per app (loadgen mode)")
		requests = flag.Int("requests", 64, "match requests in the latency phase (loadgen mode)")
		overload = flag.Int("overload", 0, "concurrent burst size for the overload phase (loadgen mode, 0 = skip)")
		tenants  = flag.Int("tenants", 4, "tenant identities to spread load across (loadgen mode)")
		pace     = flag.Duration("pace", 0, "sleep between stream chunk writes, stretching streams for chaos kills (loadgen mode)")
		benchOut = flag.String("bench", "", "write the benchmark record JSON to this file (loadgen mode)")
	)
	flag.Parse()

	cfg := workloads.Config{Divisor: *divisor, InputLen: *inputLen, Seed: *seed}
	abbrs := splitList(*apps)

	if *loadgen {
		runLoadgen(*url, splitList(*peers), abbrs, cfg, *streams, *requests, *overload, *tenants, *pace, *benchOut)
		return
	}

	scfg := serve.Config{
		Registry:     metrics.NewRegistry(),
		Every:        *every,
		MaxSessions:  *maxSessions,
		MaxPerTenant: *maxPerTenant,
		RatePerSec:   *rate,
		Burst:        *burst,
		MemBudget:    *memBudget,
		BatchStreams: *batchLanes,
		BatchWindow:  *batchWindow,
		Peers:        splitList(*peers),
	}
	if *storeDir != "" {
		store, err := checkpoint.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		scfg.Store = store
		if followers := splitList(*replicas); len(followers) > 0 {
			// Share the server's registry so the replication counters
			// and the lag gauge surface on this node's /metrics.
			scfg.Store = replica.New(store, replica.Options{
				Followers: followers, Ack: *ack, Registry: scfg.Registry,
			})
			fmt.Printf("apserve: replicating checkpoints to %s (ack quorum %d)\n",
				strings.Join(followers, ", "), *ack)
		}
	} else if *replicas != "" {
		fatal(fmt.Errorf("-replicas requires -store (nothing to ship without a local checkpoint store)"))
	}
	s := serve.New(scfg)
	for _, abbr := range abbrs {
		app, err := workloads.Build(abbr, cfg)
		if err != nil {
			fatal(err)
		}
		if err := s.AddApp(abbr, app.Net, cfg.Fingerprint(abbr)); err != nil {
			fatal(err)
		}
		fmt.Printf("apserve: %s resident (%d states)\n", abbr, app.Net.Len())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("apserve: listening on %s (store=%q)\n", l.Addr(), *storeDir)

	// Drain closes the HTTP server, so Serve returns nil mid-drain; wait
	// for the drain goroutine before exiting or its outcome is lost.
	drained := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigCh
		// With peers configured, hand live sessions to a healthy sibling
		// (clients follow `moved` with no restart wait); otherwise
		// checkpoint-and-suspend them for the next process.
		if len(scfg.Peers) > 0 {
			fmt.Printf("apserve: %v: drain-migrating to peers (timeout %v)\n", sig, *drainWait)
			if err := s.DrainMigrate(*drainWait); err != nil {
				fmt.Fprintln(os.Stderr, "apserve:", err)
				os.Exit(1)
			}
		} else {
			fmt.Printf("apserve: %v: draining (timeout %v)\n", sig, *drainWait)
			if err := s.Drain(*drainWait); err != nil {
				fmt.Fprintln(os.Stderr, "apserve:", err)
				os.Exit(1)
			}
		}
		fmt.Println("apserve: drained cleanly")
		close(drained)
	}()
	if err := s.Serve(l); err != nil {
		fatal(err)
	}
	<-drained
}

func runLoadgen(url string, peers, abbrs []string, cfg workloads.Config, streams, requests, overload, tenants int, pace time.Duration, benchOut string) {
	bench, err := serve.RunLoadgen(context.Background(), serve.LoadgenOptions{
		URL:           url,
		Peers:         peers,
		Apps:          abbrs,
		AppConfig:     cfg,
		StreamsPerApp: streams,
		Requests:      requests,
		Overload:      overload,
		Tenants:       tenants,
		Pace:          pace,
	})
	if bench != nil {
		fmt.Printf("loadgen: %d/%d streams verified bit-identical (%d resumes, %d retries, %d sheds, %d failovers, %d restarts)\n",
			bench.StreamsOK, bench.Streams, bench.Resumes, bench.Retries, bench.Sheds, bench.Failovers, bench.Restarts)
		fmt.Printf("loadgen: %d/%d matches accepted; latency p50 %.2fms p99 %.2fms mean %.2fms\n",
			bench.MatchAccepted, bench.Requests, bench.P50Ms, bench.P99Ms, bench.MeanMs)
		if overload > 0 {
			fmt.Printf("loadgen: overload %d accepted, %d shed, %d failed-accepted\n",
				bench.OverloadOK, bench.OverloadShed, bench.FailedAccepted)
		}
	}
	if err != nil {
		fatal(err)
	}
	if bench.FailedAccepted > 0 {
		fatal(fmt.Errorf("loadgen: %d accepted requests failed — admission control lied", bench.FailedAccepted))
	}
	if benchOut != "" {
		if err := serve.WriteBenchServe(benchOut, bench); err != nil {
			fatal(err)
		}
		fmt.Printf("loadgen: wrote %s\n", benchOut)
	}
}

func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apserve:", err)
	os.Exit(1)
}
