// Command apstat prints Table II-style structural statistics for a
// built-in application, an ANML file, or the whole generated suite.
//
//	apstat -list                 # names of the 26 built-in applications
//	apstat -app CAV4k            # one application's statistics
//	apstat -anml rules.anml      # statistics of an ANML automaton
//	apstat -all                  # the full Table II
//	apstat -all -opt             # states/edges before vs after apopt
package main

import (
	"flag"
	"fmt"
	"os"

	"sparseap"
	"sparseap/internal/ap"
	"sparseap/internal/exp"
	"sparseap/internal/graph"
	"sparseap/internal/hotness"
	"sparseap/internal/metrics"
	"sparseap/internal/sim"
	"sparseap/internal/workloads"
	"sparseap/internal/worstcase"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list built-in application names")
		all      = flag.Bool("all", false, "print Table II for the whole suite")
		appName  = flag.String("app", "", "built-in application abbreviation")
		anmlPath = flag.String("anml", "", "ANML automaton file")
		divisor  = flag.Int("divisor", 8, "workload scale divisor")
		inputLen = flag.Int("input", 131072, "generated input length")
		seed     = flag.Int64("seed", 1, "generation seed")
		opt      = flag.Bool("opt", false, "also show states/edges after the proof-carrying rewriter (apopt)")
		hot      = flag.Bool("hotness", false, "also show the static hotness analysis (predicted hot fraction, per-NFA cut layers; with -app, accuracy vs the actual hot set)")
		worst    = flag.Bool("worstcase", false, "also show the certified worst-case analysis (frontier/report bounds by layer, adversarial witness, bound/witness gap); with -all, the whole-suite table. Exits nonzero on a soundness violation")
	)
	flag.Parse()
	wl := workloads.Config{Divisor: *divisor, InputLen: *inputLen, Seed: *seed}

	switch {
	case *list:
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
	case *all && *worst:
		if err := printWorstTable(wl); err != nil {
			fail(err)
		}
	case *all && *opt:
		if err := printOptTable(wl); err != nil {
			fail(err)
		}
	case *all:
		suite := exp.NewSuite(wl, ap.DefaultConfig())
		res, err := exp.Table2(suite)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	case *appName != "":
		app, err := workloads.Build(*appName, wl)
		if err != nil {
			fail(err)
		}
		printStats(app.Name, app.Net, *opt)
		if *hot {
			printHotness(app.Net, app.Input)
		}
		if *worst {
			if !printWorstCase(app.Net, app.Input) {
				fail(fmt.Errorf("apstat: worst-case analysis unsound for %s", app.Name))
			}
		}
	case *anmlPath != "":
		f, err := os.Open(*anmlPath)
		if err != nil {
			fail(err)
		}
		net, err := sparseap.ReadANML(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		printStats(*anmlPath, net, *opt)
		if *hot {
			printHotness(net, nil)
		}
		if *worst {
			if !printWorstCase(net, nil) {
				fail(fmt.Errorf("apstat: worst-case analysis unsound for %s", *anmlPath))
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printOptTable renders the suite with the -opt columns: structural size
// before and after the proof-carrying rewriter, plus the STE saving.
func printOptTable(wl workloads.Config) error {
	apps, err := workloads.BuildAll(wl)
	if err != nil {
		return err
	}
	t := metrics.NewTable("App", "States", "Opt", "Saved%", "Edges", "Opt", "NFAs", "Opt")
	for _, app := range apps {
		_, st, err := sparseap.Minimize(app.Net)
		if err != nil {
			return err
		}
		saved := 0.0
		if st.StatesBefore > 0 {
			saved = 100 * float64(st.StatesRemoved()) / float64(st.StatesBefore)
		}
		t.AddRowf(app.Abbr, st.StatesBefore, st.StatesAfter, saved,
			st.EdgesBefore, st.EdgesAfter, st.NFAsBefore, st.NFAsAfter)
	}
	fmt.Print(t)
	return nil
}

func printStats(name string, net *sparseap.Network, opt bool) {
	st := net.ComputeStats()
	topo := graph.TopoOrder(net)
	maxTopo, sumTopo := int32(0), int64(0)
	for _, m := range topo.MaxPerNFA {
		if m > maxTopo {
			maxTopo = m
		}
		sumTopo += int64(m)
	}
	maxSCC := int32(0)
	for _, s := range topo.SCC.Size {
		if s > maxSCC {
			maxSCC = s
		}
	}
	t := metrics.NewTable("Metric", "Value")
	t.AddRowf("states", st.States)
	t.AddRowf("NFAs", st.NFAs)
	t.AddRowf("edges", st.Edges)
	t.AddRowf("reporting states", st.Reporting)
	t.AddRowf("start states", st.Starts)
	t.AddRowf("start-of-data", fmt.Sprint(st.StartOfData))
	t.AddRowf("max topological order", maxTopo)
	t.AddRowf("avg max topo per NFA", float64(sumTopo)/float64(st.NFAs))
	t.AddRowf("largest SCC", maxSCC)
	if opt {
		_, ost, err := sparseap.Minimize(net)
		if err != nil {
			fail(err)
		}
		t.AddRowf("states after apopt", ost.StatesAfter)
		t.AddRowf("edges after apopt", ost.EdgesAfter)
		t.AddRowf("NFAs after apopt", ost.NFAsAfter)
		saved := 0.0
		if ost.StatesBefore > 0 {
			saved = 100 * float64(ost.StatesRemoved()) / float64(ost.StatesBefore)
		}
		t.AddRowf("STE saving %", saved)
	}
	fmt.Printf("%s\n%s", name, t)
}

// printHotness renders the static hotness analysis: predicted hot
// fraction, score distribution and the per-NFA static cut summary. With a
// non-nil input it also scores the prediction against the actual hot set
// that input enables (accuracy, and the two error directions separately —
// a miss costs an intermediate report, a false alarm only wastes hot
// capacity).
func printHotness(net *sparseap.Network, input []byte) {
	a := hotness.Analyze(net, hotness.Config{})
	pred := a.Hot()
	k := a.Layers()
	sumK, sumMax := int64(0), int64(0)
	full := 0
	for u, ku := range k {
		sumK += int64(ku)
		sumMax += int64(a.Topo.MaxPerNFA[u])
		if ku == a.Topo.MaxPerNFA[u] {
			full++
		}
	}
	t := metrics.NewTable("Hotness", "Value")
	t.AddRowf("predicted hot states", pred.Count())
	t.AddRowf("predicted hot fraction", a.HotFrac())
	t.AddRowf("mean static cut k/max", fmt.Sprintf("%.2f/%.2f",
		float64(sumK)/float64(len(k)), float64(sumMax)/float64(len(k))))
	t.AddRowf("NFAs cut fully hot", fmt.Sprintf("%d of %d", full, len(k)))
	if input != nil {
		actual := sim.HotStates(net, input)
		agree, misses, alarms := 0, 0, 0
		for s := 0; s < net.Len(); s++ {
			p, h := pred.Get(s), actual.Get(s)
			switch {
			case p == h:
				agree++
			case h:
				misses++
			default:
				alarms++
			}
		}
		t.AddRowf("actual hot states", actual.Count())
		t.AddRowf("prediction accuracy", float64(agree)/float64(net.Len()))
		t.AddRowf("missed hot (cost: intermediates)", misses)
		t.AddRowf("false alarms (cost: capacity)", alarms)
	}
	fmt.Print(t)
}

// printWorstCase renders the certified worst-case analysis of one
// network: the frontier bound with each refinement layer's contribution,
// the report bound, and the adversarial witness certification. A non-nil
// input seeds the witness portfolio (so the witness is never worse than
// the canonical input) and its length caps the search. Returns false on
// a soundness violation — the witness replay out-running the bound.
func printWorstCase(net *sparseap.Network, input []byte) bool {
	a := worstcase.Analyze(net, worstcase.Config{})
	opts := worstcase.WitnessOptions{}
	if input != nil {
		opts.MaxLen = len(input)
		opts.Seeds = [][]byte{input}
	}
	w, rep := a.Certify(opts)
	t := metrics.NewTable("Worst case", "Value")
	t.AddRowf("frontier bound", a.FrontierBound)
	t.AddRowf("  layer 1 (per-symbol)", a.Bound1)
	t.AddRowf("  layer 2 (anti-chain)", a.BoundPair)
	t.AddRowf("  layer 3 (k-gram)", a.BoundGram)
	t.AddRowf("start-of-data width", a.StartWidth)
	t.AddRowf("trackable states", a.Trackable)
	t.AddRowf("frontier fraction", a.FrontierFraction())
	t.AddRowf("report bound/cycle", a.ReportBound)
	t.AddRowf("witness peak frontier", rep.PeakFrontier)
	t.AddRowf("witness length", len(w.Input))
	t.AddRowf("bound/witness gap", rep.Gap)
	t.AddRowf("sound (replay ≤ bound)", rep.Sound)
	fmt.Print(t)
	return rep.Sound
}

// printWorstTable renders the whole-suite worst-case table: per-app
// bounds, witness peaks and gaps. It fails (error return) when any app's
// replay violates its bound.
func printWorstTable(wl workloads.Config) error {
	apps, err := workloads.BuildAll(wl)
	if err != nil {
		return err
	}
	t := metrics.NewTable("App", "Bound", "L1", "L2", "L3", "Report", "Witness", "Gap", "Sound")
	unsound := 0
	for _, app := range apps {
		a := worstcase.Analyze(app.Net, worstcase.Config{})
		_, rep := a.Certify(worstcase.WitnessOptions{
			MaxLen: len(app.Input),
			Seeds:  [][]byte{app.Input},
		})
		if !rep.Sound {
			unsound++
		}
		t.AddRowf(app.Abbr, a.FrontierBound, a.Bound1, a.BoundPair, a.BoundGram,
			a.ReportBound, rep.PeakFrontier, rep.Gap, rep.Sound)
	}
	fmt.Print(t)
	if unsound > 0 {
		return fmt.Errorf("apstat: worst-case analysis unsound for %d application(s)", unsound)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
