// Command anml2dot converts an ANML automaton (or a compiled regex) into
// Graphviz DOT for visualization:
//
//	anml2dot -anml fig2.anml > fig2.dot
//	anml2dot -regex 'a((bc)|(cd)+)f' | dot -Tpng > fig2.png
package main

import (
	"flag"
	"fmt"
	"os"

	"sparseap"
	"sparseap/internal/anml"
)

func main() {
	var (
		anmlPath = flag.String("anml", "", "ANML file to convert")
		regex    = flag.String("regex", "", "regex to compile and convert")
		name     = flag.String("name", "automaton", "graph name")
	)
	flag.Parse()

	var (
		net *sparseap.Network
		err error
	)
	switch {
	case *anmlPath != "":
		f, ferr := os.Open(*anmlPath)
		if ferr != nil {
			fail(ferr)
		}
		net, err = sparseap.ReadANML(f)
		f.Close()
	case *regex != "":
		net, err = sparseap.CompileRegex([]string{*regex})
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	if err := anml.WriteDOT(os.Stdout, net, *name); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
