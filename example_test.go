package sparseap_test

import (
	"fmt"

	"sparseap"
)

// ExampleMatch demonstrates plain functional matching.
func ExampleMatch() {
	net, _ := sparseap.CompileRegex([]string{"ab+c"})
	for _, r := range sparseap.Match(net, []byte("xx abc abbbc")) {
		fmt.Println("match ends at", r.Pos)
	}
	// Output:
	// match ends at 5
	// match ends at 11
}

// ExampleEngine_RunBaseAPSpAP walks the paper's full pipeline: baseline
// batched execution, profiling-based partitioning, and the two-mode
// BaseAP/SpAP run.
func ExampleEngine_RunBaseAPSpAP() {
	net, _ := sparseap.CompileRegex([]string{"alpha[0-9]", "beta[0-9]", "gamma[0-9]"})
	input := []byte("noise alpha7 noise beta3 noise")

	// A 12-STE half-core: the 18-state application needs 2 batches.
	eng := sparseap.NewEngine(sparseap.DefaultAPConfig().WithCapacity(12))
	base, _ := eng.RunBaseline(net, input)
	part, _ := eng.Partition(net, input[:6]) // profile on "noise "
	res, _ := eng.RunBaseAPSpAP(part, input)

	fmt.Println("baseline batches:", base.Batches)
	fmt.Println("matches preserved:", res.NumReports == base.Reports)
	// Output:
	// baseline batches: 2
	// matches preserved: true
}

// ExampleAnalyze shows the hot/cold characterization of Figure 1.
func ExampleAnalyze() {
	net, _ := sparseap.CompileRegex([]string{"abcdefgh"})
	a := sparseap.Analyze(net, []byte("abab abab"))
	fmt.Printf("states=%d hot=%d\n", a.States, a.Hot)
	// Output:
	// states=8 hot=3
}

// ExampleHammingNFA builds a bounded-mismatch motif automaton.
func ExampleHammingNFA() {
	m := sparseap.HammingNFA([]byte("GATTACA"), 1)
	net := sparseap.NewNetwork(m)
	fmt.Println("hits:", len(sparseap.Match(net, []byte("GATCACA"))))
	// Output:
	// hits: 1
}

// ExampleOptimize shows compile-time prefix sharing across rules.
func ExampleOptimize() {
	net, _ := sparseap.CompileRegex([]string{"prefix-one", "prefix-two"})
	_, stats := sparseap.Optimize(net)
	fmt.Println("states saved:", stats.Before-stats.After)
	// Output:
	// states saved: 7
}
