// Package sparseap is a Go reproduction of "Architectural Support for
// Efficient Large-Scale Automata Processing" (MICRO 2018): a toolchain for
// running large homogeneous-NFA applications on a modeled Automata
// Processor (AP) with profiling-based hot/cold state partitioning and the
// SparseAP (SpAP) sparse execution mode.
//
// The typical pipeline is:
//
//	net, _ := sparseap.CompileRegex([]string{"virus[0-9]+", "worm.{4}sig"})
//	eng := sparseap.NewEngine(sparseap.DefaultAPConfig())
//	part, _ := eng.Partition(net, profilingInput)           // compile time
//	res, _ := eng.RunBaseAPSpAP(part, input)                // BaseAP + SpAP
//	base, _ := eng.RunBaseline(net, input)                  // batched AP
//	fmt.Println(sparseap.Speedup(base.Cycles, res.TotalCycles))
//
// The heavy lifting lives in the internal packages (automata model,
// functional simulator, AP hardware model, partitioner, SpAP executor,
// workload generators); this package is the stable surface a downstream
// user needs.
package sparseap

import (
	"io"

	"sparseap/internal/anml"
	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/graph"
	"sparseap/internal/hotcold"
	"sparseap/internal/metrics"
	"sparseap/internal/regexc"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
	"sparseap/internal/workloads"
)

// Core model types.
type (
	// Network is an application: a set of NFAs in one global state space.
	Network = automata.Network
	// NFA is a single homogeneous automaton.
	NFA = automata.NFA
	// StateID identifies a state within an NFA or Network.
	StateID = automata.StateID
	// State is one homogeneous NFA state (one STE).
	State = automata.State
	// Report is one match event (input position, reporting state).
	Report = sim.Report
	// APConfig describes an AP half-core.
	APConfig = ap.Config
	// CPUModel is the AP–CPU handler cost model.
	CPUModel = spap.CPUModel
	// Partition is a compiled hot/cold split with intermediate reporting
	// states and translation table.
	Partition = hotcold.Partition
	// ExecResult summarizes a partitioned execution.
	ExecResult = spap.Result
	// BaselineResult summarizes a baseline batched execution.
	BaselineResult = ap.BaselineResult
)

// Start kinds (ANML).
const (
	StartNone     = automata.StartNone
	StartAllInput = automata.StartAllInput
	StartOfData   = automata.StartOfData
)

// DefaultAPConfig returns the 1/8-scaled AP half-core used throughout the
// repository's experiments (3K STEs); see ap.PaperConfig for the full 24K
// half-core.
func DefaultAPConfig() APConfig { return ap.DefaultConfig() }

// PaperAPConfig returns the paper's 24K-STE half-core.
func PaperAPConfig() APConfig { return ap.PaperConfig() }

// CompileRegex compiles each pattern into one NFA and flattens them into a
// network. See internal/regexc for the supported syntax.
func CompileRegex(patterns []string) (*Network, error) {
	return regexc.CompileAll(patterns, regexc.Options{})
}

// CompilePattern compiles a single pattern into an NFA.
func CompilePattern(pattern string) (*NFA, error) {
	return regexc.Compile(pattern, regexc.Options{})
}

// NewNetwork flattens NFAs into a Network.
func NewNetwork(nfas ...*NFA) *Network { return automata.NewNetwork(nfas...) }

// HammingNFA builds a bounded-mismatch automaton accepting every string
// within Hamming distance d of pattern (the ANMLZoo BMIA construction).
func HammingNFA(pattern []byte, d int) *NFA { return workloads.BMIA(pattern, d) }

// ReadANML parses an ANML document into a network.
func ReadANML(r io.Reader) (*Network, error) { return anml.Read(r) }

// WriteANML serializes a network as an ANML document.
func WriteANML(w io.Writer, net *Network, name string) error {
	return anml.Write(w, net, name)
}

// Match runs the network functionally over input and returns all reports —
// the plain software-simulation path, independent of any AP model.
func Match(net *Network, input []byte) []Report {
	return sim.Run(net, input, sim.Options{CollectReports: true}).Reports
}

// CountHot returns how many states are ever enabled when net consumes
// input — the paper's hot-state count (Figure 1).
func CountHot(net *Network, input []byte) int {
	return sim.HotStates(net, input).Count()
}

// Speedup returns baselineCycles / newCycles.
func Speedup(baselineCycles, newCycles int64) float64 {
	return metrics.Speedup(baselineCycles, newCycles)
}

// Engine bundles an AP configuration with the three execution systems of
// the paper's Table III.
type Engine struct {
	AP  APConfig
	CPU CPUModel
	// Faults, when non-nil, injects runtime faults into every execution
	// the engine runs (see NewFaultInjector); Result.Fault reports what
	// was applied.
	Faults *FaultInjector
}

// NewEngine returns an engine for the given AP configuration with the
// default CPU cost model.
func NewEngine(cfg APConfig) *Engine {
	return &Engine{AP: cfg, CPU: spap.DefaultCPUModel()}
}

// execOpts is the execution configuration every Engine run shares.
func (e *Engine) execOpts() spap.Options {
	return spap.Options{CollectReports: true, Faults: e.Faults}
}

// RunBaseline executes the baseline batched AP system: NFA-granularity
// batches, each re-streaming the whole input.
func (e *Engine) RunBaseline(net *Network, input []byte) (*BaselineResult, error) {
	return ap.RunBaseline(net, input, e.AP)
}

// Partition profiles the network on profInput and builds the hot/cold
// partition with the batch-filling optimization at the engine's capacity.
func (e *Engine) Partition(net *Network, profInput []byte) (*Partition, error) {
	return hotcold.BuildFromProfile(net, profInput, hotcold.Options{Capacity: e.AP.Capacity})
}

// PartitionStatic builds the hot/cold partition from the static hotness
// analysis alone — no profiling input required. The report stream of any
// partitioned execution is identical to Partition's; only the cycle cost
// differs with prediction quality.
func (e *Engine) PartitionStatic(net *Network) (*Partition, error) {
	return hotcold.BuildWithStrategy(net, hotcold.StrategyStatic, hotcold.StrategyInput{},
		hotcold.Options{Capacity: e.AP.Capacity})
}

// RunBaseAPSpAP executes a partition under the BaseAP/SpAP system and
// collects the final reports.
func (e *Engine) RunBaseAPSpAP(p *Partition, input []byte) (*ExecResult, error) {
	return spap.RunBaseAPSpAP(p, input, e.AP, e.execOpts())
}

// RunAPCPU executes a partition under the AP–CPU system (mis-prediction
// handling on a modeled CPU) and collects the final reports.
func (e *Engine) RunAPCPU(p *Partition, input []byte) (*ExecResult, error) {
	return spap.RunAPCPU(p, input, e.AP, e.CPU, e.execOpts())
}

// Analyze returns summary statistics used across the paper's
// characterization: state/NFA counts, the maximum topological order, and
// the hot fraction under the given input.
type Analysis struct {
	States    int
	NFAs      int
	Reporting int
	MaxTopo   int32
	Hot       int
	HotFrac   float64
}

// Analyze characterizes a network against an input (Figures 1 and 5).
func Analyze(net *Network, input []byte) Analysis {
	st := net.ComputeStats()
	topo := graph.TopoOrder(net)
	maxTopo := int32(0)
	for _, m := range topo.MaxPerNFA {
		if m > maxTopo {
			maxTopo = m
		}
	}
	hot := sim.HotStates(net, input).Count()
	hotFrac := 0.0
	if st.States > 0 {
		hotFrac = float64(hot) / float64(st.States)
	}
	return Analysis{
		States:    st.States,
		NFAs:      st.NFAs,
		Reporting: st.Reporting,
		MaxTopo:   maxTopo,
		Hot:       hot,
		HotFrac:   hotFrac,
	}
}
