// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact), plus microbenchmarks of the core engines.
//
// The per-artifact benchmarks run the experiment drivers at 1/32 of the
// paper's scale so `go test -bench=.` stays interactive; key results are
// attached as custom benchmark metrics. `cmd/apbench` runs the same
// drivers at the full 1/8 evaluation scale (or -divisor 1 for paper size).
package sparseap_test

import (
	"sync"
	"testing"

	"sparseap"
	"sparseap/internal/ap"
	"sparseap/internal/exp"
	"sparseap/internal/workloads"
)

// benchSuite is shared across benchmarks: building all 26 applications and
// their cached artifacts once keeps -bench runs proportionate.
var (
	suiteOnce sync.Once
	suite     *exp.Suite
)

func benchSuite() *exp.Suite {
	suiteOnce.Do(func() {
		wl := workloads.Config{InputLen: 16384, Divisor: 32, Seed: 1}
		suite = exp.NewSuite(wl, ap.DefaultConfig().WithCapacity(750))
	})
	return suite
}

func BenchmarkTable2Inventory(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		res, err := exp.Table2(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 26 {
			b.Fatal("missing applications")
		}
	}
}

func BenchmarkFig1HotCold(b *testing.B) {
	s := benchSuite()
	var avgCold float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig1(s)
		if err != nil {
			b.Fatal(err)
		}
		avgCold = res.AvgColdFrac
	}
	b.ReportMetric(100*avgCold, "avgCold%")
}

func BenchmarkFig5DepthDistribution(b *testing.B) {
	s := benchSuite()
	var corr float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig5(s)
		if err != nil {
			b.Fatal(err)
		}
		corr = res.AvgCorrelation
	}
	b.ReportMetric(corr, "depthHotCorr")
}

func BenchmarkTable1Profiling(b *testing.B) {
	s := benchSuite()
	var recall1 float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Table1(s)
		if err != nil {
			b.Fatal(err)
		}
		recall1 = res.Rows[1].Recall // the 1% column
	}
	b.ReportMetric(100*recall1, "recall@1%")
}

func BenchmarkFig8Constrained(b *testing.B) {
	s := benchSuite()
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig8(s)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.Avg
	}
	b.ReportMetric(100*avg, "avgConstrained%")
}

func BenchmarkFig10aSpeedup(b *testing.B) {
	s := benchSuite()
	var geo float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		geo = res.GeoSpAP1
	}
	b.ReportMetric(geo, "geomeanSpAP@1%")
}

func BenchmarkFig10bResourceSavings(b *testing.B) {
	s := benchSuite()
	var sum float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		sum = 0
		for _, row := range res.Rows {
			sum += row.Saving1
		}
		sum /= float64(len(res.Rows))
	}
	b.ReportMetric(100*sum, "avgSaving@1%")
}

func BenchmarkFig11PerfPerSTE(b *testing.B) {
	s := benchSuite()
	var improve float64
	for i := 0; i < b.N; i++ {
		c := s.AP.Capacity
		res, err := exp.Fig11(s, []int{c / 4, c / 2, c, c * 49 / 24})
		if err != nil {
			b.Fatal(err)
		}
		improve = res.Rows[2].ImprovePct
	}
	b.ReportMetric(improve, "halfCoreImprove%")
}

func BenchmarkFig12ReportingStates(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig12(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 16 {
			b.Fatal("missing applications")
		}
	}
}

func BenchmarkTable4RuntimeStats(b *testing.B) {
	s := benchSuite()
	var reports int64
	for i := 0; i < b.N; i++ {
		res, err := exp.Table4(s)
		if err != nil {
			b.Fatal(err)
		}
		reports = 0
		for _, row := range res.Rows {
			reports += row.IntermediateReports
		}
	}
	b.ReportMetric(float64(reports), "totalIMReports")
}

func BenchmarkFig13Sensitivity(b *testing.B) {
	s := benchSuite()
	var lowGeo, highGeo float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig13(s)
		if err != nil {
			b.Fatal(err)
		}
		lowGeo, highGeo = res.Low.GeoSpAP1, res.High.GeoSpAP1
	}
	b.ReportMetric(lowGeo, "lowGroupGeo")
	b.ReportMetric(highGeo, "highGroupGeo")
}

// --- microbenchmarks of the core engines ---

// BenchmarkSimulatorThroughput measures functional NFA simulation in
// symbols/op over the Snort workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	app, err := workloads.Build("Snort", workloads.Config{InputLen: 65536, Divisor: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(app.Input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparseap.CountHot(app.Net, app.Input)
	}
}

// BenchmarkPartitionBuild measures the compile-time cost of profiling +
// partition construction.
func BenchmarkPartitionBuild(b *testing.B) {
	app, err := workloads.Build("Brill", workloads.Config{InputLen: 32768, Divisor: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	eng := sparseap.NewEngine(sparseap.DefaultAPConfig().WithCapacity(750))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Partition(app.Net, app.Input[:512]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpAPExecution measures the two-mode executor end to end.
func BenchmarkSpAPExecution(b *testing.B) {
	app, err := workloads.Build("Pro", workloads.Config{InputLen: 32768, Divisor: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	eng := sparseap.NewEngine(sparseap.DefaultAPConfig().WithCapacity(750))
	part, err := eng.Partition(app.Net, app.Input[:512])
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(app.Input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunBaseAPSpAP(part, app.Input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegexCompile measures the Glushkov compiler on a Snort-like
// rule set.
func BenchmarkRegexCompile(b *testing.B) {
	patterns := []string{
		"abcdef[0-9]{4}xyz", "GET\\x20[a-z/]{8}", "x.*y.*z{2,8}",
		"[A-Za-z]{12}tail", "\\x00\\x01.{64}\\xff",
	}
	for i := 0; i < b.N; i++ {
		if _, err := sparseap.CompileRegex(patterns); err != nil {
			b.Fatal(err)
		}
	}
}
