#!/usr/bin/env bash
# Serve soak: kill/resume across a real process boundary. A loadgen
# streams every app through a live apserve while this harness SIGKILLs
# the serving process mid-stream and restarts it on the same checkpoint
# store. The loadgen verifies every completed stream bit-identical
# against an uninterrupted local run, so the cell proves exactly-once
# report delivery across genuine process death — the in-process
# equivalent (Server.Abort) lives in chaos_test.go.
#
#   scripts/serve_soak.sh            # default app set (HM PEN TCP)
#   scripts/serve_soak.sh HM         # explicit app list (smoke: one app)
#
# Environment knobs:
#   SERVE_SOAK_PORT      listen port                   (default 18425)
#   SERVE_SOAK_DIVISOR   network scale divisor         (default 8)
#   SERVE_SOAK_INPUT     input length in symbols       (default 131072)
#   SERVE_SOAK_EVERY     checkpoint interval           (default 2048)
#   SERVE_SOAK_KILLS     SIGKILLs delivered mid-run    (default 2)
#   SERVE_SOAK_STREAMS   verified streams per app      (default 2)
#   SERVE_SOAK_PACE      per-chunk stream pacing       (default 10ms)
set -euo pipefail
cd "$(dirname "$0")/.."

port=${SERVE_SOAK_PORT:-18425}
divisor=${SERVE_SOAK_DIVISOR:-8}
input=${SERVE_SOAK_INPUT:-131072}
every=${SERVE_SOAK_EVERY:-2048}
kills=${SERVE_SOAK_KILLS:-2}
streams=${SERVE_SOAK_STREAMS:-2}
pace=${SERVE_SOAK_PACE:-10ms}
apps=("$@")
[[ ${#apps[@]} -eq 0 ]] && apps=(HM PEN TCP)
applist=$(IFS=,; echo "${apps[*]}")
url="http://127.0.0.1:$port"

work=$(mktemp -d)
server_pid=""
loadgen_pid=""
cleanup() {
    [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
    [[ -n "$loadgen_pid" ]] && kill "$loadgen_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

apserve="$work/apserve"
go build -o "$apserve" ./cmd/apserve

# The loadgen rebuilds each app locally to verify streams, so the scale
# flags must be identical on both sides.
common=(-apps "$applist" -divisor "$divisor" -input "$input")

start_server() {
    "$apserve" "${common[@]}" -addr "127.0.0.1:$port" \
        -store "$work/store" -every "$every" >>"$work/server.log" 2>&1 &
    server_pid=$!
    disown "$server_pid" # keep job control quiet about the SIGKILLs
    for _ in $(seq 100); do
        if curl -fsS -o /dev/null "$url/healthz" 2>/dev/null; then
            return 0
        fi
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "serve_soak: server died during startup:" >&2
            tail -5 "$work/server.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "serve_soak: server never became ready on $url" >&2
    exit 1
}

start_server

# Stream phase is paced, so it stays in flight long enough for every
# SIGKILL below to land mid-stream; the match phases run afterwards
# against the final (stable) server generation.
"$apserve" -loadgen -url "$url" "${common[@]}" \
    -streams "$streams" -requests 16 -overload 0 -pace "$pace" \
    >"$work/loadgen.log" 2>&1 &
loadgen_pid=$!

delivered=0
sleep 0.2
for (( k = 0; k < kills; k++ )); do
    if ! kill -0 "$loadgen_pid" 2>/dev/null; then
        break # loadgen finished before the full kill plan fired
    fi
    kill -9 "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    delivered=$((delivered + 1))
    start_server
    sleep 0.2
done

status=0
wait "$loadgen_pid" || status=$?
loadgen_pid=""
if (( status != 0 )); then
    echo "serve_soak: loadgen failed (exit $status):" >&2
    tail -20 "$work/loadgen.log" >&2
    exit 1
fi
if (( delivered < kills )); then
    echo "serve_soak: only $delivered/$kills kills landed before the loadgen finished" >&2
    echo "serve_soak: raise SERVE_SOAK_PACE or SERVE_SOAK_INPUT" >&2
    exit 1
fi

# The loadgen prints "... (N resumes, M retries, K sheds)"; a kill that
# truly interrupted live streams forces at least one reconnect.
retries=$(grep -o '[0-9]* retries' "$work/loadgen.log" | head -1 | cut -d' ' -f1)
if [[ -z "$retries" || "$retries" -eq 0 ]]; then
    echo "serve_soak: $delivered kills landed but no client ever retried:" >&2
    cat "$work/loadgen.log" >&2
    exit 1
fi

grep 'streams verified' "$work/loadgen.log"
echo "serve_soak: apps=$applist: $delivered kills, $retries retries, streams identical"
