#!/usr/bin/env bash
# Cluster soak: node loss across a real process boundary. Node A
# replicates every committed checkpoint slot to follower B (ack quorum
# 1, so reports release to clients only once B holds the covering
# slot). A loadgen streams every app through A with B as a failover
# peer while this harness SIGKILLs A mid-stream — and never restarts
# it. The clients must fail over to B, resume from the replicated
# slots, and verify every completed stream bit-identical against an
# uninterrupted local run, with zero forced restarts. The in-process
# equivalent (Server.Abort) lives in chaos_test.go
# (TestChaosServeClusterFailover).
#
#   scripts/cluster_soak.sh          # default app set (HM PEN TCP)
#   scripts/cluster_soak.sh HM       # explicit app list (smoke: one app)
#
# Environment knobs:
#   CLUSTER_SOAK_PORT_A   node A listen port            (default 18427)
#   CLUSTER_SOAK_PORT_B   node B listen port            (default 18428)
#   CLUSTER_SOAK_DIVISOR  network scale divisor         (default 8)
#   CLUSTER_SOAK_INPUT    input length in symbols       (default 131072)
#   CLUSTER_SOAK_EVERY    checkpoint interval           (default 2048)
#   CLUSTER_SOAK_STREAMS  verified streams per app      (default 2)
#   CLUSTER_SOAK_PACE     per-chunk stream pacing       (default 20ms)
#
# The stream phase must outlast the 0.4s kill delay below: with the
# loadgen's 4096-byte chunks, a stream takes (INPUT/4096)*PACE, so keep
# that product comfortably above 0.4s when overriding INPUT or PACE.
set -euo pipefail
cd "$(dirname "$0")/.."

port_a=${CLUSTER_SOAK_PORT_A:-18427}
port_b=${CLUSTER_SOAK_PORT_B:-18428}
divisor=${CLUSTER_SOAK_DIVISOR:-8}
input=${CLUSTER_SOAK_INPUT:-131072}
every=${CLUSTER_SOAK_EVERY:-2048}
streams=${CLUSTER_SOAK_STREAMS:-2}
pace=${CLUSTER_SOAK_PACE:-20ms}
apps=("$@")
[[ ${#apps[@]} -eq 0 ]] && apps=(HM PEN TCP)
applist=$(IFS=,; echo "${apps[*]}")
url_a="http://127.0.0.1:$port_a"
url_b="http://127.0.0.1:$port_b"

work=$(mktemp -d)
pid_a=""
pid_b=""
loadgen_pid=""
cleanup() {
    [[ -n "$pid_a" ]] && kill -9 "$pid_a" 2>/dev/null || true
    [[ -n "$pid_b" ]] && kill -9 "$pid_b" 2>/dev/null || true
    [[ -n "$loadgen_pid" ]] && kill "$loadgen_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

apserve="$work/apserve"
go build -o "$apserve" ./cmd/apserve

# The loadgen rebuilds each app locally to verify streams, so the scale
# flags must be identical on every node and the loadgen.
common=(-apps "$applist" -divisor "$divisor" -input "$input")

wait_ready() { # url pid log label
    for _ in $(seq 100); do
        if curl -fsS -o /dev/null "$1/healthz" 2>/dev/null; then
            return 0
        fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "cluster_soak: node $4 died during startup:" >&2
            tail -5 "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "cluster_soak: node $4 never became ready on $1" >&2
    exit 1
}

# Follower first: A's first replicated save must find B listening.
"$apserve" "${common[@]}" -addr "127.0.0.1:$port_b" \
    -store "$work/store_b" -every "$every" >>"$work/server_b.log" 2>&1 &
pid_b=$!
disown "$pid_b"
wait_ready "$url_b" "$pid_b" "$work/server_b.log" B

"$apserve" "${common[@]}" -addr "127.0.0.1:$port_a" \
    -store "$work/store_a" -every "$every" \
    -peers "$url_b" -replicas "$url_b" -ack 1 >>"$work/server_a.log" 2>&1 &
pid_a=$!
disown "$pid_a" # keep job control quiet about the SIGKILL
wait_ready "$url_a" "$pid_a" "$work/server_a.log" A

# Stream phase is paced so it is still in flight when A dies; the match
# phase afterwards rides the same failover path to B.
"$apserve" -loadgen -url "$url_a" -peers "$url_b" "${common[@]}" \
    -streams "$streams" -requests 16 -overload 0 -pace "$pace" \
    >"$work/loadgen.log" 2>&1 &
loadgen_pid=$!

sleep 0.4
if ! kill -0 "$loadgen_pid" 2>/dev/null; then
    echo "cluster_soak: loadgen finished before the kill could land" >&2
    echo "cluster_soak: raise CLUSTER_SOAK_PACE or CLUSTER_SOAK_INPUT" >&2
    exit 1
fi
kill -9 "$pid_a" 2>/dev/null || true
wait "$pid_a" 2>/dev/null || true
pid_a="" # A stays dead: survival must come from B's replicated slots

status=0
wait "$loadgen_pid" || status=$?
loadgen_pid=""
if (( status != 0 )); then
    echo "cluster_soak: loadgen failed (exit $status):" >&2
    tail -20 "$work/loadgen.log" >&2
    exit 1
fi

# The loadgen prints "... (N resumes, M retries, K sheds, F failovers,
# R restarts)"; losing A mid-stream must force failovers, and the
# replicated slots must make every one a seamless resume (no restarts).
failovers=$(grep -o '[0-9]* failovers' "$work/loadgen.log" | head -1 | cut -d' ' -f1)
restarts=$(grep -o '[0-9]* restarts' "$work/loadgen.log" | head -1 | cut -d' ' -f1)
if [[ -z "$failovers" || "$failovers" -eq 0 ]]; then
    echo "cluster_soak: node A was killed but no client ever failed over:" >&2
    cat "$work/loadgen.log" >&2
    exit 1
fi
if [[ -z "$restarts" || "$restarts" -ne 0 ]]; then
    echo "cluster_soak: $restarts forced restarts — replication failed to carry the sessions:" >&2
    cat "$work/loadgen.log" >&2
    exit 1
fi

grep 'streams verified' "$work/loadgen.log"
echo "cluster_soak: apps=$applist: node A SIGKILLed, $failovers failovers, 0 restarts, streams identical"
