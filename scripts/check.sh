#!/usr/bin/env bash
# Tier-1.5 gate: everything CI runs, runnable locally before a push.
#
#   scripts/check.sh           # full gate
#   scripts/check.sh -short    # skip the race pass (quick pre-commit loop)
#
# Steps: gofmt, go vet, build, full test suite, race-detector pass over the
# packages with real concurrency (the simulators), and the aplint sweep of
# the generated workload suite.
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
[[ "${1:-}" == "-short" ]] && short=1

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

if [[ $short -eq 0 ]]; then
    echo "== go test -race (simulators) =="
    go test -race ./internal/sim ./internal/spap
fi

# Error-severity findings fail the gate; the suite's known warnings (see
# internal/lint/testdata/golden.txt) do not, and the golden test pins them.
echo "== aplint =="
go run ./cmd/aplint -all

echo "check.sh: all green"
