#!/usr/bin/env bash
# Tier-1.5 gate: everything CI runs, runnable locally before a push.
#
#   scripts/check.sh           # full gate
#   scripts/check.sh -short    # skip the race pass (quick pre-commit loop)
#
# Steps: gofmt, go vet, staticcheck and govulncheck (when installed),
# build, full test suite, race-detector pass over the whole module, a fuzz
# smoke pass over the parser/compiler/rewriter fuzz targets, the
# fault-injection smoke sweep, a chaos-soak smoke cell (kill/resume with
# stream comparison), a serve-soak smoke cell (real SIGKILL of a live
# apserve with resumed streams), a cluster-soak smoke cell (SIGKILL of a
# replicating node with client failover to its follower),
# throughput and prediction smoke cells of apbench,
# a batch-kernel smoke cell (64-stream solo-vs-batch with the per-lane
# equivalence and aligned-speedup gates), a worst-case smoke cell
# (certified bounds + adversarial witness with the soundness, dominance,
# gap and resilience gates), the apopt certificate-checked
# rewrite of the suite, and the aplint sweep of the generated workload
# suite.
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
[[ "${1:-}" == "-short" ]] && short=1

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

# staticcheck is optional locally (CI installs the pinned version); the
# gate runs it whenever it is on PATH so local and CI findings match.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck (skipped: not installed; CI runs it) =="
fi

# govulncheck likewise: optional locally, pinned in CI. The module is
# stdlib-only, so findings can only come from the standard library or the
# toolchain itself.
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck =="
    govulncheck ./...
else
    echo "== govulncheck (skipped: not installed; CI runs it) =="
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

if [[ $short -eq 0 ]]; then
    echo "== go test -race (whole module) =="
    # The lint golden sweep takes ~18 min under the race detector on a
    # single-core box; the default 10-min per-package timeout is too
    # tight there, so set one that only a genuine hang can hit.
    go test -race -timeout 1800s ./...
fi

if [[ $short -eq 0 ]]; then
    # Fuzz smoke: a few seconds per target catches regressions in the
    # corpus-seeded paths without turning the gate into a fuzz campaign.
    echo "== fuzz smoke (parser, compiler, rewriter) =="
    go test -run ZZZ -fuzz FuzzParseANML -fuzztime 5s ./internal/anml
    go test -run ZZZ -fuzz FuzzCompileRegex -fuzztime 5s ./internal/regexc
    go test -run ZZZ -fuzz FuzzRewriteEquivalence -fuzztime 10s ./internal/rewrite
fi

if [[ $short -eq 0 ]]; then
    # Fault-injection smoke sweep: every (seed, fault kind, app) cell runs the
    # guarded executor end to end at test scale. Stuck trials repair onto
    # spare STEs and apsim itself fails on report divergence; drop trials
    # must complete under the guard with losses accounted. A -timeout bounds
    # each cell so a regression hangs the gate for at most a minute.
    echo "== fault-injection smoke sweep =="
    apsim_bin=$(mktemp -d)/apsim
    trap 'rm -rf "$(dirname "$apsim_bin")"' EXIT
    go build -o "$apsim_bin" ./cmd/apsim
    for seed in 1 2 3; do
        for spec in "stuckoff=0.02" "drop=0.05"; do
            for app in Fermi HM PEN Snort; do
                args=(-app "$app" -divisor 64 -input 8192 -capacity 375
                      -system spap -guard -timeout 60s
                      -fault "$spec" -faultseed "$seed" -nolint)
                [[ "$spec" == stuckoff=* ]] && args+=(-repair)
                "$apsim_bin" "${args[@]}" >/dev/null \
                    || { echo "smoke sweep failed: app=$app fault=$spec seed=$seed" >&2; exit 1; }
            done
        done
    done
    echo "smoke sweep: 24 cells green"
fi

if [[ $short -eq 0 ]]; then
    # Chaos-soak smoke: one kill/resume cell through the full apsim
    # surface (durable store, -resume, stream diff). The in-process soak
    # lives in chaos_test.go; this exercises the process-kill path.
    echo "== chaos soak smoke (1 app) =="
    SOAK_INPUT=8192 scripts/soak.sh HM
fi

if [[ $short -eq 0 ]]; then
    # Serve-soak smoke: one app streamed through a live apserve process
    # that gets a real SIGKILL mid-stream and restarts on the same
    # checkpoint store; the loadgen verifies the resumed stream is
    # bit-identical. The full app set runs in CI's serve-soak job.
    echo "== serve soak smoke (1 app, real SIGKILL) =="
    SERVE_SOAK_INPUT=65536 SERVE_SOAK_KILLS=1 scripts/serve_soak.sh HM
fi

if [[ $short -eq 0 ]]; then
    # Cluster-soak smoke: node A replicates every checkpoint slot to
    # follower B, takes a real SIGKILL mid-stream, and never comes back;
    # the loadgen's clients must fail over to B and resume from the
    # replicated slots with zero forced restarts. The full app set runs
    # in CI's serve-soak job.
    echo "== cluster soak smoke (1 app, SIGKILL owner, failover to follower) =="
    CLUSTER_SOAK_INPUT=65536 CLUSTER_SOAK_PACE=40ms scripts/cluster_soak.sh HM
fi

# One-app smoke of the throughput mode: exercises the kernel benchmarks,
# the BENCH_sim.json writer, and the adaptive-vs-sparse -check gate at a
# scale that finishes in seconds.
echo "== apbench throughput smoke (1 app) =="
bench_out=$(mktemp)
go run ./cmd/apbench -json -apps HM -divisor 64 -input 8192 -benchtime 20ms \
    -out "$bench_out" -check
rm -f "$bench_out"

# Batch-mode smoke: 64 lockstep streams against two apps with the gates
# on — per-lane batch reports bit-identical to solo runs, and the
# aligned-content cell holding the amortization fence — the same check
# CI's bench-batch job runs.
echo "== apbench batch smoke (PEN + Snort, 64 streams) =="
batch_out=$(mktemp)
go run ./cmd/apbench -streams 64 -apps PEN,Snort -divisor 64 -input 8192 \
    -benchtime 20ms -out "$batch_out" -check -tolerance 0.20
rm -f "$batch_out"

# Worst-case smoke: the certified frontier/report bounds and adversarial
# witness on the two gate apps, failing on any soundness violation
# (witness replay out-running the static bound), plus the adversarial
# bench mode with its gates on — the same check CI's bench-adversarial
# job runs.
echo "== worst-case analysis smoke (PEN + Snort) =="
go run ./cmd/apstat -app PEN -divisor 64 -input 8192 -worstcase >/dev/null
go run ./cmd/apstat -app Snort -divisor 64 -input 8192 -worstcase >/dev/null
echo "== apbench adversarial smoke (PEN + Snort) =="
adv_out=$(mktemp)
go run ./cmd/apbench -adversarial -apps PEN,Snort -divisor 64 -input 8192 \
    -benchtime 20ms -out "$adv_out" -check -tolerance 0.20
rm -f "$adv_out"

# Prediction-mode smoke: the static-vs-profiled study on a small app set,
# with the gate on (static geomean >= normalized-depth, identical report
# streams) — the same check CI's bench-predict job runs.
echo "== apbench predict smoke =="
predict_out=$(mktemp)
go run ./cmd/apbench -predict -apps PEN,Snort,HM,Brill -divisor 64 -input 8192 \
    -capacity 375 -out "$predict_out" -check
rm -f "$predict_out"

# Rewrite the whole suite with the certificate chain re-verified: any
# unsound rewrite plan fails the gate here before it could reach users.
echo "== apopt certificate-checked suite rewrite =="
go run ./cmd/apopt -all -check -divisor 64 -input 8192

# Error-severity findings fail the gate; the suite's known warnings (see
# internal/lint/testdata/golden.txt) do not, and the golden test pins them.
echo "== aplint =="
go run ./cmd/aplint -all

echo "check.sh: all green"
