#!/usr/bin/env bash
# Chaos soak harness: kill apsim at seeded points, resume from the durable
# checkpoint store, and require the final report stream to be bit-identical
# to an uninterrupted fault-free run — zero duplicate, zero lost reports.
# One cell per suite application, plus a corrupted-checkpoint recovery cell
# that truncates the newest slot and expects the previous-good fallback.
#
#   scripts/soak.sh                 # default app set
#   scripts/soak.sh HM Snort        # explicit app list (smoke: one app)
#
# Environment knobs:
#   SOAK_DIVISOR   network scale divisor        (default 64)
#   SOAK_INPUT     input length in symbols      (default 16384)
#   SOAK_RATE      per-symbol crash probability (default 0.0005)
#   SOAK_EVERY     checkpoint interval          (default 512)
#   SOAK_ATTEMPTS  resume attempt bound         (default 40)
set -euo pipefail
cd "$(dirname "$0")/.."

divisor=${SOAK_DIVISOR:-64}
input=${SOAK_INPUT:-16384}
rate=${SOAK_RATE:-0.0005}
every=${SOAK_EVERY:-512}
max_attempts=${SOAK_ATTEMPTS:-40}
apps=("$@")
[[ ${#apps[@]} -eq 0 ]] && apps=(HM Snort Fermi PEN TCP)

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
apsim="$work/apsim"
go build -o "$apsim" ./cmd/apsim

common=(-divisor "$divisor" -input "$input" -capacity 375 -system spap -guard -nolint)

# run_soak_cell APP SEED EXTRA_CORRUPTION(0/1): reference run, then a
# kill/resume loop under an injected-crash plan; streams must match.
run_soak_cell() {
    local app=$1 seed=$2 corrupt=$3
    local dir="$work/$app.$seed.ck" ref="$work/$app.$seed.ref" out="$work/$app.$seed.out"
    local label="app=$app seed=$seed corrupt=$corrupt"

    "$apsim" -app "$app" "${common[@]}" -reportout "$ref" >/dev/null \
        || { echo "soak: reference run failed: $label" >&2; exit 1; }

    local crashes=0 attempt=0 status resume_flag=()
    while :; do
        if (( attempt >= max_attempts )); then
            echo "soak: no convergence after $max_attempts attempts: $label" >&2
            exit 1
        fi
        status=0
        "$apsim" -app "$app" "${common[@]}" \
            -checkpoint "$dir" -every "$every" "${resume_flag[@]}" \
            -fault "crash=$rate" -faultseed "$seed" \
            -reportout "$out" >/dev/null || status=$?
        attempt=$((attempt + 1))
        resume_flag=(-resume)
        if (( status == 0 )); then
            break
        elif (( status == 17 )); then
            crashes=$((crashes + 1))
            if [[ $corrupt == 1 && $crashes == 1 ]]; then
                # Maim the newest slot: recovery must come from the
                # rotated previous-good checkpoint.
                local slot
                slot=$(ls -t "$dir"/*.ckpt 2>/dev/null | head -1 || true)
                if [[ -n "$slot" ]]; then
                    truncate -s $(( $(stat -c %s "$slot") / 2 )) "$slot"
                fi
            fi
        else
            echo "soak: unexpected exit $status: $label (attempt $attempt)" >&2
            exit 1
        fi
    done
    if (( crashes == 0 )); then
        echo "soak: crash plan never fired ($label) — raise SOAK_RATE or SOAK_INPUT" >&2
        exit 1
    fi
    if ! cmp -s "$ref" "$out"; then
        echo "soak: report stream diverged after $crashes crashes: $label" >&2
        diff "$ref" "$out" | head -20 >&2
        exit 1
    fi
    if [[ $(sort "$out" | uniq -d | wc -l) -ne $(sort "$ref" | uniq -d | wc -l) ]]; then
        echo "soak: duplicate reports introduced across resumes: $label" >&2
        exit 1
    fi
    echo "soak: $label: ${crashes} crashes, $attempt attempts, streams identical ($(wc -l <"$ref") reports)"
}

for app in "${apps[@]}"; do
    run_soak_cell "$app" 1 0
done
# Corrupted-checkpoint recovery on the first app of the set.
run_soak_cell "${apps[0]}" 2 1

echo "soak.sh: all cells green"
