package sparseap

import (
	"context"

	"sparseap/internal/automata"
	"sparseap/internal/dfa"
	"sparseap/internal/rewrite"
	"sparseap/internal/sim"
)

// This file exposes the toolchain extensions around the core pipeline:
// compile-time automata optimization, parallel and streaming matching, and
// the DFA comparison engine.

// OptStats summarizes an Optimize run.
type OptStats = automata.OptStats

// Optimize applies the compiler passes AP toolchains run before placement
// — unreachable-state pruning, dead-end pruning, and equivalence merging —
// and returns the reduced network. Matching behaviour (per-position report
// counts) is preserved; state identities are renumbered.
func Optimize(net *Network) (*Network, OptStats) {
	return automata.Optimize(net)
}

// MinimizeStats summarizes a Minimize run: states/edges/NFAs before and
// after, and what each rewrite phase removed.
type MinimizeStats = rewrite.Stats

// Minimize runs the proof-carrying semantic rewriter (dataflow-based
// unreachable/dead elimination, edge pruning, subsumption, and
// capacity-guarded bisimulation merging, including cross-NFA start
// folding). It subsumes Optimize: every removal and merge carries a
// certificate that is machine-checked before being applied, and the
// report stream is bit-identical up to state renumbering.
func Minimize(net *Network) (*Network, MinimizeStats, error) {
	res, err := rewrite.Rewrite(net, rewrite.Options{})
	if err != nil {
		return nil, MinimizeStats{}, err
	}
	return res.Net, res.Stats, nil
}

// MatchParallel runs the matcher over input with chunked parallelism (the
// Parallel Automata Processor execution style). Exact for acyclic
// networks; cyclic networks are rejected unless opts allows approximation.
type ParallelOptions = sim.ParallelOptions

// MatchParallel returns all reports, sorted by position.
func MatchParallel(net *Network, input []byte, opts ParallelOptions) ([]Report, error) {
	return sim.ParallelRun(net, input, opts)
}

// MatchParallelContext is MatchParallel with cancellation: workers stop
// early when ctx fires and the partial reports gathered so far are
// returned with ctx.Err().
func MatchParallelContext(ctx context.Context, net *Network, input []byte, opts ParallelOptions) ([]Report, error) {
	return sim.ParallelRunContext(ctx, net, input, opts)
}

// Streamer is an incremental matcher implementing io.Writer; reports are
// delivered through its OnReport callback as input arrives, or buffered
// (bounded, see sim.DefaultStreamBuffer) for TakeReports otherwise.
type Streamer = sim.Streamer

// StreamerOptions configures a Streamer's report-buffer cap and
// cancellation context.
type StreamerOptions = sim.StreamerOptions

// ErrReportOverflow is returned by Streamer.Write when the bounded report
// buffer fills up.
var ErrReportOverflow = sim.ErrReportOverflow

// NewStreamer builds a streaming matcher over net with default options.
func NewStreamer(net *Network) *Streamer { return sim.NewStreamer(net) }

// NewStreamerOpts builds a streaming matcher with explicit buffering and
// cancellation behaviour.
func NewStreamerOpts(net *Network, opts StreamerOptions) *Streamer {
	return sim.NewStreamerOpts(net, opts)
}

// DFA is a lazily determinized matcher over the same network model — the
// CPU-side baseline the paper's related work contrasts with AP execution.
type DFA = dfa.DFA

// NewDFA prepares a lazy DFA with the default state cap.
func NewDFA(net *Network) *DFA { return dfa.New(net, dfa.Options{}) }
