package sparseap

// This file exposes the resilient-execution surface: context-aware
// variants of the three execution systems, the adaptive guarded executor
// that bounds the SpAP enable-stall pathology, and the deterministic
// fault-injection framework with spare-STE repair.

import (
	"context"

	"sparseap/internal/ap"
	"sparseap/internal/fault"
	"sparseap/internal/spap"
)

type (
	// Guard configures the adaptive executor's report/stall budgets.
	Guard = spap.Guard
	// GuardStats records trips, retries, and fallbacks of a guarded run.
	GuardStats = spap.GuardStats
	// FaultPlan describes a seeded fault-injection campaign.
	FaultPlan = fault.Plan
	// FaultInjector makes a plan's deterministic runtime decisions.
	FaultInjector = fault.Injector
	// FaultStats counts the runtime faults an execution absorbed.
	FaultStats = fault.Stats
	// FaultInjection is a network with stuck-at faults applied, repairable
	// by spare-STE remapping.
	FaultInjection = fault.Injection
)

// DefaultGuard returns the suite-tuned guard budgets.
func DefaultGuard() Guard { return spap.DefaultGuard() }

// ParseFaultPlan parses the "kind=rate,..." fault-flag syntax (e.g.
// "stuckoff=0.01,drop=0.05") into a plan with the given seed.
func ParseFaultPlan(s string, seed int64) (FaultPlan, error) { return fault.ParsePlan(s, seed) }

// NewFaultInjector returns the deterministic injector for a plan; assign
// it to Engine.Faults to exercise runtime faults, or use its InjectStuck
// method to apply compile-time stuck-at faults to a network.
func NewFaultInjector(p FaultPlan) *FaultInjector { return fault.New(p) }

// RunBaselineContext is RunBaseline with cancellation: it polls ctx and on
// cancellation returns the partial result together with ctx.Err().
func (e *Engine) RunBaselineContext(ctx context.Context, net *Network, input []byte) (*BaselineResult, error) {
	return ap.RunBaselineContext(ctx, net, input, e.AP)
}

// RunBaseAPSpAPContext is RunBaseAPSpAP with cancellation: both execution
// modes poll ctx and return the partial result with ctx.Err() within about
// one batch of it firing.
func (e *Engine) RunBaseAPSpAPContext(ctx context.Context, p *Partition, input []byte) (*ExecResult, error) {
	return spap.RunBaseAPSpAPContext(ctx, p, input, e.AP, e.execOpts())
}

// RunAPCPUContext is RunAPCPU with cancellation.
func (e *Engine) RunAPCPUContext(ctx context.Context, p *Partition, input []byte) (*ExecResult, error) {
	return spap.RunAPCPUContext(ctx, p, input, e.AP, e.CPU, e.execOpts())
}

// RunGuarded executes a partition under the BaseAP/SpAP system with the
// adaptive guard: a mid-run watchdog aborts storm-prone executions early,
// retries with widened partition layers, and falls back to baseline
// batched execution, bounding the regret of a bad partition while
// preserving the report multiset. Result.Guard records what happened.
func (e *Engine) RunGuarded(ctx context.Context, p *Partition, input []byte, g Guard) (*ExecResult, error) {
	return spap.RunGuarded(ctx, p, input, e.AP, g, e.execOpts())
}
