package sparseap_test

import (
	"testing"

	"sparseap"
)

func TestOptimizeFacade(t *testing.T) {
	// Two patterns sharing a prefix, compiled as one NFA via alternation.
	net, err := sparseap.CompileRegex([]string{"ab(c|d)", "zz"})
	if err != nil {
		t.Fatal(err)
	}
	opt, stats := sparseap.Optimize(net)
	if stats.Before != net.Len() || stats.After != opt.Len() {
		t.Fatalf("stats inconsistent: %+v", stats)
	}
	in := []byte("abd zz abc")
	if len(sparseap.Match(opt, in)) != len(sparseap.Match(net, in)) {
		t.Fatal("optimization changed match count")
	}
}

func TestMatchParallelFacade(t *testing.T) {
	net, err := sparseap.CompileRegex([]string{"abcd"})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("xx abcd yy abcd zz abcd")
	got, err := sparseap.MatchParallel(net, input, sparseap.ParallelOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := sparseap.Match(net, input)
	if len(got) != len(want) {
		t.Fatalf("parallel %d vs serial %d", len(got), len(want))
	}
}

func TestStreamerFacade(t *testing.T) {
	net, err := sparseap.CompileRegex([]string{"ab"})
	if err != nil {
		t.Fatal(err)
	}
	st := sparseap.NewStreamer(net)
	n := 0
	st.OnReport = func(pos int64, s sparseap.StateID) { n++ }
	st.Write([]byte("a"))
	st.Write([]byte("b ab"))
	if n != 2 {
		t.Fatalf("streaming matches = %d, want 2", n)
	}
}

func TestDFAFacade(t *testing.T) {
	net, err := sparseap.CompileRegex([]string{"needle"})
	if err != nil {
		t.Fatal(err)
	}
	d := sparseap.NewDFA(net)
	n := 0
	if err := d.Run([]byte("hay needle hay needle"), func(pos int64, s sparseap.StateID) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("DFA matches = %d, want 2", n)
	}
	if d.NumStates() == 0 {
		t.Fatal("no DFA states constructed")
	}
}
