package sparseap_test

import (
	"bytes"
	"strings"
	"testing"

	"sparseap"
)

func TestQuickstartPipeline(t *testing.T) {
	net, err := sparseap.CompileRegex([]string{"needle[0-9]{2}", "hay.{3}stack"})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("find the needle42 in the hayBIGstack today needle07")
	reports := sparseap.Match(net, input)
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3 (%v)", len(reports), reports)
	}

	eng := sparseap.NewEngine(sparseap.DefaultAPConfig())
	base, err := eng.RunBaseline(net, input)
	if err != nil {
		t.Fatal(err)
	}
	if base.Batches != 1 || base.Reports != 3 {
		t.Fatalf("baseline = %+v", base)
	}

	part, err := eng.Partition(net, input[:10])
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunBaseAPSpAP(part, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReports != 3 {
		t.Fatalf("partitioned reports = %d, want 3", res.NumReports)
	}
	cpuRes, err := eng.RunAPCPU(part, input)
	if err != nil {
		t.Fatal(err)
	}
	if cpuRes.NumReports != 3 {
		t.Fatalf("AP-CPU reports = %d, want 3", cpuRes.NumReports)
	}
}

func TestANMLRoundTripFacade(t *testing.T) {
	net, err := sparseap.CompileRegex([]string{"abc+d"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sparseap.WriteANML(&buf, net, "demo"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "state-transition-element") {
		t.Fatal("ANML output missing STEs")
	}
	back, err := sparseap.ReadANML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("xabcccd")
	if got, want := len(sparseap.Match(back, in)), len(sparseap.Match(net, in)); got != want {
		t.Fatalf("round-tripped network disagrees: %d vs %d", got, want)
	}
}

func TestHammingNFAFacade(t *testing.T) {
	m := sparseap.HammingNFA([]byte("GATTACA"), 1)
	net := sparseap.NewNetwork(m)
	if len(sparseap.Match(net, []byte("GATCACA"))) == 0 {
		t.Fatal("distance-1 variant not matched")
	}
	if len(sparseap.Match(net, []byte("GGGTACA"))) != 0 {
		t.Fatal("distance-2 variant matched with d=1")
	}
}

func TestAnalyzeFacade(t *testing.T) {
	net, err := sparseap.CompileRegex([]string{"abcdef"})
	if err != nil {
		t.Fatal(err)
	}
	a := sparseap.Analyze(net, []byte("abq abq"))
	if a.States != 6 || a.NFAs != 1 || a.Reporting != 1 || a.MaxTopo != 6 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.Hot != 3 { // a, b hot via enablement; c enabled after ab
		t.Fatalf("hot = %d, want 3", a.Hot)
	}
	if sparseap.CountHot(net, []byte("abq")) != 3 {
		t.Fatal("CountHot disagrees")
	}
}

func TestSpeedupFacade(t *testing.T) {
	if sparseap.Speedup(100, 25) != 4 {
		t.Fatal("Speedup wrong")
	}
}
