// Motif finding: Hamming-distance search on DNA with BMIA automata (the
// ANMLZoo Hamming workload that becomes HM500/1000/1500 in the paper).
// Every occurrence of a motif within edit budget d is reported, and the
// hot/cold partition exploits that random genome background never drives
// the mismatch lattice past its distance budget.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sparseap"
)

func main() {
	r := rand.New(rand.NewSource(11))
	bases := []byte("ACGT")

	// 60 motifs of length 20, distance 2.
	motifs := make([][]byte, 60)
	nfas := make([]*sparseap.NFA, len(motifs))
	for i := range motifs {
		m := make([]byte, 20)
		for k := range m {
			m[k] = bases[r.Intn(4)]
		}
		motifs[i] = m
		nfas[i] = sparseap.HammingNFA(m, 2)
	}
	net := sparseap.NewNetwork(nfas...)

	// A 64 Kbp genome with mutated copies of motif 3 planted.
	genome := make([]byte, 64<<10)
	for i := range genome {
		genome[i] = bases[r.Intn(4)]
	}
	for k := 0; k < 5; k++ {
		copy9 := append([]byte(nil), motifs[3]...)
		copy9[r.Intn(20)] = bases[r.Intn(4)] // one mutation
		copy(genome[r.Intn(len(genome)-20):], copy9)
	}

	fmt.Printf("motif database: %d BMIA automata, %d states total\n",
		net.NumNFAs(), net.Len())

	hits := sparseap.Match(net, genome)
	fmt.Printf("functional scan: %d hits within distance 2\n", len(hits))

	// On an AP half-core holding only a third of the automata.
	eng := sparseap.NewEngine(sparseap.DefaultAPConfig().WithCapacity(net.Len() / 3))
	base, err := eng.RunBaseline(net, genome)
	if err != nil {
		log.Fatal(err)
	}
	part, err := eng.Partition(net, genome[:2048])
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.RunBaseAPSpAP(part, genome)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d batches; BaseAP/SpAP: %d+%d executions, speedup %.2fx\n",
		base.Batches, res.BaseAPBatches, res.SpAPExecutions,
		sparseap.Speedup(base.Cycles, res.TotalCycles))
	if res.NumReports != int64(len(hits)) {
		log.Fatalf("hit mismatch: %d vs %d", res.NumReports, len(hits))
	}
	fmt.Printf("all %d hits found under partitioned execution\n", res.NumReports)
}
