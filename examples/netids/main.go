// Network intrusion detection: Snort-style rules over synthetic HTTP
// traffic, comparing all three execution systems of the paper's Table III
// (baseline AP, AP–CPU, BaseAP/SpAP). The rule set shares common content
// triggers, so mis-predictions arrive in simultaneous bursts — a small
// taste of the enable-stall effect that makes PowerEN slow down in the
// paper.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sparseap"
)

var methods = []string{"GET ", "POST", "PUT ", "HEAD"}

// rule matches a method trigger followed by a suspicious URI segment.
func rule(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString(strings.ReplaceAll(methods[r.Intn(len(methods))], " ", "\\x20"))
	b.WriteString("[a-z/]{4,12}")
	for i := 0; i < 4+r.Intn(8); i++ {
		b.WriteByte(byte('a' + r.Intn(26)))
	}
	return b.String()
}

func main() {
	r := rand.New(rand.NewSource(7))
	rules := make([]string, 300)
	for i := range rules {
		rules[i] = rule(r)
	}
	net, err := sparseap.CompileRegex(rules)
	if err != nil {
		log.Fatal(err)
	}

	// Traffic: lowercase payload noise with periodic request lines.
	var traffic []byte
	for len(traffic) < 128<<10 {
		traffic = append(traffic, []byte(methods[r.Intn(len(methods))])...)
		for i := 0; i < 40+r.Intn(200); i++ {
			traffic = append(traffic, byte('a'+r.Intn(28)))
			if traffic[len(traffic)-1] == 'a'+26 {
				traffic[len(traffic)-1] = '/'
			} else if traffic[len(traffic)-1] == 'a'+27 {
				traffic[len(traffic)-1] = ' '
			}
		}
	}

	eng := sparseap.NewEngine(sparseap.DefaultAPConfig().WithCapacity(1024))
	base, err := eng.RunBaseline(net, traffic)
	if err != nil {
		log.Fatal(err)
	}
	part, err := eng.Partition(net, traffic[:1024])
	if err != nil {
		log.Fatal(err)
	}
	spapRes, err := eng.RunBaseAPSpAP(part, traffic)
	if err != nil {
		log.Fatal(err)
	}
	cpuRes, err := eng.RunAPCPU(part, traffic)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rules: %d NFAs, %d states; alerts in this capture: %d\n",
		net.NumNFAs(), net.Len(), base.Reports)
	fmt.Printf("%-12s %12s %10s\n", "system", "time(ms)", "speedup")
	fmt.Printf("%-12s %12.3f %10s\n", "AP", base.TimeNS/1e6, "1.00x")
	fmt.Printf("%-12s %12.3f %9.2fx   (%d reports handled on CPU)\n",
		"AP-CPU", cpuRes.TimeNS/1e6, base.TimeNS/cpuRes.TimeNS, cpuRes.IntermediateReports)
	fmt.Printf("%-12s %12.3f %9.2fx   (%d enable stalls, jump %.1f%%)\n",
		"BaseAP/SpAP", spapRes.TimeNS/1e6, base.TimeNS/spapRes.TimeNS,
		spapRes.EnableStalls, 100*spapRes.JumpRatio)

	if spapRes.NumReports != base.Reports || cpuRes.NumReports != base.Reports {
		log.Fatalf("alert mismatch: baseline %d, SpAP %d, AP-CPU %d",
			base.Reports, spapRes.NumReports, cpuRes.NumReports)
	}
	fmt.Println("all systems raised identical alerts")
}
