// Quickstart: compile a few regexes into a homogeneous NFA network, run it
// on the modeled Automata Processor, then partition it with a short
// profiling prefix and run the BaseAP/SpAP two-mode execution — the
// end-to-end pipeline of the paper in ~50 lines.
package main

import (
	"fmt"
	"log"
	"strings"

	"sparseap"
)

func main() {
	net, err := sparseap.CompileRegex([]string{
		"error [0-9]{3}",
		"timeout after [0-9]+ms",
		"panic: .{1,20}overflow",
	})
	if err != nil {
		log.Fatal(err)
	}

	input := []byte(strings.Repeat("all quiet on the logging front ... ", 40) +
		"error 503 upstream " +
		strings.Repeat("still quiet ... ", 40) +
		"timeout after 1500ms; panic: stack overflow")

	// Plain functional matching (no hardware model).
	for _, r := range sparseap.Match(net, input) {
		fmt.Printf("match ending at byte %d (state %d)\n", r.Pos, r.State)
	}

	// The paper's pipeline on a deliberately tiny AP so batching shows up.
	eng := sparseap.NewEngine(sparseap.DefaultAPConfig().WithCapacity(40))
	base, err := eng.RunBaseline(net, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline AP: %d batches × %d symbols = %d cycles\n",
		base.Batches, len(input), base.Cycles)

	// Profile on the first 5% of the stream, partition, and re-run.
	part, err := eng.Partition(net, input[:len(input)/20])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition: %.0f%% of states predicted cold and left off the AP\n",
		100*part.ResourceSaving())

	res, err := eng.RunBaseAPSpAP(part, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BaseAP/SpAP: %d+%d executions, %d cycles, %d intermediate reports -> speedup %.2fx\n",
		res.BaseAPBatches, res.SpAPExecutions, res.TotalCycles,
		res.IntermediateReports, sparseap.Speedup(base.Cycles, res.TotalCycles))
	fmt.Printf("all %d matches still found: %v\n", res.NumReports,
		res.NumReports == base.Reports)
}
