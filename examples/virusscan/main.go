// Virus scanning: the ClamAV-style scenario that motivates the paper. A
// signature database far larger than the AP is scanned over a file stream;
// almost every signature state is cold (the stream is clean beyond a few
// prefix bytes), so hot/cold partitioning collapses dozens of batched
// re-executions into one BaseAP pass.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sparseap"
)

// signature renders a hex byte string as a regex of \xHH literals with the
// occasional ".*" gap — the shape of a ClamAV body signature.
func signature(r *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 && i%64 == 0 && r.Intn(4) == 0 {
			b.WriteString(".*")
		}
		fmt.Fprintf(&b, "\\x%02x", 0x80+r.Intn(0x80))
	}
	return b.String()
}

func main() {
	r := rand.New(rand.NewSource(42))

	// 400 signatures of 60-200 bytes: ~50K states, 25x a 2K-STE half-core.
	sigs := make([]string, 400)
	for i := range sigs {
		sigs[i] = signature(r, 60+r.Intn(140))
	}
	net, err := sparseap.CompileRegex(sigs)
	if err != nil {
		log.Fatal(err)
	}

	// A 256 KiB "clean" document stream (printable text), with one real
	// infection spliced in: the full body of signature 7.
	stream := make([]byte, 256<<10)
	for i := range stream {
		stream[i] = byte(0x20 + r.Intn(0x5f))
	}
	var infection []byte
	for i := 0; i < len(sigs[7]); i += 4 { // decode \xHH\xHH... back to bytes
		var v int
		fmt.Sscanf(sigs[7][i+2:i+4], "%02x", &v)
		infection = append(infection, byte(v))
	}
	copy(stream[180<<10:], infection)

	eng := sparseap.NewEngine(sparseap.DefaultAPConfig().WithCapacity(2048))
	a := sparseap.Analyze(net, stream)
	fmt.Printf("database: %d states in %d signatures; hot under this stream: %.1f%%\n",
		a.States, a.NFAs, 100*a.HotFrac)

	base, err := eng.RunBaseline(net, stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline AP: %d re-executions of the stream (%d cycles)\n",
		base.Batches, base.Cycles)

	part, err := eng.Partition(net, stream[:4096])
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.RunBaseAPSpAP(part, stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BaseAP/SpAP: %d+%d executions, speedup %.1fx\n",
		res.BaseAPBatches, res.SpAPExecutions,
		sparseap.Speedup(base.Cycles, res.TotalCycles))

	for _, rep := range res.Reports {
		fmt.Printf("INFECTED: signature state %d matched at byte %d\n", rep.State, rep.Pos)
	}
	if res.NumReports != base.Reports {
		log.Fatalf("partitioned scan lost reports: %d vs %d", res.NumReports, base.Reports)
	}
}
