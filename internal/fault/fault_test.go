package fault_test

import (
	"errors"
	"testing"

	"sparseap/internal/ap"
	"sparseap/internal/fault"
	"sparseap/internal/sim"
	"sparseap/internal/workloads"
)

// buildApp returns a small suite application with a nonzero report count,
// so stuck faults observably perturb behaviour.
func buildApp(t *testing.T) (*workloads.App, []sim.Report) {
	t.Helper()
	app, err := workloads.Build("Fermi", workloads.Config{Divisor: 64, InputLen: 8192, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(app.Net, app.Input, sim.Options{CollectReports: true})
	if res.NumReports == 0 {
		t.Fatal("fault-free run has no reports; pick a different app")
	}
	return app, res.Reports
}

func sameReports(a, b []sim.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParsePlan(t *testing.T) {
	p, err := fault.ParsePlan("stuckoff=0.01,drop=0.05, loadfail=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.StuckOffRate != 0.01 || p.ReportDropRate != 0.05 || p.LoadFailRate != 1 {
		t.Errorf("parsed plan wrong: %+v", p)
	}
	if !p.Active() {
		t.Error("parsed plan should be active")
	}
	if p, err := fault.ParsePlan("", 1); err != nil || p.Active() {
		t.Errorf("empty spec should parse to an inactive plan, got %+v, %v", p, err)
	}
	for _, bad := range []string{"stuckoff", "bogus=0.1", "drop=1.5", "flip=x"} {
		if _, err := fault.ParsePlan(bad, 1); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}

func TestInjectStuckDeterministic(t *testing.T) {
	app, _ := buildApp(t)
	plan := fault.Plan{Seed: 42, StuckOffRate: fault.RateForCount(20, app.Net.Len()),
		StuckOnRate: fault.RateForCount(10, app.Net.Len())}
	a := fault.New(plan).InjectStuck(app.Net)
	b := fault.New(plan).InjectStuck(app.Net)
	if len(a.Faults) == 0 {
		t.Fatal("expected some stuck faults")
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("fault counts differ: %d vs %d", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs: %v vs %v", i, a.Faults[i], b.Faults[i])
		}
	}
	// The original network must be untouched.
	for s := 0; s < app.Net.Len(); s++ {
		if app.Net.States[s].Match.IsEmpty() && !a.Net.States[s].Match.IsEmpty() {
			t.Fatalf("original network mutated at state %d", s)
		}
	}
	if &app.Net.States[0] == &a.Net.States[0] {
		t.Fatal("injection did not clone the network")
	}
}

func TestRuntimeDecisionsDeterministic(t *testing.T) {
	in := fault.New(fault.Plan{Seed: 3, EnableFlipRate: 0.1, ReportDropRate: 0.2, LoadFailRate: 0.5})
	for pos := int64(0); pos < 2000; pos++ {
		s1, ok1 := in.FlipAt(pos, 500)
		s2, ok2 := in.FlipAt(pos, 500)
		if s1 != s2 || ok1 != ok2 {
			t.Fatalf("FlipAt(%d) not deterministic", pos)
		}
		if in.DropReport(pos) != in.DropReport(pos) {
			t.Fatalf("DropReport(%d) not deterministic", pos)
		}
	}
	if in.LoadFails(0, 0) != in.LoadFails(0, 0) {
		t.Fatal("LoadFails not deterministic")
	}
	// A nil injector makes no decisions.
	var nilInj *fault.Injector
	if nilInj.Active() || nilInj.DropReport(1) || nilInj.LoadFails(0, 0) {
		t.Error("nil injector should be inert")
	}
	if _, ok := nilInj.FlipAt(1, 10); ok {
		t.Error("nil injector should not flip")
	}
}

func TestRepairRestoresReportEquivalence(t *testing.T) {
	app, want := buildApp(t)
	cfg := ap.DefaultConfig()
	plan := fault.Plan{Seed: 1, StuckOffRate: fault.RateForCount(30, app.Net.Len()),
		StuckOnRate: fault.RateForCount(5, app.Net.Len())}
	inj := fault.New(plan).InjectStuck(app.Net)
	if len(inj.Faults) == 0 {
		t.Fatal("expected stuck faults")
	}

	// Unrepaired, the faulty network's reports must diverge — otherwise the
	// repair assertion below would be vacuous.
	faulty := sim.Run(inj.Net, app.Input, sim.Options{CollectReports: true})
	if sameReports(faulty.Reports, want) {
		t.Fatal("injected faults did not perturb the report stream; raise the rate")
	}

	spares := inj.MinSparesPerBlock(cfg)
	if spares == 0 {
		t.Fatal("expected nonzero spare demand")
	}
	repaired, st, err := inj.Repair(cfg, spares)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if st.Remapped != len(inj.Faults) || st.MaxPerBlock != spares || st.BlocksTouched == 0 {
		t.Errorf("repair stats inconsistent: %+v (faults %d, spares %d)", st, len(inj.Faults), spares)
	}
	got := sim.Run(repaired, app.Input, sim.Options{CollectReports: true})
	if !sameReports(got.Reports, want) {
		t.Fatalf("repaired reports diverge: %d vs %d fault-free", len(got.Reports), len(want))
	}
}

func TestRepairSparesExhausted(t *testing.T) {
	app, _ := buildApp(t)
	cfg := ap.DefaultConfig()
	inj := fault.New(fault.Plan{Seed: 1, StuckOffRate: fault.RateForCount(30, app.Net.Len())}).InjectStuck(app.Net)
	spares := inj.MinSparesPerBlock(cfg)
	if spares < 2 {
		t.Fatalf("want a block with >=2 faults for this test, max demand %d", spares)
	}
	if _, _, err := inj.Repair(cfg, spares-1); !errors.Is(err, fault.ErrSparesExhausted) {
		t.Errorf("Repair with %d spares: got %v, want ErrSparesExhausted", spares-1, err)
	}
}

func TestRateForCount(t *testing.T) {
	if r := fault.RateForCount(10, 1000); r != 0.01 {
		t.Errorf("RateForCount(10,1000) = %v", r)
	}
	if r := fault.RateForCount(10, 5); r != 1 {
		t.Errorf("RateForCount should clamp to 1, got %v", r)
	}
	if r := fault.RateForCount(1, 0); r != 0 {
		t.Errorf("RateForCount with n=0 should be 0, got %v", r)
	}
}
