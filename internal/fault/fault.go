// Package fault is a deterministic, seeded fault-injection framework for
// the modeled Automata Processor, in the spirit of the redundancy/repair
// machinery real AP boards ship with (spare STEs per block, remapped at
// configuration time).
//
// Four hardware fault classes are modeled:
//
//   - stuck-off STEs: the STE's match logic never fires (its 256-row
//     column reads as all zeros);
//   - stuck-on STEs: the match logic fires on every symbol;
//   - transient enable-bit flips: a single enable bit inverts during one
//     cycle (soft error in the routing-matrix latches);
//   - intermediate-report queue drops: an entry of the 128-deep SpAP
//     report queue is lost before the refill reaches device memory;
//   - batch-configuration load failures: loading a batch onto the fabric
//     fails and must be retried.
//
// Every decision is a pure hash of (seed, fault domain, index), so a Plan
// reproduces the same fault pattern regardless of call order or batch
// interleaving — the property the resilience test-suite relies on.
//
// Stuck faults are repairable: Injection.Repair relocates each faulty
// state to a spare STE in the same block (spare-STE remapping), restoring
// the original match behaviour, or fails with ErrSparesExhausted when a
// block has more faults than spares.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// Kind classifies a fault.
type Kind uint8

const (
	// StuckOff marks an STE whose match logic never fires.
	StuckOff Kind = iota
	// StuckOn marks an STE whose match logic fires on every symbol.
	StuckOn
	// EnableFlip is a transient single-cycle enable-bit inversion.
	EnableFlip
	// ReportDrop loses one intermediate-report queue entry.
	ReportDrop
	// LoadFail is a failed batch-configuration load.
	LoadFail
	// Crash is a hard process death at a seeded input position — the
	// chaos-soak fault class. Unlike the hardware classes it is not
	// absorbed by the executors: a hit kills the run, and recovery means
	// resuming from the last durable checkpoint.
	Crash
)

// String names the kind as the -fault flag spells it.
func (k Kind) String() string {
	switch k {
	case StuckOff:
		return "stuckoff"
	case StuckOn:
		return "stuckon"
	case EnableFlip:
		return "flip"
	case ReportDrop:
		return "drop"
	case LoadFail:
		return "loadfail"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Plan describes a fault-injection campaign. Rates are probabilities in
// [0, 1]; a zero Plan injects nothing.
type Plan struct {
	// Seed drives every deterministic decision.
	Seed int64
	// StuckOffRate is the fraction of STEs stuck off.
	StuckOffRate float64
	// StuckOnRate is the fraction of STEs stuck on.
	StuckOnRate float64
	// EnableFlipRate is the per-cycle probability of one enable-bit flip
	// at a hash-chosen STE.
	EnableFlipRate float64
	// ReportDropRate is the per-entry probability that an intermediate
	// report is lost from the SpAP queue.
	ReportDropRate float64
	// LoadFailRate is the per-attempt probability that a batch
	// configuration fails to load.
	LoadFailRate float64
	// MaxLoadRetries bounds consecutive reload attempts per batch before
	// the run errors out; 0 means DefaultMaxLoadRetries.
	MaxLoadRetries int
	// CrashRate is the per-symbol probability of a hard process crash
	// (checked only by checkpointed execution loops; see Injector.CrashAt).
	CrashRate float64
}

// DefaultMaxLoadRetries is the reload attempt cap when Plan.MaxLoadRetries
// is zero.
const DefaultMaxLoadRetries = 8

// Active reports whether any fault class has a nonzero rate.
func (p Plan) Active() bool {
	return p.StuckOffRate > 0 || p.StuckOnRate > 0 || p.EnableFlipRate > 0 ||
		p.ReportDropRate > 0 || p.LoadFailRate > 0 || p.CrashRate > 0
}

// ParsePlan parses the -fault flag syntax: a comma-separated list of
// kind=rate pairs, e.g. "stuckoff=0.01,drop=0.05". Kinds are the Kind
// String names.
func ParsePlan(s string, seed int64) (Plan, error) {
	p := Plan{Seed: seed}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return p, fmt.Errorf("fault: %q is not kind=rate", part)
		}
		rate, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || rate < 0 || rate > 1 {
			return p, fmt.Errorf("fault: bad rate in %q (want 0..1)", part)
		}
		switch kv[0] {
		case "stuckoff":
			p.StuckOffRate = rate
		case "stuckon":
			p.StuckOnRate = rate
		case "flip":
			p.EnableFlipRate = rate
		case "drop":
			p.ReportDropRate = rate
		case "loadfail":
			p.LoadFailRate = rate
		case "crash":
			p.CrashRate = rate
		default:
			return p, fmt.Errorf("fault: unknown kind %q (stuckoff|stuckon|flip|drop|loadfail|crash)", kv[0])
		}
	}
	return p, nil
}

// Injector makes the Plan's runtime decisions. It is stateless beyond the
// plan itself — safe for concurrent use — because every decision is a pure
// hash of its arguments.
type Injector struct {
	plan Plan
}

// New returns an injector for the plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Active reports whether the injector injects anything.
func (in *Injector) Active() bool { return in != nil && in.plan.Active() }

// splitmix64 is the SplitMix64 finalizer — a strong 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash mixes the seed, a per-domain tag, and an index into a uniform
// [0, 1) float.
func (in *Injector) hash(domain uint64, index uint64) float64 {
	h := splitmix64(uint64(in.plan.Seed)*0x9e3779b97f4a7c15 ^ domain<<48 ^ index)
	return float64(h>>11) / float64(1<<53)
}

const (
	domStuck   = 1
	domFlip    = 2
	domFlipWho = 3
	domDrop    = 4
	domLoad    = 5
	domStuckOn = 6
	domCrash   = 7
)

// DropReport reports whether the idx-th intermediate report of the run is
// lost from the queue.
func (in *Injector) DropReport(idx int64) bool {
	if in == nil || in.plan.ReportDropRate == 0 {
		return false
	}
	return in.hash(domDrop, uint64(idx)) < in.plan.ReportDropRate
}

// FlipAt reports whether an enable-bit flip strikes at input position pos,
// and if so which of the netLen STEs it hits.
func (in *Injector) FlipAt(pos int64, netLen int) (automata.StateID, bool) {
	if in == nil || in.plan.EnableFlipRate == 0 || netLen == 0 {
		return automata.None, false
	}
	if in.hash(domFlip, uint64(pos)) >= in.plan.EnableFlipRate {
		return automata.None, false
	}
	who := splitmix64(uint64(in.plan.Seed)^domFlipWho<<48^uint64(pos)) % uint64(netLen)
	return automata.StateID(who), true
}

// LoadFails reports whether the attempt-th load (0-based) of batch fails.
// For any plan with LoadFailRate < 1 the sequence of failures for one
// batch is finite with probability 1; MaxLoadRetries bounds it anyway.
func (in *Injector) LoadFails(batch, attempt int) bool {
	if in == nil || in.plan.LoadFailRate == 0 {
		return false
	}
	return in.hash(domLoad, uint64(batch)<<20|uint64(attempt)) < in.plan.LoadFailRate
}

// MaxLoadRetries returns the effective reload cap.
func (in *Injector) MaxLoadRetries() int {
	if in == nil || in.plan.MaxLoadRetries == 0 {
		return DefaultMaxLoadRetries
	}
	return in.plan.MaxLoadRetries
}

// CrashAt reports whether the chaos plan kills the process before input
// position pos of resume epoch `epoch` (0 on the first run, incremented
// by the checkpoint manifest on every resume). Hashing the epoch in means
// each resume rolls a fresh crash schedule: the soak loop keeps dying at
// new seeded points but finishes with probability 1, while within one
// epoch the schedule is a pure function of (seed, epoch, pos) — the same
// determinism contract as every other fault class.
func (in *Injector) CrashAt(epoch, pos int64) bool {
	if in == nil || in.plan.CrashRate == 0 {
		return false
	}
	return in.hash(domCrash, splitmix64(uint64(epoch))^uint64(pos)) < in.plan.CrashRate
}

// ErrConfigLoad is returned when a batch configuration cannot be loaded
// within MaxLoadRetries attempts.
var ErrConfigLoad = errors.New("fault: batch configuration load failed after retries")

// StuckFault is one injected stuck-at STE fault.
type StuckFault struct {
	State automata.StateID
	Kind  Kind // StuckOff or StuckOn
}

// Injection is a network with stuck-at faults applied, retaining what is
// needed to repair it.
type Injection struct {
	// Net is the faulty network (a modified clone; the original is not
	// touched).
	Net *automata.Network
	// Faults lists the injected stuck faults, ordered by state.
	Faults []StuckFault

	orig []symset.Set // original match sets of the faulted states
}

// InjectStuck applies the plan's stuck-off/stuck-on faults to a clone of
// net: stuck-off states match nothing, stuck-on states match everything.
// The decision for state s depends only on (seed, s), so growing the
// network keeps earlier faults stable.
func (in *Injector) InjectStuck(net *automata.Network) *Injection {
	inj := &Injection{Net: net}
	if in == nil || (in.plan.StuckOffRate == 0 && in.plan.StuckOnRate == 0) {
		return inj
	}
	out := net.Clone()
	for s := 0; s < net.Len(); s++ {
		var kind Kind
		switch {
		case in.hash(domStuck, uint64(s)) < in.plan.StuckOffRate:
			kind = StuckOff
		case in.hash(domStuckOn, uint64(s)) < in.plan.StuckOnRate:
			kind = StuckOn
		default:
			continue
		}
		inj.Faults = append(inj.Faults, StuckFault{State: automata.StateID(s), Kind: kind})
		inj.orig = append(inj.orig, out.States[s].Match)
		if kind == StuckOff {
			out.States[s].Match = symset.Empty()
		} else {
			out.States[s].Match = symset.All()
		}
	}
	if len(inj.Faults) > 0 {
		inj.Net = out
	}
	return inj
}

// RepairStats summarizes a spare-STE remapping.
type RepairStats struct {
	// Remapped counts faulty STEs relocated to spares.
	Remapped int
	// BlocksTouched counts blocks that consumed at least one spare.
	BlocksTouched int
	// MaxPerBlock is the largest spare demand of any block.
	MaxPerBlock int
}

// ErrSparesExhausted is returned when a block needs more spares than it
// has.
var ErrSparesExhausted = errors.New("fault: spare STEs exhausted in a block")

// Repair performs spare-STE remapping: each faulty state is relocated to a
// spare STE within its own block (row-major placement under cfg, wrapping
// around the configured hierarchy for states beyond one half-core), which
// restores its original match behaviour. sparesPerBlock is the number of
// spare STEs each block reserves; the repair fails with ErrSparesExhausted
// when any block's fault count exceeds it.
func (inj *Injection) Repair(cfg ap.Config, sparesPerBlock int) (*automata.Network, *RepairStats, error) {
	st := &RepairStats{}
	if len(inj.Faults) == 0 {
		return inj.Net, st, nil
	}
	perBlock := cfg.RowsPerBlock * cfg.STEsPerRow
	if perBlock <= 0 {
		return nil, nil, fmt.Errorf("fault: config has no block hierarchy")
	}
	demand := map[int]int{}
	for _, f := range inj.Faults {
		// Placement wraps per half-core load: the block is determined by
		// the STE's offset within its configuration.
		blk := int(f.State) % cfg.Capacity / perBlock
		demand[blk]++
	}
	for blk, d := range demand {
		if d > st.MaxPerBlock {
			st.MaxPerBlock = d
		}
		if d > sparesPerBlock {
			return nil, nil, fmt.Errorf("%w: block %d needs %d spares, has %d",
				ErrSparesExhausted, blk, d, sparesPerBlock)
		}
	}
	st.BlocksTouched = len(demand)
	st.Remapped = len(inj.Faults)
	repaired := inj.Net.Clone()
	for i, f := range inj.Faults {
		repaired.States[f.State].Match = inj.orig[i]
	}
	return repaired, st, nil
}

// MinSparesPerBlock returns the smallest sparesPerBlock for which Repair
// succeeds — the per-block maximum fault demand.
func (inj *Injection) MinSparesPerBlock(cfg ap.Config) int {
	perBlock := cfg.RowsPerBlock * cfg.STEsPerRow
	if perBlock <= 0 {
		return 0
	}
	demand := map[int]int{}
	mx := 0
	for _, f := range inj.Faults {
		blk := int(f.State) % cfg.Capacity / perBlock
		demand[blk]++
		if demand[blk] > mx {
			mx = demand[blk]
		}
	}
	return mx
}

// Summary renders a one-line fault tally for command-line output.
func (inj *Injection) Summary() string {
	if len(inj.Faults) == 0 {
		return "no stuck faults"
	}
	byKind := map[Kind]int{}
	for _, f := range inj.Faults {
		byKind[f.Kind]++
	}
	kinds := make([]Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(a, b int) bool { return kinds[a] < kinds[b] })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%d %s", byKind[k], k))
	}
	return strings.Join(parts, ", ")
}

// ExpectedFaults returns the expected stuck-fault count for a network of
// the given size under the plan — handy for sizing smoke-test rates.
func (p Plan) ExpectedFaults(netLen int) float64 {
	return float64(netLen) * (p.StuckOffRate + p.StuckOnRate*(1-p.StuckOffRate))
}

// Stats carries the runtime fault counters an executor accumulates; the
// executor embeds one in its Result when an injector is active.
type Stats struct {
	// Flips counts transient enable-bit flips applied.
	Flips int64
	// DroppedReports counts intermediate reports lost from the queue.
	DroppedReports int64
	// ConfigRetries counts batch-configuration reload attempts.
	ConfigRetries int64
}

// Add accumulates another counter set.
func (s *Stats) Add(o Stats) {
	s.Flips += o.Flips
	s.DroppedReports += o.DroppedReports
	s.ConfigRetries += o.ConfigRetries
}

// Any reports whether any counter is nonzero.
func (s Stats) Any() bool { return s.Flips != 0 || s.DroppedReports != 0 || s.ConfigRetries != 0 }

// String renders the counters.
func (s Stats) String() string {
	return fmt.Sprintf("%d flips, %d dropped reports, %d config retries",
		s.Flips, s.DroppedReports, s.ConfigRetries)
}

// RateForCount returns the per-item rate that yields an expected count of
// want over n items (clamped to [0,1]); used by sweeps that want a fixed
// absolute fault count at any network size.
func RateForCount(want float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Min(1, want/float64(n))
}
