package anml

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseANML feeds arbitrary documents to the ANML reader. The reader
// must never panic, and any network it accepts must be structurally sound
// and survive a write/re-read round trip.
func FuzzParseANML(f *testing.F) {
	f.Add(`<anml version="1.0"><automata-network id="n">` +
		`<state-transition-element id="a" symbol-set="[ab]" start="all-input">` +
		`<activate-on-match element="b"/></state-transition-element>` +
		`<state-transition-element id="b" symbol-set="\x41"><report-on-match/>` +
		`</state-transition-element></automata-network></anml>`)
	f.Add(`<anml><automata-network>` +
		`<state-transition-element id="s" symbol-set="[^\x00-\x1f]" start="start-of-data">` +
		`<activate-on-match element="s"/><report-on-match reportcode="7"/>` +
		`</state-transition-element></automata-network></anml>`)
	f.Add(`<anml><automata-network/></anml>`)
	f.Add(`<anml><automata-network>` +
		`<state-transition-element id="x" symbol-set="[a-"/></automata-network></anml>`)
	f.Add(`<anml><automata-network>` +
		`<state-transition-element id="x" symbol-set="*" start="bogus"/></automata-network></anml>`)
	f.Add(`not xml at all`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, doc string) {
		net, err := Read(strings.NewReader(doc))
		if err != nil {
			return
		}
		if verr := net.Validate(); verr != nil {
			t.Fatalf("Read accepted a structurally broken network: %v", verr)
		}
		var buf bytes.Buffer
		if err := Write(&buf, net, "fuzz"); err != nil {
			t.Fatalf("Write of an accepted network failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read of written ANML failed: %v\n%s", err, buf.String())
		}
		if again.Len() != net.Len() {
			t.Fatalf("round trip changed state count: %d -> %d", net.Len(), again.Len())
		}
	})
}
