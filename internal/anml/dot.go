package anml

import (
	"fmt"
	"io"

	"sparseap/internal/automata"
)

// WriteDOT renders the network as a Graphviz digraph: start states are
// doubled circles (as in the paper's Figure 2), reporting states hexagons,
// and each node is labeled with its symbol set. Intended for small
// automata — visual debugging of partitions and compilers.
func WriteDOT(w io.Writer, net *automata.Network, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", name); err != nil {
		return err
	}
	for s := 0; s < net.Len(); s++ {
		st := &net.States[s]
		shape := "circle"
		if st.Report {
			shape = "hexagon"
		}
		peripheries := 1
		if st.Start != automata.StartNone {
			peripheries = 2
		}
		label := st.Match.String()
		if st.Start == automata.StartOfData {
			label += "\\n(start-of-data)"
		}
		if _, err := fmt.Fprintf(w, "  s%d [shape=%s peripheries=%d label=%q];\n",
			s, shape, peripheries, label); err != nil {
			return err
		}
	}
	for s := 0; s < net.Len(); s++ {
		for _, v := range net.States[s].Succ {
			if _, err := fmt.Fprintf(w, "  s%d -> s%d;\n", s, v); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
