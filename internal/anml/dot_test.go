package anml

import (
	"bytes"
	"strings"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

func TestWriteDOT(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	c := m.Add(symset.All(), automata.StartOfData, false)
	m.Connect(a, b)
	m.Connect(c, b)
	net := automata.NewNetwork(m)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, net, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"demo\"",
		"peripheries=2",   // start states doubled
		"shape=hexagon",   // reporting state
		"s0 -> s1;",       // edges
		"(start-of-data)", // start kind annotated
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
