// Package anml reads and writes the ANML (Automata Network Markup
// Language) subset used by the AP toolchain: state-transition-elements with
// symbol-sets, start kinds, activate-on-match edges and report-on-match
// markers.
package anml

import (
	"encoding/xml"
	"fmt"
	"io"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// xmlANML mirrors the <anml> document root.
type xmlANML struct {
	XMLName xml.Name   `xml:"anml"`
	Version string     `xml:"version,attr,omitempty"`
	Network xmlNetwork `xml:"automata-network"`
}

type xmlNetwork struct {
	ID   string   `xml:"id,attr,omitempty"`
	Name string   `xml:"name,attr,omitempty"`
	STEs []xmlSTE `xml:"state-transition-element"`
}

type xmlSTE struct {
	ID        string        `xml:"id,attr"`
	SymbolSet string        `xml:"symbol-set,attr"`
	Start     string        `xml:"start,attr,omitempty"`
	Activate  []xmlActivate `xml:"activate-on-match"`
	Report    *xmlReport    `xml:"report-on-match"`
}

type xmlActivate struct {
	Element string `xml:"element,attr"`
}

type xmlReport struct {
	ReportCode string `xml:"reportcode,attr,omitempty"`
}

// Read parses an ANML document and returns the application network, with
// the flat STE list split into weakly-connected NFAs. The network must be
// structurally valid; use ReadLax to ingest suspect documents.
func Read(r io.Reader) (*automata.Network, error) {
	net, err := ReadLax(r)
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("anml: %w", err)
	}
	return net, nil
}

// ReadLax parses an ANML document without validating the resulting
// network. It still rejects malformed documents (bad XML, unknown symbol
// sets or start kinds, dangling activate targets) but accepts structurally
// broken networks — the ingestion path for cmd/aplint, whose job is to
// report every finding rather than stop at the first.
func ReadLax(r io.Reader) (*automata.Network, error) {
	var doc xmlANML
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("anml: %w", err)
	}
	if len(doc.Network.STEs) == 0 {
		return nil, fmt.Errorf("anml: automata-network has no state-transition-elements")
	}
	m := automata.NewNFA()
	idOf := make(map[string]automata.StateID, len(doc.Network.STEs))
	for _, ste := range doc.Network.STEs {
		if ste.ID == "" {
			return nil, fmt.Errorf("anml: state-transition-element without id")
		}
		if _, dup := idOf[ste.ID]; dup {
			return nil, fmt.Errorf("anml: duplicate element id %q", ste.ID)
		}
		set, err := symset.Parse(ste.SymbolSet)
		if err != nil {
			return nil, fmt.Errorf("anml: element %q: %w", ste.ID, err)
		}
		start, err := parseStart(ste.Start)
		if err != nil {
			return nil, fmt.Errorf("anml: element %q: %w", ste.ID, err)
		}
		idOf[ste.ID] = m.AddState(automata.State{
			Match:  set,
			Start:  start,
			Report: ste.Report != nil,
			Name:   ste.ID,
		})
	}
	for _, ste := range doc.Network.STEs {
		u := idOf[ste.ID]
		for _, act := range ste.Activate {
			v, ok := idOf[act.Element]
			if !ok {
				return nil, fmt.Errorf("anml: element %q activates unknown element %q", ste.ID, act.Element)
			}
			m.Connect(u, v)
		}
	}
	m.Dedup()
	nfas := automata.SplitComponents(m)
	return automata.NewNetwork(nfas...), nil
}

func parseStart(s string) (automata.StartKind, error) {
	switch s {
	case "", "none":
		return automata.StartNone, nil
	case "all-input":
		return automata.StartAllInput, nil
	case "start-of-data":
		return automata.StartOfData, nil
	}
	return automata.StartNone, fmt.Errorf("unknown start kind %q", s)
}

func startAttr(k automata.StartKind) string {
	switch k {
	case automata.StartAllInput:
		return "all-input"
	case automata.StartOfData:
		return "start-of-data"
	default:
		return ""
	}
}

// Write serializes the network as an ANML document. State names are used as
// element IDs when present and unique; otherwise IDs are generated as
// "ste<global-id>".
func Write(w io.Writer, net *automata.Network, name string) error {
	ids := elementIDs(net)
	doc := xmlANML{
		Version: "1.0",
		Network: xmlNetwork{ID: name, Name: name},
	}
	doc.Network.STEs = make([]xmlSTE, net.Len())
	for s := 0; s < net.Len(); s++ {
		st := &net.States[s]
		x := xmlSTE{
			ID:        ids[s],
			SymbolSet: st.Match.String(),
			Start:     startAttr(st.Start),
		}
		for _, v := range st.Succ {
			x.Activate = append(x.Activate, xmlActivate{Element: ids[v]})
		}
		if st.Report {
			x.Report = &xmlReport{ReportCode: fmt.Sprintf("%d", s)}
		}
		doc.Network.STEs[s] = x
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("anml: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// elementIDs picks a unique XML id per state.
func elementIDs(net *automata.Network) []string {
	ids := make([]string, net.Len())
	seen := make(map[string]bool, net.Len())
	for s := 0; s < net.Len(); s++ {
		id := net.States[s].Name
		if id == "" || seen[id] {
			id = fmt.Sprintf("ste%d", s)
		}
		seen[id] = true
		ids[s] = id
	}
	return ids
}
