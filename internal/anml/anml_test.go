package anml

import (
	"bytes"
	"strings"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
)

const sampleANML = `<?xml version="1.0" encoding="UTF-8"?>
<anml version="1.0">
  <automata-network id="fig2" name="fig2">
    <state-transition-element id="s1" symbol-set="a" start="all-input">
      <activate-on-match element="s2"/>
      <activate-on-match element="s4"/>
    </state-transition-element>
    <state-transition-element id="s2" symbol-set="b">
      <activate-on-match element="s3"/>
    </state-transition-element>
    <state-transition-element id="s3" symbol-set="c">
      <activate-on-match element="s6"/>
    </state-transition-element>
    <state-transition-element id="s4" symbol-set="c">
      <activate-on-match element="s5"/>
    </state-transition-element>
    <state-transition-element id="s5" symbol-set="d">
      <activate-on-match element="s4"/>
      <activate-on-match element="s6"/>
    </state-transition-element>
    <state-transition-element id="s6" symbol-set="f">
      <report-on-match reportcode="6"/>
    </state-transition-element>
  </automata-network>
</anml>
`

func TestReadFigure2(t *testing.T) {
	net, err := Read(strings.NewReader(sampleANML))
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 6 || net.NumNFAs() != 1 {
		t.Fatalf("Len=%d NFAs=%d", net.Len(), net.NumNFAs())
	}
	res := sim.Run(net, []byte("abcf"), sim.Options{CollectReports: true})
	if res.NumReports != 1 || res.Reports[0].Pos != 3 {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestReadMultipleNFAs(t *testing.T) {
	doc := `<anml><automata-network id="n">
	  <state-transition-element id="a" symbol-set="a" start="all-input">
	    <activate-on-match element="b"/>
	  </state-transition-element>
	  <state-transition-element id="b" symbol-set="b"><report-on-match/></state-transition-element>
	  <state-transition-element id="x" symbol-set="x" start="start-of-data">
	    <activate-on-match element="y"/>
	  </state-transition-element>
	  <state-transition-element id="y" symbol-set="y"><report-on-match/></state-transition-element>
	</automata-network></anml>`
	net, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNFAs() != 2 {
		t.Fatalf("NFAs = %d, want 2", net.NumNFAs())
	}
	st := net.ComputeStats()
	if st.Reporting != 2 || !st.StartOfData {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		`<anml><automata-network id="n"></automata-network></anml>`,
		`<anml><automata-network><state-transition-element symbol-set="a" start="all-input"/></automata-network></anml>`,
		`<anml><automata-network><state-transition-element id="a" symbol-set="a" start="bogus"/></automata-network></anml>`,
		`<anml><automata-network><state-transition-element id="a" symbol-set="[z-a]" start="all-input"/></automata-network></anml>`,
		`<anml><automata-network><state-transition-element id="a" symbol-set="a" start="all-input"><activate-on-match element="missing"/></state-transition-element></automata-network></anml>`,
		`<anml><automata-network><state-transition-element id="a" symbol-set="a" start="all-input"/><state-transition-element id="a" symbol-set="b"/></automata-network></anml>`,
		`not xml at all`,
	}
	for i, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d: Read succeeded, want error", i)
		}
	}
}

func TestReadLaxAcceptsInvalidNetworks(t *testing.T) {
	// No start state: Read must reject, ReadLax must hand the broken
	// network over (so the linter can report it with full context).
	doc := `<anml><automata-network>` +
		`<state-transition-element id="a" symbol-set="a"><report-on-match/></state-transition-element>` +
		`</automata-network></anml>`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Errorf("Read accepted a network without start states")
	}
	net, err := ReadLax(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadLax: %v", err)
	}
	if net.Len() != 1 {
		t.Fatalf("ReadLax returned %d states, want 1", net.Len())
	}
	if net.Validate() == nil {
		t.Errorf("the lax-read network should still fail Validate")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Range('a', 'c'), automata.StartAllInput, false)
	b := m.Add(symset.All(), automata.StartNone, false)
	c := m.Add(symset.Single(0x00), automata.StartNone, true)
	m.Connect(a, b)
	m.Connect(b, b)
	m.Connect(b, c)
	m2 := automata.NewNFA()
	x := m2.Add(symset.Single('x'), automata.StartOfData, false)
	y := m2.Add(symset.Digits(), automata.StartNone, true)
	m2.Connect(x, y)
	net := automata.NewNetwork(m, m2)

	var buf bytes.Buffer
	if err := Write(&buf, net, "roundtrip"); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("re-read: %v\ndocument:\n%s", err, buf.String())
	}
	if got.Len() != net.Len() || got.NumNFAs() != net.NumNFAs() {
		t.Fatalf("round trip: Len=%d NFAs=%d, want %d,%d", got.Len(), got.NumNFAs(), net.Len(), net.NumNFAs())
	}
	for s := 0; s < net.Len(); s++ {
		if !got.States[s].Match.Equal(net.States[s].Match) {
			t.Errorf("state %d symbol set mismatch: %v vs %v", s, got.States[s].Match, net.States[s].Match)
		}
		if got.States[s].Start != net.States[s].Start {
			t.Errorf("state %d start mismatch", s)
		}
		if got.States[s].Report != net.States[s].Report {
			t.Errorf("state %d report mismatch", s)
		}
		if len(got.States[s].Succ) != len(net.States[s].Succ) {
			t.Errorf("state %d successor count mismatch", s)
		}
	}
}

func TestWriteGeneratesUniqueIDs(t *testing.T) {
	m := automata.NewNFA()
	a := m.AddState(automata.State{Match: symset.Single('a'), Start: automata.StartAllInput, Name: "dup"})
	b := m.AddState(automata.State{Match: symset.Single('b'), Report: true, Name: "dup"})
	m.Connect(a, b)
	net := automata.NewNetwork(m)
	var buf bytes.Buffer
	if err := Write(&buf, net, "dups"); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("re-read with duplicate names: %v", err)
	}
}
