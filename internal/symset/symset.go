// Package symset implements 256-bit symbol sets (character classes) for
// homogeneous NFA states.
//
// Each state-transition element (STE) on the Automata Processor stores a
// 256-row column of DRAM; row b is set iff the STE accepts input symbol b.
// Set mirrors that column as four 64-bit words. The zero value is the empty
// set and is ready to use.
package symset

import (
	"fmt"
	"math/bits"
	"strings"
)

// AlphabetSize is the number of distinct input symbols the AP address
// decoder can select (one DRAM row per symbol).
const AlphabetSize = 256

// Set is a set of byte-valued input symbols.
type Set [4]uint64

// Empty returns the empty symbol set.
func Empty() Set { return Set{} }

// All returns the set accepting every symbol (the ANML "*" star set).
func All() Set {
	return Set{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// Single returns the set containing only symbol b.
func Single(b byte) Set {
	var s Set
	s.Add(b)
	return s
}

// Of returns the set containing exactly the given symbols.
func Of(syms ...byte) Set {
	var s Set
	for _, b := range syms {
		s.Add(b)
	}
	return s
}

// Range returns the set containing all symbols in [lo, hi]. It panics if
// lo > hi.
func Range(lo, hi byte) Set {
	if lo > hi {
		panic(fmt.Sprintf("symset: invalid range [%d,%d]", lo, hi))
	}
	var s Set
	s.AddRange(lo, hi)
	return s
}

// Add inserts symbol b.
func (s *Set) Add(b byte) { s[b>>6] |= 1 << (b & 63) }

// Remove deletes symbol b.
func (s *Set) Remove(b byte) { s[b>>6] &^= 1 << (b & 63) }

// AddRange inserts every symbol in [lo, hi].
func (s *Set) AddRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		s.Add(byte(c))
	}
}

// Contains reports whether symbol b is in the set.
func (s Set) Contains(b byte) bool { return s[b>>6]&(1<<(b&63)) != 0 }

// IsEmpty reports whether the set contains no symbols.
func (s Set) IsEmpty() bool { return s == Set{} }

// Len returns the number of symbols in the set.
func (s Set) Len() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) +
		bits.OnesCount64(s[2]) + bits.OnesCount64(s[3])
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	return Set{s[0] | t[0], s[1] | t[1], s[2] | t[2], s[3] | t[3]}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	return Set{s[0] & t[0], s[1] & t[1], s[2] & t[2], s[3] & t[3]}
}

// Complement returns the set of symbols not in s.
func (s Set) Complement() Set {
	return Set{^s[0], ^s[1], ^s[2], ^s[3]}
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	return Set{s[0] &^ t[0], s[1] &^ t[1], s[2] &^ t[2], s[3] &^ t[3]}
}

// Equal reports whether s and t contain the same symbols.
func (s Set) Equal(t Set) bool { return s == t }

// Symbols returns the members of the set in ascending order.
func (s Set) Symbols() []byte {
	out := make([]byte, 0, s.Len())
	for w := 0; w < 4; w++ {
		word := s[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, byte(w*64+b))
			word &= word - 1
		}
	}
	return out
}

// Min returns the smallest symbol in the set and ok=false if the set is
// empty.
func (s Set) Min() (byte, bool) {
	for w := 0; w < 4; w++ {
		if s[w] != 0 {
			return byte(w*64 + bits.TrailingZeros64(s[w])), true
		}
	}
	return 0, false
}

// ranges returns the maximal runs [lo,hi] of consecutive members.
func (s Set) ranges() [][2]byte {
	var out [][2]byte
	inRun := false
	var lo byte
	for c := 0; c < AlphabetSize; c++ {
		if s.Contains(byte(c)) {
			if !inRun {
				inRun = true
				lo = byte(c)
			}
		} else if inRun {
			inRun = false
			out = append(out, [2]byte{lo, byte(c - 1)})
		}
	}
	if inRun {
		out = append(out, [2]byte{lo, 255})
	}
	return out
}

// String renders the set in ANML symbol-set syntax: "*" for the full
// alphabet, a bare escaped symbol for singletons, and a bracket expression
// (possibly negated) otherwise.
func (s Set) String() string {
	if s == All() {
		return "*"
	}
	if s.IsEmpty() {
		return "[]"
	}
	if s.Len() == 1 {
		b, _ := s.Min()
		return escapeSym(b)
	}
	// Prefer the shorter of positive and negated renderings.
	pos := bracket(s, false)
	neg := bracket(s.Complement(), true)
	if len(neg) < len(pos) {
		return neg
	}
	return pos
}

func bracket(s Set, negate bool) string {
	var b strings.Builder
	b.WriteByte('[')
	if negate {
		b.WriteByte('^')
	}
	for _, r := range s.ranges() {
		lo, hi := r[0], r[1]
		switch hi - lo {
		case 0:
			b.WriteString(escapeSym(lo))
		case 1:
			b.WriteString(escapeSym(lo))
			b.WriteString(escapeSym(hi))
		default:
			b.WriteString(escapeSym(lo))
			b.WriteByte('-')
			b.WriteString(escapeSym(hi))
		}
	}
	b.WriteByte(']')
	return b.String()
}

// escapeSym renders one symbol for use inside an ANML symbol-set.
func escapeSym(b byte) string {
	switch b {
	case '\\', '[', ']', '^', '-', '*':
		return "\\" + string(b)
	}
	if b >= 0x20 && b < 0x7f {
		return string(b)
	}
	return fmt.Sprintf("\\x%02x", b)
}

// Parse parses ANML symbol-set syntax as produced by String: "*", a single
// (possibly escaped) symbol, or a bracket expression with ranges, escapes
// (\xHH and \d \D \w \W \s \S shorthands) and optional leading ^ negation.
func Parse(src string) (Set, error) {
	if src == "*" {
		return All(), nil
	}
	if src == "" {
		return Set{}, fmt.Errorf("symset: empty expression")
	}
	if src[0] != '[' {
		// Single symbol, possibly escaped.
		b, n, err := parseSym(src, 0)
		if err != nil {
			return Set{}, err
		}
		if n != len(src) {
			return Set{}, fmt.Errorf("symset: trailing input in %q", src)
		}
		return Single(b), nil
	}
	if src[len(src)-1] != ']' {
		return Set{}, fmt.Errorf("symset: missing closing ] in %q", src)
	}
	body := src[1 : len(src)-1]
	negate := false
	if strings.HasPrefix(body, "^") {
		negate = true
		body = body[1:]
	}
	var s Set
	i := 0
	for i < len(body) {
		if cls, n, ok := parseClassShorthand(body, i); ok {
			s = s.Union(cls)
			i = n
			continue
		}
		lo, n, err := parseSym(body, i)
		if err != nil {
			return Set{}, err
		}
		i = n
		if i < len(body) && body[i] == '-' && i+1 < len(body) {
			hi, n2, err := parseSym(body, i+1)
			if err != nil {
				return Set{}, err
			}
			if hi < lo {
				return Set{}, fmt.Errorf("symset: inverted range %q", src)
			}
			s.AddRange(lo, hi)
			i = n2
			continue
		}
		s.Add(lo)
	}
	if negate {
		s = s.Complement()
	}
	return s, nil
}

// parseClassShorthand recognizes \d \D \w \W \s \S at src[i:].
func parseClassShorthand(src string, i int) (Set, int, bool) {
	if i+1 >= len(src) || src[i] != '\\' {
		return Set{}, 0, false
	}
	var cls Set
	switch src[i+1] {
	case 'd':
		cls = Digits()
	case 'D':
		cls = Digits().Complement()
	case 'w':
		cls = Word()
	case 'W':
		cls = Word().Complement()
	case 's':
		cls = Space()
	case 'S':
		cls = Space().Complement()
	default:
		return Set{}, 0, false
	}
	return cls, i + 2, true
}

// parseSym parses one symbol at src[i:], handling \xHH and single-character
// escapes, and returns the symbol and the index just past it.
func parseSym(src string, i int) (byte, int, error) {
	if i >= len(src) {
		return 0, 0, fmt.Errorf("symset: unexpected end of expression")
	}
	c := src[i]
	if c != '\\' {
		return c, i + 1, nil
	}
	if i+1 >= len(src) {
		return 0, 0, fmt.Errorf("symset: dangling backslash")
	}
	e := src[i+1]
	switch e {
	case 'x':
		if i+3 >= len(src) {
			return 0, 0, fmt.Errorf("symset: truncated \\x escape")
		}
		hi, ok1 := hexVal(src[i+2])
		lo, ok2 := hexVal(src[i+3])
		if !ok1 || !ok2 {
			return 0, 0, fmt.Errorf("symset: bad hex escape in %q", src[i:i+4])
		}
		return hi<<4 | lo, i + 4, nil
	case 'n':
		return '\n', i + 2, nil
	case 'r':
		return '\r', i + 2, nil
	case 't':
		return '\t', i + 2, nil
	case '0':
		return 0, i + 2, nil
	default:
		return e, i + 2, nil
	}
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Digits returns [0-9].
func Digits() Set { return Range('0', '9') }

// Word returns [0-9A-Za-z_].
func Word() Set {
	s := Digits()
	s = s.Union(Range('A', 'Z'))
	s = s.Union(Range('a', 'z'))
	s.Add('_')
	return s
}

// Space returns the ASCII whitespace class [\t\n\v\f\r ].
func Space() Set {
	return Of('\t', '\n', '\v', '\f', '\r', ' ')
}
