package symset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyAndAll(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() || e.Len() != 0 {
		t.Fatalf("Empty() not empty: len=%d", e.Len())
	}
	a := All()
	if a.Len() != AlphabetSize {
		t.Fatalf("All() len = %d, want %d", a.Len(), AlphabetSize)
	}
	for c := 0; c < AlphabetSize; c++ {
		if e.Contains(byte(c)) {
			t.Fatalf("empty set contains %d", c)
		}
		if !a.Contains(byte(c)) {
			t.Fatalf("full set missing %d", c)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	var s Set
	s.Add('a')
	s.Add(0)
	s.Add(255)
	for _, c := range []byte{'a', 0, 255} {
		if !s.Contains(c) {
			t.Errorf("missing %d after Add", c)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	s.Remove('a')
	if s.Contains('a') {
		t.Error("'a' still present after Remove")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestRange(t *testing.T) {
	s := Range('a', 'f')
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	for c := byte('a'); c <= 'f'; c++ {
		if !s.Contains(c) {
			t.Errorf("missing %c", c)
		}
	}
	if s.Contains('g') || s.Contains('`') {
		t.Error("range includes out-of-bounds symbols")
	}
}

func TestRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range('z','a') did not panic")
		}
	}()
	Range('z', 'a')
}

func TestSetAlgebra(t *testing.T) {
	a := Range('a', 'm')
	b := Range('h', 'z')
	u := a.Union(b)
	if u.Len() != 26 {
		t.Errorf("union len = %d, want 26", u.Len())
	}
	i := a.Intersect(b)
	if i.Len() != 6 { // h..m
		t.Errorf("intersect len = %d, want 6", i.Len())
	}
	m := a.Minus(b)
	if m.Len() != 7 { // a..g
		t.Errorf("minus len = %d, want 7", m.Len())
	}
	c := a.Complement()
	if c.Len() != AlphabetSize-a.Len() {
		t.Errorf("complement len = %d", c.Len())
	}
	if !a.Complement().Complement().Equal(a) {
		t.Error("double complement is not identity")
	}
}

func TestSymbolsSorted(t *testing.T) {
	s := Of('z', 'a', 'm', 0, 255)
	syms := s.Symbols()
	if len(syms) != 5 {
		t.Fatalf("Symbols len = %d, want 5", len(syms))
	}
	for i := 1; i < len(syms); i++ {
		if syms[i-1] >= syms[i] {
			t.Fatalf("Symbols not strictly ascending: %v", syms)
		}
	}
}

func TestMin(t *testing.T) {
	if _, ok := Empty().Min(); ok {
		t.Error("Min on empty set returned ok")
	}
	s := Of('q', 'b', 200)
	if m, ok := s.Min(); !ok || m != 'b' {
		t.Errorf("Min = %d,%v want 'b'", m, ok)
	}
}

func TestStringSpecialForms(t *testing.T) {
	if got := All().String(); got != "*" {
		t.Errorf("All.String = %q, want *", got)
	}
	if got := Empty().String(); got != "[]" {
		t.Errorf("Empty.String = %q, want []", got)
	}
	if got := Single('a').String(); got != "a" {
		t.Errorf("Single('a').String = %q, want a", got)
	}
	if got := Single('[').String(); got != "\\[" {
		t.Errorf("Single('[').String = %q", got)
	}
	if got := Single(0x07).String(); got != "\\x07" {
		t.Errorf("Single(7).String = %q", got)
	}
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want Set
	}{
		{"*", All()},
		{"a", Single('a')},
		{"\\x41", Single('A')},
		{"\\n", Single('\n')},
		{"[abc]", Of('a', 'b', 'c')},
		{"[a-c]", Range('a', 'c')},
		{"[a-cx-z]", Range('a', 'c').Union(Range('x', 'z'))},
		{"[^a]", Single('a').Complement()},
		{"[\\d]", Digits()},
		{"[\\w]", Word()},
		{"[\\s]", Space()},
		{"[\\D]", Digits().Complement()},
		{"[\\x00-\\x1f]", Range(0, 0x1f)},
	}
	for _, c := range cases {
		got, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.src, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.src, got.Symbols(), c.want.Symbols())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "[abc", "ab", "\\", "[\\x4]", "[z-a]", "\\xgg"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func randomSet(r *rand.Rand) Set {
	var s Set
	n := r.Intn(64)
	for i := 0; i < n; i++ {
		s.Add(byte(r.Intn(256)))
	}
	return s
}

// Property: String/Parse round-trips every set exactly.
func TestPropStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		s := randomSet(r)
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q) error: %v (set %v)", s.String(), err, s.Symbols())
		}
		if !got.Equal(s) {
			t.Fatalf("round trip of %v via %q gave %v", s.Symbols(), s.String(), got.Symbols())
		}
	}
}

// Property: Len equals the number of members reported by Contains.
func TestPropLenMatchesContains(t *testing.T) {
	f := func(w0, w1, w2, w3 uint64) bool {
		s := Set{w0, w1, w2, w3}
		n := 0
		for c := 0; c < AlphabetSize; c++ {
			if s.Contains(byte(c)) {
				n++
			}
		}
		return n == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — complement of union is intersection of complements.
func TestPropDeMorgan(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint64) bool {
		a := Set{a0, a1, a2, a3}
		b := Set{b0, b1, b2, b3}
		return a.Union(b).Complement().Equal(a.Complement().Intersect(b.Complement()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Minus is intersection with complement.
func TestPropMinus(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint64) bool {
		a := Set{a0, a1, a2, a3}
		b := Set{b0, b1, b2, b3}
		return a.Minus(b).Equal(a.Intersect(b.Complement()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShorthandClasses(t *testing.T) {
	if Digits().Len() != 10 {
		t.Errorf("Digits len = %d", Digits().Len())
	}
	if Word().Len() != 63 {
		t.Errorf("Word len = %d, want 63", Word().Len())
	}
	if Space().Len() != 6 {
		t.Errorf("Space len = %d, want 6", Space().Len())
	}
	if !Word().Contains('_') || Word().Contains('-') {
		t.Error("Word membership wrong")
	}
}
