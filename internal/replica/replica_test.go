package replica

import (
	"bytes"
	"errors"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparseap/internal/checkpoint"
	"sparseap/internal/metrics"
)

// openStore returns a fresh DirStore in a test temp dir.
func openStore(t *testing.T) *checkpoint.DirStore {
	t.Helper()
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

// startFollower brings up a Receiver over its own DirStore.
func startFollower(t *testing.T) (*checkpoint.DirStore, *httptest.Server) {
	t.Helper()
	st := openStore(t)
	mux := http.NewServeMux()
	NewReceiver(st, nil).Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return st, ts
}

func TestShipAndRotate(t *testing.T) {
	fst, ts := startFollower(t)
	leader := New(openStore(t), Options{Followers: []string{ts.URL}, Ack: 1})

	if err := leader.Save("sess-a", 3, []byte("first")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := leader.Save("sess-a", 3, []byte("second")); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// The follower's store must mirror the leader's latest+prev rotation.
	got, ver, fellback, err := fst.Load("sess-a")
	if err != nil || fellback || ver != 3 || string(got) != "second" {
		t.Fatalf("follower Load = %q v%d fellback=%v err=%v", got, ver, fellback, err)
	}
	prev, ver, err := fst.LoadPrevious("sess-a")
	if err != nil || ver != 3 || string(prev) != "first" {
		t.Fatalf("follower LoadPrevious = %q v%d err=%v", prev, ver, err)
	}
}

func TestRemoveShips(t *testing.T) {
	fst, ts := startFollower(t)
	leader := New(openStore(t), Options{Followers: []string{ts.URL}, Ack: 1})

	if err := leader.Save("sess-a", 1, []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := leader.Remove("sess-a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	// The delete ship is async best-effort; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, _, err := fst.Load("sess-a"); errors.Is(err, checkpoint.ErrNoCheckpoint) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower still holds removed slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDegradedLocalOnly(t *testing.T) {
	reg := metrics.NewRegistry()
	local := openStore(t)
	// Unroutable follower: every ship fails, quorum is unreachable.
	leader := New(local, Options{
		Followers: []string{"http://127.0.0.1:1"},
		Ack:       1,
		Timeout:   200 * time.Millisecond,
		Registry:  reg,
	})

	if err := leader.Save("sess-a", 1, []byte("payload")); err != nil {
		t.Fatalf("Save must degrade, not fail: %v", err)
	}
	if got, _, _, err := local.Load("sess-a"); err != nil || string(got) != "payload" {
		t.Fatalf("local slot missing after degraded save: %q err=%v", got, err)
	}
	snap := reg.Snapshot()
	if snap["serve_replication_degraded"] == 0 {
		t.Fatalf("degraded counter did not move: %v", snap)
	}
	if snap["serve_replication_lag"] == 0 {
		t.Fatalf("replication lag gauge should be nonzero with a dead follower: %v", snap)
	}
	if err := leader.Save("sess-a", 1, []byte("p2")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if leader.FollowersUp() != 0 {
		t.Fatalf("follower should be marked down after %d failures", leader.o.DownAfter)
	}
}

func TestRecoveryResync(t *testing.T) {
	fst := openStore(t)
	mux := http.NewServeMux()
	NewReceiver(fst, nil).Mount(mux)
	var reject atomic.Bool
	var syncs atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reject.Load() {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path == SyncPath {
			syncs.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	reg := metrics.NewRegistry()
	leader := New(openStore(t), Options{
		Followers: []string{ts.URL},
		Ack:       1,
		DownAfter: 1,
		Probe:     time.Millisecond,
		Registry:  reg,
	})

	// Two saves while the follower is down: it misses both, including the
	// prev rotation.
	reject.Store(true)
	leader.Save("sess-a", 2, []byte("v1"))
	leader.Save("sess-a", 2, []byte("v2"))
	if _, _, _, err := fst.Load("sess-a"); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("follower should have nothing during outage, got err=%v", err)
	}

	// Recovery: the next save (after the probe interval) must resync the
	// full latest+prev pair before shipping the new slot.
	reject.Store(false)
	time.Sleep(5 * time.Millisecond)
	if err := leader.Save("sess-a", 2, []byte("v3")); err != nil {
		t.Fatalf("Save after recovery: %v", err)
	}
	if syncs.Load() == 0 {
		t.Fatalf("recovery did not resync")
	}
	got, _, _, err := fst.Load("sess-a")
	if err != nil || string(got) != "v3" {
		t.Fatalf("follower latest after resync = %q err=%v", got, err)
	}
	prev, _, err := fst.LoadPrevious("sess-a")
	if err != nil || string(prev) != "v2" {
		t.Fatalf("follower prev after resync = %q err=%v", prev, err)
	}
	if reg.Snapshot()["serve_replication_resyncs"] == 0 {
		t.Fatalf("resync counter did not move")
	}
}

// shipReq builds a raw slot shipment for receiver-level tests.
func shipReq(t *testing.T, url, name, epoch string, seq uint64, version uint32, body []byte, crc uint32) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+SlotPath+"?name="+name, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("X-Replica-Epoch", epoch)
	req.Header.Set("X-Replica-Seq", strconv.FormatUint(seq, 10))
	req.Header.Set("X-Replica-Version", strconv.FormatUint(uint64(version), 10))
	req.Header.Set("X-Replica-CRC", strconv.FormatUint(uint64(crc), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	return resp
}

func TestReceiverRejectsCorruptAndStale(t *testing.T) {
	fst, ts := startFollower(t)
	good := []byte("good payload")
	crc := crc32.Checksum(good, castagnoli)

	if resp := shipReq(t, ts.URL, "s", "ep1", 1, 1, good, crc); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid shipment rejected: %d", resp.StatusCode)
	}

	// Corrupted body (CRC mismatch) must be rejected with the prior slot
	// intact.
	if resp := shipReq(t, ts.URL, "s", "ep1", 2, 1, []byte("corrupted"), crc); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt shipment answered %d, want 400", resp.StatusCode)
	}
	if got, _, _, err := fst.Load("s"); err != nil || string(got) != "good payload" {
		t.Fatalf("slot damaged by rejected shipment: %q err=%v", got, err)
	}

	// Stale seq within the same epoch: acknowledged idempotently, no write.
	older := []byte("older")
	if resp := shipReq(t, ts.URL, "s", "ep1", 1, 1, older, crc32.Checksum(older, castagnoli)); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale replay answered %d, want 200 ack", resp.StatusCode)
	}
	if got, _, _, _ := fst.Load("s"); string(got) != "good payload" {
		t.Fatalf("stale replay overwrote slot: %q", got)
	}

	// A new leader epoch resets the sequence bookkeeping.
	fresh := []byte("new leader")
	if resp := shipReq(t, ts.URL, "s", "ep2", 1, 1, fresh, crc32.Checksum(fresh, castagnoli)); resp.StatusCode != http.StatusOK {
		t.Fatalf("new-epoch shipment answered %d", resp.StatusCode)
	}
	if got, _, _, _ := fst.Load("s"); string(got) != "new leader" {
		t.Fatalf("new-epoch shipment not applied: %q", got)
	}
}

func TestReceiverRejectsBadNames(t *testing.T) {
	_, ts := startFollower(t)
	body := []byte("x")
	crc := crc32.Checksum(body, castagnoli)
	for _, name := range []string{"", "a/b", "a\\b", "..", "x..y", strings.Repeat("n", 129)} {
		if resp := shipReq(t, ts.URL, name, "ep", 1, 1, body, crc); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("name %q answered %d, want 400", name, resp.StatusCode)
		}
	}
}
