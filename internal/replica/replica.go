// Package replica extends checkpoint durability across node boundaries:
// a Store wraps a local checkpoint.Store and ships every committed slot
// to one or more follower nodes over HTTP, so a client whose server dies
// can fail over to a follower and resume from the same delivery floor.
//
// The wire contract mirrors the on-disk one. Every shipment carries the
// slot payload plus a CRC32-C, a leader epoch (a fresh random identity
// per Store so a restarted leader cannot be mistaken for its
// predecessor), and a monotonically increasing sequence number; the
// Receiver on the follower verifies the CRC, discards stale or replayed
// sequence numbers idempotently, and applies the slot through its own
// local store's atomic write-fsync-rename path. A shipment is therefore
// exactly as crash-consistent on the follower as a local save is on the
// leader: a connection cut mid-body leaves nothing applied.
//
// Durability barrier. Save returns only once the payload is durable
// locally AND acknowledged by at least Ack followers — the serve layer's
// save-then-flush delivery barrier calls Save before releasing a report
// window, so a window a client holds is always recoverable from any
// acknowledging follower. When fewer than Ack followers are reachable
// the Store degrades explicitly to local-only durability: Save still
// succeeds (the service keeps running on one node), the degradation is
// counted, and the serve_replication_lag gauge exposes how far the
// slowest follower has fallen behind the leader's shipped watermark.
//
// Failure handling has hysteresis: a follower is marked down after
// DownAfter consecutive ship failures, probed again at most once per
// Probe interval, and — because it missed shipments while down — brought
// back through a full resync (every name's latest and previous-good
// slot) before it counts toward the quorum again.
package replica

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparseap/internal/checkpoint"
	"sparseap/internal/metrics"
)

// SlotPath is the HTTP path a follower serves single-slot shipments on.
const SlotPath = "/v1/replica/slot"

// SyncPath is the HTTP path a follower serves latest+prev resync pairs
// (and migration transfers) on.
const SyncPath = "/v1/replica/sync"

// castagnoli is the CRC32-C table shared with the on-disk format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a replicated store. Followers is the only required
// field; the zero value of everything else picks serviceable defaults.
type Options struct {
	// Followers are base URLs of peers that mount a Receiver (e.g.
	// "http://10.0.0.2:8425"); every committed slot is shipped to all of
	// them.
	Followers []string
	// Ack is how many followers must acknowledge a save before it
	// returns (the quorum of the delivery barrier). It is clamped to
	// len(Followers); 0 means best-effort shipping with a local-only
	// barrier.
	Ack int
	// Timeout bounds one shipment request (default 2s).
	Timeout time.Duration
	// DownAfter is how many consecutive ship failures mark a follower
	// down (default 2 — hysteresis, so one flaky request does not flap).
	DownAfter int
	// Probe is the minimum interval between ship attempts to a down
	// follower (default 1s).
	Probe time.Duration
	// Registry receives the replication counters and the
	// serve_replication_lag gauge; nil creates a private one.
	Registry *metrics.Registry
	// Client is the HTTP client shipments use (default: a dedicated
	// client honoring Timeout).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 2
	}
	if o.Probe <= 0 {
		o.Probe = time.Second
	}
	if o.Ack > len(o.Followers) {
		o.Ack = len(o.Followers)
	}
	if o.Ack < 0 {
		o.Ack = 0
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: o.Timeout}
	}
	return o
}

// follower is the leader-side view of one peer.
type follower struct {
	url string

	mu      sync.Mutex
	acked   uint64 // highest shipped sequence number acknowledged
	fails   int    // consecutive ship failures
	down    bool
	resync  bool      // missed shipments while down; needs a full resync
	lastTry time.Time // last attempt while down (probe pacing)
}

// Store is a checkpoint.Store that replicates every committed slot to
// follower nodes. All slot reads are served locally; writes go local
// first (that is the crash-consistency anchor), then ship.
type Store struct {
	local checkpoint.Store
	o     Options
	reg   *metrics.Registry
	epoch string
	seq   atomic.Uint64

	followers []*follower
}

var _ checkpoint.Store = (*Store)(nil)

// New wraps local with replication to o.Followers.
func New(local checkpoint.Store, o Options) *Store {
	o = o.withDefaults()
	s := &Store{local: local, o: o, reg: o.Registry, epoch: newEpoch()}
	for _, u := range o.Followers {
		s.followers = append(s.followers, &follower{url: strings.TrimRight(u, "/")})
	}
	return s
}

// Local returns the wrapped local store. The serve layer's replica
// receive path writes through it so an applied shipment is never
// re-shipped (a two-node cluster replicating to each other would
// otherwise loop forever).
func (s *Store) Local() checkpoint.Store { return s.local }

// Epoch returns the leader identity shipments carry.
func (s *Store) Epoch() string { return s.epoch }

// Save persists payload locally, ships it to every reachable follower,
// and waits for the acknowledgement quorum. With fewer than Ack
// followers acknowledging it degrades to local-only durability — counted
// in serve_replication_degraded — rather than failing the session.
func (s *Store) Save(name string, version uint32, payload []byte) error {
	if err := s.local.Save(name, version, payload); err != nil {
		return err
	}
	s.shipAll(name, version, payload)
	return nil
}

// shipAll fans one committed slot out to the followers and enforces the
// quorum accounting. It blocks until every reachable follower answered
// or timed out (each attempt is bounded by Options.Timeout).
func (s *Store) shipAll(name string, version uint32, payload []byte) {
	if len(s.followers) == 0 {
		return
	}
	seq := s.seq.Add(1)
	acks := make([]bool, len(s.followers))
	var wg sync.WaitGroup
	for i, f := range s.followers {
		wg.Add(1)
		go func(i int, f *follower) {
			defer wg.Done()
			acks[i] = s.ship(f, name, version, payload, seq)
		}(i, f)
	}
	wg.Wait()
	n := 0
	for _, ok := range acks {
		if ok {
			n++
		}
	}
	if n < s.o.Ack {
		s.reg.Counter("serve_replication_degraded").Inc()
	}
	s.updateLag()
}

// ship delivers one slot to one follower, handling down-state pacing and
// the post-outage resync. Reports whether the follower acknowledged this
// sequence number.
func (s *Store) ship(f *follower, name string, version uint32, payload []byte, seq uint64) bool {
	f.mu.Lock()
	if f.down && time.Since(f.lastTry) < s.o.Probe {
		f.mu.Unlock()
		return false // pace probes; the follower stays behind
	}
	f.lastTry = time.Now()
	needResync := f.resync
	f.mu.Unlock()

	if needResync {
		// The follower missed shipments while down: replay every name's
		// latest and previous-good slot before acknowledging new ones.
		if !s.resyncFollower(f) {
			s.noteFailure(f)
			return false
		}
		s.reg.Counter("serve_replication_resyncs").Inc()
	}
	if err := s.post(f.url+SlotPath, name, seq, version, payload); err != nil {
		s.reg.Counter("serve_replication_ship_errors").Inc()
		s.noteFailure(f)
		return false
	}
	s.reg.Counter("serve_replication_ships").Inc()
	f.mu.Lock()
	f.fails, f.down, f.resync = 0, false, false
	if seq > f.acked {
		f.acked = seq
	}
	f.mu.Unlock()
	return true
}

// noteFailure applies the down-marking hysteresis.
func (s *Store) noteFailure(f *follower) {
	f.mu.Lock()
	f.fails++
	if f.fails >= s.o.DownAfter && !f.down {
		f.down = true
	}
	if f.down {
		f.resync = true
	}
	f.mu.Unlock()
}

// resyncFollower replays the full local slot set (latest + previous-good
// per name) through the sync endpoint. All names must apply for the
// resync to count — a partial resync leaves the follower marked behind.
func (s *Store) resyncFollower(f *follower) bool {
	names, err := s.local.Names()
	if err != nil {
		return false
	}
	for _, name := range names {
		latest, lver, _, lerr := s.local.Load(name)
		if lerr != nil {
			continue // slot vanished between Names and Load (session ended)
		}
		var e checkpoint.Enc
		e.U32(lver)
		e.BytesField(latest)
		prev, pver, perr := s.local.LoadPrevious(name)
		e.Bool(perr == nil)
		if perr == nil {
			e.U32(pver)
			e.BytesField(prev)
		}
		if err := s.post(f.url+SyncPath, name, s.seq.Add(1), 0, e.Bytes()); err != nil {
			return false
		}
	}
	return true
}

// post ships one request with the replication headers.
func (s *Store) post(url, name string, seq uint64, version uint32, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, url+"?name="+neturl.QueryEscape(name), strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	setShipHeaders(req.Header, s.epoch, seq, version, body)
	resp, err := s.o.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("replica: %s answered %d", url, resp.StatusCode)
	}
	return nil
}

// setShipHeaders stamps the replication envelope on a request.
func setShipHeaders(h http.Header, epoch string, seq uint64, version uint32, body []byte) {
	h.Set("X-Replica-Epoch", epoch)
	h.Set("X-Replica-Seq", strconv.FormatUint(seq, 10))
	h.Set("X-Replica-Version", strconv.FormatUint(uint64(version), 10))
	h.Set("X-Replica-CRC", strconv.FormatUint(uint64(crc32.Checksum(body, castagnoli)), 10))
}

// updateLag publishes the acknowledged-watermark gap: the leader's
// shipped sequence number minus the slowest follower's acknowledged one.
// Zero means every follower is current.
func (s *Store) updateLag() {
	head := s.seq.Load()
	var worst uint64
	for _, f := range s.followers {
		f.mu.Lock()
		if lag := head - f.acked; lag > worst {
			worst = lag
		}
		f.mu.Unlock()
	}
	s.reg.Gauge("serve_replication_lag").Set(int64(worst))
}

// FollowersUp reports how many followers are currently not marked down.
func (s *Store) FollowersUp() int {
	n := 0
	for _, f := range s.followers {
		f.mu.Lock()
		if !f.down {
			n++
		}
		f.mu.Unlock()
	}
	return n
}

// Load, LoadPrevious, Names are local reads: the leader's own store is
// always at least as fresh as any follower's.
func (s *Store) Load(name string) ([]byte, uint32, bool, error) { return s.local.Load(name) }

// LoadPrevious reads the local fallback slot.
func (s *Store) LoadPrevious(name string) ([]byte, uint32, error) { return s.local.LoadPrevious(name) }

// Names lists the local store's checkpoint names.
func (s *Store) Names() ([]string, error) { return s.local.Names() }

// Remove retires the slots locally and ships the removal best-effort: a
// follower that misses it keeps a stale slot, which is harmless (session
// IDs are never reused) and reclaimed by that follower's next Clear.
func (s *Store) Remove(name string) error {
	err := s.local.Remove(name)
	seq := s.seq.Add(1)
	for _, f := range s.followers {
		go func(f *follower) {
			req, rerr := http.NewRequest(http.MethodDelete, f.url+SlotPath+"?name="+neturl.QueryEscape(name), nil)
			if rerr != nil {
				return
			}
			setShipHeaders(req.Header, s.epoch, seq, 0, nil)
			if resp, derr := s.o.Client.Do(req); derr == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(f)
	}
	return err
}

// Clear empties the local store only; followers are marked for resync so
// their next acknowledged shipment reflects the fresh state.
func (s *Store) Clear() error {
	err := s.local.Clear()
	for _, f := range s.followers {
		f.mu.Lock()
		f.resync = true
		f.mu.Unlock()
	}
	return err
}

// newEpoch returns a fresh leader identity.
func newEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
