package replica

import (
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"sparseap/internal/checkpoint"
	"sparseap/internal/metrics"
)

// maxSlotBody bounds one shipped slot (or resync pair). Session
// checkpoints are engine snapshot + report window — far below this; the
// cap keeps a misbehaving peer from ballooning follower memory.
const maxSlotBody = 64 << 20

// Receiver is the follower side of checkpoint shipping: an http.Handler
// a serving node mounts under /v1/replica/. It verifies each shipment's
// CRC, applies it through the node's LOCAL store (never a replicated
// wrapper — two nodes replicating to each other must not relay
// shipments onward), and keeps per-name (epoch, seq) bookkeeping so
// replayed or reordered shipments acknowledge idempotently without a
// second write.
type Receiver struct {
	store checkpoint.Store
	reg   *metrics.Registry

	mu   sync.Mutex
	seen map[string]nameState // per checkpoint name
}

// nameState is the newest shipment applied for one name.
type nameState struct {
	epoch string
	seq   uint64
}

// NewReceiver returns a Receiver applying shipments to store. store must
// be the node's local store; reg (optional) receives the receive-side
// counters.
func NewReceiver(store checkpoint.Store, reg *metrics.Registry) *Receiver {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Receiver{store: store, reg: reg, seen: map[string]nameState{}}
}

// Mount registers the replica endpoints on mux.
func (rc *Receiver) Mount(mux *http.ServeMux) {
	mux.HandleFunc(SlotPath, rc.handleSlot)
	mux.HandleFunc(SyncPath, rc.handleSync)
}

// validName rejects names that could escape the store directory or
// denote slot-internal files.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return false
	}
	return true
}

// readShipment parses and verifies the common shipment envelope,
// answering the request itself on any failure. stale means the shipment
// is older than what is already applied for the name — acknowledged
// without a write so leader retries are idempotent.
func (rc *Receiver) readShipment(w http.ResponseWriter, r *http.Request) (name string, seq uint64, version uint32, body []byte, stale, ok bool) {
	name = r.URL.Query().Get("name")
	if !validName(name) {
		http.Error(w, "bad checkpoint name", http.StatusBadRequest)
		return
	}
	epoch := r.Header.Get("X-Replica-Epoch")
	if epoch == "" {
		http.Error(w, "missing X-Replica-Epoch", http.StatusBadRequest)
		return
	}
	seq, err := strconv.ParseUint(r.Header.Get("X-Replica-Seq"), 10, 64)
	if err != nil {
		http.Error(w, "bad X-Replica-Seq", http.StatusBadRequest)
		return
	}
	v64, err := strconv.ParseUint(r.Header.Get("X-Replica-Version"), 10, 32)
	if err != nil {
		http.Error(w, "bad X-Replica-Version", http.StatusBadRequest)
		return
	}
	version = uint32(v64)
	wantCRC, err := strconv.ParseUint(r.Header.Get("X-Replica-CRC"), 10, 32)
	if err != nil {
		http.Error(w, "bad X-Replica-CRC", http.StatusBadRequest)
		return
	}
	body, err = io.ReadAll(io.LimitReader(r.Body, maxSlotBody+1))
	if err != nil {
		http.Error(w, "short body", http.StatusBadRequest)
		return
	}
	if len(body) > maxSlotBody {
		http.Error(w, "slot too large", http.StatusRequestEntityTooLarge)
		return
	}
	if crc32.Checksum(body, castagnoli) != uint32(wantCRC) {
		rc.reg.Counter("serve_replication_recv_errors").Inc()
		http.Error(w, "CRC mismatch", http.StatusBadRequest)
		return
	}

	rc.mu.Lock()
	st, have := rc.seen[name]
	if have && st.epoch == epoch && seq <= st.seq {
		stale = true // replay within the same leader incarnation
	} else {
		rc.seen[name] = nameState{epoch: epoch, seq: seq}
	}
	rc.mu.Unlock()
	ok = true
	return
}

// handleSlot applies one shipped slot: POST writes the payload as the
// latest checkpoint of the name (rotating prev exactly as a local save
// does); DELETE retires the name's slots.
func (rc *Receiver) handleSlot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost, http.MethodDelete:
	default:
		http.Error(w, "POST or DELETE only", http.StatusMethodNotAllowed)
		return
	}
	name, _, version, body, stale, ok := rc.readShipment(w, r)
	if !ok {
		return
	}
	if stale {
		w.WriteHeader(http.StatusOK) // idempotent ack, no write
		return
	}
	if r.Method == http.MethodDelete {
		rc.store.Remove(name) // best-effort: a leftover slot is harmless
		w.WriteHeader(http.StatusOK)
		return
	}
	if err := rc.store.Save(name, version, body); err != nil {
		rc.reg.Counter("serve_replication_recv_errors").Inc()
		http.Error(w, "save failed", http.StatusInternalServerError)
		return
	}
	rc.reg.Counter("serve_replication_received").Inc()
	w.WriteHeader(http.StatusOK)
}

// handleSync applies one resync pair: the name's latest and (optionally)
// previous-good slots in one atomic request, encoded as
//
//	latestVersion u32, latest bytes, hasPrev bool[, prevVersion u32, prev bytes]
//
// Saving prev first and latest second reproduces the latest+fallback
// rotation on the follower, so a resumed consumer behind the latest
// floor still finds the previous-good slot.
func (rc *Receiver) handleSync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name, _, _, body, stale, ok := rc.readShipment(w, r)
	if !ok {
		return
	}
	if stale {
		w.WriteHeader(http.StatusOK)
		return
	}
	d := checkpoint.NewDec(body)
	lver := d.U32()
	latest := d.BytesField()
	hasPrev := d.Bool()
	var pver uint32
	var prev []byte
	if hasPrev {
		pver = d.U32()
		prev = d.BytesField()
	}
	if d.Done() != nil {
		rc.reg.Counter("serve_replication_recv_errors").Inc()
		http.Error(w, "malformed sync record", http.StatusBadRequest)
		return
	}
	if hasPrev {
		if err := rc.store.Save(name, pver, prev); err != nil {
			http.Error(w, "save failed", http.StatusInternalServerError)
			return
		}
	}
	if err := rc.store.Save(name, lver, latest); err != nil {
		http.Error(w, "save failed", http.StatusInternalServerError)
		return
	}
	rc.reg.Counter("serve_replication_received").Inc()
	w.WriteHeader(http.StatusOK)
}
