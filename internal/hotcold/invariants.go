package hotcold

import (
	"fmt"

	"sparseap/internal/automata"
)

// CheckInvariants verifies the structural guarantees of Section IV-C that
// the executor relies on. It is used by tests and by callers that build
// partitions from untrusted layer choices.
//
//  1. Unidirectional cut: no original edge runs from a predicted-cold state
//     to a predicted-hot state.
//  2. SCC atomicity: states of one SCC land on the same side.
//  3. Fragment maps are mutually consistent bijections.
//  4. Every start state is predicted hot (the cold network is never
//     self-enabled, which the SpAP jump operation requires).
//  5. Intermediate reporting states match their target's symbol set, are
//     reporting, and have no successors.
func (p *Partition) CheckInvariants() error {
	net := p.Net
	for u := 0; u < net.Len(); u++ {
		uHot := p.PredHot.Get(u)
		if st := net.States[u].Start; st != automata.StartNone && !uHot {
			return fmt.Errorf("hotcold: start state %d predicted cold", u)
		}
		for _, v := range net.States[u].Succ {
			if !uHot && p.PredHot.Get(int(v)) {
				return fmt.Errorf("hotcold: cold->hot edge %d->%d", u, v)
			}
		}
	}
	scc := p.Topo.SCC
	side := make(map[int32]bool)
	seen := make(map[int32]bool)
	for s := 0; s < net.Len(); s++ {
		c := scc.Comp[s]
		if !seen[c] {
			seen[c] = true
			side[c] = p.PredHot.Get(s)
		} else if side[c] != p.PredHot.Get(s) {
			return fmt.Errorf("hotcold: SCC %d split across the partition", c)
		}
	}
	// Fragment map consistency.
	if len(p.HotOrig) != p.Hot.Len() || len(p.ColdOrig) != p.Cold.Len() {
		return fmt.Errorf("hotcold: fragment map lengths inconsistent")
	}
	hotCount := 0
	for h, g := range p.HotOrig {
		if g == automata.None {
			if _, ok := p.Intermediate[automata.StateID(h)]; !ok {
				return fmt.Errorf("hotcold: hot state %d has no origin and no translation", h)
			}
			continue
		}
		hotCount++
		if !p.PredHot.Get(int(g)) {
			return fmt.Errorf("hotcold: hot fragment contains cold original %d", g)
		}
	}
	if hotCount != p.PredHot.Count() {
		return fmt.Errorf("hotcold: hot fragment has %d originals, predicted hot %d", hotCount, p.PredHot.Count())
	}
	for c, g := range p.ColdOrig {
		if p.PredHot.Get(int(g)) {
			return fmt.Errorf("hotcold: cold fragment contains hot original %d", g)
		}
		if p.ColdID[g] != automata.StateID(c) {
			return fmt.Errorf("hotcold: ColdID inverse broken at %d", g)
		}
	}
	// Intermediate states.
	for iv, target := range p.Intermediate {
		st := p.Hot.States[iv]
		if !st.Report {
			return fmt.Errorf("hotcold: intermediate %d not reporting", iv)
		}
		if len(st.Succ) != 0 {
			return fmt.Errorf("hotcold: intermediate %d has successors", iv)
		}
		if !st.Match.Equal(net.States[target].Match) {
			return fmt.Errorf("hotcold: intermediate %d symbol set differs from target %d", iv, target)
		}
		if p.PredHot.Get(int(target)) {
			return fmt.Errorf("hotcold: intermediate %d targets hot state %d", iv, target)
		}
		if p.ColdID[target] == automata.None {
			return fmt.Errorf("hotcold: intermediate target %d missing from cold fragment", target)
		}
	}
	// Cold network must have no self-enabled states.
	for s := range p.Cold.States {
		if p.Cold.States[s].Start != automata.StartNone {
			return fmt.Errorf("hotcold: cold network state %d is a start state", s)
		}
	}
	return nil
}
