package hotcold

import (
	"sparseap/internal/lint"
)

// LintInfo exposes the partition to internal/lint's partition analyzers
// (AP011–AP015). lint cannot import this package (it would cycle through
// the analyzers), so the partition hands over a field-by-field view.
func (p *Partition) LintInfo() *lint.PartitionInfo {
	return &lint.PartitionInfo{
		Net:          p.Net,
		Topo:         p.Topo,
		PredHot:      p.PredHot,
		Hot:          p.Hot,
		HotOrig:      p.HotOrig,
		Intermediate: p.Intermediate,
		Cold:         p.Cold,
		ColdOrig:     p.ColdOrig,
		ColdID:       p.ColdID,
	}
}

// CheckInvariants verifies the structural guarantees of Section IV-C that
// the executor relies on. It is a thin wrapper over the lint partition
// analyzers; run lint.RunPartition(p.LintInfo(), …) directly for the full
// diagnostic list instead of a first-error summary. The invariants:
//
//  1. Unidirectional cut: no original edge runs from a predicted-cold state
//     to a predicted-hot state (AP011).
//  2. SCC atomicity: states of one SCC land on the same side (AP012).
//  3. Every start state is predicted hot and the cold network is never
//     self-enabled, which the SpAP jump operation requires (AP013).
//  4. Intermediate reporting states match their target's symbol set, are
//     reporting, and have no successors (AP014).
//  5. Fragment maps are mutually consistent bijections (AP015).
func (p *Partition) CheckInvariants() error {
	return lint.RunPartition(p.LintInfo(), lint.Options{}).Err()
}
