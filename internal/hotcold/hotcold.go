// Package hotcold implements the paper's software contribution (Sections
// III and IV): profiling-based hot/cold state prediction, the
// topological-order partitioning of each NFA at its partition layer k_U,
// intermediate reporting states for mis-prediction handling, the
// batch-filling optimization, and the analytic performance model.
package hotcold

import (
	"fmt"
	"math"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
	"sparseap/internal/graph"
	"sparseap/internal/metrics"
	"sparseap/internal/sim"
)

// Profile runs the network over a profiling input and returns the
// ever-enabled (hot) state set — the compile-time step of Section IV-A.
func Profile(net *automata.Network, input []byte) *bitvec.Vec {
	return sim.HotStates(net, input)
}

// ProfilePrefix profiles using the first frac of input (0 < frac <= 1).
func ProfilePrefix(net *automata.Network, input []byte, frac float64) *bitvec.Vec {
	n := int(math.Round(frac * float64(len(input))))
	if n < 1 {
		n = 1
	}
	if n > len(input) {
		n = len(input)
	}
	return Profile(net, input[:n])
}

// Quality compares a predicted hot set against the actual hot set under the
// testing input, treating hot as positive (Section IV-A).
func Quality(predicted, actual *bitvec.Vec) metrics.Confusion {
	var c metrics.Confusion
	n := actual.Len()
	for s := 0; s < n; s++ {
		switch {
		case predicted.Get(s) && actual.Get(s):
			c.TP++
		case predicted.Get(s) && !actual.Get(s):
			c.FP++
		case !predicted.Get(s) && actual.Get(s):
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// PartitionLayers computes k_U for every NFA: the maximum topological order
// of any profiled-hot state in the NFA (Section IV-B). Every NFA has at
// least one hot state (its start states are enabled by definition), so
// k_U >= 1.
func PartitionLayers(net *automata.Network, topo *graph.Topo, hot *bitvec.Vec) []int32 {
	k := make([]int32, net.NumNFAs())
	hot.ForEach(func(s int) {
		nfa := net.NFAOf[s]
		if topo.Order[s] > k[nfa] {
			k[nfa] = topo.Order[s]
		}
	})
	for i := range k {
		if k[i] == 0 {
			k[i] = 1 // defensive: never strand an NFA without its start layer
		}
	}
	return k
}

// PredictedHot returns the predicted hot set for the given partition
// layers: state s is predicted hot iff topoorder(s) <= k of its NFA.
func PredictedHot(net *automata.Network, topo *graph.Topo, k []int32) *bitvec.Vec {
	v := bitvec.New(net.Len())
	for s := 0; s < net.Len(); s++ {
		if topo.Order[s] <= k[net.NFAOf[s]] {
			v.Set(s)
		}
	}
	return v
}

// Partition is the compiled artifact of Section IV-C: the original network
// split into a hot network (predicted hot states plus intermediate
// reporting states) and a cold network (predicted cold states), with the
// translation table connecting them.
type Partition struct {
	// Net is the original network.
	Net *automata.Network
	// Topo is the topological analysis the partition was derived from.
	Topo *graph.Topo
	// K[i] is the partition layer of NFA i.
	K []int32
	// PredHot marks the predicted hot original states.
	PredHot *bitvec.Vec

	// Hot is the network configured in BaseAP mode: hot fragments plus
	// one intermediate reporting state per distinct cut-edge target.
	Hot *automata.Network
	// HotOrig maps hot-network IDs to original IDs; intermediate
	// reporting states map to automata.None.
	HotOrig []automata.StateID
	// Intermediate maps a hot-network intermediate reporting state to
	// the original (cold) state it stands for — the translation table of
	// Figure 7.
	Intermediate map[automata.StateID]automata.StateID

	// Cold is the network configured in SpAP mode (may be empty).
	Cold *automata.Network
	// ColdOrig maps cold-network IDs to original IDs.
	ColdOrig []automata.StateID
	// ColdID maps original IDs to cold-network IDs (None when hot).
	ColdID []automata.StateID

	// NumIntermediate counts the added intermediate reporting states.
	NumIntermediate int
}

// Options configures partition construction.
type Options struct {
	// Capacity, when positive, enables the Section IV-B optimization:
	// partition layers are incremented to fill each BaseAP batch up to
	// this capacity.
	Capacity int
}

// Build constructs the partition of net at the given layers. The layers
// slice is not retained; the partition stores its own (possibly extended)
// copy.
func Build(net *automata.Network, topo *graph.Topo, k []int32, opts Options) (*Partition, error) {
	if len(k) != net.NumNFAs() {
		return nil, fmt.Errorf("hotcold: %d layers for %d NFAs", len(k), net.NumNFAs())
	}
	kk := append([]int32(nil), k...)
	if opts.Capacity > 0 {
		fillBatches(net, topo, kk, opts.Capacity)
	}
	p := &Partition{
		Net:          net,
		Topo:         topo,
		K:            kk,
		Intermediate: make(map[automata.StateID]automata.StateID),
	}
	p.PredHot = PredictedHot(net, topo, kk)
	p.buildNetworks()
	return p, nil
}

// BuildFromProfile is the end-to-end compile flow: profile, choose layers,
// and build the partition.
func BuildFromProfile(net *automata.Network, profInput []byte, opts Options) (*Partition, error) {
	topo := graph.TopoOrder(net)
	hot := Profile(net, profInput)
	k := PartitionLayers(net, topo, hot)
	return Build(net, topo, k, opts)
}

// buildNetworks materializes Hot (with intermediates) and Cold.
func (p *Partition) buildNetworks() {
	net := p.Net
	hotNet := &automata.Network{Offsets: []automata.StateID{0}}
	coldNet := &automata.Network{Offsets: []automata.StateID{0}}
	hotID := make([]automata.StateID, net.Len())
	p.ColdID = make([]automata.StateID, net.Len())
	for i := range hotID {
		hotID[i] = automata.None
		p.ColdID[i] = automata.None
	}
	for nfa := 0; nfa < net.NumNFAs(); nfa++ {
		lo, hi := net.NFAStates(nfa)
		hotFirst := len(hotNet.States)
		coldFirst := len(coldNet.States)
		// Pass 1: allocate states in their fragment.
		for g := lo; g < hi; g++ {
			s := net.States[g]
			s.Succ = nil
			if p.PredHot.Get(int(g)) {
				hotID[g] = automata.StateID(len(hotNet.States))
				hotNet.States = append(hotNet.States, s)
				p.HotOrig = append(p.HotOrig, g)
			} else {
				p.ColdID[g] = automata.StateID(len(coldNet.States))
				coldNet.States = append(coldNet.States, s)
				p.ColdOrig = append(p.ColdOrig, g)
			}
		}
		// Pass 2: wire edges; cut edges create intermediate reporting
		// states (one per distinct cold target within the NFA).
		interOf := make(map[automata.StateID]automata.StateID) // orig cold -> hot-net v'
		for g := lo; g < hi; g++ {
			if !p.PredHot.Get(int(g)) {
				// Cold source: all targets are cold (unidirectional cut).
				cu := p.ColdID[g]
				for _, v := range net.States[g].Succ {
					coldNet.States[cu].Succ = append(coldNet.States[cu].Succ, p.ColdID[v])
				}
				continue
			}
			hu := hotID[g]
			for _, v := range net.States[g].Succ {
				if hv := hotID[v]; hv != automata.None {
					hotNet.States[hu].Succ = append(hotNet.States[hu].Succ, hv)
					continue
				}
				// Cut edge: route to the intermediate reporting state.
				iv, ok := interOf[v]
				if !ok {
					iv = automata.StateID(len(hotNet.States))
					hotNet.States = append(hotNet.States, automata.State{
						Match:  net.States[v].Match,
						Report: true,
						Name:   "im:" + net.States[v].Name,
					})
					p.HotOrig = append(p.HotOrig, automata.None)
					p.Intermediate[iv] = v
					interOf[v] = iv
					p.NumIntermediate++
				}
				hotNet.States[hu].Succ = append(hotNet.States[hu].Succ, iv)
			}
		}
		if len(hotNet.States) > hotFirst {
			idx := int32(hotNet.NumNFAs())
			for range hotNet.States[hotFirst:] {
				hotNet.NFAOf = append(hotNet.NFAOf, idx)
			}
			hotNet.Offsets = append(hotNet.Offsets, automata.StateID(len(hotNet.States)))
		}
		if len(coldNet.States) > coldFirst {
			idx := int32(coldNet.NumNFAs())
			for range coldNet.States[coldFirst:] {
				coldNet.NFAOf = append(coldNet.NFAOf, idx)
			}
			coldNet.Offsets = append(coldNet.Offsets, automata.StateID(len(coldNet.States)))
		}
	}
	p.Hot = hotNet
	p.Cold = coldNet
}

// fillBatches implements the optimization of Section IV-B: after packing
// predicted hot fragments into batches, each batch's slack is consumed by
// incrementing the partition layers of its NFAs, pulling subsequent layers
// of predicted cold states in.
//
// Fragment sizes are exact BaseAP-mode footprints: the states with
// topological order <= k plus the intermediate reporting states the cut at
// k introduces — otherwise filled batches overshoot the capacity once the
// intermediates are added and BaseAP mode needs an extra configuration.
func fillBatches(net *automata.Network, topo *graph.Topo, k []int32, capacity int) {
	// Per-NFA layer histograms, so an increment's cost is O(1).
	layers := make([][]int32, net.NumNFAs()) // layers[u][d-1] = #states at order d
	inter := make([][]int32, net.NumNFAs())  // inter[u][d-1] = #intermediates when k=d
	for u := 0; u < net.NumNFAs(); u++ {
		layers[u] = make([]int32, topo.MaxPerNFA[u])
		inter[u] = make([]int32, topo.MaxPerNFA[u]+1) // +1: diff-array slack
	}
	for s := 0; s < net.Len(); s++ {
		layers[net.NFAOf[s]][topo.Order[s]-1]++
	}
	// A state v needs an intermediate exactly when some predecessor sits at
	// or below the cut while v is above it: for k in [minPredOrder(v),
	// order(v)-1]. Accumulate as difference arrays, then prefix-sum.
	preds := net.Preds()
	for v := 0; v < net.Len(); v++ {
		ov := topo.Order[v]
		mn := int32(-1)
		for _, p := range preds[v] {
			if op := topo.Order[p]; op < ov && (mn == -1 || op < mn) {
				mn = op
			}
		}
		if mn == -1 {
			continue
		}
		u := net.NFAOf[v]
		inter[u][mn-1]++
		inter[u][ov-1]--
	}
	for u := range inter {
		for d := 1; d < len(inter[u]); d++ {
			inter[u][d] += inter[u][d-1]
		}
	}
	// frag(u, d) = states in layers 1..d plus intermediates at cut d.
	cum := make([][]int32, net.NumNFAs())
	for u := range cum {
		cum[u] = make([]int32, len(layers[u])+1)
		for d := 0; d < len(layers[u]); d++ {
			cum[u][d+1] = cum[u][d] + layers[u][d]
		}
	}
	frag := func(u int, d int32) int {
		f := int(cum[u][d])
		if d < int32(len(layers[u])) { // no intermediates at the full depth
			f += int(inter[u][d-1])
		}
		return f
	}
	size := make([]int, net.NumNFAs())
	for u := range size {
		size[u] = frag(u, k[u])
	}
	// First-fit-decreasing packing of the fragments.
	order := make([]int, net.NumNFAs())
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort by size desc (stable)
		for j := i; j > 0 && size[order[j]] > size[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	type batch struct {
		nfas []int
		used int
	}
	var batches []batch
	for _, u := range order {
		if size[u] > capacity {
			// A fragment can exceed capacity only via a giant SCC; it
			// gets its own batch and is handled by the executor.
			batches = append(batches, batch{nfas: []int{u}, used: size[u]})
			continue
		}
		placed := false
		for bi := range batches {
			if batches[bi].used+size[u] <= capacity {
				batches[bi].nfas = append(batches[bi].nfas, u)
				batches[bi].used += size[u]
				placed = true
				break
			}
		}
		if !placed {
			batches = append(batches, batch{nfas: []int{u}, used: size[u]})
		}
	}
	// Grow layers round-robin within each batch while slack remains.
	for bi := range batches {
		b := &batches[bi]
		progress := true
		for progress {
			progress = false
			for _, u := range b.nfas {
				if k[u] >= topo.MaxPerNFA[u] {
					continue
				}
				delta := frag(u, k[u]+1) - frag(u, k[u])
				if delta <= 0 {
					k[u]++
					progress = true
					continue
				}
				if b.used+delta > capacity {
					continue
				}
				k[u]++
				b.used += delta
				progress = true
			}
		}
	}
}

// ResourceSaving returns p = (states not configured in BaseAP mode)/S —
// Figure 10b. Intermediate states are excluded from the numerator; they are
// reported separately (Figure 12).
func (p *Partition) ResourceSaving() float64 {
	s := p.Net.Len()
	return float64(s-p.PredHot.Count()) / float64(s)
}

// ReportingStates returns the number of original reporting states in the
// hot network and the number of intermediate reporting states (Figure 12).
func (p *Partition) ReportingStates() (original, intermediate int) {
	for i, s := range p.Hot.States {
		if !s.Report {
			continue
		}
		if p.HotOrig[i] == automata.None {
			intermediate++
		} else {
			original++
		}
	}
	return original, intermediate
}

// ConstrainedStates measures the Figure 8 quantity: the fraction of all
// states that a *perfect* topological-order partition (oracle hot set)
// configures on the AP even though they are truly cold — the price of the
// SCC and layer-granularity constraints versus cutting arbitrary edges.
func ConstrainedStates(net *automata.Network, topo *graph.Topo, oracleHot *bitvec.Vec) float64 {
	k := PartitionLayers(net, topo, oracleHot)
	pred := PredictedHot(net, topo, k)
	constrained := 0
	for s := 0; s < net.Len(); s++ {
		if pred.Get(s) && !oracleHot.Get(s) {
			constrained++
		}
	}
	return float64(constrained) / float64(net.Len())
}

// ModelSpeedup is the analytic model of Section III-C: the batch-count
// ratio ceil(S/C) / ceil((1-p)S/C) for resource saving p.
func ModelSpeedup(states, capacity int, p float64) float64 {
	if states <= 0 || capacity <= 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	base := math.Ceil(float64(states) / float64(capacity))
	kept := math.Ceil((1 - p) * float64(states) / float64(capacity))
	if kept == 0 {
		kept = 1
	}
	return base / kept
}
