package hotcold

import (
	"fmt"
	"math"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
	"sparseap/internal/graph"
	"sparseap/internal/hotness"
)

// Strategy selects how partition layers are chosen. The paper's scheme is
// StrategyProfiled; the others are ablation baselines quantifying what the
// profiling information buys.
type Strategy int

const (
	// StrategyProfiled is the paper's Section IV-B scheme: k_U is the
	// maximum topological order of any state the profiling input enabled.
	StrategyProfiled Strategy = iota
	// StrategyFixedLayers cuts every NFA at the same absolute layer
	// (param = layer count), ignoring runtime behaviour entirely.
	StrategyFixedLayers
	// StrategyNormalizedDepth cuts every NFA at the same normalized depth
	// (param in (0,1]): k_U = ceil(param × MaxTopo_U). This uses the
	// Section III-B correlation but no profiling.
	StrategyNormalizedDepth
	// StrategyOracle chooses k_U from the hot set of the *actual* test
	// input — the unattainable upper bound of Section III-C.
	StrategyOracle
	// StrategyStatic predicts the hot set from structure alone via the
	// internal/hotness abstract interpretation — zero profiling cost.
	StrategyStatic
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyProfiled:
		return "profiled"
	case StrategyFixedLayers:
		return "fixed-layers"
	case StrategyNormalizedDepth:
		return "normalized-depth"
	case StrategyOracle:
		return "oracle"
	case StrategyStatic:
		return "static"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// StrategyInput bundles what each strategy needs.
type StrategyInput struct {
	// ProfiledHot is the profiling-run hot set (StrategyProfiled).
	ProfiledHot *bitvec.Vec
	// OracleHot is the test-input hot set (StrategyOracle).
	OracleHot *bitvec.Vec
	// Param is the layer count (StrategyFixedLayers) or normalized depth
	// threshold (StrategyNormalizedDepth).
	Param float64
	// Hotness, when non-nil, supplies a precomputed static analysis for
	// StrategyStatic; when nil, one is computed from HotnessCfg.
	Hotness *hotness.Analysis
	// HotnessCfg configures the StrategyStatic analysis when Hotness is
	// nil; the zero value uses the hotness package defaults.
	HotnessCfg hotness.Config
}

// Layers computes per-NFA partition layers under the given strategy.
func Layers(net *automata.Network, topo *graph.Topo, s Strategy, in StrategyInput) ([]int32, error) {
	switch s {
	case StrategyProfiled:
		if in.ProfiledHot == nil {
			return nil, fmt.Errorf("hotcold: %v needs ProfiledHot", s)
		}
		if net.Len() > 0 && in.ProfiledHot.Count() == 0 {
			return nil, fmt.Errorf("hotcold: %v got an empty ProfiledHot set (a profiling run always enables start states; an empty set means the profile is missing, and cutting at layer 0 would be silently wrong)", s)
		}
		return PartitionLayers(net, topo, in.ProfiledHot), nil
	case StrategyOracle:
		if in.OracleHot == nil {
			return nil, fmt.Errorf("hotcold: %v needs OracleHot", s)
		}
		if net.Len() > 0 && in.OracleHot.Count() == 0 {
			return nil, fmt.Errorf("hotcold: %v got an empty OracleHot set", s)
		}
		return PartitionLayers(net, topo, in.OracleHot), nil
	case StrategyStatic:
		a := in.Hotness
		if a == nil {
			cfg := in.HotnessCfg
			cfg.Topo = topo
			a = hotness.Analyze(net, cfg)
		}
		// The analysis floors each cut at layer 1; alignToSCCs then
		// raises it over deep-seated start states exactly as for the
		// other behaviour-blind strategies.
		return alignToSCCs(net, topo, a.Layers()), nil
	case StrategyFixedLayers:
		if in.Param < 1 {
			return nil, fmt.Errorf("hotcold: %v needs Param >= 1", s)
		}
		k := make([]int32, net.NumNFAs())
		for u := range k {
			k[u] = int32(in.Param)
			if k[u] > topo.MaxPerNFA[u] {
				k[u] = topo.MaxPerNFA[u]
			}
		}
		return alignToSCCs(net, topo, k), nil
	case StrategyNormalizedDepth:
		if in.Param <= 0 || in.Param > 1 {
			return nil, fmt.Errorf("hotcold: %v needs Param in (0,1]", s)
		}
		k := make([]int32, net.NumNFAs())
		for u := range k {
			k[u] = int32(math.Ceil(in.Param * float64(topo.MaxPerNFA[u])))
			if k[u] < 1 {
				k[u] = 1
			}
		}
		return alignToSCCs(net, topo, k), nil
	}
	return nil, fmt.Errorf("hotcold: unknown strategy %v", s)
}

// alignToSCCs raises layers so that every start state stays in the hot set
// regardless of the (behaviour-blind) cut choice. Profiled/oracle layers
// satisfy this by construction; fixed cuts might not when a start state
// sits inside a deep SCC.
func alignToSCCs(net *automata.Network, topo *graph.Topo, k []int32) []int32 {
	for s := 0; s < net.Len(); s++ {
		if net.States[s].Start == automata.StartNone {
			continue
		}
		u := net.NFAOf[s]
		if topo.Order[s] > k[u] {
			k[u] = topo.Order[s]
		}
	}
	return k
}

// BuildWithStrategy is Build parameterized by strategy.
func BuildWithStrategy(net *automata.Network, s Strategy, in StrategyInput, opts Options) (*Partition, error) {
	topo := graph.TopoOrder(net)
	k, err := Layers(net, topo, s, in)
	if err != nil {
		return nil, err
	}
	return Build(net, topo, k, opts)
}
