package hotcold

import (
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
	"sparseap/internal/graph"
	"sparseap/internal/hotness"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
)

func TestStrategyNames(t *testing.T) {
	names := map[Strategy]string{
		StrategyProfiled:        "profiled",
		StrategyFixedLayers:     "fixed-layers",
		StrategyNormalizedDepth: "normalized-depth",
		StrategyOracle:          "oracle",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy name empty")
	}
}

func TestLayersFixed(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcdef"), chainNFA("xy"))
	topo := graph.TopoOrder(net)
	k, err := Layers(net, topo, StrategyFixedLayers, StrategyInput{Param: 3})
	if err != nil {
		t.Fatal(err)
	}
	if k[0] != 3 || k[1] != 2 { // clamped to MaxTopo
		t.Fatalf("k = %v", k)
	}
}

func TestLayersNormalizedDepth(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcdefghij")) // MaxTopo 10
	topo := graph.TopoOrder(net)
	k, err := Layers(net, topo, StrategyNormalizedDepth, StrategyInput{Param: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if k[0] != 4 { // ceil(0.35*10)
		t.Fatalf("k = %v", k)
	}
}

func TestLayersOracleAndProfiled(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcd"))
	topo := graph.TopoOrder(net)
	prof := sim.HotStates(net, []byte("ab"))
	oracle := sim.HotStates(net, []byte("abcd"))
	kp, err := Layers(net, topo, StrategyProfiled, StrategyInput{ProfiledHot: prof})
	if err != nil {
		t.Fatal(err)
	}
	ko, err := Layers(net, topo, StrategyOracle, StrategyInput{OracleHot: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if kp[0] >= ko[0] {
		t.Fatalf("profiled k %d should be below oracle k %d here", kp[0], ko[0])
	}
}

func TestLayersErrors(t *testing.T) {
	net := automata.NewNetwork(chainNFA("ab"))
	topo := graph.TopoOrder(net)
	cases := []struct {
		s  Strategy
		in StrategyInput
	}{
		{StrategyProfiled, StrategyInput{}},
		{StrategyOracle, StrategyInput{}},
		{StrategyFixedLayers, StrategyInput{Param: 0}},
		{StrategyFixedLayers, StrategyInput{Param: -3}},
		{StrategyFixedLayers, StrategyInput{Param: 0.99}},
		{StrategyNormalizedDepth, StrategyInput{Param: 0}},
		{StrategyNormalizedDepth, StrategyInput{Param: -0.5}},
		{StrategyNormalizedDepth, StrategyInput{Param: 1.5}},
		// Empty hot vectors must error, not silently cut at layer 0: a
		// real profiling or oracle run always enables the start states.
		{StrategyProfiled, StrategyInput{ProfiledHot: bitvec.New(net.Len())}},
		{StrategyOracle, StrategyInput{OracleHot: bitvec.New(net.Len())}},
		{Strategy(99), StrategyInput{}},
	}
	for _, c := range cases {
		if _, err := Layers(net, topo, c.s, c.in); err == nil {
			t.Errorf("%v with %+v succeeded", c.s, c.in)
		}
	}
}

func TestFixedLayersKeepsStartsHot(t *testing.T) {
	// Start state with a predecessor cycle pushing its topo order deep:
	// a fixed layer-1 cut must still keep it hot.
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m.Add(symset.Single('b'), automata.StartNone, false)
	s := m.Add(symset.Single('s'), automata.StartAllInput, false) // deep start
	r := m.Add(symset.Single('r'), automata.StartNone, true)
	m.Connect(a, b)
	m.Connect(b, s)
	m.Connect(s, r)
	net := automata.NewNetwork(m)
	topo := graph.TopoOrder(net)
	p, err := BuildWithStrategy(net, StrategyFixedLayers, StrategyInput{Param: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = topo
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !p.PredHot.Get(2) {
		t.Fatal("deep start state predicted cold under fixed cut")
	}
}

func TestBuildWithStrategyEndToEnd(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcdef"), chainNFA("uvwxyz"))
	for _, s := range []Strategy{StrategyFixedLayers, StrategyNormalizedDepth} {
		in := StrategyInput{Param: 2}
		if s == StrategyNormalizedDepth {
			in.Param = 0.4
		}
		p, err := BuildWithStrategy(net, s, in, Options{})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if p.Cold.Len() == 0 {
			t.Fatalf("%v: expected a cold fragment", s)
		}
	}
}

func TestLayersParamBoundaries(t *testing.T) {
	// Valid boundary params must succeed and produce in-range cuts.
	net := automata.NewNetwork(chainNFA("abcd"))
	topo := graph.TopoOrder(net)
	cases := []struct {
		s     Strategy
		param float64
	}{
		{StrategyFixedLayers, 1},
		{StrategyFixedLayers, 99}, // clamped to MaxPerNFA
		{StrategyNormalizedDepth, 1e-9},
		{StrategyNormalizedDepth, 1},
	}
	for _, c := range cases {
		k, err := Layers(net, topo, c.s, StrategyInput{Param: c.param})
		if err != nil {
			t.Errorf("%v Param=%g: %v", c.s, c.param, err)
			continue
		}
		for u, ku := range k {
			if ku < 1 || ku > topo.MaxPerNFA[u] {
				t.Errorf("%v Param=%g: k[%d]=%d out of [1,%d]",
					c.s, c.param, u, ku, topo.MaxPerNFA[u])
			}
		}
	}
}

func TestStrategyStaticLayers(t *testing.T) {
	// Static layers need no input vectors at all, stay in range, and are
	// SCC-aligned like every other behaviour-blind strategy.
	net := automata.NewNetwork(chainNFA("abcd"), chainNFA("xy"))
	topo := graph.TopoOrder(net)
	k, err := Layers(net, topo, StrategyStatic, StrategyInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != net.NumNFAs() {
		t.Fatalf("len(k) = %d, want %d", len(k), net.NumNFAs())
	}
	for u, ku := range k {
		if ku < 1 || ku > topo.MaxPerNFA[u] {
			t.Errorf("k[%d] = %d out of [1,%d]", u, ku, topo.MaxPerNFA[u])
		}
	}
	// A precomputed analysis must yield the same cut as the implicit one.
	a := hotness.Analyze(net, hotness.Config{Topo: topo})
	k2, err := Layers(net, topo, StrategyStatic, StrategyInput{Hotness: a})
	if err != nil {
		t.Fatal(err)
	}
	for u := range k {
		if k[u] != k2[u] {
			t.Errorf("precomputed analysis diverged: k[%d] %d vs %d", u, k[u], k2[u])
		}
	}
	if StrategyStatic.String() != "static" {
		t.Errorf("String() = %q", StrategyStatic.String())
	}
}

func TestBuildWithStrategyStatic(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcd"))
	p, err := BuildWithStrategy(net, StrategyStatic, StrategyInput{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
