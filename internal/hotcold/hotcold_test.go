package hotcold

import (
	"math"
	"math/rand"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
	"sparseap/internal/graph"
	"sparseap/internal/regexc"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
)

// chainNFA builds a linear NFA matching the given literal string.
func chainNFA(lit string) *automata.NFA {
	m := automata.NewNFA()
	prev := m.Add(symset.Single(lit[0]), automata.StartAllInput, len(lit) == 1)
	for i := 1; i < len(lit); i++ {
		cur := m.Add(symset.Single(lit[i]), automata.StartNone, i == len(lit)-1)
		m.Connect(prev, cur)
		prev = cur
	}
	return m
}

func TestProfileMarksEnabled(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcd"))
	hot := Profile(net, []byte("abx"))
	// a(start) hot, b hot (enabled after a), c hot (enabled after b), d cold.
	want := []bool{true, true, true, false}
	for i, w := range want {
		if hot.Get(i) != w {
			t.Errorf("hot[%d] = %v, want %v", i, hot.Get(i), w)
		}
	}
}

func TestProfilePrefixBounds(t *testing.T) {
	net := automata.NewNetwork(chainNFA("ab"))
	input := []byte("abababab")
	if got := ProfilePrefix(net, input, 0.0001); got == nil || got.Len() != 2 {
		t.Fatal("tiny fraction should still profile at least one symbol")
	}
	full := ProfilePrefix(net, input, 1.0)
	if !full.Get(1) {
		t.Error("full profile missed state 1")
	}
}

func TestQuality(t *testing.T) {
	pred := bitvec.New(4)
	act := bitvec.New(4)
	pred.Set(0)
	pred.Set(1) // predicted hot: 0,1
	act.Set(0)
	act.Set(2) // actually hot: 0,2
	c := Quality(pred, act)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Accuracy() != 0.5 || c.Recall() != 0.5 || c.Precision() != 0.5 {
		t.Fatalf("metrics = %v %v %v", c.Accuracy(), c.Recall(), c.Precision())
	}
}

func TestPartitionLayers(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcd"), chainNFA("xy"))
	topo := graph.TopoOrder(net)
	hot := bitvec.New(net.Len())
	hot.Set(0)
	hot.Set(1) // NFA 0: layers 1,2 hot
	hot.Set(4) // NFA 1: layer 1 hot
	k := PartitionLayers(net, topo, hot)
	if k[0] != 2 || k[1] != 1 {
		t.Fatalf("k = %v", k)
	}
	pred := PredictedHot(net, topo, k)
	want := []bool{true, true, false, false, true, false}
	for i, w := range want {
		if pred.Get(i) != w {
			t.Errorf("pred[%d] = %v, want %v", i, pred.Get(i), w)
		}
	}
}

func TestPartitionLayersDefensiveMinimum(t *testing.T) {
	net := automata.NewNetwork(chainNFA("ab"))
	topo := graph.TopoOrder(net)
	k := PartitionLayers(net, topo, bitvec.New(net.Len()))
	if k[0] != 1 {
		t.Fatalf("empty hot set k = %v, want layer 1", k)
	}
}

func TestBuildPartitionStructure(t *testing.T) {
	// abcd cut at layer 2: hot {a,b}, cold {c,d}, one intermediate for c.
	net := automata.NewNetwork(chainNFA("abcd"))
	topo := graph.TopoOrder(net)
	p, err := Build(net, topo, []int32{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Hot.Len() != 3 { // a, b, c'
		t.Fatalf("hot states = %d, want 3", p.Hot.Len())
	}
	if p.Cold.Len() != 2 {
		t.Fatalf("cold states = %d, want 2", p.Cold.Len())
	}
	if p.NumIntermediate != 1 {
		t.Fatalf("intermediates = %d", p.NumIntermediate)
	}
	// The intermediate must mirror c's symbol set and translate to c.
	for iv, target := range p.Intermediate {
		if target != 2 {
			t.Errorf("translation target = %d, want 2", target)
		}
		if !p.Hot.States[iv].Match.Contains('c') {
			t.Error("intermediate symbol set wrong")
		}
	}
	orig, inter := p.ReportingStates()
	if orig != 0 || inter != 1 {
		t.Fatalf("reporting states = %d,%d", orig, inter)
	}
	if got := p.ResourceSaving(); got != 0.5 {
		t.Fatalf("resource saving = %v, want 0.5", got)
	}
}

func TestBuildSharedColdTargetDeduped(t *testing.T) {
	// Two hot states u1,u2 -> same cold v: one intermediate state only.
	m := automata.NewNFA()
	u1 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	u2 := m.Add(symset.Single('b'), automata.StartAllInput, false)
	v := m.Add(symset.Single('c'), automata.StartNone, false)
	w := m.Add(symset.Single('d'), automata.StartNone, true)
	m.Connect(u1, v)
	m.Connect(u2, v)
	m.Connect(v, w)
	net := automata.NewNetwork(m)
	topo := graph.TopoOrder(net)
	p, err := Build(net, topo, []int32{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumIntermediate != 1 {
		t.Fatalf("intermediates = %d, want 1 (dedup per target)", p.NumIntermediate)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSCCAtomicity(t *testing.T) {
	// Cycle spanning layers: the whole SCC must be on one side.
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m.Add(symset.Single('b'), automata.StartNone, false)
	c := m.Add(symset.Single('c'), automata.StartNone, false)
	d := m.Add(symset.Single('d'), automata.StartNone, true)
	m.Connect(a, b)
	m.Connect(b, c)
	m.Connect(c, b) // SCC {b,c}
	m.Connect(c, d)
	net := automata.NewNetwork(m)
	topo := graph.TopoOrder(net)
	for k := int32(1); k <= topo.MaxPerNFA[0]; k++ {
		p, err := Build(net, topo, []int32{k}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestBuildWholeNFAHot(t *testing.T) {
	net := automata.NewNetwork(chainNFA("ab"))
	topo := graph.TopoOrder(net)
	p, err := Build(net, topo, []int32{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cold.Len() != 0 || p.NumIntermediate != 0 {
		t.Fatalf("expected empty cold side, got %d states %d intermediates", p.Cold.Len(), p.NumIntermediate)
	}
	if p.ResourceSaving() != 0 {
		t.Fatal("resource saving should be 0")
	}
}

func TestFillBatchesExtendsLayers(t *testing.T) {
	// Two NFAs of 4 states; hot layer 1 each; capacity 8 absorbs both NFAs
	// entirely (4+4 states, no intermediates once fully hot).
	net := automata.NewNetwork(chainNFA("abcd"), chainNFA("wxyz"))
	topo := graph.TopoOrder(net)
	p, err := Build(net, topo, []int32{1, 1}, Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.PredHot.Count() != 8 {
		t.Fatalf("filled hot count = %d, want 8", p.PredHot.Count())
	}
	if p.NumIntermediate != 0 {
		t.Fatalf("intermediates = %d, want 0 after full absorption", p.NumIntermediate)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFillBatchesAccountsForIntermediates(t *testing.T) {
	// Capacity 6: each NFA's BaseAP footprint is states+1 intermediate, so
	// fill must stop at k=2 per NFA (2 states + 1 intermediate each = 6),
	// NOT k=3 (which would need 3+1 per NFA = 8 > 6).
	net := automata.NewNetwork(chainNFA("abcd"), chainNFA("wxyz"))
	topo := graph.TopoOrder(net)
	p, err := Build(net, topo, []int32{1, 1}, Options{Capacity: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Hot.Len(); got > 6 {
		t.Fatalf("BaseAP footprint = %d states, exceeds capacity 6", got)
	}
	if p.PredHot.Count() != 4 || p.NumIntermediate != 2 {
		t.Fatalf("hot = %d, intermediates = %d", p.PredHot.Count(), p.NumIntermediate)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFillBatchesNoCapacityNoChange(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcd"))
	topo := graph.TopoOrder(net)
	p, err := Build(net, topo, []int32{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.K[0] != 1 || p.PredHot.Count() != 1 {
		t.Fatalf("layers changed without capacity: %v", p.K)
	}
}

func TestBuildLayerMismatch(t *testing.T) {
	net := automata.NewNetwork(chainNFA("ab"))
	topo := graph.TopoOrder(net)
	if _, err := Build(net, topo, []int32{1, 2}, Options{}); err == nil {
		t.Fatal("layer-count mismatch accepted")
	}
}

func TestConstrainedStates(t *testing.T) {
	// abcd with oracle hot {a,c}: topo partition must keep layers 1..3,
	// so b (cold) is constrained: 1/4.
	net := automata.NewNetwork(chainNFA("abcd"))
	topo := graph.TopoOrder(net)
	oracle := bitvec.New(4)
	oracle.Set(0)
	oracle.Set(2)
	if got := ConstrainedStates(net, topo, oracle); got != 0.25 {
		t.Fatalf("constrained = %v, want 0.25", got)
	}
	// Perfectly layered hot set: no constrained states.
	oracle2 := bitvec.New(4)
	oracle2.Set(0)
	oracle2.Set(1)
	if got := ConstrainedStates(net, topo, oracle2); got != 0 {
		t.Fatalf("constrained = %v, want 0", got)
	}
}

func TestModelSpeedup(t *testing.T) {
	// S=100, C=10: baseline 10 batches. p=0.5 -> 5 batches -> 2×.
	if got := ModelSpeedup(100, 10, 0.5); got != 2 {
		t.Fatalf("speedup = %v, want 2", got)
	}
	// p=1 would divide by zero batches; model clamps to one batch.
	if got := ModelSpeedup(100, 10, 1); got != 10 {
		t.Fatalf("speedup = %v, want 10", got)
	}
	if !math.IsNaN(ModelSpeedup(0, 10, 0.5)) || !math.IsNaN(ModelSpeedup(10, 10, -0.1)) {
		t.Fatal("invalid inputs not rejected")
	}
}

func TestBuildFromProfileEndToEnd(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcXYZ", "hello", "wor{2,4}ld"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("abc abc hello hell abq")
	p, err := BuildFromProfile(net, input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Cold.Len() == 0 {
		t.Fatal("expected some cold states for unmatched suffixes")
	}
	if p.PredHot.Count()+p.Cold.Len() != net.Len() {
		t.Fatal("hot+cold must cover the network")
	}
}

// Property: for random networks and random profiled-hot sets (closed under
// the "starts are hot" rule), the built partition always satisfies the
// invariants, and the hot set grows monotonically with k.
func TestPropPartitionInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		var nfas []*automata.NFA
		for u := 0; u < 1+r.Intn(4); u++ {
			n := 2 + r.Intn(10)
			m := automata.NewNFA()
			for s := 0; s < n; s++ {
				start := automata.StartNone
				if s == 0 {
					start = automata.StartAllInput
				}
				m.Add(symset.Single(byte('a'+r.Intn(4))), start, r.Intn(4) == 0)
			}
			for e := 0; e < r.Intn(2*n); e++ {
				m.Connect(automata.StateID(r.Intn(n)), automata.StateID(r.Intn(n)))
			}
			m.Dedup()
			nfas = append(nfas, m)
		}
		net := automata.NewNetwork(nfas...)
		topo := graph.TopoOrder(net)
		// Random hot set from a random input.
		input := make([]byte, 1+r.Intn(50))
		for i := range input {
			input[i] = byte('a' + r.Intn(5))
		}
		hot := sim.HotStates(net, input)
		k := PartitionLayers(net, topo, hot)
		p, err := Build(net, topo, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// All truly hot states must be predicted hot (recall = 1 when the
		// profile equals the test input).
		hot.ForEach(func(s int) {
			if !p.PredHot.Get(s) {
				t.Fatalf("trial %d: hot state %d predicted cold", trial, s)
			}
		})
		// Monotonicity in k.
		k2 := append([]int32(nil), k...)
		for i := range k2 {
			k2[i]++
		}
		p2, err := Build(net, topo, k2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p.PredHot.ForEach(func(s int) {
			if !p2.PredHot.Get(s) {
				t.Fatalf("trial %d: hot set not monotone in k", trial)
			}
		})
	}
}
