package bitvec

import (
	"math/rand"
	"testing"
)

func TestSetGetClear(t *testing.T) {
	v := New(200)
	if v.Len() != 200 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 127, 199} {
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != 6 {
		t.Errorf("Count = %d, want 6", v.Count())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if v.Count() != 5 {
		t.Errorf("Count = %d, want 5", v.Count())
	}
}

func TestTestAndSet(t *testing.T) {
	v := New(70)
	if !v.TestAndSet(69) {
		t.Error("first TestAndSet returned false")
	}
	if v.TestAndSet(69) {
		t.Error("second TestAndSet returned true")
	}
	if !v.Get(69) {
		t.Error("bit not set")
	}
}

func TestResetAny(t *testing.T) {
	v := New(100)
	if v.Any() {
		t.Error("fresh vector reports Any")
	}
	v.Set(77)
	if !v.Any() {
		t.Error("Any false after Set")
	}
	v.Reset()
	if v.Any() || v.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestOrAndNot(t *testing.T) {
	a := New(130)
	b := New(130)
	a.Set(1)
	a.Set(128)
	b.Set(128)
	b.Set(129)
	a.Or(b)
	for _, i := range []int{1, 128, 129} {
		if !a.Get(i) {
			t.Errorf("Or missing bit %d", i)
		}
	}
	a.AndNot(b)
	if a.Get(128) || a.Get(129) {
		t.Error("AndNot left bits set")
	}
	if !a.Get(1) {
		t.Error("AndNot cleared unrelated bit")
	}
}

func TestCloneEqual(t *testing.T) {
	a := New(90)
	a.Set(3)
	a.Set(89)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Set(4)
	if a.Equal(b) {
		t.Error("mutating clone affected equality check falsely")
	}
	if a.Get(4) {
		t.Error("clone shares storage with original")
	}
	if a.Equal(New(91)) {
		t.Error("vectors of different length compare equal")
	}
}

func TestForEachIndices(t *testing.T) {
	v := New(300)
	want := []int{0, 5, 63, 64, 65, 255, 299}
	for _, i := range want {
		v.Set(i)
	}
	got := v.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

// Property: Count equals the number of indices returned, and indices are
// exactly the set bits, under random operations.
func TestPropRandomOps(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	v := New(517)
	ref := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		idx := r.Intn(517)
		if r.Intn(2) == 0 {
			v.Set(idx)
			ref[idx] = true
		} else {
			v.Clear(idx)
			delete(ref, idx)
		}
	}
	if v.Count() != len(ref) {
		t.Fatalf("Count = %d, want %d", v.Count(), len(ref))
	}
	for _, i := range v.Indices() {
		if !ref[i] {
			t.Fatalf("bit %d set but not in reference", i)
		}
	}
}
