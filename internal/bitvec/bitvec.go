// Package bitvec implements dynamic bit vectors used for NFA state vectors,
// ever-enabled (hot) sets, and other dense per-state flags.
package bitvec

import "math/bits"

// Vec is a fixed-length bit vector. Create one with New; the zero value is
// an empty vector of length 0.
type Vec struct {
	words []uint64
	n     int
}

// New returns a vector of n bits, all zero.
func New(n int) *Vec {
	return &Vec{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vec) Len() int { return v.n }

// Set sets bit i to 1.
func (v *Vec) Set(i int) { v.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear sets bit i to 0.
func (v *Vec) Clear(i int) { v.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is 1.
func (v *Vec) Get(i int) bool { return v.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// TestAndSet sets bit i and reports whether it was previously 0.
func (v *Vec) TestAndSet(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if v.words[w]&m != 0 {
		return false
	}
	v.words[w] |= m
	return true
}

// Reset clears all bits.
func (v *Vec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Count returns the number of set bits.
func (v *Vec) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (v *Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or sets v |= u. The vectors must have the same length.
func (v *Vec) Or(u *Vec) {
	for i, w := range u.words {
		v.words[i] |= w
	}
}

// AndNot sets v &^= u. The vectors must have the same length.
func (v *Vec) AndNot(u *Vec) {
	for i, w := range u.words {
		v.words[i] &^= w
	}
}

// Clone returns a copy of v.
func (v *Vec) Clone() *Vec {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vec{words: w, n: v.n}
}

// Equal reports whether v and u have identical length and contents.
func (v *Vec) Equal(u *Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each set bit index in ascending order.
func (v *Vec) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Indices returns the indices of all set bits in ascending order.
func (v *Vec) Indices() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Words returns the backing word slice (length ceil(n/64)). The slice is
// shared with the vector: callers must treat it as read-only. Snapshot
// serializers use it to copy the vector without bit-by-bit iteration.
func (v *Vec) Words() []uint64 { return v.words }

// SetWords overwrites the vector's contents from words, which must have
// exactly ceil(Len/64) entries. Bits beyond Len must be zero; restore
// paths use it to load a previously serialized vector in O(words).
func (v *Vec) SetWords(words []uint64) {
	if len(words) != len(v.words) {
		panic("bitvec: SetWords length mismatch")
	}
	copy(v.words, words)
}
