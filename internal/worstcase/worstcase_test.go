package worstcase_test

import (
	"math/rand"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
	"sparseap/internal/worstcase"
)

// chainNet is the saturating shape: an all-input start matching [a-z]
// feeding a chain of n [a-z] states (last one reports). Every chain
// state's predecessor fires on every lowercase byte, so all n states can
// be simultaneously enabled and the bound is exactly reachable.
func chainNet(n int) *automata.Network {
	nfa := automata.NewNFA()
	prev := nfa.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	for i := 0; i < n; i++ {
		s := nfa.Add(symset.Range('a', 'z'), automata.StartNone, i == n-1)
		nfa.Connect(prev, s)
		prev = s
	}
	return automata.NewNetwork(nfa)
}

func TestChainBoundTight(t *testing.T) {
	const n = 5
	a := worstcase.Analyze(chainNet(n), worstcase.Config{})
	if a.FrontierBound != n {
		t.Fatalf("FrontierBound = %d, want %d", a.FrontierBound, n)
	}
	if a.Trackable != n {
		t.Fatalf("Trackable = %d, want %d (all-input start must be excluded)", a.Trackable, n)
	}
	if a.ReportBound != 1 {
		t.Fatalf("ReportBound = %d, want 1", a.ReportBound)
	}
	w, r := a.Certify(worstcase.WitnessOptions{MaxLen: 64})
	if !r.Sound {
		t.Fatalf("replay violated the bound: peak %d > bound %d", r.PeakFrontier, a.FrontierBound)
	}
	if r.PeakFrontier != n {
		t.Fatalf("witness peak = %d, want %d (chain saturates)", r.PeakFrontier, n)
	}
	if r.Gap != 1.0 {
		t.Fatalf("gap = %v, want 1.0", r.Gap)
	}
	if w.PeakFrontier != r.PeakFrontier {
		t.Fatalf("model walk peak %d != engine replay peak %d", w.PeakFrontier, r.PeakFrontier)
	}
}

// TestDisjointPrefixes checks the per-symbol abstraction is strictly
// tighter than "all reachable states": two branches whose predecessors
// fire on disjoint symbols can never be enabled in the same cycle.
func TestDisjointPrefixes(t *testing.T) {
	nfa := automata.NewNFA()
	s1 := nfa.Add(symset.Single('a'), automata.StartAllInput, false)
	s2 := nfa.Add(symset.Single('c'), automata.StartAllInput, false)
	b1 := nfa.Add(symset.Single('b'), automata.StartNone, true)
	b2 := nfa.Add(symset.Single('d'), automata.StartNone, true)
	nfa.Connect(s1, b1)
	nfa.Connect(s2, b2)
	a := worstcase.Analyze(automata.NewNetwork(nfa), worstcase.Config{})
	if a.FrontierBound != 1 {
		t.Fatalf("FrontierBound = %d, want 1 (prefixes are disjoint)", a.FrontierBound)
	}
	if a.ReportBound != 1 {
		t.Fatalf("ReportBound = %d, want 1", a.ReportBound)
	}
	_, r := a.Certify(worstcase.WitnessOptions{MaxLen: 32})
	if !r.Sound || r.PeakFrontier != 1 {
		t.Fatalf("replay: sound=%v peak=%d, want sound peak 1", r.Sound, r.PeakFrontier)
	}
}

func TestStartOfDataWidth(t *testing.T) {
	nfa := automata.NewNFA()
	for i := 0; i < 3; i++ {
		nfa.Add(symset.Single(byte('x'+i)), automata.StartOfData, true)
	}
	a := worstcase.Analyze(automata.NewNetwork(nfa), worstcase.Config{})
	if a.StartWidth != 3 || a.FrontierBound != 3 {
		t.Fatalf("StartWidth=%d FrontierBound=%d, want 3/3", a.StartWidth, a.FrontierBound)
	}
	_, r := a.Certify(worstcase.WitnessOptions{MaxLen: 8})
	if !r.Sound {
		t.Fatalf("replay unsound: peak %d > bound %d", r.PeakFrontier, a.FrontierBound)
	}
	if r.PeakFrontier != 3 || r.PeakPos != -1 {
		t.Fatalf("peak=%d@%d, want the position-0 start-of-data frontier 3@-1", r.PeakFrontier, r.PeakPos)
	}
}

func TestNFABounds(t *testing.T) {
	a1 := automata.NewNFA()
	p := a1.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	for i := 0; i < 4; i++ {
		s := a1.Add(symset.Range('a', 'z'), automata.StartNone, false)
		a1.Connect(p, s)
		p = s
	}
	a2 := automata.NewNFA()
	s1 := a2.Add(symset.Single('a'), automata.StartAllInput, false)
	b1 := a2.Add(symset.Single('b'), automata.StartNone, true)
	a2.Connect(s1, b1)
	a := worstcase.Analyze(automata.NewNetwork(a1, a2), worstcase.Config{})
	if len(a.NFABound) != 2 || a.NFABound[0] != 4 || a.NFABound[1] != 1 {
		t.Fatalf("NFABound = %v, want [4 1]", a.NFABound)
	}
	// The app-level bound counts both NFAs in the same cycle when their
	// predecessors share symbols ('a' drives both).
	if a.FrontierBound != 5 {
		t.Fatalf("FrontierBound = %d, want 5", a.FrontierBound)
	}
}

func TestReportBoundFor(t *testing.T) {
	net := chainNet(6)
	a := worstcase.Analyze(net, worstcase.Config{})
	all, _ := a.ReportBoundFor(func(automata.StateID) bool { return true })
	if all != a.ReportBound {
		t.Fatalf("ReportBoundFor(all) = %d, want ReportBound %d", all, a.ReportBound)
	}
	none, _ := a.ReportBoundFor(func(automata.StateID) bool { return false })
	if none != 0 {
		t.Fatalf("ReportBoundFor(none) = %d, want 0", none)
	}
}

// TestAlphabetRestriction: narrowing the alphabet to symbols no state
// matches empties every bound.
func TestAlphabetRestriction(t *testing.T) {
	a := worstcase.Analyze(chainNet(4), worstcase.Config{Alphabet: symset.Range('0', '9')})
	if a.FrontierBound != 0 || a.ReportBound != 0 {
		t.Fatalf("bounds = %d/%d under a disjoint alphabet, want 0/0", a.FrontierBound, a.ReportBound)
	}
	w := a.Synthesize(worstcase.WitnessOptions{MaxLen: 16})
	if len(w.Input) != 0 {
		t.Fatalf("synthesized %d bytes from a dead alphabet, want none", len(w.Input))
	}
}

// randomNet builds a seeded random network mixing start kinds, fan-out,
// back edges and reports — the soundness property must hold on shapes no
// generator tuned for.
func randomNet(rng *rand.Rand, nfas, statesPer int) *automata.Network {
	var ms []*automata.NFA
	for i := 0; i < nfas; i++ {
		nfa := automata.NewNFA()
		ids := make([]automata.StateID, statesPer)
		for j := range ids {
			var match symset.Set
			lo := byte(rng.Intn(200))
			match.AddRange(lo, lo+byte(rng.Intn(55)))
			kind := automata.StartNone
			if j == 0 {
				kind = automata.StartAllInput
				if rng.Intn(2) == 0 {
					kind = automata.StartOfData
				}
			}
			ids[j] = nfa.Add(match, kind, rng.Intn(4) == 0)
		}
		for j := 1; j < statesPer; j++ {
			nfa.Connect(ids[rng.Intn(j)], ids[j]) // forward edge keeps all reachable
			if rng.Intn(3) == 0 {
				nfa.Connect(ids[j], ids[rng.Intn(statesPer)]) // random (possibly back) edge
			}
		}
		ms = append(ms, nfa)
	}
	return automata.NewNetwork(ms...)
}

// TestSoundnessRandomNetworks fuzzes the core property on seeded random
// networks: no input — adversarial or random — may exceed the static
// frontier or per-cycle report bound.
func TestSoundnessRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		net := randomNet(rng, 1+rng.Intn(3), 4+rng.Intn(24))
		a := worstcase.Analyze(net, worstcase.Config{})
		w, r := a.Certify(worstcase.WitnessOptions{MaxLen: 256})
		if !r.Sound {
			t.Fatalf("trial %d: witness replay violated bounds (peak %d > bound %d or reports %d > %d)",
				trial, r.PeakFrontier, a.FrontierBound, r.PeakCycleReports, a.ReportBound)
		}
		if w.PeakFrontier != r.PeakFrontier {
			t.Errorf("trial %d: model walk peak %d != engine peak %d — the synthesis model diverged from the engine",
				trial, w.PeakFrontier, r.PeakFrontier)
		}
		input := make([]byte, 512)
		for i := range input {
			input[i] = byte(rng.Intn(256))
		}
		if rr := a.Validate(input); !rr.Sound {
			t.Fatalf("trial %d: random input violated bounds (peak %d > bound %d)", trial, rr.PeakFrontier, a.FrontierBound)
		}
	}
}

// TestWitnessReplayEquivalence is the cross-kernel certificate property:
// the synthesized adversarial input must produce identical report
// streams through the sparse, dense, auto and batch kernels, and never
// drive any of them past the static frontier bound.
func TestWitnessReplayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nets := []*automata.Network{chainNet(12)}
	for i := 0; i < 6; i++ {
		nets = append(nets, randomNet(rng, 2, 8+rng.Intn(20)))
	}
	for i, net := range nets {
		a := worstcase.Analyze(net, worstcase.Config{})
		w, r := a.Certify(worstcase.WitnessOptions{MaxLen: 512})
		if !r.Sound {
			t.Fatalf("net %d: witness replay violated the static bounds", i)
		}
		if len(w.Input) == 0 {
			continue
		}
		want := sim.Run(net, w.Input, sim.Options{CollectReports: true, Kernel: sim.KernelAuto}).Reports
		for _, k := range []sim.Kernel{sim.KernelSparse, sim.KernelDense} {
			got := sim.Run(net, w.Input, sim.Options{CollectReports: true, Kernel: k}).Reports
			if !reportsEqual(want, got) {
				t.Fatalf("net %d: kernel %v report stream diverges from auto on the witness", i, k)
			}
		}
		be := sim.AcquireBatchEngine(net, sim.BatchOptions{CollectReports: true})
		lane, ok := be.Join(w.Input)
		if !ok {
			t.Fatalf("net %d: batch Join failed", i)
		}
		for be.Running() > 0 {
			be.Tick()
		}
		if !reportsEqual(want, be.LaneReports(lane)) {
			t.Fatalf("net %d: batch report stream diverges from auto on the witness", i)
		}
		be.Release()
		// Step the engine by hand under each explicit kernel: the bound
		// must hold cycle by cycle, not just at the peak.
		for _, k := range []sim.Kernel{sim.KernelSparse, sim.KernelDense, sim.KernelAuto} {
			eng := sim.AcquireEngine(net, sim.Options{Kernel: k})
			for pos, b := range w.Input {
				eng.Step(int64(pos), b)
				if fl := eng.FrontierLen(); fl > a.FrontierBound {
					t.Fatalf("net %d: kernel %v frontier %d exceeds bound %d at pos %d", i, k, fl, a.FrontierBound, pos)
				}
			}
			eng.Release()
		}
	}
}

func reportsEqual(a, b []sim.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
