// Pairwise simultaneity: the anti-chain refinement of the frontier bound.
//
// The per-symbol sets F_b know which states *some* input can enable, but
// not which states one input can enable *together*. Within one NFA that
// is answerable exactly and cheaply: a pair (u, v) is simultaneously
// enabled at some cycle iff both are start-of-data states (cycle 0), or
// predecessors p_u, p_v exist that activate in the same cycle on the
// same symbol — p_u = p_v, or b ∈ Fire[p_u] ∩ Fire[p_v] with (p_u, p_v)
// itself simultaneously enabled (all-input starts are enabled in every
// cycle, so they pair with anything enabled). That is reachability in
// the two-state product automaton, computed by a worklist over the
// pair lattice.
//
// Any concrete frontier restricted to one NFA is then a clique in the
// simultaneity graph, so its size is bounded by the graph's degeneracy
// plus one — the anti-chain cap C_i. Summing min(|F_b ∩ NFA_i|, C_i)
// over NFAs tightens the per-symbol count wherever states are mutually
// exclusive (mismatch-counting automata, sliding alignments) in a way
// no per-state analysis can see.
//
// Pairs never cross NFAs (cross-NFA exclusivity would need a quadratic
// global product; the per-NFA sum is sound without it), and NFAs larger
// than Config.PairCap skip the refinement (their cap is their size).
package worstcase

import (
	"math/bits"

	"sparseap/internal/automata"
)

// DefaultPairCap is the largest NFA (in states) the pairwise
// simultaneity fixpoint runs on. The suite's largest NFA is ~2.1k
// states (Snort_L, CAV4k groups); the quadratic pair bitmap for 4096
// states is 2 MiB — past that the refinement is skipped, not the
// analysis.
const DefaultPairCap = 4096

// pairAnalysis computes CliqueCap[i] for every NFA: a sound upper bound
// on the number of NFA-i states any single cycle can have enabled at
// once. NFAs above pairCap (or with no trackable states) get their
// trackable size — the refinement never loosens anything.
func (a *Analysis) pairAnalysis(pairCap int) {
	net := a.Net
	a.CliqueCap = make([]int, net.NumNFAs())
	var simul []uint64 // m×m bitmap, reused across NFAs
	var queue []int32  // packed u*m+v worklist, reused
	for i := range a.CliqueCap {
		lo, hi := net.NFAStates(i)
		m := int(hi - lo)
		trackable := 0
		for s := lo; s < hi; s++ {
			if net.States[s].Start != automata.StartAllInput {
				trackable++
			}
		}
		a.CliqueCap[i] = trackable
		if m < 2 || m > pairCap || trackable < 2 {
			continue
		}
		words := (m*m + 63) / 64
		if cap(simul) < words {
			simul = make([]uint64, words)
		}
		simul = simul[:words]
		clearWords(simul)
		queue = queue[:0]

		mark := func(u, v automata.StateID) {
			// Track only distinct same-NFA pairs of frontier-trackable
			// states; store both orientations so rows double as
			// adjacency for the degeneracy pass.
			if u == v || v < lo || v >= hi || u < lo || u >= hi {
				return
			}
			lu, lv := int(u-lo), int(v-lo)
			if lu > lv {
				lu, lv = lv, lu
			}
			k := lu*m + lv
			if simul[k>>6]&(1<<(uint(k)&63)) != 0 {
				return
			}
			simul[k>>6] |= 1 << (uint(k) & 63)
			k2 := lv*m + lu
			simul[k2>>6] |= 1 << (uint(k2) & 63)
			queue = append(queue, int32(k))
		}
		// trackedSucc filters edges into all-input starts, mirroring the
		// compiled image: those targets never occupy the frontier.
		trackedSucc := func(s automata.StateID) []automata.StateID {
			succ := net.States[s].Succ
			for _, v := range succ {
				if net.States[v].Start == automata.StartAllInput {
					goto filter
				}
			}
			return succ
		filter:
			out := make([]automata.StateID, 0, len(succ))
			for _, v := range succ {
				if net.States[v].Start != automata.StartAllInput {
					out = append(out, v)
				}
			}
			return out
		}
		succOf := make([][]automata.StateID, m)
		for s := lo; s < hi; s++ {
			succOf[s-lo] = trackedSucc(s)
		}

		// Seeds. (1) Start-of-data states are jointly enabled at cycle 0.
		var sod []automata.StateID
		var allIn []automata.StateID
		for s := lo; s < hi; s++ {
			switch net.States[s].Start {
			case automata.StartOfData:
				sod = append(sod, s)
			case automata.StartAllInput:
				allIn = append(allIn, s)
			}
		}
		for x := 0; x < len(sod); x++ {
			for y := x + 1; y < len(sod); y++ {
				mark(sod[x], sod[y])
			}
		}
		// (2) One activation enables every successor of the firing state
		// at once.
		for s := lo; s < hi; s++ {
			if a.Facts.Fire[s].IsEmpty() {
				continue
			}
			succ := succOf[s-lo]
			for x := 0; x < len(succ); x++ {
				for y := x + 1; y < len(succ); y++ {
					mark(succ[x], succ[y])
				}
			}
		}
		// (3) All-input starts are enabled in every cycle, so whenever
		// any state q fires on a symbol they also match, both firings
		// happen in the same cycle.
		for _, ai := range allIn {
			fa := a.Facts.Fire[ai]
			if fa.IsEmpty() {
				continue
			}
			sa := succOf[ai-lo]
			for q := lo; q < hi; q++ {
				if q == ai || fa.Intersect(a.Facts.Fire[q]).IsEmpty() {
					continue
				}
				for _, u := range sa {
					for _, v := range succOf[q-lo] {
						mark(u, v)
					}
				}
			}
		}

		// Propagate: a simultaneously enabled pair that shares a firing
		// symbol activates together, jointly enabling succ × succ.
		for len(queue) > 0 {
			k := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			p := lo + automata.StateID(int(k)/m)
			q := lo + automata.StateID(int(k)%m)
			if a.Facts.Fire[p].Intersect(a.Facts.Fire[q]).IsEmpty() {
				continue
			}
			for _, u := range succOf[p-lo] {
				for _, v := range succOf[q-lo] {
					mark(u, v)
				}
			}
		}
		if c := degeneracy(simul, m) + 1; c < a.CliqueCap[i] {
			a.CliqueCap[i] = c
		}
	}
}

// degeneracy peels minimum-degree vertices off the m-vertex graph whose
// adjacency rows are the m×m bitmap, returning the largest min-degree
// seen — any clique has size at most degeneracy+1.
func degeneracy(adj []uint64, m int) int {
	deg := make([]int, m)
	for v := 0; v < m; v++ {
		deg[v] = countBits(adj, v*m, (v+1)*m)
	}
	// Bucket queue over degrees.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v, d := range deg {
		buckets[d] = append(buckets[d], int32(v))
	}
	removed := make([]bool, m)
	k, left, cur := 0, m, 0
	for left > 0 {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := int(buckets[cur][len(buckets[cur])-1])
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry; the live one sits in a lower bucket
		}
		removed[v] = true
		left--
		if cur > k {
			k = cur
		}
		// Decrement live neighbors and re-bucket them.
		base := v * m
		for w := base >> 6; w <= (base+m-1)>>6; w++ {
			word := adj[w]
			if word == 0 {
				continue
			}
			for word != 0 {
				bit := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				u := bit - base
				if u < 0 || u >= m || removed[u] {
					continue
				}
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], int32(u))
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		}
	}
	return k
}

// countBits counts the set bits of the bitmap in bit interval [lo, hi).
func countBits(bm []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		return bits.OnesCount64(bm[loW] & loMask & hiMask)
	}
	cnt := bits.OnesCount64(bm[loW] & loMask)
	for w := loW + 1; w < hiW; w++ {
		cnt += bits.OnesCount64(bm[w])
	}
	return cnt + bits.OnesCount64(bm[hiW]&hiMask)
}
