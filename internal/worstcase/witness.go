// Adversarial witness synthesis and engine replay.
//
// Synthesize builds a portfolio of deterministic candidate inputs
// against the compiled execution image (sim.Image) — the same CSR
// successors and per-symbol transposed bitmaps the engine executes — and
// keeps the one whose modelled peak objective is highest:
//
//   - greedy ascent: at each position, exactly evaluate the top-K bytes
//     by activation count and pick the one maximizing the next frontier
//     (strongest on literal-rule shapes where one byte lights a family);
//   - deterministic pseudo-random and sweep streams over the live
//     alphabet at full length (strongest on saturating shapes that
//     accumulate width over thousands of positions);
//   - hybrids: the best stream truncated at its peak, extended by a
//     greedy tail;
//   - caller-provided seeds (apbench passes the app's nominal input so
//     the witness provably dominates the random baseline), also
//     greedy-extended.
//
// The result is a concrete input whose replayed peak frontier is a
// constructive lower bound on the true worst case; Validate replays it
// through a real pooled engine and checks the analysis bounds held on
// every cycle.
package worstcase

import (
	"math/bits"

	"sparseap/internal/automata"
	"sparseap/internal/sim"
)

// Defaults for WitnessOptions.
const (
	// DefaultWitnessLen bounds the synthesized input length: long enough
	// for activation to propagate through any suite NFA's depth several
	// times over, short enough that synthesis stays in the tens of
	// milliseconds at suite scale.
	DefaultWitnessLen = 2048
	// DefaultTopK is how many candidate bytes get an exact next-frontier
	// evaluation per greedy position (candidates are pre-ranked by
	// activation count, which needs only a word-parallel AND).
	DefaultTopK = 8
	// DefaultPatience stops a greedy walk after this many positions
	// without a new peak — saturating networks hit their plateau in a
	// depth or two, and pushing further only pads the input.
	DefaultPatience = 256
	// greedyBudget caps the positions any single greedy walk spends:
	// greedy evaluates every live byte per position, so its cost per
	// position dwarfs the stream strategies', and its wins come early.
	greedyBudget = 2048
)

// Deterministic xorshift64* seeds for the pseudo-random streams.
const (
	streamSeedA = 0x9e3779b97f4a7c15
	streamSeedB = 0xd1b54a32d192ed03
)

// WitnessOptions configures Synthesize.
type WitnessOptions struct {
	// MaxLen bounds the synthesized input length (DefaultWitnessLen when
	// zero or negative).
	MaxLen int
	// TopK is the number of exact next-frontier evaluations per greedy
	// position (DefaultTopK when zero or negative).
	TopK int
	// Patience stops a greedy walk after this many positions without
	// peak improvement (DefaultPatience when zero or negative).
	Patience int
	// Target, when non-empty, switches the objective from frontier width
	// to per-cycle activations of these states (spap's pre-flight
	// maximizes intermediate-report density).
	Target []automata.StateID
	// StopAt short-circuits the portfolio once the peak objective value
	// reaches it — pass the static bound so a certified-tight witness
	// stops immediately (0 means exhaust the portfolio).
	StopAt int
	// Seeds are caller-provided candidate inputs evaluated alongside the
	// synthesized strategies (truncated to MaxLen); the witness is the
	// best of all candidates, so passing a measured-hot input guarantees
	// the witness is at least as adversarial.
	Seeds [][]byte
}

// Witness is a synthesized adversarial input and the peaks its model
// walk predicted. Replay through Validate for engine-certified numbers.
type Witness struct {
	// Input is the synthesized byte stream.
	Input []byte
	// PeakFrontier is the widest frontier of the walk; PeakPos is the
	// position whose step produced it (-1: the position-0 start-of-data
	// frontier was never exceeded).
	PeakFrontier int
	PeakPos      int64
	// PeakReports is the largest single-cycle report count of the walk;
	// TotalReports sums all cycles.
	PeakReports  int
	TotalReports int64
	// PeakTarget / TotalTarget are the per-cycle peak and the sum of
	// target-state activations (Target mode only).
	PeakTarget  int
	TotalTarget int64
}

// walker steps the frontier model over the compiled image; it mirrors
// the engine exactly (the soundness tests assert model peak == engine
// peak), so modelled candidate scores are replay-accurate.
type walker struct {
	img        *sim.Image
	words      int
	cur        []uint64
	act        []uint64
	next       []uint64
	reportMask []uint64
	targetMask []uint64
	liveBytes  []byte
}

func (a *Analysis) image() *sim.Image {
	return sim.ImageOf(a.Net)
}

func (a *Analysis) newWalker(target []automata.StateID) *walker {
	img := a.image()
	words := img.Words()
	wk := &walker{
		img:        img,
		words:      words,
		cur:        make([]uint64, words),
		act:        make([]uint64, words),
		next:       make([]uint64, words),
		reportMask: img.ReportMask(),
	}
	if len(target) > 0 {
		wk.targetMask = make([]uint64, words)
		for _, s := range target {
			wk.targetMask[s>>6] |= 1 << (uint32(s) & 63)
		}
	}
	// Candidate bytes: symbols inside the alphabet that activate at
	// least one state (frontier-driven or all-input start). Anything
	// else fires nothing and can only shrink the frontier.
	for b := 0; b < 256; b++ {
		if !a.Facts.Alphabet.Contains(byte(b)) {
			continue
		}
		if anyWord(img.SymMaskRow(byte(b))) || anyWord(img.StartMaskRow(byte(b))) {
			wk.liveBytes = append(wk.liveBytes, byte(b))
		}
	}
	return wk
}

// reset restores the position-0 frontier and returns its width.
func (wk *walker) reset() int {
	clearWords(wk.cur)
	for _, s := range wk.img.StartsOfData() {
		wk.cur[s>>6] |= 1 << (uint32(s) & 63)
	}
	return popcount(wk.cur)
}

// probe fills act with the states firing on b from the current frontier
// and returns (activation count, target activations) without advancing.
func (wk *walker) probe(b byte) (actN, tgt int) {
	sym, start := wk.img.SymMaskRow(b), wk.img.StartMaskRow(b)
	for i := range wk.act {
		word := wk.cur[i]&sym[i] | start[i]
		wk.act[i] = word
		actN += bits.OnesCount64(word)
		if wk.targetMask != nil {
			tgt += bits.OnesCount64(word & wk.targetMask[i])
		}
	}
	return actN, tgt
}

// scatterN expands act into next through the compiled successor lists
// and returns the next frontier width (no commit).
func (wk *walker) scatterN() int {
	return scatterCount(wk.img, wk.act, wk.next)
}

// step commits symbol b: probe, scatter, swap frontiers. Returns the
// next frontier width, the cycle's report count, and the cycle's target
// activations.
func (wk *walker) step(b byte) (nextN, rep, tgt int) {
	_, tgt = wk.probe(b)
	nextN = wk.scatterN()
	for i, word := range wk.act {
		rep += bits.OnesCount64(word & wk.reportMask[i])
	}
	wk.cur, wk.next = wk.next, wk.cur
	return nextN, rep, tgt
}

// scatterCount expands the act bitmap through img's filtered successor
// lists into next (cleared first) and returns the resulting bit count.
func scatterCount(img *sim.Image, act, next []uint64) int {
	clearWords(next)
	n := 0
	for i, word := range act {
		base := automata.StateID(i << 6)
		for word != 0 {
			s := base + automata.StateID(bits.TrailingZeros64(word))
			word &= word - 1
			for _, v := range img.Successors(s) {
				vw, vb := v>>6, uint64(1)<<(uint32(v)&63)
				if next[vw]&vb == 0 {
					next[vw] |= vb
					n++
				}
			}
		}
	}
	return n
}

// walkResult accumulates one candidate's input and modelled peaks.
type walkResult struct {
	input    []byte
	peakF    int
	peakPos  int64
	peakRep  int
	totalRep int64
	peakTgt  int
	totalTgt int64
}

func (r *walkResult) objective(targetMode bool) int {
	if targetMode {
		return r.peakTgt
	}
	return r.peakF
}

// record folds one committed step into the result; returns true when
// the objective reached stopAt (> 0).
func (r *walkResult) record(pos int, nextN, rep, tgt int, targetMode bool, stopAt int) (improved, stop bool) {
	r.totalRep += int64(rep)
	if rep > r.peakRep {
		r.peakRep = rep
	}
	if nextN > r.peakF {
		r.peakF = nextN
		r.peakPos = int64(pos)
		improved = !targetMode
	}
	r.totalTgt += int64(tgt)
	if tgt > r.peakTgt {
		r.peakTgt = tgt
		if targetMode {
			improved = true
		}
	}
	stop = stopAt > 0 && r.objective(targetMode) >= stopAt
	return improved, stop
}

// runFixed extends res by n bytes drawn from gen, stepping the walker
// from its current state. Stops early when stopAt is reached.
func runFixed(wk *walker, res *walkResult, n int, gen func(i int) byte, targetMode bool, stopAt int) (stopped bool) {
	for i := 0; i < n; i++ {
		b := gen(i)
		pos := len(res.input)
		nextN, rep, tgt := wk.step(b)
		res.input = append(res.input, b)
		if _, stop := res.record(pos, nextN, rep, tgt, targetMode, stopAt); stop {
			return true
		}
	}
	return false
}

// runGreedy extends res by up to budget greedily chosen bytes: rank the
// live bytes by the activation-count proxy, exactly evaluate the top-K,
// commit the best. Ties break toward the lowest byte. Gives up after
// patience positions without a peak improvement, truncating the tail.
func runGreedy(wk *walker, res *walkResult, budget, topK, patience int, targetMode bool, stopAt int) (stopped bool) {
	top := make([]cand, 0, topK)
	lastImprove := len(res.input) - 1
	floor := len(res.input)
	for i := 0; i < budget; i++ {
		pos := len(res.input)
		top = top[:0]
		for _, b := range wk.liveBytes {
			n, tgt := wk.probe(b)
			if n == 0 {
				continue
			}
			key := n
			if targetMode {
				key = tgt
			}
			j := len(top)
			for j > 0 && keyOf(top[j-1], targetMode) < key {
				j--
			}
			if j < topK {
				if len(top) < topK {
					top = append(top, cand{})
				}
				copy(top[j+1:], top[j:])
				top[j] = cand{b: b, act: n, tgt: tgt}
			}
		}
		if len(top) == 0 {
			break // frontier is dead and no start state fires: no byte does anything
		}
		// Exact evaluation of the finalists: pick the byte whose step
		// yields the widest next frontier (target activations dominate in
		// Target mode); ties break to the lowest byte, which the proxy
		// ranking already ordered first among equals.
		best, bestNext, bestTgt, bestAct := top[0], -1, -1, -1
		for _, c := range top {
			wk.probe(c.b)
			nxt := wk.scatterN()
			better := false
			if targetMode {
				better = c.tgt > bestTgt || (c.tgt == bestTgt && nxt > bestNext)
			} else {
				better = nxt > bestNext || (nxt == bestNext && c.act > bestAct)
			}
			if better {
				best, bestNext, bestTgt, bestAct = c, nxt, c.tgt, c.act
			}
		}
		nextN, rep, tgt := wk.step(best.b)
		res.input = append(res.input, best.b)
		improved, stop := res.record(pos, nextN, rep, tgt, targetMode, stopAt)
		if stop {
			return true
		}
		if improved {
			lastImprove = pos
		} else if pos-lastImprove >= patience {
			cut := lastImprove + 1
			if cut < floor {
				cut = floor
			}
			res.input = res.input[:cut]
			break
		}
	}
	return false
}

func keyOf(c cand, target bool) int {
	if target {
		return c.tgt
	}
	return c.act
}

// cand is the candidate-byte record of the greedy loop.
type cand struct {
	b   byte
	act int
	tgt int
}

// Synthesize builds the candidate portfolio and returns the best
// witness. The walk is fully deterministic (fixed stream seeds, ties
// break toward the lowest byte), so repeated runs agree byte-for-byte.
func (a *Analysis) Synthesize(opts WitnessOptions) *Witness {
	maxLen := opts.MaxLen
	if maxLen <= 0 {
		maxLen = DefaultWitnessLen
	}
	topK := opts.TopK
	if topK <= 0 {
		topK = DefaultTopK
	}
	patience := opts.Patience
	if patience <= 0 {
		patience = DefaultPatience
	}
	targetMode := len(opts.Target) > 0

	wk := a.newWalker(opts.Target)
	startW := wk.reset()
	fresh := func() *walkResult {
		wk.reset()
		return &walkResult{peakF: startW, peakPos: -1}
	}

	var best *walkResult
	consider := func(r *walkResult) (stop bool) {
		if best == nil || r.objective(targetMode) > best.objective(targetMode) ||
			(r.objective(targetMode) == best.objective(targetMode) && len(r.input) < len(best.input)) {
			best = r
		}
		return opts.StopAt > 0 && best.objective(targetMode) >= opts.StopAt
	}
	finish := func() *Witness {
		return &Witness{
			Input:        best.input,
			PeakFrontier: best.peakF,
			PeakPos:      best.peakPos,
			PeakReports:  best.peakRep,
			TotalReports: best.totalRep,
			PeakTarget:   best.peakTgt,
			TotalTarget:  best.totalTgt,
		}
	}
	best = &walkResult{peakF: startW, peakPos: -1}
	if len(wk.liveBytes) == 0 {
		return finish()
	}

	gBudget := maxLen
	if gBudget > greedyBudget {
		gBudget = greedyBudget
	}

	// 1. Greedy ascent from the start frontier.
	g := fresh()
	if runGreedy(wk, g, gBudget, topK, patience, targetMode, opts.StopAt); consider(g) {
		return finish()
	}

	// 2. Deterministic streams at full length: a cyclic sweep of the
	// live alphabet and two xorshift64* byte streams mapped onto it.
	live := wk.liveBytes
	var bestStream *walkResult
	streams := []func(i int) byte{
		func(i int) byte { return live[i%len(live)] },
		streamGen(streamSeedA, live),
		streamGen(streamSeedB, live),
	}
	for _, gen := range streams {
		r := fresh()
		stopped := runFixed(wk, r, maxLen, gen, targetMode, opts.StopAt)
		if bestStream == nil || r.objective(targetMode) > bestStream.objective(targetMode) {
			bestStream = r
		}
		if consider(r); stopped {
			return finish()
		}
	}

	// 3. Hybrids: truncate a strong prefix at its peak and extend it
	// with a greedy tail — streams build width, greedy spends it.
	hybrid := func(prefix []byte) bool {
		r := fresh()
		if runFixed(wk, r, len(prefix), func(i int) byte { return prefix[i] }, targetMode, opts.StopAt) {
			return consider(r)
		}
		tail := maxLen - len(r.input)
		if tail > greedyBudget {
			tail = greedyBudget
		}
		if tail > 0 {
			runGreedy(wk, r, tail, topK, patience, targetMode, opts.StopAt)
		}
		return consider(r)
	}
	if bestStream != nil && bestStream.peakPos >= 0 {
		if hybrid(bestStream.input[:bestStream.peakPos+1]) {
			return finish()
		}
	}

	// 4. Caller seeds, plus a greedy extension of the best seed.
	var bestSeed *walkResult
	for _, seed := range opts.Seeds {
		if len(seed) > maxLen {
			seed = seed[:maxLen]
		}
		r := fresh()
		stopped := runFixed(wk, r, len(seed), func(i int) byte { return seed[i] }, targetMode, opts.StopAt)
		if bestSeed == nil || r.objective(targetMode) > bestSeed.objective(targetMode) {
			bestSeed = r
		}
		if consider(r); stopped {
			return finish()
		}
	}
	if bestSeed != nil && bestSeed.peakPos >= 0 {
		if hybrid(bestSeed.input[:bestSeed.peakPos+1]) {
			return finish()
		}
	}
	return finish()
}

// streamGen returns a deterministic xorshift64* byte stream mapped onto
// the live alphabet.
func streamGen(seed uint64, live []byte) func(i int) byte {
	x := seed
	return func(int) byte {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return live[int((x*0x2545f4914f6cdd1d)>>33)%len(live)]
	}
}

// Replay is the engine-certified result of running an input.
type Replay struct {
	// PeakFrontier is the widest frontier the engine reached; PeakPos is
	// the position whose Step produced it (-1 when the position-0
	// start-of-data frontier was never exceeded).
	PeakFrontier int
	PeakPos      int64
	// PeakCycleReports is the largest single-cycle report count;
	// TotalReports sums every cycle.
	PeakCycleReports int
	TotalReports     int64
	// Sound is true iff every cycle respected both static bounds
	// (frontier ≤ FrontierBound, cycle reports ≤ ReportBound).
	Sound bool
	// Gap is FrontierBound / max(1, PeakFrontier): how loose the static
	// bound is relative to what this input demonstrates.
	Gap float64
}

// Validate replays input through a real pooled engine and checks the
// analysis' bounds held on every cycle. A Sound == false result is an
// analysis bug, not an input property.
func (a *Analysis) Validate(input []byte) *Replay {
	r := &Replay{PeakPos: -1, Sound: true}
	eng := sim.AcquireEngine(a.Net, sim.Options{})
	defer eng.Release()
	cycleReports := 0
	eng.OnReport = func(pos int64, s automata.StateID) { cycleReports++ }
	r.PeakFrontier = eng.FrontierLen()
	if r.PeakFrontier > a.FrontierBound {
		r.Sound = false
	}
	for pos, b := range input {
		cycleReports = 0
		eng.Step(int64(pos), b)
		if fl := eng.FrontierLen(); fl > r.PeakFrontier {
			r.PeakFrontier = fl
			r.PeakPos = int64(pos)
		}
		if cycleReports > r.PeakCycleReports {
			r.PeakCycleReports = cycleReports
		}
		r.TotalReports += int64(cycleReports)
		if eng.FrontierLen() > a.FrontierBound || cycleReports > a.ReportBound {
			r.Sound = false
		}
	}
	r.Gap = float64(a.FrontierBound) / float64(max(1, r.PeakFrontier))
	return r
}

// Certify is the one-call bound-plus-certificate pipeline: synthesize a
// witness under opts and validate it on the real engine.
func (a *Analysis) Certify(opts WitnessOptions) (*Witness, *Replay) {
	if opts.StopAt == 0 && len(opts.Target) == 0 {
		opts.StopAt = a.FrontierBound
	}
	w := a.Synthesize(opts)
	return w, a.Validate(w.Input)
}

func anyWord(ws []uint64) bool {
	for _, w := range ws {
		if w != 0 {
			return true
		}
	}
	return false
}

func popcount(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}

func clearWords(ws []uint64) {
	for i := range ws {
		ws[i] = 0
	}
}
