// Package worstcase bounds the worst-case dynamic behaviour of an
// automata network — frontier width and report density per cycle —
// statically, and synthesizes concrete adversarial inputs certifying how
// tight those bounds are.
//
// Everything the execution layers size reactively (the dense-kernel
// crossover, hot/cold partition widening, guard trips, serve admission)
// is driven by frontier density, yet the hotness analysis (internal/
// hotness) is an *expected*-activity model and RunGuarded trips only
// after density has already blown the budget. This package supplies the
// missing sound guarantee: an upper bound no input can exceed, plus a
// witness input showing how much of the bound is actually reachable.
//
// # The abstraction
//
// A concrete frontier is the set of dynamically enabled (non-all-input)
// states after some input prefix. Exact worst-case width is the maximum
// over all reachable frontiers — PSPACE-hard in general (the frontier
// powerset is the subset-construction state space). The analysis
// over-approximates with three cooperating counting abstractions, each
// sound on its own; the published bound is their minimum.
//
// Layer 1 — per-symbol sets. Every state in one concrete frontier was
// enabled by the same last symbol b (the engine enables exactly the
// successors of the states that activated on b), so
//
//	F_b = { v : some predecessor p of v can activate on b } ⊇ any
//	      frontier whose last symbol was b,
//
// and max(|startsOfData|, max_b |F_b|) bounds every reachable frontier
// width. "Can activate on b" is the dataflow fixpoint's fire set
// (b ∈ Fire[p], internal/dataflow): the 256-bit symset lattice already
// iterated to fixpoint over the SCC condensation, so p is known to be
// enable-reachable and b within the configured alphabet. Soundness is
// inductive on the input length: the frontier at position 0 is exactly
// the start-of-data set, and a step on b maps a frontier inside ∪F into
// succ(activated) ⊆ F_b.
//
// Layer 2 — pairwise simultaneity (pairs.go). F_b unions states that
// *some* input reaches, not states *one* input reaches together. Exact
// product-reachability over same-NFA state pairs marks which pairs can
// ever be enabled in the same cycle; any frontier restricted to NFA i
// is then a clique in that graph, capped by its degeneracy + 1 = C_i
// (the anti-chain cap). The refined per-symbol count is
//
//	max_b Σ_i min(|F_b ∩ states(i)|, C_i),
//
// which collapses mutually-exclusive shapes (mismatch counters, sliding
// alignments) no per-state analysis can separate.
//
// Layer 3 — bigram counting. A frontier whose last two symbols were
// a then b satisfies frontier ⊆ succ((F_a ∪ allInputStarts) ∩ fire_b):
// the previous frontier sat inside F_a, only its members (plus the
// always-enabled all-input starts) that fire on b activate, and the new
// frontier is exactly their successors. Maximizing the successor count
// over all (a, b) — with the start-of-data row standing in for F_a on
// the first two cycles — bounds every frontier of length ≥ 1, and
// typically collapses literal-rule families where F_b conflates
// positions that no single preceding symbol can co-activate. The same
// pass bounds report density: cycle reports = |activated ∩ reporters| ≤
// max_{a,b} |(F_a ∪ allInput) ∩ fire_b ∩ reporters|.
//
// The bounds hold for every input over the configured alphabet (the
// default full alphabet bounds every input unconditionally) on a
// fault-free engine; fault injection can enable arbitrary states.
//
// # The certificate
//
// An upper bound alone cannot tell "provably narrow" from "loose
// analysis". Synthesize (witness.go) builds a portfolio of concrete
// inputs against the compiled sim.Image — greedy next-frontier ascent,
// deterministic pseudo-random and sweep streams, hybrids, plus any
// caller-provided seed inputs — and keeps the one whose modelled peak
// is highest; Validate replays it through the real engine. The replayed
// peak is a constructive lower bound on the true worst case, so the
// pair brackets it:
//
//	witness peak ≤ true worst case ≤ FrontierBound
//
// and Gap = FrontierBound / witness peak measures the analysis' slack —
// the apopt certificate discipline applied to bounds instead of
// rewrites. Consumers act only in the sound direction: admission and
// guard pre-flight trust the upper bound; "hopeless" classifications
// trust only the witness.
package worstcase

import (
	"math/bits"

	"sparseap/internal/automata"
	"sparseap/internal/dataflow"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
)

// Config parameterizes Analyze.
type Config struct {
	// Alphabet is the assumed input alphabet; the zero value means the
	// full 256-symbol alphabet, under which the bounds hold for every
	// input. A narrower alphabet tightens the bounds but they then only
	// cover inputs drawn from it.
	Alphabet symset.Set
	// Facts, when non-nil, reuses an existing dataflow fixpoint (it must
	// have been computed over the same network and alphabet).
	Facts *dataflow.Facts
	// PairCap bounds the NFA size (states) the pairwise simultaneity
	// refinement runs on: 0 means DefaultPairCap, negative disables the
	// refinement. Larger NFAs keep their unrefined cap — never unsound,
	// only looser.
	PairCap int
	// NoGram disables the k-gram suffix refinement (layer 3) — the
	// symbol-sequence sweep is the most expensive layer; callers that
	// only need a cheap sound bound can skip it.
	NoGram bool
	// GramBudget caps the layer-3 sweep's work in word-visits (0 means
	// DefaultGramBudget). A level that exhausts the budget is discarded,
	// so a smaller budget only loosens the bound, never unsounds it.
	GramBudget int64
}

// Analysis holds the worst-case bounds of one network.
type Analysis struct {
	// Net is the analyzed network.
	Net *automata.Network
	// Facts is the dataflow fixpoint the bounds were derived from.
	Facts *dataflow.Facts

	// FrontierBound is a sound upper bound on the number of dynamically
	// enabled (frontier-tracked) states after any input prefix over the
	// alphabet: max(StartWidth, min(BoundPair, BoundGram)).
	FrontierBound int
	// PeakSymbol is the last symbol of the binding bound's worst cycle
	// (meaningless when StartWidth dominates).
	PeakSymbol byte
	// Bound1 is the unrefined layer-1 bound max_b |F_b| — retained so
	// diagnostics can show how much the refinements bought.
	Bound1 int
	// BoundPair is the layer-2 bound: max_b Σ_i min(|F_b ∩ NFA_i|, C_i).
	BoundPair int
	// BoundGram is the layer-3 k-gram bound (== BoundPair when the pass
	// was skipped or never improved on it).
	BoundGram int
	// StartWidth is the frontier width at position 0: the number of
	// start-of-data states (all-input starts are never frontier-tracked).
	StartWidth int
	// Trackable is the number of states that can ever appear in a
	// frontier: all states minus all-input starts.
	Trackable int
	// NFABound[i] bounds the frontier share of NFA i in any single
	// cycle: its start-of-data width and max_b min(|F_b ∩ NFA_i|, C_i).
	NFABound []int
	// CliqueCap[i] is the anti-chain cap C_i of NFA i: no cycle can have
	// more of its states enabled at once (its trackable size when the
	// pairwise refinement was skipped).
	CliqueCap []int

	// ReportBound is a sound upper bound on the reports any single cycle
	// can emit.
	ReportBound int
	// ReportSymbol is the symbol attaining ReportBound (lowest byte).
	ReportSymbol byte

	// frontier[b] is the F_b bitmap (words-long rows over one backing
	// array); fire[b] is the bitmap of states with b in their fire set
	// (nil when NoGram). Retained for ReportBoundFor and synthesis.
	frontier [256][]uint64
	fire     [256][]uint64
	words    int
	// rawCnt[b] = |F_b|, cached for the bigram pass' skip tests.
	rawCnt [256]int
	// gramBudget is the layer-3 work cap (Config.GramBudget or default).
	gramBudget int64
}

// Analyze computes the worst-case bounds of net under cfg.
func Analyze(net *automata.Network, cfg Config) *Analysis {
	facts := cfg.Facts
	if facts == nil {
		facts = dataflow.Analyze(net, cfg.Alphabet)
	}
	n := net.Len()
	words := (n + 63) / 64
	a := &Analysis{
		Net:        net,
		Facts:      facts,
		NFABound:   make([]int, net.NumNFAs()),
		words:      words,
		gramBudget: cfg.GramBudget,
	}
	if a.gramBudget <= 0 {
		a.gramBudget = DefaultGramBudget
	}
	backing := make([]uint64, 256*words)
	for b := 0; b < 256; b++ {
		a.frontier[b] = backing[b*words : (b+1)*words : (b+1)*words]
	}

	// Populate F_b (and the fire bitmaps for the bigram pass): for every
	// state p that can activate on b, mark each compiled successor
	// (edges into all-input starts are excluded — the engine never
	// tracks those states in the frontier).
	var fireBacking []uint64
	if !cfg.NoGram {
		fireBacking = make([]uint64, 256*words)
		for b := 0; b < 256; b++ {
			a.fire[b] = fireBacking[b*words : (b+1)*words : (b+1)*words]
		}
	}
	var syms []byte
	for p := 0; p < n; p++ {
		fire := facts.Fire[p]
		if fire.IsEmpty() {
			continue
		}
		syms = append(syms[:0], fire.Symbols()...)
		if fireBacking != nil {
			pw, pb := p>>6, uint64(1)<<(uint(p)&63)
			for _, b := range syms {
				a.fire[b][pw] |= pb
			}
		}
		for _, v := range net.States[p].Succ {
			if net.States[v].Start == automata.StartAllInput {
				continue
			}
			vw, vb := v>>6, uint64(1)<<(uint32(v)&63)
			for _, b := range syms {
				a.frontier[b][vw] |= vb
			}
		}
	}

	// Start-of-data states form the position-0 frontier.
	for s := 0; s < n; s++ {
		switch net.States[s].Start {
		case automata.StartOfData:
			a.StartWidth++
			a.Trackable++
		case automata.StartNone:
			a.Trackable++
		}
	}

	// Layer 2: pairwise simultaneity → per-NFA anti-chain caps.
	pairCap := cfg.PairCap
	if pairCap == 0 {
		pairCap = DefaultPairCap
	}
	a.pairAnalysis(pairCap)

	// Count the rows: raw layer-1 peak and the C_i-capped layer-2 peak.
	for b := 0; b < 256; b++ {
		a.rawCnt[b] = popcount(a.frontier[b])
		if a.rawCnt[b] > a.Bound1 {
			a.Bound1 = a.rawCnt[b]
		}
	}
	pairSym := byte(0)
	for i := range a.NFABound {
		lo, hi := net.NFAStates(i)
		sod := 0
		for s := lo; s < hi; s++ {
			if net.States[s].Start == automata.StartOfData {
				sod++
			}
		}
		a.NFABound[i] = sod
	}
	for b := 0; b < 256; b++ {
		if a.rawCnt[b] == 0 {
			continue
		}
		sum := 0
		for i := range a.NFABound {
			lo, hi := net.NFAStates(i)
			cnt := countRange(a.frontier[b], int(lo), int(hi))
			if cnt > a.CliqueCap[i] {
				cnt = a.CliqueCap[i]
			}
			sum += cnt
			if cnt > a.NFABound[i] {
				a.NFABound[i] = cnt
			}
		}
		if sum > a.BoundPair {
			a.BoundPair = sum
			pairSym = byte(b)
		}
	}

	// Layer 3: bigram counting, aborted as soon as it provably cannot
	// improve on BoundPair.
	a.BoundGram = a.BoundPair
	a.PeakSymbol = pairSym
	if !cfg.NoGram {
		if bg, sym, improved := a.kgramFrontier(); improved {
			a.BoundGram = bg
			a.PeakSymbol = sym
		}
	}
	a.FrontierBound = a.BoundGram
	if a.StartWidth > a.FrontierBound {
		a.FrontierBound = a.StartWidth
	}

	a.ReportBound, a.ReportSymbol = a.reportBound(a.reportMask())
	return a
}

// k-gram refinement parameters: the suffix DFS deepens K = 2..maxGram
// while each completed level still improves the bound and the word-visit
// budget lasts.
const (
	maxGram = 8
	// DefaultGramBudget is the default layer-3 work cap in word-visits
	// (roughly nanoseconds): generous enough for the suite's largest
	// image to finish several levels.
	DefaultGramBudget = 1 << 30
)

// kgram is the state of one k-gram refinement (layer 3).
//
// For a suffix σ = s1..sK, define X_0 = (any possible prior frontier)
// and X_j = succ((X_{j-1} ∪ allInput) ∩ fire_{s_j}). Every frontier of
// an input ending in σ is contained in X_K — the K = 1 instance is
// exactly F_b and K = 2 the bigram bound — so max over σ of the
// C_i-capped count of X_K bounds every input of length ≥ K. Shorter
// inputs are covered by the start-anchored variant Y_0 = startsOfData,
// whose nodes count at every depth < K. Deeper K only tightens: X_K(σ)
// ⊆ X_{K-1}(σ without its first symbol).
//
// The DFS prunes a subtree when its growth cap — childCap ≤
// min(|F_b|, |act|·D) inflated by f(x) = (x+A)·D per remaining step,
// where A is the largest per-symbol all-input activation count and D
// the largest tracked out-degree — cannot beat the best leaf found so
// far. The cap bounds every count in the subtree and pruning happens
// only at cap ≤ best ≤ final best, so the final maximum is unaffected:
// standard branch-and-bound, soundness included.
type kgram struct {
	a         *Analysis
	img       *sim.Image
	allIn     []uint64
	order     []byte // live symbols, descending |F_b|
	amax      int    // A: max_b |allInput ∩ fire_b|
	dmax      int    // D: max tracked out-degree
	budget    int64
	best      int
	bestSym   byte
	threshold int // current working bound; best reaching it aborts the run
	aborted   bool
	exhausted bool
	act       []uint64
	depth     [][]uint64 // per-depth child-set scratch
}

// kgramFrontier runs the iterative-deepening refinement and returns the
// tightest completed bound below BoundPair (improved == false when no
// level improved on it).
func (a *Analysis) kgramFrontier() (bound int, sym byte, improved bool) {
	if a.BoundPair == 0 {
		return 0, 0, false
	}
	_, allIn, maxDeg := a.bigramSources()
	kg := &kgram{
		a:         a,
		img:       a.image(),
		allIn:     allIn,
		dmax:      maxDeg,
		budget:    a.gramBudget,
		threshold: a.BoundPair,
		act:       make([]uint64, a.words),
		depth:     make([][]uint64, maxGram+1),
	}
	for i := range kg.depth {
		kg.depth[i] = make([]uint64, a.words)
	}
	for b := 0; b < 256; b++ {
		if a.rawCnt[b] > 0 || anyWord(a.fire[b]) {
			kg.order = append(kg.order, byte(b))
		}
		if n := countAnd(allIn, a.fire[b]); n > kg.amax {
			kg.amax = n
		}
	}
	sortByRawCntDesc(kg.order, &a.rawCnt)
	sod := make([]uint64, a.words)
	for s := 0; s < a.Net.Len(); s++ {
		if a.Net.States[s].Start == automata.StartOfData {
			sod[s>>6] |= 1 << (uint(s) & 63)
		}
	}
	sodCnt := popcount(sod)

	for K := 2; K <= maxGram; K++ {
		kg.best, kg.bestSym, kg.aborted = 0, 0, false
		// X-tree: depth-1 children are the F_b rows themselves (X_1 = F_b
		// for any prior frontier), so start the recursion there.
		for _, b := range kg.order {
			if a.rawCnt[b] == 0 {
				continue
			}
			kg.dfs(a.frontier[b], a.rawCnt[b], 1, K, false, b)
			if kg.aborted || kg.exhausted {
				break
			}
		}
		// Y-tree: start-anchored chains cover inputs shorter than K.
		if !kg.aborted && !kg.exhausted {
			kg.dfs(sod, sodCnt, 0, K, true, 0)
		}
		if kg.exhausted || kg.aborted || kg.best >= kg.threshold {
			break
		}
		bound, sym, improved = kg.best, kg.bestSym, true
		kg.threshold = kg.best
		if kg.best == 0 {
			break
		}
	}
	return bound, sym, improved
}

// dfs explores suffix extensions of the set x (count xcnt) at the given
// depth. Anchored nodes (Y-tree) record at every depth ≥ 1; unanchored
// leaves record at depth == K exactly.
func (kg *kgram) dfs(x []uint64, xcnt, depthIdx, K int, anchored bool, lastSym byte) {
	a := kg.a
	if anchored && depthIdx >= 1 {
		kg.record(x, xcnt, lastSym)
	} else if !anchored && depthIdx == K {
		kg.record(x, xcnt, lastSym)
		return
	}
	if kg.aborted || kg.exhausted {
		return
	}
	if anchored && depthIdx >= K-1 {
		return // longer anchored inputs are covered by the X-tree
	}
	rem := K - depthIdx - 1 // steps remaining below the child
	if anchored {
		rem = K - depthIdx - 2
	}
	for _, b := range kg.order {
		fire := a.fire[b]
		// Immediate child cap, before paying for the AND.
		if kg.grow(min(xcnt, a.rawCnt[b]), 1+max(rem, 0)) <= kg.best {
			continue
		}
		actN := 0
		for w := range kg.act {
			word := (x[w] | kg.allIn[w]) & fire[w]
			kg.act[w] = word
			actN += bits.OnesCount64(word)
		}
		kg.budget -= int64(a.words)
		if kg.budget < 0 {
			kg.exhausted = true
			return
		}
		if actN == 0 {
			continue
		}
		childCap := actN * kg.dmax
		if a.rawCnt[b] < childCap {
			childCap = a.rawCnt[b]
		}
		if kg.grow(childCap, max(rem, 0)) <= kg.best {
			continue
		}
		child := kg.depth[depthIdx+1]
		ccnt := scatterCount(kg.img, kg.act, child)
		kg.budget -= int64(actN + ccnt + 1)
		if ccnt == 0 {
			continue
		}
		kg.dfs(child, ccnt, depthIdx+1, K, anchored, b)
		if kg.aborted || kg.exhausted {
			return
		}
	}
}

// grow applies the per-step growth cap f(x) = (x + A)·D r times.
func (kg *kgram) grow(x, r int) int {
	for t := 0; t < r; t++ {
		if x > kg.threshold { // already past any useful comparison
			return x
		}
		x = (x + kg.amax) * kg.dmax
	}
	return x
}

// record counts a node set against the best leaf, applying the per-NFA
// clique caps only when the raw count is in contention.
func (kg *kgram) record(x []uint64, raw int, sym byte) {
	if raw <= kg.best {
		return
	}
	a := kg.a
	capped := 0
	for i := range a.CliqueCap {
		lo, hi := a.Net.NFAStates(i)
		cnt := countRange(x, int(lo), int(hi))
		if cnt > a.CliqueCap[i] {
			cnt = a.CliqueCap[i]
		}
		capped += cnt
	}
	if capped > kg.best {
		kg.best, kg.bestSym = capped, sym
		if kg.best >= kg.threshold {
			kg.aborted = true
		}
	}
}

func sortByRawCntDesc(order []byte, rawCnt *[256]int) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && rawCnt[order[j]] > rawCnt[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// countAnd counts the set bits of a AND b.
func countAnd(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// reportBound bounds the reports of any single cycle against mask (the
// reporting states under consideration). Without bigram rows it is the
// layer-1 count max_b |{s ∈ mask : b ∈ Fire[s]}| (a state reporting in
// a cycle that read b activated on b); with them, the strictly tighter
// max over (src, b) of |(src ∪ allInput) ∩ fire_b ∩ mask|, where src
// ranges over the start row and every F_a — the start row covers the
// first cycle, F_a every later one.
func (a *Analysis) reportBound(mask []uint64) (bound int, sym byte) {
	if a.fire[0] == nil {
		var cnt [256]int
		for s := 0; s < a.Net.Len(); s++ {
			if mask[s>>6]&(1<<(uint(s)&63)) == 0 {
				continue
			}
			for _, b := range a.Facts.Fire[s].Symbols() {
				cnt[b]++
			}
		}
		for b := 0; b < 256; b++ {
			if cnt[b] > bound {
				bound, sym = cnt[b], byte(b)
			}
		}
		return bound, sym
	}
	srcs, allIn, _ := a.bigramSources()
	for b := 0; b < 256; b++ {
		fire := a.fire[b]
		if !anyWord(fire) {
			continue
		}
		for _, src := range srcs {
			cnt := 0
			for w := range fire {
				cnt += bits.OnesCount64((src[w] | allIn[w]) & fire[w] & mask[w])
			}
			if cnt > bound {
				bound, sym = cnt, byte(b)
			}
		}
	}
	return bound, sym
}

// bigramSources returns the source rows of the bigram sweep — the
// start-of-data row followed by every non-empty F_a — plus the all-input
// start bitmap (ORed into every source: those states are enabled in
// every cycle) and the largest tracked out-degree.
func (a *Analysis) bigramSources() (srcs [][]uint64, allIn []uint64, maxDeg int) {
	net := a.Net
	sod := make([]uint64, a.words)
	allIn = make([]uint64, a.words)
	for s := 0; s < net.Len(); s++ {
		switch net.States[s].Start {
		case automata.StartOfData:
			sod[s>>6] |= 1 << (uint(s) & 63)
		case automata.StartAllInput:
			allIn[s>>6] |= 1 << (uint(s) & 63)
		}
		deg := 0
		for _, v := range net.States[s].Succ {
			if net.States[v].Start != automata.StartAllInput {
				deg++
			}
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	srcs = append(srcs, sod)
	for b := 0; b < 256; b++ {
		if a.rawCnt[b] > 0 {
			srcs = append(srcs, a.frontier[b])
		}
	}
	return srcs, allIn, maxDeg
}

// reportMask builds the bitmap of states that both report and can fire;
// states that provably never activate cannot contribute to any cycle's
// report count.
func (a *Analysis) reportMask() []uint64 {
	mask := make([]uint64, a.words)
	for s := 0; s < a.Net.Len(); s++ {
		if a.Net.States[s].Report && !a.Facts.Fire[s].IsEmpty() {
			mask[s>>6] |= 1 << (uint(s) & 63)
		}
	}
	return mask
}

// FrontierFraction is FrontierBound over the trackable state count — the
// fraction of the network an adversarial input could light up at once.
func (a *Analysis) FrontierFraction() float64 {
	if a.Trackable == 0 {
		return 0
	}
	return float64(a.FrontierBound) / float64(a.Trackable)
}

// ReportBoundFor recomputes the per-cycle report bound counting only the
// reporting states selected by include — spap's pre-flight bounds
// intermediate reports (cut stand-ins) separately from original ones.
func (a *Analysis) ReportBoundFor(include func(automata.StateID) bool) (bound int, sym byte) {
	mask := make([]uint64, a.words)
	for s := 0; s < a.Net.Len(); s++ {
		if a.Net.States[s].Report && !a.Facts.Fire[s].IsEmpty() && include(automata.StateID(s)) {
			mask[s>>6] |= 1 << (uint(s) & 63)
		}
	}
	return a.reportBound(mask)
}

// countRange counts the set bits of row in the state interval [lo, hi).
func countRange(row []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		return bits.OnesCount64(row[loW] & loMask & hiMask)
	}
	cnt := bits.OnesCount64(row[loW] & loMask)
	for w := loW + 1; w < hiW; w++ {
		cnt += bits.OnesCount64(row[w])
	}
	return cnt + bits.OnesCount64(row[hiW]&hiMask)
}
