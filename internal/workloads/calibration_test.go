package workloads

import "testing"

// paperStates is Table II's state counts; generated applications must stay
// within tolerance of paperStates/Divisor so the batch-count ratios the
// evaluation depends on are preserved. This is the calibration regression
// guard: a generator change that drifts an application's footprint breaks
// here before it silently breaks the Table IV reproduction.
var paperStates = map[string]int{
	"CAV4k": 1124947, "HM1500": 366000, "HM1000": 244000, "Snort_L": 132171,
	"HM500": 122000, "SPM": 100500, "DS": 96438, "ER": 95136, "RF1": 75340,
	"Snort": 69029, "CAV": 49538,
	"Brill": 42658, "Pro": 42009, "Fermi": 40783, "PEN": 40513, "RF2": 33220,
	"TCP": 19704, "DS06": 12640, "Rg05": 12621, "Rg1": 12464, "EM": 12439,
	"DS09": 12431, "DS03": 12144, "HM": 11346, "LV": 2784, "Bro217": 2312,
}

func TestTableIISizeCalibration(t *testing.T) {
	cfg := Config{InputLen: 4096, Divisor: 16, Seed: 1}
	for _, name := range Names() {
		app, err := Build(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := paperStates[name] / cfg.Divisor
		got := app.Net.Len()
		lo, hi := want*55/100, want*175/100
		// Snort_L's deep rules are depth-capped more aggressively at
		// small scales; allow extra downward slack.
		if name == "Snort_L" {
			lo = want * 40 / 100
		}
		if got < lo || got > hi {
			t.Errorf("%s: %d states, want within [%d, %d] (paper %d / %d)",
				name, got, lo, hi, paperStates[name], cfg.Divisor)
		}
	}
}

func TestTableIIGroupsMatchPaper(t *testing.T) {
	groups := map[string]Group{
		"CAV4k": High, "HM1500": High, "HM1000": High, "Snort_L": High,
		"HM500": High, "SPM": High, "DS": High, "ER": High, "RF1": High,
		"Snort": High, "CAV": High,
		"Brill": Medium, "Pro": Medium, "Fermi": Medium, "PEN": Medium, "RF2": Medium,
		"TCP": Low, "DS06": Low, "Rg05": Low, "Rg1": Low, "EM": Low,
		"DS09": Low, "DS03": Low, "HM": Low, "LV": Low, "Bro217": Low,
	}
	cfg := fastCfg()
	for name, want := range groups {
		app, err := Build(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if app.Group != want {
			t.Errorf("%s: group %v, want %v", name, app.Group, want)
		}
	}
}
