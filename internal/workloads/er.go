package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// ER — entity resolution (ANMLZoo). The application matches person names
// under token reordering, which compiles into automata dominated by one
// large cycle over the token states: any token may follow any other until
// the name is resolved. The giant SCC is what Figure 8 highlights — a
// topological-order partition cannot cut inside it, so once any member is
// hot the whole SCC is predicted hot and the scheme falls back to plain
// batched execution (Table IV: 4 baseline batches, 4 BaseAP batches, no
// SpAP work).

// erNFA builds one entity automaton: a name-boundary entry into a ring of
// token states forming one SCC covering ~98% of the NFA. The entry fires
// immediately on any stream, so even the shortest profile marks a ring
// member hot — and SCC atomicity then drags the whole ring into the
// predicted hot set, reproducing the paper's "ER cannot be partitioned"
// result at every scale.
func erNFA(r *rand.Rand, vocab []byte, ringLen int) *automata.NFA {
	m := automata.NewNFA()
	sep := m.Add(symset.All(), automata.StartAllInput, false)
	// Token ring: each state accepts a few symbols; edges form a cycle
	// plus chords, so the whole ring is one SCC.
	ring := make([]automata.StateID, ringLen)
	for i := range ring {
		var set symset.Set
		for k := 0; k < 3; k++ {
			set.Add(vocab[r.Intn(len(vocab))])
		}
		ring[i] = m.Add(set, automata.StartNone, i == ringLen-1)
	}
	m.Connect(sep, ring[0])
	for i := range ring {
		m.Connect(ring[i], ring[(i+1)%ringLen])
		if i%7 == 0 { // chords keep the SCC tight
			m.Connect(ring[i], ring[(i+ringLen/2)%ringLen])
		}
	}
	m.Dedup()
	return m
}

func init() {
	register("ER", func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(1000)
		vocab := asciiVocab(30)
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			machines[i] = erNFA(r, vocab, 92) // 1 + 92 = 93 states/NFA
		}
		input := randText(r, cfg.InputLen, append(vocab, ' '))
		return &App{
			Name:  "EntityResolution",
			Abbr:  "ER",
			Group: High,
			Net:   automata.NewNetwork(machines...),
			Input: input,
		}
	})
}
