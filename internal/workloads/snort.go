package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"sparseap/internal/regexc"
)

// Snort network-intrusion rules (ANMLZoo Snort and the Snort_L scale-up of
// Section VI-A). Each rule is a short content trigger followed by a broad
// payload class and a narrow tail. Triggers come from a shared pool, as
// real rule sets share common tokens ("GET ", "POST", protocol headers);
// when a pooled trigger fires naturally in the traffic, every rule sharing
// it attempts its payload class at the same position — the source of
// Snort_L's simultaneous intermediate reports (173K reports, 88K stalls in
// Table IV). The narrow tails die within a cycle or two, so SpAP mode
// skips nearly everything (98-99.99% jump ratios). Trigger length tunes
// the natural firing rate: Snort's 3-symbol triggers essentially never
// fire (70 reports in the paper), Snort_L's 2-symbol triggers fire every
// few thousand symbols.

type snortOpts struct {
	paperNFAs   int
	tailMin     int
	tailMax     int
	runLen      int // broad payload-class run after the trigger
	triggerLen  int // symbols per pooled trigger
	triggerPool int // distinct triggers shared by the rules
	deepRules   int // rules with a long bounded gap (MaxTopo drivers)
	deepLen     int
	vocabSize   int
}

func snortRule(r *rand.Rand, o snortOpts, trigger []byte, vocab []byte, deep bool) string {
	var b strings.Builder
	for _, c := range trigger {
		fmt.Fprintf(&b, "\\x%02x", c)
	}
	if deep {
		fmt.Fprintf(&b, ".{%d}", o.deepLen)
		fmt.Fprintf(&b, "\\x%02x", vocab[r.Intn(len(vocab))])
		return b.String()
	}
	// Broad payload-class run after the trigger (~3/4 of the vocabulary,
	// so pulses decay slowly through it), then a narrow literal tail.
	lo := vocab[0]
	hi := vocab[len(vocab)*3/4]
	fmt.Fprintf(&b, "[\\x%02x-\\x%02x]{%d}", lo, hi, o.runLen)
	tail := o.tailMin + r.Intn(o.tailMax-o.tailMin+1)
	for i := 0; i < tail; i++ {
		fmt.Fprintf(&b, "\\x%02x", vocab[r.Intn(len(vocab))])
	}
	return b.String()
}

func buildSnort(name, abbr string, group Group, o snortOpts) builder {
	return func(cfg Config, r *rand.Rand) *App {
		o := o
		nfas := cfg.scaled(o.paperNFAs)
		o.deepLen = cfg.depthCap(o.deepLen+12) - 12
		deep := o.deepRules
		if deep > nfas {
			deep = nfas
		}
		vocab := asciiVocab(o.vocabSize)
		pool := make([][]byte, o.triggerPool)
		for i := range pool {
			pool[i] = randText(r, o.triggerLen, vocab)
		}
		patterns := make([]string, nfas)
		for i := range patterns {
			patterns[i] = snortRule(r, o, pool[r.Intn(len(pool))], vocab, i < deep)
		}
		net, err := regexc.CompileAll(patterns, regexc.Options{})
		if err != nil {
			panic("workloads: " + abbr + ": " + err.Error())
		}
		input := randText(r, cfg.InputLen, vocab)
		return &App{Name: name, Abbr: abbr, Group: group, Net: net, Input: input}
	}
}

func init() {
	// Snort: 69K states over 2687 NFAs, ~26 states/NFA, MaxTopo 133.
	// 3-symbol triggers over a 48-symbol vocabulary fire ~once per 110K
	// symbols: a handful of intermediate reports, as in Table IV.
	register("Snort", buildSnort("Snort", "Snort", High, snortOpts{
		paperNFAs: 2687, tailMin: 6, tailMax: 24, runLen: 10, triggerLen: 3,
		triggerPool: 40, deepRules: 1, deepLen: 125, vocabSize: 48,
	}))
	// Snort_L: 3126 community+registered rules, 132K states, MaxTopo 4509.
	// 2-symbol triggers fire every ~2.3K symbols, and the shared pool makes
	// the crossings simultaneous. depthCap shrinks the deep gap rules so a
	// single NFA still fits the scaled half-core.
	register("Snort_L", buildSnort("Snort_big", "Snort_L", High, snortOpts{
		paperNFAs: 3126, tailMin: 8, tailMax: 28, runLen: 12, triggerLen: 2,
		triggerPool: 24, deepRules: 2, deepLen: 4509, vocabSize: 64,
	}))
}
