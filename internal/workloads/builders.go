package workloads

import (
	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// chainNFA builds a linear homogeneous NFA from the given per-state symbol
// sets; the first state is a start of the given kind and the last state
// reports.
func chainNFA(sets []symset.Set, start automata.StartKind) *automata.NFA {
	m := automata.NewNFA()
	prev := m.Add(sets[0], start, len(sets) == 1)
	for i := 1; i < len(sets); i++ {
		cur := m.Add(sets[i], automata.StartNone, i == len(sets)-1)
		m.Connect(prev, cur)
		prev = cur
	}
	return m
}

// literalChainNFA builds a chain matching the exact byte string.
func literalChainNFA(lit []byte, start automata.StartKind) *automata.NFA {
	sets := make([]symset.Set, len(lit))
	for i, b := range lit {
		sets[i] = symset.Single(b)
	}
	return chainNFA(sets, start)
}

// singles converts a byte string to singleton symbol sets.
func singles(lit []byte) []symset.Set {
	sets := make([]symset.Set, len(lit))
	for i, b := range lit {
		sets[i] = symset.Single(b)
	}
	return sets
}
