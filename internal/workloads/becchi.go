package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"sparseap/internal/regexc"
)

// The Becchi et al. deep-packet-inspection workload suite [34]: families of
// synthetic regex rule sets distinguished by how often patterns contain
// character ranges (Ranges05/Ranges1), unbounded wildcard gaps
// (Dotstar03/06/09 and ANMLZoo's large Dotstar), exact literals
// (ExactMatch), or protocol-flavored mixes (TCP, Bro217).

// becchiOpts parameterizes the pattern generator.
type becchiOpts struct {
	paperNFAs   int
	minLen      int     // literal symbols per pattern, min
	maxLen      int     // and max
	rangeProb   float64 // probability a position is a character range
	dotstarProb float64 // probability a pattern contains .* gaps
	vocabSize   int     // input/pattern symbol vocabulary
	plant       int     // full-pattern occurrences planted in the input
}

// becchiPattern generates one pattern string over the vocabulary.
func becchiPattern(r *rand.Rand, o becchiOpts, vocab []byte) string {
	n := o.minLen + r.Intn(o.maxLen-o.minLen+1)
	dotstar := r.Float64() < o.dotstarProb
	var b strings.Builder
	for i := 0; i < n; i++ {
		if dotstar && i > 0 && i%12 == 0 {
			b.WriteString(".*")
		}
		c := vocab[r.Intn(len(vocab))]
		if r.Float64() < o.rangeProb {
			hi := int(c) + 2 + r.Intn(4)
			if hi > 0x7e {
				hi = 0x7e
			}
			fmt.Fprintf(&b, "[\\x%02x-\\x%02x]", c, hi)
		} else {
			fmt.Fprintf(&b, "\\x%02x", c)
		}
	}
	return b.String()
}

// literalOf extracts the plain-byte skeleton of a generated pattern for
// planting matches into the input (ranges collapse to their low byte, gaps
// to nothing).
func literalOf(pattern string) []byte {
	var out []byte
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '\\' && i+3 < len(pattern) && pattern[i+1] == 'x' {
			var v int
			fmt.Sscanf(pattern[i+2:i+4], "%02x", &v)
			out = append(out, byte(v))
			i += 3
		}
	}
	return out
}

func buildBecchi(name, abbr string, group Group, o becchiOpts) builder {
	return func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(o.paperNFAs)
		vocab := asciiVocab(o.vocabSize)
		patterns := make([]string, nfas)
		for i := range patterns {
			patterns[i] = becchiPattern(r, o, vocab)
		}
		net, err := regexc.CompileAll(patterns, regexc.Options{})
		if err != nil {
			panic("workloads: " + abbr + ": " + err.Error()) // generator bug, not input error
		}
		input := randText(r, cfg.InputLen, vocab)
		for i := 0; i < o.plant; i++ {
			plant(r, input, literalOf(patterns[r.Intn(len(patterns))]), 1)
		}
		return &App{Name: name, Abbr: abbr, Group: group, Net: net, Input: input}
	}
}

func init() {
	// ANMLZoo Dotstar: 96K states over 2837 NFAs, ~34 states/NFA.
	register("DS", buildBecchi("Dotstar", "DS", High, becchiOpts{
		paperNFAs: 2837, minLen: 24, maxLen: 40, dotstarProb: 0.6, vocabSize: 24,
	}))
	// Becchi suite, ~12.5K states over ~298 NFAs each, ~42 states/NFA.
	register("DS03", buildBecchi("Dotstar03", "DS03", Low, becchiOpts{
		paperNFAs: 299, minLen: 32, maxLen: 58, dotstarProb: 0.3, vocabSize: 20, plant: 3,
	}))
	register("DS06", buildBecchi("Dotstar06", "DS06", Low, becchiOpts{
		paperNFAs: 298, minLen: 32, maxLen: 58, dotstarProb: 0.6, vocabSize: 20, plant: 3,
	}))
	register("DS09", buildBecchi("Dotstar09", "DS09", Low, becchiOpts{
		paperNFAs: 297, minLen: 32, maxLen: 58, dotstarProb: 0.9, vocabSize: 20, plant: 3,
	}))
	register("Rg05", buildBecchi("Ranges05", "Rg05", Low, becchiOpts{
		paperNFAs: 299, minLen: 32, maxLen: 58, rangeProb: 0.5, vocabSize: 20, plant: 3,
	}))
	register("Rg1", buildBecchi("Ranges1", "Rg1", Low, becchiOpts{
		paperNFAs: 297, minLen: 32, maxLen: 58, rangeProb: 1.0, vocabSize: 20, plant: 3,
	}))
	register("EM", buildBecchi("ExactMatch", "EM", Low, becchiOpts{
		paperNFAs: 297, minLen: 32, maxLen: 58, vocabSize: 20, plant: 3,
	}))
	// TCP: protocol rules, ~27 states/NFA over 738 NFAs.
	register("TCP", buildBecchi("TCP", "TCP", Low, becchiOpts{
		paperNFAs: 738, minLen: 16, maxLen: 36, rangeProb: 0.25, dotstarProb: 0.2, vocabSize: 24, plant: 4,
	}))
	// Bro217: short HTTP patterns, ~12 states/NFA over 187 NFAs.
	register("Bro217", buildBecchi("Bro217", "Bro217", Low, becchiOpts{
		paperNFAs: 187, minLen: 8, maxLen: 16, rangeProb: 0.1, vocabSize: 24, plant: 3,
	}))
}
