package workloads

import "math/rand"

// vocab builders: inputs are drawn from restricted symbol vocabularies so
// that the prefix used for profiling is statistically representative of the
// rest of the stream — the property Section IV-A's profiling evaluation
// depends on.

// asciiVocab returns n distinct printable symbols.
func asciiVocab(n int) []byte {
	out := make([]byte, 0, n)
	for c := byte(0x20); c < 0x7f && len(out) < n; c++ {
		out = append(out, c)
	}
	return out
}

// randText fills a length-n stream with symbols drawn uniformly from vocab.
func randText(r *rand.Rand, n int, vocab []byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = vocab[r.Intn(len(vocab))]
	}
	return out
}

// randBytes fills a length-n stream with uniform random bytes.
func randBytes(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(256))
	}
	return out
}

// plant copies needle into input at count random positions (clipped at the
// end), simulating streams that contain genuine matches.
func plant(r *rand.Rand, input []byte, needle []byte, count int) {
	if len(needle) == 0 || len(input) == 0 {
		return
	}
	for i := 0; i < count; i++ {
		pos := r.Intn(len(input))
		copy(input[pos:], needle)
	}
}

// markovText generates text where each symbol depends on the previous one,
// restricted to a fixed successor set per symbol. This produces a stream
// with a stable pair vocabulary: every 2-gram that ever occurs occurs
// often, so a short profiling prefix observes the same reachable set as the
// full stream (the ClamAV-family generators rely on this).
type markov struct {
	vocab []byte
	succ  [][]byte
}

// newMarkov builds a chain over vocab where each symbol has fanout possible
// successors.
func newMarkov(r *rand.Rand, vocab []byte, fanout int) *markov {
	m := &markov{vocab: vocab, succ: make([][]byte, 256)}
	for _, c := range vocab {
		s := make([]byte, fanout)
		for i := range s {
			s[i] = vocab[r.Intn(len(vocab))]
		}
		m.succ[c] = s
	}
	return m
}

// generate emits n symbols from the chain.
func (m *markov) generate(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	cur := m.vocab[r.Intn(len(m.vocab))]
	for i := range out {
		out[i] = cur
		cur = m.succ[cur][r.Intn(len(m.succ[cur]))]
	}
	return out
}

// walk returns a length-k path through the chain starting at a random
// vocabulary symbol; used to synthesize signature prefixes that the input
// can actually reach.
func (m *markov) walk(r *rand.Rand, k int) []byte {
	out := make([]byte, k)
	cur := m.vocab[r.Intn(len(m.vocab))]
	for i := range out {
		out[i] = cur
		cur = m.succ[cur][r.Intn(len(m.succ[cur]))]
	}
	return out
}
