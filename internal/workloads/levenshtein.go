package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// Levenshtein edit-distance matching (ANMLZoo): a lattice of
// (pattern-position, edits) cells. ANMLZoo's construction wires its
// wildcard insertion states into cycles, producing the large SCCs the
// paper calls out (Figures 8: LV cannot be partitioned effectively). We
// reproduce the lattice with per-edit-row insertion rings: each row's
// any-symbol insertion states form one cycle, merging most of the row into
// a single SCC.

func levenshteinNFA(r *rand.Rand, pattern []byte, d int) *automata.NFA {
	m := automata.NewNFA()
	l := len(pattern)
	// cell[i][j]: consumed i pattern symbols with j edits (match states).
	cell := make([][]automata.StateID, l+1)
	for i := range cell {
		cell[i] = make([]automata.StateID, d+1)
		for j := range cell[i] {
			cell[i][j] = automata.None
		}
	}
	for i := 1; i <= l; i++ {
		for j := 0; j <= d; j++ {
			start := automata.StartNone
			if i == 1 && j == 0 {
				start = automata.StartAllInput
			}
			cell[i][j] = m.Add(symset.Single(pattern[i-1]), start, i == l)
		}
	}
	// ins[i][j]: any-symbol insertion state between positions.
	ins := make([][]automata.StateID, l+1)
	for i := range ins {
		ins[i] = make([]automata.StateID, d+1)
		for j := range ins[i] {
			ins[i][j] = automata.None
		}
	}
	for i := 1; i <= l; i++ {
		for j := 1; j <= d; j++ {
			ins[i][j] = m.Add(symset.All(), automata.StartNone, false)
		}
	}
	for i := 1; i <= l; i++ {
		for j := 0; j <= d; j++ {
			if i < l {
				m.Connect(cell[i][j], cell[i+1][j]) // match next symbol
				if j < d {
					m.Connect(cell[i][j], cell[i+1][j+1]) // substitution
					m.Connect(cell[i][j], ins[i][j+1])    // insertion
					m.Connect(ins[i][j+1], cell[i+1][j+1])
				}
			}
		}
	}
	// Per-row insertion ring: ANMLZoo's cyclic wildcard wiring. This makes
	// each edit row's insertion states one SCC.
	for j := 1; j <= d; j++ {
		for i := 1; i <= l; i++ {
			next := i%l + 1
			m.Connect(ins[i][j], ins[next][j])
		}
	}
	m.Dedup()
	return m
}

func init() {
	register("LV", func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(24)
		vocab := asciiVocab(26)
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			p := randText(r, 24, vocab)
			machines[i] = levenshteinNFA(r, p, 2) // ~24*3 + 24*2 = 120 states
		}
		input := randText(r, cfg.InputLen, vocab)
		return &App{
			Name:  "Levenshtein",
			Abbr:  "LV",
			Group: Low,
			Net:   automata.NewNetwork(machines...),
			Input: input,
		}
	})
}
