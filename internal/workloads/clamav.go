package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// ClamAV-style virus scanning (ANMLZoo ClamAV and the CAV4k scale-up of
// Section VI-A). Each signature is a long byte-sequence automaton: a short
// prefix drawn from the scanned stream's byte-pair vocabulary (so shallow
// layers are exercised, as real traffic exercises real signature prefixes)
// followed by a long tail of bytes outside the stream vocabulary (virus
// bodies that clean traffic never contains). Occasional gap states ('*'
// wildcards in ClamAV signature syntax) appear as self-looping any-byte
// states. This reproduces ClamAV's defining property in Figure 1: ~99%
// cold states.

// clamavSignature builds one signature NFA: prefix from the markov chain,
// then an out-of-vocabulary tail with occasional wildcard gaps.
func clamavSignature(r *rand.Rand, m *markov, prefixLen, tailLen int) *automata.NFA {
	sets := make([]symset.Set, 0, prefixLen+tailLen)
	for _, b := range m.walk(r, prefixLen) {
		sets = append(sets, symset.Single(b))
	}
	for i := 0; i < tailLen; i++ {
		sets = append(sets, symset.Single(byte(0x80+r.Intn(0x80))))
	}
	nfa := chainNFA(sets, automata.StartAllInput)
	// Sprinkle wildcard gap states ('*' in ClamAV syntax): convert a few
	// tail states to self-looping any-byte states.
	for g := 0; g < tailLen/200; g++ {
		idx := automata.StateID(prefixLen + r.Intn(tailLen))
		nfa.States[idx].Match = symset.All()
		nfa.Connect(idx, idx)
	}
	nfa.Dedup()
	return nfa
}

// clamavLengths draws a signature length from a heavy-tailed distribution
// averaging near mean with maximum maxLen (Table II's MaxTopo).
func clamavLength(r *rand.Rand, mean, maxLen int) int {
	var l int
	switch r.Intn(20) {
	case 0: // heavy tail
		l = mean*2 + r.Intn(maxLen-mean*2+1)
	case 1, 2, 3:
		l = mean + r.Intn(mean)
	default:
		l = mean/2 + r.Intn(mean)
	}
	if l > maxLen {
		l = maxLen
	}
	if l < 16 {
		l = 16
	}
	return l
}

func buildClamAV(name, abbr string, group Group, paperNFAs, meanLen, maxLen, prefixLen int, sampled bool) builder {
	return func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(paperNFAs)
		maxLen := cfg.depthCap(maxLen)
		meanLen := meanLen
		if meanLen > maxLen/2 {
			meanLen = maxLen / 2
		}
		chain := newMarkov(r, asciiVocab(48), 4)
		input := chain.generate(r, cfg.InputLen)
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			l := clamavLength(r, meanLen, maxLen)
			if i == 0 {
				l = maxLen // pin the Table II maximum topological order
			}
			if sampled && i%4 == 3 && l > 120 {
				// Signatures extracted from recurring file blocks: the
				// prefix is a literal input substring, replanted a few
				// times. These traversals reach far deeper than the
				// profile-extended cut, producing ClamAV's small
				// intermediate-report stream (Table IV) at a high jump
				// ratio.
				off := r.Intn(len(input) - 96)
				pre := append([]byte(nil), input[off:off+80]...)
				plant(r, input, pre, 4)
				sets := append(singles(pre), singles(randBytes(r, l-80))...)
				machines[i] = chainNFA(sets, automata.StartAllInput)
				continue
			}
			machines[i] = clamavSignature(r, chain, prefixLen, l-prefixLen)
		}
		return &App{
			Name:  name,
			Abbr:  abbr,
			Group: group,
			Net:   automata.NewNetwork(machines...),
			Input: input,
		}
	}
}

func init() {
	// CAV4k: first 4000 signatures of the Q1-2018 ClamAV main.cvd;
	// 1.12M states over 4000 NFAs, MaxTopo 2080. Pair-vocabulary prefixes
	// (length 2) make the short profile's prediction essentially perfect,
	// matching Table IV's zero intermediate reports.
	register("CAV4k", buildClamAV("ClamAV4000", "CAV4k", High, 4000, 200, 2080, 2, false))
	// CAV: ANMLZoo ClamAV; 49.5K states over 515 NFAs, MaxTopo 542.
	// Triple prefixes leave a few rare deep enables for the profile to
	// miss, matching Table IV's 3215 intermediate reports.
	register("CAV", buildClamAV("ClamAV", "CAV", High, 515, 70, 542, 3, true))
}
