package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// Fermi particle-track reconstruction (ANMLZoo): anchored automata that
// consume a detector-hit record from the start of the data (start-of-data
// starts, MaxTopo 13). Hit windows are wide byte ranges, so every layer is
// exercised and the whole application stays hot — Table IV shows no
// resource saving (2 baseline batches, 2 BaseAP batches, no SpAP work).

func fermiNFA(r *rand.Rand, length int) *automata.NFA {
	m := automata.NewNFA()
	root := m.Add(symset.All(), automata.StartOfData, false)
	m.Connect(root, root)
	prev := root
	for i := 0; i < length; i++ {
		lo := byte(r.Intn(64))
		st := m.Add(symset.Range(lo, lo+191), automata.StartNone, i == length-1)
		m.Connect(prev, st)
		prev = st
	}
	// A second branch from the anchor gives Fermi's ~17 states/NFA.
	prev = root
	for i := 0; i < length/3; i++ {
		lo := byte(r.Intn(64))
		st := m.Add(symset.Range(lo, lo+191), automata.StartNone, i == length/3-1)
		m.Connect(prev, st)
		prev = st
	}
	return m
}

func init() {
	register("Fermi", func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(2399)
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			machines[i] = fermiNFA(r, 12) // 1 + 12 + 4 = 17 states, MaxTopo 13
		}
		return &App{
			Name:        "Fermi",
			Abbr:        "Fermi",
			Group:       Medium,
			Net:         automata.NewNetwork(machines...),
			Input:       randBytes(r, cfg.InputLen),
			StartOfData: true,
		}
	})
}
