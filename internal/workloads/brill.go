package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// Brill part-of-speech rule learning (ANMLZoo). Rules are sequences of tag
// classes drawn from a small pool of templates (real Brill rule sets reuse
// the same dozen tag groups everywhere). Each template covers about half
// the tag alphabet, so chains decay slowly and the partition cut sits in a
// region that keeps getting enabled — the source of Brill's many
// intermediate reports (68K in Table IV), correlated across rules sharing
// templates (hence the sizable stall count), while the decay still yields
// an 81.5% jump ratio.

// classTemplates builds a pool of broad symbol classes over the alphabet.
func classTemplates(r *rand.Rand, alphabet []byte, count, width int) []symset.Set {
	out := make([]symset.Set, count)
	for i := range out {
		var s symset.Set
		for _, idx := range r.Perm(len(alphabet))[:width] {
			s.Add(alphabet[idx])
		}
		out[i] = s
	}
	return out
}

func templateChain(r *rand.Rand, templates []symset.Set, length int) *automata.NFA {
	sets := make([]symset.Set, length)
	for i := range sets {
		sets[i] = templates[r.Intn(len(templates))]
	}
	return chainNFA(sets, automata.StartAllInput)
}

func init() {
	register("Brill", func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(1962)
		tags := asciiVocab(32)
		templates := classTemplates(r, tags, 12, 15)
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			l := 14 + r.Intn(16) // ~22 states/NFA
			if i == 0 {
				l = 38 // Table II MaxTopo
			}
			machines[i] = templateChain(r, templates, l)
		}
		return &App{
			Name:  "Brill",
			Abbr:  "Brill",
			Group: Medium,
			Net:   automata.NewNetwork(machines...),
			Input: randText(r, cfg.InputLen, tags),
		}
	})
}
