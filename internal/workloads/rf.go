package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// Random Forest inference (ANMLZoo RandomForest, two rule-set sizes). Each
// tree path compiles to a depth-3 chain of feature-interval tests — wide
// byte-range symbol sets — and an NFA bundles several paths (~20 states,
// MaxTopo 3 in Table II). The wide intervals make every layer fire
// constantly, so essentially all states are hot and the partitioner leaves
// the application untouched (Table IV: RF1 4→4 batches, RF2 2→2).

// rfNFA bundles paths of three interval tests.
func rfNFA(r *rand.Rand, paths int) *automata.NFA {
	m := automata.NewNFA()
	interval := func() symset.Set {
		lo := r.Intn(156)
		hi := lo + 40 + r.Intn(60)
		if hi > 255 {
			hi = 255
		}
		return symset.Range(byte(lo), byte(hi))
	}
	for p := 0; p < paths; p++ {
		a := m.Add(interval(), automata.StartAllInput, false)
		b := m.Add(interval(), automata.StartNone, false)
		c := m.Add(interval(), automata.StartNone, true)
		m.Connect(a, b)
		m.Connect(b, c)
	}
	return m
}

func buildRF(name, abbr string, group Group, paperNFAs int) builder {
	return func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(paperNFAs)
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			machines[i] = rfNFA(r, 6+r.Intn(2)) // 18-21 states
		}
		return &App{
			Name:  name,
			Abbr:  abbr,
			Group: group,
			Net:   automata.NewNetwork(machines...),
			Input: randBytes(r, cfg.InputLen), // feature-value stream
		}
	}
}

func init() {
	register("RF1", buildRF("RandomForest1", "RF1", High, 3767))
	register("RF2", buildRF("RandomForest2", "RF2", Medium, 1661))
}
