// Package workloads synthesizes the paper's 26-application benchmark set
// (ANMLZoo + the Becchi regex suite + the three scaled-up applications of
// Section VI-A), substituting generators for the proprietary rule sets and
// traces (see DESIGN.md).
//
// Each generator reproduces its application's structural signature from
// Table II — states per NFA, NFA count, maximum topological order,
// reporting-state density, start kind, SCC structure — and couples it with
// an input generator tuned so the dynamic behaviour (hot-state fraction,
// intermediate-report volume, jump ratio) lands where the paper's
// evaluation places it. Sizes default to 1/8 of Table II, matching the
// 1/8-scaled AP half-core in internal/ap.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"sparseap/internal/automata"
	"sparseap/internal/lint"
	"sparseap/internal/rewrite"
)

// Group is the resource-requirement class of Section VI-A.
type Group int

const (
	// High holds applications exceeding an AP chip (2 half-cores).
	High Group = iota
	// Medium holds applications exceeding one half-core.
	Medium
	// Low holds applications fitting in one half-core.
	Low
)

// String names the group as Table II abbreviates it.
func (g Group) String() string {
	switch g {
	case High:
		return "H"
	case Medium:
		return "M"
	case Low:
		return "L"
	}
	return "?"
}

// App is one generated application: its automata network plus the input
// stream the evaluation runs it on.
type App struct {
	Name  string
	Abbr  string
	Group Group
	Net   *automata.Network
	Input []byte
	// StartOfData marks applications (Fermi, SPM) whose start states are
	// only enabled at position 0; per the paper's footnote these use the
	// entire input for the actual evaluation rather than the second half.
	StartOfData bool
}

// Config scales generation.
type Config struct {
	// InputLen is the input stream length; the default 131072 (128 KiB)
	// is 1/8 of the paper's 1 MiB.
	InputLen int
	// Divisor scales NFA counts down from Table II; default 8.
	Divisor int
	// Seed makes generation deterministic; default 1.
	Seed int64
	// Optimize passes the generated network through the proof-carrying
	// rewriter (internal/rewrite) before returning it, so downstream
	// batching and partitioning see the minimized STE count. The report
	// stream is provably unchanged.
	Optimize bool
}

func (c Config) withDefaults() Config {
	if c.InputLen == 0 {
		c.InputLen = 131072
	}
	if c.Divisor == 0 {
		c.Divisor = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fingerprint renders the generation parameters that determine a built
// application bit-for-bit. Checkpoint manifests store it so a resumed run
// can verify it is continuing the same application at the same scale and
// seed, and refuse to splice state from a different one.
func (c Config) Fingerprint(abbr string) string {
	c = c.withDefaults()
	return fmt.Sprintf("%s/d%d/n%d/s%d/opt%t", abbr, c.Divisor, c.InputLen, c.Seed, c.Optimize)
}

// scaled returns a paper-sized count divided by the configured divisor,
// with a floor of 1.
func (c Config) scaled(paperCount int) int {
	n := paperCount / c.Divisor
	if n < 1 {
		n = 1
	}
	return n
}

// depthCap limits a paper NFA depth so that the deepest NFA still fits the
// half-core matching this divisor (24K/Divisor STEs): a single NFA may not
// exceed a half-core on the AP, so depths shrink along with capacities.
func (c Config) depthCap(paperDepth int) int {
	halfCore := 24000 / c.Divisor
	limit := halfCore * 7 / 10
	if limit < 8 {
		limit = 8
	}
	if paperDepth < limit {
		return paperDepth
	}
	return limit
}

// builder generates one application.
type builder func(cfg Config, r *rand.Rand) *App

// registry maps abbreviation to builder; populated by registerAll.
var registry = map[string]builder{}

// tableOrder lists the abbreviations in Table II order (descending state
// count within descending group).
var tableOrder = []string{
	"CAV4k", "HM1500", "HM1000", "Snort_L", "HM500", "SPM", "DS", "ER",
	"RF1", "Snort", "CAV",
	"Brill", "Pro", "Fermi", "PEN", "RF2",
	"TCP", "DS06", "Rg05", "Rg1", "EM", "DS09", "DS03", "HM", "LV", "Bro217",
}

// Names returns the 26 application abbreviations in Table II order.
func Names() []string { return append([]string(nil), tableOrder...) }

// HighMediumNames returns the 16 applications of the high and medium
// groups, the set Figures 10 and 12 and Table IV evaluate.
func HighMediumNames() []string { return append([]string(nil), tableOrder[:16]...) }

// LowNames returns the 10 low-group applications (Figure 13a).
func LowNames() []string { return append([]string(nil), tableOrder[16:]...) }

// HighNames returns the 11 high-group applications (Figure 13b).
func HighNames() []string { return append([]string(nil), tableOrder[:11]...) }

// Build generates one application by abbreviation.
func Build(abbr string, cfg Config) (*App, error) {
	b, ok := registry[abbr]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown application %q (known: %v)", abbr, Names())
	}
	cfg = cfg.withDefaults()
	// Each app gets an independent deterministic stream derived from the
	// seed and its name, so building a subset matches building all.
	seed := cfg.Seed
	for _, c := range abbr {
		seed = seed*131 + int64(c)
	}
	r := rand.New(rand.NewSource(seed))
	app := b(cfg, r)
	// Every generated network passes through the linter's error-severity
	// analyzers (structure, start states, symbol sets); a finding is a
	// generator bug. Warning/info analyzers are left to cmd/aplint.
	if res := lint.Run(app.Net, lint.Options{MinSeverity: lint.Error}); res.Err() != nil {
		return nil, fmt.Errorf("workloads: %s: generated invalid network: %w", abbr, res.Err())
	}
	if cfg.Optimize {
		res, err := rewrite.Rewrite(app.Net, rewrite.Options{})
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: optimize: %w", abbr, err)
		}
		app.Net = res.Net
	}
	return app, nil
}

// BuildAll generates every application in Table II order.
func BuildAll(cfg Config) ([]*App, error) {
	apps := make([]*App, 0, len(tableOrder))
	for _, name := range tableOrder {
		a, err := Build(name, cfg)
		if err != nil {
			return nil, err
		}
		apps = append(apps, a)
	}
	return apps, nil
}

// register installs a builder; called from init functions of the
// per-application files.
func register(abbr string, b builder) {
	if _, dup := registry[abbr]; dup {
		panic("workloads: duplicate registration of " + abbr)
	}
	registry[abbr] = b
}

// checkRegistry verifies every table entry has a builder (test hook).
func checkRegistry() error {
	var missing []string
	for _, n := range tableOrder {
		if _, ok := registry[n]; !ok {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("workloads: missing builders: %v", missing)
	}
	return nil
}
