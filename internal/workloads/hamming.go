package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// Hamming-distance motif finding (ANMLZoo Hamming, and the scaled-up
// HM500/HM1000/HM1500 of Section VI-A), built in the BMIA (Bounded
// Mismatch Identification Automaton) form: the automaton accepts any string
// within Hamming distance d of the pattern. Homogeneity forces separate
// "matched p[i]" and "mismatched p[i]" states per (position, mismatch
// count) cell, which is why ANMLZoo's Hamming NFAs run ~122 states for
// 20-symbol patterns.

// BMIA constructs the bounded-mismatch identification automaton for
// pattern p with distance budget d. Exported for the public facade and the
// motif-finding example.
func BMIA(p []byte, d int) *automata.NFA {
	m := automata.NewNFA()
	l := len(p)
	// matchID[i][j]: consumed i symbols, j mismatches, last symbol matched
	// p[i-1]. mismID[i][j]: same but last symbol mismatched p[i-1].
	matchID := make([][]automata.StateID, l+1)
	mismID := make([][]automata.StateID, l+1)
	for i := 0; i <= l; i++ {
		matchID[i] = make([]automata.StateID, d+1)
		mismID[i] = make([]automata.StateID, d+1)
		for j := 0; j <= d; j++ {
			matchID[i][j] = automata.None
			mismID[i][j] = automata.None
		}
	}
	for i := 1; i <= l; i++ {
		sym := symset.Single(p[i-1])
		neg := sym.Complement()
		maxJ := d
		if i-1 < maxJ {
			maxJ = i - 1
		}
		for j := 0; j <= maxJ; j++ {
			start := automata.StartNone
			if i == 1 {
				start = automata.StartAllInput
			}
			matchID[i][j] = m.Add(sym, start, i == l)
		}
		maxJm := d
		if i < maxJm {
			maxJm = i
		}
		for j := 1; j <= maxJm; j++ {
			start := automata.StartNone
			if i == 1 {
				start = automata.StartAllInput
			}
			mismID[i][j] = m.Add(neg, start, i == l)
		}
	}
	connect := func(from automata.StateID, i, j int) {
		if from == automata.None || i > l {
			return
		}
		if v := matchID[i][j]; v != automata.None {
			m.Connect(from, v)
		}
		if j+1 <= d {
			if v := mismID[i][j+1]; v != automata.None {
				m.Connect(from, v)
			}
		}
	}
	for i := 1; i < l; i++ {
		for j := 0; j <= d; j++ {
			connect(matchID[i][j], i+1, j)
			connect(mismID[i][j], i+1, j)
		}
	}
	return m
}

// hammingDistance returns the paper's distance rule: 2 up to 20% of the
// pattern length.
func hammingDistance(patLen int) int {
	d := patLen / 5
	if d < 2 {
		d = 2
	}
	return d
}

// buildHamming assembles a Hamming application with the given NFA count.
// Motif-finding inputs genuinely contain the motifs: the background is
// random bytes (on which a BMIA's mismatch lattice dies within its distance
// budget, keeping the deep cells cold), while ~15% of the patterns are
// "present motifs" with many mutated instances planted throughout the
// stream. Each instance drives one lattice deep — a short profile misses
// most instance-bearing regions, so the actual run produces the bursty
// intermediate-report stream with a ~99% jump ratio that Table IV shows
// for the HM family.
func buildHamming(name, abbr string, group Group, paperNFAs int, lengths []int) builder {
	return func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(paperNFAs)
		machines := make([]*automata.NFA, nfas)
		patterns := make([][]byte, nfas)
		for i := range machines {
			l := lengths[r.Intn(len(lengths))]
			p := make([]byte, l)
			for k := range p {
				p[k] = byte(r.Intn(256))
			}
			patterns[i] = p
			machines[i] = BMIA(p, hammingDistance(l))
		}
		input := randBytes(r, cfg.InputLen)
		// Present motifs: mutated instances planted across the stream.
		for i := range patterns {
			if i%7 != 0 {
				continue
			}
			d := hammingDistance(len(patterns[i]))
			instances := 40 + r.Intn(60)
			for k := 0; k < instances; k++ {
				p := append([]byte(nil), patterns[i]...)
				for m := 0; m < r.Intn(d+3); m++ {
					p[r.Intn(len(p))] = byte(r.Intn(256))
				}
				plant(r, input, p, 1)
			}
		}
		return &App{
			Name:  name,
			Abbr:  abbr,
			Group: group,
			Net:   automata.NewNetwork(machines...),
			Input: input,
		}
	}
}

func init() {
	// The HM500/1000/1500 scale-ups mix expected pattern lengths 8-30 as
	// the paper describes; the weighted mix averages ~122 states/NFA.
	scaleMix := []int{8, 8, 12, 12, 20, 30}
	register("HM1500", buildHamming("Hamming1500", "HM1500", High, 3000, scaleMix))
	register("HM1000", buildHamming("Hamming1000", "HM1000", High, 2000, scaleMix))
	register("HM500", buildHamming("Hamming500", "HM500", High, 1000, scaleMix))
	// ANMLZoo Hamming uses uniform 20-symbol motifs.
	register("HM", buildHamming("Hamming", "HM", Low, 93, []int{20}))
}
