package workloads

import (
	"testing"

	"sparseap/internal/graph"
	"sparseap/internal/sim"
)

// fastCfg generates small instances for unit tests.
func fastCfg() Config {
	return Config{InputLen: 4096, Divisor: 64, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	if err := checkRegistry(); err != nil {
		t.Fatal(err)
	}
	if len(Names()) != 26 {
		t.Fatalf("Names() = %d entries, want 26", len(Names()))
	}
	if len(HighMediumNames()) != 16 || len(LowNames()) != 10 || len(HighNames()) != 11 {
		t.Fatal("group name lists have wrong sizes")
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("NoSuchApp", fastCfg()); err == nil {
		t.Fatal("unknown app built")
	}
}

func TestBuildAllValidAndGrouped(t *testing.T) {
	apps, err := BuildAll(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 26 {
		t.Fatalf("built %d apps", len(apps))
	}
	groups := map[string]Group{
		"CAV4k": High, "SPM": High, "Brill": Medium, "PEN": Medium,
		"TCP": Low, "LV": Low,
	}
	for _, a := range apps {
		if a.Net.Len() == 0 || len(a.Input) != 4096 {
			t.Errorf("%s: states=%d inputLen=%d", a.Abbr, a.Net.Len(), len(a.Input))
		}
		if g, ok := groups[a.Abbr]; ok && a.Group != g {
			t.Errorf("%s: group = %v, want %v", a.Abbr, a.Group, g)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, abbr := range []string{"CAV", "HM", "Snort", "SPM", "LV"} {
		a1, err := Build(abbr, fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Build(abbr, fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if a1.Net.Len() != a2.Net.Len() {
			t.Errorf("%s: nondeterministic state count %d vs %d", abbr, a1.Net.Len(), a2.Net.Len())
		}
		for i := range a1.Input {
			if a1.Input[i] != a2.Input[i] {
				t.Errorf("%s: nondeterministic input at %d", abbr, i)
				break
			}
		}
		for s := 0; s < a1.Net.Len(); s++ {
			if !a1.Net.States[s].Match.Equal(a2.Net.States[s].Match) {
				t.Errorf("%s: nondeterministic symbol set at state %d", abbr, s)
				break
			}
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	cfg1, cfg2 := fastCfg(), fastCfg()
	cfg2.Seed = 8
	a1, _ := Build("CAV", cfg1)
	a2, _ := Build("CAV", cfg2)
	same := true
	for i := range a1.Input {
		if i < len(a2.Input) && a1.Input[i] != a2.Input[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical inputs")
	}
}

func TestStartOfDataApps(t *testing.T) {
	for _, abbr := range Names() {
		a, err := Build(abbr, fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		wantSOD := abbr == "SPM" || abbr == "Fermi"
		if a.StartOfData != wantSOD {
			t.Errorf("%s: StartOfData = %v, want %v", abbr, a.StartOfData, wantSOD)
		}
		if wantSOD && !a.Net.ComputeStats().StartOfData {
			t.Errorf("%s: network has no start-of-data states", abbr)
		}
	}
}

func TestERHasGiantSCC(t *testing.T) {
	a, err := Build("ER", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	scc := graph.SCC(a.Net)
	maxSize := int32(0)
	for _, s := range scc.Size {
		if s > maxSize {
			maxSize = s
		}
	}
	// Ring of 92 states per NFA must be one SCC.
	if maxSize < 90 {
		t.Fatalf("largest ER SCC = %d, want ring-sized (>=90)", maxSize)
	}
}

func TestLVHasLargeSCCs(t *testing.T) {
	a, err := Build("LV", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	scc := graph.SCC(a.Net)
	maxSize := int32(0)
	for _, s := range scc.Size {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize < 20 {
		t.Fatalf("largest LV SCC = %d, want insertion-ring sized", maxSize)
	}
}

func TestHammingBMIAShape(t *testing.T) {
	m := BMIA([]byte("abcdefgh"), 2) // l=8, d=2
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// States: match sum_{i=1..8} min(i,3) = 1+2+3*6 = 21;
	// mismatch sum_{i=1..8} min(i,2) = 1+2*7 = 15. Total 36.
	if m.Len() != 36 {
		t.Fatalf("BMIA states = %d, want 36", m.Len())
	}
	starts, reports := 0, 0
	for _, s := range m.States {
		if s.Start != 0 {
			starts++
		}
		if s.Report {
			reports++
		}
	}
	if starts != 2 { // match(1,0) and mism(1,1)
		t.Fatalf("BMIA starts = %d, want 2", starts)
	}
	if reports != 5 { // i=8: match j=0..2 (3), mismatch j=1..2 (2)
		t.Fatalf("BMIA reports = %d, want 5", reports)
	}
}

func TestHammingAcceptsWithinDistance(t *testing.T) {
	p := []byte("abcdefgh")
	m := BMIA(p, 2)
	run := func(s []byte) int64 {
		return sim.Run(netOf(m), s, sim.Options{}).NumReports
	}
	if run(p) == 0 {
		t.Error("exact pattern not accepted")
	}
	mut1 := append([]byte(nil), p...)
	mut1[3] = 'X'
	if run(mut1) == 0 {
		t.Error("distance-1 string not accepted")
	}
	mut3 := append([]byte(nil), p...)
	mut3[1], mut3[3], mut3[5] = 'X', 'Y', 'Z'
	if run(mut3) != 0 {
		t.Error("distance-3 string accepted with d=2")
	}
}

func TestSPMAnchoredSemantics(t *testing.T) {
	m := spmNFA([]byte("ab"))
	// "a" then later "b" anywhere matches; order must hold.
	if sim.Run(netOf(m), []byte("xxaxxbxx"), sim.Options{}).NumReports == 0 {
		t.Error("gapped sequence not accepted")
	}
	if sim.Run(netOf(m), []byte("bxxa"), sim.Options{}).NumReports != 0 {
		t.Error("out-of-order sequence accepted")
	}
}

func TestFermiAnchored(t *testing.T) {
	a, err := Build("Fermi", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.Net.States {
		if a.Net.States[s].Start == 1 { // StartAllInput
			t.Fatal("Fermi must not contain all-input starts")
		}
	}
}

func TestPENPhasedInput(t *testing.T) {
	a, err := Build("PEN", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The quiet preamble must enable almost nothing beyond the starts;
	// the body must enable much more.
	pre := a.Input[:len(a.Input)/50]
	hotPre := sim.HotStates(a.Net, pre).Count()
	hotFull := sim.HotStates(a.Net, a.Input).Count()
	if hotFull < 4*hotPre {
		t.Fatalf("PEN phases indistinct: preamble hot %d vs full hot %d", hotPre, hotFull)
	}
}

func TestConfigOptimize(t *testing.T) {
	cfg := fastCfg()
	raw, err := Build("Snort", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Optimize = true
	opt, err := Build("Snort", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Net.Len() >= raw.Net.Len() {
		t.Fatalf("Optimize did not shrink Snort: %d vs %d states", opt.Net.Len(), raw.Net.Len())
	}
	if problems := opt.Net.StructuralProblems(); len(problems) != 0 {
		t.Fatalf("optimized network is unsound: %v", problems)
	}
	// The rewriter certifies report-stream equivalence; here just check
	// the per-position report counts survive the round trip.
	rawRes := sim.Run(raw.Net, raw.Input, sim.Options{CollectReports: true})
	optRes := sim.Run(opt.Net, opt.Input, sim.Options{CollectReports: true})
	if len(rawRes.Reports) != len(optRes.Reports) {
		t.Fatalf("report counts diverge: raw %d vs optimized %d", len(rawRes.Reports), len(optRes.Reports))
	}
}
