package workloads

import "sparseap/internal/automata"

// netOf wraps a single NFA as a network (test helper).
func netOf(m *automata.NFA) *automata.Network { return automata.NewNetwork(m) }
