package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// SPM — sequential pattern mining (ANMLZoo). Each NFA recognizes an
// ordered itemset sequence with arbitrary gaps, anchored at the start of
// the transaction stream: a start-of-data any-symbol self-loop feeds a
// chain of item states interleaved with any-symbol gap self-loops.
//
// Gap states stay enabled once reached, which produces SPM's distinctive
// dynamics: most states are hot (small resource saving; Table IV shows 5
// baseline batches shrinking only to 4), and once a mis-predicted deep gap
// state is enabled in SpAP mode the frontier never empties again, so jump
// operations skip almost nothing (2.1% jump ratio — SpAP streams nearly the
// whole input). We reproduce this by drawing the deepest two items from a
// rare symbol vocabulary that a short profiling prefix usually misses.

func spmNFA(items []byte) *automata.NFA {
	m := automata.NewNFA()
	// Anchored any-symbol self-loop: enabled from position 0 onward.
	root := m.Add(symset.All(), automata.StartOfData, false)
	m.Connect(root, root)
	prev := root
	for i, it := range items {
		last := i == len(items)-1
		item := m.Add(symset.Single(it), automata.StartNone, last)
		m.Connect(prev, item)
		if !last {
			gap := m.Add(symset.All(), automata.StartNone, false)
			m.Connect(item, gap)
			m.Connect(gap, gap)
			prev = gap
		}
	}
	return m
}

func init() {
	register("SPM", func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(5025)
		common := asciiVocab(64)
		rare := make([]byte, 128) // disjoint high-byte vocabulary
		for i := range rare {
			rare[i] = byte(0x80 + i)
		}
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			// 8 items -> 1 + 8 + 7 = 16 states, MaxTopo 16 (Table II).
			items := make([]byte, 8)
			for k := range items {
				items[k] = common[r.Intn(len(common))]
			}
			// 40% of the patterns mine rare items at their tail: those
			// two layers (plus the gap between) are what the profile
			// misses, and the any-symbol gap keeps the SpAP frontier
			// alive once crossed (the 2.1% jump ratio of Table IV).
			if i%5 < 2 {
				items[6] = rare[r.Intn(len(rare))]
				items[7] = rare[r.Intn(len(rare))]
			}
			machines[i] = spmNFA(items)
		}
		// Transactions are mostly common items with ~0.3% rare items.
		input := randText(r, cfg.InputLen, common)
		for i := range input {
			if r.Float64() < 0.003 {
				input[i] = rare[r.Intn(len(rare))]
			}
		}
		return &App{
			Name:        "SPM",
			Abbr:        "SPM",
			Group:       High,
			Net:         automata.NewNetwork(machines...),
			Input:       input,
			StartOfData: true,
		}
	})
}
