package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
)

// Protomata protein-motif matching (ANMLZoo): motifs over the 20-letter
// amino-acid alphabet, mostly short with a long tail (MaxTopo 123).
// PROSITE-style motifs reuse a small set of residue groups ([LIVM],
// [DE], [KRH], ...), modeled here as broad shared class templates whose
// slow decay keeps the partition boundary busy — 90K intermediate reports
// at a 77% jump ratio in Table IV.

var aminoAcids = []byte("ACDEFGHIKLMNPQRSTVWY")

func init() {
	register("Pro", func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(2340)
		templates := classTemplates(r, aminoAcids, 10, 9)
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			l := 10 + r.Intn(14) // ~17 states/NFA
			if i == 0 {
				l = 123 // Table II MaxTopo
			}
			machines[i] = templateChain(r, templates, l)
		}
		return &App{
			Name:  "Protomata",
			Abbr:  "Pro",
			Group: Medium,
			Net:   automata.NewNetwork(machines...),
			Input: randText(r, cfg.InputLen, aminoAcids),
		}
	})
}
