package workloads

import (
	"math/rand"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// PEN — IBM PowerEN pattern set (ANMLZoo). PEN is the paper's cautionary
// tale: its resource savings are good, but its input's early region is
// unrepresentative, so the profiled partition boundary is crossed
// constantly during the actual run. Millions of intermediate reports land
// on the same input positions (5.45M reports with 4.5M enable stalls in
// Table IV), serializing on the single SpAP enable port and producing a net
// slowdown. We reproduce this with a phased input — a quiet preamble
// (which is all a 0.1-1% profile sees) followed by an active body — and
// rules whose mid-depth states accept broad classes of the active
// vocabulary.

func penNFA(r *rand.Rand, trigger []byte, active []byte, length int) *automata.NFA {
	sets := make([]symset.Set, length)
	sets[0] = symset.Single(trigger[r.Intn(len(trigger))])
	for i := 1; i < length; i++ {
		var s symset.Set
		// Very broad classes (~80% of the body vocabulary): pulses survive
		// layer after layer, so the mis-predicted cut is crossed
		// constantly — the Table IV report flood.
		for _, idx := range r.Perm(len(active))[:len(active)*4/5] {
			s.Add(active[idx])
		}
		sets[i] = s
	}
	return chainNFA(sets, automata.StartAllInput)
}

func init() {
	register("PEN", func(cfg Config, r *rand.Rand) *App {
		nfas := cfg.scaled(2857)
		quiet := asciiVocab(16)       // preamble vocabulary
		active := asciiVocab(40)[16:] // disjoint body vocabulary
		machines := make([]*automata.NFA, nfas)
		for i := range machines {
			l := 10 + r.Intn(9) // ~14 states/NFA
			if i == 0 {
				l = 44 // Table II MaxTopo
			}
			machines[i] = penNFA(r, active, active, l)
		}
		// 2% quiet preamble (covers the 0.1% and 1% profiling prefixes),
		// then the active body.
		input := randText(r, cfg.InputLen, active)
		preamble := cfg.InputLen / 50
		copy(input, randText(r, preamble, quiet))
		return &App{
			Name:  "PowerEN",
			Abbr:  "PEN",
			Group: Medium,
			Net:   automata.NewNetwork(machines...),
			Input: input,
		}
	})
}
