package serve

import "sparseap/internal/spap"

// tenant is the server-resident state of one tenant: its token bucket,
// live-session count, and position on the guard-escalation ladder. One
// tenant's storm or quota exhaustion never touches a neighbour's state —
// isolation is per-struct, not per-lock-ordering.
type tenant struct {
	name   string
	bucket bucket
	active int
	ladder *spap.Ladder
}

// tenantLocked returns (creating on first sight) the tenant record.
// Caller holds s.mu.
func (s *Server) tenantLocked(name string) *tenant {
	t := s.tenants[name]
	if t == nil {
		t = &tenant{
			name:   name,
			bucket: bucket{rate: s.cfg.RatePerSec, burst: s.cfg.Burst},
			ladder: spap.NewLadder(s.cfg.Ladder),
		}
		s.tenants[name] = t
	}
	return t
}

// tenantOf returns the tenant record, taking the lock.
func (s *Server) tenantOf(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantLocked(name)
}

// tenantName extracts the tenant identity from a request header,
// defaulting to "anon".
func tenantName(h interface{ Get(string) string }) string {
	if t := h.Get("X-Tenant"); t != "" {
		return t
	}
	return "anon"
}
