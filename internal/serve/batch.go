// Batched one-shot matching: concurrent /v1/match calls for the same
// resident application coalesce into multi-stream batch ticks.
//
// apserve's match traffic is exactly the shape sim.BatchEngine amortizes
// — many independent bounded inputs against one resident image — so when
// batching is enabled (Config.BatchStreams > 1) each application gets a
// batcher: a single worker goroutine that admits requests into lanes of
// one batch engine and lockstep-ticks them together, walking the image
// once per symbol position for the whole batch.
//
// Latency guarantees at low concurrency:
//
//   - a lone request waits at most Config.BatchWindow (default 500 µs)
//     for company before its batch starts ticking;
//   - late arrivals join free lanes of a batch already in flight instead
//     of waiting for it to finish;
//   - each lane carries its request's context: an expired deadline
//     retires that lane mid-batch without stalling its neighbours.
//
// Admission control is untouched: every request passes the tenant token
// bucket, concurrency caps, and the global memory budget (charged at the
// batch engine's per-lane share) before it reaches the batcher, so the
// 429/503 shed guarantees hold identically with batching on.
package serve

import (
	"context"
	"errors"
	"math/bits"
	"net/http"
	"time"

	"sparseap/internal/sim"
)

const (
	// defaultBatchWindow bounds the p99 cost a lone request pays for the
	// chance to be coalesced.
	defaultBatchWindow = 500 * time.Microsecond
	// batchJoinCheckTicks is how many lockstep ticks pass between
	// deadline checks and late-join polls — a few microseconds of
	// streaming, far below any request deadline.
	batchJoinCheckTicks = 256
)

// batchWidthBounds buckets the coalesced-streams-per-batch histogram.
var batchWidthBounds = []int64{1, 2, 4, 8, 16, 32, 64}

// batchWaitBounds buckets the admission-window wait in nanoseconds
// (1 µs .. 100 ms).
var batchWaitBounds = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

// errServerStopped refuses batched work when the server is shutting
// down; matchError maps it to 503 so clients retry the next process.
var errServerStopped = errors.New("serve: server stopped")

// batchReq is one match request waiting for (or riding in) a batch.
type batchReq struct {
	input []byte
	ctx   context.Context
	enq   time.Time
	done  chan batchResult // buffered(1); the worker never blocks on it
}

// batchResult is the worker's answer.
type batchResult struct {
	reports []sim.Report
	num     int64
	err     error
}

// batcher coalesces one application's match requests. One worker
// goroutine owns the batch engine; handlers only enqueue and wait.
type batcher struct {
	s  *Server
	a  *app
	ch chan *batchReq
}

// batchingEnabled reports whether /v1/match routes through batchers.
func (s *Server) batchingEnabled() bool { return s.cfg.BatchStreams > 1 }

// batcherFor returns the app's batcher, starting its worker on first
// use; nil once the server has stopped.
func (s *Server) batcherFor(a *app) *batcher {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batchStopped {
		return nil
	}
	bt := s.batchers[a.name]
	if bt == nil {
		bt = &batcher{s: s, a: a, ch: make(chan *batchReq, sim.MaxLanes)}
		s.batchers[a.name] = bt
		s.batchWG.Add(1)
		go bt.run()
	}
	return bt
}

// stopBatchers terminates every batcher worker and waits for them to
// unwind. Called after Drain has unwound all sessions (no requests can
// be in flight) and on Abort (in-flight lanes answer errServerStopped).
func (s *Server) stopBatchers() {
	s.mu.Lock()
	if !s.batchStopped {
		s.batchStopped = true
		close(s.batchStop)
	}
	s.mu.Unlock()
	s.batchWG.Wait()
}

// batchMatch runs one admitted input through the app's batcher and waits
// for its lane to retire.
func (s *Server) batchMatch(ctx context.Context, a *app, input []byte) ([]sim.Report, int64, error) {
	bt := s.batcherFor(a)
	if bt == nil {
		return nil, 0, errServerStopped
	}
	req := &batchReq{input: input, ctx: ctx, enq: s.cfg.Now(), done: make(chan batchResult, 1)}
	select {
	case bt.ch <- req:
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	case <-s.batchStop:
		return nil, 0, errServerStopped
	}
	select {
	case res := <-req.done:
		return res.reports, res.num, res.err
	case <-ctx.Done():
		// The worker sees the expired context at its next deadline check
		// and retires the lane; the buffered done channel absorbs its
		// late answer.
		return nil, 0, ctx.Err()
	}
}

// run is the worker loop: idle between batches, one runBatch per burst.
func (bt *batcher) run() {
	s := bt.s
	defer s.batchWG.Done()
	for {
		select {
		case <-s.batchStop:
			bt.refusePending()
			return
		case req := <-bt.ch:
			bt.runBatch(req)
		}
	}
}

// refusePending answers every queued request with errServerStopped.
func (bt *batcher) refusePending() {
	for {
		select {
		case req := <-bt.ch:
			req.done <- batchResult{err: errServerStopped}
		default:
			return
		}
	}
}

// runBatch coalesces first plus whatever arrives within the admission
// window (and late arrivals into freed lanes) and ticks them to
// completion.
func (bt *batcher) runBatch(first *batchReq) {
	s := bt.s
	maxLanes := s.cfg.BatchStreams
	if maxLanes > sim.MaxLanes {
		maxLanes = sim.MaxLanes
	}
	be := bt.a.img.AcquireBatch(sim.BatchOptions{CollectReports: true})
	defer be.Release()
	var reqs [sim.MaxLanes]*batchReq
	occupied := 0
	joined := int64(0)
	waitHist := s.reg.Histogram("serve_batch_wait_ns", batchWaitBounds)
	join := func(r *batchReq) {
		if err := r.ctx.Err(); err != nil {
			r.done <- batchResult{err: err}
			return
		}
		lane, ok := be.Join(r.input)
		if !ok {
			r.done <- batchResult{err: errServerStopped}
			return
		}
		joined++
		waitHist.Observe(s.cfg.Now().Sub(r.enq).Nanoseconds())
		if be.Done(lane) { // empty input: completes without ticking
			r.done <- batchResult{}
			be.Free(lane)
			return
		}
		reqs[lane] = r
		occupied++
	}
	finish := func(lane int, res batchResult) {
		req := reqs[lane]
		reqs[lane] = nil
		occupied--
		be.Free(lane)
		req.done <- res
	}

	join(first)
	if window := s.cfg.BatchWindow; occupied > 0 && window > 0 {
		timer := time.NewTimer(window)
	gather:
		for occupied < maxLanes {
			select {
			case r := <-bt.ch:
				join(r)
			case <-timer.C:
				break gather
			case <-s.batchStop:
				break gather
			}
		}
		timer.Stop()
	}

	ticks := 0
	for be.Running() > 0 {
		for m := be.Tick(); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			reports := append([]sim.Report(nil), be.LaneReports(lane)...)
			finish(lane, batchResult{reports: reports, num: be.LaneNumReports(lane)})
		}
		if ticks++; ticks%batchJoinCheckTicks != 0 {
			continue
		}
		if s.killed() {
			for lane, req := range reqs {
				if req != nil {
					be.Retire(lane)
					finish(lane, batchResult{err: errServerStopped})
				}
			}
			break
		}
		// Per-lane deadlines: an expired request retires alone.
		for lane, req := range reqs {
			if req != nil && req.ctx.Err() != nil {
				err := req.ctx.Err()
				be.Retire(lane)
				finish(lane, batchResult{err: err})
			}
		}
		// Late arrivals fill freed lanes without waiting for this batch.
	late:
		for occupied < maxLanes {
			select {
			case r := <-bt.ch:
				join(r)
			default:
				break late
			}
		}
	}
	if joined > 0 {
		s.reg.Histogram("serve_batch_width", batchWidthBounds).Observe(joined)
		s.reg.Counter("serve_batch_runs").Inc()
	}
}

// batchMatchError is matchError's extension for the batched path.
func batchStatus(err error) (int, bool) {
	if errors.Is(err, errServerStopped) {
		return http.StatusServiceUnavailable, true
	}
	return 0, false
}
