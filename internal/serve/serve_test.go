package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparseap/internal/automata"
	"sparseap/internal/checkpoint"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
	"sparseap/internal/symset"
	"sparseap/internal/testleak"
)

// testNet builds a small network that reports often: an all-input start
// chain over 'a'..'z' so reports appear throughout the stream.
func testNet(t *testing.T) *automata.Network {
	t.Helper()
	nfa := automata.NewNFA()
	prev := nfa.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	for i := 0; i < 6; i++ {
		s := nfa.Add(symset.Range('a', 'z'), automata.StartNone, i == 5)
		nfa.Connect(prev, s)
		prev = s
	}
	return automata.NewNetwork(nfa)
}

func testInput(n int) []byte {
	in := make([]byte, n)
	for i := range in {
		in[i] = byte('a' + (i*7)%26)
	}
	return in
}

// harness is one live test server instance.
type harness struct {
	s  *Server
	ts *httptest.Server
}

func startServer(t *testing.T, cfg Config, net *automata.Network) *harness {
	t.Helper()
	s := New(cfg)
	if err := s.AddApp("test", net, "test/v1"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &harness{s: s, ts: ts}
}

func expectedReports(net *automata.Network, input []byte) []sim.Report {
	return sim.Run(net, input, sim.Options{CollectReports: true}).Reports
}

func TestStreamEndToEnd(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	input := testInput(32768)
	h := startServer(t, Config{}, net)

	cl := &Client{URL: func() string { return h.ts.URL }, Tenant: "t0"}
	res, err := cl.Stream(context.Background(), "test", input)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameReports(res.Reports, expectedReports(net, input)); err != nil {
		t.Fatalf("stream diverged from uninterrupted run: %v", err)
	}
	snap := h.s.Registry().Snapshot()
	if snap[`serve_sessions_started{tenant="t0"}`] != 1 {
		t.Fatalf("sessions_started = %v", snap)
	}
	if snap[`serve_sessions_completed{tenant="t0"}`] != 1 {
		t.Fatalf("sessions_completed = %v", snap)
	}
}

// TestStreamResumeAfterAbort is the in-package kill/resume cell: the
// server is aborted (crash semantics, no saves) mid-stream, a second
// server over the same store directory takes over, and the client's
// assembled report stream must be bit-identical with exactly-once
// delivery.
func TestStreamResumeAfterAbort(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	input := testInput(1 << 17)
	dir := t.TempDir()

	mk := func() (*harness, error) {
		store, err := checkpoint.Open(dir)
		if err != nil {
			return nil, err
		}
		return startServer(t, Config{Store: store, Every: 1024}, net), nil
	}
	h1, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	var url atomic.Value
	url.Store(h1.ts.URL)

	cl := &Client{
		URL:    func() string { return url.Load().(string) },
		Tenant: "t0",
		Chunk:  512,
		Pace:   200 * time.Microsecond, // stretch the stream past the kill
	}

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(30 * time.Millisecond)
		h2, err := mk()
		if err != nil {
			t.Error(err)
			return
		}
		url.Store(h2.ts.URL) // repoint before the old server dies
		h1.s.Abort()
		h1.ts.CloseClientConnections()
	}()

	res, err := cl.Stream(context.Background(), "test", input)
	<-killed
	if err != nil {
		t.Fatal(err)
	}
	if err := sameReports(res.Reports, expectedReports(net, input)); err != nil {
		t.Fatalf("resumed stream not bit-identical: %v", err)
	}
	if cl.Retries.Load() == 0 {
		t.Fatal("kill did not force a retry — the chaos cell tested nothing")
	}
}

// TestDrainSuspendsAndResumes drains server one mid-stream (graceful
// SIGTERM path: checkpoint + suspend) and completes the session against
// server two.
func TestDrainSuspendsAndResumes(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	input := testInput(1 << 17)
	dir := t.TempDir()

	store1, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1 := startServer(t, Config{Store: store1, Every: 1024}, net)
	var url atomic.Value
	url.Store(h1.ts.URL)
	cl := &Client{
		URL:    func() string { return url.Load().(string) },
		Tenant: "t0",
		Chunk:  512,
		Pace:   200 * time.Microsecond,
	}

	drained := make(chan error, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		store2, err := checkpoint.Open(dir)
		if err != nil {
			drained <- err
			return
		}
		h2 := startServer(t, Config{Store: store2, Every: 1024}, net)
		url.Store(h2.ts.URL)
		drained <- h1.s.Drain(5 * time.Second)
	}()

	res, err := cl.Stream(context.Background(), "test", input)
	if err != nil {
		t.Fatal(err)
	}
	if derr := <-drained; derr != nil {
		t.Fatalf("drain: %v", derr)
	}
	if err := sameReports(res.Reports, expectedReports(net, input)); err != nil {
		t.Fatalf("post-drain stream not bit-identical: %v", err)
	}
	snap := h1.s.Registry().Snapshot()
	if snap[`serve_sessions_suspended{tenant="t0"}`] == 0 && cl.Resumes.Load() == 0 {
		t.Fatalf("drain raced past the stream: suspended=%v resumes=%d (stream too fast for the test)",
			snap[`serve_sessions_suspended{tenant="t0"}`], cl.Resumes.Load())
	}
}

// TestDrainWithoutStoreRestarts drains a server that has no checkpoint
// store mid-stream. Suspend is meaningless without durable state, so the
// server must send a restart record and the client must rebuild the
// stream from scratch against the next server — still exactly-once.
func TestDrainWithoutStoreRestarts(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	input := testInput(1 << 17)
	h1 := startServer(t, Config{}, net)
	var url atomic.Value
	url.Store(h1.ts.URL)
	cl := &Client{
		URL:    func() string { return url.Load().(string) },
		Tenant: "t0",
		Chunk:  512,
		Pace:   200 * time.Microsecond,
	}

	drained := make(chan error, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		h2 := startServer(t, Config{}, net)
		url.Store(h2.ts.URL)
		drained <- h1.s.Drain(5 * time.Second)
	}()

	res, err := cl.Stream(context.Background(), "test", input)
	if err != nil {
		t.Fatal(err)
	}
	if derr := <-drained; derr != nil {
		t.Fatalf("drain: %v", derr)
	}
	if err := sameReports(res.Reports, expectedReports(net, input)); err != nil {
		t.Fatalf("post-drain stream not bit-identical: %v", err)
	}
	snap := h1.s.Registry().Snapshot()
	if snap[`serve_sessions_restarted{tenant="t0"}`] == 0 && cl.Restarts.Load() == 0 {
		t.Fatalf("drain raced past the stream: restarted=%v restarts=%d (stream too fast for the test)",
			snap[`serve_sessions_restarted{tenant="t0"}`], cl.Restarts.Load())
	}
}

// TestStreamClientDiscardsTruncatedLine kills the connection after a
// report line cut mid-number — exactly what a SIGKILLed server leaves in
// the socket. The client must discard the unterminated fragment (which
// still has three fields and would parse as a plausible-looking report)
// and report the attempt broken so the resume replays it in full.
func TestStreamClientDiscardsTruncatedLine(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, buf, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		// "r 1234 567\n" truncated by the kill; close-delimited body so
		// the client sees EOF right after the fragment, no newline ever.
		buf.WriteString("HTTP/1.1 200 OK\r\nX-Resume-Pos: 0\r\nConnection: close\r\n\r\n" +
			"r 10 1\nr 1234 56")
		buf.Flush()
		conn.Close()
	}))
	defer ts.Close()

	cl := &Client{URL: func() string { return ts.URL }}
	ar := cl.streamAttempt(context.Background(), ts.URL, "test", newSessionID(), testInput(64), nil, false, false)
	if ar.out != attemptBroken {
		t.Fatalf("truncated stream outcome = %d, want attemptBroken", ar.out)
	}
	if len(ar.have) != 1 || ar.have[0] != (sim.Report{Pos: 10, State: 1}) {
		t.Fatalf("truncated fragment parsed as a report: %+v", ar.have)
	}
}

// TestAdmissionGlobalSessionCap holds one stream open and requires the
// next request to shed 503 with a Retry-After header.
func TestAdmissionGlobalSessionCap(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	h := startServer(t, Config{MaxSessions: 1}, net)

	// Hold a stream open: send headers plus a little data, keep the body
	// pipe open so the session stays admitted.
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/stream?app=test", pr)
	req.Header.Set("X-Tenant", "holder")
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	pw.Write(testInput(64))
	var resp *http.Response
	select {
	case resp = <-respCh:
		defer resp.Body.Close()
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("stream request did not answer")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("holder stream status = %d", resp.StatusCode)
	}

	// Second admission must shed with 503 + Retry-After.
	mreq, _ := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/match?app=test", strings.NewReader("abc"))
	mreq.Header.Set("X-Tenant", "other")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d, want 503", mresp.StatusCode)
	}
	if mresp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	pw.Close()

	snap := h.s.Registry().Snapshot()
	if snap[`serve_shed{tenant="other"}`] != 1 || snap["serve_shed_sessions"] != 1 {
		t.Fatalf("shed counters = %v", snap)
	}
}

// TestAdmissionTenantRate exhausts one tenant's token bucket and checks
// the refusal is 429 and scoped to that tenant.
func TestAdmissionTenantRate(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	now := time.Unix(1000, 0)
	h := startServer(t, Config{
		RatePerSec: 0.001, Burst: 2,
		Now: func() time.Time { return now }, // frozen clock: no refill
	}, net)

	match := func(tenant string) int {
		req, _ := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/match?app=test", strings.NewReader("abc"))
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := match("noisy"); got != http.StatusOK {
		t.Fatalf("first request = %d", got)
	}
	if got := match("noisy"); got != http.StatusOK {
		t.Fatalf("second request (burst) = %d", got)
	}
	if got := match("noisy"); got != http.StatusTooManyRequests {
		t.Fatalf("third request = %d, want 429", got)
	}
	// A different tenant is untouched by the noisy neighbour.
	if got := match("quiet"); got != http.StatusOK {
		t.Fatalf("other tenant = %d, want 200", got)
	}
}

// TestStreamDeadlineSuspends stalls a stream past its X-Deadline-Ms and
// requires the server to checkpoint, suspend, and count the cancel.
func TestStreamDeadlineSuspends(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := startServer(t, Config{Store: store, Every: 256}, net)

	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/stream?app=test", pr)
	req.Header.Set("X-Tenant", "t0")
	req.Header.Set("X-Deadline-Ms", "100")
	respCh := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			respCh <- resp
		} else {
			close(respCh)
		}
	}()
	pw.Write(testInput(1024))
	// ... and stall: the deadline fires while the server waits for more.
	resp, ok := <-respCh
	if !ok {
		t.Fatal("request failed")
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	pw.Close()
	if !strings.Contains(string(body), "suspend ") {
		t.Fatalf("deadline expiry did not suspend; body:\n%s", string(body))
	}
	snap := h.s.Registry().Snapshot()
	if snap[`serve_deadline_cancels{tenant="t0"}`] == 0 {
		t.Fatalf("deadline cancel not counted: %v", snap)
	}
}

// TestDegradationLadderRouting demotes a tenant's ladder and checks the
// match path routes it to the baseline kernel with identical reports,
// then promotes it back through a clean probe.
func TestDegradationLadderRouting(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	input := testInput(8192)
	h := startServer(t, Config{Ladder: spap.LadderConfig{TripLimit: 1, Cooldown: 1}}, net)

	match := func(tenant string) *matchResponse {
		cl := &Client{URL: func() string { return h.ts.URL }, Tenant: tenant}
		m, shed, _, err := cl.Match(context.Background(), "test", input)
		if err != nil || shed {
			t.Fatalf("match: shed=%v err=%v", shed, err)
		}
		return m
	}

	if m := match("victim"); m.Mode != "guarded" {
		t.Fatalf("healthy tenant mode = %q", m.Mode)
	}
	want := match("victim").NumReports

	// Force a demotion as if the tenant's inputs kept tripping the guard.
	ten := h.s.tenantOf("victim")
	ten.ladder.ObserveGuarded(spap.ModeGuarded, true)
	if ten.ladder.Mode() != spap.ModeBaseline {
		t.Fatal("setup: tenant not demoted")
	}

	m := match("victim")
	if m.Mode != "baseline" {
		t.Fatalf("demoted tenant mode = %q, want baseline", m.Mode)
	}
	if m.NumReports != want {
		t.Fatalf("baseline reports = %d, guarded = %d — degradation changed answers", m.NumReports, want)
	}
	snap := h.s.Registry().Snapshot()
	if snap[`serve_degraded{tenant="victim"}`] == 0 {
		t.Fatalf("degraded not counted: %v", snap)
	}

	// Cooldown of one request has passed; the next is the probe, and a
	// clean probe promotes the tenant back to guarded execution.
	m = match("victim")
	if m.Mode != "probe" {
		t.Fatalf("post-cooldown mode = %q, want probe", m.Mode)
	}
	if ten.ladder.Mode() != spap.ModeGuarded {
		t.Fatalf("clean probe did not promote: %v", ten.ladder.Mode())
	}
	// An unrelated tenant was never degraded.
	if m := match("innocent"); m.Mode != "guarded" {
		t.Fatalf("unrelated tenant mode = %q", m.Mode)
	}
}

// TestMetricsEndpoint checks the Prometheus text exposition.
func TestMetricsEndpoint(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	h := startServer(t, Config{}, net)
	cl := &Client{URL: func() string { return h.ts.URL }, Tenant: "t0"}
	if _, err := cl.Stream(context.Background(), "test", testInput(4096)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`serve_sessions_started{tenant="t0"} 1`,
		`serve_sessions_completed{tenant="t0"} 1`,
		"serve_reports_delivered",
		"serve_admission_worstcase_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestAdmissionChargesWorstCase checks that sessions are charged the
// certified worst-case engine footprint: the gauge reflects the charge
// while a session is live and falls back to zero after release, and the
// bounded charge never exceeds the unconditional full-state estimate.
func TestAdmissionChargesWorstCase(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	h := startServer(t, Config{}, net)
	a := h.s.lookupApp("test")
	want := a.engineCost()
	if want <= sessionOverheadBytes {
		t.Fatalf("engineCost = %d, want a positive engine charge", want)
	}
	if nominal := a.img.EngineFootprint() + sessionOverheadBytes; want > nominal {
		t.Fatalf("worst-case charge %d exceeds the full-state estimate %d", want, nominal)
	}
	adm := h.s.admit("t0", a.engineCost())
	if !adm.ok {
		t.Fatal("admit refused an idle server")
	}
	if got := h.s.Registry().Gauge("serve_admission_worstcase_bytes").Value(); got != want {
		t.Fatalf("gauge = %d during session, want %d", got, want)
	}
	adm.release()
	if got := h.s.Registry().Gauge("serve_admission_worstcase_bytes").Value(); got != 0 {
		t.Fatalf("gauge = %d after release, want 0", got)
	}
}

// TestHealthzDrain checks /healthz flips to 503 once draining.
func TestHealthzDrain(t *testing.T) {
	net := testNet(t)
	h := startServer(t, Config{}, net)
	get := func() int {
		resp, err := http.Get(h.ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("healthy healthz = %d", got)
	}
	if err := h.s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", got)
	}
	// New admissions shed while draining.
	mreq, _ := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/match?app=test", strings.NewReader("abc"))
	resp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("match while draining = %d, want 503", resp.StatusCode)
	}
}

// TestOverloadShedsNotFails saturates a tiny server and requires every
// request to either succeed or shed explicitly — never fail.
func TestOverloadShedsNotFails(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	h := startServer(t, Config{MaxSessions: 2, MaxPerTenant: 1}, net)
	input := testInput(32768)

	want := expectedReports(net, input)
	const n = 24
	type outcome struct {
		out attemptOutcome
		err error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			// Single paced stream attempt, no retry: the session blocks
			// on I/O between chunks, so the burst overlaps even on one
			// CPU and the concurrency caps genuinely engage.
			cl := &Client{URL: func() string { return h.ts.URL }, Tenant: fmt.Sprintf("t%d", i%4),
				Chunk: 1024, Pace: 500 * time.Microsecond}
			ar := cl.streamAttempt(context.Background(), h.ts.URL, "test", newSessionID(), input, nil, false, false)
			out, err := ar.out, ar.err
			if out == attemptDone && err == nil {
				err = sameReports(ar.have, want)
			}
			results <- outcome{out: out, err: err}
		}(i)
	}
	var ok, shed int
	for i := 0; i < n; i++ {
		r := <-results
		switch {
		case r.out == attemptShed:
			shed++
		case r.out == attemptDone && r.err == nil:
			ok++
		default:
			t.Fatalf("accepted stream failed (outcome %d): %v", r.out, r.err)
		}
	}
	if shed == 0 {
		t.Fatalf("overload produced no sheds (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatal("overload accepted nothing")
	}
}

// TestSessionIDValidation rejects store-hostile session IDs.
func TestSessionIDValidation(t *testing.T) {
	net := testNet(t)
	h := startServer(t, Config{}, net)
	req, _ := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/stream?app=test", strings.NewReader("abc"))
	req.Header.Set("X-Session", "../../etc/passwd")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hostile session ID status = %d, want 400", resp.StatusCode)
	}
}
