// Package serve is the multi-tenant streaming match service: the
// long-lived server that turns the library into a system serving many
// concurrent input streams against many resident automata.
//
// Robustness is the headline, and every mechanism built in the earlier
// layers plugs in here:
//
//   - compiled sim.Images are cached once per application and shared
//     read-only across every tenant's sessions (they are immutable and
//     pooled-engine-ready);
//   - admission control sheds load explicitly — per-tenant token buckets
//     and concurrency caps answer 429, global session and memory budgets
//     answer 503, both with Retry-After — so an accepted stream never
//     fails for lack of resources;
//   - every session checkpoints through internal/checkpoint: a killed
//     server restarts, the client retries with backoff, and the resumed
//     session delivers a report stream bit-identical to an uninterrupted
//     run with exactly-once delivery (see session.go for the windowed
//     resume protocol);
//   - SIGTERM drains gracefully: in-flight sessions are checkpointed and
//     suspended, clients reconnect to the next process;
//   - guard-tripped tenants degrade down a per-tenant ladder from SpAP
//     execution to the baseline kernel instead of failing (internal/spap
//     Ladder), and recover via cooldown probes;
//   - request deadlines propagate from the X-Deadline-Ms header through
//     context into every executor.
//
// The wire protocol is deliberately plain: HTTP with full-duplex bodies
// (HTTP/2 when the caller configures TLS, HTTP/1.1 full duplex
// otherwise), newline-framed text reports. See DESIGN.md §12.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/checkpoint"
	"sparseap/internal/hotcold"
	"sparseap/internal/metrics"
	"sparseap/internal/replica"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
	"sparseap/internal/worstcase"
)

// Config tunes the server. The zero value is usable for tests; New fills
// defaults.
type Config struct {
	// Store is the durable checkpoint store backing session resume; nil
	// disables resumability (sessions still stream, but a crash loses
	// them). A replica.Store here extends the delivery barrier across
	// nodes: reports release only once the covering window is durable on
	// the replication quorum, so a client can fail over to a follower
	// without replay divergence.
	Store checkpoint.Store
	// Every is the checkpoint capture interval in input symbols
	// (default 8192). It is also the report-delivery granularity: reports
	// are released to the client only once the checkpoint covering them
	// is durable, which is what makes exactly-once delivery possible
	// across a kill.
	Every int64

	// MaxSessions caps globally concurrent sessions (streams + matches);
	// default 256. Excess is shed with 503.
	MaxSessions int
	// MaxPerTenant caps concurrent sessions per tenant; default 32.
	// Excess is shed with 429.
	MaxPerTenant int
	// RatePerSec is the per-tenant token-bucket refill rate in sessions
	// per second (default 64).
	RatePerSec float64
	// Burst is the per-tenant token-bucket capacity (default 2×rate).
	Burst float64
	// MemBudget bounds resident bytes (shared images + per-session
	// engine estimates); 0 means unlimited. Excess admissions shed 503.
	MemBudget int64
	// MaxMatchBytes bounds a /v1/match request body (default 8 MiB).
	MaxMatchBytes int64

	// Capacity is the AP half-core capacity used for SpAP partitions
	// (default ap.DefaultConfig().Capacity).
	Capacity int
	// Guard configures the per-request adaptive guard; zero value takes
	// spap.DefaultGuard.
	Guard spap.Guard
	// Ladder configures per-tenant guard escalation.
	Ladder spap.LadderConfig

	// BatchStreams enables batched one-shot matching when > 1: concurrent
	// /v1/match requests for the same application coalesce into one
	// multi-stream batch-kernel walk of up to this many lanes (capped at
	// sim.MaxLanes). 0 or 1 keeps the solo per-request path.
	BatchStreams int
	// BatchWindow is how long a lone match request waits for company
	// before its batch starts ticking (default 500µs; only meaningful
	// with BatchStreams > 1).
	BatchWindow time.Duration

	// Peers are base URLs of sibling serve nodes (e.g.
	// "http://10.0.0.2:8425"): migration targets for /v1/migrate and
	// DrainMigrate, health-watched with hysteresis (see cluster.go). An
	// empty list disables the peer watcher.
	Peers []string
	// ProbeInterval is how often peers are health-probed (default 500ms).
	ProbeInterval time.Duration

	// Registry receives the serve-path counters; New creates one when
	// nil.
	Registry *metrics.Registry

	// Now is the clock (tests inject a fake one for token buckets).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = checkpoint.DefaultEvery
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxPerTenant <= 0 {
		c.MaxPerTenant = 32
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 64
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.RatePerSec
	}
	if c.MaxMatchBytes <= 0 {
		c.MaxMatchBytes = 8 << 20
	}
	if c.Capacity <= 0 {
		c.Capacity = ap.DefaultConfig().Capacity
	}
	if c.BatchStreams > sim.MaxLanes {
		c.BatchStreams = sim.MaxLanes
	}
	if c.BatchStreams > 1 && c.BatchWindow <= 0 {
		c.BatchWindow = defaultBatchWindow
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// app is one resident application: the network, its shared compiled
// image, and the lazily built SpAP partition.
type app struct {
	name        string
	net         *automata.Network
	img         *sim.Image
	fingerprint string

	once sync.Once
	part *hotcold.Partition
	perr error

	wcOnce  sync.Once
	wcBound int // certified worst-case frontier width
}

// frontierBound returns (computing once) the certified worst-case
// frontier width of the application, the size admission charges engines
// at. The k-gram refinement is skipped: layers 1–2 are fast and sound,
// and admission only loses a little headroom to the looser bound.
func (a *app) frontierBound() int {
	a.wcOnce.Do(func() {
		a.wcBound = worstcase.Analyze(a.net, worstcase.Config{NoGram: true}).FrontierBound
	})
	return a.wcBound
}

// engineCost is the admission charge of one solo-engine session: the
// engine sized for the certified worst-case frontier instead of the
// unconditional full-state estimate. The charge stays sound under
// adversarial input — no frontier can exceed the static bound — while
// admitting more sessions whenever the bound is far below the state
// count.
func (a *app) engineCost() int64 {
	return a.img.EngineFootprintBounded(a.frontierBound()) + sessionOverheadBytes
}

// laneCost is the admission charge of one batched match: the per-lane
// slice of a batch engine sized for the certified worst-case frontier.
func (a *app) laneCost() int64 {
	return a.img.BatchLaneFootprintBounded(a.frontierBound()) + sessionOverheadBytes
}

// partition builds (once) the static hot/cold partition the SpAP match
// path runs on.
func (a *app) partition(capacity int) (*hotcold.Partition, error) {
	a.once.Do(func() {
		a.part, a.perr = hotcold.BuildWithStrategy(a.net, hotcold.StrategyStatic,
			hotcold.StrategyInput{}, hotcold.Options{Capacity: capacity})
	})
	return a.part, a.perr
}

// Server is the multi-tenant streaming match service.
type Server struct {
	cfg   Config
	reg   *metrics.Registry
	apCfg ap.Config

	mu        sync.Mutex
	apps      map[string]*app
	tenants   map[string]*tenant
	active    map[string]*session // live stream sessions by ID
	nSess     int                 // global concurrent sessions (streams + matches)
	memUsed   int64               // per-session dynamic bytes admitted
	memImages int64               // resident shared images
	draining  bool

	killCh chan struct{} // closed by Abort: simulated crash for chaos tests
	idle   sync.Cond     // broadcast when nSess drops (Drain waits on it)

	batchers     map[string]*batcher // per-app match batchers (see batch.go)
	batchStop    chan struct{}       // closed by stopBatchers
	batchStopped bool
	batchWG      sync.WaitGroup

	peers       []*peer       // watched migration targets (see cluster.go)
	peerStop    chan struct{} // closed by stopPeers
	peerStopped bool
	peerWG      sync.WaitGroup
	peerNext    int // round-robin cursor for upPeer

	hsMu sync.Mutex
	hs   *http.Server
}

// New builds a server with no resident applications; add them with
// AddApp.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	apCfg := ap.DefaultConfig()
	apCfg.Capacity = cfg.Capacity
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		apCfg:   apCfg,
		apps:    map[string]*app{},
		tenants: map[string]*tenant{},
		active:  map[string]*session{},
		killCh:  make(chan struct{}),

		batchers:  map[string]*batcher{},
		batchStop: make(chan struct{}),
		peerStop:  make(chan struct{}),
	}
	s.idle.L = &s.mu
	s.startPeerWatch()
	return s
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// AddApp makes an application resident: its execution image is compiled
// now and shared by every session. The fingerprint identifies the exact
// build (generator config, seed, optimization) so a resumed session can
// refuse to splice state from a different build.
func (s *Server) AddApp(name string, net *automata.Network, fingerprint string) error {
	img := sim.ImageOf(net)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.apps[name]; dup {
		return fmt.Errorf("serve: app %q already resident", name)
	}
	s.apps[name] = &app{name: name, net: net, img: img, fingerprint: fingerprint}
	s.memImages += img.Footprint()
	return nil
}

// lookupApp returns the resident application, or nil.
func (s *Server) lookupApp(name string) *app {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apps[name]
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("POST /v1/match", s.handleMatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/apps", s.handleApps)
	mux.HandleFunc("POST /v1/migrate", s.handleMigrate)
	mux.HandleFunc("POST /v1/migrate/accept", s.handleMigrateAccept)
	if s.cfg.Store != nil {
		// Follower side of checkpoint shipping: shipments apply through
		// the LOCAL store so a received slot is never relayed onward.
		replica.NewReceiver(s.localStore(), s.reg).Mount(mux)
	}
	return mux
}

// Serve accepts connections on l until the listener closes (Drain,
// Abort, or an external Shutdown).
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	err := hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until shut down.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Drain gracefully shuts the server down: new sessions are refused with
// 503, every in-flight stream session is checkpointed and suspended (the
// client reconnects to the next process), and the HTTP server closes.
// It returns once all sessions have unwound or timeout elapses.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	s.draining = true
	for _, sess := range s.active {
		sess.requestDrain()
	}
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.idle.Broadcast()
		s.mu.Unlock()
	})
	for s.nSess > 0 && time.Now().Before(deadline) {
		s.idle.Wait()
	}
	stranded := s.nSess
	s.mu.Unlock()
	timer.Stop()

	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs != nil {
		hs.Close()
	}
	// Sessions have unwound (or timed out), so no match request can be in
	// a batch lane; stop the batcher workers before returning.
	s.stopBatchers()
	s.stopPeers()
	if stranded > 0 {
		return fmt.Errorf("serve: drain timed out with %d sessions still live", stranded)
	}
	return nil
}

// Abort kills the server abruptly — the in-process stand-in for SIGKILL
// used by the chaos harness. No session checkpoints, no drain: sessions
// die where they stand and the store keeps only their last periodic
// capture, exactly as a real kill would leave it.
func (s *Server) Abort() {
	s.mu.Lock()
	select {
	case <-s.killCh:
	default:
		close(s.killCh)
	}
	s.mu.Unlock()
	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs != nil {
		hs.Close()
	}
	// Batcher workers see the kill at their next check tick, retire every
	// in-flight lane with a 503, and exit.
	s.stopBatchers()
	s.stopPeers()
}

// killed reports whether Abort has fired.
func (s *Server) killed() bool {
	select {
	case <-s.killCh:
		return true
	default:
		return false
	}
}

// handleMetrics serves the counter registry in Prometheus text form.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	s.reg.WriteText(&b)
	fmt.Fprint(w, b.String())
}

// handleHealthz answers 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleApps lists resident applications.
func (s *Server) handleApps(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.apps))
	for n := range s.apps {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(names)
}

// shed answers an admission rejection with an explicit retry signal and
// counts it; reason distinguishes rate-limited tenants (429) from global
// resource pressure (503).
func (s *Server) shed(w http.ResponseWriter, tenant string, status int, retryAfter time.Duration, reason string) {
	s.reg.Tenant("serve_shed", tenant).Inc()
	s.reg.Counter("serve_shed_" + reason).Inc()
	secs := int64(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, fmt.Sprintf("shed: %s (retry after %ds)", reason, secs), status)
}

// newSessionID returns a fresh 16-hex-digit session ID.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived ID; uniqueness is only needed
		// within one store directory.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
