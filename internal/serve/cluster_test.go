package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparseap/internal/automata"
	"sparseap/internal/checkpoint"
	"sparseap/internal/metrics"
	"sparseap/internal/replica"
	"sparseap/internal/sim"
	"sparseap/internal/testleak"
)

// clusterNode is one serve node with direct access to its local store
// and registry.
type clusterNode struct {
	h     *harness
	local *checkpoint.DirStore
	reg   *metrics.Registry
}

// startNode brings up one node. fingerprint lets a test plant a
// mismatched build on the target; mutate (optional) adjusts the config
// before New (e.g. to wrap the store with replication or cap sessions).
func startNode(t *testing.T, fingerprint string, mutate func(cfg *Config, local *checkpoint.DirStore)) *clusterNode {
	t.Helper()
	local, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cfg := Config{Store: local, Every: 1024, Registry: reg}
	if mutate != nil {
		mutate(&cfg, local)
	}
	s := New(cfg)
	if err := s.AddApp("test", testNet(t), fingerprint); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &clusterNode{h: &harness{s: s, ts: ts}, local: local, reg: reg}
}

// migrateAll posts /v1/migrate on node a and returns the per-session
// outcome map.
func migrateAll(t *testing.T, a *clusterNode, to string) map[string]string {
	t.Helper()
	resp, err := http.Post(a.h.ts.URL+"/v1/migrate?to="+to, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]string{}
	if resp.StatusCode == http.StatusOK {
		json.NewDecoder(resp.Body).Decode(&out)
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return out
}

// pacedClient is a stream client slow enough that a migrate request
// reliably lands mid-stream.
func pacedClient(url string, peers []string) *Client {
	return &Client{
		URL:    func() string { return url },
		Peers:  peers,
		Tenant: "t0",
		Chunk:  512,
		Pace:   500 * time.Microsecond,
	}
}

// streamInBackground runs cl.Stream on its own goroutine.
func streamInBackground(cl *Client, input []byte) (chan error, *atomic.Pointer[StreamResult]) {
	done := make(chan error, 1)
	res := &atomic.Pointer[StreamResult]{}
	go func() {
		r, err := cl.Stream(context.Background(), "test", input)
		res.Store(r)
		done <- err
	}()
	return done, res
}

// TestClusterMigrateLiveHandoff is the scripted-handoff cell: a live
// paced session on node A (replicating to B) is migrated mid-stream via
// POST /v1/migrate; the client must follow the moved record to B and
// assemble a bit-identical stream, and the migration / failover /
// replication metrics on both nodes must all move.
func TestClusterMigrateLiveHandoff(t *testing.T) {
	testleak.Check(t)
	b := startNode(t, "test/v1", nil)
	a := startNode(t, "test/v1", func(cfg *Config, local *checkpoint.DirStore) {
		cfg.Store = replica.New(local, replica.Options{
			Followers: []string{b.h.ts.URL},
			Ack:       1,
			Registry:  cfg.Registry,
		})
	})
	input := testInput(1 << 17)
	want := expectedReports(testNet(t), input)

	cl := pacedClient(a.h.ts.URL, []string{b.h.ts.URL})
	done, res := streamInBackground(cl, input)

	// Poll the migrate endpoint until a live session actually moved.
	migrated := false
	for !migrated {
		select {
		case err := <-done:
			t.Fatalf("stream finished before any migration landed (err=%v)", err)
		default:
		}
		for _, v := range migrateAll(t, a, b.h.ts.URL) {
			if v == "ok" {
				migrated = true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := sameReports(res.Load().Reports, want); err != nil {
		t.Fatalf("migrated stream diverged: %v", err)
	}

	snapA, snapB := a.reg.Snapshot(), b.reg.Snapshot()
	if snapA["serve_migrations_started"] == 0 || snapA["serve_migrations_completed"] == 0 {
		t.Fatalf("source migration counters did not move: %v", snapA)
	}
	if snapA["serve_replication_ships"] == 0 {
		t.Fatalf("no slot was ever shipped to the follower: %v", snapA)
	}
	if _, ok := snapA["serve_replication_lag"]; !ok {
		t.Fatalf("replication lag gauge missing: %v", snapA)
	}
	if snapB["serve_migrations_accepted"] == 0 {
		t.Fatalf("target never accepted a transfer: %v", snapB)
	}
	if snapB["serve_failovers"] == 0 {
		t.Fatalf("target never saw the client's failover reconnect: %v", snapB)
	}
	if cl.Failovers.Load() == 0 {
		t.Fatal("client never recorded a failover")
	}
	if cl.Resumes.Load() == 0 {
		t.Fatal("client never resumed on the target")
	}
	if cl.Restarts.Load() != 0 {
		t.Fatalf("handoff forced %d restarts; it must be seamless", cl.Restarts.Load())
	}
	// The slots moved: the source's local disk no longer owns the session.
	names, _ := a.local.Names()
	if len(names) != 0 {
		t.Fatalf("source still holds slots after handoff: %v", names)
	}
}

// refuseLoop polls /v1/migrate until the target refuses with wantCode,
// failing fast if the target ever accepts or the stream finishes first.
func refuseLoop(t *testing.T, a *clusterNode, to string, done chan error, wantCode string) {
	t.Helper()
	for {
		select {
		case err := <-done:
			t.Fatalf("stream finished before any migration was attempted (err=%v)", err)
		default:
		}
		for _, v := range migrateAll(t, a, to) {
			if v == "ok" {
				t.Fatalf("target accepted a session it must refuse")
			}
			if strings.Contains(v, wantCode) {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterMigrateFingerprintMismatch plants a different app build on
// the target: the transfer must be refused with 409, counted as failed,
// and the live session must fall back to suspend and finish on the
// source bit-identically.
func TestClusterMigrateFingerprintMismatch(t *testing.T) {
	testleak.Check(t)
	b := startNode(t, "test/v2", nil) // mismatched build
	a := startNode(t, "test/v1", nil)
	input := testInput(1 << 17)
	want := expectedReports(testNet(t), input)

	cl := pacedClient(a.h.ts.URL, nil)
	done, res := streamInBackground(cl, input)
	refuseLoop(t, a, b.h.ts.URL, done, "409")

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := sameReports(res.Load().Reports, want); err != nil {
		t.Fatalf("stream diverged after refused migration: %v", err)
	}
	if a.reg.Snapshot()["serve_migrations_failed"] == 0 {
		t.Fatalf("failed migration was not counted: %v", a.reg.Snapshot())
	}
	if cl.Resumes.Load() == 0 {
		t.Fatal("session should have suspended at the source and resumed there")
	}
}

// TestClusterMigrateDuringOverload fills the target's session table: the
// accept must shed with 503 (transfers run the full admission ladder),
// the migration must count as failed, and the session must stay at the
// source and complete — never stranded between nodes.
func TestClusterMigrateDuringOverload(t *testing.T) {
	testleak.Check(t)
	b := startNode(t, "test/v1", func(cfg *Config, _ *checkpoint.DirStore) {
		cfg.MaxSessions = 1
	})
	a := startNode(t, "test/v1", nil)

	// Occupy the target's only session slot with a held-open stream.
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, b.h.ts.URL+"/v1/stream?app=test", pr)
	req.Header.Set("X-Tenant", "holder")
	respCh := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			close(respCh)
			return
		}
		respCh <- resp
	}()
	pw.Write([]byte("abc"))
	holder := <-respCh
	if holder == nil {
		t.FailNow()
	}
	defer func() {
		pw.Close()
		io.Copy(io.Discard, holder.Body)
		holder.Body.Close()
	}()

	input := testInput(1 << 17)
	want := expectedReports(testNet(t), input)
	cl := pacedClient(a.h.ts.URL, nil)
	done, res := streamInBackground(cl, input)
	refuseLoop(t, a, b.h.ts.URL, done, "503")

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := sameReports(res.Load().Reports, want); err != nil {
		t.Fatalf("stream diverged after refused migration: %v", err)
	}
	if a.reg.Snapshot()["serve_migrations_failed"] == 0 {
		t.Fatalf("failed migration was not counted: %v", a.reg.Snapshot())
	}
}

// TestClusterTransferTruncatedThenIdempotent models a source dying
// mid-transfer: a truncated body must be rejected atomically (no partial
// slot state on the target), and the full re-send — and a duplicate of
// it — must both succeed and converge to the same latest+prev pair.
// Finally the client resumes against the target from its delivery floor
// and the assembled stream is bit-identical.
func TestClusterTransferTruncatedThenIdempotent(t *testing.T) {
	testleak.Check(t)
	b := startNode(t, "test/v1", nil)
	a := startNode(t, "test/v1", nil)
	net := testNet(t)
	input := testInput(1 << 15)
	want := expectedReports(net, input)
	id := newSessionID()
	slot := slotName(id)

	// Fabricate a suspended mid-stream session on A: run the engine to
	// two capture points and save both, producing a latest+prev pair
	// with an empty window (every report already released).
	var all []sim.Report
	sess := &session{id: id, tenant: "t0", app: a.h.s.lookupApp("test"), snap: &sim.Snapshot{}}
	sess.st = sim.NewStreamerOpts(net, sim.StreamerOptions{})
	sess.st.OnReport = func(pos int64, state automata.StateID) {
		all = append(all, sim.Report{Pos: pos, State: state})
	}
	save := func(upto int64) {
		if _, err := sess.st.Write(input[sess.st.Pos():upto]); err != nil {
			t.Fatal(err)
		}
		sess.st.Snapshot(sess.snap)
		encodeSessionState(&sess.enc, sess, sess.snap)
		if err := a.local.Save(slot, sessionStateVersion, sess.enc.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	save(2048)
	save(4096)
	have := append([]sim.Report(nil), all...)

	// Build the transfer record exactly as transferSession would.
	latest, lver, _, err := a.local.Load(slot)
	if err != nil {
		t.Fatal(err)
	}
	prev, pver, err := a.local.LoadPrevious(slot)
	if err != nil {
		t.Fatal(err)
	}
	var e checkpoint.Enc
	e.U32(lver)
	e.BytesField(latest)
	e.Bool(true)
	e.U32(pver)
	e.BytesField(prev)
	body := e.Bytes()
	crc := crc32.Checksum(body, transferTable)

	post := func(payload []byte) int {
		req, _ := http.NewRequest(http.MethodPost,
			b.h.ts.URL+migratePath+"?session="+id, bytes.NewReader(payload))
		req.Header.Set("X-Transfer-CRC", strconv.FormatUint(uint64(crc), 10))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Truncated transfer (source died mid-body): atomic reject.
	if code := post(body[:len(body)-7]); code != http.StatusBadRequest {
		t.Fatalf("truncated transfer answered %d, want 400", code)
	}
	if _, _, _, err := b.local.Load(slot); err == nil {
		t.Fatal("truncated transfer left partial state on the target")
	}
	// Full re-send, then a duplicate: both succeed, state converges.
	for i := 0; i < 2; i++ {
		if code := post(body); code != http.StatusOK {
			t.Fatalf("transfer attempt %d answered %d, want 200", i, code)
		}
	}
	gotLatest, _, _, err := b.local.Load(slot)
	if err != nil || !bytes.Equal(gotLatest, latest) {
		t.Fatalf("target latest diverged after duplicate transfer (err=%v)", err)
	}
	gotPrev, _, err := b.local.LoadPrevious(slot)
	if err != nil || !bytes.Equal(gotPrev, prev) {
		t.Fatalf("target prev diverged after duplicate transfer (err=%v)", err)
	}

	// The client resumes on the target from its delivery floor.
	cl := &Client{URL: func() string { return b.h.ts.URL }, Tenant: "t0"}
	ar := cl.streamAttempt(context.Background(), b.h.ts.URL, "test", id, input, have, false, false)
	if ar.out != attemptDone || ar.err != nil {
		t.Fatalf("resume on target: outcome %d err %v", ar.out, ar.err)
	}
	if err := sameReports(ar.have, want); err != nil {
		t.Fatalf("resumed stream diverged: %v", err)
	}
}

// TestClusterDrainMigrate sends every live session to a peer on
// shutdown: the client follows moved and finishes on the target with no
// restart.
func TestClusterDrainMigrate(t *testing.T) {
	testleak.Check(t)
	b := startNode(t, "test/v1", nil)
	a := startNode(t, "test/v1", func(cfg *Config, _ *checkpoint.DirStore) {
		cfg.Peers = []string{b.h.ts.URL}
	})
	input := testInput(1 << 17)
	want := expectedReports(testNet(t), input)

	cl := pacedClient(a.h.ts.URL, []string{b.h.ts.URL})
	done, res := streamInBackground(cl, input)
	time.Sleep(20 * time.Millisecond)
	if err := a.h.s.DrainMigrate(5 * time.Second); err != nil {
		t.Fatalf("DrainMigrate: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := sameReports(res.Load().Reports, want); err != nil {
		t.Fatalf("drain-migrated stream diverged: %v", err)
	}
	if cl.Restarts.Load() != 0 {
		t.Fatalf("drain-migrate forced %d restarts", cl.Restarts.Load())
	}
	if a.reg.Snapshot()["serve_migrations_completed"] == 0 {
		t.Fatalf("no migration completed during drain: %v", a.reg.Snapshot())
	}
}
