// Admission control: the server says no early, explicitly, and with a
// retry signal, instead of accepting work it will fail.
//
// Two layers:
//
//   - per-tenant: a token bucket (rate + burst) and a concurrency cap.
//     Exceeding either answers 429 with Retry-After — the tenant is the
//     noisy party and should back off.
//   - global: a session-count cap and a memory budget over the shared
//     images plus per-session engine estimates. Exceeding either answers
//     503 with Retry-After — the server is the loaded party and any
//     tenant should retry later.
//
// The invariant the overload test pins: shed requests are counted and
// refused up front; admitted sessions always run to completion.
package serve

import (
	"net/http"
	"time"
)

// bucket is a token bucket refilled continuously at rate tokens/sec up to
// burst. Callers hold the server mutex.
type bucket struct {
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// take consumes one token, refilling for the time elapsed since the last
// call. When empty it reports how long until a token is available.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.last.IsZero() {
		b.tokens = b.burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// admission is the outcome of an admit call.
type admission struct {
	ok         bool
	status     int
	retryAfter time.Duration
	reason     string
	release    func()
}

// admit runs the full admission ladder for one session of the given
// tenant costing cost dynamic bytes. On success the returned release
// must be called exactly once when the session ends.
func (s *Server) admit(tenantName string, cost int64) admission {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return admission{status: http.StatusServiceUnavailable, retryAfter: 2 * time.Second, reason: "draining"}
	}
	if s.nSess >= s.cfg.MaxSessions {
		return admission{status: http.StatusServiceUnavailable, retryAfter: time.Second, reason: "sessions"}
	}
	if s.cfg.MemBudget > 0 && s.memImages+s.memUsed+cost > s.cfg.MemBudget {
		return admission{status: http.StatusServiceUnavailable, retryAfter: time.Second, reason: "memory"}
	}
	t := s.tenantLocked(tenantName)
	if t.active >= s.cfg.MaxPerTenant {
		return admission{status: http.StatusTooManyRequests, retryAfter: time.Second, reason: "tenant_concurrency"}
	}
	if ok, wait := t.bucket.take(now); !ok {
		return admission{status: http.StatusTooManyRequests, retryAfter: wait, reason: "tenant_rate"}
	}
	s.nSess++
	t.active++
	s.memUsed += cost
	// memUsed is the sum of certified worst-case session footprints (see
	// app.engineCost), so the gauge exposes exactly what admission is
	// charging against the budget.
	s.reg.Gauge("serve_admission_worstcase_bytes").Set(s.memUsed)
	released := false
	return admission{ok: true, release: func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if released {
			return
		}
		released = true
		s.nSess--
		t.active--
		s.memUsed -= cost
		s.reg.Gauge("serve_admission_worstcase_bytes").Set(s.memUsed)
		s.idle.Broadcast()
	}}
}
