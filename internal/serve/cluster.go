// Cluster membership and live session handoff.
//
// A serve node in a cluster knows its peers (Config.Peers), watches
// their health with hysteresis, and can hand a live session to one of
// them without breaking the client's exactly-once stream:
//
//  1. the session drains to a checkpoint at its next loop boundary (the
//     same save-then-flush barrier a periodic capture uses, so the
//     client holds exactly the reports the slot accounts for);
//  2. the latest and previous-good slots travel to the target in one
//     CRC-guarded POST /v1/migrate/accept; the target verifies the app
//     is resident with the same build fingerprint (409 otherwise), runs
//     full admission (a target at capacity answers 503/429 and the
//     session stays suspended at the source — never stranded), warms
//     the app's compiled image, and writes the slots through its own
//     store (replicating onward if it has followers);
//  3. the source emits `moved <addr> <pos>` to the client and retires
//     its local slots; the client reconnects to <addr> with its report
//     count and resumes bit-identically.
//
// The transfer is idempotent: re-sending a pair after a partial or
// duplicated attempt converges to the same latest+prev state on the
// target, so a source that dies between transfer and `moved` leaves a
// target the client can still fail over to.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"
	"time"

	"sparseap/internal/checkpoint"
)

// migratePath is where a peer accepts session transfers.
const migratePath = "/v1/migrate/accept"

// maxTransferBody bounds one migration transfer (latest + prev slots).
const maxTransferBody = 128 << 20

// transferTable is the CRC32-C table guarding transfer bodies.
var transferTable = crc32.MakeTable(crc32.Castagnoli)

// errPeerRefused marks a target that answered but would not take the
// session (shed, mismatch); the source falls back to suspend.
var errPeerRefused = errors.New("serve: peer refused migration")

// peer is one watched sibling node.
type peer struct {
	url  string
	up   bool // guarded by Server.mu
	oks  int
	errs int
}

// localStore returns the store shipments and migration cleanup must
// write through: the node's own disk, never a replicated wrapper. A
// replicated Remove after a handoff would propagate to the follower the
// session just moved to and delete the slots it needs.
func (s *Server) localStore() checkpoint.Store {
	if l, ok := s.cfg.Store.(interface{ Local() checkpoint.Store }); ok {
		return l.Local()
	}
	return s.cfg.Store
}

// startPeerWatch launches the health prober when peers are configured.
// Peers start optimistically up (a cold cluster must be able to migrate
// before the first probe round) and flip with hysteresis: two
// consecutive probe failures mark a peer down, two successes bring it
// back, so one dropped probe never flaps the routing.
func (s *Server) startPeerWatch() {
	for _, u := range s.cfg.Peers {
		s.peers = append(s.peers, &peer{url: strings.TrimRight(u, "/"), up: true})
	}
	if len(s.peers) == 0 {
		return
	}
	s.reg.Gauge("serve_peers_up").Set(int64(len(s.peers)))
	client := &http.Client{Timeout: s.cfg.ProbeInterval}
	s.peerWG.Add(1)
	go func() {
		defer s.peerWG.Done()
		tick := time.NewTicker(s.cfg.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-s.peerStop:
				return
			case <-tick.C:
			}
			s.probePeers(client)
		}
	}()
}

// probePeers runs one health round over all peers.
func (s *Server) probePeers(client *http.Client) {
	type result struct {
		p  *peer
		ok bool
	}
	results := make(chan result, len(s.peers))
	for _, p := range s.peers {
		go func(p *peer) {
			resp, err := client.Get(p.url + "/healthz")
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			results <- result{p, ok}
		}(p)
	}
	up := 0
	s.mu.Lock()
	for range s.peers {
		r := <-results
		if r.ok {
			r.p.oks, r.p.errs = r.p.oks+1, 0
			if r.p.oks >= 2 {
				r.p.up = true
			}
		} else {
			r.p.errs, r.p.oks = r.p.errs+1, 0
			if r.p.errs >= 2 {
				r.p.up = false
			}
		}
	}
	for _, p := range s.peers {
		if p.up {
			up++
		}
	}
	s.mu.Unlock()
	s.reg.Gauge("serve_peers_up").Set(int64(up))
}

// stopPeers halts the health prober. Idempotent.
func (s *Server) stopPeers() {
	s.mu.Lock()
	if !s.peerStopped {
		s.peerStopped = true
		close(s.peerStop)
	}
	s.mu.Unlock()
	s.peerWG.Wait()
}

// upPeer returns the next healthy peer URL round-robin, or "".
func (s *Server) upPeer() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(s.peers); i++ {
		p := s.peers[(s.peerNext+i)%len(s.peers)]
		if p.up {
			s.peerNext = (s.peerNext + i + 1) % len(s.peers)
			return p.url
		}
	}
	return ""
}

// handleMigrate hands sessions to a peer: POST /v1/migrate?session=ID&to=URL.
// An empty session migrates every active session; an empty to picks the
// next healthy peer. Live sessions drain to a checkpoint at their next
// loop boundary and transfer from there; suspended sessions (slots only)
// transfer immediately. The response maps each session ID to "ok" or the
// failure reason — a failed live migration falls back to suspend, so the
// session is never lost, only not moved.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		http.Error(w, "not resumable: no checkpoint store", http.StatusConflict)
		return
	}
	to := strings.TrimRight(r.URL.Query().Get("to"), "/")
	if to == "" {
		to = s.upPeer()
	}
	if to == "" {
		http.Error(w, "no healthy peer to migrate to", http.StatusServiceUnavailable)
		return
	}

	var ids []string
	if id := r.URL.Query().Get("session"); id != "" {
		if !validSessionID(id) {
			http.Error(w, "invalid session id", http.StatusBadRequest)
			return
		}
		ids = []string{id}
	} else {
		s.mu.Lock()
		for id := range s.active {
			ids = append(ids, id)
		}
		s.mu.Unlock()
		if len(ids) == 0 {
			// No live sessions; migrate every suspended slot instead.
			names, _ := s.cfg.Store.Names()
			for _, n := range names {
				if id, ok := strings.CutPrefix(n, "sess-"); ok {
					ids = append(ids, id)
				}
			}
		}
	}

	out := map[string]string{}
	for _, id := range ids {
		if err := s.migrateOne(r, id, to); err != nil {
			out[id] = err.Error()
		} else {
			out[id] = "ok"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// migrateOne moves one session (live or suspended) to the target.
func (s *Server) migrateOne(r *http.Request, id, to string) error {
	s.mu.Lock()
	sess := s.active[id]
	s.mu.Unlock()
	if sess != nil {
		// Live: ask the stream loop to hand off at its next boundary and
		// wait for the outcome (bounded by the migrate request context).
		done := make(chan error, 1)
		sess.requestMove(to, done)
		select {
		case err := <-done:
			return err
		case <-r.Context().Done():
			return r.Context().Err()
		}
	}
	// Suspended: only slots exist; transfer and retire them directly.
	s.reg.Counter("serve_migrations_started").Inc()
	if err := s.transferSession(id, to); err != nil {
		s.reg.Counter("serve_migrations_failed").Inc()
		return err
	}
	s.localStore().Remove(slotName(id))
	s.reg.Counter("serve_migrations_completed").Inc()
	return nil
}

// transferSession ships a session's latest (+ previous-good, when
// present) slots to the target in one CRC-guarded request. Reads go
// through cfg.Store (local reads on a replicated store), the body is
//
//	latestVersion u32, latest bytes, hasPrev bool[, prevVersion u32, prev bytes]
func (s *Server) transferSession(id, to string) error {
	name := slotName(id)
	latest, lver, _, err := s.cfg.Store.Load(name)
	if err != nil {
		return fmt.Errorf("no session state: %w", err)
	}
	var e checkpoint.Enc
	e.U32(lver)
	e.BytesField(latest)
	prev, pver, perr := s.cfg.Store.LoadPrevious(name)
	e.Bool(perr == nil)
	if perr == nil {
		e.U32(pver)
		e.BytesField(prev)
	}
	body := e.Bytes()

	req, err := http.NewRequest(http.MethodPost,
		to+migratePath+"?session="+neturl.QueryEscape(id), strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("X-Transfer-CRC", strconv.FormatUint(uint64(crc32.Checksum(body, transferTable)), 10))
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s answered %d: %s", errPeerRefused, to, resp.StatusCode,
			strings.TrimSpace(string(msg)))
	}
	return nil
}

// handleMigrateAccept is the target side of a handoff. It admits the
// session as if it were a new stream (full admission ladder — an
// overloaded target sheds with Retry-After and the source keeps the
// session), verifies app residency and build fingerprint, warms the
// compiled image's worst-case bound, and installs the slots through its
// configured store so they replicate onward to its own followers.
func (s *Server) handleMigrateAccept(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		http.Error(w, "not resumable: no checkpoint store", http.StatusConflict)
		return
	}
	id := r.URL.Query().Get("session")
	if !validSessionID(id) {
		http.Error(w, "invalid session id", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxTransferBody+1))
	if err != nil || len(body) > maxTransferBody {
		http.Error(w, "bad transfer body", http.StatusBadRequest)
		return
	}
	wantCRC, err := strconv.ParseUint(r.Header.Get("X-Transfer-CRC"), 10, 32)
	if err != nil || crc32.Checksum(body, transferTable) != uint32(wantCRC) {
		// Truncated or corrupted transfer: reject atomically — nothing is
		// installed, and the source's idempotent re-send starts clean.
		http.Error(w, "transfer CRC mismatch", http.StatusBadRequest)
		return
	}
	d := checkpoint.NewDec(body)
	lver := d.U32()
	latest := d.BytesField()
	hasPrev := d.Bool()
	var pver uint32
	var prev []byte
	if hasPrev {
		pver = d.U32()
		prev = d.BytesField()
	}
	if d.Done() != nil || lver != sessionStateVersion {
		http.Error(w, "malformed transfer record", http.StatusBadRequest)
		return
	}
	st, err := decodeSessionState(latest)
	if err != nil {
		http.Error(w, "undecodable session state", http.StatusBadRequest)
		return
	}
	a := s.lookupApp(st.appName)
	if a == nil {
		http.Error(w, "app not resident here", http.StatusNotFound)
		return
	}
	if a.fingerprint != st.fingerprint {
		http.Error(w, "app fingerprint mismatch", http.StatusConflict)
		return
	}
	// Full admission: the migrated session will consume a real engine
	// when its client reconnects; a target without room for it must say
	// so now, while the source can still keep the session.
	adm := s.admit(st.tenant, a.engineCost())
	if !adm.ok {
		s.shed(w, st.tenant, adm.status, adm.retryAfter, adm.reason)
		return
	}
	adm.release()     // capacity verified; the reconnect admits for real
	a.frontierBound() // pre-warm so the reconnect restores without the analysis stall

	// prev first, latest second: Save's rotation reproduces the
	// latest+fallback pair, so a client behind the latest floor still
	// finds the previous-good slot here.
	if hasPrev {
		if err := s.cfg.Store.Save(slotName(id), pver, prev); err != nil {
			http.Error(w, "store save failed", http.StatusInternalServerError)
			return
		}
	}
	if err := s.cfg.Store.Save(slotName(id), lver, latest); err != nil {
		http.Error(w, "store save failed", http.StatusInternalServerError)
		return
	}
	s.reg.Counter("serve_migrations_accepted").Inc()
	w.WriteHeader(http.StatusOK)
}

// migrateOut is the stream loop's handoff step: the window is already
// durable and released (saveFlush ran), so transfer the slots, tell the
// client where to go, and retire the local copies. On any failure the
// session falls back to a plain suspend — the client resumes here.
func (s *Server) migrateOut(w http.ResponseWriter, rc *http.ResponseController, sess *session, to string) {
	s.reg.Counter("serve_migrations_started").Inc()
	if err := s.transferSession(sess.id, to); err != nil {
		s.reg.Counter("serve_migrations_failed").Inc()
		fmt.Fprintf(w, "suspend %d\n", sess.st.Pos())
		s.reg.Tenant("serve_sessions_suspended", sess.tenant).Inc()
		rc.Flush()
		sess.finishMove(err)
		return
	}
	fmt.Fprintf(w, "moved %s %d\n", to, sess.st.Pos())
	rc.Flush()
	s.localStore().Remove(slotName(sess.id))
	s.reg.Counter("serve_migrations_completed").Inc()
	s.reg.Tenant("serve_sessions_migrated", sess.tenant).Inc()
	sess.finishMove(nil)
}

// DrainMigrate is Drain with relocation: instead of suspending every
// in-flight session (leaving clients to wait out the restart), each one
// is handed to a healthy peer and told `moved`. Sessions that cannot
// move (no healthy peer, target refusal) fall back to suspend exactly
// as Drain would. The SIGTERM path of a clustered apserve uses this so
// a rolling restart never parks clients.
func (s *Server) DrainMigrate(timeout time.Duration) error {
	to := s.upPeer()
	if to == "" {
		return s.Drain(timeout)
	}
	s.mu.Lock()
	s.draining = true
	for _, sess := range s.active {
		sess.requestMove(to, nil)
	}
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.idle.Broadcast()
		s.mu.Unlock()
	})
	for s.nSess > 0 && time.Now().Before(deadline) {
		s.idle.Wait()
	}
	stranded := s.nSess
	s.mu.Unlock()
	timer.Stop()

	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs != nil {
		hs.Close()
	}
	s.stopBatchers()
	s.stopPeers()
	if stranded > 0 {
		return fmt.Errorf("serve: drain-migrate timed out with %d sessions still live", stranded)
	}
	return nil
}
