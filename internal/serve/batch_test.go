package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sparseap/internal/testleak"
)

// TestBatchMatchIdenticalToSolo fires a concurrent burst of /v1/match
// requests with batching enabled; every reply must be bit-identical to
// an uninterrupted solo run of the same input, the batch metrics must
// appear on /metrics, and Drain must unwind the batcher workers.
func TestBatchMatchIdenticalToSolo(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	h := startServer(t, Config{BatchStreams: 16, BatchWindow: 2 * time.Millisecond}, net)

	lens := []int{0, 1, 37, 1024, 4096, 8192, 16384, 32768}
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(lens))
	for i := 0; i < 4*len(lens); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			input := testInput(lens[i%len(lens)])
			cl := &Client{URL: func() string { return h.ts.URL }, Tenant: fmt.Sprintf("t%d", i%3)}
			m, shed, _, err := cl.Match(context.Background(), "test", input)
			if err != nil || shed {
				errs <- fmt.Errorf("match %d: shed=%v err=%v", i, shed, err)
				return
			}
			if m.Mode != "batch" {
				errs <- fmt.Errorf("match %d: mode = %q, want batch", i, m.Mode)
				return
			}
			want := expectedReports(net, input)
			if int(m.NumReports) != len(want) || len(m.Reports) != len(want) {
				errs <- fmt.Errorf("match %d: %d reports, want %d", i, m.NumReports, len(want))
				return
			}
			for j, rep := range want {
				if m.Reports[j] != [2]int64{rep.Pos, int64(rep.State)} {
					errs <- fmt.Errorf("match %d: report %d = %v, want %v", i, j, m.Reports[j], rep)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"serve_batch_width_bucket{le=\"64\"}",
		"serve_batch_width_count",
		"serve_batch_wait_ns_count",
		"serve_batch_runs",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if err := h.s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestBatchLaneDeadlineDoesNotStallBatch puts two long streams in one
// batch and cancels one mid-flight: the cancelled lane must retire with
// its context error while its neighbour completes bit-identically.
func TestBatchLaneDeadlineDoesNotStallBatch(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	s := New(Config{BatchStreams: 4, BatchWindow: 50 * time.Millisecond})
	if err := s.AddApp("test", net, "test/v1"); err != nil {
		t.Fatal(err)
	}
	a := s.lookupApp("test")
	input := testInput(1 << 22)

	ctxA, cancelA := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var errA error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errA = s.batchMatch(ctxA, a, input)
	}()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancelA()
	}()

	reports, num, err := s.batchMatch(context.Background(), a, input)
	if err != nil {
		t.Fatalf("surviving lane failed: %v", err)
	}
	want := expectedReports(net, input)
	if int(num) != len(want) || len(reports) != len(want) {
		t.Fatalf("surviving lane: %d reports, want %d", num, len(want))
	}
	for i, rep := range want {
		if reports[i] != rep {
			t.Fatalf("surviving lane report %d = %v, want %v", i, reports[i], rep)
		}
	}
	wg.Wait()
	// The cancelled lane either retired mid-batch with its context error
	// or (on a very fast box) finished before the cancel landed.
	if errA != nil && !errors.Is(errA, context.Canceled) {
		t.Fatalf("cancelled lane err = %v, want context.Canceled or nil", errA)
	}
	if err := s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestBatchOverloadShedsNotFails is the overload cell with batching on:
// a burst far beyond the session caps must split cleanly into exact
// answers and explicit 429/503 sheds — batching must not open an
// admission bypass or corrupt answers under pressure.
func TestBatchOverloadShedsNotFails(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	h := startServer(t, Config{BatchStreams: 8, MaxSessions: 3, MaxPerTenant: 2}, net)
	input := testInput(1 << 17)
	want := expectedReports(net, input)

	const n = 32
	type outcome struct {
		m    *matchResponse
		shed bool
		err  error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			cl := &Client{URL: func() string { return h.ts.URL }, Tenant: fmt.Sprintf("t%d", i%4)}
			m, shed, _, err := cl.Match(context.Background(), "test", input)
			results <- outcome{m: m, shed: shed, err: err}
		}(i)
	}
	var ok, shed int
	for i := 0; i < n; i++ {
		r := <-results
		switch {
		case r.err != nil:
			t.Fatalf("request failed outright: %v", r.err)
		case r.shed:
			shed++
		default:
			ok++
			if r.m.Mode != "batch" {
				t.Fatalf("accepted match mode = %q, want batch", r.m.Mode)
			}
			if int(r.m.NumReports) != len(want) {
				t.Fatalf("accepted match reports = %d, want %d", r.m.NumReports, len(want))
			}
		}
	}
	if shed == 0 {
		t.Fatalf("overload produced no sheds (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatal("overload accepted nothing")
	}
	if err := h.s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestBatchAbortAnswers503 aborts the server while batched lanes are in
// flight: every stranded request must answer with a retriable shutdown
// error, and the workers must exit.
func TestBatchAbortAnswers503(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	s := New(Config{BatchStreams: 4, BatchWindow: 20 * time.Millisecond})
	if err := s.AddApp("test", net, "test/v1"); err != nil {
		t.Fatal(err)
	}
	a := s.lookupApp("test")
	input := testInput(1 << 22)

	const n = 3
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, _, err := s.batchMatch(context.Background(), a, input)
			errs <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	s.Abort()
	for i := 0; i < n; i++ {
		// nil is possible only if a lane finished before the abort landed.
		if err := <-errs; err != nil && !errors.Is(err, errServerStopped) {
			t.Fatalf("aborted lane err = %v, want errServerStopped", err)
		}
	}
}

// TestBatchEmptyInput answers an empty body without ticking.
func TestBatchEmptyInput(t *testing.T) {
	testleak.Check(t)
	net := testNet(t)
	s := New(Config{BatchStreams: 4, BatchWindow: time.Millisecond})
	if err := s.AddApp("test", net, "test/v1"); err != nil {
		t.Fatal(err)
	}
	reports, num, err := s.batchMatch(context.Background(), s.lookupApp("test"), nil)
	if err != nil || num != 0 || len(reports) != 0 {
		t.Fatalf("empty input: reports=%v num=%d err=%v", reports, num, err)
	}
	if err := s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}
