// Streaming sessions: checkpoint-backed, exactly-once, bit-identical
// across server kills.
//
// # Wire protocol
//
// A session is a POST /v1/stream?app=NAME with a streamed request body
// (the input symbols) and a streamed response of newline-framed records:
//
//	r <pos> <state>    one match report
//	suspend <pos>      server is draining; reconnect and resume
//	restart <pos>      server cannot resume (no store); reconnect and
//	                   restart from scratch, discarding local reports
//	moved <addr> <pos> session handed to the peer at base URL <addr>;
//	                   reconnect THERE with X-Session and X-Have-Reports
//	                   and the stream resumes bit-identically
//	end <pos> <n>      stream complete after pos symbols, n reports total
//
// Request headers: X-Tenant, X-Session (resume an existing session),
// X-Have-Reports (how many reports the client retains), X-Restart
// (discard server-side state), X-Deadline-Ms, X-Failover (set to 1 when
// the client switched nodes since its last attempt — counted, not acted
// on). Response headers: X-Session (assigned ID), X-Resume-Pos (input
// offset to send from).
//
// # Exactly-once delivery
//
// Reports are released to the client only after the checkpoint covering
// them is durable: the session buffers a window of reports between
// captures, saves {snapshot, window} atomically, then flushes the window.
// The client therefore never holds a report the store cannot account for.
// On reconnect the client states how many reports it has (N). The latest
// slot stores a snapshot at position P with cursor C and the window of
// reports generated since the previous capture (delivery floor F = C -
// len(window)):
//
//   - N ≥ F: replay window[N-F:], restore the snapshot, continue at P —
//     the client receives each report exactly once;
//   - N < F: the client missed a whole flush (killed mid-write); fall
//     back to the previous-good slot, one capture interval further back,
//     and apply the same rule;
//   - otherwise the client and store have diverged (or the client asked
//     to restart): the session restarts from symbol 0 and the client
//     discards everything — still exactly-once in the final stream.
//
// Because the engine is deterministic and a snapshot at P contains
// exactly the history of positions < P, the concatenated stream the
// client assembles is bit-identical to an uninterrupted run.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sparseap/internal/automata"
	"sparseap/internal/checkpoint"
	"sparseap/internal/sim"
)

// sessionStateVersion versions the session checkpoint record.
const sessionStateVersion = 1

// sessionOverheadBytes is the fixed per-session memory charge on top of
// the engine estimate (buffers, bookkeeping, HTTP plumbing).
const sessionOverheadBytes = 64 << 10

// readChunk is the body read granularity (capped at the distance to the
// next checkpoint boundary so captures land exactly on schedule).
const readChunk = 32 << 10

// session is one live stream session.
type session struct {
	id     string
	tenant string
	app    *app
	st     *sim.Streamer

	window []sim.Report // reports not yet released to the client
	floor  int64        // reports already released (delivery floor)

	snap *sim.Snapshot  // reused capture buffer
	enc  checkpoint.Enc // reused encode buffer

	drainCh chan struct{}

	moveMu   sync.Mutex
	moveTo   string     // peer to hand off to ("" = no move requested)
	moveDone chan error // outcome channel a migrate caller waits on
}

// requestDrain asks the session to checkpoint, suspend, and unwind.
// Idempotent; called with s.mu held.
func (sess *session) requestDrain() {
	select {
	case <-sess.drainCh:
	default:
		close(sess.drainCh)
	}
}

func (sess *session) draining() bool {
	select {
	case <-sess.drainCh:
		return true
	default:
		return false
	}
}

// requestMove asks the session to hand itself to the peer at to; the
// stream loop performs the transfer at its next boundary. done (may be
// nil) receives the outcome. First request wins.
func (sess *session) requestMove(to string, done chan error) {
	sess.moveMu.Lock()
	if sess.moveTo == "" {
		sess.moveTo = to
		sess.moveDone = done
	} else if done != nil {
		done <- fmt.Errorf("serve: move already in progress")
	}
	sess.moveMu.Unlock()
}

// moveTarget returns the requested handoff target, or "".
func (sess *session) moveTarget() string {
	sess.moveMu.Lock()
	defer sess.moveMu.Unlock()
	return sess.moveTo
}

// finishMove delivers the handoff outcome to a waiting migrate caller.
func (sess *session) finishMove(err error) {
	sess.moveMu.Lock()
	done := sess.moveDone
	sess.moveDone = nil
	sess.moveMu.Unlock()
	if done != nil {
		done <- err
	}
}

// slotName is the checkpoint-store name of a session.
func slotName(id string) string { return "sess-" + id }

// validSessionID accepts store-safe IDs (they become file names).
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// encodeSessionState renders the durable record: identity (so a resumed
// request cannot splice a different tenant/app/build), the engine
// snapshot, and the undelivered report window.
func encodeSessionState(e *checkpoint.Enc, sess *session, snap *sim.Snapshot) {
	e.Reset()
	e.String(sess.tenant)
	e.String(sess.app.name)
	e.String(sess.app.fingerprint)
	snap.Encode(e)
	e.U64(uint64(len(sess.window)))
	for _, r := range sess.window {
		e.I64(r.Pos)
		e.I32(int32(r.State))
	}
}

// sessionState is a decoded session checkpoint.
type sessionState struct {
	tenant, appName, fingerprint string
	snap                         *sim.Snapshot
	window                       []sim.Report
}

// floorOf returns the delivery floor of the record: reports released to
// the client before this capture's window.
func (st *sessionState) floorOf() int64 { return st.snap.NumReports - int64(len(st.window)) }

func decodeSessionState(payload []byte) (*sessionState, error) {
	d := checkpoint.NewDec(payload)
	st := &sessionState{
		tenant:      d.String(),
		appName:     d.String(),
		fingerprint: d.String(),
		snap:        &sim.Snapshot{},
	}
	if err := st.snap.Decode(d); err != nil {
		return nil, err
	}
	n := d.Len(12)
	for i := 0; i < n && d.Err() == nil; i++ {
		pos := d.I64()
		state := automata.StateID(d.I32())
		st.window = append(st.window, sim.Report{Pos: pos, State: state})
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return st, nil
}

// registerSession claims the session ID; a second live request on the
// same ID is refused (one writer per slot).
func (s *Server) registerSession(id string, sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, busy := s.active[id]; busy {
		return false
	}
	s.active[id] = sess
	if s.draining {
		// A drain racing the registration still reaches this session.
		sess.requestDrain()
	}
	return true
}

func (s *Server) unregisterSession(id string) {
	s.mu.Lock()
	delete(s.active, id)
	s.mu.Unlock()
}

// resumeDecision is what the windowed-resume rule picked.
type resumeDecision struct {
	state  *sessionState // nil: start fresh from symbol 0
	replay []sim.Report  // window suffix the client is missing
}

// planResume applies the exactly-once resume rule for a client holding
// have reports. A nil decision with ok=false means the store and client
// diverged irrecoverably (client restarts from scratch).
func (s *Server) planResume(id string, a *app, tenant string, have int64) (dec resumeDecision, ok bool, err error) {
	payload, version, _, lerr := s.cfg.Store.Load(slotName(id))
	if errors.Is(lerr, checkpoint.ErrNoCheckpoint) {
		return resumeDecision{}, true, nil // nothing stored: fresh session
	}
	if lerr != nil {
		return resumeDecision{}, false, lerr
	}
	if version != sessionStateVersion {
		return resumeDecision{}, false, nil
	}
	try := func(payload []byte) (resumeDecision, bool) {
		st, derr := decodeSessionState(payload)
		if derr != nil {
			return resumeDecision{}, false
		}
		if st.appName != a.name || st.fingerprint != a.fingerprint || st.tenant != tenant {
			return resumeDecision{}, false
		}
		floor := st.floorOf()
		if have < floor || have > st.snap.NumReports {
			return resumeDecision{}, false
		}
		return resumeDecision{state: st, replay: st.window[have-floor:]}, true
	}
	if dec, ok := try(payload); ok {
		return dec, true, nil
	}
	// The client fell behind the latest capture's delivery floor (a kill
	// mid-flush): one capture interval further back is the previous-good
	// slot.
	if prev, pver, perr := s.cfg.Store.LoadPrevious(slotName(id)); perr == nil && pver == sessionStateVersion {
		if dec, ok := try(prev); ok {
			return dec, true, nil
		}
	}
	return resumeDecision{}, false, nil
}

// handleStream runs one streaming session end to end.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// One connection per stream attempt. Without this, an early refusal
	// (shed, 404, 409) deadlocks a pipe-bodied client: net/http drains
	// the unread request body before flushing the response to keep the
	// connection reusable, while the client cannot start its body writer
	// until it sees the response. Connection: close skips the drain.
	w.Header().Set("Connection", "close")
	tenant := tenantName(r.Header)
	if r.Header.Get("X-Failover") == "1" {
		s.reg.Counter("serve_failovers").Inc()
	}
	a := s.lookupApp(r.URL.Query().Get("app"))
	if a == nil {
		http.Error(w, "unknown app", http.StatusNotFound)
		return
	}
	adm := s.admit(tenant, a.engineCost())
	if !adm.ok {
		s.shed(w, tenant, adm.status, adm.retryAfter, adm.reason)
		return
	}
	defer adm.release()

	id := r.Header.Get("X-Session")
	if id == "" {
		id = newSessionID()
	} else if !validSessionID(id) {
		http.Error(w, "invalid session id", http.StatusBadRequest)
		return
	}
	sess := &session{
		id:      id,
		tenant:  tenant,
		app:     a,
		drainCh: make(chan struct{}),
		snap:    &sim.Snapshot{},
	}
	if !s.registerSession(id, sess) {
		http.Error(w, "session busy", http.StatusConflict)
		return
	}
	defer func() {
		s.unregisterSession(id)
		// A migrate request can land just as this stream unwinds; its
		// requestMove would otherwise park a waiter forever. finishMove
		// is idempotent, so a handoff that already answered is a no-op.
		sess.finishMove(errors.New("serve: session ended before handoff"))
	}()

	// Deadline propagation: the header deadline joins the request
	// context (which already cancels on client disconnect) and reaches
	// the engine through the Streamer's context poll.
	ctx := r.Context()
	rc := http.NewResponseController(w)
	if ms, _ := strconv.ParseInt(r.Header.Get("X-Deadline-Ms"), 10, 64); ms > 0 {
		var cancel context.CancelFunc
		d := time.Duration(ms) * time.Millisecond
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
		rc.SetReadDeadline(time.Now().Add(d)) // body reads obey it too
	}

	have, _ := strconv.ParseInt(r.Header.Get("X-Have-Reports"), 10, 64)
	restart := r.Header.Get("X-Restart") == "1"
	resumable := s.cfg.Store != nil

	var dec resumeDecision
	if resumable && !restart {
		var err error
		var ok bool
		dec, ok, err = s.planResume(id, a, tenant, have)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			// Divergence: tell the client to restart from scratch.
			http.Error(w, "session state diverged; restart", http.StatusConflict)
			return
		}
	}
	if resumable && restart {
		s.cfg.Store.Remove(slotName(id))
	}

	sess.st = sim.NewStreamerOpts(a.net, sim.StreamerOptions{Context: ctx})
	sess.st.OnReport = func(pos int64, state automata.StateID) {
		sess.window = append(sess.window, sim.Report{Pos: pos, State: state})
	}
	resumePos := int64(0)
	if dec.state != nil {
		if err := sess.st.Restore(dec.state.snap); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		resumePos = dec.state.snap.Pos
		sess.floor = dec.state.snap.NumReports
		s.reg.Tenant("serve_sessions_resumed", tenant).Inc()
	} else {
		s.reg.Tenant("serve_sessions_started", tenant).Inc()
	}

	w.Header().Set("X-Session", id)
	w.Header().Set("X-Resume-Pos", strconv.FormatInt(resumePos, 10))
	w.WriteHeader(http.StatusOK)
	rc.EnableFullDuplex() // HTTP/1.1: interleave body reads with writes
	// Replay the window suffix the client is missing, then go live.
	for _, rep := range dec.replay {
		fmt.Fprintf(w, "r %d %d\n", rep.Pos, rep.State)
	}
	s.reg.Counter("serve_reports_delivered").Add(int64(len(dec.replay)))
	rc.Flush()

	s.streamLoop(ctx, w, rc, r.Body, sess, resumable)
}

// saveFlush makes the current window durable, then releases it to the
// client — the ordering exactly-once delivery rests on.
func (s *Server) saveFlush(w http.ResponseWriter, rc *http.ResponseController, sess *session, resumable bool) error {
	if resumable {
		sess.st.Snapshot(sess.snap)
		encodeSessionState(&sess.enc, sess, sess.snap)
		if err := s.cfg.Store.Save(slotName(sess.id), sessionStateVersion, sess.enc.Bytes()); err != nil {
			return err
		}
		s.reg.Counter("serve_checkpoint_saves").Inc()
	}
	for _, rep := range sess.window {
		if _, err := fmt.Fprintf(w, "r %d %d\n", rep.Pos, rep.State); err != nil {
			// The client is gone; the reports stay durable in the slot
			// and the reconnect replays (and then counts) them.
			sess.releaseWindow()
			return err
		}
	}
	s.reg.Counter("serve_reports_delivered").Add(int64(len(sess.window)))
	sess.releaseWindow()
	return rc.Flush()
}

func (sess *session) releaseWindow() {
	sess.floor += int64(len(sess.window))
	sess.window = sess.window[:0]
}

// streamLoop feeds the request body through the matcher, checkpointing
// and releasing reports at every capture boundary.
func (s *Server) streamLoop(ctx context.Context, w http.ResponseWriter, rc *http.ResponseController, body io.Reader, sess *session, resumable bool) {
	every := s.cfg.Every
	buf := make([]byte, readChunk)
	pos := sess.st.Pos()

	suspend := func(reason string) {
		// Server-side stop (drain or deadline): make the state durable,
		// release what is covered, and tell the client to come back.
		// Without a store there is nothing to resume from — a suspend
		// would strand the client holding reports the next incarnation
		// re-delivers — so tell it to restart the session from scratch
		// instead (the client discards its local reports, keeping the
		// final stream exactly-once).
		if err := s.saveFlush(w, rc, sess, resumable); err != nil {
			return
		}
		if resumable {
			fmt.Fprintf(w, "suspend %d\n", sess.st.Pos())
			s.reg.Tenant("serve_sessions_suspended", sess.tenant).Inc()
		} else {
			fmt.Fprintf(w, "restart %d\n", sess.st.Pos())
			s.reg.Tenant("serve_sessions_restarted", sess.tenant).Inc()
		}
		rc.Flush()
		if reason == "deadline" {
			s.reg.Tenant("serve_deadline_cancels", sess.tenant).Inc()
		}
	}

	for {
		if s.killed() {
			return // crash semantics: no save, the last capture stands
		}
		if to := sess.moveTarget(); to != "" {
			// Handoff boundary: make the window durable and released
			// (exactly as a periodic capture would), then transfer the
			// slots and point the client at the peer.
			if !resumable {
				sess.finishMove(errors.New("serve: not resumable, cannot migrate"))
				suspend("drain")
				return
			}
			if err := s.saveFlush(w, rc, sess, resumable); err != nil {
				sess.finishMove(err)
				return
			}
			s.migrateOut(w, rc, sess, to)
			return
		}
		if sess.draining() {
			suspend("drain")
			return
		}
		limit := (pos/every+1)*every - pos
		if limit > int64(len(buf)) {
			limit = int64(len(buf))
		}
		n, rerr := body.Read(buf[:limit])
		if n > 0 {
			wn, werr := sess.st.Write(buf[:n])
			pos += int64(wn)
			if werr != nil {
				// Deadline or cancellation surfaced mid-write.
				if s.killed() {
					return
				}
				suspend("deadline")
				return
			}
			if resumable && pos%every == 0 {
				if err := s.saveFlush(w, rc, sess, resumable); err != nil {
					return
				}
			} else if !resumable {
				// No durability barrier without a store: deliver at once.
				if err := s.saveFlush(w, rc, sess, false); err != nil {
					return
				}
			}
		}
		switch {
		case rerr == nil:
			continue
		case errors.Is(rerr, io.EOF):
			// Clean end of input: flush the tail, mark the stream done,
			// and retire the session's slots.
			if err := s.saveFlush(w, rc, sess, resumable); err != nil {
				return
			}
			fmt.Fprintf(w, "end %d %d\n", sess.st.Pos(), sess.st.NumReports())
			rc.Flush()
			if resumable {
				s.cfg.Store.Remove(slotName(sess.id))
			}
			s.reg.Tenant("serve_sessions_completed", sess.tenant).Inc()
			return
		default:
			// Body read failed: client disconnect, deadline, or kill.
			if s.killed() {
				return
			}
			if ctx.Err() != nil {
				suspend("deadline")
				return
			}
			// Disconnect: capture so the reconnect resumes here instead
			// of one interval back. The write side is likely dead; the
			// durable slot is what matters.
			if resumable {
				sess.st.Snapshot(sess.snap)
				encodeSessionState(&sess.enc, sess, sess.snap)
				if s.cfg.Store.Save(slotName(sess.id), sessionStateVersion, sess.enc.Bytes()) == nil {
					s.reg.Counter("serve_checkpoint_saves").Inc()
				}
			}
			s.reg.Tenant("serve_sessions_suspended", sess.tenant).Inc()
			return
		}
	}
}
