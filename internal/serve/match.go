// One-shot matching with graceful degradation: /v1/match runs the SpAP
// guarded executor by default, and a tenant whose inputs keep tripping
// the guard is routed down the per-tenant ladder to the baseline kernel
// — slower but immune to hot-set mispredictions — then probed back up
// after a cooldown. Every mode produces the same report multiset, so
// degradation changes latency, never answers.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"sparseap/internal/sim"
	"sparseap/internal/spap"
)

// matchResponse is the /v1/match reply.
type matchResponse struct {
	App        string     `json:"app"`
	Mode       string     `json:"mode"` // guarded | probe | baseline | batch
	NumReports int64      `json:"numReports"`
	Reports    [][2]int64 `json:"reports"` // [pos, state]
}

// handleMatch runs one bounded input through the resident application.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	tenant := tenantName(r.Header)
	a := s.lookupApp(r.URL.Query().Get("app"))
	if a == nil {
		http.Error(w, "unknown app", http.StatusNotFound)
		return
	}
	cost := a.engineCost()
	if s.batchingEnabled() {
		// A batched request shares one batch engine with its lane
		// neighbours; charge it the per-lane slice instead of a whole
		// solo engine (worst-case sized, like the solo charge).
		cost = a.laneCost()
	}
	adm := s.admit(tenant, cost)
	if !adm.ok {
		s.shed(w, tenant, adm.status, adm.retryAfter, adm.reason)
		return
	}
	defer adm.release()

	ctx := r.Context()
	if ms, _ := strconv.ParseInt(r.Header.Get("X-Deadline-Ms"), 10, 64); ms > 0 {
		c, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
		ctx = c
	}
	input, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxMatchBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	resp := matchResponse{App: a.name}
	var reports []sim.Report
	if s.batchingEnabled() {
		// The batch kernel's per-lane streams are bit-identical to solo
		// runs (property-tested in internal/sim), so batching bypasses
		// the degradation ladder without changing any answer.
		resp.Mode = "batch"
		var berr error
		reports, resp.NumReports, berr = s.batchMatch(ctx, a, input)
		if berr != nil {
			matchError(w, berr)
			return
		}
		s.finishMatch(w, tenant, &resp, reports)
		return
	}

	t := s.tenantOf(tenant)
	mode := t.ladder.Next()
	resp.Mode = mode.String()

	switch mode {
	case spap.ModeGuarded, spap.ModeProbe:
		part, perr := a.partition(s.cfg.Capacity)
		if perr != nil {
			// Partitioning failure is permanent for this app: run the
			// baseline kernel rather than failing the tenant's request.
			s.reg.Tenant("serve_degraded", tenant).Inc()
			resp.Mode = spap.ModeBaseline.String()
			sres, serr := sim.RunContext(ctx, a.net, input, sim.Options{CollectReports: true})
			if serr != nil {
				matchError(w, serr)
				return
			}
			reports, resp.NumReports = sres.Reports, sres.NumReports
			break
		}
		res, rerr := spap.RunGuarded(ctx, part, input, s.apCfg, s.cfg.Guard, spap.Options{CollectReports: true})
		if rerr != nil {
			matchError(w, rerr)
			return
		}
		tripped := spap.Tripped(res)
		t.ladder.ObserveGuarded(mode, tripped)
		if tripped {
			s.reg.Tenant("serve_guard_trips", tenant).Inc()
		}
		reports, resp.NumReports = res.Reports, res.NumReports
	default: // spap.ModeBaseline
		s.reg.Tenant("serve_degraded", tenant).Inc()
		sres, serr := sim.RunContext(ctx, a.net, input, sim.Options{CollectReports: true})
		if serr != nil {
			matchError(w, serr)
			return
		}
		reports, resp.NumReports = sres.Reports, sres.NumReports
	}

	s.finishMatch(w, tenant, &resp, reports)
}

// finishMatch encodes the reply and counts the served match.
func (s *Server) finishMatch(w http.ResponseWriter, tenant string, resp *matchResponse, reports []sim.Report) {
	resp.Reports = make([][2]int64, len(reports))
	for i, rep := range reports {
		resp.Reports[i] = [2]int64{rep.Pos, int64(rep.State)}
	}
	s.reg.Tenant("serve_matches", tenant).Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// matchError maps executor errors to HTTP: deadline and cancellation are
// the caller's timeout (504), shutdown is retriable on the next process
// (503), anything else is a server fault.
func matchError(w http.ResponseWriter, err error) {
	if status, ok := batchStatus(err); ok {
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), status)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}
