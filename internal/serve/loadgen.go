// Load generator and resilient client for the serve benchmark. The
// Client implements the session protocol from the consumer's side —
// retry with backoff across sheds, suspends, kills, and restarts — and
// RunLoadgen drives it through three phases: verified streaming (every
// session's report stream compared against an uninterrupted local run),
// match latency (p50/p99 over accepted requests), and overload (prove
// the server sheds explicitly instead of failing accepted work).
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparseap/internal/automata"
	"sparseap/internal/sim"
	"sparseap/internal/workloads"
)

// Client is a session-protocol client with retry, backoff, and cluster
// failover. The zero value is not usable; fill URL at least.
type Client struct {
	// URL returns the server base URL (a func so a chaos harness can
	// repoint the client at a restarted server between attempts).
	URL func() string
	// Peers are alternate server base URLs. On a connect failure, a
	// mid-stream break, or a 503 the client rotates to the next base and
	// resumes the same session from its delivery floor; a `moved` record
	// overrides the rotation and sends the next attempt straight to the
	// named peer. With no peers the client behaves as a single-node
	// client.
	Peers []string
	// Tenant is sent as X-Tenant.
	Tenant string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Chunk is the body write granularity (default 4096).
	Chunk int
	// Pace sleeps between chunk writes, stretching a stream out so a
	// chaos test can kill the server mid-flight.
	Pace time.Duration
	// Backoff is the initial retry delay (default 25ms, doubling to 1s).
	Backoff time.Duration
	// MaxAttempts bounds connection attempts per stream (default 64).
	MaxAttempts int

	// Sheds counts attempts refused by admission control.
	Sheds atomic.Int64
	// Resumes counts successful reconnects that resumed mid-stream.
	Resumes atomic.Int64
	// Retries counts all re-connection attempts after the first.
	Retries atomic.Int64
	// Restarts counts forced session restarts (409 responses after every
	// base refused, in-stream restart records, and resumed sessions the
	// server could only start from scratch).
	Restarts atomic.Int64
	// Failovers counts attempts sent to a different base than the
	// previous attempt (rotation or a moved record).
	Failovers atomic.Int64
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) chunk() int {
	if c.Chunk > 0 {
		return c.Chunk
	}
	return 4096
}

// bases returns the ordered base URLs to try: the primary, then the
// peers. Recomputed per attempt because URL may be repointed between
// attempts by a chaos harness.
func (c *Client) bases() []string {
	out := make([]string, 0, 1+len(c.Peers))
	out = append(out, strings.TrimRight(c.URL(), "/"))
	for _, p := range c.Peers {
		out = append(out, strings.TrimRight(p, "/"))
	}
	return out
}

// StreamResult is the outcome of one completed stream session.
type StreamResult struct {
	Session string
	Reports []sim.Report
	// EndPos and EndReports echo the server's end record.
	EndPos, EndReports int64
}

// Stream runs input through app as one session, surviving sheds,
// suspends, disconnects, server restarts, migrations, and node loss,
// and returns the exactly-once report stream. A `moved` record sends
// the next attempt to the named peer; connect failures, mid-stream
// breaks, and 503s rotate through the peer list, resuming the session
// from the client's delivery floor on whichever node holds (or was
// shipped) its slots. A 409 restarts the session from scratch with
// local state discarded — but only after every base refused, since a
// 409 can be node-specific (a peer with a different app build).
func (c *Client) Stream(ctx context.Context, appName string, input []byte) (*StreamResult, error) {
	id := newSessionID()
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 64
	}
	var have []sim.Report
	restart := false
	baseIdx := 0 // rotation cursor into bases()
	moved := ""  // non-empty: a moved record named the next base
	prevBase := ""
	conflicts := 0 // consecutive 409s this rotation round

	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			c.Retries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if backoff < time.Second {
				backoff *= 2
			}
		}
		if restart {
			have = have[:0]
		}
		bases := c.bases()
		base := moved
		if base == "" {
			base = bases[baseIdx%len(bases)]
		}
		failover := prevBase != "" && base != prevBase
		if failover {
			c.Failovers.Add(1)
		}
		prevBase = base
		ar := c.streamAttempt(ctx, base, appName, id, input, have, restart, failover)
		have = ar.have
		restart = false
		if ar.err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Connection-level failure: the node may be gone; rotate.
			moved = ""
			baseIdx++
			continue
		}
		if ar.out != attemptRestart {
			conflicts = 0
		}
		switch ar.out {
		case attemptDone:
			return &StreamResult{Session: id, Reports: have}, nil
		case attemptMoved:
			moved = ar.moved // reconnect where the session went
		case attemptShed:
			c.Sheds.Add(1)
			if ar.status == http.StatusServiceUnavailable {
				// Node-level pressure or drain: a sibling may have room.
				moved = ""
				baseIdx++
			} // 429 is this tenant's rate limit: same everywhere, just wait
		case attemptRestart:
			if conflicts+1 < len(bases) {
				// This node refused to resume; another may hold the
				// session's slots (replication, migration). Keep the
				// local reports and try it before giving up on them.
				conflicts++
				moved = ""
				baseIdx++
				continue
			}
			c.Restarts.Add(1)
			restart = true
			conflicts = 0
		case attemptSuspend:
			// Drain: reconnect to the same base (its successor process).
		case attemptBroken:
			moved = ""
			baseIdx++
		}
	}
	return nil, fmt.Errorf("serve: stream %s gave up after %d attempts", id, maxAttempts)
}

type attemptOutcome int

const (
	attemptDone attemptOutcome = iota
	attemptShed
	attemptSuspend
	attemptBroken
	attemptRestart
	attemptMoved
)

// attemptResult is one connection attempt's outcome.
type attemptResult struct {
	out    attemptOutcome
	have   []sim.Report // updated report list
	moved  string       // base URL from a moved record (out == attemptMoved)
	status int          // HTTP status of a shed (0 otherwise)
	err    error
}

// streamAttempt makes one connection to base and runs it until end,
// suspend, moved, or failure, returning the updated report list.
func (c *Client) streamAttempt(ctx context.Context, base, appName, id string, input []byte, have []sim.Report, restart, failover bool) attemptResult {
	pr, pw := io.Pipe()
	defer pr.Close()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/stream?app="+appName, pr)
	if err != nil {
		return attemptResult{out: attemptBroken, have: have, err: err}
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	req.Header.Set("X-Session", id)
	req.Header.Set("X-Have-Reports", strconv.Itoa(len(have)))
	if restart {
		req.Header.Set("X-Restart", "1")
	}
	if failover {
		req.Header.Set("X-Failover", "1")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		pw.CloseWithError(err)
		return attemptResult{out: attemptBroken, have: have, err: err}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		pw.CloseWithError(io.ErrClosedPipe)
		return attemptResult{out: attemptShed, have: have, status: resp.StatusCode}
	case http.StatusConflict:
		pw.CloseWithError(io.ErrClosedPipe)
		return attemptResult{out: attemptRestart, have: have}
	default:
		pw.CloseWithError(io.ErrClosedPipe)
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return attemptResult{out: attemptBroken, have: have,
			err: fmt.Errorf("serve: stream status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))}
	}
	resumePos, _ := strconv.ParseInt(resp.Header.Get("X-Resume-Pos"), 10, 64)
	if resumePos < 0 || resumePos > int64(len(input)) {
		pw.CloseWithError(io.ErrClosedPipe)
		return attemptResult{out: attemptBroken, have: have, err: fmt.Errorf("serve: bad resume pos %d", resumePos)}
	}
	if resumePos > 0 {
		c.Resumes.Add(1)
	} else if len(have) > 0 {
		// A session starting at position 0 re-delivers every report (a
		// non-resumable server restarted, or the slot is gone): drop the
		// local copies so the assembled stream stays exactly-once. This
		// is the explicit degradation path — counted as a restart, never
		// silent.
		c.Restarts.Add(1)
		have = have[:0]
	}

	// Feed the remaining input in the background while reading reports.
	go func() {
		chunk := c.chunk()
		for off := int(resumePos); off < len(input); off += chunk {
			end := off + chunk
			if end > len(input) {
				end = len(input)
			}
			if _, werr := pw.Write(input[off:end]); werr != nil {
				return
			}
			if c.Pace > 0 {
				select {
				case <-time.After(c.Pace):
				case <-ctx.Done():
					pw.CloseWithError(ctx.Err())
					return
				}
			}
		}
		pw.Close()
	}()
	defer pw.CloseWithError(io.ErrClosedPipe) // unblock the writer on any exit

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		line, rerr := br.ReadString('\n')
		if rerr != nil {
			// Connection died mid-stream (server killed): retry and
			// resume. Any unterminated trailing fragment may be a record
			// truncated mid-number — a truncated "r 1234 567" still
			// parses as a valid-looking but wrong report — so only
			// newline-terminated lines count; the fragment is discarded
			// and the resume replays that report in full.
			return attemptResult{out: attemptBroken, have: have}
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "r":
			if len(fields) != 3 {
				return attemptResult{out: attemptBroken, have: have, err: fmt.Errorf("serve: malformed report %q", strings.TrimSpace(line))}
			}
			pos, perr := strconv.ParseInt(fields[1], 10, 64)
			state, serr := strconv.ParseInt(fields[2], 10, 64)
			if perr != nil || serr != nil {
				return attemptResult{out: attemptBroken, have: have, err: fmt.Errorf("serve: malformed report %q", strings.TrimSpace(line))}
			}
			have = append(have, sim.Report{Pos: pos, State: automata.StateID(state)})
		case "suspend":
			return attemptResult{out: attemptSuspend, have: have}
		case "restart":
			// The server cannot resume this session (no durable store
			// behind it): reconnect from scratch.
			return attemptResult{out: attemptRestart, have: have}
		case "moved":
			// The session was handed to a peer: reconnect there.
			if len(fields) != 3 {
				return attemptResult{out: attemptBroken, have: have, err: fmt.Errorf("serve: malformed moved record %q", strings.TrimSpace(line))}
			}
			return attemptResult{out: attemptMoved, have: have, moved: strings.TrimRight(fields[1], "/")}
		case "end":
			if len(fields) == 3 {
				n, nerr := strconv.ParseInt(fields[2], 10, 64)
				if nerr != nil {
					return attemptResult{out: attemptBroken, have: have, err: fmt.Errorf("serve: malformed end record %q", strings.TrimSpace(line))}
				}
				if n != int64(len(have)) {
					return attemptResult{out: attemptBroken, have: have, err: fmt.Errorf("serve: end declares %d reports, client holds %d", n, len(have))}
				}
			}
			return attemptResult{out: attemptDone, have: have}
		}
	}
}

// Match runs one /v1/match request. Shed responses return shed=true with
// a nil result and no error; retryAfter carries the server's Retry-After
// delay (zero when absent) so callers can back off at the rate the
// server asked for. With peers configured, a base that cannot be reached
// at all is skipped and the next one tried — one-shot matches are
// stateless, so any node can serve them.
func (c *Client) Match(ctx context.Context, appName string, input []byte) (res *matchResponse, shed bool, retryAfter time.Duration, err error) {
	bases := c.bases()
	for i, base := range bases {
		res, shed, retryAfter, err = c.matchOnce(ctx, base, appName, input)
		var ue *url.Error
		if err != nil && errors.As(err, &ue) && ctx.Err() == nil && i+1 < len(bases) {
			c.Failovers.Add(1)
			continue
		}
		return res, shed, retryAfter, err
	}
	return res, shed, retryAfter, err
}

// matchOnce runs one /v1/match request against one base.
func (c *Client) matchOnce(ctx context.Context, base, appName string, input []byte) (res *matchResponse, shed bool, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/match?app="+appName, strings.NewReader(string(input)))
	if err != nil {
		return nil, false, 0, err
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		c.Sheds.Add(1)
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		return nil, true, retryAfter, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, false, 0, fmt.Errorf("serve: match status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var m matchResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, false, 0, err
	}
	return &m, false, 0, nil
}

// LoadgenOptions configures RunLoadgen.
type LoadgenOptions struct {
	// URL is the server base URL (e.g. "http://127.0.0.1:8425").
	URL string
	// Peers are alternate server base URLs clients fail over to (and
	// follow moved records to) when the primary dies mid-run.
	Peers []string
	// Apps are workload abbreviations to exercise (default HM, PEN, TCP).
	Apps []string
	// AppConfig scales the generated workloads; must match the server's.
	AppConfig workloads.Config
	// StreamsPerApp is the number of verified stream sessions per app
	// (default 2).
	StreamsPerApp int
	// Requests is the number of match requests in the latency phase
	// (default 64).
	Requests int
	// Concurrency is the number of parallel loadgen workers (default 8).
	Concurrency int
	// Tenants spreads sessions across this many tenant identities
	// (default 4).
	Tenants int
	// Overload, when positive, fires this many concurrent no-retry match
	// requests to provoke explicit shedding (default 0: skip the phase).
	Overload int
	// Pace stretches phase-1 streams by sleeping between chunk writes,
	// widening the window in which an external chaos harness can kill
	// the server mid-stream (default 0: full speed).
	Pace time.Duration
	// Timeout bounds the whole run (default 5 minutes).
	Timeout time.Duration
}

func (o LoadgenOptions) withDefaults() LoadgenOptions {
	if len(o.Apps) == 0 {
		o.Apps = []string{"HM", "PEN", "TCP"}
	}
	if o.StreamsPerApp <= 0 {
		o.StreamsPerApp = 2
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	return o
}

// BenchServe is the benchmark record written to BENCH_serve.json.
type BenchServe struct {
	Apps          []string `json:"apps"`
	Streams       int      `json:"streams"`
	StreamsOK     int      `json:"streamsVerified"`
	Requests      int      `json:"matchRequests"`
	MatchAccepted int64    `json:"matchAccepted"`

	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MeanMs float64 `json:"meanMs"`

	Sheds          int64 `json:"sheds"`
	Resumes        int64 `json:"resumes"`
	Retries        int64 `json:"retries"`
	Restarts       int64 `json:"restarts"`
	Failovers      int64 `json:"failovers"`
	OverloadShed   int64 `json:"overloadShed"`
	OverloadOK     int64 `json:"overloadAccepted"`
	FailedAccepted int64 `json:"failedAccepted"`
}

// RunLoadgen drives a running server through verification, latency, and
// overload phases and returns the benchmark record. It fails hard on any
// correctness violation: a stream whose report sequence differs from the
// uninterrupted local run, or an accepted request that then fails.
func RunLoadgen(ctx context.Context, o LoadgenOptions) (*BenchServe, error) {
	o = o.withDefaults()
	ctx, cancel := context.WithTimeout(ctx, o.Timeout)
	defer cancel()

	type appCase struct {
		abbr     string
		net      *automata.Network
		input    []byte
		expected []sim.Report
	}
	cases := make([]appCase, 0, len(o.Apps))
	for _, abbr := range o.Apps {
		app, err := workloads.Build(abbr, o.AppConfig)
		if err != nil {
			return nil, fmt.Errorf("loadgen: build %s: %w", abbr, err)
		}
		res := sim.Run(app.Net, app.Input, sim.Options{CollectReports: true})
		cases = append(cases, appCase{abbr: abbr, net: app.Net, input: app.Input, expected: res.Reports})
	}

	bench := &BenchServe{Apps: o.Apps, Requests: o.Requests}
	cl := &Client{URL: func() string { return o.URL }}

	// Phase 1: verified streams. Every session's assembled report stream
	// must be bit-identical to the uninterrupted local run.
	type streamJob struct {
		c      appCase
		tenant string
	}
	var jobs []streamJob
	for i, c := range cases {
		for s := 0; s < o.StreamsPerApp; s++ {
			jobs = append(jobs, streamJob{c: c, tenant: fmt.Sprintf("tenant-%d", (i*o.StreamsPerApp+s)%o.Tenants)})
		}
	}
	bench.Streams = len(jobs)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, o.Concurrency)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j streamJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc := &Client{URL: cl.URL, Peers: o.Peers, Tenant: j.tenant, Pace: o.Pace}
			res, err := sc.Stream(ctx, j.c.abbr, j.c.input)
			mu.Lock()
			defer mu.Unlock()
			bench.Sheds += sc.Sheds.Load()
			bench.Resumes += sc.Resumes.Load()
			bench.Retries += sc.Retries.Load()
			bench.Restarts += sc.Restarts.Load()
			bench.Failovers += sc.Failovers.Load()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if err := sameReports(res.Reports, j.c.expected); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("loadgen: %s stream diverged: %w", j.c.abbr, err)
				}
				return
			}
			bench.StreamsOK++
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return bench, firstErr
	}

	// Phase 2: match latency over accepted requests.
	lat := make([]float64, 0, o.Requests)
	for i := 0; i < o.Requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cases[i%len(cases)]
			mc := &Client{URL: cl.URL, Peers: o.Peers, Tenant: fmt.Sprintf("tenant-%d", i%o.Tenants)}
			input := c.input
			if len(input) > 16384 {
				input = input[:16384]
			}
			// Jittered exponential backoff with a ceiling: each retry at
			// least doubles the floor (so a persistently shedding server
			// sees geometrically decaying pressure instead of a fixed-rate
			// hammer), the server's Retry-After raises but never lowers a
			// given wait, ±50% jitter de-synchronizes the worker herd, and
			// 2s caps the whole ladder.
			const backoffCeil = 2 * time.Second
			backoff := 20 * time.Millisecond
			wait := func(floor time.Duration) bool {
				delay := backoff
				if floor > delay {
					delay = floor
				}
				if delay > backoffCeil {
					delay = backoffCeil
				}
				delay = delay/2 + time.Duration(rand.Int63n(int64(delay)))
				if backoff < backoffCeil {
					backoff *= 2
				}
				select {
				case <-time.After(delay):
					return true
				case <-ctx.Done():
					return false
				}
			}
			for {
				start := time.Now()
				_, shed, retryAfter, err := mc.Match(ctx, c.abbr, input)
				elapsed := time.Since(start)
				mu.Lock()
				if shed {
					bench.Sheds++
					mu.Unlock()
					if !wait(retryAfter) {
						return
					}
					continue
				}
				if err != nil {
					// Transport-level failures are transient under chaos
					// (the server may be mid-restart): back off and retry.
					// Anything the server said over HTTP is a real failure.
					var ue *url.Error
					if errors.As(err, &ue) && ctx.Err() == nil {
						bench.Retries++
						mu.Unlock()
						if !wait(0) {
							return
						}
						continue
					}
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lat = append(lat, float64(elapsed.Microseconds())/1000)
				bench.MatchAccepted++
				bench.Failovers += mc.Failovers.Swap(0)
				mu.Unlock()
				return
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return bench, firstErr
	}
	bench.P50Ms, bench.P99Ms, bench.MeanMs = percentiles(lat)

	// Phase 3: overload. Fire a burst of single-attempt paced streams (no
	// retries — a shed is a shed). The server must refuse some explicitly,
	// and every stream it accepts must run to a verified completion:
	// admission control never accepts work it cannot serve. Streams, not
	// matches, carry this phase because their sessions block on I/O
	// between chunks, so the burst genuinely overlaps even on one CPU.
	if o.Overload > 0 {
		c := cases[0]
		input := c.input
		if len(input) > 16384 {
			input = input[:16384]
		}
		truncated := sim.Run(c.net, input, sim.Options{CollectReports: true}).Reports
		var owg sync.WaitGroup
		for i := 0; i < o.Overload; i++ {
			owg.Add(1)
			go func(i int) {
				defer owg.Done()
				oc := &Client{URL: cl.URL, Tenant: "burst", Chunk: 1024, Pace: 500 * time.Microsecond}
				ar := oc.streamAttempt(ctx, oc.bases()[0], c.abbr, newSessionID(), input, nil, false, false)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case ar.out == attemptShed:
					bench.OverloadShed++
				case ar.out == attemptDone && ar.err == nil && sameReports(ar.have, truncated) == nil:
					bench.OverloadOK++
				default:
					// Accepted (or mid-flight) and then failed: the exact
					// outcome admission control exists to prevent.
					bench.FailedAccepted++
				}
			}(i)
		}
		owg.Wait()
	}
	return bench, nil
}

// WriteBenchServe writes the benchmark record as indented JSON.
func WriteBenchServe(path string, b *BenchServe) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// sameReports verifies got and want are the identical sequence.
func sameReports(got, want []sim.Report) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d reports, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("report %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// percentiles returns p50, p99, and mean of ms samples.
func percentiles(ms []float64) (p50, p99, mean float64) {
	if len(ms) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	idx := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return idx(0.50), idx(0.99), sum / float64(len(s))
}
