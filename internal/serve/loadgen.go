// Load generator and resilient client for the serve benchmark. The
// Client implements the session protocol from the consumer's side —
// retry with backoff across sheds, suspends, kills, and restarts — and
// RunLoadgen drives it through three phases: verified streaming (every
// session's report stream compared against an uninterrupted local run),
// match latency (p50/p99 over accepted requests), and overload (prove
// the server sheds explicitly instead of failing accepted work).
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparseap/internal/automata"
	"sparseap/internal/sim"
	"sparseap/internal/workloads"
)

// Client is a session-protocol client with retry and backoff. The zero
// value is not usable; fill URL at least.
type Client struct {
	// URL returns the server base URL (a func so a chaos harness can
	// repoint the client at a restarted server between attempts).
	URL func() string
	// Tenant is sent as X-Tenant.
	Tenant string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Chunk is the body write granularity (default 4096).
	Chunk int
	// Pace sleeps between chunk writes, stretching a stream out so a
	// chaos test can kill the server mid-flight.
	Pace time.Duration
	// Backoff is the initial retry delay (default 25ms, doubling to 1s).
	Backoff time.Duration
	// MaxAttempts bounds connection attempts per stream (default 64).
	MaxAttempts int

	// Sheds counts attempts refused by admission control.
	Sheds atomic.Int64
	// Resumes counts successful reconnects that resumed mid-stream.
	Resumes atomic.Int64
	// Retries counts all re-connection attempts after the first.
	Retries atomic.Int64
	// Restarts counts forced session restarts (409 responses and
	// in-stream restart records).
	Restarts atomic.Int64
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) chunk() int {
	if c.Chunk > 0 {
		return c.Chunk
	}
	return 4096
}

// StreamResult is the outcome of one completed stream session.
type StreamResult struct {
	Session string
	Reports []sim.Report
	// EndPos and EndReports echo the server's end record.
	EndPos, EndReports int64
}

// Stream runs input through app as one session, surviving sheds,
// suspends, disconnects, and server restarts, and returns the exactly-
// once report stream. A 409 from the server restarts the session from
// scratch with local state discarded (the stream stays exactly-once from
// the caller's view because everything is dropped together).
func (c *Client) Stream(ctx context.Context, appName string, input []byte) (*StreamResult, error) {
	id := newSessionID()
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 64
	}
	var have []sim.Report
	restart := false

	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			c.Retries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if backoff < time.Second {
				backoff *= 2
			}
		}
		if restart {
			have = have[:0]
		}
		res, state, err := c.streamAttempt(ctx, appName, id, input, have, restart)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue // connection-level failure: retry
		}
		have = state
		switch res {
		case attemptDone:
			return &StreamResult{Session: id, Reports: have}, nil
		case attemptShed:
			c.Sheds.Add(1)
		case attemptRestart:
			c.Restarts.Add(1)
			restart = true
		case attemptSuspend, attemptBroken:
			restart = false
		}
	}
	return nil, fmt.Errorf("serve: stream %s gave up after %d attempts", id, maxAttempts)
}

type attemptOutcome int

const (
	attemptDone attemptOutcome = iota
	attemptShed
	attemptSuspend
	attemptBroken
	attemptRestart
)

// streamAttempt makes one connection and runs it until end, suspend, or
// failure, returning the updated report list.
func (c *Client) streamAttempt(ctx context.Context, appName, id string, input []byte, have []sim.Report, restart bool) (attemptOutcome, []sim.Report, error) {
	pr, pw := io.Pipe()
	defer pr.Close()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.URL()+"/v1/stream?app="+appName, pr)
	if err != nil {
		return attemptBroken, have, err
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	req.Header.Set("X-Session", id)
	req.Header.Set("X-Have-Reports", strconv.Itoa(len(have)))
	if restart {
		req.Header.Set("X-Restart", "1")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		pw.CloseWithError(err)
		return attemptBroken, have, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		pw.CloseWithError(io.ErrClosedPipe)
		return attemptShed, have, nil
	case http.StatusConflict:
		pw.CloseWithError(io.ErrClosedPipe)
		return attemptRestart, have, nil
	default:
		pw.CloseWithError(io.ErrClosedPipe)
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return attemptBroken, have, fmt.Errorf("serve: stream status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	resumePos, _ := strconv.ParseInt(resp.Header.Get("X-Resume-Pos"), 10, 64)
	if resumePos < 0 || resumePos > int64(len(input)) {
		pw.CloseWithError(io.ErrClosedPipe)
		return attemptBroken, have, fmt.Errorf("serve: bad resume pos %d", resumePos)
	}
	if resumePos > 0 {
		c.Resumes.Add(1)
	} else if len(have) > 0 {
		// A session starting at position 0 re-delivers every report (a
		// non-resumable server restarted, or the slot is gone): drop the
		// local copies so the assembled stream stays exactly-once.
		have = have[:0]
	}

	// Feed the remaining input in the background while reading reports.
	go func() {
		chunk := c.chunk()
		for off := int(resumePos); off < len(input); off += chunk {
			end := off + chunk
			if end > len(input) {
				end = len(input)
			}
			if _, werr := pw.Write(input[off:end]); werr != nil {
				return
			}
			if c.Pace > 0 {
				select {
				case <-time.After(c.Pace):
				case <-ctx.Done():
					pw.CloseWithError(ctx.Err())
					return
				}
			}
		}
		pw.Close()
	}()
	defer pw.CloseWithError(io.ErrClosedPipe) // unblock the writer on any exit

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		line, rerr := br.ReadString('\n')
		if rerr != nil {
			// Connection died mid-stream (server killed): retry and
			// resume. Any unterminated trailing fragment may be a record
			// truncated mid-number — a truncated "r 1234 567" still
			// parses as a valid-looking but wrong report — so only
			// newline-terminated lines count; the fragment is discarded
			// and the resume replays that report in full.
			return attemptBroken, have, nil
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "r":
			if len(fields) != 3 {
				return attemptBroken, have, fmt.Errorf("serve: malformed report %q", strings.TrimSpace(line))
			}
			pos, perr := strconv.ParseInt(fields[1], 10, 64)
			state, serr := strconv.ParseInt(fields[2], 10, 64)
			if perr != nil || serr != nil {
				return attemptBroken, have, fmt.Errorf("serve: malformed report %q", strings.TrimSpace(line))
			}
			have = append(have, sim.Report{Pos: pos, State: automata.StateID(state)})
		case "suspend":
			return attemptSuspend, have, nil
		case "restart":
			// The server cannot resume this session (no durable store
			// behind it): reconnect from scratch.
			return attemptRestart, have, nil
		case "end":
			if len(fields) == 3 {
				n, nerr := strconv.ParseInt(fields[2], 10, 64)
				if nerr != nil {
					return attemptBroken, have, fmt.Errorf("serve: malformed end record %q", strings.TrimSpace(line))
				}
				if n != int64(len(have)) {
					return attemptBroken, have, fmt.Errorf("serve: end declares %d reports, client holds %d", n, len(have))
				}
			}
			return attemptDone, have, nil
		}
	}
}

// Match runs one /v1/match request. Shed responses return shed=true with
// a nil result and no error; retryAfter carries the server's Retry-After
// delay (zero when absent) so callers can back off at the rate the
// server asked for.
func (c *Client) Match(ctx context.Context, appName string, input []byte) (res *matchResponse, shed bool, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.URL()+"/v1/match?app="+appName, strings.NewReader(string(input)))
	if err != nil {
		return nil, false, 0, err
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		c.Sheds.Add(1)
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		return nil, true, retryAfter, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, false, 0, fmt.Errorf("serve: match status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var m matchResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, false, 0, err
	}
	return &m, false, 0, nil
}

// LoadgenOptions configures RunLoadgen.
type LoadgenOptions struct {
	// URL is the server base URL (e.g. "http://127.0.0.1:8425").
	URL string
	// Apps are workload abbreviations to exercise (default HM, PEN, TCP).
	Apps []string
	// AppConfig scales the generated workloads; must match the server's.
	AppConfig workloads.Config
	// StreamsPerApp is the number of verified stream sessions per app
	// (default 2).
	StreamsPerApp int
	// Requests is the number of match requests in the latency phase
	// (default 64).
	Requests int
	// Concurrency is the number of parallel loadgen workers (default 8).
	Concurrency int
	// Tenants spreads sessions across this many tenant identities
	// (default 4).
	Tenants int
	// Overload, when positive, fires this many concurrent no-retry match
	// requests to provoke explicit shedding (default 0: skip the phase).
	Overload int
	// Pace stretches phase-1 streams by sleeping between chunk writes,
	// widening the window in which an external chaos harness can kill
	// the server mid-stream (default 0: full speed).
	Pace time.Duration
	// Timeout bounds the whole run (default 5 minutes).
	Timeout time.Duration
}

func (o LoadgenOptions) withDefaults() LoadgenOptions {
	if len(o.Apps) == 0 {
		o.Apps = []string{"HM", "PEN", "TCP"}
	}
	if o.StreamsPerApp <= 0 {
		o.StreamsPerApp = 2
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	return o
}

// BenchServe is the benchmark record written to BENCH_serve.json.
type BenchServe struct {
	Apps          []string `json:"apps"`
	Streams       int      `json:"streams"`
	StreamsOK     int      `json:"streamsVerified"`
	Requests      int      `json:"matchRequests"`
	MatchAccepted int64    `json:"matchAccepted"`

	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MeanMs float64 `json:"meanMs"`

	Sheds          int64 `json:"sheds"`
	Resumes        int64 `json:"resumes"`
	Retries        int64 `json:"retries"`
	OverloadShed   int64 `json:"overloadShed"`
	OverloadOK     int64 `json:"overloadAccepted"`
	FailedAccepted int64 `json:"failedAccepted"`
}

// RunLoadgen drives a running server through verification, latency, and
// overload phases and returns the benchmark record. It fails hard on any
// correctness violation: a stream whose report sequence differs from the
// uninterrupted local run, or an accepted request that then fails.
func RunLoadgen(ctx context.Context, o LoadgenOptions) (*BenchServe, error) {
	o = o.withDefaults()
	ctx, cancel := context.WithTimeout(ctx, o.Timeout)
	defer cancel()

	type appCase struct {
		abbr     string
		net      *automata.Network
		input    []byte
		expected []sim.Report
	}
	cases := make([]appCase, 0, len(o.Apps))
	for _, abbr := range o.Apps {
		app, err := workloads.Build(abbr, o.AppConfig)
		if err != nil {
			return nil, fmt.Errorf("loadgen: build %s: %w", abbr, err)
		}
		res := sim.Run(app.Net, app.Input, sim.Options{CollectReports: true})
		cases = append(cases, appCase{abbr: abbr, net: app.Net, input: app.Input, expected: res.Reports})
	}

	bench := &BenchServe{Apps: o.Apps, Requests: o.Requests}
	cl := &Client{URL: func() string { return o.URL }}

	// Phase 1: verified streams. Every session's assembled report stream
	// must be bit-identical to the uninterrupted local run.
	type streamJob struct {
		c      appCase
		tenant string
	}
	var jobs []streamJob
	for i, c := range cases {
		for s := 0; s < o.StreamsPerApp; s++ {
			jobs = append(jobs, streamJob{c: c, tenant: fmt.Sprintf("tenant-%d", (i*o.StreamsPerApp+s)%o.Tenants)})
		}
	}
	bench.Streams = len(jobs)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, o.Concurrency)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j streamJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc := &Client{URL: cl.URL, Tenant: j.tenant, Pace: o.Pace}
			res, err := sc.Stream(ctx, j.c.abbr, j.c.input)
			mu.Lock()
			defer mu.Unlock()
			bench.Sheds += sc.Sheds.Load()
			bench.Resumes += sc.Resumes.Load()
			bench.Retries += sc.Retries.Load()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if err := sameReports(res.Reports, j.c.expected); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("loadgen: %s stream diverged: %w", j.c.abbr, err)
				}
				return
			}
			bench.StreamsOK++
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return bench, firstErr
	}

	// Phase 2: match latency over accepted requests.
	lat := make([]float64, 0, o.Requests)
	for i := 0; i < o.Requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cases[i%len(cases)]
			mc := &Client{URL: cl.URL, Tenant: fmt.Sprintf("tenant-%d", i%o.Tenants)}
			input := c.input
			if len(input) > 16384 {
				input = input[:16384]
			}
			for {
				start := time.Now()
				_, shed, retryAfter, err := mc.Match(ctx, c.abbr, input)
				elapsed := time.Since(start)
				mu.Lock()
				if shed {
					bench.Sheds++
					mu.Unlock()
					// Back off for as long as the server asked (capped),
					// falling back to a short delay when it said nothing.
					delay := retryAfter
					if delay <= 0 {
						delay = 20 * time.Millisecond
					} else if delay > 2*time.Second {
						delay = 2 * time.Second
					}
					select {
					case <-time.After(delay):
						continue
					case <-ctx.Done():
						return
					}
				}
				if err != nil {
					// Transport-level failures are transient under chaos
					// (the server may be mid-restart): back off and retry.
					// Anything the server said over HTTP is a real failure.
					var ue *url.Error
					if errors.As(err, &ue) && ctx.Err() == nil {
						bench.Retries++
						mu.Unlock()
						select {
						case <-time.After(20 * time.Millisecond):
							continue
						case <-ctx.Done():
							return
						}
					}
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lat = append(lat, float64(elapsed.Microseconds())/1000)
				bench.MatchAccepted++
				mu.Unlock()
				return
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return bench, firstErr
	}
	bench.P50Ms, bench.P99Ms, bench.MeanMs = percentiles(lat)

	// Phase 3: overload. Fire a burst of single-attempt paced streams (no
	// retries — a shed is a shed). The server must refuse some explicitly,
	// and every stream it accepts must run to a verified completion:
	// admission control never accepts work it cannot serve. Streams, not
	// matches, carry this phase because their sessions block on I/O
	// between chunks, so the burst genuinely overlaps even on one CPU.
	if o.Overload > 0 {
		c := cases[0]
		input := c.input
		if len(input) > 16384 {
			input = input[:16384]
		}
		truncated := sim.Run(c.net, input, sim.Options{CollectReports: true}).Reports
		var owg sync.WaitGroup
		for i := 0; i < o.Overload; i++ {
			owg.Add(1)
			go func(i int) {
				defer owg.Done()
				oc := &Client{URL: cl.URL, Tenant: "burst", Chunk: 1024, Pace: 500 * time.Microsecond}
				out, reports, err := oc.streamAttempt(ctx, c.abbr, newSessionID(), input, nil, false)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case out == attemptShed:
					bench.OverloadShed++
				case out == attemptDone && err == nil && sameReports(reports, truncated) == nil:
					bench.OverloadOK++
				default:
					// Accepted (or mid-flight) and then failed: the exact
					// outcome admission control exists to prevent.
					bench.FailedAccepted++
				}
			}(i)
		}
		owg.Wait()
	}
	return bench, nil
}

// WriteBenchServe writes the benchmark record as indented JSON.
func WriteBenchServe(path string, b *BenchServe) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// sameReports verifies got and want are the identical sequence.
func sameReports(got, want []sim.Report) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d reports, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("report %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// percentiles returns p50, p99, and mean of ms samples.
func percentiles(ms []float64) (p50, p99, mean float64) {
	if len(ms) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	idx := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return idx(0.50), idx(0.99), sum / float64(len(s))
}
