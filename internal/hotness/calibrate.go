package hotness

import (
	"math"
	"sync"
)

// Feedback is one guarded run's observed outcome, fed back by
// spap.RunGuarded when its Options carry a Calibrator. Mispredicts is
// the intermediate-report count — every intermediate report is a hot→cold
// boundary crossing the static cut failed to keep on the hot side — and
// Symbols the input length it accrued over. Trips, Widened and
// FallbackBaseline mirror the guard ladder's escalation counters: a
// widened or fallen-back run means the cut was badly wrong, not just
// leaky.
type Feedback struct {
	Mispredicts      int
	Symbols          int
	Trips            int
	Widened          int
	FallbackBaseline int
}

// Calibrator closes the prediction loop online: it tracks an exponential
// moving average of the observed misprediction density (intermediate
// reports per input symbol) and nudges the score bias so future analyses
// cut deeper when the static prediction proved too shallow and shallower
// when it proved conservative. It is safe for concurrent use; guarded
// runs execute on worker pools.
type Calibrator struct {
	// Target is the acceptable misprediction density. The paper's
	// evaluation tolerates roughly one intermediate report per few
	// hundred symbols before SpAP stalls dominate; 0 means
	// DefaultTarget.
	Target float64
	// Alpha is the EWMA smoothing factor in (0,1]; 0 means
	// DefaultAlpha.
	Alpha float64
	// Gain scales the bias correction per observation; 0 means
	// DefaultGain.
	Gain float64

	mu       sync.Mutex
	density  float64 // EWMA of mispredicts/symbol
	seen     int     // observations folded in
	bias     float64 // accumulated score-bias correction
	escalate int     // runs that widened or fell back to baseline
}

// Calibrator defaults.
const (
	// DefaultTarget is the acceptable intermediate-report density
	// (one per 256 symbols).
	DefaultTarget = 1.0 / 256
	// DefaultAlpha is the EWMA smoothing factor.
	DefaultAlpha = 0.25
	// DefaultGain converts log-density error into score bias.
	DefaultGain = 0.05
	// maxBias bounds the accumulated correction so a pathological
	// stream cannot push every score to 0 or 1 permanently.
	maxBias = 0.35
)

// Observe folds one run's outcome into the moving averages and updates
// the bias correction. Runs with zero symbols are ignored.
func (c *Calibrator) Observe(fb Feedback) {
	if fb.Symbols <= 0 {
		return
	}
	target := c.Target
	if target <= 0 {
		target = DefaultTarget
	}
	alpha := c.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	gain := c.Gain
	if gain <= 0 {
		gain = DefaultGain
	}
	d := float64(fb.Mispredicts) / float64(fb.Symbols)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == 0 {
		c.density = d
	} else {
		c.density = alpha*d + (1-alpha)*c.density
	}
	c.seen++
	if fb.Widened > 0 || fb.FallbackBaseline > 0 {
		c.escalate++
	}
	// Error in log space, clamped to ±1 decade per observation: density
	// 10× over target pulls the bias up by one gain unit (hotter scores
	// → deeper cuts → fewer intermediate reports); density under target
	// pushes it down, so an over-conservative cut gradually releases
	// cold states. A widened or fallen-back run is direct evidence the
	// cut was too shallow regardless of the density the surviving
	// attempt showed (widening itself removes the intermediates), so
	// escalation forces a full decade of upward error.
	err := math.Log10((c.density + 1e-12) / target)
	if err > 1 {
		err = 1
	} else if err < -1 {
		err = -1
	}
	if fb.Widened > 0 || fb.FallbackBaseline > 0 {
		err = 1
	}
	c.bias += gain * err
	if c.bias > maxBias {
		c.bias = maxBias
	} else if c.bias < -maxBias {
		c.bias = -maxBias
	}
}

// Bias returns the accumulated score-bias correction in
// [-maxBias, +maxBias]. Positive means "predict hotter" (the static cut
// was too shallow).
func (c *Calibrator) Bias() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bias
}

// Density returns the EWMA misprediction density and the number of
// observations it covers.
func (c *Calibrator) Density() (float64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.density, c.seen
}

// Apply returns cfg with the calibrated bias folded into its weights, for
// the next Analyze round. The receiver's state is unchanged.
func (c *Calibrator) Apply(cfg Config) Config {
	cfg = cfg.withDefaults()
	cfg.Weights.Bias += c.Bias()
	return cfg
}
