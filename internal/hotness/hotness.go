// Package hotness implements profile-free static hot/cold prediction: a
// probabilistic abstract interpretation over an automata network that
// estimates, from structure alone, how often each state activates — the
// information the paper otherwise extracts by profiling a 1% input prefix
// (Section IV-A).
//
// The analysis propagates expected per-cycle *activation mass* from the
// start states through the topology as a fixpoint over the SCC
// condensation (the same iteration scheme as internal/dataflow, but over
// the interval lattice [0,1] instead of the symbol-set lattice):
//
//	drive(s)  = 1                   if s is a start-all-input state
//	drive(s)  = 1/Horizon           if s is a start-of-data state
//	enable(s) = min(1, drive(s) + Σ_{p∈preds(s)} act(p))
//	act(s)    = enable(s) · q(s)
//
// where q(s) is the probability that one input symbol lands in the
// state's fire set (internal/dataflow's reachable-symbol refinement of
// the raw match set), measured under a configurable input byte
// distribution restricted to the live alphabet — the uniform model by
// default, or an empirical histogram when the operator knows the traffic
// shape. The transfer function is monotone on [0,1]^S, so iterating each
// strongly connected component to a local fixpoint in condensation order
// converges; acyclic regions are visited exactly once.
//
// The converged activity is combined with cheap structural features
// (normalized topological depth, symbol-set width and match entropy,
// fan-in/out, cycle membership) into a per-state hotness score in [0,1],
// and the score thresholds into a per-NFA static partition layer k_U —
// hotcold.StrategyStatic. A Calibrator can feed observed misprediction
// densities from guarded runs back into the score weights, closing the
// loop without ever running a profiling pass.
package hotness

import (
	"math"
	"math/bits"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
	"sparseap/internal/dataflow"
	"sparseap/internal/graph"
	"sparseap/internal/symset"
)

// Model is an input byte distribution: Model[b] is the relative weight of
// symbol b (weights need not be normalized). The zero value means the
// uniform distribution over all 256 symbols.
type Model [symset.AlphabetSize]float64

// Uniform returns the uniform byte distribution.
func Uniform() Model {
	var m Model
	for i := range m {
		m[i] = 1
	}
	return m
}

// FromHistogram returns the empirical byte distribution of a sample
// stream, with add-half smoothing so unseen symbols keep a small nonzero
// mass (a static analysis should never conclude "impossible" from a
// finite sample). An empty sample yields the uniform model.
func FromHistogram(sample []byte) Model {
	var m Model
	if len(sample) == 0 {
		return Uniform()
	}
	for i := range m {
		m[i] = 0.5
	}
	for _, b := range sample {
		m[b]++
	}
	return m
}

// mass returns the total weight of the symbols in set.
func (m Model) mass(set symset.Set) float64 {
	var t float64
	for w := 0; w < 4; w++ {
		word := set[w]
		for word != 0 {
			b := w*64 + bits.TrailingZeros64(word)
			t += m[b]
			word &= word - 1
		}
	}
	return t
}

// ProbWithin returns the probability that a symbol drawn from the model,
// conditioned on landing inside universe, lands inside set. An empty or
// zero-mass universe yields 0. The zero-value model behaves uniformly.
func (m Model) ProbWithin(set, universe symset.Set) float64 {
	if m.isZero() {
		m = Uniform()
	}
	u := m.mass(universe)
	if u == 0 {
		return 0
	}
	return m.mass(set.Intersect(universe)) / u
}

// isZero reports whether every weight is zero (the "uniform by default"
// zero value).
func (m Model) isZero() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

// Weights combines the converged activity estimate with the structural
// features into the hotness score. Each feature is pre-squashed into
// [0,1]; the score is the clamped weighted sum.
type Weights struct {
	// Activity weighs the saturated expected-activation count
	// raw/(raw+1), where raw = act(s) × Horizon. This is the dominant
	// term: raw ≥ 1 (the state is expected to fire at least once over
	// the horizon) alone crosses the default 0.5 threshold.
	Activity float64
	// Depth weighs shallowness, 1 − NormalizedDepth (Section III-B:
	// shallow states are empirically hot).
	Depth float64
	// Width weighs the fire-set probability q(s) itself — wide matchers
	// stay warm even when the enabling chain is thin.
	Width float64
	// Entropy weighs the binary entropy of q(s): states whose match
	// event is maximally uncertain contribute prediction risk, so a
	// positive weight hedges them into the hot set.
	Entropy float64
	// FanIn and FanOut weigh squashed degree counts (x/(x+8)): hubs
	// accumulate and spread activation mass.
	FanIn  float64
	FanOut float64
	// Cycle weighs SCC/self-loop membership: a state inside a cycle
	// re-enables itself and tends to stay hot once struck.
	Cycle float64
	// Bias shifts every score; the Calibrator's recalibration target.
	Bias float64
}

// DefaultWeights returns the weights tuned on the 26-application suite
// (see internal/exp.Predict): activity dominates, with small structural
// boosts for shallow, wide, well-connected and cyclic states.
func DefaultWeights() Weights {
	return Weights{
		Activity: 1.0,
		Depth:    0.10,
		Width:    0.05,
		Entropy:  0,
		FanIn:    0.02,
		FanOut:   0.02,
		Cycle:    0.05,
		Bias:     0,
	}
}

// Config parameterizes the analysis. The zero value uses the uniform
// input model, DefaultWeights, DefaultHorizon and DefaultThreshold.
type Config struct {
	// Model is the assumed input byte distribution (zero = uniform).
	Model Model
	// Weights combines activity and structure into the score; the zero
	// value means DefaultWeights.
	Weights Weights
	// Horizon is the number of input symbols the expected-activation
	// estimate raw = act × Horizon refers to — the static stand-in for
	// the profiling prefix length. 0 means DefaultHorizon.
	Horizon float64
	// Threshold is the score at or above which a state is predicted
	// hot. 0 means DefaultThreshold.
	Threshold float64
	// Alphabet restricts the underlying dataflow analysis; zero means
	// the full 256-symbol alphabet (matching lint.Options).
	Alphabet symset.Set
	// MaxIter caps fixpoint sweeps per strongly connected component; 0
	// means DefaultMaxIter.
	MaxIter int
	// Epsilon is the per-state convergence tolerance; 0 means
	// DefaultEpsilon.
	Epsilon float64
	// Topo, when non-nil, reuses an existing topological analysis.
	Topo *graph.Topo
	// Facts, when non-nil, reuses an existing dataflow analysis (its
	// alphabet wins over Alphabet).
	Facts *dataflow.Facts
}

// Analysis defaults.
const (
	// DefaultHorizon approximates the paper's 1% profiling prefix at
	// the repository's default 1/8 scale (0.01 × 131072 ≈ 1310).
	DefaultHorizon = 1310
	// DefaultThreshold is the hot-score cutoff.
	DefaultThreshold = 0.5
	// DefaultMaxIter bounds per-SCC fixpoint sweeps.
	DefaultMaxIter = 64
	// DefaultEpsilon is the per-state fixpoint tolerance.
	DefaultEpsilon = 1e-9
)

func (c Config) withDefaults() Config {
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights()
	}
	if c.Horizon <= 0 {
		c.Horizon = DefaultHorizon
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.MaxIter <= 0 {
		c.MaxIter = DefaultMaxIter
	}
	if c.Epsilon <= 0 {
		c.Epsilon = DefaultEpsilon
	}
	return c
}

// Analysis holds the per-state results over one network. Slices are
// indexed by global state ID.
type Analysis struct {
	// Net is the analyzed network.
	Net *automata.Network
	// Topo is the layered topological order used for depth features and
	// cut selection.
	Topo *graph.Topo
	// Facts is the dataflow analysis supplying fire sets.
	Facts *dataflow.Facts
	// Cfg is the resolved configuration (defaults filled in).
	Cfg Config

	// FireP[s] = q(s): the model probability that one input symbol lies
	// in state s's fire set, conditioned on the live alphabet.
	FireP []float64
	// Activity[s] is the converged expected per-cycle activation mass.
	Activity []float64
	// Score[s] is the combined hotness score in [0,1].
	Score []float64
	// Iterations counts state re-evaluations of the fixpoint.
	Iterations int
}

// Analyze runs the activity fixpoint and scores every state.
func Analyze(net *automata.Network, cfg Config) *Analysis {
	cfg = cfg.withDefaults()
	a := &Analysis{
		Net:      net,
		Topo:     cfg.Topo,
		Facts:    cfg.Facts,
		Cfg:      cfg,
		FireP:    make([]float64, net.Len()),
		Activity: make([]float64, net.Len()),
		Score:    make([]float64, net.Len()),
	}
	if a.Topo == nil {
		a.Topo = graph.TopoOrder(net)
	}
	if a.Facts == nil {
		a.Facts = dataflow.Analyze(net, cfg.Alphabet)
	}
	if net.Len() == 0 {
		return a
	}
	live := a.Facts.LiveAlphabet()
	for s := 0; s < net.Len(); s++ {
		a.FireP[s] = cfg.Model.ProbWithin(a.Facts.Fire[s], live)
	}
	a.fixpoint()
	a.scoreAll()
	return a
}

// fixpoint iterates act(s) = min(1, drive + Σ act(pred)) · q(s) to
// convergence over the SCC condensation in topological order. Because
// cross-component edges strictly increase the layered order, processing
// components by ascending Topo.Order is a valid condensation
// topological order, and each component's inputs are final when it runs.
func (a *Analysis) fixpoint() {
	n := a.Net
	scc := a.Topo.SCC
	preds := n.Preds()

	// Group states by component and sort components by their layer.
	members := make([][]automata.StateID, scc.NumComps)
	for s := 0; s < n.Len(); s++ {
		c := scc.Comp[s]
		members[c] = append(members[c], automata.StateID(s))
	}
	order := make([]int32, 0, scc.NumComps)
	for c := int32(0); c < int32(scc.NumComps); c++ {
		order = append(order, c)
	}
	layerOf := func(c int32) int32 { return a.Topo.Order[members[c][0]] }
	sortInt32By(order, layerOf)

	drive := func(s automata.StateID) float64 {
		switch n.States[s].Start {
		case automata.StartAllInput:
			return 1
		case automata.StartOfData:
			return 1 / a.Cfg.Horizon
		}
		return 0
	}
	eval := func(s automata.StateID) float64 {
		enable := drive(s)
		for _, p := range preds[s] {
			enable += a.Activity[p]
		}
		if enable > 1 {
			enable = 1
		}
		a.Iterations++
		return enable * a.FireP[s]
	}
	for _, c := range order {
		ms := members[c]
		if len(ms) == 1 && !selfLoop(n, ms[0]) {
			a.Activity[ms[0]] = eval(ms[0])
			continue
		}
		// Cyclic component: iterate to a local fixpoint. Starting from
		// bottom (0) the sequence is monotone non-decreasing and
		// bounded by 1, so it converges; Epsilon/MaxIter bound the tail
		// when a cycle's product of fire probabilities approaches 1.
		for iter := 0; iter < a.Cfg.MaxIter; iter++ {
			delta := 0.0
			for _, s := range ms {
				v := eval(s)
				if d := math.Abs(v - a.Activity[s]); d > delta {
					delta = d
				}
				a.Activity[s] = v
			}
			if delta <= a.Cfg.Epsilon {
				break
			}
		}
	}
}

// sortInt32By is an insertion sort (component counts are modest and the
// input is already nearly sorted by construction order).
func sortInt32By(xs []int32, key func(int32) int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && key(xs[j]) < key(xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// selfLoop reports whether state s has an edge to itself.
func selfLoop(n *automata.Network, s automata.StateID) bool {
	for _, v := range n.States[s].Succ {
		if v == s {
			return true
		}
	}
	return false
}

// scoreAll combines activity and structural features into Score.
func (a *Analysis) scoreAll() {
	n := a.Net
	preds := n.Preds()
	scc := a.Topo.SCC
	w := a.Cfg.Weights
	for s := 0; s < n.Len(); s++ {
		id := automata.StateID(s)
		raw := a.Activity[s] * a.Cfg.Horizon
		sat := raw / (raw + 1)
		depth := a.Topo.NormalizedDepth(n, id)
		q := a.FireP[s]
		cyc := 0.0
		if scc.Size[scc.Comp[s]] > 1 || selfLoop(n, id) {
			cyc = 1
		}
		score := w.Activity*sat +
			w.Depth*(1-depth) +
			w.Width*q +
			w.Entropy*binaryEntropy(q) +
			w.FanIn*squashDegree(len(preds[s])) +
			w.FanOut*squashDegree(len(n.States[s].Succ)) +
			w.Cycle*cyc +
			w.Bias
		if score < 0 {
			score = 0
		} else if score > 1 {
			score = 1
		}
		a.Score[s] = score
	}
}

// binaryEntropy is H(q) in bits, 0 at q ∈ {0, 1}.
func binaryEntropy(q float64) float64 {
	if q <= 0 || q >= 1 {
		return 0
	}
	return -(q*math.Log2(q) + (1-q)*math.Log2(1-q))
}

// squashDegree maps a degree count into [0,1).
func squashDegree(d int) float64 {
	x := float64(d)
	return x / (x + 8)
}

// ExpectedActivations returns act(s) × Horizon: how many times the state
// is expected to fire over one horizon of input.
func (a *Analysis) ExpectedActivations(s automata.StateID) float64 {
	return a.Activity[s] * a.Cfg.Horizon
}

// Hot returns the predicted hot set: states whose score reaches the
// configured threshold.
func (a *Analysis) Hot() *bitvec.Vec {
	v := bitvec.New(a.Net.Len())
	for s := 0; s < a.Net.Len(); s++ {
		if a.Score[s] >= a.Cfg.Threshold {
			v.Set(s)
		}
	}
	return v
}

// HotFrac returns the predicted hot fraction of the network (0 for an
// empty network).
func (a *Analysis) HotFrac() float64 {
	if a.Net.Len() == 0 {
		return 0
	}
	return float64(a.Hot().Count()) / float64(a.Net.Len())
}

// Layers returns the static partition layer k_U of every NFA: the
// maximum topological order of any predicted-hot state, at least 1 (the
// start layer is hot by construction — start states carry drive mass).
// The result is not SCC-aligned; hotcold.Layers applies the same
// alignment it applies to the other behaviour-blind strategies.
func (a *Analysis) Layers() []int32 {
	k := make([]int32, a.Net.NumNFAs())
	for s := 0; s < a.Net.Len(); s++ {
		if a.Score[s] < a.Cfg.Threshold {
			continue
		}
		u := a.Net.NFAOf[s]
		if o := a.Topo.Order[s]; o > k[u] {
			k[u] = o
		}
	}
	for i := range k {
		if k[i] == 0 {
			k[i] = 1
		}
	}
	return k
}

// ResidualActivity returns, for NFA u, the total per-cycle activation
// mass of states strictly above the cut layer k — the analysis's
// estimate of the misprediction (intermediate-report) density the cut
// will pay per input symbol.
func (a *Analysis) ResidualActivity(u int, k int32) float64 {
	lo, hi := a.Net.NFAStates(u)
	var t float64
	for s := lo; s < hi; s++ {
		if a.Topo.Order[s] > k {
			t += a.Activity[s]
		}
	}
	return t
}
