package hotness

import (
	"math"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// chainNet builds start(a) -> mid(b) -> rep(c).
func chainNet(a, b, c symset.Set) *automata.Network {
	m := automata.NewNFA()
	s0 := m.Add(a, automata.StartAllInput, false)
	s1 := m.Add(b, automata.StartNone, false)
	s2 := m.Add(c, automata.StartNone, true)
	m.Connect(s0, s1)
	m.Connect(s1, s2)
	return automata.NewNetwork(m)
}

func TestUniformModelMatchesFireProb(t *testing.T) {
	// Under the uniform model with the full live alphabet, q(s) must
	// reduce to dataflow.FireProb exactly.
	net := chainNet(symset.Range('a', 'p'), symset.Range('a', 'd'), symset.Single('z'))
	a := Analyze(net, Config{})
	for s := 0; s < net.Len(); s++ {
		want := a.Facts.FireProb(automata.StateID(s))
		if math.Abs(a.FireP[s]-want) > 1e-12 {
			t.Errorf("FireP[%d] = %g, want FireProb %g", s, a.FireP[s], want)
		}
	}
}

func TestActivityChain(t *testing.T) {
	// start matches 16 of the 21 live symbols, successor 4, tail 1.
	net := chainNet(symset.Range('a', 'p'), symset.Range('a', 'd'), symset.Single('z'))
	a := Analyze(net, Config{})
	// Live alphabet = a..p ∪ z = 17 symbols.
	q0, q1, q2 := 16.0/17, 4.0/17, 1.0/17
	want := []float64{q0, q0 * q1, q0 * q1 * q2}
	for s, w := range want {
		if math.Abs(a.Activity[s]-w) > 1e-12 {
			t.Errorf("Activity[%d] = %g, want %g", s, a.Activity[s], w)
		}
	}
	// Activity must decay strictly down this chain, and scores with it.
	if !(a.Activity[0] > a.Activity[1] && a.Activity[1] > a.Activity[2]) {
		t.Errorf("activity not decreasing: %v", a.Activity)
	}
	if !(a.Score[0] > a.Score[2]) {
		t.Errorf("score not decreasing head to tail: %v", a.Score)
	}
}

func TestActivityBounds(t *testing.T) {
	// A dense mesh with wide matchers: activity and score must stay in
	// [0,1] even when enabling mass saturates.
	m := automata.NewNFA()
	ids := make([]automata.StateID, 6)
	for i := range ids {
		ids[i] = m.Add(symset.Range(0, 200), automata.StartAllInput, i == 5)
	}
	for i := range ids {
		for j := range ids {
			if i != j {
				m.Connect(ids[i], ids[j])
			}
		}
	}
	a := Analyze(automata.NewNetwork(m), Config{})
	for s := range ids {
		if a.Activity[s] < 0 || a.Activity[s] > 1 {
			t.Errorf("Activity[%d] = %g out of [0,1]", s, a.Activity[s])
		}
		if a.Score[s] < 0 || a.Score[s] > 1 {
			t.Errorf("Score[%d] = %g out of [0,1]", s, a.Score[s])
		}
	}
	// Saturated mesh: every state should be predicted hot.
	if got := a.Hot().Count(); got != len(ids) {
		t.Errorf("Hot().Count() = %d, want %d", got, len(ids))
	}
}

func TestCyclicFixpointConverges(t *testing.T) {
	// Two-state cycle with q < 1 on each edge: the fixpoint is the
	// geometric series limit, not MaxIter divergence.
	m := automata.NewNFA()
	s0 := m.Add(symset.Range('a', 'h'), automata.StartAllInput, false) // q = 8/16
	s1 := m.Add(symset.Range('a', 'p'), automata.StartNone, true)      // q = 16/16
	m.Connect(s0, s1)
	m.Connect(s1, s0)
	a := Analyze(automata.NewNetwork(m), Config{})
	// act0 = min(1, 1 + act1)·q0 = q0 (enable clamps at 1).
	if math.Abs(a.Activity[s0]-0.5) > 1e-9 {
		t.Errorf("Activity[s0] = %g, want 0.5", a.Activity[s0])
	}
	// act1 = act0·1 = 0.5.
	if math.Abs(a.Activity[s1]-0.5) > 1e-9 {
		t.Errorf("Activity[s1] = %g, want 0.5", a.Activity[s1])
	}
}

func TestStartOfDataDrive(t *testing.T) {
	// A start-of-data head fires once per stream, so its expected
	// per-cycle activity is q/Horizon, far below an all-input twin.
	build := func(kind automata.StartKind) *Analysis {
		m := automata.NewNFA()
		s0 := m.Add(symset.Range('a', 'p'), kind, false)
		s1 := m.Add(symset.Range('a', 'p'), automata.StartNone, true)
		m.Connect(s0, s1)
		return Analyze(automata.NewNetwork(m), Config{})
	}
	sod := build(automata.StartOfData)
	all := build(automata.StartAllInput)
	if sod.Activity[0] >= all.Activity[0]/100 {
		t.Errorf("start-of-data activity %g not ≪ all-input %g", sod.Activity[0], all.Activity[0])
	}
	// But over one horizon it still expects ~1 activation, so the head
	// should not be written off as cold.
	if raw := sod.ExpectedActivations(0); raw < 0.5 {
		t.Errorf("ExpectedActivations(head) = %g, want ≥ 0.5", raw)
	}
}

func TestLayersCoverHotStatesAndFloor(t *testing.T) {
	net := chainNet(symset.Range(0, 250), symset.Range(0, 250), symset.Range(0, 250))
	a := Analyze(net, Config{})
	k := a.Layers()
	if len(k) != 1 {
		t.Fatalf("Layers len = %d, want 1", len(k))
	}
	// Wide chain: everything hot, cut at the deepest layer.
	if k[0] != 3 {
		t.Errorf("k = %d, want 3", k[0])
	}

	// A narrow chain goes cold after the head, but the floor keeps k≥1.
	net = chainNet(symset.Single('a'), symset.Single('b'), symset.Single('c'))
	a = Analyze(net, Config{})
	if k := a.Layers(); k[0] < 1 {
		t.Errorf("k = %d, want ≥ 1", k[0])
	}
}

func TestEmptyNetworkAnalysis(t *testing.T) {
	net := &automata.Network{}
	a := Analyze(net, Config{})
	if a.HotFrac() != 0 {
		t.Errorf("HotFrac = %g, want 0", a.HotFrac())
	}
	if k := a.Layers(); len(k) != 0 {
		t.Errorf("Layers = %v, want empty", k)
	}
}

func TestHistogramModelShiftsScores(t *testing.T) {
	// State matching only 'x' under an input that is almost all 'x'
	// must score hotter than under uniform input.
	m := automata.NewNFA()
	s0 := m.Add(symset.Of('x', 'y'), automata.StartAllInput, false)
	s1 := m.Add(symset.Single('x'), automata.StartNone, true)
	m.Connect(s0, s1)
	net := automata.NewNetwork(m)

	sample := make([]byte, 1000)
	for i := range sample {
		sample[i] = 'x'
	}
	sample[0] = 'y'

	uni := Analyze(net, Config{})
	emp := Analyze(net, Config{Model: FromHistogram(sample)})
	if emp.FireP[s1] <= uni.FireP[s1] {
		t.Errorf("empirical q(s1) = %g not above uniform %g", emp.FireP[s1], uni.FireP[s1])
	}
	if emp.FireP[s1] < 0.9 {
		t.Errorf("empirical q(s1) = %g, want ≈ 1 under an all-x stream", emp.FireP[s1])
	}
}

func TestModelProbWithinEdgeCases(t *testing.T) {
	var zero Model
	if p := zero.ProbWithin(symset.Single('a'), symset.Empty()); p != 0 {
		t.Errorf("empty universe: p = %g, want 0", p)
	}
	if p := zero.ProbWithin(symset.All(), symset.All()); math.Abs(p-1) > 1e-12 {
		t.Errorf("full/full: p = %g, want 1", p)
	}
	if p := zero.ProbWithin(symset.Empty(), symset.All()); p != 0 {
		t.Errorf("empty set: p = %g, want 0", p)
	}
	// FromHistogram smoothing: an unseen symbol keeps nonzero mass.
	m := FromHistogram([]byte{'a', 'a', 'a'})
	if p := m.ProbWithin(symset.Single('b'), symset.All()); p <= 0 {
		t.Errorf("smoothed unseen symbol: p = %g, want > 0", p)
	}
	if len(FromHistogram(nil)) != 256 || FromHistogram(nil) != Uniform() {
		t.Error("FromHistogram(nil) should be the uniform model")
	}
}

func TestResidualActivity(t *testing.T) {
	net := chainNet(symset.Range('a', 'p'), symset.Range('a', 'd'), symset.Single('z'))
	a := Analyze(net, Config{})
	all := a.ResidualActivity(0, 0)
	var want float64
	for _, v := range a.Activity {
		want += v
	}
	if math.Abs(all-want) > 1e-12 {
		t.Errorf("ResidualActivity(0) = %g, want total %g", all, want)
	}
	if r := a.ResidualActivity(0, 3); r != 0 {
		t.Errorf("ResidualActivity(k=max) = %g, want 0", r)
	}
	if r2 := a.ResidualActivity(0, 2); math.Abs(r2-a.Activity[2]) > 1e-12 {
		t.Errorf("ResidualActivity(k=2) = %g, want Activity[2] = %g", r2, a.Activity[2])
	}
}

func TestCalibratorPushesBiasTowardTarget(t *testing.T) {
	var c Calibrator
	// Heavy mispredictions: bias must rise (predict hotter).
	for i := 0; i < 10; i++ {
		c.Observe(Feedback{Mispredicts: 1000, Symbols: 4096})
	}
	if b := c.Bias(); b <= 0 {
		t.Errorf("bias after heavy mispredictions = %g, want > 0", b)
	}
	hi := c.Bias()

	// Clean runs far below target: bias must fall back.
	for i := 0; i < 50; i++ {
		c.Observe(Feedback{Mispredicts: 0, Symbols: 100000})
	}
	if b := c.Bias(); b >= hi {
		t.Errorf("bias did not relax: %g ≥ %g", c.Bias(), hi)
	}

	// Bias is clamped.
	var d Calibrator
	for i := 0; i < 1000; i++ {
		d.Observe(Feedback{Mispredicts: 4096, Symbols: 4096, Widened: 1})
	}
	if b := d.Bias(); b > maxBias+1e-12 {
		t.Errorf("bias %g exceeds clamp %g", b, maxBias)
	}
	// Zero-symbol observations are ignored.
	before, seen := d.Density()
	d.Observe(Feedback{Mispredicts: 5, Symbols: 0})
	after, seen2 := d.Density()
	if before != after || seen != seen2 {
		t.Error("zero-symbol feedback should be a no-op")
	}
}

func TestCalibratorApply(t *testing.T) {
	var c Calibrator
	for i := 0; i < 20; i++ {
		c.Observe(Feedback{Mispredicts: 2000, Symbols: 4096, Widened: 1})
	}
	base := Config{}.withDefaults()
	got := c.Apply(Config{})
	if got.Weights.Bias <= base.Weights.Bias {
		t.Errorf("Apply bias = %g, want above default %g", got.Weights.Bias, base.Weights.Bias)
	}
	if got.Horizon != base.Horizon || got.Threshold != base.Threshold {
		t.Error("Apply must not disturb other config fields")
	}
}

func TestScoreMonotoneInThresholdSense(t *testing.T) {
	// Hot() at a higher threshold must be a subset of Hot() at a lower
	// one (scores are fixed; only the cut moves).
	net := chainNet(symset.Range('a', 'p'), symset.Range('a', 'd'), symset.Single('z'))
	lo := Analyze(net, Config{Threshold: 0.2})
	hi := Analyze(net, Config{Threshold: 0.8})
	for s := 0; s < net.Len(); s++ {
		if hi.Hot().Get(s) && !lo.Hot().Get(s) {
			t.Errorf("state %d hot at 0.8 but cold at 0.2", s)
		}
	}
}
