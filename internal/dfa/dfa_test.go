package dfa

import (
	"errors"
	"math/rand"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/regexc"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
)

func compile(t *testing.T, patterns ...string) *automata.Network {
	t.Helper()
	net, err := regexc.CompileAll(patterns, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func runDFA(t *testing.T, net *automata.Network, input []byte) []sim.Report {
	t.Helper()
	d := New(net, Options{})
	var out []sim.Report
	if err := d.Run(input, func(pos int64, s automata.StateID) {
		out = append(out, sim.Report{Pos: pos, State: s})
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDFAMatchesSimple(t *testing.T) {
	net := compile(t, "abc")
	got := runDFA(t, net, []byte("xxabcxabc"))
	if len(got) != 2 || got[0].Pos != 4 || got[1].Pos != 8 {
		t.Fatalf("reports = %v", got)
	}
}

func TestDFAStartOfData(t *testing.T) {
	net := compile(t, "^ab")
	if got := runDFA(t, net, []byte("abab")); len(got) != 1 || got[0].Pos != 1 {
		t.Fatalf("reports = %v", got)
	}
	if got := runDFA(t, net, []byte("xab")); len(got) != 0 {
		t.Fatalf("anchored match found mid-stream: %v", got)
	}
}

func TestDFACachesTransitions(t *testing.T) {
	net := compile(t, "ab")
	d := New(net, Options{})
	if err := d.Run([]byte("ababab"), nil); err != nil {
		t.Fatal(err)
	}
	n1 := d.NumStates()
	if err := d.Run([]byte("ababab"), nil); err != nil {
		t.Fatal(err)
	}
	if d.NumStates() != n1 {
		t.Fatalf("second run grew the DFA: %d -> %d", n1, d.NumStates())
	}
	if n1 < 2 {
		t.Fatalf("suspiciously small DFA: %d states", n1)
	}
}

func TestDFAStateExplosionCapped(t *testing.T) {
	// The classic (a|b)*a(a|b){n} family is exponential in n.
	net := compile(t, "[ab]*a[ab]{14}")
	d := New(net, Options{MaxStates: 64})
	r := rand.New(rand.NewSource(1))
	input := make([]byte, 4096)
	for i := range input {
		input[i] = byte('a' + r.Intn(2))
	}
	err := d.Run(input, nil)
	if !errors.Is(err, ErrStateExplosion) {
		t.Fatalf("err = %v, want ErrStateExplosion", err)
	}
}

func TestDFAMaterialize(t *testing.T) {
	net := compile(t, "ab", "ac")
	d := New(net, Options{})
	n, err := d.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("materialized %d states", n)
	}
	// After materialization, a run must not add states.
	if err := d.Run([]byte("abacabac"), nil); err != nil {
		t.Fatal(err)
	}
	if d.NumStates() != n {
		t.Fatalf("run after Materialize grew the DFA: %d -> %d", n, d.NumStates())
	}
}

// Property: the DFA agrees with the NFA simulator report-for-report on
// random networks (including cyclic ones — determinization handles them).
func TestPropDFAEqualsNFA(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	alphabet := []byte("abcd")
	for trial := 0; trial < 60; trial++ {
		m := automata.NewNFA()
		n := 2 + r.Intn(10)
		for s := 0; s < n; s++ {
			var set symset.Set
			for k := 0; k <= r.Intn(3); k++ {
				set.Add(alphabet[r.Intn(len(alphabet))])
			}
			start := automata.StartNone
			switch r.Intn(5) {
			case 0:
				start = automata.StartAllInput
			case 1:
				start = automata.StartOfData
			}
			m.Add(set, start, r.Intn(3) == 0)
		}
		if m.States[0].Start == automata.StartNone {
			m.States[0].Start = automata.StartAllInput
		}
		for e := 0; e < r.Intn(2*n); e++ {
			m.Connect(automata.StateID(r.Intn(n)), automata.StateID(r.Intn(n)))
		}
		m.Dedup()
		net := automata.NewNetwork(m)
		input := make([]byte, 1+r.Intn(60))
		for i := range input {
			input[i] = alphabet[r.Intn(len(alphabet))]
		}
		want := sim.Run(net, input, sim.Options{CollectReports: true}).Reports
		got := runDFA(t, net, input)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d DFA vs %d NFA reports", trial, len(got), len(want))
		}
		counts := map[sim.Report]int{}
		for _, rep := range want {
			counts[rep]++
		}
		for _, rep := range got {
			counts[rep]--
			if counts[rep] < 0 {
				t.Fatalf("trial %d: extra DFA report %+v", trial, rep)
			}
		}
	}
}
