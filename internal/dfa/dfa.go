// Package dfa implements lazy subset construction over the homogeneous NFA
// model — the classic CPU-side alternative the paper's related work
// contrasts with AP execution. A DFA state is a set of dynamically enabled
// NFA states; transitions are built on demand and cached, so common
// workloads pay the exponential blow-up only where the input actually
// drives it. A configurable state cap turns pathological blow-up into an
// error instead of an OOM.
package dfa

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
)

// DefaultMaxStates caps the constructed DFA by default.
const DefaultMaxStates = 1 << 16

// ErrStateExplosion reports that subset construction exceeded the cap.
var ErrStateExplosion = fmt.Errorf("dfa: state explosion: subset construction exceeded the configured cap")

// edge is one cached transition: successor D-state and the reporting NFA
// states activated by taking it.
type edge struct {
	next    *dstate
	reports []automata.StateID
}

// dstate is one DFA state: a canonical set of dynamically enabled NFA
// states (all-input starts are implicit — they are enabled everywhere).
type dstate struct {
	enabled []automata.StateID
	trans   [256]*edge
}

// DFA lazily determinizes a network.
type DFA struct {
	net *automata.Network
	// startAct[b] lists the all-input starts activated by symbol b.
	startAct [256][]automata.StateID
	states   map[string]*dstate
	initial  *dstate
	max      int
	scratch  *bitvec.Vec
}

// Options configures construction.
type Options struct {
	// MaxStates caps the number of D-states (0 = DefaultMaxStates).
	MaxStates int
}

// New prepares a lazy DFA for net.
func New(net *automata.Network, opts Options) *DFA {
	d := &DFA{
		net:     net,
		states:  make(map[string]*dstate),
		max:     opts.MaxStates,
		scratch: bitvec.New(net.Len()),
	}
	if d.max == 0 {
		d.max = DefaultMaxStates
	}
	var initial []automata.StateID
	for s := range net.States {
		switch net.States[s].Start {
		case automata.StartAllInput:
			for c := 0; c < 256; c++ {
				if net.States[s].Match.Contains(byte(c)) {
					d.startAct[c] = append(d.startAct[c], automata.StateID(s))
				}
			}
		case automata.StartOfData:
			initial = append(initial, automata.StateID(s))
		}
	}
	d.initial = d.intern(initial)
	return d
}

// NumStates returns the number of D-states constructed so far.
func (d *DFA) NumStates() int { return len(d.states) }

// key canonicalizes an enabled set (callers pass sorted, deduped slices).
func key(enabled []automata.StateID) string {
	buf := make([]byte, 4*len(enabled))
	for i, s := range enabled {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(s))
	}
	return string(buf)
}

// intern returns the canonical dstate for the enabled set, creating it if
// new. The slice must be sorted and deduped.
func (d *DFA) intern(enabled []automata.StateID) *dstate {
	k := key(enabled)
	if st, ok := d.states[k]; ok {
		return st
	}
	st := &dstate{enabled: append([]automata.StateID(nil), enabled...)}
	d.states[k] = st
	return st
}

// step computes (and caches) the transition from st on symbol b.
func (d *DFA) step(st *dstate, b byte) (*edge, error) {
	if e := st.trans[b]; e != nil {
		return e, nil
	}
	e := &edge{}
	var next []automata.StateID
	activate := func(s automata.StateID) {
		state := &d.net.States[s]
		if state.Report {
			e.reports = append(e.reports, s)
		}
		for _, v := range state.Succ {
			if d.net.States[v].Start == automata.StartAllInput {
				continue
			}
			if d.scratch.TestAndSet(int(v)) {
				next = append(next, v)
			}
		}
	}
	for _, s := range st.enabled {
		if d.net.States[s].Match.Contains(b) {
			activate(s)
		}
	}
	for _, s := range d.startAct[b] {
		activate(s)
	}
	for _, v := range next {
		d.scratch.Clear(int(v))
	}
	sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
	if len(d.states) >= d.max {
		if _, exists := d.states[key(next)]; !exists {
			return nil, ErrStateExplosion
		}
	}
	e.next = d.intern(next)
	st.trans[b] = e
	return e, nil
}

// Run executes the DFA over input, invoking onReport for every report.
// The construction is incremental: repeated runs reuse cached transitions.
func (d *DFA) Run(input []byte, onReport func(pos int64, s automata.StateID)) error {
	cur := d.initial
	for i, b := range input {
		e, err := d.step(cur, b)
		if err != nil {
			return fmt.Errorf("%w (at input position %d)", err, i)
		}
		if onReport != nil {
			for _, s := range e.reports {
				onReport(int64(i), s)
			}
		}
		cur = e.next
	}
	return nil
}

// Materialize eagerly constructs every reachable transition (256 per
// D-state) and returns the total D-state count. Useful for measuring the
// true determinization cost of a rule set.
func (d *DFA) Materialize() (int, error) {
	work := []*dstate{d.initial}
	seen := map[*dstate]bool{d.initial: true}
	for len(work) > 0 {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		for c := 0; c < 256; c++ {
			e, err := d.step(st, byte(c))
			if err != nil {
				return len(d.states), err
			}
			if !seen[e.next] {
				seen[e.next] = true
				work = append(work, e.next)
			}
		}
	}
	return len(d.states), nil
}
