package automata

import (
	"fmt"
	"sort"
)

// This file implements the automata optimization passes that AP toolchains
// (VASim, the ANML compiler) apply before placement. They matter to the
// paper's setting because every removed or merged state is an STE that
// needs no column: fewer states, fewer batches, before hot/cold
// partitioning even starts.
//
//   - PruneUnreachable removes states no start state can ever enable.
//   - PruneDeadEnds removes states from which no reporting state is
//     reachable (they can never contribute to a match).
//   - MergeEquivalent collapses backward-bisimilar states: states with the
//     same symbol set and start kind whose predecessor sets are (after
//     grouping) identical are enabled at exactly the same cycles, so one
//     STE can stand for all of them. Reporting states are never merged (a
//     merge would change report identity and multiplicity).
//   - Optimize runs all passes to a fixed point.

// OptStats summarizes an optimization run.
type OptStats struct {
	Before      int
	After       int
	Unreachable int
	DeadEnds    int
	Merged      int
	Rounds      int
}

// String renders the statistics compactly.
func (s OptStats) String() string {
	return fmt.Sprintf("%d -> %d states (-%d unreachable, -%d dead ends, -%d merged, %d rounds)",
		s.Before, s.After, s.Unreachable, s.DeadEnds, s.Merged, s.Rounds)
}

// PruneUnreachable removes states not reachable from any start state. It
// returns the new network and the number of removed states. NFAs whose
// states are all unreachable are dropped entirely.
func PruneUnreachable(net *Network) (*Network, int) {
	reach := make([]bool, net.Len())
	var stack []StateID
	for s := range net.States {
		if net.States[s].Start != StartNone {
			reach[s] = true
			stack = append(stack, StateID(s))
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range net.States[u].Succ {
			if !reach[v] {
				reach[v] = true
				stack = append(stack, v)
			}
		}
	}
	removed := 0
	for _, r := range reach {
		if !r {
			removed++
		}
	}
	if removed == 0 {
		return net, 0
	}
	out, _ := net.Subset(func(s StateID) bool { return reach[s] })
	return out, removed
}

// PruneDeadEnds removes states from which no reporting state is reachable.
// Matching semantics are preserved exactly: such states can be enabled and
// activated but never produce or contribute to a report.
func PruneDeadEnds(net *Network) (*Network, int) {
	preds := net.Preds()
	co := make([]bool, net.Len())
	var stack []StateID
	for s := range net.States {
		if net.States[s].Report {
			co[s] = true
			stack = append(stack, StateID(s))
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range preds[u] {
			if !co[v] {
				co[v] = true
				stack = append(stack, v)
			}
		}
	}
	removed := 0
	for _, r := range co {
		if !r {
			removed++
		}
	}
	if removed == 0 {
		return net, 0
	}
	out, _ := net.Subset(func(s StateID) bool { return co[s] })
	return out, removed
}

// MergeEquivalent collapses backward-bisimilar non-reporting states via
// partition refinement: the initial groups are keyed by (symbol set, start
// kind); each round re-keys states by their predecessor group sets until
// stable. States sharing a final group are enabled on exactly the same
// cycles, so they are merged into one state whose successor set is the
// union. Merging is global — states of different NFAs sharing a prefix
// collapse, and the NFA partition is recomputed from the merged graph's
// weak connectivity (this is how AP compilers share rule prefixes).
// Returns the new network and the number of states eliminated.
func MergeEquivalent(net *Network) (*Network, int) {
	preds := net.Preds()
	group := make([]int32, net.Len())
	// Initial grouping. Reporting states get unique groups (never merged).
	type initKey struct {
		match  [4]uint64
		start  StartKind
		report bool
		unique int32 // state ID for reporting states, -1 otherwise
	}
	index := make(map[initKey]int32)
	var nGroups int32
	for s := range net.States {
		st := &net.States[s]
		k := initKey{match: st.Match, start: st.Start, report: st.Report, unique: -1}
		if st.Report {
			k.unique = int32(s)
		}
		g, ok := index[k]
		if !ok {
			g = nGroups
			nGroups++
			index[k] = g
		}
		group[s] = g
	}
	// Refinement rounds.
	for {
		type refineKey struct {
			old   int32
			preds string
		}
		next := make(map[refineKey]int32)
		newGroup := make([]int32, net.Len())
		var n2 int32
		buf := make([]int32, 0, 8)
		for s := range net.States {
			buf = buf[:0]
			for _, p := range preds[s] {
				buf = append(buf, group[p])
			}
			sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
			// Dedup: sets, not multisets — a state enabled by two states of
			// one group behaves like one enabled by a single member.
			key := make([]byte, 0, 4*len(buf))
			var last int32 = -1
			for _, g := range buf {
				if g == last {
					continue
				}
				last = g
				key = append(key, byte(g), byte(g>>8), byte(g>>16), byte(g>>24))
			}
			rk := refineKey{old: group[s], preds: string(key)}
			g, ok := next[rk]
			if !ok {
				g = n2
				n2++
				next[rk] = g
			}
			newGroup[s] = g
		}
		if n2 == nGroups {
			break
		}
		group = newGroup
		nGroups = n2
	}
	if int(nGroups) == net.Len() {
		return net, 0
	}
	// Rebuild as one flat machine (one state per group, in order of first
	// member), then recover the NFA partition from weak connectivity.
	rep := make([]StateID, nGroups)
	for i := range rep {
		rep[i] = None
	}
	newID := make([]StateID, net.Len())
	flat := NewNFA()
	for s := 0; s < net.Len(); s++ {
		g := group[s]
		if rep[g] != None {
			newID[s] = newID[rep[g]]
			continue
		}
		rep[g] = StateID(s)
		st := net.States[s]
		st.Succ = nil
		newID[s] = flat.AddState(st)
	}
	seen := make(map[[2]StateID]struct{})
	for s := 0; s < net.Len(); s++ {
		u := newID[s]
		for _, v := range net.States[s].Succ {
			e := [2]StateID{u, newID[v]}
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			flat.Connect(u, newID[v])
		}
	}
	out := NewNetwork(SplitComponents(flat)...)
	return out, net.Len() - out.Len()
}

// Optimize runs unreachable pruning, dead-end pruning and equivalence
// merging to a fixed point and reports statistics.
func Optimize(net *Network) (*Network, OptStats) {
	stats := OptStats{Before: net.Len()}
	for {
		stats.Rounds++
		var n int
		net, n = PruneUnreachable(net)
		stats.Unreachable += n
		changed := n > 0
		net, n = PruneDeadEnds(net)
		stats.DeadEnds += n
		changed = changed || n > 0
		net, n = MergeEquivalent(net)
		stats.Merged += n
		changed = changed || n > 0
		if !changed || stats.Rounds > 16 {
			break
		}
	}
	stats.After = net.Len()
	return net, stats
}
