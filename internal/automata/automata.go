// Package automata defines the homogeneous NFA model used throughout the
// repository.
//
// A homogeneous NFA is one where all incoming transitions to a state accept
// the same symbol set; the symbol set therefore becomes a property of the
// state itself, exactly matching the AP's state-transition elements (STEs).
// Two containers are provided:
//
//   - NFA: a single machine (usually one weakly-connected pattern), with
//     dense local state IDs.
//   - Network: an application, i.e. an ordered collection of NFAs flattened
//     into one global ID space. All execution, profiling and partitioning
//     operates on Networks.
package automata

import (
	"fmt"
	"sync/atomic"

	"sparseap/internal/symset"
)

// StateID identifies a state. Within an NFA it is a dense local index;
// within a Network it is a dense global index.
type StateID int32

// None is the sentinel for "no state".
const None StateID = -1

// StartKind describes when a state is self-enabled, mirroring ANML.
type StartKind uint8

const (
	// StartNone marks a state enabled only by a predecessor's activation.
	StartNone StartKind = iota
	// StartAllInput marks a state enabled on every input position
	// (ANML "all-input").
	StartAllInput
	// StartOfData marks a state enabled only at input position 0
	// (ANML "start-of-data").
	StartOfData
)

// String returns the ANML name of the start kind.
func (k StartKind) String() string {
	switch k {
	case StartNone:
		return "none"
	case StartAllInput:
		return "all-input"
	case StartOfData:
		return "start-of-data"
	}
	return fmt.Sprintf("StartKind(%d)", uint8(k))
}

// State is one homogeneous NFA state (one STE).
type State struct {
	// Match is the symbol set this state accepts.
	Match symset.Set
	// Start is the state's self-enable behaviour.
	Start StartKind
	// Report marks an accepting/reporting state.
	Report bool
	// Succ lists successor state IDs (local to the owning container).
	Succ []StateID
	// Name is an optional human-readable identifier (kept for ANML I/O).
	Name string
}

// NFA is a single homogeneous automaton with dense local IDs.
type NFA struct {
	States []State
}

// NewNFA returns an empty NFA.
func NewNFA() *NFA { return &NFA{} }

// AddState appends a state and returns its ID.
func (m *NFA) AddState(s State) StateID {
	m.States = append(m.States, s)
	return StateID(len(m.States) - 1)
}

// Add is a convenience wrapper building a State from its fields.
func (m *NFA) Add(match symset.Set, start StartKind, report bool) StateID {
	return m.AddState(State{Match: match, Start: start, Report: report})
}

// Connect adds an edge from u to v. Duplicate edges are allowed at build
// time and removed by Dedup.
func (m *NFA) Connect(u, v StateID) {
	m.States[u].Succ = append(m.States[u].Succ, v)
}

// Len returns the number of states.
func (m *NFA) Len() int { return len(m.States) }

// Dedup removes duplicate successor entries in place.
func (m *NFA) Dedup() {
	seen := make(map[StateID]struct{})
	for i := range m.States {
		succ := m.States[i].Succ
		if len(succ) < 2 {
			continue
		}
		clear(seen)
		out := succ[:0]
		for _, v := range succ {
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
		m.States[i].Succ = out
	}
}

// ProblemKind classifies a structural finding of StructuralProblems.
type ProblemKind uint8

const (
	// ProblemEmpty flags an empty NFA or network.
	ProblemEmpty ProblemKind = iota
	// ProblemOffsets flags inconsistent Offsets/NFAOf bookkeeping.
	ProblemOffsets
	// ProblemSuccRange flags a successor ID outside the state range.
	ProblemSuccRange
	// ProblemCrossNFA flags an edge crossing NFA boundaries.
	ProblemCrossNFA
	// ProblemNoStart flags an NFA without any start state.
	ProblemNoStart
)

// Problem is one structural finding. It is the shared core behind
// NFA.Validate, Network.Validate and the internal/lint structure analyzers:
// the checks run once here, and both consumers format the results.
type Problem struct {
	Kind ProblemKind
	// NFA is the owning NFA index (-1 for container-level findings or
	// standalone NFAs).
	NFA int
	// State is the offending state (global for a Network, local for an
	// NFA); None for NFA- or container-level findings.
	State StateID
	// Msg is the human-readable description, including NFA/state context.
	Msg string
}

// describe names a state with its NFA index and optional name for messages.
func describe(nfa int, s StateID, name string) string {
	loc := fmt.Sprintf("state %d", s)
	if nfa >= 0 {
		loc += fmt.Sprintf(" (nfa %d", nfa)
		if name != "" {
			loc += fmt.Sprintf(" %q", name)
		}
		loc += ")"
	} else if name != "" {
		loc += fmt.Sprintf(" (%q)", name)
	}
	return loc
}

// StructuralProblems returns every structural invariant violation of the
// NFA: emptiness, out-of-range successors, and a missing start state.
// Unlike Validate it does not stop at the first finding.
func (m *NFA) StructuralProblems() []Problem {
	var out []Problem
	if m.Len() == 0 {
		return []Problem{{Kind: ProblemEmpty, NFA: -1, State: None, Msg: "empty NFA"}}
	}
	starts := 0
	for i, s := range m.States {
		if s.Start != StartNone {
			starts++
		}
		for _, v := range s.Succ {
			if v < 0 || int(v) >= m.Len() {
				out = append(out, Problem{
					Kind: ProblemSuccRange, NFA: -1, State: StateID(i),
					Msg: fmt.Sprintf("%s has out-of-range successor %d (valid range [0,%d))",
						describe(-1, StateID(i), s.Name), v, m.Len()),
				})
			}
		}
	}
	if starts == 0 {
		out = append(out, Problem{Kind: ProblemNoStart, NFA: -1, State: None,
			Msg: "NFA has no start state"})
	}
	return out
}

// problemsToError collapses a problem list into a single error, or nil.
func problemsToError(problems []Problem) error {
	switch len(problems) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("automata: %s", problems[0].Msg)
	}
	return fmt.Errorf("automata: %s (and %d more structural problems)",
		problems[0].Msg, len(problems)-1)
}

// Validate checks structural invariants: successor IDs in range and at
// least one start state. It is a thin wrapper over StructuralProblems.
func (m *NFA) Validate() error {
	return problemsToError(m.StructuralProblems())
}

// Network is an application: a set of NFAs flattened into one global state
// ID space. NFAOf maps each global state to the index of its owning NFA;
// states of one NFA occupy a contiguous ID range.
type Network struct {
	States []State
	// NFAOf[s] is the NFA index owning global state s.
	NFAOf []int32
	// Offsets[i] is the first global StateID of NFA i; Offsets has one
	// extra trailing entry equal to len(States).
	Offsets []StateID

	preds [][]StateID // lazily built by Preds

	// exec caches a compiled execution image derived from this network.
	// The slot is opaque here — it is owned by internal/sim, which stores
	// its flattened CSR image through ExecImage/StoreExecImage so every
	// engine over the same network shares one read-only compilation. The
	// slot is atomic because simulators compile lazily from concurrent
	// worker goroutines; it is cleared on any structural mutation
	// (Append, InvalidateCaches).
	exec atomic.Pointer[execBox]
}

// execBox wraps the cached execution image so the atomic slot can hold
// any concrete type (and distinguish "cleared" from "stored nil").
type execBox struct{ v any }

// ExecImage returns the cached compiled execution image, or nil if none
// has been stored since the last structural mutation.
func (n *Network) ExecImage() any {
	if b := n.exec.Load(); b != nil {
		return b.v
	}
	return nil
}

// StoreExecImage publishes a compiled execution image for this network.
// Concurrent stores are permitted (last one wins); callers must only
// store images compiled from the network's current structure.
func (n *Network) StoreExecImage(v any) {
	if v == nil {
		n.exec.Store(nil)
		return
	}
	n.exec.Store(&execBox{v: v})
}

// NewNetwork flattens the given NFAs into a Network. Local successor IDs
// are rebased to global IDs. The input NFAs are not retained.
func NewNetwork(nfas ...*NFA) *Network {
	total := 0
	for _, m := range nfas {
		total += m.Len()
	}
	net := &Network{
		States:  make([]State, 0, total),
		NFAOf:   make([]int32, 0, total),
		Offsets: make([]StateID, 0, len(nfas)+1),
	}
	for idx, m := range nfas {
		net.Append(m)
		_ = idx
	}
	return net
}

// Append adds one more NFA to the network and returns its NFA index.
func (n *Network) Append(m *NFA) int {
	base := StateID(len(n.States))
	idx := n.NumNFAs()
	if len(n.Offsets) == 0 {
		n.Offsets = append(n.Offsets, 0)
	}
	for _, s := range m.States {
		g := s // copy
		g.Succ = make([]StateID, len(s.Succ))
		for i, v := range s.Succ {
			g.Succ[i] = v + base
		}
		n.States = append(n.States, g)
		n.NFAOf = append(n.NFAOf, int32(idx))
	}
	n.Offsets = append(n.Offsets, StateID(len(n.States)))
	n.preds = nil
	n.exec.Store(nil)
	return idx
}

// Len returns the number of global states.
func (n *Network) Len() int { return len(n.States) }

// NumNFAs returns the number of NFAs in the network.
func (n *Network) NumNFAs() int {
	if len(n.Offsets) == 0 {
		return 0
	}
	return len(n.Offsets) - 1
}

// NFASize returns the number of states in NFA i.
func (n *Network) NFASize(i int) int {
	return int(n.Offsets[i+1] - n.Offsets[i])
}

// NFAStates returns the global ID range [lo, hi) of NFA i.
func (n *Network) NFAStates(i int) (lo, hi StateID) {
	return n.Offsets[i], n.Offsets[i+1]
}

// Preds returns the predecessor lists, computing and caching them on first
// use. The caller must not mutate the result.
func (n *Network) Preds() [][]StateID {
	if n.preds != nil {
		return n.preds
	}
	preds := make([][]StateID, n.Len())
	deg := make([]int32, n.Len())
	for _, s := range n.States {
		for _, v := range s.Succ {
			deg[v]++
		}
	}
	for i := range preds {
		if deg[i] > 0 {
			preds[i] = make([]StateID, 0, deg[i])
		}
	}
	for u := range n.States {
		for _, v := range n.States[u].Succ {
			preds[v] = append(preds[v], StateID(u))
		}
	}
	n.preds = preds
	return preds
}

// InvalidateCaches drops derived data (predecessors) after a mutation.
func (n *Network) InvalidateCaches() {
	n.preds = nil
	n.exec.Store(nil)
}

// StructuralProblems returns every structural invariant violation of the
// network: emptiness, inconsistent Offsets/NFAOf bookkeeping, out-of-range
// or NFA-crossing successors, and NFAs without a start state. Unlike
// Validate it does not stop at the first finding; internal/lint's structure
// analyzers are thin wrappers over it.
func (n *Network) StructuralProblems() []Problem {
	var out []Problem
	if n.NumNFAs() == 0 {
		return []Problem{{Kind: ProblemEmpty, NFA: -1, State: None, Msg: "empty network"}}
	}
	if end := n.Offsets[len(n.Offsets)-1]; end != StateID(n.Len()) {
		out = append(out, Problem{Kind: ProblemOffsets, NFA: -1, State: None,
			Msg: fmt.Sprintf("offsets end %d != %d states", end, n.Len())})
	}
	if len(n.NFAOf) != n.Len() {
		out = append(out, Problem{Kind: ProblemOffsets, NFA: -1, State: None,
			Msg: fmt.Sprintf("NFAOf has %d entries for %d states", len(n.NFAOf), n.Len())})
		return out // per-state checks below index NFAOf
	}
	startsPerNFA := make([]int, n.NumNFAs())
	for u := range n.States {
		nfa := int(n.NFAOf[u])
		if nfa < 0 || nfa >= n.NumNFAs() {
			out = append(out, Problem{Kind: ProblemOffsets, NFA: -1, State: StateID(u),
				Msg: fmt.Sprintf("state %d claims NFA %d of %d", u, nfa, n.NumNFAs())})
			continue
		}
		if n.States[u].Start != StartNone {
			startsPerNFA[nfa]++
		}
		loc := describe(nfa, StateID(u), n.States[u].Name)
		for _, v := range n.States[u].Succ {
			if v < 0 || int(v) >= n.Len() {
				out = append(out, Problem{Kind: ProblemSuccRange, NFA: nfa, State: StateID(u),
					Msg: fmt.Sprintf("%s has out-of-range successor %d (valid range [0,%d))",
						loc, v, n.Len())})
				continue
			}
			if int(n.NFAOf[v]) != nfa {
				out = append(out, Problem{Kind: ProblemCrossNFA, NFA: nfa, State: StateID(u),
					Msg: fmt.Sprintf("edge %d->%d crosses NFA boundary %d->%d",
						u, v, nfa, n.NFAOf[v])})
			}
		}
	}
	for i, c := range startsPerNFA {
		if c == 0 {
			lo, hi := n.NFAStates(i)
			out = append(out, Problem{Kind: ProblemNoStart, NFA: i, State: None,
				Msg: fmt.Sprintf("NFA %d (states %d..%d) has no start state", i, lo, hi-1)})
		}
	}
	return out
}

// Validate checks the network invariants: consistent offsets, successor IDs
// within the same NFA, and each NFA has a start state. It is a thin wrapper
// over StructuralProblems.
func (n *Network) Validate() error {
	return problemsToError(n.StructuralProblems())
}

// Stats summarizes a network for Table II-style reporting.
type Stats struct {
	States    int
	NFAs      int
	Reporting int
	Starts    int
	Edges     int
	// StartOfData reports whether any start state is start-of-data.
	StartOfData bool
}

// ComputeStats returns summary statistics for the network.
func (n *Network) ComputeStats() Stats {
	st := Stats{States: n.Len(), NFAs: n.NumNFAs()}
	for i := range n.States {
		s := &n.States[i]
		if s.Report {
			st.Reporting++
		}
		if s.Start != StartNone {
			st.Starts++
			if s.Start == StartOfData {
				st.StartOfData = true
			}
		}
		st.Edges += len(s.Succ)
	}
	return st
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{
		States:  make([]State, len(n.States)),
		NFAOf:   make([]int32, len(n.NFAOf)),
		Offsets: make([]StateID, len(n.Offsets)),
	}
	copy(c.NFAOf, n.NFAOf)
	copy(c.Offsets, n.Offsets)
	for i, s := range n.States {
		c.States[i] = s
		c.States[i].Succ = make([]StateID, len(s.Succ))
		copy(c.States[i].Succ, s.Succ)
	}
	return c
}

// ExtractNFA materializes NFA i as a standalone NFA with local IDs.
func (n *Network) ExtractNFA(i int) *NFA {
	lo, hi := n.NFAStates(i)
	m := &NFA{States: make([]State, hi-lo)}
	for g := lo; g < hi; g++ {
		s := n.States[g]
		local := s
		local.Succ = make([]StateID, len(s.Succ))
		for j, v := range s.Succ {
			local.Succ[j] = v - lo
		}
		m.States[g-lo] = local
	}
	return m
}

// Subset builds a new network containing, for each NFA, only the states
// keep(s) selects, dropping edges to excluded states. NFAs with no kept
// states are omitted. It returns the new network and a mapping from new
// global IDs to original global IDs.
//
// The result may violate the "has a start state" invariant if keep excludes
// all starts of an NFA; callers that need runnable fragments must arrange
// keep accordingly (the partitioner does).
func (n *Network) Subset(keep func(StateID) bool) (*Network, []StateID) {
	newID := make([]StateID, n.Len())
	for i := range newID {
		newID[i] = None
	}
	out := &Network{Offsets: []StateID{0}}
	var origOf []StateID
	for i := 0; i < n.NumNFAs(); i++ {
		lo, hi := n.NFAStates(i)
		first := len(out.States)
		for g := lo; g < hi; g++ {
			if !keep(g) {
				continue
			}
			newID[g] = StateID(len(out.States))
			s := n.States[g]
			cp := s
			cp.Succ = nil // filled below
			out.States = append(out.States, cp)
			origOf = append(origOf, g)
		}
		if len(out.States) == first {
			continue // NFA fully excluded
		}
		nfaIdx := out.NumNFAs()
		for k := first; k < len(out.States); k++ {
			out.NFAOf = append(out.NFAOf, int32(nfaIdx))
		}
		out.Offsets = append(out.Offsets, StateID(len(out.States)))
	}
	// Rewire edges among kept states.
	for k := range out.States {
		g := origOf[k]
		for _, v := range n.States[g].Succ {
			if nv := newID[v]; nv != None {
				out.States[k].Succ = append(out.States[k].Succ, nv)
			}
		}
	}
	return out, origOf
}
