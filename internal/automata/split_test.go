package automata

import (
	"testing"

	"sparseap/internal/symset"
)

func TestSplitComponentsTwoIslands(t *testing.T) {
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false)
	b := m.Add(symset.Single('b'), StartNone, true)
	x := m.Add(symset.Single('x'), StartAllInput, false)
	y := m.Add(symset.Single('y'), StartNone, true)
	m.Connect(a, b)
	m.Connect(x, y)
	parts := SplitComponents(m)
	if len(parts) != 2 {
		t.Fatalf("components = %d, want 2", len(parts))
	}
	if parts[0].Len() != 2 || parts[1].Len() != 2 {
		t.Fatalf("component sizes = %d,%d", parts[0].Len(), parts[1].Len())
	}
	// Interleave: a x b y — components ordered by first appearance.
	if !parts[0].States[0].Match.Contains('a') {
		t.Error("first component should contain 'a' state")
	}
	if !parts[1].States[0].Match.Contains('x') {
		t.Error("second component should contain 'x' state")
	}
}

func TestSplitComponentsInterleaved(t *testing.T) {
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false) // comp 0
	x := m.Add(symset.Single('x'), StartAllInput, false) // comp 1
	b := m.Add(symset.Single('b'), StartNone, true)      // comp 0
	y := m.Add(symset.Single('y'), StartNone, true)      // comp 1
	m.Connect(a, b)
	m.Connect(x, y)
	parts := SplitComponents(m)
	if len(parts) != 2 {
		t.Fatalf("components = %d, want 2", len(parts))
	}
	// Edges must be remapped into local IDs.
	for _, p := range parts {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.States[0].Succ[0] != 1 {
			t.Errorf("remapped edge = %v", p.States[0].Succ)
		}
	}
}

func TestSplitComponentsBackEdgeOnlyConnectivity(t *testing.T) {
	// Weak connectivity: u->v and w->v put u,v,w in one component.
	m := NewNFA()
	u := m.Add(symset.Single('u'), StartAllInput, false)
	v := m.Add(symset.Single('v'), StartNone, true)
	w := m.Add(symset.Single('w'), StartAllInput, false)
	m.Connect(u, v)
	m.Connect(w, v)
	parts := SplitComponents(m)
	if len(parts) != 1 || parts[0].Len() != 3 {
		t.Fatalf("components = %d, want 1 of size 3", len(parts))
	}
}

func TestSplitComponentsSingletons(t *testing.T) {
	m := NewNFA()
	for i := 0; i < 5; i++ {
		m.Add(symset.Single('a'), StartAllInput, true)
	}
	parts := SplitComponents(m)
	if len(parts) != 5 {
		t.Fatalf("components = %d, want 5", len(parts))
	}
}
