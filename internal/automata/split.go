package automata

// SplitComponents partitions the states of m into weakly connected
// components and returns one NFA per component, in order of each
// component's smallest original state ID. This is how an ANML
// automata-network (one flat list of STEs) is separated into the
// independent NFAs the partitioner works on.
func SplitComponents(m *NFA) []*NFA {
	n := m.Len()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range m.States[u].Succ {
			union(int32(u), int32(v))
		}
	}
	// Assign dense component indices in order of first appearance.
	compOf := make([]int32, n)
	index := make(map[int32]int32)
	var order []int32
	for i := 0; i < n; i++ {
		r := find(int32(i))
		c, ok := index[r]
		if !ok {
			c = int32(len(order))
			index[r] = c
			order = append(order, r)
		}
		compOf[i] = c
	}
	// Build per-component NFAs with remapped IDs.
	out := make([]*NFA, len(order))
	newID := make([]StateID, n)
	for i := range out {
		out[i] = NewNFA()
	}
	for i := 0; i < n; i++ {
		c := compOf[i]
		newID[i] = out[c].AddState(State{
			Match:  m.States[i].Match,
			Start:  m.States[i].Start,
			Report: m.States[i].Report,
			Name:   m.States[i].Name,
		})
	}
	for u := 0; u < n; u++ {
		c := compOf[u]
		for _, v := range m.States[u].Succ {
			out[c].Connect(newID[u], newID[v])
		}
	}
	return out
}
