package automata

import (
	"math/rand"
	"testing"

	"sparseap/internal/symset"
)

func TestPruneUnreachable(t *testing.T) {
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false)
	b := m.Add(symset.Single('b'), StartNone, true)
	orphan := m.Add(symset.Single('x'), StartNone, false)
	island := m.Add(symset.Single('y'), StartNone, true)
	m.Connect(a, b)
	m.Connect(orphan, island)
	net := NewNetwork(m)
	out, removed := PruneUnreachable(net)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if out.Len() != 2 {
		t.Fatalf("states = %d, want 2", out.Len())
	}
	// No-op when everything is reachable.
	out2, removed2 := PruneUnreachable(out)
	if removed2 != 0 || out2 != out {
		t.Fatal("second prune changed a fully reachable network")
	}
}

func TestPruneDeadEnds(t *testing.T) {
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false)
	b := m.Add(symset.Single('b'), StartNone, true)
	dead := m.Add(symset.Single('z'), StartNone, false) // reachable, leads nowhere
	m.Connect(a, b)
	m.Connect(a, dead)
	net := NewNetwork(m)
	out, removed := PruneDeadEnds(net)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if out.Len() != 2 {
		t.Fatalf("states = %d", out.Len())
	}
}

func TestPruneDeadEndsKeepsCycleFeedingReport(t *testing.T) {
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false)
	loop := m.Add(symset.All(), StartNone, false)
	r := m.Add(symset.Single('r'), StartNone, true)
	m.Connect(a, loop)
	m.Connect(loop, loop)
	m.Connect(loop, r)
	net := NewNetwork(m)
	out, removed := PruneDeadEnds(net)
	if removed != 0 || out.Len() != 3 {
		t.Fatalf("removed %d of a fully co-reachable network", removed)
	}
}

func TestMergeEquivalentDiamond(t *testing.T) {
	// Two identical parallel branches from one start must collapse:
	// a -> b1 -> c, a -> b2 -> c with b1 == b2.
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false)
	b1 := m.Add(symset.Single('b'), StartNone, false)
	b2 := m.Add(symset.Single('b'), StartNone, false)
	c := m.Add(symset.Single('c'), StartNone, true)
	m.Connect(a, b1)
	m.Connect(a, b2)
	m.Connect(b1, c)
	m.Connect(b2, c)
	net := NewNetwork(m)
	out, merged := MergeEquivalent(net)
	if merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	if out.Len() != 3 {
		t.Fatalf("states = %d, want 3", out.Len())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEquivalentKeepsDistinctBehaviour(t *testing.T) {
	// b1 and b2 share symbol sets but different predecessors: no merge.
	m := NewNFA()
	a1 := m.Add(symset.Single('a'), StartAllInput, false)
	a2 := m.Add(symset.Single('x'), StartAllInput, false)
	b1 := m.Add(symset.Single('b'), StartNone, true)
	b2 := m.Add(symset.Single('b'), StartNone, true)
	m.Connect(a1, b1)
	m.Connect(a2, b2)
	net := NewNetwork(m)
	_, merged := MergeEquivalent(net)
	if merged != 0 {
		t.Fatalf("merged = %d, want 0", merged)
	}
}

func TestMergeEquivalentNeverMergesReports(t *testing.T) {
	// Identical reporting siblings must stay distinct (report identity).
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false)
	r1 := m.Add(symset.Single('b'), StartNone, true)
	r2 := m.Add(symset.Single('b'), StartNone, true)
	m.Connect(a, r1)
	m.Connect(a, r2)
	net := NewNetwork(m)
	_, merged := MergeEquivalent(net)
	if merged != 0 {
		t.Fatalf("merged reporting states: %d", merged)
	}
}

func TestMergeEquivalentStartKindsRespected(t *testing.T) {
	m := NewNFA()
	s1 := m.Add(symset.Single('a'), StartAllInput, false)
	s2 := m.Add(symset.Single('a'), StartOfData, false)
	r := m.Add(symset.Single('b'), StartNone, true)
	m.Connect(s1, r)
	m.Connect(s2, r)
	net := NewNetwork(m)
	_, merged := MergeEquivalent(net)
	if merged != 0 {
		t.Fatal("states with different start kinds merged")
	}
}

func TestOptimizeTrie(t *testing.T) {
	// Patterns "abc", "abd" built as independent chains: optimize must
	// share the "ab" prefix: 6 states -> 4.
	mk := func(s string) *NFA {
		m := NewNFA()
		prev := m.Add(symset.Single(s[0]), StartAllInput, false)
		for i := 1; i < len(s); i++ {
			cur := m.Add(symset.Single(s[i]), StartNone, i == len(s)-1)
			m.Connect(prev, cur)
			prev = cur
		}
		return m
	}
	// Merging is global: the chains may arrive as separate NFAs and still
	// share their "ab" prefix, fusing into one NFA.
	net := NewNetwork(mk("abc"), mk("abd"))
	out, stats := Optimize(net)
	if out.Len() != 4 {
		t.Fatalf("optimized states = %d, want 4 (%v)", out.Len(), stats)
	}
	if out.NumNFAs() != 1 {
		t.Fatalf("merged NFAs = %d, want 1 fused machine", out.NumNFAs())
	}
	if stats.Merged != 2 || stats.After != 4 || stats.Before != 6 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestMergeKeepsIndependentNFAsSeparate(t *testing.T) {
	m1 := NewNFA()
	a := m1.Add(symset.Single('a'), StartAllInput, false)
	b := m1.Add(symset.Single('b'), StartNone, true)
	m1.Connect(a, b)
	m2 := NewNFA()
	x := m2.Add(symset.Single('x'), StartAllInput, false)
	y := m2.Add(symset.Single('y'), StartNone, true)
	m2.Connect(x, y)
	net := NewNetwork(m1, m2)
	out, merged := MergeEquivalent(net)
	if merged != 0 {
		t.Fatalf("merged %d states of unrelated NFAs", merged)
	}
	if out.NumNFAs() != 2 {
		t.Fatalf("NFAs = %d", out.NumNFAs())
	}
}

// naiveReports is a tiny reference simulator for equivalence checking,
// counting reports per position (identity-free, since merging renumbers).
func naiveReports(net *Network, input []byte) []int {
	enabled := make([]bool, net.Len())
	out := make([]int, len(input))
	for i := range input {
		next := make([]bool, net.Len())
		for s := 0; s < net.Len(); s++ {
			en := enabled[s]
			switch net.States[s].Start {
			case StartAllInput:
				en = true
			case StartOfData:
				if i == 0 {
					en = true
				}
			}
			if !en || !net.States[s].Match.Contains(input[i]) {
				continue
			}
			if net.States[s].Report {
				out[i]++
			}
			for _, v := range net.States[s].Succ {
				next[v] = true
			}
		}
		enabled = next
	}
	return out
}

// Property: Optimize preserves per-position report counts on random
// networks and inputs (reporting states are never merged, so counts are
// comparable).
func TestPropOptimizePreservesReports(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []byte("abc")
	for trial := 0; trial < 60; trial++ {
		m := NewNFA()
		n := 3 + r.Intn(10)
		for s := 0; s < n; s++ {
			start := StartNone
			if s == 0 || r.Intn(6) == 0 {
				start = StartAllInput
			}
			m.Add(symset.Single(alphabet[r.Intn(len(alphabet))]), start, r.Intn(4) == 0)
		}
		for e := 0; e < r.Intn(3*n); e++ {
			m.Connect(StateID(r.Intn(n)), StateID(r.Intn(n)))
		}
		m.Dedup()
		net := NewNetwork(m)
		opt, _ := Optimize(net)
		input := make([]byte, 1+r.Intn(30))
		for i := range input {
			input[i] = alphabet[r.Intn(len(alphabet))]
		}
		want := naiveReports(net, input)
		var got []int
		if opt.Len() == 0 {
			got = make([]int, len(input))
		} else {
			got = naiveReports(opt, input)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: report count at %d differs: %d vs %d (states %d->%d)",
					trial, i, got[i], want[i], net.Len(), opt.Len())
			}
		}
	}
}

// Property: Optimize is idempotent.
func TestPropOptimizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		m := NewNFA()
		n := 3 + r.Intn(12)
		for s := 0; s < n; s++ {
			start := StartNone
			if s == 0 {
				start = StartAllInput
			}
			m.Add(symset.Single(byte('a'+r.Intn(3))), start, r.Intn(4) == 0)
		}
		for e := 0; e < r.Intn(2*n); e++ {
			m.Connect(StateID(r.Intn(n)), StateID(r.Intn(n)))
		}
		m.Dedup()
		net := NewNetwork(m)
		once, _ := Optimize(net)
		if once.Len() == 0 {
			continue
		}
		twice, stats := Optimize(once)
		if twice.Len() != once.Len() {
			t.Fatalf("trial %d: second Optimize changed %d -> %d (%v)",
				trial, once.Len(), twice.Len(), stats)
		}
	}
}
