package automata

// Replicate returns a network containing copies of every NFA in net — the
// state-scaling idiom the paper's introduction cites: the AP toolchain
// duplicates an application's NFAs to process multiple input streams
// concurrently (one replica per stream), and proposals like the Parallel
// Automata Processor duplicate them for intra-stream parallelism. Either
// way, the footprint multiplies and capacity pressure grows, which is
// precisely the regime hot/cold partitioning targets.
func Replicate(net *Network, copies int) *Network {
	if copies <= 1 {
		return net.Clone()
	}
	out := &Network{Offsets: []StateID{0}}
	for c := 0; c < copies; c++ {
		for nfa := 0; nfa < net.NumNFAs(); nfa++ {
			out.Append(net.ExtractNFA(nfa))
		}
	}
	return out
}
