package automata

import (
	"testing"

	"sparseap/internal/symset"
)

// chain builds an NFA a -> b -> c accepting "abc" with reporting tail.
func chain(t *testing.T) *NFA {
	t.Helper()
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false)
	b := m.Add(symset.Single('b'), StartNone, false)
	c := m.Add(symset.Single('c'), StartNone, true)
	m.Connect(a, b)
	m.Connect(b, c)
	return m
}

func TestNFABuildAndValidate(t *testing.T) {
	m := chain(t)
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNFAValidateErrors(t *testing.T) {
	if err := NewNFA().Validate(); err == nil {
		t.Error("empty NFA validated")
	}
	m := NewNFA()
	m.Add(symset.Single('a'), StartNone, false)
	if err := m.Validate(); err == nil {
		t.Error("NFA with no start validated")
	}
	m2 := NewNFA()
	a := m2.Add(symset.Single('a'), StartAllInput, false)
	m2.States[a].Succ = append(m2.States[a].Succ, 99)
	if err := m2.Validate(); err == nil {
		t.Error("out-of-range successor validated")
	}
}

func TestDedup(t *testing.T) {
	m := NewNFA()
	a := m.Add(symset.Single('a'), StartAllInput, false)
	b := m.Add(symset.Single('b'), StartNone, true)
	m.Connect(a, b)
	m.Connect(a, b)
	m.Connect(a, a)
	m.Dedup()
	if got := len(m.States[a].Succ); got != 2 {
		t.Fatalf("successors after Dedup = %d, want 2", got)
	}
}

func TestNetworkFlattening(t *testing.T) {
	n := NewNetwork(chain(t), chain(t))
	if n.Len() != 6 || n.NumNFAs() != 2 {
		t.Fatalf("Len=%d NumNFAs=%d", n.Len(), n.NumNFAs())
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Second NFA's edges must be rebased.
	if n.States[3].Succ[0] != 4 {
		t.Errorf("rebased successor = %d, want 4", n.States[3].Succ[0])
	}
	if n.NFAOf[0] != 0 || n.NFAOf[5] != 1 {
		t.Error("NFAOf wrong")
	}
	lo, hi := n.NFAStates(1)
	if lo != 3 || hi != 6 {
		t.Errorf("NFAStates(1) = %d,%d", lo, hi)
	}
	if n.NFASize(0) != 3 {
		t.Errorf("NFASize = %d", n.NFASize(0))
	}
}

func TestNetworkAppend(t *testing.T) {
	n := NewNetwork(chain(t))
	idx := n.Append(chain(t))
	if idx != 1 || n.NumNFAs() != 2 || n.Len() != 6 {
		t.Fatalf("Append gave idx=%d NumNFAs=%d Len=%d", idx, n.NumNFAs(), n.Len())
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPreds(t *testing.T) {
	n := NewNetwork(chain(t))
	p := n.Preds()
	if len(p[0]) != 0 {
		t.Errorf("state 0 preds = %v", p[0])
	}
	if len(p[1]) != 1 || p[1][0] != 0 {
		t.Errorf("state 1 preds = %v", p[1])
	}
	if len(p[2]) != 1 || p[2][0] != 1 {
		t.Errorf("state 2 preds = %v", p[2])
	}
	// Cached pointer identity.
	if &p[0] != &n.Preds()[0] {
		t.Error("Preds not cached")
	}
}

func TestComputeStats(t *testing.T) {
	m := chain(t)
	m.States[0].Start = StartOfData
	n := NewNetwork(m, chain(t))
	st := n.ComputeStats()
	if st.States != 6 || st.NFAs != 2 || st.Reporting != 2 || st.Starts != 2 || st.Edges != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.StartOfData {
		t.Error("StartOfData not detected")
	}
}

func TestClone(t *testing.T) {
	n := NewNetwork(chain(t))
	c := n.Clone()
	c.States[0].Succ[0] = 2
	if n.States[0].Succ[0] != 1 {
		t.Error("Clone shares successor storage")
	}
	if c.Len() != n.Len() || c.NumNFAs() != n.NumNFAs() {
		t.Error("Clone size mismatch")
	}
}

func TestExtractNFA(t *testing.T) {
	n := NewNetwork(chain(t), chain(t))
	m := n.ExtractNFA(1)
	if m.Len() != 3 {
		t.Fatalf("extracted Len = %d", m.Len())
	}
	if m.States[0].Succ[0] != 1 {
		t.Errorf("extracted successor = %d, want local 1", m.States[0].Succ[0])
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetKeepsPrefix(t *testing.T) {
	n := NewNetwork(chain(t), chain(t))
	// Keep first two states of each NFA.
	sub, orig := n.Subset(func(s StateID) bool {
		lo, _ := n.NFAStates(int(n.NFAOf[s]))
		return s-lo < 2
	})
	if sub.Len() != 4 || sub.NumNFAs() != 2 {
		t.Fatalf("subset Len=%d NFAs=%d", sub.Len(), sub.NumNFAs())
	}
	// Edge b->c must be dropped; a->b kept.
	if len(sub.States[0].Succ) != 1 || sub.States[0].Succ[0] != 1 {
		t.Errorf("subset state 0 succ = %v", sub.States[0].Succ)
	}
	if len(sub.States[1].Succ) != 0 {
		t.Errorf("subset state 1 succ = %v", sub.States[1].Succ)
	}
	if orig[2] != 3 {
		t.Errorf("orig mapping = %v", orig)
	}
}

func TestSubsetDropsEmptyNFAs(t *testing.T) {
	n := NewNetwork(chain(t), chain(t))
	sub, orig := n.Subset(func(s StateID) bool { return n.NFAOf[s] == 1 })
	if sub.NumNFAs() != 1 || sub.Len() != 3 {
		t.Fatalf("subset NFAs=%d Len=%d", sub.NumNFAs(), sub.Len())
	}
	if orig[0] != 3 {
		t.Errorf("orig = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStartKindString(t *testing.T) {
	if StartNone.String() != "none" || StartAllInput.String() != "all-input" || StartOfData.String() != "start-of-data" {
		t.Error("StartKind.String wrong")
	}
	if StartKind(9).String() == "" {
		t.Error("unknown StartKind empty")
	}
}
