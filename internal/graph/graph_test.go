package graph

import (
	"math/rand"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// buildNet constructs a single-NFA network with n states and the given
// edges; state 0 is a start state.
func buildNet(n int, edges [][2]int) *automata.Network {
	m := automata.NewNFA()
	for i := 0; i < n; i++ {
		start := automata.StartNone
		if i == 0 {
			start = automata.StartAllInput
		}
		m.Add(symset.Single('a'), start, false)
	}
	for _, e := range edges {
		m.Connect(automata.StateID(e[0]), automata.StateID(e[1]))
	}
	return automata.NewNetwork(m)
}

func TestSCCChain(t *testing.T) {
	n := buildNet(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	r := SCC(n)
	if r.NumComps != 4 {
		t.Fatalf("NumComps = %d, want 4", r.NumComps)
	}
	seen := map[int32]bool{}
	for _, c := range r.Comp {
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Fatalf("components not distinct: %v", r.Comp)
	}
}

func TestSCCCycle(t *testing.T) {
	// Figure 4 of the paper: S1->S2->S3->S6, S1->S4, S4<->S5, S5->S6.
	n := buildNet(6, [][2]int{{0, 1}, {1, 2}, {2, 5}, {0, 3}, {3, 4}, {4, 3}, {4, 5}})
	r := SCC(n)
	if r.NumComps != 5 {
		t.Fatalf("NumComps = %d, want 5", r.NumComps)
	}
	if r.Comp[3] != r.Comp[4] {
		t.Error("cycle states 3,4 in different components")
	}
	if r.Comp[0] == r.Comp[3] {
		t.Error("state 0 merged into cycle component")
	}
	if r.Size[r.Comp[3]] != 2 {
		t.Errorf("cycle component size = %d", r.Size[r.Comp[3]])
	}
}

func TestTopoOrderFigure4(t *testing.T) {
	// Paper Figure 4: topoorder(S1)=1, S2=2, S4=S5=2, S3=3, S6=4.
	n := buildNet(6, [][2]int{{0, 1}, {1, 2}, {2, 5}, {0, 3}, {3, 4}, {4, 3}, {4, 5}})
	tp := TopoOrder(n)
	want := []int32{1, 2, 3, 2, 2, 4}
	for s, w := range want {
		if tp.Order[s] != w {
			t.Errorf("Order[%d] = %d, want %d", s, tp.Order[s], w)
		}
	}
	if tp.MaxPerNFA[0] != 4 {
		t.Errorf("MaxPerNFA = %d, want 4", tp.MaxPerNFA[0])
	}
	// Normalized depths from the paper: S4,S5 -> 2/4 = 0.5.
	if d := tp.NormalizedDepth(n, 3); d != 0.5 {
		t.Errorf("NormalizedDepth(S4) = %v, want 0.5", d)
	}
	if d := tp.NormalizedDepth(n, 5); d != 1.0 {
		t.Errorf("NormalizedDepth(S6) = %v, want 1.0", d)
	}
}

func TestTopoOrderSelfLoop(t *testing.T) {
	// A self-loop is an SCC of size 1 but must not break ordering.
	n := buildNet(3, [][2]int{{0, 1}, {1, 1}, {1, 2}})
	tp := TopoOrder(n)
	if tp.Order[0] != 1 || tp.Order[1] != 2 || tp.Order[2] != 3 {
		t.Fatalf("orders = %v", tp.Order)
	}
}

func TestTopoOrderMultiNFA(t *testing.T) {
	m1 := automata.NewNFA()
	a := m1.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m1.Add(symset.Single('b'), automata.StartNone, true)
	m1.Connect(a, b)
	m2 := automata.NewNFA()
	x := m2.Add(symset.Single('x'), automata.StartAllInput, false)
	y := m2.Add(symset.Single('y'), automata.StartNone, false)
	z := m2.Add(symset.Single('z'), automata.StartNone, true)
	m2.Connect(x, y)
	m2.Connect(y, z)
	n := automata.NewNetwork(m1, m2)
	tp := TopoOrder(n)
	if tp.MaxPerNFA[0] != 2 || tp.MaxPerNFA[1] != 3 {
		t.Fatalf("MaxPerNFA = %v", tp.MaxPerNFA)
	}
	if tp.Order[2] != 1 || tp.Order[4] != 3 {
		t.Fatalf("orders = %v", tp.Order)
	}
}

func TestBuckets(t *testing.T) {
	cases := []struct {
		d float64
		b DepthBucket
	}{
		{0.0, Shallow}, {0.29, Shallow}, {0.3, Medium}, {0.59, Medium},
		{0.6, Deep}, {1.0, Deep},
	}
	for _, c := range cases {
		if got := Bucket(c.d); got != c.b {
			t.Errorf("Bucket(%v) = %v, want %v", c.d, got, c.b)
		}
	}
	if Shallow.String() != "shallow" || Medium.String() != "medium" || Deep.String() != "deep" {
		t.Error("bucket names wrong")
	}
	if DepthBucket(9).String() != "unknown" {
		t.Error("unknown bucket name")
	}
}

func TestReachableFromStarts(t *testing.T) {
	// 0(start)->1->2, 3 unreachable island with edge 3->1.
	n := buildNet(4, [][2]int{{0, 1}, {1, 2}, {3, 1}})
	r := ReachableFromStarts(n)
	want := []bool{true, true, true, false}
	for i, w := range want {
		if r[i] != w {
			t.Errorf("reach[%d] = %v, want %v", i, r[i], w)
		}
	}
}

// randomNetwork generates a random single-NFA graph for property tests.
func randomNetwork(r *rand.Rand, n, e int) *automata.Network {
	edges := make([][2]int, 0, e)
	for i := 0; i < e; i++ {
		edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
	}
	return buildNet(n, edges)
}

// Property: states in the same SCC are mutually reachable; states in
// different SCCs are not mutually reachable.
func TestPropSCCMutualReachability(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		nStates := 2 + r.Intn(30)
		net := randomNetwork(r, nStates, r.Intn(60))
		res := SCC(net)
		reach := make([][]bool, nStates)
		for s := 0; s < nStates; s++ {
			reach[s] = bfs(net, s)
		}
		for u := 0; u < nStates; u++ {
			for v := 0; v < nStates; v++ {
				mutual := reach[u][v] && reach[v][u]
				same := res.Comp[u] == res.Comp[v]
				if mutual != same {
					t.Fatalf("trial %d: states %d,%d mutual=%v sameComp=%v", trial, u, v, mutual, same)
				}
			}
		}
	}
}

func bfs(n *automata.Network, src int) []bool {
	seen := make([]bool, n.Len())
	seen[src] = true
	queue := []automata.StateID{automata.StateID(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range n.States[u].Succ {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

// Property: topological order never decreases along any edge, and strictly
// increases across SCC boundaries.
func TestPropTopoMonotoneAlongEdges(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		nStates := 2 + r.Intn(40)
		net := randomNetwork(r, nStates, r.Intn(80))
		tp := TopoOrder(net)
		for u := 0; u < nStates; u++ {
			for _, v := range net.States[u].Succ {
				cu, cv := tp.SCC.Comp[u], tp.SCC.Comp[v]
				if cu == cv {
					if tp.Order[u] != tp.Order[int(v)] {
						t.Fatalf("same SCC, different order: %d vs %d", u, v)
					}
				} else if tp.Order[int(v)] <= tp.Order[u] {
					t.Fatalf("edge %d->%d not increasing: %d -> %d", u, v, tp.Order[u], tp.Order[int(v)])
				}
			}
		}
		// All orders are >= 1.
		for s, o := range tp.Order {
			if o < 1 {
				t.Fatalf("state %d has order %d", s, o)
			}
		}
	}
}

// Property: sum of SCC sizes equals the number of states.
func TestPropSCCSizesSum(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		nStates := 1 + r.Intn(50)
		net := randomNetwork(r, nStates, r.Intn(100))
		res := SCC(net)
		sum := int32(0)
		for _, s := range res.Size {
			sum += s
		}
		if int(sum) != nStates {
			t.Fatalf("sizes sum %d != %d states", sum, nStates)
		}
	}
}

func TestHasCycle(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  bool
	}{
		{"chain", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, false},
		{"diamond", 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, false},
		{"self-loop only", 3, [][2]int{{0, 1}, {1, 1}, {1, 2}}, true},
		{"two-cycle", 3, [][2]int{{0, 1}, {1, 2}, {2, 1}}, true},
		{"empty", 2, nil, false},
	}
	for _, tc := range cases {
		net := buildNet(tc.n, tc.edges)
		if got := SCC(net).HasCycle(net); got != tc.want {
			t.Errorf("%s: HasCycle = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// Property: HasCycle agrees with a DFS three-color cycle detector.
func TestPropHasCycleAgainstDFS(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(10)
		var edges [][2]int
		for e := 0; e < r.Intn(2*n); e++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		net := buildNet(n, edges)
		want := dfsHasCycle(net)
		if got := SCC(net).HasCycle(net); got != want {
			t.Fatalf("trial %d (n=%d edges=%v): HasCycle = %v, DFS says %v",
				trial, n, edges, got, want)
		}
	}
}

func dfsHasCycle(n *automata.Network) bool {
	const white, gray, black = 0, 1, 2
	color := make([]int, n.Len())
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range n.States[u].Succ {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(int(v)) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n.Len(); u++ {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

func TestNormalizedDepthDegenerateLayer(t *testing.T) {
	// An NFA whose maximum order is 0 (a Topo over a degenerate or
	// hand-built layer map) must report full depth 1, not NaN: the old
	// 0/0 silently classified every such state as Deep via Bucket.
	net := buildNet(1, nil)
	tp := &Topo{
		Order:     []int32{0},
		MaxPerNFA: []int32{0},
		SCC:       SCC(net),
	}
	d := tp.NormalizedDepth(net, 0)
	if d != 1.0 {
		t.Fatalf("NormalizedDepth with MaxPerNFA=0 = %v, want 1.0", d)
	}
	if b := Bucket(d); b != Deep {
		t.Errorf("Bucket(%v) = %v, want Deep (by definition, not by NaN fallthrough)", d, b)
	}
}
