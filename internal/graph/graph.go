// Package graph implements the graph analyses the partitioner relies on:
// strongly connected components (Tarjan), the SCC condensation DAG, the
// layered topological order of Section III-A, and normalized depth.
//
// All functions operate on an automata.Network. Because edges never cross
// NFAs, per-NFA quantities (MaxTopo, normalized depth) fall out of one
// network-wide pass.
package graph

import (
	"sparseap/internal/automata"
)

// SCCResult holds the strongly connected components of a network.
type SCCResult struct {
	// Comp[s] is the component number of state s. Component numbers are
	// dense in [0, NumComps).
	Comp []int32
	// NumComps is the number of components.
	NumComps int
	// Size[c] is the number of states in component c.
	Size []int32
}

// SCC computes strongly connected components with an iterative Tarjan
// algorithm (the networks can be deep, so recursion is avoided).
func SCC(n *automata.Network) *SCCResult {
	nn := n.Len()
	const unvisited = -1
	index := make([]int32, nn)
	low := make([]int32, nn)
	onStack := make([]bool, nn)
	comp := make([]int32, nn)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var (
		stack   []int32 // Tarjan stack
		counter int32
		ncomp   int32
		sizes   []int32
	)
	// Explicit DFS stack: frame is (node, next successor index).
	type frame struct {
		v    int32
		succ int
	}
	var dfs []frame
	for root := 0; root < nn; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: int32(root)})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			succ := n.States[v].Succ
			if f.succ < len(succ) {
				w := int32(succ[f.succ])
				f.succ++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Post-visit of v.
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var size int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					size++
					if w == v {
						break
					}
				}
				sizes = append(sizes, size)
				ncomp++
			}
		}
	}
	return &SCCResult{Comp: comp, NumComps: int(ncomp), Size: sizes}
}

// HasCycle reports whether the network contains any directed cycle. A
// cycle exists exactly when some edge stays inside one component — this
// covers both multi-state SCCs and self-loops (an SCC of size 1 with an
// edge to itself), so callers need no separate self-loop scan.
func (r *SCCResult) HasCycle(n *automata.Network) bool {
	for u := 0; u < n.Len(); u++ {
		cu := r.Comp[u]
		for _, v := range n.States[u].Succ {
			if r.Comp[v] == cu {
				return true
			}
		}
	}
	return false
}

// Topo holds the layered topological order of a network's states.
type Topo struct {
	// Order[s] is topoorder(s): 1 for source layers, 1 + max over
	// predecessor layers otherwise. States in one SCC share an order.
	Order []int32
	// MaxPerNFA[i] is the maximum topological order within NFA i.
	MaxPerNFA []int32
	// SCC is the component decomposition the order was derived from.
	SCC *SCCResult
}

// TopoOrder computes the layered topological order of Section III-A: the
// network is condensed by SCC, and each condensation node's order is one
// more than the maximum order of its predecessors (sources have order 1).
// This equals the maximum number of matching steps from a source layer.
func TopoOrder(n *automata.Network) *Topo {
	scc := SCC(n)
	nc := scc.NumComps
	// Build condensation adjacency and in-degrees (dedup via marker).
	adj := make([][]int32, nc)
	indeg := make([]int32, nc)
	lastSeen := make([]int32, nc)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	for u := 0; u < n.Len(); u++ {
		cu := scc.Comp[u]
		for _, v := range n.States[u].Succ {
			cv := scc.Comp[v]
			if cu == cv {
				continue
			}
			if lastSeen[cv] == cu {
				continue // duplicate edge from this component in a row; cheap partial dedup
			}
			lastSeen[cv] = cu
			adj[cu] = append(adj[cu], cv)
			indeg[cv]++
		}
	}
	// Kahn's algorithm computing longest-path layers.
	order := make([]int32, nc)
	queue := make([]int32, 0, nc)
	for c := 0; c < nc; c++ {
		if indeg[c] == 0 {
			order[c] = 1
			queue = append(queue, int32(c))
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, d := range adj[c] {
			if order[c]+1 > order[d] {
				order[d] = order[c] + 1
			}
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, int32(d))
			}
		}
	}
	t := &Topo{
		Order:     make([]int32, n.Len()),
		MaxPerNFA: make([]int32, n.NumNFAs()),
		SCC:       scc,
	}
	for s := 0; s < n.Len(); s++ {
		o := order[scc.Comp[s]]
		t.Order[s] = o
		if nfa := n.NFAOf[s]; o > t.MaxPerNFA[nfa] {
			t.MaxPerNFA[nfa] = o
		}
	}
	return t
}

// NormalizedDepth returns Order[s]/MaxPerNFA[nfa(s)] in (0, 1]. An NFA
// whose maximum order is 0 has a single (degenerate) layer; every state
// in it is defined to be at full depth 1 rather than NaN, which
// Bucket would otherwise silently classify as Deep.
func (t *Topo) NormalizedDepth(n *automata.Network, s automata.StateID) float64 {
	max := t.MaxPerNFA[n.NFAOf[s]]
	if max == 0 {
		return 1
	}
	return float64(t.Order[s]) / float64(max)
}

// DepthBucket classifies a normalized depth per Fig. 5: shallow [0, 0.3),
// medium [0.3, 0.6), deep [0.6, 1].
type DepthBucket int

const (
	// Shallow is normalized depth in [0, 0.3).
	Shallow DepthBucket = iota
	// Medium is normalized depth in [0.3, 0.6).
	Medium
	// Deep is normalized depth in [0.6, 1].
	Deep
)

// String names the bucket.
func (b DepthBucket) String() string {
	switch b {
	case Shallow:
		return "shallow"
	case Medium:
		return "medium"
	case Deep:
		return "deep"
	}
	return "unknown"
}

// Bucket classifies a normalized depth value.
func Bucket(d float64) DepthBucket {
	switch {
	case d < 0.3:
		return Shallow
	case d < 0.6:
		return Medium
	default:
		return Deep
	}
}

// ReachableFromStarts returns, per state, whether it is reachable from any
// start state of its NFA (start states are reachable from themselves).
func ReachableFromStarts(n *automata.Network) []bool {
	reach := make([]bool, n.Len())
	var queue []automata.StateID
	for s := 0; s < n.Len(); s++ {
		if n.States[s].Start != automata.StartNone {
			reach[s] = true
			queue = append(queue, automata.StateID(s))
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range n.States[u].Succ {
			if !reach[v] {
				reach[v] = true
				queue = append(queue, v)
			}
		}
	}
	return reach
}
