package dataflow

import (
	"math/rand"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// chainNet builds start(a) -> mid(b) -> rep(c) with the given match sets.
func chainNet(a, b, c symset.Set) *automata.Network {
	m := automata.NewNFA()
	s0 := m.Add(a, automata.StartAllInput, false)
	s1 := m.Add(b, automata.StartNone, false)
	s2 := m.Add(c, automata.StartNone, true)
	m.Connect(s0, s1)
	m.Connect(s1, s2)
	return automata.NewNetwork(m)
}

func TestForwardChain(t *testing.T) {
	net := chainNet(symset.Single('a'), symset.Single('b'), symset.Single('c'))
	f := Analyze(net, symset.Set{})
	for s := 0; s < 3; s++ {
		want := net.States[s].Match
		if !f.Fire[s].Equal(want) {
			t.Errorf("Fire[%d] = %s, want %s", s, f.Fire[s], want)
		}
		if !f.Live[s] {
			t.Errorf("Live[%d] = false, want true", s)
		}
	}
	if !f.Enable[1].Equal(symset.Single('a')) {
		t.Errorf("Enable[1] = %s, want a", f.Enable[1])
	}
	if !f.Enable[2].Equal(symset.Single('b')) {
		t.Errorf("Enable[2] = %s, want b", f.Enable[2])
	}
}

func TestEmptySymsetBlocksPropagation(t *testing.T) {
	// The middle state matches nothing, so the tail can never be enabled.
	net := chainNet(symset.Single('a'), symset.Empty(), symset.Single('c'))
	f := Analyze(net, symset.Set{})
	if !f.Fire[0].Equal(symset.Single('a')) {
		t.Errorf("Fire[0] = %s, want a", f.Fire[0])
	}
	for s := 1; s < 3; s++ {
		if !f.Fire[s].IsEmpty() {
			t.Errorf("Fire[%d] = %s, want empty", s, f.Fire[s])
		}
		if !f.Unreachable(automata.StateID(s)) {
			t.Errorf("Unreachable(%d) = false, want true", s)
		}
	}
	// The head fires but nothing downstream can report: dead.
	if f.Live[0] || !f.Dead(0) {
		t.Errorf("state 0: Live=%v Dead=%v, want false/true", f.Live[0], f.Dead(0))
	}
	if !f.Removable(0) || !f.Removable(1) || !f.Removable(2) {
		t.Error("all three states should be removable")
	}
}

func TestAlphabetRestriction(t *testing.T) {
	// Under the DNA alphabet ACGT, a state matching only 'x' never fires.
	net := chainNet(symset.Single('A'), symset.Single('x'), symset.Single('C'))
	f := Analyze(net, symset.Of('A', 'C', 'G', 'T'))
	if !f.Fire[0].Equal(symset.Single('A')) {
		t.Errorf("Fire[0] = %s, want A", f.Fire[0])
	}
	if !f.Fire[1].IsEmpty() || !f.Fire[2].IsEmpty() {
		t.Errorf("Fire[1]=%s Fire[2]=%s, want both empty under ACGT", f.Fire[1], f.Fire[2])
	}

	// Under the unrestricted alphabet the same chain is fully live.
	f = Analyze(net, symset.Set{})
	if f.Fire[1].IsEmpty() || !f.Live[0] {
		t.Error("chain should be live under the full alphabet")
	}
}

func TestCycleFixpoint(t *testing.T) {
	// start(a) -> u(b) <-> v(c), v -> rep(d): the cycle must reach a
	// fixpoint where both members fire and are live.
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	u := m.Add(symset.Single('b'), automata.StartNone, false)
	v := m.Add(symset.Single('c'), automata.StartNone, false)
	rep := m.Add(symset.Single('d'), automata.StartNone, true)
	m.Connect(s0, u)
	m.Connect(u, v)
	m.Connect(v, u)
	m.Connect(v, rep)
	net := automata.NewNetwork(m)
	f := Analyze(net, symset.Set{})
	for s := 0; s < 4; s++ {
		if f.Fire[s].IsEmpty() {
			t.Errorf("Fire[%d] empty, want nonempty", s)
		}
		if !f.Live[s] {
			t.Errorf("Live[%d] = false, want true", s)
		}
	}
	// Enable of u joins both the start and the cycle edge.
	if !f.Enable[u].Equal(symset.Of('a', 'c')) {
		t.Errorf("Enable[u] = %s, want [ac]", f.Enable[u])
	}
}

func TestCycleWithNoReport(t *testing.T) {
	// A cycle that can fire but never reach a reporting state is dead.
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	u := m.Add(symset.Single('b'), automata.StartNone, false)
	m.Connect(s0, u)
	m.Connect(u, u)
	net := automata.NewNetwork(m)
	f := Analyze(net, symset.Set{})
	if f.Fire[u].IsEmpty() {
		t.Error("cycle member should fire")
	}
	if f.Live[0] || f.Live[1] {
		t.Error("nothing should be live without a reporting state")
	}
	if !f.Dead(0) || !f.Dead(1) {
		t.Error("both states should be dead")
	}
}

func TestSelfLoopOnlyStart(t *testing.T) {
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, true)
	m.Connect(s0, s0)
	net := automata.NewNetwork(m)
	f := Analyze(net, symset.Set{})
	if !f.Fire[0].Equal(symset.Single('a')) || !f.Live[0] {
		t.Errorf("self-loop start: Fire=%s Live=%v", f.Fire[0], f.Live[0])
	}
	if !f.Enable[0].Equal(symset.Single('a')) {
		t.Errorf("Enable[0] = %s, want a (its own fire set)", f.Enable[0])
	}
}

func TestStartOfDataFires(t *testing.T) {
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartOfData, false)
	s1 := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(s0, s1)
	net := automata.NewNetwork(m)
	f := Analyze(net, symset.Set{})
	if f.Fire[0].IsEmpty() || f.Fire[1].IsEmpty() {
		t.Error("start-of-data chain should fire")
	}
}

func TestEmptyNetwork(t *testing.T) {
	net := &automata.Network{}
	f := Analyze(net, symset.Set{})
	if len(f.Fire) != 0 || len(f.Live) != 0 {
		t.Error("empty network should produce empty fact slices")
	}
	if !f.LiveAlphabet().IsEmpty() {
		t.Error("empty network has an empty live alphabet")
	}
}

func TestFireProb(t *testing.T) {
	// Two starts matching disjoint singletons: live alphabet = 2 symbols,
	// each fires with probability 1/2.
	m := automata.NewNFA()
	m.Add(symset.Single('a'), automata.StartAllInput, true)
	m.Add(symset.Single('b'), automata.StartAllInput, true)
	net := automata.NewNetwork(m)
	f := Analyze(net, symset.Set{})
	if got := f.FireProb(0); got != 0.5 {
		t.Errorf("FireProb(0) = %v, want 0.5", got)
	}
	if got := f.LiveAlphabet(); !got.Equal(symset.Of('a', 'b')) {
		t.Errorf("LiveAlphabet = %s, want [ab]", got)
	}
}

func TestUnreachableBranchUnderAlphabet(t *testing.T) {
	// Two branches from one start; one branch is outside the alphabet and
	// everything behind it must be unreachable while the other stays live.
	m := automata.NewNFA()
	s0 := m.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	bad := m.Add(symset.Single('!'), automata.StartNone, false)
	badTail := m.Add(symset.Single('q'), automata.StartNone, true)
	good := m.Add(symset.Single('g'), automata.StartNone, true)
	m.Connect(s0, bad)
	m.Connect(bad, badTail)
	m.Connect(s0, good)
	net := automata.NewNetwork(m)
	f := Analyze(net, symset.Range('a', 'z'))
	if !f.Unreachable(bad) || !f.Unreachable(badTail) {
		t.Error("branch outside the alphabet should be unreachable")
	}
	if !f.Live[s0] || !f.Live[good] {
		t.Error("surviving branch should stay live")
	}
}

// randomNet builds a deterministic pseudo-random network: a few NFAs of
// chained/cross-linked states with random match sets (some deliberately
// empty so unreachable regions occur).
func randomNet(r *rand.Rand) *automata.Network {
	nfas := make([]*automata.NFA, 1+r.Intn(3))
	for i := range nfas {
		m := automata.NewNFA()
		n := 2 + r.Intn(8)
		ids := make([]automata.StateID, n)
		for j := 0; j < n; j++ {
			var ms symset.Set
			switch r.Intn(4) {
			case 0: // empty: blocks propagation
			case 1:
				ms = symset.Single(byte(r.Intn(256)))
			case 2:
				lo := byte(r.Intn(200))
				ms = symset.Range(lo, lo+byte(r.Intn(50)))
			case 3:
				ms = symset.All()
			}
			kind := automata.StartNone
			if j == 0 || r.Intn(5) == 0 {
				kind = automata.StartAllInput
			}
			ids[j] = m.Add(ms, kind, r.Intn(4) == 0)
		}
		for j := 1; j < n; j++ {
			m.Connect(ids[r.Intn(j)], ids[j]) // keep it connected
			if r.Intn(3) == 0 {
				m.Connect(ids[j], ids[r.Intn(n)]) // random back/cross edge
			}
		}
		nfas[i] = m
	}
	return automata.NewNetwork(nfas...)
}

// TestFireProbProperties checks the three FireProb contracts over random
// networks: range [0,1], zero exactly on Unreachable states, and
// monotonicity under widening of a state's own match set.
func TestFireProbProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		net := randomNet(r)
		f := Analyze(net, symset.Set{})
		for s := 0; s < net.Len(); s++ {
			id := automata.StateID(s)
			p := f.FireProb(id)
			if p < 0 || p > 1 {
				t.Fatalf("trial %d: FireProb(%d) = %g out of [0,1]", trial, s, p)
			}
			if (p == 0) != f.Unreachable(id) {
				t.Fatalf("trial %d: FireProb(%d) = %g but Unreachable = %v",
					trial, s, p, f.Unreachable(id))
			}
		}

		// Widen one random state's match set and re-analyze: that
		// state's own FireProb must not decrease. (Other states' values
		// may legitimately drop — the live-alphabet denominator grows —
		// so the contract is per widened state.)
		s := automata.StateID(r.Intn(net.Len()))
		before := f.FireProb(s)
		widened := net.Clone()
		widened.States[s].Match = widened.States[s].Match.Union(
			symset.Range(byte(r.Intn(128)), byte(128+r.Intn(128))))
		f2 := Analyze(widened, symset.Set{})
		if after := f2.FireProb(s); after < before-1e-12 {
			t.Fatalf("trial %d: FireProb(%d) decreased under widening: %g -> %g",
				trial, s, before, after)
		}
	}
}
