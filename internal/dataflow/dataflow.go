// Package dataflow implements fixpoint abstract interpretation over
// automata networks using the 256-bit symbol-set lattice of
// internal/symset.
//
// The AP's premise — most STE capacity is provably wasted — has a static
// component: from symbol-set algebra alone, before any input is streamed,
// some states can be shown never to fire, and some firings can be shown
// never to contribute to a report. This package computes those facts:
//
//   - The forward pass derives, per state, the *fire set*: the subset of
//     the input alphabet on which the state can ever activate. A state
//     fires on a symbol b iff b is in its match set and the state can be
//     enabled at all — by a start kind, or by some predecessor that can
//     itself fire. The abstraction is a join-semilattice of symbol sets
//     (bottom = empty, join = union), and the transfer function
//
//     fire(s) = match(s) ∩ A        if s is a start state
//     fire(s) = match(s) ∩ A ∩ gate if ∪_{p∈preds(s)} fire(p) ≠ ∅
//     fire(s) = ∅                   otherwise
//
//     is monotone, so worklist iteration converges. Iteration runs over
//     the SCC condensation: components are processed in topological
//     order, and only the states inside one component iterate to a local
//     fixpoint before their successors are visited — the pass visits
//     each acyclic region exactly once.
//
//   - The backward pass derives, per state, *liveness to report*: whether
//     an activation of the state can contribute, through some chain of
//     states that can all fire, to the activation of a reporting state.
//     Reporting states that can fire are live; a non-reporting state is
//     live iff it can fire and some successor is live.
//
// Everything downstream consumes these facts: the semantic lint analyzers
// (AP017–AP022) report them, and internal/rewrite's proof-carrying
// transformations are justified by them.
package dataflow

import (
	"sparseap/internal/automata"
	"sparseap/internal/graph"
	"sparseap/internal/symset"
)

// Facts holds the per-state results of the fixpoint analyses over one
// network. All slices are indexed by global state ID.
type Facts struct {
	// Net is the analyzed network.
	Net *automata.Network
	// Alphabet is the input alphabet the analysis assumed. Symbols
	// outside it are treated as never appearing in any input stream.
	Alphabet symset.Set
	// Fire[s] is the set of symbols state s can ever activate on:
	// match(s) ∩ Alphabet when s can be enabled, empty otherwise. A
	// state with an empty fire set provably never activates, never
	// reports, and never enables a successor.
	Fire []symset.Set
	// Enable[s] is the join of the fire sets of s's predecessors — the
	// symbols whose occurrence (one cycle earlier) can enable s. Start
	// states are additionally enabled by their start kind regardless of
	// Enable; the field still records what flows in over edges.
	Enable []symset.Set
	// Live[s] reports whether an activation of s can contribute to a
	// report: s can fire, and s reports or some successor is live.
	Live []bool
	// Iterations counts state re-evaluations of the forward fixpoint
	// (statistics; bounded by states + states-in-cycles × alphabet).
	Iterations int
}

// Analyze runs both passes over the network under the given input
// alphabet. An empty alphabet means the full 256-symbol alphabet (the
// zero value is "no restriction", matching lint.Options).
func Analyze(net *automata.Network, alphabet symset.Set) *Facts {
	if alphabet.IsEmpty() {
		alphabet = symset.All()
	}
	f := &Facts{
		Net:      net,
		Alphabet: alphabet,
		Fire:     make([]symset.Set, net.Len()),
		Enable:   make([]symset.Set, net.Len()),
		Live:     make([]bool, net.Len()),
	}
	f.forward()
	f.backward()
	return f
}

// forward computes Fire and Enable by worklist iteration over the SCC
// condensation in topological order.
func (f *Facts) forward() {
	n := f.Net
	if n.Len() == 0 {
		return
	}
	scc := graph.SCC(n)

	// Topologically order the components with Kahn's algorithm over the
	// condensation (dedup via last-seen marker, as graph.TopoOrder does).
	nc := scc.NumComps
	// members[c] lists the states of component c in ascending ID order.
	members := make([][]automata.StateID, nc)
	for s := 0; s < n.Len(); s++ {
		c := scc.Comp[s]
		members[c] = append(members[c], automata.StateID(s))
	}
	// Indegrees count distinct predecessor components. Sources must be
	// scanned grouped by component for the last-seen dedup to be valid —
	// interleaved sources would count one (cu, cv) pair twice and leave
	// cv unreleased forever.
	indeg := make([]int32, nc)
	lastSeen := make([]int32, nc)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	for cu := int32(0); cu < int32(nc); cu++ {
		for _, u := range members[cu] {
			for _, v := range n.States[u].Succ {
				cv := scc.Comp[v]
				if cu == cv || lastSeen[cv] == cu {
					continue
				}
				lastSeen[cv] = cu
				indeg[cv]++
			}
		}
	}
	order := make([]int32, 0, nc)
	for c := 0; c < nc; c++ {
		if indeg[c] == 0 {
			order = append(order, int32(c))
		}
	}
	preds := n.Preds()
	// eval recomputes one state's facts; returns true if Fire grew.
	eval := func(s automata.StateID) bool {
		st := &n.States[s]
		var enable symset.Set
		for _, p := range preds[s] {
			enable = enable.Union(f.Fire[p])
		}
		f.Enable[s] = enable
		fire := f.Fire[s]
		if st.Start != automata.StartNone || !enable.IsEmpty() {
			fire = st.Match.Intersect(f.Alphabet)
		}
		f.Iterations++
		if fire.Equal(f.Fire[s]) {
			return false
		}
		f.Fire[s] = fire
		return true
	}
	for qi := 0; qi < len(order); qi++ {
		c := order[qi]
		ms := members[c]
		if len(ms) == 1 && !selfLoop(n, ms[0]) {
			eval(ms[0])
		} else {
			// Iterate the cyclic component to a local fixpoint. The
			// lattice has height ≤ |alphabet| per state, so this
			// terminates; in practice one extra round suffices because
			// Fire only switches empty → match∩A.
			for changed := true; changed; {
				changed = false
				for _, s := range ms {
					if eval(s) {
						changed = true
					}
				}
			}
		}
		// Release successor components whose inputs are now final.
		for _, s := range ms {
			for _, v := range n.States[s].Succ {
				cv := scc.Comp[v]
				if cv == c {
					continue
				}
				if lastSeen[cv] == ^c { // already decremented for (c, cv)
					continue
				}
				lastSeen[cv] = ^c
				indeg[cv]--
				if indeg[cv] == 0 {
					order = append(order, cv)
				}
			}
		}
	}
}

// selfLoop reports whether state s has an edge to itself.
func selfLoop(n *automata.Network, s automata.StateID) bool {
	for _, v := range n.States[s].Succ {
		if v == s {
			return true
		}
	}
	return false
}

// backward computes Live with a reverse reachability pass restricted to
// states that can fire: liveness propagates from firing reporting states
// through predecessors that can themselves fire.
func (f *Facts) backward() {
	n := f.Net
	preds := n.Preds()
	var stack []automata.StateID
	for s := 0; s < n.Len(); s++ {
		if n.States[s].Report && !f.Fire[s].IsEmpty() {
			f.Live[s] = true
			stack = append(stack, automata.StateID(s))
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[u] {
			if !f.Live[p] && !f.Fire[p].IsEmpty() {
				f.Live[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// Unreachable reports whether state s can never fire under the alphabet:
// its fire set is empty, either because its match set misses the alphabet
// or because no enabling chain from a start state exists.
func (f *Facts) Unreachable(s automata.StateID) bool { return f.Fire[s].IsEmpty() }

// Dead reports whether state s can fire but never contributes to any
// report: it is not reporting and no live successor exists.
func (f *Facts) Dead(s automata.StateID) bool {
	return !f.Fire[s].IsEmpty() && !f.Live[s]
}

// Removable reports whether state s can be deleted without changing the
// network's report stream: it either never fires, or fires without ever
// contributing to a report.
func (f *Facts) Removable(s automata.StateID) bool { return !f.Live[s] }

// FireProb returns the uniform-symbol activation probability of state s
// relative to the live alphabet: |fire(s)| / |live|, where live is the
// union of all fire sets. It is the semantic refinement of the AP016
// report-density model — states that provably never fire contribute 0.
func (f *Facts) FireProb(s automata.StateID) float64 {
	live := f.LiveAlphabet().Len()
	if live == 0 {
		return 0
	}
	return float64(f.Fire[s].Len()) / float64(live)
}

// LiveAlphabet returns the union of every state's fire set: the symbols
// that can drive any activation at all.
func (f *Facts) LiveAlphabet() symset.Set {
	var a symset.Set
	for _, fs := range f.Fire {
		a = a.Union(fs)
	}
	return a
}
