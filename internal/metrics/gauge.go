// Gauges: point-in-time values next to the monotonic counters — admitted
// bytes, queue depths — rendered in the same Prometheus text form.
package metrics

import "sync/atomic"

// Gauge is a settable instantaneous value. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (either direction).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge returns the gauge of the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		if r.gauges == nil {
			r.gauges = map[string]*Gauge{}
		}
		r.gauges[name] = g
	}
	return g
}
