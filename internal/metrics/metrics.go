// Package metrics implements the evaluation metrics of Sections IV and VI:
// prediction-quality confusion statistics, speedup, geometric mean,
// performance per STE, and small text-table rendering shared by the
// experiment drivers.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Confusion is a binary confusion matrix with hot = positive, cold =
// negative (Section IV-A).
type Confusion struct {
	TP, FP, TN, FN int
}

// Accuracy is (TP+TN)/(P+N).
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Recall is TP/(TP+FN): the fraction of truly hot states predicted hot.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Precision is TP/(TP+FP): the fraction of predicted-hot states that are
// truly hot.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Add accumulates another confusion matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// GeoMean returns the geometric mean of the values; zero and negative
// values are rejected by returning NaN (speedups are strictly positive).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Speedup returns baseline/new. The degenerate newCycles == 0 case (an
// execution that did no work, e.g. one cancelled before its first batch)
// yields 0 rather than +Inf so that downstream geomeans and tables stay
// finite.
func Speedup(baselineCycles, newCycles int64) float64 {
	if newCycles == 0 {
		return 0
	}
	return float64(baselineCycles) / float64(newCycles)
}

// Correlation returns the Pearson correlation coefficient of two equal-
// length series (used for the depth-vs-hotness analysis of Section III-B).
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Table renders rows of cells as an aligned text table with a header rule,
// in the style of the paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with %v (floats with %.2f).
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.2f", v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
