// Histograms for the serving path: fixed explicit buckets, lock-free
// observation, Prometheus text rendering. The serving batcher records
// batch widths and admission-window waits here; counters alone cannot
// answer "what width do batches actually form at p99".
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram counts observations into fixed upper-bound buckets. The
// bounds are set at registration and immutable; observations above the
// last bound land in the implicit +Inf bucket. All methods are safe for
// concurrent use.
type Histogram struct {
	bounds []int64        // ascending upper bounds (inclusive)
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	total  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// BucketCount returns the count of observations at or below bounds[i],
// cumulatively (Prometheus le-semantics); i == len(bounds) is +Inf.
func (h *Histogram) BucketCount(i int) int64 {
	var c int64
	for j := 0; j <= i && j < len(h.counts); j++ {
		c += h.counts[j].Load()
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds). Bounds must be
// ascending.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if r.hists == nil {
			r.hists = map[string]*Histogram{}
		}
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// writeHistText renders every histogram in Prometheus text exposition
// form (name_bucket{le="..."} cumulative counts, name_sum, name_count),
// sorted by name. Called by Registry.WriteText.
func (r *Registry) writeHistText(b *strings.Builder) {
	r.mu.RLock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	hists := make([]*Histogram, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		hists = append(hists, r.hists[n])
	}
	r.mu.RUnlock()
	for i, n := range names {
		h := hists[i]
		cum := int64(0)
		for j, bound := range h.bounds {
			cum += h.counts[j].Load()
			fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", n, bound, cum)
		}
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.total.Load())
		fmt.Fprintf(b, "%s_sum %d\n", n, h.sum.Load())
		fmt.Fprintf(b, "%s_count %d\n", n, h.total.Load())
	}
}
