package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	r := NewRegistry()
	r.Counter("sessions").Inc()
	r.Counter("sessions").Add(2)
	r.Counter("sessions").Add(-5) // ignored: counters only go up
	if got := r.Counter("sessions").Value(); got != 3 {
		t.Fatalf("sessions = %d, want 3", got)
	}
	r.Tenant("shed", "a").Inc()
	r.Tenant("shed", "b").Add(4)
	if got := r.Total("shed"); got != 5 {
		t.Fatalf("Total(shed) = %d, want 5", got)
	}
	snap := r.Snapshot()
	if snap[`shed{tenant="a"}`] != 1 || snap[`shed{tenant="b"}`] != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := string(rune('a' + w%2))
			for i := 0; i < 1000; i++ {
				r.Counter("reqs").Inc()
				r.Tenant("reqs_by_tenant", tenant).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("reqs").Value(); got != 8000 {
		t.Fatalf("reqs = %d, want 8000", got)
	}
	if got := r.Total("reqs_by_tenant"); got != 8000 {
		t.Fatalf("Total(reqs_by_tenant) = %d, want 8000", got)
	}
}

func TestCountersTextStable(t *testing.T) {
	r := NewRegistry()
	r.Tenant("x", "b").Inc()
	r.Tenant("x", "a").Inc()
	r.Counter("a_first").Inc()
	text := r.String()
	want := "a_first 1\nx{tenant=\"a\"} 1\nx{tenant=\"b\"} 1\n"
	if text != want {
		t.Fatalf("text = %q, want %q", text, want)
	}
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("text must end with newline")
	}
}
