// Runtime counters for the serving path.
//
// The evaluation metrics above are batch-computed; a long-lived server
// needs cheap always-on counters instead: monotonically increasing,
// safe under concurrent sessions, labeled per tenant so one noisy tenant
// is visible next to its neighbours. The registry renders in a
// Prometheus-compatible text form (counter lines with a single optional
// tenant label), so the /metrics endpoint can be scraped or just curled.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored: counters
// only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is a set of named counters, each optionally split by a tenant
// label. Lookups allocate on first use and are lock-free afterwards for
// the unlabeled fast path.
type Registry struct {
	mu       sync.RWMutex
	plain    map[string]*Counter
	labelled map[string]map[string]*Counter // name -> tenant -> counter
	hists    map[string]*Histogram          // see histogram.go
	gauges   map[string]*Gauge              // see gauge.go
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		plain:    map[string]*Counter{},
		labelled: map[string]map[string]*Counter{},
	}
}

// Counter returns the unlabeled counter of the given name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.plain[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.plain[name]; c == nil {
		c = &Counter{}
		r.plain[name] = c
	}
	return c
}

// Tenant returns the counter of the given name for one tenant, creating
// it on first use.
func (r *Registry) Tenant(name, tenant string) *Counter {
	r.mu.RLock()
	c := r.labelled[name][tenant]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.labelled[name]
	if m == nil {
		m = map[string]*Counter{}
		r.labelled[name] = m
	}
	if c = m[tenant]; c == nil {
		c = &Counter{}
		m[tenant] = c
	}
	return c
}

// Snapshot returns every counter as a flat name -> value map; labelled
// counters render as name{tenant="t"}. The map is a copy.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.plain)+len(r.labelled))
	for name, c := range r.plain {
		out[name] = c.Value()
	}
	for name, m := range r.labelled {
		for tenant, c := range m {
			out[fmt.Sprintf("%s{tenant=%q}", name, tenant)] = c.Value()
		}
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Total sums a labelled counter across all tenants plus its unlabeled
// counterpart (either may be absent).
func (r *Registry) Total(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sum int64
	if c := r.plain[name]; c != nil {
		sum += c.Value()
	}
	for _, c := range r.labelled[name] {
		sum += c.Value()
	}
	return sum
}

// WriteText renders the registry in Prometheus text exposition form,
// sorted by metric name then tenant, so the output is diff-stable.
func (r *Registry) WriteText(b *strings.Builder) {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s %d\n", k, snap[k])
	}
	r.writeHistText(b)
}

// String renders the registry (see WriteText).
func (r *Registry) String() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}
