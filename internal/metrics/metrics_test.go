package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if got := c.Accuracy(); got != 0.93 {
		t.Errorf("accuracy = %v", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/13) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("precision = %v", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Recall() != 0 || c.Precision() != 0 {
		t.Error("empty confusion should return 0s")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	a.Add(Confusion{TP: 10, FP: 20, TN: 30, FN: 40})
	if a != (Confusion{TP: 11, FP: 22, TN: 33, FN: 44}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); got != 4 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("GeoMean single = %v", got)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("degenerate GeoMean should be NaN")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(100, 50) != 2 {
		t.Error("Speedup wrong")
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup by zero should be 0 (finite), got %v", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Correlation(xs, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	if got := Correlation(xs, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Correlation(xs, []float64{1, 1, 1, 1})) {
		t.Error("zero-variance correlation should be NaN")
	}
	if !math.IsNaN(Correlation(xs, []float64{1})) {
		t.Error("length mismatch should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("App", "Speedup")
	tab.AddRowf("CAV4k", 47.0)
	tab.AddRow("DS")
	s := tab.String()
	if !strings.Contains(s, "App") || !strings.Contains(s, "47.00") {
		t.Fatalf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.425) != "42.5%" {
		t.Errorf("Pct = %s", Pct(0.425))
	}
}

// Property: GeoMean of positive values lies between min and max.
func TestPropGeoMeanBounds(t *testing.T) {
	f := func(a, b, c uint16) bool {
		vals := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(vals)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
