// Package testleak verifies that a test leaves no goroutines behind — the
// guarantee a multi-tenant server needs from every execution path it
// wraps: a tenant disconnecting mid-stream must never strand a worker.
//
// The check snapshots the goroutine count up front and, at test cleanup,
// polls until the count returns to the baseline (goroutines already
// scheduled to exit need a few scheduler passes to unwind) before failing
// with a full goroutine dump. Runtime-internal helper goroutines that the
// Go runtime starts lazily (GC workers, timer scavenger) are tolerated by
// comparing against the maximum of the start count and the count after a
// forced GC.
package testleak

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// grace is how long Check waits for stragglers to unwind before declaring
// a leak.
const grace = 2 * time.Second

// Check installs a cleanup that fails t if the goroutine count has not
// returned to its baseline by the end of the test. Call it first thing.
func Check(t *testing.T) {
	t.Helper()
	runtime.GC() // settle lazily-started runtime goroutines into the baseline
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		// Trim the dump to keep failures readable.
		if i := bytes.LastIndexByte(buf[:min(len(buf), 16<<10)], '\n'); i > 0 {
			buf = buf[:i]
		}
		t.Errorf("goroutine leak: %d goroutines at cleanup, baseline %d\n%s", n, base, buf)
	})
}
