package exp

import (
	"sort"
	"testing"

	"sparseap/internal/ap"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
	"sparseap/internal/workloads"
)

// TestReportEquivalenceAllApps is the repository's end-to-end soundness
// check (DESIGN.md invariant 1) on the real workload suite rather than
// random networks: for every one of the 26 applications, the baseline
// full-NFA report multiset equals the BaseAP/SpAP report multiset and the
// AP-CPU report multiset, under a realistic profiling prefix and the
// batch-filling optimization.
func TestReportEquivalenceAllApps(t *testing.T) {
	wl := workloads.Config{InputLen: 8192, Divisor: 64, Seed: 5}
	cfg := ap.DefaultConfig().WithCapacity(375)
	s := NewSuite(wl, cfg)
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := s.App(name)
			if err != nil {
				t.Fatal(err)
			}
			input := a.TestInput()
			baseline := sim.Run(a.App.Net, input, sim.Options{CollectReports: true})
			p, err := a.Partition(0.01, cfg.Capacity)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			res, err := spap.RunBaseAPSpAP(p, input, cfg, spap.Options{CollectReports: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameReports(t, "BaseAP/SpAP", baseline.Reports, res.Reports)
			cpu, err := spap.RunAPCPU(p, input, cfg, spap.DefaultCPUModel(), spap.Options{CollectReports: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameReports(t, "AP-CPU", baseline.Reports, cpu.Reports)
		})
	}
}

func assertSameReports(t *testing.T, system string, want, got []sim.Report) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d reports, baseline %d", system, len(got), len(want))
	}
	norm := func(rs []sim.Report) []sim.Report {
		out := append([]sim.Report(nil), rs...)
		sort.Slice(out, func(a, b int) bool {
			if out[a].Pos != out[b].Pos {
				return out[a].Pos < out[b].Pos
			}
			return out[a].State < out[b].State
		})
		return out
	}
	w, g := norm(want), norm(got)
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: report %d differs: %+v vs baseline %+v", system, i, g[i], w[i])
		}
	}
}

// TestCycleAccountingConsistency checks the executor's arithmetic across
// the suite: TotalCycles = BaseAPCycles + SpAPCycles, SpAPCycles =
// processed + stalls, and BaseAP cycles follow the batching model.
func TestCycleAccountingConsistency(t *testing.T) {
	wl := workloads.Config{InputLen: 8192, Divisor: 64, Seed: 2}
	cfg := ap.DefaultConfig().WithCapacity(375)
	s := NewSuite(wl, cfg)
	for _, name := range workloads.HighMediumNames() {
		a, err := s.App(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.RunBaseAPSpAP(0.01, cfg.Capacity)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(len(a.TestInput()))
		if res.BaseAPCycles != int64(res.BaseAPBatches)*n {
			t.Errorf("%s: BaseAP cycles %d != batches %d × n %d", name, res.BaseAPCycles, res.BaseAPBatches, n)
		}
		if res.TotalCycles != res.BaseAPCycles+res.SpAPCycles {
			t.Errorf("%s: total cycles inconsistent", name)
		}
		if res.SpAPCycles != res.SpAPProcessed+res.EnableStalls {
			t.Errorf("%s: SpAP cycles %d != processed %d + stalls %d",
				name, res.SpAPCycles, res.SpAPProcessed, res.EnableStalls)
		}
		if res.SpAPExecutions > res.ColdBatches {
			t.Errorf("%s: executions %d > cold batches %d", name, res.SpAPExecutions, res.ColdBatches)
		}
	}
}
