// Package exp implements the paper's evaluation (Section VI-VII): one
// driver per table and figure, sharing a Suite that caches the expensive
// per-application artifacts (generated networks, topological analyses,
// oracle hot sets, partitions, and executions).
//
// The experimental protocol follows Section IV-A: each application's input
// is split into two halves; profiling inputs are prefixes of the first half
// sized as a fraction of the *entire* input (0.1%, 1%, 10%, 50%), and the
// second half is the testing input — except for the start-of-data
// applications (Fermi, SPM), which use the entire input for the actual
// evaluation, as the paper's footnote prescribes.
package exp

import (
	"fmt"
	"sync"

	"sparseap/internal/ap"
	"sparseap/internal/bitvec"
	"sparseap/internal/graph"
	"sparseap/internal/hotcold"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
	"sparseap/internal/workloads"
)

// ProfileFractions are the profiling input sizes of Table I, as fractions
// of the entire input.
var ProfileFractions = []float64{0.001, 0.01, 0.1, 0.5}

// EvalFractions are the two profiling sizes the execution experiments use.
var EvalFractions = []float64{0.001, 0.01}

// Suite shares generated applications and derived artifacts across
// experiments.
type Suite struct {
	WL  workloads.Config
	AP  ap.Config
	CPU spap.CPUModel

	mu   sync.Mutex
	apps map[string]*AppData
}

// NewSuite creates a suite with the given workload scaling and AP
// configuration.
func NewSuite(wl workloads.Config, apCfg ap.Config) *Suite {
	return &Suite{
		WL:   wl,
		AP:   apCfg,
		CPU:  spap.DefaultCPUModel(),
		apps: make(map[string]*AppData),
	}
}

// App returns (building and caching on first use) the data for one
// application.
func (s *Suite) App(abbr string) (*AppData, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.apps[abbr]; ok {
		return a, nil
	}
	app, err := workloads.Build(abbr, s.WL)
	if err != nil {
		return nil, err
	}
	a := &AppData{
		App:   app,
		suite: s,
		parts: make(map[partKey]*hotcold.Partition),
		execs: make(map[execKey]*spap.Result),
		bases: make(map[int]int),
	}
	s.apps[abbr] = a
	return a, nil
}

// Apps resolves a list of abbreviations.
func (s *Suite) Apps(abbrs []string) ([]*AppData, error) {
	out := make([]*AppData, 0, len(abbrs))
	for _, n := range abbrs {
		a, err := s.App(n)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

type partKey struct {
	frac     float64
	capacity int
}

type execKey struct {
	frac     float64
	capacity int
	cpu      bool
}

// AppData caches one application's derived artifacts. Its lazy caches are
// not synchronized: drive a given application from one goroutine at a time
// (Suite.App itself is safe for concurrent use).
type AppData struct {
	App   *workloads.App
	suite *Suite

	topo    *graph.Topo
	fullHot *bitvec.Vec
	testHot *bitvec.Vec
	parts   map[partKey]*hotcold.Partition
	execs   map[execKey]*spap.Result
	bases   map[int]int // capacity -> baseline batch count
}

// Abbr returns the application abbreviation.
func (a *AppData) Abbr() string { return a.App.Abbr }

// Topo returns the topological analysis of the network.
func (a *AppData) Topo() *graph.Topo {
	if a.topo == nil {
		a.topo = graph.TopoOrder(a.App.Net)
	}
	return a.topo
}

// FullHot returns the hot set under the entire input (Figures 1, 5, 8).
func (a *AppData) FullHot() *bitvec.Vec {
	if a.fullHot == nil {
		a.fullHot = sim.HotStates(a.App.Net, a.App.Input)
	}
	return a.fullHot
}

// TestInput returns the actual-evaluation input: the second half, or the
// entire input for start-of-data applications.
func (a *AppData) TestInput() []byte {
	if a.App.StartOfData {
		return a.App.Input
	}
	return a.App.Input[len(a.App.Input)/2:]
}

// TestHot returns the hot set under the testing input (Table I ground
// truth).
func (a *AppData) TestHot() *bitvec.Vec {
	if a.testHot == nil {
		a.testHot = sim.HotStates(a.App.Net, a.TestInput())
	}
	return a.testHot
}

// ProfileInput returns the profiling prefix sized as frac of the entire
// input, drawn from the first half.
func (a *AppData) ProfileInput(frac float64) []byte {
	n := int(frac * float64(len(a.App.Input)))
	if n < 1 {
		n = 1
	}
	if half := len(a.App.Input) / 2; n > half && !a.App.StartOfData {
		n = half
	}
	return a.App.Input[:n]
}

// Partition returns the partition built from the given profiling fraction
// with the batch-filling optimization at the given capacity.
func (a *AppData) Partition(frac float64, capacity int) (*hotcold.Partition, error) {
	key := partKey{frac: frac, capacity: capacity}
	if p, ok := a.parts[key]; ok {
		return p, nil
	}
	p, err := hotcold.BuildFromProfile(a.App.Net, a.ProfileInput(frac), hotcold.Options{Capacity: capacity})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Abbr(), err)
	}
	a.parts[key] = p
	return p, nil
}

// BaselineBatches returns the baseline batch count at the given capacity.
func (a *AppData) BaselineBatches(capacity int) (int, error) {
	if b, ok := a.bases[capacity]; ok {
		return b, nil
	}
	batches, err := ap.PartitionNFAs(a.App.Net, capacity)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", a.Abbr(), err)
	}
	a.bases[capacity] = len(batches)
	return len(batches), nil
}

// BaselineCycles returns the baseline cycle count over the testing input.
func (a *AppData) BaselineCycles(capacity int) (int64, error) {
	b, err := a.BaselineBatches(capacity)
	if err != nil {
		return 0, err
	}
	return int64(b) * int64(len(a.TestInput())), nil
}

// RunBaseAPSpAP executes the BaseAP/SpAP system at the given profiling
// fraction and capacity over the testing input.
func (a *AppData) RunBaseAPSpAP(frac float64, capacity int) (*spap.Result, error) {
	key := execKey{frac: frac, capacity: capacity}
	if r, ok := a.execs[key]; ok {
		return r, nil
	}
	p, err := a.Partition(frac, capacity)
	if err != nil {
		return nil, err
	}
	res, err := spap.RunBaseAPSpAP(p, a.TestInput(), a.suite.AP.WithCapacity(capacity), spap.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Abbr(), err)
	}
	a.execs[key] = res
	return res, nil
}

// RunAPCPU executes the AP-CPU system at the given profiling fraction and
// capacity over the testing input.
func (a *AppData) RunAPCPU(frac float64, capacity int) (*spap.Result, error) {
	key := execKey{frac: frac, capacity: capacity, cpu: true}
	if r, ok := a.execs[key]; ok {
		return r, nil
	}
	p, err := a.Partition(frac, capacity)
	if err != nil {
		return nil, err
	}
	res, err := spap.RunAPCPU(p, a.TestInput(), a.suite.AP.WithCapacity(capacity), a.suite.CPU, spap.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Abbr(), err)
	}
	a.execs[key] = res
	return res, nil
}

// SpeedupBaseAPSpAP returns baselineCycles / (BaseAP+SpAP cycles).
func (a *AppData) SpeedupBaseAPSpAP(frac float64, capacity int) (float64, error) {
	base, err := a.BaselineCycles(capacity)
	if err != nil {
		return 0, err
	}
	res, err := a.RunBaseAPSpAP(frac, capacity)
	if err != nil {
		return 0, err
	}
	return float64(base) / float64(res.TotalCycles), nil
}

// SpeedupAPCPU returns baselineTime / AP-CPU time.
func (a *AppData) SpeedupAPCPU(frac float64, capacity int) (float64, error) {
	base, err := a.BaselineCycles(capacity)
	if err != nil {
		return 0, err
	}
	res, err := a.RunAPCPU(frac, capacity)
	if err != nil {
		return 0, err
	}
	baseNS := float64(base) * a.suite.AP.CycleNS
	return baseNS / res.TimeNS, nil
}
