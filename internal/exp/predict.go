package exp

import (
	"fmt"
	"hash/fnv"

	"sparseap/internal/bitvec"
	"sparseap/internal/hotcold"
	"sparseap/internal/metrics"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
	"sparseap/internal/workloads"
)

// PredictRow compares the profile-free static hotness partitioning
// against the paper's profiled scheme, the behaviour-blind baselines and
// the oracle bound for one application (BaseAP/SpAP speedups over the
// baseline AP).
type PredictRow struct {
	Abbr string
	// Speedups per strategy.
	Static    float64
	Profiled  float64
	Fixed     float64
	NormDepth float64
	Oracle    float64
	// PredHotFrac is the static analysis's predicted hot fraction;
	// ProfHotFrac the 1%-profiled one — how far apart the two pictures
	// of the application are.
	PredHotFrac float64
	ProfHotFrac float64
	// WithinProfiled reports Static ≥ (1 - PredictTolerance) × Profiled.
	WithinProfiled bool
	// ReportsIdentical reports that every strategy's execution produced
	// the same final report multiset (partitioning never changes
	// semantics).
	ReportsIdentical bool
}

// PredictTolerance is the per-application acceptance band: the static
// strategy counts as matching the profiled one when its speedup is within
// 10% of it.
const PredictTolerance = 0.10

// PredictResult is the profile-free prediction study: can a purely static
// analysis of the automata replace the paper's 1% profiling run?
type PredictResult struct {
	Capacity   int
	FixedParam float64
	DepthParam float64
	Rows       []PredictRow
	// Geomeans over the row set.
	GeoStatic, GeoProfiled, GeoFixed, GeoNormDepth, GeoOracle float64
	// WithinProfiled counts rows whose static speedup is within
	// PredictTolerance of the profiled one.
	WithinProfiled int
	// ReportsIdentical is the conjunction over all rows.
	ReportsIdentical bool
}

// reportDigest returns an order-independent digest of a report multiset:
// the sum of per-report FNV hashes. Strategies emit reports in different
// orders (SpAP batches replay per partition), so the digest must be
// commutative; summing 64-bit hashes keeps collisions negligible for the
// comparison "five executions of the same network agree".
func reportDigest(res *spap.Result) uint64 {
	var sum uint64
	var buf [12]byte
	for _, r := range res.Reports {
		buf[0] = byte(r.Pos)
		buf[1] = byte(r.Pos >> 8)
		buf[2] = byte(r.Pos >> 16)
		buf[3] = byte(r.Pos >> 24)
		buf[4] = byte(r.Pos >> 32)
		buf[5] = byte(r.Pos >> 40)
		buf[6] = byte(r.Pos >> 48)
		buf[7] = byte(r.Pos >> 56)
		buf[8] = byte(r.State)
		buf[9] = byte(r.State >> 8)
		buf[10] = byte(r.State >> 16)
		buf[11] = byte(r.State >> 24)
		h := fnv.New64a()
		h.Write(buf[:])
		sum += h.Sum64()
	}
	// Fold in the count so an empty multiset and a hash-cancelling pair
	// (astronomically unlikely, but free to exclude) differ.
	return sum ^ uint64(len(res.Reports))<<1
}

// Predict runs the five partition strategies over the given applications
// (nil = the whole 26-application suite). The fixed cut uses 4 layers and
// the normalized-depth cut 0.3, matching the ablation study; profiled
// uses the paper's 1% prefix.
func Predict(s *Suite, names []string) (*PredictResult, error) {
	if names == nil {
		names = allNames()
	}
	apps, err := s.Apps(names)
	if err != nil {
		return nil, err
	}
	res := &PredictResult{
		Capacity:         s.AP.Capacity,
		FixedParam:       4,
		DepthParam:       0.3,
		ReportsIdentical: true,
	}
	var gs, gp, gf, gn, go_ []float64
	for _, a := range apps {
		base, err := a.BaselineCycles(s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		row := PredictRow{Abbr: a.Abbr(), ReportsIdentical: true}

		run := func(st hotcold.Strategy, in hotcold.StrategyInput) (float64, *spap.Result, error) {
			p, err := hotcold.BuildWithStrategy(a.App.Net, st, in, hotcold.Options{Capacity: s.AP.Capacity})
			if err != nil {
				return 0, nil, fmt.Errorf("%s/%v: %w", a.Abbr(), st, err)
			}
			r, err := spap.RunBaseAPSpAP(p, a.TestInput(), s.AP, spap.Options{CollectReports: true})
			if err != nil {
				return 0, nil, fmt.Errorf("%s/%v: %w", a.Abbr(), st, err)
			}
			if st == hotcold.StrategyStatic {
				row.PredHotFrac = float64(p.PredHot.Count()) / float64(a.App.Net.Len())
			}
			return float64(base) / float64(r.TotalCycles), r, nil
		}

		var digests []uint64
		collect := func(sp *float64, st hotcold.Strategy, in hotcold.StrategyInput) error {
			v, r, err := run(st, in)
			if err != nil {
				return err
			}
			*sp = v
			digests = append(digests, reportDigest(r))
			return nil
		}
		if err := collect(&row.Static, hotcold.StrategyStatic, hotcold.StrategyInput{}); err != nil {
			return nil, err
		}
		if err := collect(&row.Profiled, hotcold.StrategyProfiled,
			hotcold.StrategyInput{ProfiledHot: profiledHot(a, 0.01)}); err != nil {
			return nil, err
		}
		if err := collect(&row.Fixed, hotcold.StrategyFixedLayers,
			hotcold.StrategyInput{Param: res.FixedParam}); err != nil {
			return nil, err
		}
		if err := collect(&row.NormDepth, hotcold.StrategyNormalizedDepth,
			hotcold.StrategyInput{Param: res.DepthParam}); err != nil {
			return nil, err
		}
		if err := collect(&row.Oracle, hotcold.StrategyOracle,
			hotcold.StrategyInput{OracleHot: a.TestHot()}); err != nil {
			return nil, err
		}
		prof := profiledHot(a, 0.01)
		row.ProfHotFrac = float64(prof.Count()) / float64(a.App.Net.Len())
		for _, d := range digests[1:] {
			if d != digests[0] {
				row.ReportsIdentical = false
				res.ReportsIdentical = false
			}
		}
		row.WithinProfiled = row.Static >= (1-PredictTolerance)*row.Profiled
		if row.WithinProfiled {
			res.WithinProfiled++
		}
		res.Rows = append(res.Rows, row)
		gs = append(gs, row.Static)
		gp = append(gp, row.Profiled)
		gf = append(gf, row.Fixed)
		gn = append(gn, row.NormDepth)
		go_ = append(go_, row.Oracle)
	}
	res.GeoStatic = metrics.GeoMean(gs)
	res.GeoProfiled = metrics.GeoMean(gp)
	res.GeoFixed = metrics.GeoMean(gf)
	res.GeoNormDepth = metrics.GeoMean(gn)
	res.GeoOracle = metrics.GeoMean(go_)
	return res, nil
}

// profiledHot returns the hot set a profiling prefix enables.
func profiledHot(a *AppData, frac float64) *bitvec.Vec {
	return sim.HotStates(a.App.Net, a.ProfileInput(frac))
}

// allNames returns the full Table II application list.
func allNames() []string { return workloads.Names() }

// Render formats the prediction study table.
func (r *PredictResult) Render() string {
	t := metrics.NewTable("App", "Static", "Profiled 1%", fmt.Sprintf("Fixed k=%.0f", r.FixedParam),
		fmt.Sprintf("Depth %.1f", r.DepthParam), "Oracle", "±10% prof")
	for _, row := range r.Rows {
		mark := ""
		if row.WithinProfiled {
			mark = "yes"
		}
		t.AddRowf(row.Abbr, row.Static, row.Profiled, row.Fixed, row.NormDepth, row.Oracle, mark)
	}
	t.AddRowf("geomean", r.GeoStatic, r.GeoProfiled, r.GeoFixed, r.GeoNormDepth, r.GeoOracle,
		fmt.Sprintf("%d/%d", r.WithinProfiled, len(r.Rows)))
	id := "identical"
	if !r.ReportsIdentical {
		id = "DIVERGED"
	}
	return fmt.Sprintf("Prediction: static vs profiled partitioning, BaseAP/SpAP speedup (capacity %d; report streams %s)\n%s",
		r.Capacity, id, t)
}
