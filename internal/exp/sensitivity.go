package exp

import (
	"fmt"
	"sort"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/hotcold"
	"sparseap/internal/metrics"
	"sparseap/internal/spap"
)

// Sensitivity studies beyond the paper's evaluation: the enable-port width
// (the hardware choice behind PEN's stalls), board-level rank parallelism,
// and the multi-stream replication that motivates large-scale automata in
// the first place.

// PortsRow is one (application, port width) speedup measurement.
type PortsRow struct {
	Abbr    string
	Ports   int
	Stalls  int64
	Speedup float64
}

// PortsResult sweeps the SpAP enable-port width on the stall-dominated
// applications. The paper's design has one port; widening it converts
// PEN's slowdown back into a win, quantifying the cost of that choice.
type PortsResult struct {
	Rows []PortsRow
}

// PortsStudy measures stall-bound applications at 1, 2, 4 and 8 ports.
func PortsStudy(s *Suite, apps []string) (*PortsResult, error) {
	res := &PortsResult{}
	for _, name := range apps {
		a, err := s.App(name)
		if err != nil {
			return nil, err
		}
		base, err := a.BaselineCycles(s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		p, err := a.Partition(0.01, s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		for _, ports := range []int{1, 2, 4, 8} {
			cfg := s.AP.WithCapacity(s.AP.Capacity)
			cfg.EnablePorts = ports
			run, err := spap.RunBaseAPSpAP(p, a.TestInput(), cfg, spap.Options{})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, PortsRow{
				Abbr:    a.Abbr(),
				Ports:   ports,
				Stalls:  run.EnableStalls,
				Speedup: float64(base) / float64(run.TotalCycles),
			})
		}
	}
	return res, nil
}

// Render formats the port sweep.
func (r *PortsResult) Render() string {
	t := metrics.NewTable("App", "Ports", "#EStalls", "Speedup")
	for _, row := range r.Rows {
		t.AddRowf(row.Abbr, row.Ports, row.Stalls, row.Speedup)
	}
	return "Sensitivity: SpAP enable-port width (1% profiling)\n" + t.String()
}

// BoardRow is one (application, half-core count) measurement.
type BoardRow struct {
	Abbr      string
	HalfCores int
	Baseline  float64 // board-level baseline rounds
	SpAP      float64 // board-level BaseAP/SpAP rounds-equivalent
	Speedup   float64
}

// BoardResult sweeps rank-level parallelism: batches execute HalfCores at
// a time on both systems; the partitioning benefit persists because it
// reduces the number of batches each rank must cycle through.
type BoardResult struct {
	Rows []BoardRow
}

// BoardStudy measures board widths 1, 2 and 4 half-cores.
func BoardStudy(s *Suite, apps []string) (*BoardResult, error) {
	res := &BoardResult{}
	for _, name := range apps {
		a, err := s.App(name)
		if err != nil {
			return nil, err
		}
		baseBatches, err := a.BaselineBatches(s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		run, err := a.RunBaseAPSpAP(0.01, s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		n := int64(len(a.TestInput()))
		for _, hc := range []int{1, 2, 4} {
			board := ap.Board{HalfCore: s.AP, HalfCores: hc}
			baseCycles := int64(board.Rounds(baseBatches)) * n
			spapCycles := boardScheduleCycles(run, n, hc)
			res.Rows = append(res.Rows, BoardRow{
				Abbr:      a.Abbr(),
				HalfCores: hc,
				Baseline:  float64(baseCycles) / float64(n),
				SpAP:      float64(spapCycles) / float64(n),
				Speedup:   float64(baseCycles) / float64(spapCycles),
			})
		}
	}
	return res, nil
}

// boardScheduleCycles schedules BaseAP batches (each n cycles) and the
// measured SpAP batch cycle counts onto hc half-cores: BaseAP rounds run
// first (all batches see the same stream), then SpAP batches run hc at a
// time, each round costing its longest member.
func boardScheduleCycles(run *spap.Result, n int64, hc int) int64 {
	rounds := (run.BaseAPBatches + hc - 1) / hc
	total := int64(rounds) * n
	batch := append([]int64(nil), run.SpAPBatchCycles...)
	sort.Slice(batch, func(a, b int) bool { return batch[a] > batch[b] })
	for i := 0; i < len(batch); i += hc {
		total += batch[i] // longest of each round
	}
	return total
}

// Render formats the board sweep.
func (r *BoardResult) Render() string {
	t := metrics.NewTable("App", "HalfCores", "Baseline rounds", "SpAP rounds-equiv", "Speedup")
	for _, row := range r.Rows {
		t.AddRowf(row.Abbr, row.HalfCores, row.Baseline, row.SpAP, row.Speedup)
	}
	return "Sensitivity: board-level half-core count (1% profiling)\n" + t.String()
}

// StreamRow is one (application, replication factor) measurement.
type StreamRow struct {
	Abbr     string
	Streams  int
	States   int
	Baseline int // baseline batches
	BaseAP   int // BaseAP-mode batches
	Speedup  float64
}

// StreamResult reproduces the paper's motivation experiment: duplicating
// an application's NFAs for multi-stream processing multiplies its
// footprint, and the partitioning win grows with the replication factor.
type StreamResult struct {
	Rows []StreamRow
}

// StreamStudy replicates each application 1×, 2× and 4×.
func StreamStudy(s *Suite, apps []string) (*StreamResult, error) {
	res := &StreamResult{}
	for _, name := range apps {
		a, err := s.App(name)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{1, 2, 4} {
			net := automata.Replicate(a.App.Net, k)
			input := a.TestInput()
			batches, baseCycles, err := ap.BaselineCycles(net, len(input), s.AP.Capacity)
			if err != nil {
				return nil, err
			}
			p, err := hotcold.BuildFromProfile(net, a.ProfileInput(0.01), hotcold.Options{Capacity: s.AP.Capacity})
			if err != nil {
				return nil, err
			}
			run, err := spap.RunBaseAPSpAP(p, input, s.AP, spap.Options{})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, StreamRow{
				Abbr:     a.Abbr(),
				Streams:  k,
				States:   net.Len(),
				Baseline: batches,
				BaseAP:   run.BaseAPBatches,
				Speedup:  float64(baseCycles) / float64(run.TotalCycles),
			})
		}
	}
	return res, nil
}

// Render formats the replication sweep.
func (r *StreamResult) Render() string {
	t := metrics.NewTable("App", "Streams", "#States", "Baseline batches", "BaseAP batches", "Speedup")
	for _, row := range r.Rows {
		t.AddRowf(row.Abbr, row.Streams, row.States, row.Baseline, row.BaseAP, row.Speedup)
	}
	return "Sensitivity: multi-stream NFA replication (1% profiling)\n" + t.String()
}

// Sensitivity bundles the three studies for the apbench CLI.
type SensitivityResult struct {
	Ports   *PortsResult
	Boards  *BoardResult
	Streams *StreamResult
}

// Sensitivity runs the port sweep on the stall-dominated applications, and
// the board/stream sweeps on a representative cross-section.
func Sensitivity(s *Suite) (*SensitivityResult, error) {
	ports, err := PortsStudy(s, []string{"PEN", "Snort_L", "Brill"})
	if err != nil {
		return nil, err
	}
	boards, err := BoardStudy(s, []string{"CAV4k", "HM1500", "Snort_L", "PEN"})
	if err != nil {
		return nil, err
	}
	streams, err := StreamStudy(s, []string{"Snort", "CAV", "Brill"})
	if err != nil {
		return nil, err
	}
	return &SensitivityResult{Ports: ports, Boards: boards, Streams: streams}, nil
}

// Render concatenates the three studies.
func (r *SensitivityResult) Render() string {
	return fmt.Sprintf("%s\n%s\n%s", r.Ports.Render(), r.Boards.Render(), r.Streams.Render())
}
