package exp

import (
	"strings"
	"testing"
)

func TestPredictSmallSuite(t *testing.T) {
	s := testSuite()
	names := []string{"PEN", "Snort", "HM", "Brill"}
	r, err := Predict(s, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(names) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(names))
	}
	if !r.ReportsIdentical {
		t.Fatal("report streams diverged across strategies — partitioning changed semantics")
	}
	for _, row := range r.Rows {
		for name, v := range map[string]float64{
			"static": row.Static, "profiled": row.Profiled, "fixed": row.Fixed,
			"normdepth": row.NormDepth, "oracle": row.Oracle,
		} {
			if v <= 0 {
				t.Errorf("%s: %s speedup = %v, want > 0", row.Abbr, name, v)
			}
		}
		if row.PredHotFrac < 0 || row.PredHotFrac > 1 {
			t.Errorf("%s: PredHotFrac = %v", row.Abbr, row.PredHotFrac)
		}
		if row.ProfHotFrac < 0 || row.ProfHotFrac > 1 {
			t.Errorf("%s: ProfHotFrac = %v", row.Abbr, row.ProfHotFrac)
		}
	}
	if r.GeoStatic <= 0 || r.GeoProfiled <= 0 {
		t.Fatalf("geomeans: static %v profiled %v", r.GeoStatic, r.GeoProfiled)
	}
	if r.WithinProfiled < 0 || r.WithinProfiled > len(r.Rows) {
		t.Fatalf("WithinProfiled = %d", r.WithinProfiled)
	}
	out := r.Render()
	if !strings.Contains(out, "Prediction") || !strings.Contains(out, "geomean") {
		t.Fatal("render missing title or geomean row")
	}
	if !strings.Contains(out, "report streams identical") {
		t.Fatal("render should state the report streams were identical")
	}
}
