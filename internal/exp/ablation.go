package exp

import (
	"fmt"

	"sparseap/internal/hotcold"
	"sparseap/internal/metrics"
	"sparseap/internal/spap"
	"sparseap/internal/workloads"
)

// AblationRow compares the paper's profiled partitioning against the
// behaviour-blind baselines and the oracle upper bound for one application
// (BaseAP/SpAP speedups over the baseline AP).
type AblationRow struct {
	Abbr      string
	Profiled  float64 // paper scheme, 1% profiling
	Fixed     float64 // same absolute layer for every NFA
	NormDepth float64 // same normalized depth for every NFA
	Oracle    float64 // layers chosen with test-input knowledge
}

// AblationResult is the partition-strategy ablation study: it isolates how
// much of the speedup comes from the profiling information versus the
// topological cut mechanism itself.
type AblationResult struct {
	Capacity   int
	FixedParam float64
	DepthParam float64
	Rows       []AblationRow
	// Geomeans over the row set.
	GeoProfiled, GeoFixed, GeoNormDepth, GeoOracle float64
}

// Ablation runs the four strategies on the high+medium applications. The
// fixed cut uses 4 layers; the normalized-depth cut uses 0.3 (the paper's
// "shallow" boundary).
func Ablation(s *Suite) (*AblationResult, error) {
	apps, err := s.Apps(workloads.HighMediumNames())
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Capacity: s.AP.Capacity, FixedParam: 4, DepthParam: 0.3}
	var g1, g2, g3, g4 []float64
	for _, a := range apps {
		base, err := a.BaselineCycles(s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		row := AblationRow{Abbr: a.Abbr()}
		if row.Profiled, err = a.SpeedupBaseAPSpAP(0.01, s.AP.Capacity); err != nil {
			return nil, err
		}
		run := func(st hotcold.Strategy, in hotcold.StrategyInput) (float64, error) {
			p, err := hotcold.BuildWithStrategy(a.App.Net, st, in, hotcold.Options{Capacity: s.AP.Capacity})
			if err != nil {
				return 0, fmt.Errorf("%s/%v: %w", a.Abbr(), st, err)
			}
			r, err := spap.RunBaseAPSpAP(p, a.TestInput(), s.AP, spap.Options{})
			if err != nil {
				return 0, fmt.Errorf("%s/%v: %w", a.Abbr(), st, err)
			}
			return float64(base) / float64(r.TotalCycles), nil
		}
		if row.Fixed, err = run(hotcold.StrategyFixedLayers, hotcold.StrategyInput{Param: res.FixedParam}); err != nil {
			return nil, err
		}
		if row.NormDepth, err = run(hotcold.StrategyNormalizedDepth, hotcold.StrategyInput{Param: res.DepthParam}); err != nil {
			return nil, err
		}
		if row.Oracle, err = run(hotcold.StrategyOracle, hotcold.StrategyInput{OracleHot: a.TestHot()}); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		g1 = append(g1, row.Profiled)
		g2 = append(g2, row.Fixed)
		g3 = append(g3, row.NormDepth)
		g4 = append(g4, row.Oracle)
	}
	res.GeoProfiled = metrics.GeoMean(g1)
	res.GeoFixed = metrics.GeoMean(g2)
	res.GeoNormDepth = metrics.GeoMean(g3)
	res.GeoOracle = metrics.GeoMean(g4)
	return res, nil
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	t := metrics.NewTable("App", "Profiled 1%", fmt.Sprintf("Fixed k=%.0f", r.FixedParam),
		fmt.Sprintf("Depth %.1f", r.DepthParam), "Oracle")
	for _, row := range r.Rows {
		t.AddRowf(row.Abbr, row.Profiled, row.Fixed, row.NormDepth, row.Oracle)
	}
	t.AddRowf("geomean", r.GeoProfiled, r.GeoFixed, r.GeoNormDepth, r.GeoOracle)
	return fmt.Sprintf("Ablation: partition strategies, BaseAP/SpAP speedup (capacity %d)\n%s", r.Capacity, t)
}
