package exp

import (
	"fmt"
	"sort"
	"strings"

	"sparseap/internal/automata"
	"sparseap/internal/graph"
	"sparseap/internal/hotcold"
	"sparseap/internal/metrics"
	"sparseap/internal/workloads"
)

// Fig1Row is one bar of Figure 1: the hot/cold split of an application.
type Fig1Row struct {
	Abbr    string
	Hot     int
	Cold    int
	HotFrac float64
}

// Fig1Result reproduces Figure 1: percentage of hot vs cold states per
// application, sorted ascending by hot fraction.
type Fig1Result struct {
	Rows        []Fig1Row
	AvgColdFrac float64
}

// Fig1 measures hot/cold state fractions across all 26 applications.
func Fig1(s *Suite) (*Fig1Result, error) {
	apps, err := s.Apps(workloads.Names())
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{}
	sumCold := 0.0
	for _, a := range apps {
		hot := a.FullHot().Count()
		total := a.App.Net.Len()
		row := Fig1Row{
			Abbr:    a.Abbr(),
			Hot:     hot,
			Cold:    total - hot,
			HotFrac: float64(hot) / float64(total),
		}
		sumCold += 1 - row.HotFrac
		res.Rows = append(res.Rows, row)
	}
	res.AvgColdFrac = sumCold / float64(len(res.Rows))
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].HotFrac < res.Rows[j].HotFrac })
	return res, nil
}

// Render formats the figure as a text table.
func (r *Fig1Result) Render() string {
	t := metrics.NewTable("App", "Hot%", "Cold%", "#Hot", "#Cold")
	for _, row := range r.Rows {
		t.AddRow(row.Abbr, metrics.Pct(row.HotFrac), metrics.Pct(1-row.HotFrac),
			fmt.Sprint(row.Hot), fmt.Sprint(row.Cold))
	}
	return fmt.Sprintf("Figure 1: hot vs cold states (avg cold %.0f%%)\n%s",
		100*r.AvgColdFrac, t)
}

// Fig5Row is one application's normalized-depth distribution for either
// hot or cold states, bucketed per Figure 5.
type Fig5Row struct {
	Abbr                  string
	Shallow, Medium, Deep float64 // fractions summing to 1 (or 0 if empty)
}

// Fig5Result reproduces Figure 5(a)/(b) plus the depth/hotness correlation
// the paper reports in Section III-B.
type Fig5Result struct {
	Hot            []Fig5Row
	Cold           []Fig5Row
	AvgCorrelation float64 // avg Pearson r of (depth bucket hotness) per app
}

// Fig5 computes the normalized-depth distributions of hot and cold states.
func Fig5(s *Suite) (*Fig5Result, error) {
	apps, err := s.Apps(workloads.Names())
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	var corrs []float64
	for _, a := range apps {
		topo := a.Topo()
		hot := a.FullHot()
		var hotN, coldN [3]int
		// Per-depth-decile hot fraction for the correlation statistic.
		var binHot, binTotal [10]int
		for st := 0; st < a.App.Net.Len(); st++ {
			d := topo.NormalizedDepth(a.App.Net, automata.StateID(st))
			b := graph.Bucket(d)
			bin := int(d * 10)
			if bin > 9 {
				bin = 9
			}
			binTotal[bin]++
			if hot.Get(st) {
				hotN[b]++
				binHot[bin]++
			} else {
				coldN[b]++
			}
		}
		res.Hot = append(res.Hot, bucketRow(a.Abbr(), hotN))
		res.Cold = append(res.Cold, bucketRow(a.Abbr(), coldN))
		var xs, ys []float64
		for i := 0; i < 10; i++ {
			if binTotal[i] == 0 {
				continue
			}
			xs = append(xs, float64(i)/10)
			ys = append(ys, float64(binHot[i])/float64(binTotal[i]))
		}
		if c := metrics.Correlation(xs, ys); c == c { // skip NaN
			corrs = append(corrs, c)
		}
	}
	res.AvgCorrelation = metrics.Mean(corrs)
	return res, nil
}

func bucketRow(abbr string, n [3]int) Fig5Row {
	total := n[0] + n[1] + n[2]
	if total == 0 {
		return Fig5Row{Abbr: abbr}
	}
	return Fig5Row{
		Abbr:    abbr,
		Shallow: float64(n[0]) / float64(total),
		Medium:  float64(n[1]) / float64(total),
		Deep:    float64(n[2]) / float64(total),
	}
}

// Render formats both panels.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5(a): normalized depth distribution of HOT states\n")
	b.WriteString(renderFig5Rows(r.Hot))
	b.WriteString("\nFigure 5(b): normalized depth distribution of COLD states\n")
	b.WriteString(renderFig5Rows(r.Cold))
	fmt.Fprintf(&b, "\nAvg depth-vs-hotness correlation: %.2f (paper: -0.82)\n", r.AvgCorrelation)
	return b.String()
}

func renderFig5Rows(rows []Fig5Row) string {
	t := metrics.NewTable("App", "shallow[0,.3)", "medium[.3,.6)", "deep[.6,1]")
	for _, row := range rows {
		t.AddRow(row.Abbr, metrics.Pct(row.Shallow), metrics.Pct(row.Medium), metrics.Pct(row.Deep))
	}
	return t.String()
}

// Table1Row is one column of Table I (one profiling-input size).
type Table1Row struct {
	Fraction  float64
	Accuracy  float64
	Recall    float64
	Precision float64
	// MinRecall/MaxRecall give the cross-application recall range the
	// paper quotes (49%-100% at 1%).
	MinRecall, MaxRecall float64
}

// Table1Result reproduces Table I: profiling effectiveness at four sizes,
// averaged over 24 applications (Fermi and SPM excluded, as in the paper).
type Table1Result struct {
	Rows []Table1Row
}

// Table1 evaluates profiling-based prediction quality.
func Table1(s *Suite) (*Table1Result, error) {
	var names []string
	for _, n := range workloads.Names() {
		if n == "Fermi" || n == "SPM" {
			continue
		}
		names = append(names, n)
	}
	apps, err := s.Apps(names)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{}
	for _, frac := range ProfileFractions {
		row := Table1Row{Fraction: frac, MinRecall: 1}
		var acc, rec, prec []float64
		for _, a := range apps {
			pred := hotcold.Profile(a.App.Net, a.ProfileInput(frac))
			c := hotcold.Quality(pred, a.TestHot())
			acc = append(acc, c.Accuracy())
			r := c.Recall()
			rec = append(rec, r)
			prec = append(prec, c.Precision())
			if r < row.MinRecall {
				row.MinRecall = r
			}
			if r > row.MaxRecall {
				row.MaxRecall = r
			}
		}
		row.Accuracy = metrics.Mean(acc)
		row.Recall = metrics.Mean(rec)
		row.Precision = metrics.Mean(prec)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Table I.
func (r *Table1Result) Render() string {
	t := metrics.NewTable("Input%", "Accuracy", "Recall", "Precision", "Recall range")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%.1f%%", 100*row.Fraction),
			metrics.Pct(row.Accuracy), metrics.Pct(row.Recall), metrics.Pct(row.Precision),
			fmt.Sprintf("%s-%s", metrics.Pct(row.MinRecall), metrics.Pct(row.MaxRecall)),
		)
	}
	return "Table I: effectiveness of profile-based prediction\n" + t.String()
}

// Fig8Row is one application's constrained-state fraction.
type Fig8Row struct {
	Abbr        string
	Constrained float64
}

// Fig8Result reproduces Figure 8: the extra states a perfect
// topological-order partition configures versus an arbitrary-edge perfect
// partition.
type Fig8Result struct {
	Rows []Fig8Row
	Avg  float64
}

// Fig8 computes constrained-state fractions with oracle hot sets.
func Fig8(s *Suite) (*Fig8Result, error) {
	apps, err := s.Apps(workloads.Names())
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	var vals []float64
	for _, a := range apps {
		c := hotcold.ConstrainedStates(a.App.Net, a.Topo(), a.FullHot())
		res.Rows = append(res.Rows, Fig8Row{Abbr: a.Abbr(), Constrained: c})
		vals = append(vals, c)
	}
	res.Avg = metrics.Mean(vals)
	return res, nil
}

// Render formats Figure 8.
func (r *Fig8Result) Render() string {
	t := metrics.NewTable("App", "Constrained%")
	for _, row := range r.Rows {
		t.AddRow(row.Abbr, metrics.Pct(row.Constrained))
	}
	return fmt.Sprintf("Figure 8: constrained states under perfect topological partitioning (avg %s, paper: 4%%)\n%s",
		metrics.Pct(r.Avg), t)
}
