package exp

import (
	"fmt"
	"math"
	"strings"

	"sparseap/internal/ap"
	"sparseap/internal/metrics"
	"sparseap/internal/workloads"
)

// Fig10Row carries one application's speedups under both systems and both
// profiling sizes, plus the Figure 10(b) resource savings.
type Fig10Row struct {
	Abbr     string
	APCPU01  float64 // AP-CPU speedup, 0.1% profiling
	APCPU1   float64 // AP-CPU speedup, 1% profiling
	SpAP01   float64 // BaseAP/SpAP speedup, 0.1% profiling
	SpAP1    float64 // BaseAP/SpAP speedup, 1% profiling
	Saving01 float64 // resource saving, 0.1% profiling
	Saving1  float64 // resource saving, 1% profiling
}

// Fig10Result reproduces Figures 10(a) and 10(b) over the high and medium
// groups at the half-core capacity.
type Fig10Result struct {
	Capacity int
	Rows     []Fig10Row
	// Geomeans across the row set.
	GeoAPCPU01, GeoAPCPU1, GeoSpAP01, GeoSpAP1 float64
}

// Fig10 runs both systems on the high+medium applications.
func Fig10(s *Suite) (*Fig10Result, error) {
	return speedupStudy(s, workloads.HighMediumNames(), s.AP.Capacity)
}

// speedupStudy is the shared engine for Figures 10 and 13.
func speedupStudy(s *Suite, names []string, capacity int) (*Fig10Result, error) {
	apps, err := s.Apps(names)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Capacity: capacity}
	var g1, g2, g3, g4 []float64
	for _, a := range apps {
		row := Fig10Row{Abbr: a.Abbr()}
		if row.APCPU01, err = a.SpeedupAPCPU(0.001, capacity); err != nil {
			return nil, err
		}
		if row.APCPU1, err = a.SpeedupAPCPU(0.01, capacity); err != nil {
			return nil, err
		}
		if row.SpAP01, err = a.SpeedupBaseAPSpAP(0.001, capacity); err != nil {
			return nil, err
		}
		if row.SpAP1, err = a.SpeedupBaseAPSpAP(0.01, capacity); err != nil {
			return nil, err
		}
		p01, err := a.Partition(0.001, capacity)
		if err != nil {
			return nil, err
		}
		p1, err := a.Partition(0.01, capacity)
		if err != nil {
			return nil, err
		}
		row.Saving01 = p01.ResourceSaving()
		row.Saving1 = p1.ResourceSaving()
		res.Rows = append(res.Rows, row)
		g1 = append(g1, row.APCPU01)
		g2 = append(g2, row.APCPU1)
		g3 = append(g3, row.SpAP01)
		g4 = append(g4, row.SpAP1)
	}
	res.GeoAPCPU01 = metrics.GeoMean(g1)
	res.GeoAPCPU1 = metrics.GeoMean(g2)
	res.GeoSpAP01 = metrics.GeoMean(g3)
	res.GeoSpAP1 = metrics.GeoMean(g4)
	return res, nil
}

// Render formats Figure 10(a) and 10(b).
func (r *Fig10Result) Render() string {
	t := metrics.NewTable("App", "AP-CPU 0.1%", "AP-CPU 1%", "SpAP 0.1%", "SpAP 1%")
	for _, row := range r.Rows {
		t.AddRowf(row.Abbr, row.APCPU01, row.APCPU1, row.SpAP01, row.SpAP1)
	}
	t.AddRowf("geomean", r.GeoAPCPU01, r.GeoAPCPU1, r.GeoSpAP01, r.GeoSpAP1)
	t2 := metrics.NewTable("App", "Saving 0.1%", "Saving 1%")
	for _, row := range r.Rows {
		t2.AddRow(row.Abbr, metrics.Pct(row.Saving01), metrics.Pct(row.Saving1))
	}
	return fmt.Sprintf("Figure 10(a): speedup over baseline AP (capacity %d)\n%s\nFigure 10(b): resource savings\n%s",
		r.Capacity, t, t2)
}

// Fig11Row is the performance-per-STE comparison at one AP size.
type Fig11Row struct {
	Capacity int
	// Mean performance/STE across all 26 applications, ×1e6 for
	// readability (symbols/cycle/STE).
	BaselineMean float64
	SpAPMean     float64
	ImprovePct   float64
}

// Fig11Result reproduces Figure 11: performance/STE across AP sizes under
// BaseAP/SpAP with 1% profiling.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11 sweeps AP capacities (the paper's 6K/12K/24K/49K, scaled like the
// suite's half-core).
func Fig11(s *Suite, capacities []int) (*Fig11Result, error) {
	apps, err := s.Apps(workloads.Names())
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for _, c := range capacities {
		var base, spapv []float64
		for _, a := range apps {
			if tooBigForCapacity(a, c) {
				continue
			}
			n := len(a.TestInput())
			bc, err := a.BaselineCycles(c)
			if err != nil {
				return nil, err
			}
			run, err := a.RunBaseAPSpAP(0.01, c)
			if err != nil {
				return nil, err
			}
			base = append(base, ap.PerfPerSTE(n, bc, c))
			spapv = append(spapv, ap.PerfPerSTE(n, run.TotalCycles, c))
		}
		row := Fig11Row{
			Capacity:     c,
			BaselineMean: metrics.Mean(base) * 1e6,
			SpAPMean:     metrics.Mean(spapv) * 1e6,
		}
		row.ImprovePct = 100 * (row.SpAPMean/row.BaselineMean - 1)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// tooBigForCapacity reports whether some NFA of the application exceeds the
// half-core capacity (such applications cannot run at that size at all).
func tooBigForCapacity(a *AppData, capacity int) bool {
	net := a.App.Net
	for i := 0; i < net.NumNFAs(); i++ {
		if net.NFASize(i) > capacity {
			return true
		}
	}
	return false
}

// Render formats Figure 11.
func (r *Fig11Result) Render() string {
	t := metrics.NewTable("Capacity", "Baseline perf/STE (×1e-6)", "BaseAP/SpAP (×1e-6)", "Improvement")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Capacity),
			fmt.Sprintf("%.3f", row.BaselineMean),
			fmt.Sprintf("%.3f", row.SpAPMean),
			fmt.Sprintf("%+.1f%%", row.ImprovePct))
	}
	return "Figure 11: performance per STE across AP sizes (1% profiling)\n" + t.String()
}

// Fig12Row compares reporting-state counts against the baseline.
type Fig12Row struct {
	Abbr     string
	Baseline int
	// True/IM at each profiling size: original reporting states kept in
	// BaseAP mode and added intermediate reporting states.
	True01, IM01 int
	True1, IM1   int
}

// Fig12Result reproduces Figure 12.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 counts reporting states in the BaseAP-mode configuration.
func Fig12(s *Suite) (*Fig12Result, error) {
	apps, err := s.Apps(workloads.HighMediumNames())
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{}
	for _, a := range apps {
		row := Fig12Row{Abbr: a.Abbr(), Baseline: a.App.Net.ComputeStats().Reporting}
		p01, err := a.Partition(0.001, s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		p1, err := a.Partition(0.01, s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		row.True01, row.IM01 = p01.ReportingStates()
		row.True1, row.IM1 = p1.ReportingStates()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Figure 12 (counts normalized to the baseline).
func (r *Fig12Result) Render() string {
	t := metrics.NewTable("App", "True 0.1%", "IM 0.1%", "Norm 0.1%", "True 1%", "IM 1%", "Norm 1%")
	for _, row := range r.Rows {
		n01 := float64(row.True01+row.IM01) / float64(row.Baseline)
		n1 := float64(row.True1+row.IM1) / float64(row.Baseline)
		t.AddRow(row.Abbr,
			fmt.Sprint(row.True01), fmt.Sprint(row.IM01), fmt.Sprintf("%.2f", n01),
			fmt.Sprint(row.True1), fmt.Sprint(row.IM1), fmt.Sprintf("%.2f", n1))
	}
	return "Figure 12: reporting states in BaseAP mode, normalized to baseline\n" + t.String()
}

// Table4Row is one row of Table IV.
type Table4Row struct {
	Abbr                string
	BaselineExecutions  int
	BaseAPExecutions    int
	SpAPExecutions      int
	IntermediateReports int64
	EnableStalls        int64
	JumpRatio           float64 // NaN if SpAP unused
}

// Table4Result reproduces Table IV at 1% profiling.
type Table4Result struct {
	Capacity int
	Rows     []Table4Row
}

// Table4 gathers runtime statistics for the high+medium applications.
func Table4(s *Suite) (*Table4Result, error) {
	apps, err := s.Apps(workloads.HighMediumNames())
	if err != nil {
		return nil, err
	}
	res := &Table4Result{Capacity: s.AP.Capacity}
	for _, a := range apps {
		base, err := a.BaselineBatches(s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		run, err := a.RunBaseAPSpAP(0.01, s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table4Row{
			Abbr:                a.Abbr(),
			BaselineExecutions:  base,
			BaseAPExecutions:    run.BaseAPBatches,
			SpAPExecutions:      run.SpAPExecutions,
			IntermediateReports: run.IntermediateReports,
			EnableStalls:        run.EnableStalls,
			JumpRatio:           run.JumpRatio,
		})
	}
	return res, nil
}

// Render formats Table IV.
func (r *Table4Result) Render() string {
	t := metrics.NewTable("App", "AP", "BaseAP", "SpAP", "#IMReports", "#EStalls", "JumpRatio")
	for _, row := range r.Rows {
		jr := "-"
		if !math.IsNaN(row.JumpRatio) {
			jr = fmt.Sprintf("%.2f%%", 100*row.JumpRatio)
		}
		t.AddRow(row.Abbr, fmt.Sprint(row.BaselineExecutions),
			fmt.Sprint(row.BaseAPExecutions), fmt.Sprint(row.SpAPExecutions),
			fmt.Sprint(row.IntermediateReports), fmt.Sprint(row.EnableStalls), jr)
	}
	return fmt.Sprintf("Table IV: runtime statistics (1%% profiling, capacity %d)\n%s", r.Capacity, t)
}

// Fig13Result reproduces Figure 13: capacity sensitivity.
type Fig13Result struct {
	// Low is the low-group study at half the half-core (paper: 12K).
	Low *Fig10Result
	// High is the high-group study at a full chip (paper: 49K).
	High *Fig10Result
}

// Fig13 runs the low group at capacity/2 and the high group at capacity×2
// (the paper's 12K and 49K relative to the 24K half-core).
func Fig13(s *Suite) (*Fig13Result, error) {
	low, err := speedupStudy(s, workloads.LowNames(), s.AP.Capacity/2)
	if err != nil {
		return nil, err
	}
	high, err := speedupStudy(s, workloads.HighNames(), s.AP.Capacity*49/24)
	if err != nil {
		return nil, err
	}
	return &Fig13Result{Low: low, High: high}, nil
}

// Render formats both panels of Figure 13.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13(a): low group at capacity %d\n%s\n", r.Low.Capacity, renderSpeedups(r.Low))
	fmt.Fprintf(&b, "Figure 13(b): high group at capacity %d\n%s", r.High.Capacity, renderSpeedups(r.High))
	return b.String()
}

func renderSpeedups(r *Fig10Result) string {
	t := metrics.NewTable("App", "SpAP 0.1%", "SpAP 1%")
	for _, row := range r.Rows {
		t.AddRowf(row.Abbr, row.SpAP01, row.SpAP1)
	}
	t.AddRowf("geomean", r.GeoSpAP01, r.GeoSpAP1)
	return t.String()
}

// Table2Row is one row of Table II.
type Table2Row struct {
	Abbr    string
	Group   string
	States  int
	NFAs    int
	MaxTopo int32
	RStates int
}

// Table2Result reproduces Table II for the generated (scaled) suite.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 inventories the generated applications.
func Table2(s *Suite) (*Table2Result, error) {
	apps, err := s.Apps(workloads.Names())
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	for _, a := range apps {
		st := a.App.Net.ComputeStats()
		maxTopo := int32(0)
		for _, m := range a.Topo().MaxPerNFA {
			if m > maxTopo {
				maxTopo = m
			}
		}
		res.Rows = append(res.Rows, Table2Row{
			Abbr:    a.Abbr(),
			Group:   a.App.Group.String(),
			States:  st.States,
			NFAs:    st.NFAs,
			MaxTopo: maxTopo,
			RStates: st.Reporting,
		})
	}
	return res, nil
}

// Render formats Table II.
func (r *Table2Result) Render() string {
	t := metrics.NewTable("App", "Grp", "#States", "#NFAs", "MaxTopo", "#RStates")
	for _, row := range r.Rows {
		t.AddRow(row.Abbr, row.Group, fmt.Sprint(row.States), fmt.Sprint(row.NFAs),
			fmt.Sprint(row.MaxTopo), fmt.Sprint(row.RStates))
	}
	return "Table II: generated applications (scaled 1/8 of the paper)\n" + t.String()
}
