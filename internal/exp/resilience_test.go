package exp

import (
	"context"
	"math"
	"strings"
	"testing"

	"sparseap/internal/ap"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
	"sparseap/internal/workloads"
)

func TestResilienceSmallScale(t *testing.T) {
	s := testSuite()
	r, err := Resilience(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || len(r.Trials) != 2*faultSweepSeeds*len(faultSweepApps) {
		t.Fatalf("row/trial counts wrong: %d rows, %d trials", len(r.Rows), len(r.Trials))
	}
	// The guard must not cost the healthy geomean more than 2%.
	if r.GeoGuarded < 0.98*r.GeoUnguarded {
		t.Fatalf("guarded geomean %.3f dropped below 98%% of unguarded %.3f", r.GeoGuarded, r.GeoUnguarded)
	}
	for _, row := range r.Rows {
		// An untripped guard is transparent: identical speedup.
		if row.Trips == 0 && row.BatchFallbacks == 0 &&
			math.Abs(row.Guarded-row.Unguarded) > 1e-12 {
			t.Errorf("%s: guard changed an untripped run: %.4f vs %.4f", row.Abbr, row.Guarded, row.Unguarded)
		}
	}
	for _, tr := range r.Trials {
		if !tr.OK {
			t.Errorf("fault trial failed: %+v", tr)
		}
		if tr.Kind == "stuck" && tr.Faults == 0 {
			t.Errorf("%s seed %d: no stuck faults injected", tr.Abbr, tr.Seed)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Resilience") || !strings.Contains(out, "Fault-injection sweep") {
		t.Fatal("render missing sections")
	}
}

// TestResiliencePENGuardedFullScale pins the acceptance criterion: at the
// default (paper 1/8) scale, PEN's partition at 1% profiling storms and the
// unguarded executor lands at ~0.54×; the guard must recover to >= 0.95×.
func TestResiliencePENGuardedFullScale(t *testing.T) {
	wl := workloads.Config{InputLen: 131072, Divisor: 8, Seed: 1}
	s := NewSuite(wl, ap.DefaultConfig().WithCapacity(3000))
	a, err := s.App("PEN")
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.BaselineCycles(s.AP.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := a.RunBaseAPSpAP(0.01, s.AP.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	unguarded := float64(base) / float64(plain.TotalCycles)
	if unguarded > 0.7 {
		t.Fatalf("PEN unguarded speedup %.2f: the storm pathology disappeared from the workload", unguarded)
	}
	p, err := a.Partition(0.01, s.AP.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spap.RunGuarded(context.Background(), p, a.TestInput(), s.AP, spap.DefaultGuard(), spap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	guarded := float64(base) / float64(res.TotalCycles)
	if guarded < 0.95 {
		t.Errorf("PEN guarded speedup %.3f < 0.95 (unguarded %.3f)", guarded, unguarded)
	}
	if res.Guard.Trips == 0 || !res.Guard.FallbackBaseline {
		t.Errorf("PEN guard did not engage: %+v", res.Guard)
	}
	// Report-count equivalence across the degradation ladder.
	want := sim.Run(a.App.Net, a.TestInput(), sim.Options{}).NumReports
	if res.NumReports != want {
		t.Errorf("guarded reports %d != baseline %d", res.NumReports, want)
	}
}
