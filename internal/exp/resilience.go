package exp

import (
	"context"
	"fmt"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/fault"
	"sparseap/internal/metrics"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
	"sparseap/internal/workloads"
)

// ResilienceRow compares one application's BaseAP/SpAP speedup with and
// without the adaptive guard at 1% profiling.
type ResilienceRow struct {
	Abbr      string
	Unguarded float64
	Guarded   float64
	// Trips / BatchFallbacks / Fallback record what the guard did; all zero
	// and false on healthy applications (where the two speedups are
	// identical by construction).
	Trips          int
	BatchFallbacks int
	Fallback       bool
}

// FaultTrial is one cell of the fault-injection sweep.
type FaultTrial struct {
	Abbr string
	Seed int64
	Kind string
	// Faults counts injected stuck faults; Dropped counts lost queue
	// entries (drop trials).
	Faults  int
	Dropped int64
	// OK means the trial behaved as modeled: stuck trials restore report
	// equivalence after spare-STE repair; drop trials complete and account
	// their losses.
	OK bool
}

// ResilienceResult is the guarded-execution study plus the deterministic
// fault-injection sweep.
type ResilienceResult struct {
	Capacity                 int
	Rows                     []ResilienceRow
	GeoUnguarded, GeoGuarded float64
	Trials                   []FaultTrial
}

// faultSweepApps are the applications the fault sweep exercises; seeds run
// 1..faultSweepSeeds and each (app, seed) runs every fault kind.
var faultSweepApps = []string{"Fermi", "HM", "PEN", "Snort"}

const faultSweepSeeds = 3

// Resilience runs the guarded executor against the plain one over the
// high+medium applications at 1% profiling, then sweeps stuck-fault repair
// and report-drop trials over a fixed app × seed grid. The guard must be
// transparent on healthy applications (identical speedups) and lift
// storm-prone ones (PEN) back toward 1×.
func Resilience(s *Suite) (*ResilienceResult, error) {
	apps, err := s.Apps(workloads.HighMediumNames())
	if err != nil {
		return nil, err
	}
	res := &ResilienceResult{Capacity: s.AP.Capacity}
	cfg := s.AP.WithCapacity(s.AP.Capacity)
	var gu, gg []float64
	for _, a := range apps {
		base, err := a.BaselineCycles(s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		plain, err := a.RunBaseAPSpAP(0.01, s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		p, err := a.Partition(0.01, s.AP.Capacity)
		if err != nil {
			return nil, err
		}
		guarded, err := spap.RunGuarded(context.Background(), p, a.TestInput(), cfg, spap.DefaultGuard(), spap.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: guarded: %w", a.Abbr(), err)
		}
		row := ResilienceRow{
			Abbr:           a.Abbr(),
			Unguarded:      metrics.Speedup(base, plain.TotalCycles),
			Guarded:        metrics.Speedup(base, guarded.TotalCycles),
			Trips:          guarded.Guard.Trips,
			BatchFallbacks: guarded.Guard.BatchFallbacks,
			Fallback:       guarded.Guard.FallbackBaseline,
		}
		res.Rows = append(res.Rows, row)
		gu = append(gu, row.Unguarded)
		gg = append(gg, row.Guarded)
	}
	res.GeoUnguarded = metrics.GeoMean(gu)
	res.GeoGuarded = metrics.GeoMean(gg)

	for _, name := range faultSweepApps {
		a, err := s.App(name)
		if err != nil {
			return nil, err
		}
		for seed := int64(1); seed <= faultSweepSeeds; seed++ {
			st, err := stuckTrial(a, cfg, seed)
			if err != nil {
				return nil, err
			}
			res.Trials = append(res.Trials, st)
			dt, err := dropTrial(a, s, cfg, seed)
			if err != nil {
				return nil, err
			}
			res.Trials = append(res.Trials, dt)
		}
	}
	return res, nil
}

// stuckTrial injects ~20 stuck-off and ~5 stuck-on faults, repairs them via
// spare-STE remapping, and checks the repaired network reproduces the
// fault-free report stream exactly.
func stuckTrial(a *AppData, cfg ap.Config, seed int64) (FaultTrial, error) {
	tr := FaultTrial{Abbr: a.Abbr(), Seed: seed, Kind: "stuck"}
	n := a.App.Net.Len()
	plan := fault.Plan{Seed: seed,
		StuckOffRate: fault.RateForCount(20, n),
		StuckOnRate:  fault.RateForCount(5, n)}
	inj := fault.New(plan).InjectStuck(a.App.Net)
	tr.Faults = len(inj.Faults)
	repaired, _, err := inj.Repair(cfg, inj.MinSparesPerBlock(cfg))
	if err != nil {
		return tr, fmt.Errorf("%s seed %d: %w", a.Abbr(), seed, err)
	}
	input := a.TestInput()
	tr.OK = reportHash(repaired, input) == reportHash(a.App.Net, input)
	return tr, nil
}

// dropTrial runs the guarded executor with a 5% report-drop injector; the
// run must complete, and any lost queue entries must be accounted.
func dropTrial(a *AppData, s *Suite, cfg ap.Config, seed int64) (FaultTrial, error) {
	tr := FaultTrial{Abbr: a.Abbr(), Seed: seed, Kind: "drop"}
	p, err := a.Partition(0.01, s.AP.Capacity)
	if err != nil {
		return tr, err
	}
	inj := fault.New(fault.Plan{Seed: seed, ReportDropRate: 0.05})
	res, err := spap.RunGuarded(context.Background(), p, a.TestInput(), cfg, spap.DefaultGuard(), spap.Options{Faults: inj})
	if err != nil {
		return tr, fmt.Errorf("%s seed %d: %w", a.Abbr(), seed, err)
	}
	tr.Dropped = res.Fault.DroppedReports
	tr.OK = true
	return tr, nil
}

// reportHash folds a network's full report stream (order-sensitive, which
// is deterministic under the engine semantics) into one word, so multi-
// million-report streams compare without being materialized.
func reportHash(net *automata.Network, input []byte) uint64 {
	h := uint64(1469598103934665603)
	e := sim.AcquireEngine(net, sim.Options{})
	defer e.Release()
	e.OnReport = func(pos int64, st automata.StateID) {
		h = (h * 1099511628211) ^ uint64(pos)<<21 ^ uint64(st)
	}
	for i, b := range input {
		e.Step(int64(i), b)
	}
	return h
}

// Render formats the resilience study.
func (r *ResilienceResult) Render() string {
	t := metrics.NewTable("App", "Unguarded", "Guarded", "Trips", "BatchFB", "Fallback")
	for _, row := range r.Rows {
		t.AddRow(row.Abbr,
			fmt.Sprintf("%.2f", row.Unguarded), fmt.Sprintf("%.2f", row.Guarded),
			fmt.Sprint(row.Trips), fmt.Sprint(row.BatchFallbacks), fmt.Sprint(row.Fallback))
	}
	t.AddRow("geomean", fmt.Sprintf("%.2f", r.GeoUnguarded), fmt.Sprintf("%.2f", r.GeoGuarded), "", "", "")
	t2 := metrics.NewTable("App", "Seed", "Kind", "#Faults", "#Dropped", "OK")
	for _, tr := range r.Trials {
		t2.AddRow(tr.Abbr, fmt.Sprint(tr.Seed), tr.Kind,
			fmt.Sprint(tr.Faults), fmt.Sprint(tr.Dropped), fmt.Sprint(tr.OK))
	}
	return fmt.Sprintf("Resilience: BaseAP/SpAP speedup with the adaptive guard (1%% profiling, capacity %d)\n%s\nFault-injection sweep (stuck: repair equivalence; drop: 5%% queue loss)\n%s",
		r.Capacity, t, t2)
}
