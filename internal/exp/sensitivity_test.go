package exp

import (
	"strings"
	"testing"

	"sparseap/internal/automata"
)

func TestPortsStudy(t *testing.T) {
	s := testSuite()
	r, err := PortsStudy(s, []string{"PEN"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Stalls must be non-increasing in port width; speedup non-decreasing.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Stalls > r.Rows[i-1].Stalls {
			t.Fatalf("stalls increased with ports: %+v", r.Rows)
		}
		if r.Rows[i].Speedup < r.Rows[i-1].Speedup-1e-9 {
			t.Fatalf("speedup decreased with ports: %+v", r.Rows)
		}
	}
	if !strings.Contains(r.Render(), "enable-port") {
		t.Fatal("render missing title")
	}
}

func TestBoardStudy(t *testing.T) {
	s := testSuite()
	r, err := BoardStudy(s, []string{"CAV4k", "HM1500"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Wider boards never increase either system's rounds.
	for i := 1; i < 3; i++ {
		if r.Rows[i].Baseline > r.Rows[i-1].Baseline || r.Rows[i].SpAP > r.Rows[i-1].SpAP+1e-9 {
			t.Fatalf("rounds grew with board width: %+v", r.Rows[:3])
		}
	}
	r.Render()
}

func TestStreamStudy(t *testing.T) {
	s := testSuite()
	r, err := StreamStudy(s, []string{"Snort"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[1].States != 2*r.Rows[0].States || r.Rows[2].States != 4*r.Rows[0].States {
		t.Fatalf("replication did not scale states: %+v", r.Rows)
	}
	// The partitioning benefit must not shrink as replication grows.
	if r.Rows[2].Speedup < r.Rows[0].Speedup-0.25 {
		t.Fatalf("speedup collapsed under replication: %+v", r.Rows)
	}
	r.Render()
}

func TestSensitivityBundle(t *testing.T) {
	s := testSuite()
	r, err := Sensitivity(s)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"enable-port", "half-core count", "replication"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestReplicate(t *testing.T) {
	s := testSuite()
	a, err := s.App("Bro217")
	if err != nil {
		t.Fatal(err)
	}
	net := a.App.Net
	r3 := automata.Replicate(net, 3)
	if r3.Len() != 3*net.Len() || r3.NumNFAs() != 3*net.NumNFAs() {
		t.Fatalf("replicate sizes: %d/%d", r3.Len(), r3.NumNFAs())
	}
	if err := r3.Validate(); err != nil {
		t.Fatal(err)
	}
	r1 := automata.Replicate(net, 1)
	if r1.Len() != net.Len() {
		t.Fatal("single replica changed size")
	}
	r1.States[0].Succ = nil // must be a clone, not an alias
	if len(net.States[0].Succ) == 0 && net.Len() > 1 {
		t.Fatal("Replicate(1) aliases the original network")
	}
}
