package exp

import (
	"math"
	"strings"
	"testing"

	"sparseap/internal/ap"
	"sparseap/internal/hotcold"
	"sparseap/internal/spap"
	"sparseap/internal/workloads"
)

// testSuite builds a small-scale suite: 1/64 of the paper with 8 KiB
// inputs and a 375-STE half-core (24K/64).
func testSuite() *Suite {
	wl := workloads.Config{InputLen: 8192, Divisor: 64, Seed: 3}
	return NewSuite(wl, ap.DefaultConfig().WithCapacity(375))
}

func TestFig1(t *testing.T) {
	s := testSuite()
	r, err := Fig1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 26 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i-1].HotFrac > r.Rows[i].HotFrac {
			t.Fatal("rows not sorted by hot fraction")
		}
	}
	if r.AvgColdFrac <= 0.2 || r.AvgColdFrac >= 0.95 {
		t.Fatalf("avg cold fraction = %v, implausible", r.AvgColdFrac)
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestFig5(t *testing.T) {
	s := testSuite()
	r, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hot) != 26 || len(r.Cold) != 26 {
		t.Fatal("wrong row counts")
	}
	for _, row := range r.Hot {
		sum := row.Shallow + row.Medium + row.Deep
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: hot fractions sum to %v", row.Abbr, sum)
		}
	}
	// The key claim: depth correlates negatively with hotness.
	if r.AvgCorrelation >= 0 {
		t.Fatalf("avg correlation = %v, want negative", r.AvgCorrelation)
	}
	r.Render()
}

func TestTable1(t *testing.T) {
	s := testSuite()
	r, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Recall must be monotone nondecreasing in profile size (hot-set
	// monotonicity), and high at 50%.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Recall < r.Rows[i-1].Recall-1e-9 {
			t.Fatalf("recall not monotone: %+v", r.Rows)
		}
	}
	if r.Rows[3].Recall < 0.75 {
		t.Fatalf("recall at 50%% = %v, implausibly low", r.Rows[3].Recall)
	}
	if r.Rows[1].Accuracy < 0.5 {
		t.Fatalf("accuracy at 1%% = %v", r.Rows[1].Accuracy)
	}
	r.Render()
}

func TestFig8(t *testing.T) {
	s := testSuite()
	r, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 26 {
		t.Fatal("wrong row count")
	}
	byApp := map[string]float64{}
	for _, row := range r.Rows {
		if row.Constrained < 0 || row.Constrained > 1 {
			t.Fatalf("%s: constrained = %v", row.Abbr, row.Constrained)
		}
		byApp[row.Abbr] = row.Constrained
	}
	// ER and LV must stand out (giant SCCs), as in the paper.
	if byApp["ER"] < 2*r.Avg && byApp["LV"] < 2*r.Avg {
		t.Fatalf("ER=%v LV=%v not outliers vs avg %v", byApp["ER"], byApp["LV"], r.Avg)
	}
	r.Render()
}

func TestFig10AndTable4(t *testing.T) {
	s := testSuite()
	r, err := Fig10(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byApp := map[string]Fig10Row{}
	for _, row := range r.Rows {
		byApp[row.Abbr] = row
	}
	// CAV4k must show a large speedup; ER and RF1 none.
	if byApp["CAV4k"].SpAP1 < 3 {
		t.Errorf("CAV4k speedup = %v, want large", byApp["CAV4k"].SpAP1)
	}
	for _, app := range []string{"ER", "RF1"} {
		v := byApp[app].SpAP1
		if v < 0.95 || v > 1.6 {
			t.Errorf("%s speedup = %v, want ~1", app, v)
		}
	}
	if r.GeoSpAP1 < 1.0 {
		t.Errorf("geomean SpAP 1%% = %v, want > 1", r.GeoSpAP1)
	}
	r.Render()

	t4, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	byT4 := map[string]Table4Row{}
	for _, row := range t4.Rows {
		byT4[row.Abbr] = row
	}
	// Consistency: BaseAP executions never exceed baseline executions.
	for _, row := range t4.Rows {
		if row.BaseAPExecutions > row.BaselineExecutions {
			t.Errorf("%s: BaseAP %d > baseline %d", row.Abbr, row.BaseAPExecutions, row.BaselineExecutions)
		}
		if row.IntermediateReports == 0 && row.SpAPExecutions != 0 {
			t.Errorf("%s: SpAP ran without reports", row.Abbr)
		}
	}
	// ER and RF1 keep all states: no SpAP work at all.
	for _, app := range []string{"ER", "RF1", "RF2"} {
		if byT4[app].SpAPExecutions != 0 {
			t.Errorf("%s: SpAP executions = %d, want 0", app, byT4[app].SpAPExecutions)
		}
	}
	t4.Render()
}

func TestFig11(t *testing.T) {
	s := testSuite()
	r, err := Fig11(s, []int{94, 188, 375, 766})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatal("wrong row count")
	}
	// At the half-core size the scheme must improve performance/STE.
	if r.Rows[2].ImprovePct <= 0 {
		t.Errorf("improvement at half-core = %v%%", r.Rows[2].ImprovePct)
	}
	// Larger APs have lower baseline perf/STE (underutilization).
	if r.Rows[3].BaselineMean >= r.Rows[0].BaselineMean {
		t.Errorf("baseline perf/STE not decreasing with size: %+v", r.Rows)
	}
	r.Render()
}

func TestFig12(t *testing.T) {
	s := testSuite()
	r, err := Fig12(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatal("wrong row count")
	}
	for _, row := range r.Rows {
		if row.Baseline == 0 {
			t.Errorf("%s: no baseline reporting states", row.Abbr)
		}
		if row.True01 > row.Baseline {
			t.Errorf("%s: more true reporting states than baseline", row.Abbr)
		}
	}
	r.Render()
}

func TestFig13(t *testing.T) {
	s := testSuite()
	r, err := Fig13(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Low.Rows) != 10 || len(r.High.Rows) != 11 {
		t.Fatalf("rows = %d/%d", len(r.Low.Rows), len(r.High.Rows))
	}
	if r.Low.Capacity != s.AP.Capacity/2 {
		t.Fatal("low capacity wrong")
	}
	r.Render()
}

func TestTable2(t *testing.T) {
	s := testSuite()
	r, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 26 {
		t.Fatal("wrong row count")
	}
	for _, row := range r.Rows {
		if row.States <= 0 || row.NFAs <= 0 || row.MaxTopo <= 0 || row.RStates <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	r.Render()
}

func TestAblation(t *testing.T) {
	s := testSuite()
	r, err := Ablation(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Note: the oracle is mis-prediction-free but keeps *every* test-hot
	// state, so it can trail the profiled scheme, which cuts lower and
	// pays only cheap jump-handled crossings. It is not an upper bound on
	// speedup — only on prediction quality.
	for _, g := range []float64{r.GeoProfiled, r.GeoFixed, r.GeoNormDepth, r.GeoOracle} {
		if g <= 0.3 {
			t.Fatalf("implausible geomean in %+v", r)
		}
	}
	// Profiling must beat the behaviour-blind fixed cut on the whole.
	if r.GeoProfiled < r.GeoFixed*0.9 {
		t.Fatalf("profiled geomean %v not competitive with fixed %v", r.GeoProfiled, r.GeoFixed)
	}
	// The oracle partition never mis-predicts: no intermediate reports.
	a, err := s.App("Brill")
	if err != nil {
		t.Fatal(err)
	}
	p, err := hotcold.BuildWithStrategy(a.App.Net, hotcold.StrategyOracle,
		hotcold.StrategyInput{OracleHot: a.TestHot()}, hotcold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := spap.RunBaseAPSpAP(p, a.TestInput(), s.AP, spap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if run.IntermediateReports != 0 {
		t.Fatalf("oracle partition produced %d intermediate reports", run.IntermediateReports)
	}
	if !strings.Contains(r.Render(), "Ablation") {
		t.Fatal("render missing title")
	}
}

func TestSuiteCaching(t *testing.T) {
	s := testSuite()
	a1, err := s.App("CAV")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := s.App("CAV")
	if a1 != a2 {
		t.Fatal("App not cached")
	}
	h1 := a1.FullHot()
	h2 := a1.FullHot()
	if h1 != h2 {
		t.Fatal("FullHot not cached")
	}
	p1, err := a1.Partition(0.01, 375)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := a1.Partition(0.01, 375)
	if p1 != p2 {
		t.Fatal("Partition not cached")
	}
}

func TestProfileInputBounds(t *testing.T) {
	s := testSuite()
	a, err := s.App("Brill")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(a.ProfileInput(0.5)); n != len(a.App.Input)/2 {
		t.Fatalf("50%% profile len = %d", n)
	}
	if n := len(a.ProfileInput(0.9)); n != len(a.App.Input)/2 {
		t.Fatalf("oversized profile not clamped to first half: %d", n)
	}
	if len(a.ProfileInput(0.0000001)) < 1 {
		t.Fatal("empty profile")
	}
	// Start-of-data app: test input is the whole input.
	f, err := s.App("Fermi")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TestInput()) != len(f.App.Input) {
		t.Fatal("Fermi test input must be the entire input")
	}
}
