package regexc

import (
	"testing"

	"sparseap/internal/automata"
)

// FuzzCompileRegex feeds arbitrary patterns to the compiler. Compilation
// must never panic, and any NFA it accepts must be structurally sound with
// no empty symbol sets (an empty set can never match and indicates a lost
// character-class constraint).
func FuzzCompileRegex(f *testing.F) {
	for _, seed := range []string{
		"abc",
		"error [0-9]{3}",
		"^GET /[a-z/]{4,12}",
		"a|bc|d*e+f?",
		"\\x00\\xff[^\\x80-\\x8f]",
		"(ab(cd|ef)+)*gh",
		".{1,20}overflow",
		"[a-",       // unterminated class
		"a{5,2}",    // inverted bound
		"a{,}",      // malformed repeat
		"(",         // unbalanced group
		"a**",       // double repeat
		"\\",        // trailing escape
		"[]a",       // empty class
		"a{100000}", // over the fuzz budget
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		// A small state cap keeps bounded-repetition expansion from
		// dominating the fuzz budget; real callers use DefaultMaxStates.
		m, err := Compile(pattern, Options{MaxStates: 1 << 12})
		if err != nil {
			return
		}
		net := automata.NewNetwork(m)
		if verr := net.Validate(); verr != nil {
			t.Fatalf("Compile(%q) produced a broken network: %v", pattern, verr)
		}
		for s, st := range net.States {
			if st.Match.IsEmpty() {
				t.Fatalf("Compile(%q): state %d has an empty symbol set", pattern, s)
			}
		}
	})
}
