package regexc

import (
	"math/rand"
	"regexp"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/sim"
)

// endPositions runs the compiled NFA over input and returns the set of
// positions where any match ends.
func endPositions(t *testing.T, pattern string, input []byte) map[int64]bool {
	t.Helper()
	m, err := Compile(pattern, Options{})
	if err != nil {
		t.Fatalf("Compile(%q): %v", pattern, err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate(%q): %v", pattern, err)
	}
	net := automata.NewNetwork(m)
	res := sim.Run(net, input, sim.Options{CollectReports: true})
	out := map[int64]bool{}
	for _, r := range res.Reports {
		out[r.Pos] = true
	}
	return out
}

// oracleEnds computes match end positions with the stdlib: end e is a match
// iff some substring input[s:e+1] matches the pattern exactly.
func oracleEnds(t *testing.T, pattern string, input []byte, anchored bool) map[int64]bool {
	t.Helper()
	re, err := regexp.Compile(`\A(?:` + pattern + `)\z`)
	if err != nil {
		t.Fatalf("oracle compile %q: %v", pattern, err)
	}
	out := map[int64]bool{}
	for e := 0; e < len(input); e++ {
		starts := e + 1
		if anchored {
			starts = 1
		}
		for s := 0; s < starts; s++ {
			if re.Match(input[s : e+1]) {
				out[int64(e)] = true
				break
			}
		}
	}
	return out
}

func sameSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestCompileBasics(t *testing.T) {
	cases := []struct {
		pattern string
		input   string
		want    []int64
	}{
		{"abc", "xxabcxabc", []int64{4, 8}},
		{"a|b", "ab", []int64{0, 1}},
		{"ab|cd", "abcd", []int64{1, 3}},
		{"a(bc)+d", "abcbcd", []int64{5}},
		{"a?b", "ab b", []int64{1, 3}},
		{"a*b", "aaab", []int64{3}},
		{"a.c", "abc adc a\nc", []int64{2, 6}},
		{"[0-9]+", "a12b", []int64{1, 2}},
		{"a{3}", "aaaa", []int64{2, 3}},
		{"a{2,3}b", "aab aaab", []int64{2, 7}},
		{"a{2,}b", "ab aab aaaab", []int64{5, 11}},
		{"\\d\\d", "ab12", []int64{3}},
		{"a((bc)|(cd)+)f", "abcf", []int64{3}},
		{"a((bc)|(cd)+)f", "acdcdf", []int64{5}},
	}
	for _, c := range cases {
		got := endPositions(t, c.pattern, []byte(c.input))
		want := map[int64]bool{}
		for _, p := range c.want {
			want[p] = true
		}
		if !sameSet(got, want) {
			t.Errorf("pattern %q on %q: ends %v, want %v", c.pattern, c.input, got, want)
		}
	}
}

func TestCompileAnchored(t *testing.T) {
	m, err := Compile("^ab", Options{})
	if err != nil {
		t.Fatal(err)
	}
	starts := 0
	for _, s := range m.States {
		if s.Start == automata.StartOfData {
			starts++
		}
		if s.Start == automata.StartAllInput {
			t.Error("anchored pattern has all-input start")
		}
	}
	if starts != 1 {
		t.Fatalf("start-of-data states = %d, want 1", starts)
	}
	net := automata.NewNetwork(m)
	if got := sim.Run(net, []byte("abab"), sim.Options{}).NumReports; got != 1 {
		t.Fatalf("anchored reports = %d, want 1", got)
	}
}

func TestCompileErrors(t *testing.T) {
	for _, p := range []string{
		"", "a*|b*", "(a?)*", "*a", "a**|", "(ab", "ab)", "a[b", "a\\",
		"a$", "a^b", "a{3,1}", "x{0}", "a{2,", // '{2,' unclosed -> literal braces? '{' then '2' ',' then EOF: bounds resets, '{' literal; then '2' ',' literals -> actually valid!
	} {
		_, err := Compile(p, Options{})
		valid := map[string]bool{"a{2,": true} // literal-brace fallback is legal
		if valid[p] {
			if err != nil {
				t.Errorf("Compile(%q) failed: %v (want literal-brace fallback)", p, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error", p)
		}
	}
}

func TestCompileEmptyMatchRejected(t *testing.T) {
	for _, p := range []string{"a*", "a?", "(a|)", "()"} {
		if _, err := Compile(p, Options{}); err == nil {
			t.Errorf("Compile(%q) succeeded, want nullable error", p)
		}
	}
}

func TestCompileMaxStates(t *testing.T) {
	if _, err := Compile("a{5}", Options{MaxStates: 3}); err == nil {
		t.Error("repetition over MaxStates succeeded")
	}
	if _, err := Compile("a{5}", Options{MaxStates: 5}); err != nil {
		t.Errorf("a{5} with MaxStates=5 failed: %v", err)
	}
}

func TestBoundedRepetitionStateCount(t *testing.T) {
	m, err := Compile("a{100}", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 100 {
		t.Fatalf("a{100} states = %d, want 100", m.Len())
	}
	m2, err := Compile("ab{2,4}c", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 6 { // a + bbbb + c
		t.Fatalf("ab{2,4}c states = %d, want 6", m2.Len())
	}
}

func TestCompileAll(t *testing.T) {
	net, err := CompileAll([]string{"abc", "x+y", "[0-9]{3}"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNFAs() != 3 {
		t.Fatalf("NFAs = %d", net.NumNFAs())
	}
	if _, err := CompileAll([]string{"abc", "("}, Options{}); err == nil {
		t.Error("CompileAll with bad pattern succeeded")
	}
}

func TestEscapes(t *testing.T) {
	got := endPositions(t, `\x41\t\.`, []byte("A\t. A\t,"))
	if !sameSet(got, map[int64]bool{2: true}) {
		t.Fatalf("ends = %v", got)
	}
	got = endPositions(t, `[\x00-\x02]`, []byte{0, 1, 2, 3})
	if !sameSet(got, map[int64]bool{0: true, 1: true, 2: true}) {
		t.Fatalf("ends = %v", got)
	}
}

func TestNegatedClass(t *testing.T) {
	got := endPositions(t, "a[^b]c", []byte("abc axc"))
	if !sameSet(got, map[int64]bool{6: true}) {
		t.Fatalf("ends = %v", got)
	}
}

// randomPattern generates a random pattern from a grammar both compilers
// support identically.
func randomPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		atoms := []string{"a", "b", "c", "d", "[ab]", "[^a]", ".", "\\d"}
		return atoms[r.Intn(len(atoms))]
	}
	switch r.Intn(6) {
	case 0:
		return randomPattern(r, depth-1) + randomPattern(r, depth-1)
	case 1:
		return "(" + randomPattern(r, depth-1) + "|" + randomPattern(r, depth-1) + ")"
	case 2:
		return "(" + randomPattern(r, depth-1) + ")+"
	case 3:
		// Avoid nullable roots: guard star/quest with a mandatory atom.
		return randomPattern(r, 0) + "(" + randomPattern(r, depth-1) + ")*"
	case 4:
		return randomPattern(r, 0) + "(" + randomPattern(r, depth-1) + ")?"
	default:
		return "(" + randomPattern(r, depth-1) + "){1,3}"
	}
}

// Property: compiled NFA match-end positions equal the stdlib regexp oracle
// on random patterns and inputs.
func TestPropAgainstStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	alphabet := []byte("abcd1\n")
	for trial := 0; trial < 150; trial++ {
		pattern := randomPattern(r, 1+r.Intn(3))
		input := make([]byte, 1+r.Intn(30))
		for i := range input {
			input[i] = alphabet[r.Intn(len(alphabet))]
		}
		m, err := Compile(pattern, Options{})
		if err != nil {
			continue // nullable or oversized random pattern: skip
		}
		net := automata.NewNetwork(m)
		res := sim.Run(net, input, sim.Options{CollectReports: true})
		got := map[int64]bool{}
		for _, rep := range res.Reports {
			got[rep.Pos] = true
		}
		want := oracleEnds(t, pattern, input, false)
		if !sameSet(got, want) {
			t.Fatalf("trial %d: pattern %q input %q: ends %v, want %v",
				trial, pattern, input, got, want)
		}
	}
}

// Property: anchored compilation agrees with the oracle restricted to
// matches starting at position 0.
func TestPropAnchoredAgainstStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	alphabet := []byte("abc")
	for trial := 0; trial < 80; trial++ {
		pattern := randomPattern(r, 1+r.Intn(2))
		input := make([]byte, 1+r.Intn(20))
		for i := range input {
			input[i] = alphabet[r.Intn(len(alphabet))]
		}
		m, err := Compile("^"+pattern, Options{})
		if err != nil {
			continue
		}
		net := automata.NewNetwork(m)
		res := sim.Run(net, input, sim.Options{CollectReports: true})
		got := map[int64]bool{}
		for _, rep := range res.Reports {
			got[rep.Pos] = true
		}
		want := oracleEnds(t, pattern, input, true)
		if !sameSet(got, want) {
			t.Fatalf("trial %d: pattern ^%q input %q: ends %v, want %v",
				trial, pattern, input, got, want)
		}
	}
}
