package regexc

import (
	"fmt"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// DefaultMaxStates bounds the expanded size of a single pattern (bounded
// repetitions are expanded by copying, so {1000} costs 1000 positions —
// exactly as it does on the real AP).
const DefaultMaxStates = 1 << 17

// Options configures compilation.
type Options struct {
	// MaxStates caps per-pattern NFA size; 0 means DefaultMaxStates.
	MaxStates int
}

// Compile translates one pattern into a homogeneous NFA. An unanchored
// pattern gets all-input start states (the AP idiom for "match anywhere");
// a ^-anchored pattern gets start-of-data start states. Reporting states
// are the positions a match can end at.
func Compile(pattern string, opts Options) (*automata.NFA, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	root, anchored, err := parse(pattern)
	if err != nil {
		return nil, err
	}
	root, err = expand(root, maxStates)
	if err != nil {
		return nil, fmt.Errorf("regexc: pattern %q: %w", clip(pattern), err)
	}
	c := &compiler{}
	c.number(root)
	if len(c.sets) == 0 {
		return nil, fmt.Errorf("regexc: pattern %q matches only the empty string", clip(pattern))
	}
	if len(c.sets) > maxStates {
		return nil, fmt.Errorf("regexc: pattern %q expands to %d states (max %d)", clip(pattern), len(c.sets), maxStates)
	}
	info := c.analyze(root)
	if info.nullable {
		return nil, fmt.Errorf("regexc: pattern %q matches the empty string", clip(pattern))
	}
	start := automata.StartAllInput
	if anchored {
		start = automata.StartOfData
	}
	m := automata.NewNFA()
	for pos, set := range c.sets {
		kind := automata.StartNone
		if c.isFirst(info, pos) {
			kind = start
		}
		m.Add(set, kind, false)
	}
	for _, pos := range info.last {
		m.States[pos].Report = true
	}
	for p, follows := range c.follow {
		for _, q := range follows {
			m.Connect(automata.StateID(p), automata.StateID(q))
		}
	}
	m.Dedup()
	return m, nil
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}

// expand rewrites repeatNode into primitive star/plus/quest-free form by
// copying: X{m,n} = X^m (X?)^(n-m); X{m,} = X^(m-1) X+; X* and X+ stay as
// repeatNode with (0,-1)/(1,-1) handled natively by analyze.
func expand(n node, budget int) (node, error) {
	switch t := n.(type) {
	case *litNode:
		return t, nil
	case *catNode:
		for i, k := range t.kids {
			e, err := expand(k, budget)
			if err != nil {
				return nil, err
			}
			t.kids[i] = e
		}
		return t, nil
	case *altNode:
		for i, k := range t.kids {
			e, err := expand(k, budget)
			if err != nil {
				return nil, err
			}
			t.kids[i] = e
		}
		return t, nil
	case *repeatNode:
		kid, err := expand(t.kid, budget)
		if err != nil {
			return nil, err
		}
		t.kid = kid
		switch {
		case t.min == 0 && t.max == -1: // *
			return t, nil
		case t.min == 1 && t.max == -1: // +
			return t, nil
		case t.min == 0 && t.max == 1: // ?
			return t, nil
		}
		if sz := countPositions(kid); sz > 0 {
			total := t.max
			if total == -1 {
				total = t.min
			}
			if sz*max(total, 1) > budget {
				return nil, fmt.Errorf("repetition expands past %d states", budget)
			}
		}
		var kids []node
		for i := 0; i < t.min; i++ {
			kids = append(kids, kid.clone())
		}
		switch {
		case t.max == -1:
			if t.min == 0 {
				return &repeatNode{kid: kid, min: 0, max: -1}, nil
			}
			// Replace the last mandatory copy with X+.
			kids[len(kids)-1] = &repeatNode{kid: kid.clone(), min: 1, max: -1}
		default:
			for i := t.min; i < t.max; i++ {
				kids = append(kids, &repeatNode{kid: kid.clone(), min: 0, max: 1})
			}
		}
		if len(kids) == 1 {
			return kids[0], nil
		}
		return &catNode{kids: kids}, nil
	}
	return nil, fmt.Errorf("unknown node type %T", n)
}

func countPositions(n node) int {
	switch t := n.(type) {
	case *litNode:
		return 1
	case *catNode:
		c := 0
		for _, k := range t.kids {
			c += countPositions(k)
		}
		return c
	case *altNode:
		c := 0
		for _, k := range t.kids {
			c += countPositions(k)
		}
		return c
	case *repeatNode:
		return countPositions(t.kid)
	}
	return 0
}

// compiler holds Glushkov construction state.
type compiler struct {
	sets   []symset.Set // symbol set per position
	follow [][]int      // follow sets per position
}

// number assigns dense position indices to literal nodes in left-to-right
// order.
func (c *compiler) number(n node) {
	switch t := n.(type) {
	case *litNode:
		t.pos = len(c.sets)
		c.sets = append(c.sets, t.set)
		c.follow = append(c.follow, nil)
	case *catNode:
		for _, k := range t.kids {
			c.number(k)
		}
	case *altNode:
		for _, k := range t.kids {
			c.number(k)
		}
	case *repeatNode:
		c.number(t.kid)
	}
}

// ginfo carries nullable/first/last of a subtree.
type ginfo struct {
	nullable bool
	first    []int
	last     []int
}

// analyze computes nullable/first/last bottom-up and accumulates follow
// sets into c.follow.
func (c *compiler) analyze(n node) ginfo {
	switch t := n.(type) {
	case *litNode:
		return ginfo{first: []int{t.pos}, last: []int{t.pos}}
	case *catNode:
		out := ginfo{nullable: true}
		for _, k := range t.kids {
			ki := c.analyze(k)
			// follow: lasts of the accumulated prefix feed k's firsts.
			for _, p := range out.last {
				c.follow[p] = append(c.follow[p], ki.first...)
			}
			if out.nullable {
				out.first = append(out.first, ki.first...)
			}
			if ki.nullable {
				out.last = append(out.last, ki.last...)
			} else {
				out.last = append([]int(nil), ki.last...)
			}
			out.nullable = out.nullable && ki.nullable
		}
		return out
	case *altNode:
		var out ginfo
		for _, k := range t.kids {
			ki := c.analyze(k)
			out.nullable = out.nullable || ki.nullable
			out.first = append(out.first, ki.first...)
			out.last = append(out.last, ki.last...)
		}
		return out
	case *repeatNode:
		ki := c.analyze(t.kid)
		switch {
		case t.min == 0 && t.max == 1: // ?
			return ginfo{nullable: true, first: ki.first, last: ki.last}
		default: // * or +
			for _, p := range ki.last {
				c.follow[p] = append(c.follow[p], ki.first...)
			}
			return ginfo{nullable: ki.nullable || t.min == 0, first: ki.first, last: ki.last}
		}
	}
	return ginfo{}
}

// isFirst reports whether position pos is in info.first.
func (c *compiler) isFirst(info ginfo, pos int) bool {
	for _, p := range info.first {
		if p == pos {
			return true
		}
	}
	return false
}

// CompileAll compiles each pattern to one NFA and flattens them into a
// network, skipping nothing: any failing pattern aborts with its error.
func CompileAll(patterns []string, opts Options) (*automata.Network, error) {
	nfas := make([]*automata.NFA, 0, len(patterns))
	for i, p := range patterns {
		m, err := Compile(p, opts)
		if err != nil {
			return nil, fmt.Errorf("pattern %d: %w", i, err)
		}
		nfas = append(nfas, m)
	}
	net := automata.NewNetwork(nfas...)
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
