// Package regexc compiles regular expressions into homogeneous NFAs using
// the Glushkov construction, whose output (one state per symbol occurrence,
// all incoming edges sharing that state's symbol set) is exactly the
// homogeneous automaton class the AP executes.
//
// Supported syntax: literals, escapes (\n \r \t \0 \xHH and class
// shorthands \d \D \w \W \s \S), '.', bracket classes with ranges and
// negation, grouping, alternation, and the quantifiers * + ? {m} {m,n}
// {m,}. A leading '^' anchors the pattern to the start of the input
// (compiled as start-of-data states); '$' is not supported.
package regexc

import (
	"fmt"
	"strings"

	"sparseap/internal/symset"
)

// node is a regex AST node.
type node interface {
	clone() node
}

type litNode struct {
	set symset.Set
	pos int // position index; assigned by the numbering pass
}

type catNode struct{ kids []node }
type altNode struct{ kids []node }
type repeatNode struct {
	kid node
	min int
	max int // -1 for unbounded
}

func (n *litNode) clone() node { c := *n; return &c }
func (n *catNode) clone() node {
	kids := make([]node, len(n.kids))
	for i, k := range n.kids {
		kids[i] = k.clone()
	}
	return &catNode{kids: kids}
}
func (n *altNode) clone() node {
	kids := make([]node, len(n.kids))
	for i, k := range n.kids {
		kids[i] = k.clone()
	}
	return &altNode{kids: kids}
}
func (n *repeatNode) clone() node {
	return &repeatNode{kid: n.kid.clone(), min: n.min, max: n.max}
}

// parser is a recursive-descent regex parser.
type parser struct {
	src string
	i   int
}

// parseError annotates an error with the offset it occurred at.
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("regexc: offset %d: %s", p.i, fmt.Sprintf(format, args...))
}

func (p *parser) eof() bool  { return p.i >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.i] }
func (p *parser) next() byte { c := p.src[p.i]; p.i++; return c }
func (p *parser) accept(c byte) bool {
	if !p.eof() && p.peek() == c {
		p.i++
		return true
	}
	return false
}

// parse parses a full pattern and reports whether it was ^-anchored.
func parse(pattern string) (root node, anchored bool, err error) {
	p := &parser{src: pattern}
	if p.accept('^') {
		anchored = true
	}
	root, err = p.alt()
	if err != nil {
		return nil, false, err
	}
	if !p.eof() {
		return nil, false, p.errf("unexpected %q", p.peek())
	}
	return root, anchored, nil
}

func (p *parser) alt() (node, error) {
	first, err := p.cat()
	if err != nil {
		return nil, err
	}
	if p.eof() || p.peek() != '|' {
		return first, nil
	}
	kids := []node{first}
	for p.accept('|') {
		k, err := p.cat()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	return &altNode{kids: kids}, nil
}

func (p *parser) cat() (node, error) {
	var kids []node
	for !p.eof() {
		switch p.peek() {
		case '|', ')':
			goto done
		}
		k, err := p.rep()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
done:
	switch len(kids) {
	case 0:
		return &catNode{}, nil // empty: matches ε
	case 1:
		return kids[0], nil
	}
	return &catNode{kids: kids}, nil
}

// rep parses an atom followed by any number of quantifiers.
func (p *parser) rep() (node, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peek() {
		case '*':
			p.next()
			atom = &repeatNode{kid: atom, min: 0, max: -1}
		case '+':
			p.next()
			atom = &repeatNode{kid: atom, min: 1, max: -1}
		case '?':
			p.next()
			atom = &repeatNode{kid: atom, min: 0, max: 1}
		case '{':
			rn, ok, err := p.bounds(atom)
			if err != nil {
				return nil, err
			}
			if !ok {
				return atom, nil // literal '{'
			}
			atom = rn
		default:
			return atom, nil
		}
	}
	return atom, nil
}

// bounds parses {m}, {m,}, or {m,n}; ok=false means the '{' was a literal.
func (p *parser) bounds(atom node) (node, bool, error) {
	start := p.i
	p.next() // consume '{'
	m, okM := p.number()
	if !okM {
		p.i = start
		return nil, false, nil
	}
	max := m
	if p.accept(',') {
		if n, okN := p.number(); okN {
			max = n
		} else {
			max = -1
		}
	}
	if !p.accept('}') {
		p.i = start
		return nil, false, nil
	}
	if max != -1 && max < m {
		return nil, false, p.errf("invalid repetition bounds {%d,%d}", m, max)
	}
	return &repeatNode{kid: atom, min: m, max: max}, true, nil
}

func (p *parser) number() (int, bool) {
	start := p.i
	n := 0
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		n = n*10 + int(p.next()-'0')
		if n > 1<<20 {
			return 0, false
		}
	}
	return n, p.i > start
}

func (p *parser) atom() (node, error) {
	if p.eof() {
		return nil, p.errf("unexpected end of pattern")
	}
	switch c := p.peek(); c {
	case '(':
		p.next()
		inner, err := p.alt()
		if err != nil {
			return nil, err
		}
		if !p.accept(')') {
			return nil, p.errf("missing )")
		}
		return inner, nil
	case '[':
		return p.class()
	case '.':
		p.next()
		return &litNode{set: dotSet()}, nil
	case '\\':
		return p.escape()
	case '*', '+', '?':
		return nil, p.errf("quantifier %q with nothing to repeat", c)
	case ')':
		return nil, p.errf("unmatched )")
	case '^', '$':
		return nil, p.errf("anchor %q only supported at pattern start", c)
	default:
		p.next()
		return &litNode{set: symset.Single(c)}, nil
	}
}

// dotSet is '.' — any byte except newline (matching the stdlib default).
func dotSet() symset.Set {
	s := symset.All()
	s.Remove('\n')
	return s
}

// class parses a bracket expression by scanning to the matching ']' and
// delegating to symset.Parse.
func (p *parser) class() (node, error) {
	start := p.i
	p.next() // '['
	// A ']' immediately after '[' or '[^' is a literal member.
	p.accept('^')
	first := true
	for !p.eof() {
		c := p.next()
		if c == '\\' {
			if p.eof() {
				return nil, p.errf("dangling backslash in class")
			}
			p.next()
			first = false
			continue
		}
		if c == ']' && !first {
			set, err := symset.Parse(p.src[start:p.i])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &litNode{set: set}, nil
		}
		first = false
	}
	return nil, p.errf("missing ] in class")
}

func (p *parser) escape() (node, error) {
	p.next() // backslash
	if p.eof() {
		return nil, p.errf("dangling backslash")
	}
	c := p.next()
	switch c {
	case 'd':
		return &litNode{set: symset.Digits()}, nil
	case 'D':
		return &litNode{set: symset.Digits().Complement()}, nil
	case 'w':
		return &litNode{set: symset.Word()}, nil
	case 'W':
		return &litNode{set: symset.Word().Complement()}, nil
	case 's':
		return &litNode{set: symset.Space()}, nil
	case 'S':
		return &litNode{set: symset.Space().Complement()}, nil
	case 'n':
		return &litNode{set: symset.Single('\n')}, nil
	case 'r':
		return &litNode{set: symset.Single('\r')}, nil
	case 't':
		return &litNode{set: symset.Single('\t')}, nil
	case '0':
		return &litNode{set: symset.Single(0)}, nil
	case 'x':
		if p.i+1 >= len(p.src) {
			return nil, p.errf("truncated \\x escape")
		}
		hexStr := p.src[p.i : p.i+2]
		p.i += 2
		var v int
		if _, err := fmt.Sscanf(strings.ToLower(hexStr), "%02x", &v); err != nil {
			return nil, p.errf("bad hex escape \\x%s", hexStr)
		}
		return &litNode{set: symset.Single(byte(v))}, nil
	default:
		// Escaped metacharacter or ordinary byte.
		return &litNode{set: symset.Single(c)}, nil
	}
}
