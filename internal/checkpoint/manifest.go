package checkpoint

import (
	"errors"
	"fmt"
	"sort"
)

// manifestVersion is the manifest record format version.
const manifestVersion = 1

// manifestName is the store slot the manifest lives in.
const manifestName = "manifest"

// Manifest ties the checkpoint streams of one logical run together. A
// multi-NFA batched run persists several sections (baseline pass, BaseAP
// phase, per-batch SpAP progress); the manifest records what run they
// belong to, so -resume can verify it is continuing the same application
// at the same scale, seed, capacity, system, and fault plan — and refuse
// otherwise — plus how many times the run has resumed (the chaos epoch)
// and which sections already completed.
type Manifest struct {
	// Fingerprint identifies the run: application + generation config +
	// execution knobs, as computed by the caller.
	Fingerprint string
	// InputLen is the input stream length in symbols.
	InputLen int64
	// Resumes counts completed resume handoffs: 0 on the first run, +1
	// each time a process picks the run back up. Doubles as the chaos
	// epoch, so an injected-crash schedule re-rolls on every resume and
	// a soak loop terminates with probability 1.
	Resumes int64
	// Completed lists the section names that finished (sorted).
	Completed []string
	// Done marks the whole run finished.
	Done bool
}

// MarkCompleted records a finished section (idempotent).
func (m *Manifest) MarkCompleted(section string) {
	for _, s := range m.Completed {
		if s == section {
			return
		}
	}
	m.Completed = append(m.Completed, section)
	sort.Strings(m.Completed)
}

// IsCompleted reports whether a section already finished.
func (m *Manifest) IsCompleted(section string) bool {
	for _, s := range m.Completed {
		if s == section {
			return true
		}
	}
	return false
}

// encode renders the manifest payload.
func (m *Manifest) encode(e *Enc) {
	e.String(m.Fingerprint)
	e.I64(m.InputLen)
	e.I64(m.Resumes)
	e.U64(uint64(len(m.Completed)))
	for _, s := range m.Completed {
		e.String(s)
	}
	e.Bool(m.Done)
}

// decodeManifest parses a manifest payload.
func decodeManifest(b []byte) (*Manifest, error) {
	d := NewDec(b)
	m := &Manifest{
		Fingerprint: d.String(),
		InputLen:    d.I64(),
		Resumes:     d.I64(),
	}
	n := d.length(1)
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Completed = append(m.Completed, d.String())
	}
	m.Done = d.Bool()
	if err := d.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveManifest persists the manifest through the store's atomic path.
func (s *DirStore) SaveManifest(m *Manifest) error {
	var e Enc
	m.encode(&e)
	return s.Save(manifestName, manifestVersion, e.Bytes())
}

// LoadManifest returns the stored manifest, or ErrNoCheckpoint when the
// store holds none.
func (s *DirStore) LoadManifest() (*Manifest, error) {
	payload, version, _, err := s.Load(manifestName)
	if err != nil {
		return nil, err
	}
	if version != manifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d, want %d", ErrMismatch, version, manifestVersion)
	}
	return decodeManifest(payload)
}

// ResumeManifest validates and advances the manifest for a resuming run:
// the stored fingerprint and input length must match, Resumes is bumped
// (the new chaos epoch) and persisted. When the store has no manifest a
// fresh one is created with Resumes 0. The returned manifest reflects the
// persisted state.
func (s *DirStore) ResumeManifest(fingerprint string, inputLen int64) (*Manifest, error) {
	m, err := s.LoadManifest()
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		m = &Manifest{Fingerprint: fingerprint, InputLen: inputLen}
	case err != nil:
		return nil, err
	default:
		if m.Fingerprint != fingerprint || m.InputLen != inputLen {
			return nil, fmt.Errorf("%w: stored run %q (%d symbols), this run %q (%d symbols)",
				ErrMismatch, m.Fingerprint, m.InputLen, fingerprint, inputLen)
		}
		m.Resumes++
	}
	if err := s.SaveManifest(m); err != nil {
		return nil, err
	}
	return m, nil
}

// FreshManifest clears the store and persists a new manifest for a run
// starting from scratch (no -resume).
func (s *DirStore) FreshManifest(fingerprint string, inputLen int64) (*Manifest, error) {
	if err := s.Clear(); err != nil {
		return nil, err
	}
	m := &Manifest{Fingerprint: fingerprint, InputLen: inputLen}
	if err := s.SaveManifest(m); err != nil {
		return nil, err
	}
	return m, nil
}
