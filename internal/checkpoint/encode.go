// Binary encoding helpers for checkpoint payloads.
//
// Checkpoint payloads are hand-rolled little-endian records rather than
// gob/JSON: the hot capture path must not allocate proportionally to the
// network (Enc appends into a reusable buffer), and the restore path must
// fail loudly on any truncation instead of silently zero-filling. Every
// variable-length field is length-prefixed, and Dec accumulates a sticky
// error so decoders read straight through a record and check once.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc appends fixed-width little-endian fields to a byte buffer. The zero
// value is ready to use; Reset lets a caller reuse the backing array
// across periodic captures.
type Enc struct {
	buf []byte
}

// Reset empties the buffer, keeping its capacity.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded record. The slice aliases the encoder's
// buffer and is valid until the next Reset.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// I32 appends an int32.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// F64 appends a float64 by bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (e *Enc) BytesField(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a length-prefixed []uint64.
func (e *Enc) U64s(v []uint64) {
	e.U64(uint64(len(v)))
	for _, w := range v {
		e.U64(w)
	}
}

// I64s appends a length-prefixed []int64.
func (e *Enc) I64s(v []int64) {
	e.U64(uint64(len(v)))
	for _, w := range v {
		e.I64(w)
	}
}

// I32s appends a length-prefixed []int32.
func (e *Enc) I32s(v []int32) {
	e.U64(uint64(len(v)))
	for _, w := range v {
		e.I32(w)
	}
}

// Dec reads fields appended by Enc. It carries a sticky error: after any
// short read every subsequent accessor returns the zero value, and Err
// reports the first failure.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the first decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Done returns Err, or an error if trailing bytes remain — a decoded
// record must consume its payload exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("checkpoint: %d trailing bytes after record", len(d.buf)-d.off)
	}
	return nil
}

// take reserves n bytes, setting the sticky error on underflow.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = fmt.Errorf("checkpoint: truncated record (want %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// I32 reads an int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// length reads a length prefix for elem-byte elements, bounding it by the
// remaining bytes so a corrupted prefix cannot force a giant allocation.
func (d *Dec) length(elem int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if elem < 1 {
		elem = 1
	}
	if n > uint64(len(d.buf)-d.off)/uint64(elem) {
		d.err = fmt.Errorf("checkpoint: implausible length %d at offset %d of %d", n, d.off, len(d.buf))
		return 0
	}
	return int(n)
}

// Len reads a length prefix for elem-byte elements with the same
// plausibility bound as the package's own slice readers; decoders of
// composite records use it before element loops.
func (d *Dec) Len(elem int) int { return d.length(elem) }

// BytesField reads a length-prefixed byte slice (copied out of the buffer).
func (d *Dec) BytesField() []byte {
	n := d.length(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.BytesField()) }

// U64s reads a length-prefixed []uint64.
func (d *Dec) U64s() []uint64 {
	n := d.length(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (d *Dec) I64s() []int64 {
	n := d.length(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Dec) I32s() []int32 {
	n := d.length(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.I32()
	}
	if d.err != nil {
		return nil
	}
	return out
}
