// Package checkpoint persists execution state durably so interrupted
// automata runs — crash, cancellation, guard trip, or injected fault —
// restart from a recent snapshot instead of re-streaming from symbol 0,
// while still emitting a bit-identical report stream.
//
// The package deals in opaque payloads: the sim/ap/spap executors
// serialize their own state with Enc/Dec and hand the bytes to a Store.
// The Store's job is crash consistency:
//
//   - every save is write-to-temp + fsync + rename, so a kill at any
//     instant leaves either the old checkpoint or the new one, never a
//     torn file;
//   - the previous checkpoint is rotated to a fallback slot before the
//     rename, so even a save whose rename sequence is interrupted (or a
//     latest file corrupted at rest) recovers to the previous good one;
//   - every file carries a magic, a format version, a sequence number,
//     and a CRC32-C over the payload; Load verifies all four and falls
//     back, returning ErrNoCheckpoint only when no slot survives.
//
// A Manifest ties the checkpoint files of one logical run together: the
// run's fingerprint (application, scale, seed, capacity, system, fault
// plan), how many times it has resumed, and which sections completed —
// the bookkeeping a multi-NFA batched run needs so `-resume` can refuse
// a mismatched invocation instead of corrupting state.
package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Magic identifies a checkpoint file (8 bytes, versioned separately).
const Magic = "SPAPCKPT"

// headerLen is magic(8) + version(4) + seq(8) + payloadLen(8) + crc(4).
const headerLen = 8 + 4 + 8 + 8 + 4

// ErrNoCheckpoint is returned by Load when neither the latest nor the
// fallback slot holds a valid checkpoint.
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// ErrMismatch is returned when a checkpoint exists but does not belong to
// the run trying to resume from it (wrong fingerprint, network size,
// input length, or format version).
var ErrMismatch = errors.New("checkpoint: existing checkpoint belongs to a different run")

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is the durable slot-store contract the executors and the serve
// layer checkpoint through. DirStore is the concrete single-directory
// implementation; replica.Store wraps one and ships every committed slot
// to follower nodes. The contract every implementation must honor:
//
//   - Save is atomic and rotates the previous latest to a fallback slot;
//     when Save returns nil the payload is durable (an implementation
//     with a stronger barrier — e.g. a replication quorum — returns only
//     once that barrier holds, because callers release side effects the
//     moment Save returns);
//   - Load prefers the latest slot and falls back to the previous good
//     one, returning ErrNoCheckpoint only when neither survives;
//   - all methods are safe for concurrent use across names.
type Store interface {
	// Save atomically persists payload as the latest checkpoint of name,
	// rotating the previous latest to the fallback slot.
	Save(name string, version uint32, payload []byte) error
	// Load returns the newest valid checkpoint of name, falling back to
	// the previous-good slot; fellback reports that the latest slot was
	// skipped. ErrNoCheckpoint means no slot survives.
	Load(name string) (payload []byte, version uint32, fellback bool, err error)
	// LoadPrevious returns the fallback slot directly, or ErrNoCheckpoint.
	LoadPrevious(name string) (payload []byte, version uint32, err error)
	// Names lists the checkpoint names with a latest slot, sorted.
	Names() ([]string, error)
	// Remove deletes every slot of name.
	Remove(name string) error
	// Clear removes every checkpoint in the store.
	Clear() error
}

// DirStore persists named checkpoints in one directory. Each name owns
// two slots: <name>.ckpt (latest) and <name>.ckpt.prev (previous good).
//
// A DirStore is safe for concurrent use: a serving process checkpoints
// many sessions through one shared store, so Save/Load/Remove serialize
// on an internal mutex. Concurrent writers to *different* names never
// corrupt each other's slots; concurrent writers to the *same* name are
// serialized, last writer wins (the serve layer guarantees one writer per
// session name).
type DirStore struct {
	mu  sync.Mutex
	dir string
	seq map[string]uint64 // next sequence number per name
}

var _ Store = (*DirStore)(nil)

// Open creates (if needed) and opens a checkpoint directory.
func Open(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &DirStore{dir: dir, seq: map[string]uint64{}}, nil
}

// Dir returns the store's directory.
func (s *DirStore) Dir() string { return s.dir }

// path returns the latest-slot path for name.
func (s *DirStore) path(name string) string { return filepath.Join(s.dir, name+".ckpt") }

// encodeFile renders the on-disk record: header + payload, CRC over
// version|seq|len|payload so header corruption is also caught.
func encodeFile(version uint32, seq uint64, payload []byte) []byte {
	var e Enc
	e.buf = make([]byte, 0, headerLen+len(payload))
	e.buf = append(e.buf, Magic...)
	e.U32(version)
	e.U64(seq)
	e.U64(uint64(len(payload)))
	crc := crc32.Update(0, castagnoli, e.buf[8:])
	crc = crc32.Update(crc, castagnoli, payload)
	e.U32(crc)
	e.buf = append(e.buf, payload...)
	return e.buf
}

// decodeFile verifies and unwraps an on-disk record.
func decodeFile(b []byte) (version uint32, seq uint64, payload []byte, err error) {
	if len(b) < headerLen || string(b[:8]) != Magic {
		return 0, 0, nil, fmt.Errorf("checkpoint: bad magic")
	}
	d := NewDec(b[8:])
	version = d.U32()
	seq = d.U64()
	n := d.U64()
	crc := d.U32()
	if d.Err() != nil {
		return 0, 0, nil, d.Err()
	}
	payload = b[headerLen:]
	if uint64(len(payload)) != n {
		return 0, 0, nil, fmt.Errorf("checkpoint: truncated payload (%d of %d bytes)", len(payload), n)
	}
	got := crc32.Update(0, castagnoli, b[8:headerLen-4])
	got = crc32.Update(got, castagnoli, payload)
	if got != crc {
		return 0, 0, nil, fmt.Errorf("checkpoint: CRC mismatch")
	}
	return version, seq, payload, nil
}

// Save atomically persists payload as the latest checkpoint of name. The
// previous latest (if any) becomes the fallback slot first, so a crash at
// any point of the sequence leaves at least one valid checkpoint behind.
func (s *DirStore) Save(name string, version uint32, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.path(name)
	prev := cur + ".prev"
	tmp := cur + ".tmp"

	seq := s.seq[name]
	if seq == 0 {
		// First save of this process: continue the on-disk sequence.
		if _, diskSeq, _, err := s.loadSlot(cur); err == nil {
			seq = diskSeq + 1
		}
	}
	s.seq[name] = seq + 1

	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(encodeFile(version, seq, payload)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Rotate latest -> fallback, then publish tmp -> latest. A crash
	// between the renames leaves prev (old good) + tmp (new, complete);
	// Load falls back to prev, losing at most one capture interval.
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, prev); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// loadSlot reads and verifies one slot file.
func (s *DirStore) loadSlot(path string) (payload []byte, seq uint64, version uint32, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	version, seq, payload, err = decodeFile(b)
	return payload, seq, version, err
}

// Load returns the newest valid checkpoint of name: the latest slot when
// it verifies, otherwise the fallback slot (corruption detection with
// previous-good fallback). ErrNoCheckpoint means neither slot survives.
// The returned Fellback flag tells callers a corrupted latest was
// skipped, so they can log the recovery.
func (s *DirStore) Load(name string) (payload []byte, version uint32, fellback bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.path(name)
	if payload, _, version, err = s.loadSlot(cur); err == nil {
		return payload, version, false, nil
	}
	firstErr := err
	if payload, _, version, err = s.loadSlot(cur + ".prev"); err == nil {
		return payload, version, true, nil
	}
	if os.IsNotExist(firstErr) && os.IsNotExist(err) {
		return nil, 0, false, ErrNoCheckpoint
	}
	return nil, 0, false, fmt.Errorf("%w (latest: %v; fallback: %v)", ErrNoCheckpoint, firstErr, err)
}

// LoadPrevious returns the fallback (previous-good) slot of name
// directly, bypassing the latest slot. A session consumer that fell
// behind the latest checkpoint's delivery floor resumes one capture
// interval further back; ErrNoCheckpoint means no fallback slot exists.
func (s *DirStore) LoadPrevious(name string) (payload []byte, version uint32, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, _, version, err = s.loadSlot(s.path(name) + ".prev")
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, ErrNoCheckpoint
		}
		return nil, 0, fmt.Errorf("%w (fallback: %v)", ErrNoCheckpoint, err)
	}
	return payload, version, nil
}

// Names lists the checkpoint names with a latest slot in the store,
// sorted. A restarting server enumerates it to discover which sessions
// are resumable.
func (s *DirStore) Names() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, ent := range entries {
		if n, ok := strings.CutSuffix(ent.Name(), ".ckpt"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes every slot of name (latest, fallback, temp). Completed
// runs use it to retire per-section state while keeping the manifest.
func (s *DirStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.path(name)
	var first error
	for _, p := range []string{cur, cur + ".prev", cur + ".tmp"} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

// Clear removes every checkpoint file in the store's directory — the
// fresh-start path when a run begins without -resume.
func (s *DirStore) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ext := filepath.Ext(name); ext == ".ckpt" || ext == ".prev" || ext == ".tmp" {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	s.seq = map[string]uint64{}
	return nil
}
