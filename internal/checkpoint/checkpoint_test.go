package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.I32(-7)
	e.F64(3.5)
	e.BytesField([]byte("payload"))
	e.String("name")
	e.U64s([]uint64{1, 2, 3})
	e.I64s([]int64{-1, 0, 9})
	e.I32s([]int32{5, -5})

	d := NewDec(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round-trip failed")
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %x", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.I32(); v != -7 {
		t.Errorf("I32 = %d", v)
	}
	if v := d.F64(); v != 3.5 {
		t.Errorf("F64 = %v", v)
	}
	if v := string(d.BytesField()); v != "payload" {
		t.Errorf("BytesField = %q", v)
	}
	if v := d.String(); v != "name" {
		t.Errorf("String = %q", v)
	}
	if v := d.U64s(); len(v) != 3 || v[2] != 3 {
		t.Errorf("U64s = %v", v)
	}
	if v := d.I64s(); len(v) != 3 || v[0] != -1 {
		t.Errorf("I64s = %v", v)
	}
	if v := d.I32s(); len(v) != 2 || v[1] != -5 {
		t.Errorf("I32s = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestDecTruncationAndTrailing(t *testing.T) {
	var e Enc
	e.U64(1)
	d := NewDec(e.Bytes()[:4])
	d.U64()
	if d.Err() == nil {
		t.Fatal("truncated read did not error")
	}
	// Trailing bytes are an error too.
	d = NewDec(append(append([]byte(nil), e.Bytes()...), 0))
	d.U64()
	if err := d.Done(); err == nil {
		t.Fatal("trailing bytes not rejected")
	}
}

func TestDecImplausibleLength(t *testing.T) {
	var e Enc
	e.U64(1 << 40) // length prefix far beyond the record
	d := NewDec(e.Bytes())
	if v := d.U64s(); v != nil || d.Err() == nil {
		t.Fatalf("implausible length accepted: %v, err %v", v, d.Err())
	}
}

func TestSaveLoadRotation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Load("run"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: err = %v, want ErrNoCheckpoint", err)
	}
	if err := s.Save("run", 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	payload, ver, fellback, err := s.Load("run")
	if err != nil || ver != 1 || fellback || string(payload) != "second" {
		t.Fatalf("Load = %q v%d fellback=%v err=%v", payload, ver, fellback, err)
	}
}

func TestCorruptLatestFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the latest slot; the prev slot must win.
	path := filepath.Join(dir, "run.ckpt")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, _, fellback, err := s.Load("run")
	if err != nil || !fellback || string(payload) != "good" {
		t.Fatalf("fallback Load = %q fellback=%v err=%v, want \"good\" via prev", payload, fellback, err)
	}
}

func TestTruncatedLatestFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("newer-but-truncated")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.ckpt")
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	payload, _, fellback, err := s.Load("run")
	if err != nil || !fellback || string(payload) != "good" {
		t.Fatalf("truncated Load = %q fellback=%v err=%v", payload, fellback, err)
	}
}

func TestBothSlotsCorruptIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"run.ckpt", "run.ckpt.prev"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Both slots corrupt degrades to a fresh start (wrapped ErrNoCheckpoint
	// carrying the per-slot detail), never a torn resume.
	_, _, _, err = s.Load("run")
	if !errors.Is(err, ErrNoCheckpoint) || err == ErrNoCheckpoint {
		t.Fatalf("double corruption: err = %v, want wrapped ErrNoCheckpoint with detail", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.ckpt")
	b, _ := os.ReadFile(path)
	copy(b, "WRONGMAG")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Load("run"); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSeqSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	// A new store (fresh process) must continue the sequence so its next
	// save is recognized as newer than the surviving slots.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Save("run", 1, []byte("two")); err != nil {
		t.Fatal(err)
	}
	payload, _, _, err := s2.Load("run")
	if err != nil || string(payload) != "two" {
		t.Fatalf("reopened Load = %q err=%v", payload, err)
	}
}

func TestRunnerDisabledDegradesToNoops(t *testing.T) {
	var r *Runner
	if r.Enabled() || r.Due(8192) {
		t.Fatal("nil runner claims to be enabled")
	}
	if err := r.Check(1); err != nil {
		t.Fatal(err)
	}
	r = &Runner{} // no store
	if err := r.Save(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("disabled Load err = %v", err)
	}
}

func TestRunnerDueCadenceAndCrashHook(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Store: s, Name: "x", Every: 100}
	for _, pos := range []int64{0, 50, 100, 101, 200} {
		want := pos == 100 || pos == 200
		if got := r.Due(pos); got != want {
			t.Errorf("Due(%d) = %v, want %v", pos, got, want)
		}
	}
	// Crash hook fires even without a store.
	bare := &Runner{CrashAt: func(pos int64) bool { return pos == 7 }}
	if err := bare.Check(6); err != nil {
		t.Fatal(err)
	}
	if err := bare.Check(7); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Check(7) = %v, want ErrCrashInjected", err)
	}
}

func TestManifestRoundTripAndResume(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.FreshManifest("app/d8", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m.Resumes != 0 {
		t.Fatalf("fresh Resumes = %d", m.Resumes)
	}
	m.MarkCompleted("baseline")
	m.MarkCompleted("baseline") // idempotent
	if err := s.SaveManifest(m); err != nil {
		t.Fatal(err)
	}

	m2, err := s.ResumeManifest("app/d8", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Resumes != 1 || !m2.IsCompleted("baseline") || m2.IsCompleted("spap") {
		t.Fatalf("resumed manifest = %+v", m2)
	}
	// A different run must be refused.
	if _, err := s.ResumeManifest("other/d8", 1024); !errors.Is(err, ErrMismatch) {
		t.Fatalf("fingerprint mismatch err = %v", err)
	}
	if _, err := s.ResumeManifest("app/d8", 2048); !errors.Is(err, ErrMismatch) {
		t.Fatalf("input-length mismatch err = %v", err)
	}
}

func TestFreshManifestClearsStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("spap", 1, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FreshManifest("fp", 10); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Load("spap"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("stale checkpoint survived FreshManifest: %v", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("run", 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	payload, ver, _, err := s.Load("run")
	if err != nil || ver != 3 || string(payload) != "x" {
		t.Fatalf("Load = %q v%d err=%v", payload, ver, err)
	}
}
