package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentWritersSharedStore hammers one Store from many goroutines,
// each owning its own checkpoint name (the serve-session shape: one store
// directory, one writer per session). Every name's final load must return
// that writer's last payload intact — no torn files, no cross-name
// corruption, no lost sequence numbers.
func TestConcurrentWritersSharedStore(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const saves = 25
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("sess-%d", w)
			for i := 0; i < saves; i++ {
				payload := []byte(fmt.Sprintf("writer %d capture %d", w, i))
				if err := store.Save(name, 1, payload); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("sess-%d", w)
		payload, version, fellback, err := store.Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if fellback {
			t.Fatalf("load %s fell back: latest slot lost under concurrency", name)
		}
		if version != 1 {
			t.Fatalf("load %s: version %d", name, version)
		}
		want := fmt.Sprintf("writer %d capture %d", w, saves-1)
		if string(payload) != want {
			t.Fatalf("load %s = %q, want %q", name, payload, want)
		}
	}
	names, err := store.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != writers {
		t.Fatalf("Names() = %v, want %d entries", names, writers)
	}
}

// TestConcurrentStoresSharedDir opens two independent Store handles over
// the same directory (two sessions of one server generation, or a
// restarted server beside a draining one) writing disjoint names: both
// streams must survive verbatim.
func TestConcurrentStoresSharedDir(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, st := range []*DirStore{a, b} {
		wg.Add(1)
		go func(i int, st *DirStore) {
			defer wg.Done()
			name := fmt.Sprintf("gen-%d", i)
			for k := 0; k < 40; k++ {
				if err := st.Save(name, 1, []byte(fmt.Sprintf("g%d k%d", i, k))); err != nil {
					t.Errorf("store %d: %v", i, err)
					return
				}
			}
		}(i, st)
	}
	wg.Wait()
	check, err := Open(dir) // fresh handle, like a restarted server
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		payload, _, _, err := check.Load(fmt.Sprintf("gen-%d", i))
		if err != nil {
			t.Fatalf("gen-%d: %v", i, err)
		}
		if want := fmt.Sprintf("g%d k39", i); string(payload) != want {
			t.Fatalf("gen-%d = %q, want %q", i, payload, want)
		}
	}
}

// TestConcurrentCorruptionFallback corrupts one session's latest slot
// while other sessions keep writing: the corrupted name must recover from
// its previous-good slot, and the bystanders must be unaffected.
func TestConcurrentCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two saves so the victim has a rotated previous-good slot.
	for i := 0; i < 2; i++ {
		if err := store.Save("victim", 1, []byte(fmt.Sprintf("victim %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 30; k++ {
			if err := store.Save("bystander", 1, []byte(fmt.Sprintf("by %d", k))); err != nil {
				t.Errorf("bystander: %v", err)
				return
			}
		}
	}()
	// Corrupt the victim's latest slot mid-traffic.
	path := filepath.Join(dir, "victim.ckpt")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	payload, _, fellback, err := store.Load("victim")
	if err != nil {
		t.Fatalf("victim load: %v", err)
	}
	if !fellback {
		t.Fatal("victim load did not fall back to the previous-good slot")
	}
	if string(payload) != "victim 0" {
		t.Fatalf("victim fallback = %q, want %q", payload, "victim 0")
	}
	if p, _, err := store.LoadPrevious("victim"); err != nil || string(p) != "victim 0" {
		t.Fatalf("LoadPrevious(victim) = %q, %v", p, err)
	}
	payload, _, _, err = store.Load("bystander")
	if err != nil {
		t.Fatalf("bystander load: %v", err)
	}
	if string(payload) != "by 29" {
		t.Fatalf("bystander = %q, want %q", payload, "by 29")
	}
}
