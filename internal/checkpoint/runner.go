package checkpoint

import (
	"errors"
	"fmt"
)

// DefaultEvery is the capture interval (in input symbols) used when a
// Runner's Every is zero: frequent enough that a crash loses well under a
// second of simulated stream, rare enough that the O(frontier-words) copy
// plus one fsync'd file write stays invisible next to the step kernel.
const DefaultEvery = 8192

// ErrCrashInjected is returned by Runner.Check when the chaos hook fires:
// the soak harness's stand-in for a process kill at a seeded point. A
// process-level harness (apsim) converts it into a hard exit; in-process
// tests treat the run as dead and resume from the store.
var ErrCrashInjected = errors.New("checkpoint: injected crash")

// Runner bundles a Store with one named checkpoint stream and its capture
// policy. Executors call Due at each loop position, Save with the encoded
// state when it is, and Check to give the chaos hook a kill point.
type Runner struct {
	// Store is the backing store (any Store implementation — a DirStore
	// or a replicated wrapper); nil disables checkpointing (every method
	// degrades to a no-op, so executors need no nil-guards).
	Store Store
	// Name is the checkpoint stream name within the store (one per
	// execution phase family, e.g. "baseline", "spap").
	Name string
	// Every is the capture interval in input symbols (0 = DefaultEvery).
	Every int64
	// CrashAt, when non-nil, is polled with each loop position; returning
	// true injects a crash (ErrCrashInjected) at that point. Wired to
	// fault.Injector.CrashAt by callers — the checkpoint package stays
	// free of the fault package to keep the dependency graph acyclic.
	CrashAt func(pos int64) bool

	saves int64
}

// every returns the effective capture interval.
func (r *Runner) every() int64 {
	if r == nil || r.Every <= 0 {
		return DefaultEvery
	}
	return r.Every
}

// Enabled reports whether checkpointing is active.
func (r *Runner) Enabled() bool { return r != nil && r.Store != nil }

// Due reports whether a capture should happen before processing pos.
// Position 0 is never due (there is nothing to save yet).
func (r *Runner) Due(pos int64) bool {
	return r.Enabled() && pos > 0 && pos%r.every() == 0
}

// Check polls the chaos hook at pos, returning ErrCrashInjected on a hit.
// Active even when Store is nil so fault-plan runs without -checkpoint
// still crash (and then fail to resume, which is the point of the flag).
func (r *Runner) Check(pos int64) error {
	if r == nil || r.CrashAt == nil {
		return nil
	}
	if r.CrashAt(pos) {
		return fmt.Errorf("%w at position %d", ErrCrashInjected, pos)
	}
	return nil
}

// Save persists payload under the runner's name. No-op when disabled.
func (r *Runner) Save(version uint32, payload []byte) error {
	if !r.Enabled() {
		return nil
	}
	if err := r.Store.Save(r.Name, version, payload); err != nil {
		return err
	}
	r.saves++
	return nil
}

// Load returns the newest valid checkpoint, or ErrNoCheckpoint. When
// disabled it reports ErrNoCheckpoint so resume paths fall through to a
// fresh start.
func (r *Runner) Load() (payload []byte, version uint32, fellback bool, err error) {
	if !r.Enabled() {
		return nil, 0, false, ErrNoCheckpoint
	}
	return r.Store.Load(r.Name)
}

// Saves returns how many captures this runner has persisted.
func (r *Runner) Saves() int64 { return r.saves }

// Sub returns a runner sharing the store and policy under a derived name;
// multi-phase executors use it to give each phase its own stream.
func (r *Runner) Sub(suffix string) *Runner {
	if r == nil {
		return nil
	}
	return &Runner{Store: r.Store, Name: r.Name + "." + suffix, Every: r.Every, CrashAt: r.CrashAt}
}
