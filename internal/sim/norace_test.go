//go:build !race

package sim

const raceEnabled = false
