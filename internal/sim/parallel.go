package sim

import (
	"context"
	"fmt"
	"sync"

	"sparseap/internal/automata"
	"sparseap/internal/graph"
)

// Parallel input-stream execution, after the Parallel Automata Processor
// idea the paper cites as a driver of application growth: the input is cut
// into chunks processed concurrently, and each chunk is preceded by a
// warm-up overlap long enough that any match ending inside the chunk has
// its whole enabling history replayed. Warm-up reports are discarded (the
// previous chunk owns them).
//
// For an acyclic network the longest enabling chain is the maximum
// topological order, so overlap = MaxTopo is exact. Cycles make the
// required history unbounded; such networks are rejected unless the caller
// supplies an explicit overlap and accepts the approximation (the
// hardware proposal solves this with connected-component enumeration
// instead).
//
// The runtime is allocation-free in steady state: chunk workers run
// pooled engines whose frontier and report buffers persist across calls,
// and because each engine collects its chunk's reports already sorted by
// (Pos, State) over a disjoint position range, the final ordering is a
// k-way merge (usually pure concatenation) rather than a global sort.

// ParallelOptions configures ParallelRun.
type ParallelOptions struct {
	// Workers is the number of concurrent chunks (default 4).
	Workers int
	// Overlap is the warm-up length; 0 means the exact acyclic bound
	// (maximum topological order across NFAs).
	Overlap int
	// AllowCycles accepts networks with cycles, making the result an
	// approximation bounded by Overlap.
	AllowCycles bool
}

// ErrCyclic is returned for cyclic networks without AllowCycles.
var ErrCyclic = fmt.Errorf("sim: network has cycles; parallel overlap is only exact for DAGs (set AllowCycles to approximate)")

// ParallelRun executes net over input with chunked parallelism and returns
// all reports sorted by position. Networks containing start-of-data states
// are rejected: their matches are anchored to position 0 and cannot be
// re-derived inside a chunk.
func ParallelRun(net *automata.Network, input []byte, opts ParallelOptions) ([]Report, error) {
	return ParallelRunContext(context.Background(), net, input, opts)
}

// ParallelRunContext is ParallelRun with cancellation: every worker polls
// ctx and stops early when it fires. On cancellation the reports gathered
// so far (a valid partial prefix of each chunk) are returned together with
// ctx.Err().
func ParallelRunContext(ctx context.Context, net *automata.Network, input []byte, opts ParallelOptions) ([]Report, error) {
	for s := range net.States {
		if net.States[s].Start == automata.StartOfData {
			return nil, fmt.Errorf("sim: start-of-data networks cannot run in parallel chunks")
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	topo := graph.TopoOrder(net)
	cyclic := topo.SCC.HasCycle(net)
	overlap := opts.Overlap
	if overlap == 0 {
		if cyclic && !opts.AllowCycles {
			return nil, ErrCyclic
		}
		maxTopo := int32(0)
		for _, m := range topo.MaxPerNFA {
			if m > maxTopo {
				maxTopo = m
			}
		}
		overlap = int(maxTopo)
	} else if cyclic && !opts.AllowCycles {
		return nil, ErrCyclic
	}

	if workers > len(input) {
		workers = len(input)
	}
	if workers <= 1 {
		res, err := RunContext(ctx, net, input, Options{CollectReports: true})
		return res.Reports, err
	}
	img := ImageOf(net) // compile once, before the workers race to it
	chunk := (len(input) + workers - 1) / workers
	engines := make([]*Engine, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > len(input) {
			end = len(input)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			warm := start - overlap
			if warm < 0 {
				warm = 0
			}
			eng := img.Acquire(Options{CollectReports: true})
			engines[w] = eng
			for i := warm; i < start; i++ {
				if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
					return
				}
				eng.Step(int64(i), input[i])
			}
			eng.ClearReports() // warm-up reports belong to the previous chunk
			for i := start; i < end; i++ {
				if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
					return
				}
				eng.Step(int64(i), input[i])
			}
		}(w, start, end)
	}
	wg.Wait()
	chunks := make([][]Report, 0, workers)
	for _, eng := range engines {
		if eng != nil {
			chunks = append(chunks, eng.Reports())
		}
	}
	all := mergeSortedReports(chunks)
	for _, eng := range engines {
		if eng != nil {
			eng.Release()
		}
	}
	if cancelled(ctx) {
		return all, ctx.Err()
	}
	return all, nil
}

// reportLess orders reports by (Pos, State) — the canonical stream order.
func reportLess(a, b Report) bool {
	return a.Pos < b.Pos || (a.Pos == b.Pos && a.State < b.State)
}

// mergeSortedReports merges per-chunk report slices — each already sorted
// by (Pos, State), courtesy of the engine's canonical per-cycle order —
// into one sorted slice. Chunks cover disjoint ascending position ranges,
// so the common case degenerates to concatenation; a k-way merge handles
// any overlap. The inputs are not modified.
func mergeSortedReports(chunks [][]Report) []Report {
	var parts [][]Report
	total := 0
	for _, c := range chunks {
		if len(c) > 0 {
			parts = append(parts, c)
			total += len(c)
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]Report, 0, total)
	ordered := true
	for i := 1; i < len(parts); i++ {
		last := parts[i-1][len(parts[i-1])-1]
		if reportLess(parts[i][0], last) {
			ordered = false
			break
		}
	}
	if ordered {
		for _, c := range parts {
			out = append(out, c...)
		}
		return out
	}
	// General k-way merge; k is the worker count, so a linear head scan
	// beats heap bookkeeping.
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, c := range parts {
			if idx[i] >= len(c) {
				continue
			}
			if best < 0 || reportLess(c[idx[i]], parts[best][idx[best]]) {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}
