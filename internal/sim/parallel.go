package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sparseap/internal/automata"
	"sparseap/internal/graph"
)

// Parallel input-stream execution, after the Parallel Automata Processor
// idea the paper cites as a driver of application growth: the input is cut
// into chunks processed concurrently, and each chunk is preceded by a
// warm-up overlap long enough that any match ending inside the chunk has
// its whole enabling history replayed. Warm-up reports are discarded (the
// previous chunk owns them).
//
// For an acyclic network the longest enabling chain is the maximum
// topological order, so overlap = MaxTopo is exact. Cycles make the
// required history unbounded; such networks are rejected unless the caller
// supplies an explicit overlap and accepts the approximation (the
// hardware proposal solves this with connected-component enumeration
// instead).

// ParallelOptions configures ParallelRun.
type ParallelOptions struct {
	// Workers is the number of concurrent chunks (default 4).
	Workers int
	// Overlap is the warm-up length; 0 means the exact acyclic bound
	// (maximum topological order across NFAs).
	Overlap int
	// AllowCycles accepts networks with cycles, making the result an
	// approximation bounded by Overlap.
	AllowCycles bool
}

// ErrCyclic is returned for cyclic networks without AllowCycles.
var ErrCyclic = fmt.Errorf("sim: network has cycles; parallel overlap is only exact for DAGs (set AllowCycles to approximate)")

// ParallelRun executes net over input with chunked parallelism and returns
// all reports sorted by position. Networks containing start-of-data states
// are rejected: their matches are anchored to position 0 and cannot be
// re-derived inside a chunk.
func ParallelRun(net *automata.Network, input []byte, opts ParallelOptions) ([]Report, error) {
	return ParallelRunContext(context.Background(), net, input, opts)
}

// ParallelRunContext is ParallelRun with cancellation: every worker polls
// ctx and stops early when it fires. On cancellation the reports gathered
// so far (a valid partial prefix of each chunk) are returned together with
// ctx.Err().
func ParallelRunContext(ctx context.Context, net *automata.Network, input []byte, opts ParallelOptions) ([]Report, error) {
	for s := range net.States {
		if net.States[s].Start == automata.StartOfData {
			return nil, fmt.Errorf("sim: start-of-data networks cannot run in parallel chunks")
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	topo := graph.TopoOrder(net)
	cyclic := false
	for c, size := range topo.SCC.Size {
		if size > 1 {
			cyclic = true
			break
		}
		_ = c
	}
	if !cyclic { // self-loops are SCCs of size 1; detect them separately
	selfLoop:
		for u := range net.States {
			for _, v := range net.States[u].Succ {
				if int(v) == u {
					cyclic = true
					break selfLoop
				}
			}
		}
	}
	overlap := opts.Overlap
	if overlap == 0 {
		if cyclic && !opts.AllowCycles {
			return nil, ErrCyclic
		}
		maxTopo := int32(0)
		for _, m := range topo.MaxPerNFA {
			if m > maxTopo {
				maxTopo = m
			}
		}
		overlap = int(maxTopo)
	} else if cyclic && !opts.AllowCycles {
		return nil, ErrCyclic
	}

	if workers > len(input) {
		workers = len(input)
	}
	if workers <= 1 {
		res, err := RunContext(ctx, net, input, Options{CollectReports: true})
		return res.Reports, err
	}
	chunk := (len(input) + workers - 1) / workers
	results := make([][]Report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > len(input) {
			end = len(input)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			warm := start - overlap
			if warm < 0 {
				warm = 0
			}
			eng := NewEngine(net, Options{})
			var out []Report
			eng.OnReport = func(pos int64, s automata.StateID) {
				if pos >= int64(start) {
					out = append(out, Report{Pos: pos, State: s})
				}
			}
			for i := warm; i < end; i++ {
				if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
					break
				}
				eng.Step(int64(i), input[i])
			}
			results[w] = out
		}(w, start, end)
	}
	wg.Wait()
	if cancelled(ctx) {
		var partial []Report
		for _, r := range results {
			partial = append(partial, r...)
		}
		sort.Slice(partial, func(a, b int) bool {
			if partial[a].Pos != partial[b].Pos {
				return partial[a].Pos < partial[b].Pos
			}
			return partial[a].State < partial[b].State
		})
		return partial, ctx.Err()
	}
	var all []Report
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Pos != all[b].Pos {
			return all[a].Pos < all[b].Pos
		}
		return all[a].State < all[b].State
	})
	return all, nil
}
