//go:build race

package sim

// raceEnabled reports whether the race detector instrumented this build.
// sync.Pool intentionally drops a fraction of Puts under the detector, so
// steady-state zero-alloc assertions over pool round-trips don't hold.
const raceEnabled = true
