package sim

import (
	"math/rand"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// figure2 builds the paper's Figure 2 NFA accepting a((bc)|(cd)+)f.
// States: S1=a(start) S2=b S3=c S4=c S5=d S6=f(report).
func figure2() *automata.Network {
	m := automata.NewNFA()
	s1 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	s2 := m.Add(symset.Single('b'), automata.StartNone, false)
	s3 := m.Add(symset.Single('c'), automata.StartNone, false)
	s4 := m.Add(symset.Single('c'), automata.StartNone, false)
	s5 := m.Add(symset.Single('d'), automata.StartNone, false)
	s6 := m.Add(symset.Single('f'), automata.StartNone, true)
	m.Connect(s1, s2)
	m.Connect(s1, s4)
	m.Connect(s2, s3)
	m.Connect(s3, s6)
	m.Connect(s4, s5)
	m.Connect(s5, s4) // (cd)+ loop
	m.Connect(s5, s6)
	return automata.NewNetwork(m)
}

func TestFigure2MatchABCF(t *testing.T) {
	res := Run(figure2(), []byte("abcf"), Options{CollectReports: true, TrackEnabled: true})
	if res.NumReports != 1 {
		t.Fatalf("NumReports = %d, want 1", res.NumReports)
	}
	r := res.Reports[0]
	if r.Pos != 3 || r.State != 5 {
		t.Fatalf("report = %+v, want pos 3 state 5", r)
	}
	// Hot states: S1 (start), S2,S4 (after a), S3 (after b), S6 (after c).
	// S5 is never enabled: S4 matched 'c' only at pos 1? No: S4 enabled at
	// pos 1 with symbol 'b' -> no match; so S5 stays cold... but S3 matched
	// 'c' at pos 2 enabling S6. Check exact set.
	want := map[int]bool{0: true, 1: true, 2: true, 3: true, 5: true}
	for s := 0; s < 6; s++ {
		if res.EverEnabled.Get(s) != want[s] {
			t.Errorf("EverEnabled[%d] = %v, want %v", s, res.EverEnabled.Get(s), want[s])
		}
	}
}

func TestFigure2MatchACDCDF(t *testing.T) {
	res := Run(figure2(), []byte("acdcdf"), Options{CollectReports: true})
	if res.NumReports != 1 {
		t.Fatalf("NumReports = %d, want 1", res.NumReports)
	}
	if res.Reports[0].Pos != 5 {
		t.Fatalf("report pos = %d, want 5", res.Reports[0].Pos)
	}
}

func TestFigure2NoMatch(t *testing.T) {
	res := Run(figure2(), []byte("abdf"), Options{CollectReports: true})
	if res.NumReports != 0 {
		t.Fatalf("NumReports = %d, want 0", res.NumReports)
	}
}

func TestAllInputStartMatchesEveryOccurrence(t *testing.T) {
	// Single reporting start state accepting 'x': reports at every x.
	m := automata.NewNFA()
	m.Add(symset.Single('x'), automata.StartAllInput, true)
	net := automata.NewNetwork(m)
	res := Run(net, []byte("xaxxbx"), Options{CollectReports: true})
	if res.NumReports != 4 {
		t.Fatalf("NumReports = %d, want 4", res.NumReports)
	}
	wantPos := []int64{0, 2, 3, 5}
	for i, r := range res.Reports {
		if r.Pos != wantPos[i] {
			t.Errorf("report %d pos = %d, want %d", i, r.Pos, wantPos[i])
		}
	}
}

func TestStartOfDataOnlyPositionZero(t *testing.T) {
	// start-of-data 'a' -> report 'b': matches only "ab" at the start.
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartOfData, false)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, b)
	net := automata.NewNetwork(m)
	if got := Run(net, []byte("abab"), Options{}).NumReports; got != 1 {
		t.Fatalf("reports = %d, want 1", got)
	}
	if got := Run(net, []byte("xaba"), Options{}).NumReports; got != 0 {
		t.Fatalf("reports = %d, want 0 (not anchored at 0)", got)
	}
}

func TestSelfLoopDotStar(t *testing.T) {
	// a .* b : a(start) -> loop(*) -> b(report), loop self-loops.
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	loop := m.Add(symset.All(), automata.StartNone, false)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, loop)
	m.Connect(loop, loop)
	m.Connect(loop, b)
	net := automata.NewNetwork(m)
	res := Run(net, []byte("a..b..b"), Options{CollectReports: true})
	// b matchable at every b after first a: positions 3 and 6.
	if res.NumReports != 2 {
		t.Fatalf("reports = %d, want 2", res.NumReports)
	}
}

func TestEngineResetClearsState(t *testing.T) {
	net := figure2()
	e := NewEngine(net, Options{CollectReports: true, TrackEnabled: true})
	for i, b := range []byte("abcf") {
		e.Step(int64(i), b)
	}
	if e.NumReports() != 1 {
		t.Fatalf("first run reports = %d", e.NumReports())
	}
	e.Reset()
	if e.NumReports() != 0 || len(e.Reports()) != 0 {
		t.Error("Reset did not clear reports")
	}
	if !e.FrontierEmpty() {
		t.Error("Reset left frontier nonempty")
	}
	for i, b := range []byte("abcf") {
		e.Step(int64(i), b)
	}
	if e.NumReports() != 1 {
		t.Fatalf("second run reports = %d", e.NumReports())
	}
}

func TestEnableStateInjection(t *testing.T) {
	// Network with no starts reachable: inject enable manually.
	m := automata.NewNFA()
	a := m.Add(symset.Single('z'), automata.StartAllInput, false) // unrelated start
	c := m.Add(symset.Single('c'), automata.StartNone, false)
	d := m.Add(symset.Single('d'), automata.StartNone, true)
	m.Connect(a, c)
	m.Connect(c, d)
	net := automata.NewNetwork(m)
	e := NewEngine(net, Options{CollectReports: true})
	e.EnableState(1) // enable 'c' state for position 0
	input := []byte("cd")
	for i, b := range input {
		e.Step(int64(i), b)
	}
	if e.NumReports() != 1 {
		t.Fatalf("reports = %d, want 1", e.NumReports())
	}
	if e.Reports()[0].Pos != 1 {
		t.Fatalf("report pos = %d, want 1", e.Reports()[0].Pos)
	}
}

func TestOnReportCallback(t *testing.T) {
	var got []Report
	e := NewEngine(figure2(), Options{})
	e.OnReport = func(pos int64, s automata.StateID) {
		got = append(got, Report{Pos: pos, State: s})
	}
	for i, b := range []byte("abcf") {
		e.Step(int64(i), b)
	}
	if len(got) != 1 || got[0].Pos != 3 {
		t.Fatalf("callback reports = %+v", got)
	}
	if len(e.Reports()) != 0 {
		t.Error("reports also collected despite callback")
	}
}

func TestHasAllInputStarts(t *testing.T) {
	if !NewEngine(figure2(), Options{}).HasAllInputStarts() {
		t.Error("figure2 should have all-input starts")
	}
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartOfData, false)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, b)
	if NewEngine(automata.NewNetwork(m), Options{}).HasAllInputStarts() {
		t.Error("start-of-data-only network reports all-input starts")
	}
}

// naiveRun is an O(states × symbols) reference simulator used as an oracle.
func naiveRun(net *automata.Network, input []byte) []Report {
	enabled := make([]bool, net.Len())
	var reports []Report
	for i := range input {
		next := make([]bool, net.Len())
		for s := 0; s < net.Len(); s++ {
			en := enabled[s]
			switch net.States[s].Start {
			case automata.StartAllInput:
				en = true
			case automata.StartOfData:
				if i == 0 {
					en = true
				}
			}
			if !en || !net.States[s].Match.Contains(input[i]) {
				continue
			}
			if net.States[s].Report {
				reports = append(reports, Report{Pos: int64(i), State: automata.StateID(s)})
			}
			for _, v := range net.States[s].Succ {
				next[v] = true
			}
		}
		enabled = next
	}
	return reports
}

// Property: the optimized engine agrees with the naive reference simulator
// on random networks and inputs.
func TestPropAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []byte("abcd")
	for trial := 0; trial < 60; trial++ {
		nStates := 2 + r.Intn(12)
		m := automata.NewNFA()
		for s := 0; s < nStates; s++ {
			var set symset.Set
			for k := 0; k <= r.Intn(3); k++ {
				set.Add(alphabet[r.Intn(len(alphabet))])
			}
			start := automata.StartNone
			switch r.Intn(5) {
			case 0:
				start = automata.StartAllInput
			case 1:
				start = automata.StartOfData
			}
			m.Add(set, start, r.Intn(3) == 0)
		}
		// Ensure at least one start.
		if m.States[0].Start == automata.StartNone {
			m.States[0].Start = automata.StartAllInput
		}
		nEdges := r.Intn(2 * nStates)
		for k := 0; k < nEdges; k++ {
			m.Connect(automata.StateID(r.Intn(nStates)), automata.StateID(r.Intn(nStates)))
		}
		m.Dedup()
		net := automata.NewNetwork(m)
		input := make([]byte, 1+r.Intn(40))
		for i := range input {
			input[i] = alphabet[r.Intn(len(alphabet))]
		}
		got := Run(net, input, Options{CollectReports: true}).Reports
		want := naiveRun(net, input)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d reports, want %d", trial, len(got), len(want))
		}
		// Compare as sets keyed by (pos,state); order within a position may
		// differ between the two simulators.
		mk := func(rs []Report) map[Report]int {
			m := map[Report]int{}
			for _, r := range rs {
				m[r]++
			}
			return m
		}
		gm, wm := mk(got), mk(want)
		for k, v := range wm {
			if gm[k] != v {
				t.Fatalf("trial %d: report %+v count %d, want %d", trial, k, gm[k], v)
			}
		}
	}
}

// Property: ever-enabled under a prefix is a subset of ever-enabled under
// the full input (hot-set monotonicity, invariant 7 in DESIGN.md).
func TestPropHotSetMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	net := figure2()
	for trial := 0; trial < 40; trial++ {
		input := make([]byte, 2+r.Intn(60))
		alphabet := []byte("abcdf")
		for i := range input {
			input[i] = alphabet[r.Intn(len(alphabet))]
		}
		cut := 1 + r.Intn(len(input)-1)
		hotPrefix := HotStates(net, input[:cut])
		hotFull := HotStates(net, input)
		hotPrefix.ForEach(func(i int) {
			if !hotFull.Get(i) {
				t.Fatalf("trial %d: state %d hot under prefix but not full input", trial, i)
			}
		})
	}
}
