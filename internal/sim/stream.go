package sim

import "sparseap/internal/automata"

// Streamer adapts an Engine to incremental io.Writer-style feeding, so a
// matcher can sit inside a network pipeline and consume data as it
// arrives. The position counter persists across Write calls.
type Streamer struct {
	eng *Engine
	pos int64
	// OnReport receives each match as it happens.
	OnReport func(pos int64, s automata.StateID)
}

// NewStreamer builds a streaming matcher over net.
func NewStreamer(net *automata.Network) *Streamer {
	st := &Streamer{}
	st.eng = NewEngine(net, Options{})
	st.eng.OnReport = func(pos int64, s automata.StateID) {
		if st.OnReport != nil {
			st.OnReport(pos, s)
		}
	}
	return st
}

// Write consumes p; it never fails (the signature matches io.Writer so a
// Streamer can terminate io.Copy / MultiWriter plumbing).
func (st *Streamer) Write(p []byte) (int, error) {
	for _, b := range p {
		st.eng.Step(st.pos, b)
		st.pos++
	}
	return len(p), nil
}

// Pos returns the number of symbols consumed so far.
func (st *Streamer) Pos() int64 { return st.pos }

// Reset rewinds the matcher to position 0 with no enabled states beyond
// the start states.
func (st *Streamer) Reset() {
	st.eng.Reset()
	st.pos = 0
}
