package sim

import (
	"context"
	"fmt"

	"sparseap/internal/automata"
)

// DefaultStreamBuffer is the report-buffer cap a Streamer uses when
// StreamerOptions.BufferCap is zero: 1<<20 reports (16 MiB at 16 bytes
// per report). A long-lived stream that neither sets OnReport nor drains
// TakeReports hits ErrReportOverflow at this bound instead of growing
// memory without limit.
const DefaultStreamBuffer = 1 << 20

// ErrReportOverflow is returned by Streamer.Write when the internal report
// buffer reaches its cap. Drain with TakeReports, raise BufferCap, or set
// OnReport to consume matches as they happen.
var ErrReportOverflow = fmt.Errorf("sim: streamer report buffer full (drain TakeReports, raise BufferCap, or set OnReport)")

// StreamerOptions configures NewStreamerOpts.
type StreamerOptions struct {
	// BufferCap caps the internal report buffer used while OnReport is
	// nil. 0 means DefaultStreamBuffer; negative disables buffering
	// entirely (reports are counted but not retained).
	BufferCap int
	// Context, when non-nil, cancels in-flight Write calls: Write returns
	// the symbols consumed so far and the context's error.
	Context context.Context
}

// Streamer adapts an Engine to incremental io.Writer-style feeding, so a
// matcher can sit inside a network pipeline and consume data as it
// arrives. The position counter persists across Write calls.
//
// Matches are delivered through OnReport when set; otherwise they
// accumulate in a bounded internal buffer (see StreamerOptions.BufferCap
// and DefaultStreamBuffer) read with TakeReports. When the buffer is full
// Write stops at the overflowing symbol and returns ErrReportOverflow —
// memory use is bounded no matter how long the stream lives.
type Streamer struct {
	eng *Engine
	pos int64
	ctx context.Context
	cap int
	buf []Report
	// OnReport receives each match as it happens; setting it bypasses the
	// internal buffer.
	OnReport func(pos int64, s automata.StateID)
	overflow bool
}

// NewStreamer builds a streaming matcher over net with default options.
func NewStreamer(net *automata.Network) *Streamer {
	return NewStreamerOpts(net, StreamerOptions{})
}

// NewStreamerOpts builds a streaming matcher with explicit buffering and
// cancellation behaviour.
func NewStreamerOpts(net *automata.Network, opts StreamerOptions) *Streamer {
	st := &Streamer{ctx: opts.Context}
	switch {
	case opts.BufferCap < 0:
		st.cap = 0
	case opts.BufferCap == 0:
		st.cap = DefaultStreamBuffer
	default:
		st.cap = opts.BufferCap
	}
	st.eng = NewEngine(net, Options{})
	st.eng.OnReport = func(pos int64, s automata.StateID) {
		if st.OnReport != nil {
			st.OnReport(pos, s)
			return
		}
		if len(st.buf) < st.cap {
			st.buf = append(st.buf, Report{Pos: pos, State: s})
		} else if st.cap > 0 {
			st.overflow = true
		}
	}
	return st
}

// Write consumes p, stopping early on buffer overflow or context
// cancellation; it returns how many bytes were consumed and the
// corresponding error (nil on a full write, so a Streamer can terminate
// io.Copy / MultiWriter plumbing in the happy path).
func (st *Streamer) Write(p []byte) (int, error) {
	for i, b := range p {
		if st.ctx != nil && st.pos&(cancelCheckInterval-1) == 0 && cancelled(st.ctx) {
			return i, st.ctx.Err()
		}
		st.eng.Step(st.pos, b)
		st.pos++
		if st.overflow {
			// The overflowing symbol was fully processed; reports beyond
			// the cap for it are lost, so surface the error at once.
			st.overflow = false
			return i + 1, ErrReportOverflow
		}
	}
	return len(p), nil
}

// SetContext replaces the cancellation context polled by Write. A serving
// session outlives any single request: each reconnect restores the
// matcher and rebinds it to the new request's deadline with SetContext
// before feeding more input. A nil ctx disables cancellation polling.
func (st *Streamer) SetContext(ctx context.Context) { st.ctx = ctx }

// TakeReports returns the buffered reports and resets the buffer, freeing
// its capacity for further matches.
func (st *Streamer) TakeReports() []Report {
	out := st.buf
	st.buf = nil
	return out
}

// Buffered returns the number of reports currently held.
func (st *Streamer) Buffered() int { return len(st.buf) }

// NumReports returns the total number of reports emitted since the last
// Reset, whether buffered, delivered to OnReport, or lost to overflow
// handling.
func (st *Streamer) NumReports() int64 { return st.eng.NumReports() }

// Pos returns the number of symbols consumed so far.
func (st *Streamer) Pos() int64 { return st.pos }

// Reset rewinds the matcher to position 0 with no enabled states beyond
// the start states and an empty report buffer.
func (st *Streamer) Reset() {
	st.eng.Reset()
	st.pos = 0
	st.buf = nil
	st.overflow = false
}
