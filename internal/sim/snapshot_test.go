package sim

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/checkpoint"
	"sparseap/internal/symset"
)

// fig2Input synthesizes a deterministic stream over Figure 2's alphabet
// dense enough in matches to exercise report bookkeeping.
func fig2Input(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	alphabet := []byte("abcdf")
	in := make([]byte, n)
	for i := range in {
		in[i] = alphabet[r.Intn(len(alphabet))]
	}
	return in
}

func reportsMatch(a, b []Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotRestoreMidRunEquivalence(t *testing.T) {
	net := figure2()
	input := fig2Input(4096, 7)
	for _, track := range []bool{false, true} {
		opts := Options{CollectReports: true, TrackEnabled: track}
		want := Run(net, input, opts)

		// Run a prefix, snapshot, then restore into a second engine and
		// stream the suffix; together they must replay the whole run.
		cut := int64(len(input) / 3)
		e1 := NewEngine(net, opts)
		for i := int64(0); i < cut; i++ {
			e1.Step(i, input[i])
		}
		snap := e1.Snapshot(nil, cut)
		prefix := append([]Report(nil), e1.Reports()...)

		e2 := NewEngine(net, opts)
		if err := e2.Restore(snap); err != nil {
			t.Fatalf("track=%v: Restore: %v", track, err)
		}
		for i := cut; i < int64(len(input)); i++ {
			e2.Step(i, input[i])
		}
		got := append(prefix, e2.Reports()...)
		if !reportsMatch(got, want.Reports) {
			t.Fatalf("track=%v: restored stream diverged: %d vs %d reports", track, len(got), len(want.Reports))
		}
		if e2.NumReports() != want.NumReports {
			t.Fatalf("track=%v: NumReports = %d, want %d", track, e2.NumReports(), want.NumReports)
		}
		if e2.DenseSteps()+e2.SparseSteps() != int64(len(input)) {
			t.Fatalf("track=%v: kernel counters lost: dense %d + sparse %d != %d",
				track, e2.DenseSteps(), e2.SparseSteps(), len(input))
		}
		if track && !e2.EverEnabled().Equal(want.EverEnabled) {
			t.Fatalf("track=%v: ever-enabled vector diverged", track)
		}
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	net := figure2()
	input := fig2Input(512, 3)
	e := NewEngine(net, Options{CollectReports: true, TrackEnabled: true})
	for i := int64(0); i < 300; i++ {
		e.Step(i, input[i])
	}
	snap := e.Snapshot(nil, 300)

	var enc checkpoint.Enc
	snap.Encode(&enc)
	var back Snapshot
	d := checkpoint.NewDec(enc.Bytes())
	if err := back.Decode(d); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
	e2 := NewEngine(net, Options{CollectReports: true, TrackEnabled: true})
	if err := e2.Restore(&back); err != nil {
		t.Fatalf("Restore decoded snapshot: %v", err)
	}
	for i := int64(300); i < int64(len(input)); i++ {
		e2.Step(i, input[i])
	}
	want := Run(net, input, Options{CollectReports: true, TrackEnabled: true})
	if e2.NumReports() != want.NumReports {
		t.Fatalf("NumReports after decoded restore = %d, want %d", e2.NumReports(), want.NumReports)
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	net := figure2()
	e := NewEngine(net, Options{})
	snap := e.Snapshot(nil, 0)

	wrong := *snap
	wrong.N = snap.N + 1
	if err := e.Restore(&wrong); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("state-count mismatch: err = %v", err)
	}
	// Tracking mismatch: snapshot without ever, engine with it.
	tracked := NewEngine(net, Options{TrackEnabled: true})
	if err := tracked.Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("tracking mismatch: err = %v", err)
	}
	// Tampered popcount must be caught.
	bad := e.Snapshot(nil, 0)
	bad.FrontierLen++
	if err := e.Restore(bad); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("popcount mismatch: err = %v", err)
	}
}

// TestRunCheckpointedCrashResumeEquivalence kills the run at several
// seeded positions, resumes from the store each time, and requires the
// final stream to be bit-identical to an uninterrupted run with zero
// duplicate reports.
func TestRunCheckpointedCrashResumeEquivalence(t *testing.T) {
	net := figure2()
	input := fig2Input(4096, 11)
	opts := Options{CollectReports: true, TrackEnabled: true}
	want := Run(net, input, opts)

	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	kills := []int64{63, 500, 1777, 2900, 4000}
	killed := 0
	ck := &checkpoint.Runner{Store: store, Name: "run", Every: 128,
		CrashAt: func(pos int64) bool {
			if killed < len(kills) && pos == kills[killed] {
				killed++
				return true
			}
			return false
		}}

	var res *CheckpointedResult
	for attempt := 0; ; attempt++ {
		if attempt > len(kills)+1 {
			t.Fatalf("did not converge after %d attempts", attempt)
		}
		res, err = RunCheckpointedContext(context.Background(), net, input, opts, ck)
		if err == nil {
			break
		}
		if !errors.Is(err, checkpoint.ErrCrashInjected) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
	}
	if killed != len(kills) {
		t.Fatalf("only %d of %d kill points fired", killed, len(kills))
	}
	if !res.Resumed {
		t.Fatal("final attempt did not resume from the store")
	}
	if !reportsMatch(res.Reports, want.Reports) {
		t.Fatalf("resumed stream diverged: %d vs %d reports", len(res.Reports), len(want.Reports))
	}
	if res.NumReports != want.NumReports {
		t.Fatalf("NumReports = %d, want %d (duplicates or losses across resume)", res.NumReports, want.NumReports)
	}
	if !res.EverEnabled.Equal(want.EverEnabled) {
		t.Fatal("ever-enabled vector diverged across resumes")
	}
}

// TestRunCheckpointedRecoversFromCorruptLatest corrupts the newest slot
// after a crash; the resume must fall back to the previous good
// checkpoint and still reproduce the reference stream exactly.
func TestRunCheckpointedRecoversFromCorruptLatest(t *testing.T) {
	net := figure2()
	input := fig2Input(2048, 5)
	opts := Options{CollectReports: true}
	want := Run(net, input, opts)

	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	ck := &checkpoint.Runner{Store: store, Name: "run", Every: 256,
		CrashAt: func(pos int64) bool {
			if !crashed && pos == 1100 {
				crashed = true
				return true
			}
			return false
		}}
	if _, err := RunCheckpointedContext(context.Background(), net, input, opts, ck); !errors.Is(err, checkpoint.ErrCrashInjected) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	// Flip a payload byte in the newest slot (run.ckpt); run.ckpt.prev
	// holds the save before it.
	path := filepath.Join(dir, "run.ckpt")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := RunCheckpointedContext(context.Background(), net, input, opts, ck)
	if err != nil {
		t.Fatalf("resume after corruption: %v", err)
	}
	if !res.Resumed || !res.Recovered {
		t.Fatalf("Resumed=%v Recovered=%v, want both true", res.Resumed, res.Recovered)
	}
	if !reportsMatch(res.Reports, want.Reports) {
		t.Fatalf("recovered stream diverged: %d vs %d reports", len(res.Reports), len(want.Reports))
	}
}

// TestRunCheckpointedDoneShortCircuit re-invokes a completed run: the
// stored done-state must rebuild the result without re-executing.
func TestRunCheckpointedDoneShortCircuit(t *testing.T) {
	net := figure2()
	input := fig2Input(1024, 9)
	opts := Options{CollectReports: true}
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ck := &checkpoint.Runner{Store: store, Name: "run", Every: 128}
	first, err := RunCheckpointedContext(context.Background(), net, input, opts, ck)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunCheckpointedContext(context.Background(), net, input, opts, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Resumed || again.ResumePos != int64(len(input)) {
		t.Fatalf("Resumed=%v ResumePos=%d, want short-circuit at %d", again.Resumed, again.ResumePos, len(input))
	}
	if again.Saves != 0 {
		t.Fatalf("done-state replay persisted %d saves, want 0", again.Saves)
	}
	if !reportsMatch(again.Reports, first.Reports) {
		t.Fatal("replayed result diverged from the original")
	}
}

// TestReleaseScrubsRunHooks is the pooled-engine hygiene regression: a
// recycled engine must not replay the previous run's fault plan or
// deliver reports to a dead consumer.
func TestReleaseScrubsRunHooks(t *testing.T) {
	net := figure2()
	e := AcquireEngine(net, Options{CollectReports: true, TrackEnabled: true})
	e.OnReport = func(pos int64, s automata.StateID) {}
	e.Flips = func(pos int64) (automata.StateID, bool) { return 0, true }
	input := fig2Input(256, 1)
	for i := int64(0); i < int64(len(input)); i++ {
		e.Step(i, input[i])
	}
	if e.ever == nil {
		t.Fatal("precondition: tracking engine has no ever vector")
	}
	e.Release()
	if e.OnReport != nil || e.Flips != nil || e.ever != nil {
		t.Fatalf("Release left hooks: OnReport=%v Flips=%v ever=%v",
			e.OnReport != nil, e.Flips != nil, e.ever != nil)
	}
	if e.numReports != 0 || len(e.reports) != 0 {
		t.Fatalf("Release left report state: numReports=%d len=%d", e.numReports, len(e.reports))
	}

	// Functional check: a fresh acquisition (possibly the same pooled
	// engine) with no Flips must behave fault-free under RunCheckpointed.
	want := Run(net, input, Options{CollectReports: true})
	e2 := AcquireEngine(net, Options{CollectReports: true})
	defer e2.Release()
	res, err := e2.RunCheckpointed(context.Background(), input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsMatch(res.Reports, want.Reports) {
		t.Fatal("recycled engine replayed stale run state")
	}
}

// TestReleaseCapsPooledReportCapacity: a report-dense run must not pin a
// huge backing array in the pool.
func TestReleaseCapsPooledReportCapacity(t *testing.T) {
	net := figure2()
	e := AcquireEngine(net, Options{CollectReports: true})
	e.reports = make([]Report, 0, maxPooledReportCap+1)
	e.Release()
	if e.reports != nil {
		t.Fatalf("oversized report buffer retained: cap %d", cap(e.reports))
	}
	e = AcquireEngine(net, Options{CollectReports: true})
	e.reports = make([]Report, 5, maxPooledReportCap)
	e.Release()
	if cap(e.reports) != maxPooledReportCap || len(e.reports) != 0 {
		t.Fatalf("in-bounds buffer not kept empty: len %d cap %d", len(e.reports), cap(e.reports))
	}
}

func TestStreamerResetAfterCancellation(t *testing.T) {
	net := figure2()
	// Long enough that the resumed Write crosses a cancellation poll
	// (every cancelCheckInterval symbols of total stream position).
	input := fig2Input(2*cancelCheckInterval, 13)
	want := Run(net, input, Options{CollectReports: true})

	ctx, cancel := context.WithCancel(context.Background())
	st := NewStreamerOpts(net, StreamerOptions{Context: ctx})
	// Feed a chunk, then cancel mid-stream: the next Write must stop at a
	// cancellation poll with the context error.
	if _, err := st.Write(input[:1000]); err != nil {
		t.Fatal(err)
	}
	cancel()
	n, err := st.Write(input[1000:])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Write: n=%d err=%v", n, err)
	}
	if n == len(input)-1000 {
		t.Fatal("cancelled Write consumed the whole chunk")
	}
	// Reset rewinds the matcher state completely...
	st.Reset()
	if st.Pos() != 0 || st.Buffered() != 0 || st.NumReports() != 0 {
		t.Fatalf("Reset left state: pos=%d buf=%d num=%d", st.Pos(), st.Buffered(), st.NumReports())
	}
	// ...but the construction-scoped context stays cancelled: a further
	// Write must refuse at the first poll rather than half-run.
	if n, err := st.Write(input); !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("Write on cancelled streamer: n=%d err=%v", n, err)
	}
	// A replacement streamer over the same network replays the stream
	// exactly, chunked arbitrarily (including an empty chunk).
	st2 := NewStreamer(net)
	for _, chunk := range [][]byte{input[:700], input[700:700], input[700:]} {
		if _, err := st2.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if !reportsMatch(st2.TakeReports(), want.Reports) {
		t.Fatal("replacement stream diverged from a fresh run")
	}
}

func TestStreamerSnapshotRestoreRoundTrip(t *testing.T) {
	net := figure2()
	input := fig2Input(2048, 17)
	want := Run(net, input, Options{CollectReports: true})

	st := NewStreamer(net)
	if _, err := st.Write(input[:900]); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot(nil)
	if snap.Pos != 900 {
		t.Fatalf("snapshot pos = %d, want 900", snap.Pos)
	}
	prefix := st.TakeReports()

	// A different streamer over the same network picks up mid-stream.
	st2 := NewStreamer(net)
	if err := st2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if st2.Pos() != 900 || st2.Buffered() != 0 {
		t.Fatalf("restored pos=%d buf=%d", st2.Pos(), st2.Buffered())
	}
	if _, err := st2.Write(input[900:]); err != nil {
		t.Fatal(err)
	}
	got := append(prefix, st2.TakeReports()...)
	if !reportsMatch(got, want.Reports) {
		t.Fatalf("restored stream diverged: %d vs %d reports", len(got), len(want.Reports))
	}
	if st2.NumReports() != want.NumReports {
		t.Fatalf("NumReports = %d, want %d", st2.NumReports(), want.NumReports)
	}

	// Reset after a restore must return to a genuinely fresh matcher.
	st2.Reset()
	if _, err := st2.Write(input); err != nil {
		t.Fatal(err)
	}
	if !reportsMatch(st2.TakeReports(), want.Reports) {
		t.Fatal("post-restore Reset did not fully rewind")
	}
}

// TestStreamerBoundedBufferBackpressure exercises the overflow contract:
// Write stops at the overflowing symbol, the drained prefix plus the
// post-drain stream covers everything except reports beyond the cap at
// the overflow point, and NumReports still counts them all.
func TestStreamerBoundedBufferBackpressure(t *testing.T) {
	// One report per 'x' makes the arithmetic exact.
	m := automata.NewNFA()
	m.Add(symset.Single('x'), automata.StartAllInput, true)
	net := automata.NewNetwork(m)
	input := []byte("xxxxx")

	st := NewStreamerOpts(net, StreamerOptions{BufferCap: 2})
	n, err := st.Write(input)
	if !errors.Is(err, ErrReportOverflow) {
		t.Fatalf("Write = %d, %v; want ErrReportOverflow", n, err)
	}
	if n != 3 {
		t.Fatalf("consumed %d symbols before overflow, want 3", n)
	}
	drained := st.TakeReports()
	if len(drained) != 2 {
		t.Fatalf("drained %d reports, want 2", len(drained))
	}
	// The overflowing symbol's report is documented as lost; the stream
	// resumes cleanly after a drain.
	if _, err := st.Write(input[n:]); err != nil {
		t.Fatal(err)
	}
	rest := st.TakeReports()
	if len(rest) != 2 {
		t.Fatalf("post-drain reports = %d, want 2", len(rest))
	}
	if st.NumReports() != 5 {
		t.Fatalf("NumReports = %d, want 5 (overflow must still count)", st.NumReports())
	}
}
