package sim

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// randomKernelNet builds a random network exercising every feature the
// kernels must agree on: self-loops, all-input starts, start-of-data
// starts, reporting states, and arbitrary (possibly cyclic) edges.
func randomKernelNet(r *rand.Rand) *automata.Network {
	nStates := 2 + r.Intn(20)
	m := automata.NewNFA()
	alphabet := []byte("abcd")
	for s := 0; s < nStates; s++ {
		var set symset.Set
		switch r.Intn(4) {
		case 0:
			set = symset.All()
		default:
			for k := 0; k <= r.Intn(3); k++ {
				set.Add(alphabet[r.Intn(len(alphabet))])
			}
		}
		start := automata.StartNone
		switch r.Intn(5) {
		case 0:
			start = automata.StartAllInput
		case 1:
			start = automata.StartOfData
		}
		m.Add(set, start, r.Intn(3) == 0)
	}
	if m.States[0].Start == automata.StartNone {
		m.States[0].Start = automata.StartAllInput
	}
	for k := 0; k < r.Intn(3*nStates); k++ {
		u := automata.StateID(r.Intn(nStates))
		v := automata.StateID(r.Intn(nStates))
		m.Connect(u, v) // u == v gives a self-loop
	}
	m.Dedup()
	return automata.NewNetwork(m)
}

// Property: the sparse-only, dense-only, and adaptive kernels produce
// identical report streams (same order, not just same multiset),
// identical ever-enabled sets, and identical report counts on randomized
// networks — and all agree with the naive reference simulator up to
// within-cycle order.
func TestPropKernelsIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	kernels := []Kernel{KernelSparse, KernelDense, KernelAuto}
	for trial := 0; trial < 80; trial++ {
		net := randomKernelNet(r)
		input := make([]byte, 1+r.Intn(120))
		alphabet := []byte("abcdx")
		for i := range input {
			input[i] = alphabet[r.Intn(len(alphabet))]
		}
		// A low threshold makes KernelAuto actually alternate between
		// passes on these small nets.
		threshold := 1 + r.Intn(4)
		results := make([]*Result, len(kernels))
		for ki, k := range kernels {
			results[ki] = Run(net, input, Options{
				CollectReports: true,
				TrackEnabled:   true,
				Kernel:         k,
				DenseThreshold: threshold,
			})
		}
		base := results[0]
		for ki, res := range results[1:] {
			if res.NumReports != base.NumReports {
				t.Fatalf("trial %d: %v reports %d, sparse %d",
					trial, kernels[ki+1], res.NumReports, base.NumReports)
			}
			if len(res.Reports) != len(base.Reports) {
				t.Fatalf("trial %d: %v collected %d, sparse %d",
					trial, kernels[ki+1], len(res.Reports), len(base.Reports))
			}
			for i := range res.Reports {
				if res.Reports[i] != base.Reports[i] {
					t.Fatalf("trial %d: %v report[%d] = %+v, sparse %+v",
						trial, kernels[ki+1], i, res.Reports[i], base.Reports[i])
				}
			}
			for s := 0; s < net.Len(); s++ {
				if res.EverEnabled.Get(s) != base.EverEnabled.Get(s) {
					t.Fatalf("trial %d: %v ever[%d] = %v, sparse %v",
						trial, kernels[ki+1], s, res.EverEnabled.Get(s), base.EverEnabled.Get(s))
				}
			}
		}
		// And the whole family agrees with the oracle as a multiset.
		want := naiveRun(net, input)
		if len(want) != len(base.Reports) {
			t.Fatalf("trial %d: engine %d reports, naive %d", trial, len(base.Reports), len(want))
		}
		counts := map[Report]int{}
		for _, rep := range want {
			counts[rep]++
		}
		for _, rep := range base.Reports {
			counts[rep]--
			if counts[rep] < 0 {
				t.Fatalf("trial %d: extra report %+v", trial, rep)
			}
		}
	}
}

// Reports must come out sorted by (Pos, State): positions ascend by
// construction and the canonical within-cycle order ascends by state.
func TestReportsCanonicallyOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		net := randomKernelNet(r)
		input := make([]byte, 1+r.Intn(100))
		for i := range input {
			input[i] = byte('a' + r.Intn(5))
		}
		for _, k := range []Kernel{KernelSparse, KernelDense, KernelAuto} {
			reps := Run(net, input, Options{CollectReports: true, Kernel: k, DenseThreshold: 2}).Reports
			for i := 1; i < len(reps); i++ {
				if reportLess(reps[i], reps[i-1]) {
					t.Fatalf("trial %d kernel %v: reports out of order at %d: %+v then %+v",
						trial, k, i, reps[i-1], reps[i])
				}
			}
		}
	}
}

// KernelAuto must actually use both passes when the frontier crosses the
// threshold, and the per-kernel step counters must account for every Step.
func TestAutoKernelSwitches(t *testing.T) {
	net := figure2()
	e := NewEngine(net, Options{Kernel: KernelAuto, DenseThreshold: 2})
	input := []byte("abcfacdcdf")
	for i, b := range input {
		e.Step(int64(i), b)
	}
	if e.DenseSteps()+e.SparseSteps() != int64(len(input)) {
		t.Fatalf("dense %d + sparse %d != %d steps", e.DenseSteps(), e.SparseSteps(), len(input))
	}
	if e.DenseSteps() == 0 || e.SparseSteps() == 0 {
		t.Fatalf("auto kernel never switched: dense %d, sparse %d", e.DenseSteps(), e.SparseSteps())
	}
}

// Engine.Step must not allocate in steady state, on any kernel.
func TestStepZeroAlloc(t *testing.T) {
	net := figure2()
	input := []byte("abcfacdcdfabcf")
	for _, k := range []Kernel{KernelSparse, KernelDense, KernelAuto} {
		e := AcquireEngine(net, Options{CollectReports: true, TrackEnabled: true, Kernel: k, DenseThreshold: 2})
		// Warm up: grow the frontier, report, and repBuf buffers to their
		// working size, then measure.
		for i, b := range input {
			e.Step(int64(i), b)
		}
		e.Reset()
		allocs := testing.AllocsPerRun(20, func() {
			e.Reset()
			for i, b := range input {
				e.Step(int64(i), b)
			}
		})
		e.Release()
		if allocs != 0 {
			t.Errorf("kernel %v: %v allocs per run, want 0", k, allocs)
		}
	}
}

// The pooled parallel runtime must not allocate engines in steady state:
// after a first call has populated the pool, repeat calls reuse them.
func TestParallelSteadyStateReusesEngines(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	net := randomDAGNet(r, 3)
	input := make([]byte, 4096)
	for i := range input {
		input[i] = byte('a' + r.Intn(4))
	}
	first, err := ParallelRun(net, input, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		got, err := ParallelRun(net, input, ParallelOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(first) {
			t.Fatalf("round %d: %d reports, first %d", round, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("round %d: report[%d] = %+v, first %+v", round, i, got[i], first[i])
			}
		}
	}
}

// Race coverage for the pooled runtime: concurrent ParallelRun, serial
// RunContext, and HotStatesContext over one shared network (hence one
// shared image and engine pool). Run under -race in scripts/check.sh.
func TestPooledRuntimeConcurrentUse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	net := randomDAGNet(r, 4)
	input := make([]byte, 8192)
	for i := range input {
		input[i] = byte('a' + r.Intn(4))
	}
	want := Run(net, input, Options{CollectReports: true}).Reports
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			got, err := ParallelRun(net, input, ParallelOptions{Workers: 3})
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(want) {
				t.Errorf("parallel: %d reports, want %d", len(got), len(want))
			}
		}()
		go func() {
			defer wg.Done()
			res, err := RunContext(context.Background(), net, input, Options{CollectReports: true})
			if err != nil {
				errs <- err
				return
			}
			if len(res.Reports) != len(want) {
				t.Errorf("serial: %d reports, want %d", len(res.Reports), len(want))
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := HotStatesContext(context.Background(), net, input); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHotStatesContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := figure2()
	input := make([]byte, 3*cancelCheckInterval)
	hot, err := HotStatesContext(ctx, net, input)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if hot == nil {
		t.Fatal("partial hot set is nil")
	}
	// All-input starts are hot by definition even in the partial set.
	if !hot.Get(0) {
		t.Error("all-input start not marked hot")
	}
}

func TestHotStatesMatchesTrackedRun(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		net := randomKernelNet(r)
		input := make([]byte, 1+r.Intn(200))
		for i := range input {
			input[i] = byte('a' + r.Intn(5))
		}
		hot := HotStates(net, input)
		res := Run(net, input, Options{TrackEnabled: true})
		for s := 0; s < net.Len(); s++ {
			if hot.Get(s) != res.EverEnabled.Get(s) {
				t.Fatalf("trial %d: HotStates[%d] = %v, Run says %v",
					trial, s, hot.Get(s), res.EverEnabled.Get(s))
			}
		}
	}
}

// A self-loop is the only cycle here: every SCC has size 1, so a
// condensation-size check alone would wrongly admit the network. The
// folded HasCycle check must reject it (regression for the former
// two-phase cyclic scan).
func TestParallelRejectsSelfLoopOnly(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	loop := m.Add(symset.All(), automata.StartNone, false)
	rep := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, loop)
	m.Connect(loop, loop) // the lone cycle: SCC of size 1 with a self-edge
	m.Connect(loop, rep)
	net := automata.NewNetwork(m)
	if _, err := ParallelRun(net, []byte("axxb"), ParallelOptions{Workers: 2}); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
	// An explicit Overlap alone must not bypass the cycle check either.
	if _, err := ParallelRun(net, []byte("axxb"), ParallelOptions{Workers: 2, Overlap: 4}); err != ErrCyclic {
		t.Fatalf("explicit overlap: err = %v, want ErrCyclic", err)
	}
	// With AllowCycles and an overlap covering the whole prefix the
	// approximation is exact on this input.
	got, err := ParallelRun(net, []byte("axxb"), ParallelOptions{Workers: 2, Overlap: 4, AllowCycles: true})
	if err != nil {
		t.Fatal(err)
	}
	want := Run(net, []byte("axxb"), Options{CollectReports: true}).Reports
	if len(got) != len(want) {
		t.Fatalf("approximate run: %d reports, want %d", len(got), len(want))
	}
}

func TestMergeSortedReports(t *testing.T) {
	mk := func(pairs ...int64) []Report {
		out := make([]Report, 0, len(pairs)/2)
		for i := 0; i < len(pairs); i += 2 {
			out = append(out, Report{Pos: pairs[i], State: automata.StateID(pairs[i+1])})
		}
		return out
	}
	cases := []struct {
		name   string
		chunks [][]Report
		want   []Report
	}{
		{"empty", nil, nil},
		{"all empty", [][]Report{nil, {}}, nil},
		{"single", [][]Report{mk(1, 0, 2, 1)}, mk(1, 0, 2, 1)},
		{"disjoint fast path", [][]Report{mk(0, 1, 1, 0), mk(5, 2), mk(9, 0)},
			mk(0, 1, 1, 0, 5, 2, 9, 0)},
		{"with gaps", [][]Report{mk(0, 0), nil, mk(7, 3)}, mk(0, 0, 7, 3)},
		{"interleaved general merge", [][]Report{mk(0, 0, 4, 1, 8, 0), mk(1, 2, 4, 0, 9, 9)},
			mk(0, 0, 1, 2, 4, 0, 4, 1, 8, 0, 9, 9)},
		{"same pos different state", [][]Report{mk(3, 5), mk(3, 1)}, mk(3, 1, 3, 5)},
	}
	for _, tc := range cases {
		got := mergeSortedReports(tc.chunks)
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d reports, want %d", tc.name, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: [%d] = %+v, want %+v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

// The image is compiled once per network and shared: repeated engine
// construction and concurrent first use must yield one consistent image.
func TestImageCachedOnNetwork(t *testing.T) {
	net := figure2()
	img := ImageOf(net)
	if ImageOf(net) != img {
		t.Fatal("second ImageOf compiled a fresh image")
	}
	// Mutating paths invalidate the cache.
	net.InvalidateCaches()
	if got := ImageOf(net); got == img {
		t.Fatal("InvalidateCaches kept the stale image")
	}
	m := automata.NewNFA()
	m.Add(symset.Single('q'), automata.StartAllInput, true)
	prev := ImageOf(net)
	net.Append(m)
	if got := ImageOf(net); got == prev {
		t.Fatal("Append kept the stale image")
	}
	if got := ImageOf(net); got.n != net.Len() {
		t.Fatalf("image has %d states, network %d", ImageOf(net).n, net.Len())
	}
}
