// Compiled network images.
//
// The Engine does not walk automata.Network directly: per-frontier-state
// work there costs a pointer chase into a 70-odd-byte State struct, a
// symset method call, and a second random access per successor to check
// the target's start kind. Compile flattens everything the hot loop needs
// into a handful of contiguous arrays — CSR successor lists, state-major
// match words, per-symbol transposed match/start bitmaps, and report/start
// flag words — built once per Network and shared read-only by every engine
// over it (serial runs, parallel chunk workers, spap's hot and cold
// executors, profiling).
//
// The image also owns the engine pool: engines are keyed by network
// identity through the image they were built for, so steady-state
// execution (parallel chunks, repeated profiling, spap batches) allocates
// nothing.
package sim

import (
	"math/bits"
	"sync"

	"sparseap/internal/automata"
)

// Dense-kernel crossover defaults (see DESIGN.md §8). A dense step costs
// O(words) = O(n/64) regardless of frontier size; a sparse step costs
// O(frontier) with a comparable per-state constant (one scattered
// match-word load per frontier state vs. three sequential word loads per
// 64-state word). Measured on the 26-app suite, workloads with mean
// frontier ≤ 0.8× words run faster sparse (PEN, ER, the DS family) and
// workloads at ≥ 2.6× words run faster dense (HM, Brill, Pro, LV, RF*),
// so the default cut is 2× words — the frontier walk must be visiting
// more states than twice the word count the dense pass would scan. The
// floor keeps tiny frontiers on the sparse walk even for sub-1024-state
// networks where a word scan is nearly free.
const (
	denseWordsFactor = 2
	minDenseCut      = 16
)

// Image is the compiled, read-only execution layout of a Network. All
// fields are immutable after Compile; one image is shared by any number
// of concurrent engines.
type Image struct {
	net   *automata.Network
	n     int // number of states
	words int // ceil(n/64): length of every state-indexed bitmap

	// CSR successor arrays: successors of state s are
	// succ[succOff[s]:succOff[s+1]]. Edges into all-input start states
	// are filtered out at compile time (such states are enabled every
	// cycle and never tracked in the frontier), so the scatter loop
	// needs no per-target start-kind check.
	succOff []uint32
	succ    []automata.StateID

	// match holds the 256-bit symbol set of each state as 4 contiguous
	// words: state s matches symbol b iff
	// match[s*4+b/64] has bit b%64 set. State-major so the sparse walk
	// touches one cache line per frontier state.
	match []uint64

	// symMask[b] is the transpose of match: bit s of word s/64 is set
	// iff state s matches symbol b. The dense kernel ANDs it against
	// the frontier bitmap to activate 64 states per instruction.
	symMask [256][]uint64
	// startMask[b] marks the all-input start states activated by symbol
	// b (the dense-kernel counterpart of startAct). All 256 rows alias
	// one zero row when the network has no all-input starts.
	startMask [256][]uint64

	// report and allInput flag words: bit s set iff state s reports /
	// is an all-input start.
	report   []uint64
	allInput []uint64

	// startAct[b] lists, in ascending state order, the all-input start
	// states activated by symbol b (the sparse kernel's counterpart of
	// startMask).
	startAct [256][]automata.StateID
	// allInputHot lists all-input starts with a non-empty symbol set;
	// they are enabled every cycle, hence ever-enabled by definition.
	allInputHot []automata.StateID
	// startsOfData lists start-of-data states (enabled at position 0).
	startsOfData []automata.StateID
	hasAllInput  bool

	// denseCut is the default frontier length at which KernelAuto
	// switches from the sparse walk to the dense pass.
	denseCut int

	// pool recycles solo engines built over this image; batchPool
	// recycles multi-stream batch engines (batch.go).
	pool      sync.Pool
	batchPool sync.Pool
}

// Compile flattens net into an execution image. The image references the
// network's structure as of this call; mutate the network only through
// paths that clear the cache (Append, InvalidateCaches) or on a Clone.
func Compile(net *automata.Network) *Image {
	n := net.Len()
	words := (n + 63) / 64
	img := &Image{
		net:     net,
		n:       n,
		words:   words,
		succOff: make([]uint32, n+1),
		match:   make([]uint64, 4*n),
		report:  make([]uint64, words),
	}
	img.allInput = make([]uint64, words)

	edges := 0
	for s := range net.States {
		st := &net.States[s]
		copy(img.match[4*s:4*s+4], st.Match[:])
		bit := uint64(1) << (uint(s) & 63)
		if st.Report {
			img.report[s>>6] |= bit
		}
		switch st.Start {
		case automata.StartAllInput:
			img.hasAllInput = true
			img.allInput[s>>6] |= bit
		case automata.StartOfData:
			img.startsOfData = append(img.startsOfData, automata.StateID(s))
		}
		for _, v := range st.Succ {
			if net.States[v].Start != automata.StartAllInput {
				edges++
			}
		}
	}

	img.succ = make([]automata.StateID, 0, edges)
	for s := range net.States {
		img.succOff[s] = uint32(len(img.succ))
		for _, v := range net.States[s].Succ {
			if net.States[v].Start != automata.StartAllInput {
				img.succ = append(img.succ, v)
			}
		}
	}
	img.succOff[n] = uint32(len(img.succ))

	// Transpose the match matrix into per-symbol bitmaps. One backing
	// array keeps the 256 rows contiguous.
	symBacking := make([]uint64, 256*words)
	for b := 0; b < 256; b++ {
		img.symMask[b] = symBacking[b*words : (b+1)*words : (b+1)*words]
	}
	for s := 0; s < n; s++ {
		sw, sb := s>>6, uint64(1)<<(uint(s)&63)
		for w := 0; w < 4; w++ {
			word := img.match[4*s+w]
			for word != 0 {
				b := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				img.symMask[b][sw] |= sb
			}
		}
	}

	zeroRow := make([]uint64, words)
	for b := range img.startMask {
		img.startMask[b] = zeroRow
	}
	if img.hasAllInput {
		startBacking := make([]uint64, 256*words)
		for b := 0; b < 256; b++ {
			img.startMask[b] = startBacking[b*words : (b+1)*words : (b+1)*words]
		}
		for s := 0; s < n; s++ {
			if net.States[s].Start != automata.StartAllInput {
				continue
			}
			sw, sb := s>>6, uint64(1)<<(uint(s)&63)
			empty := true
			for w := 0; w < 4; w++ {
				word := img.match[4*s+w]
				if word != 0 {
					empty = false
				}
				for word != 0 {
					b := w<<6 | bits.TrailingZeros64(word)
					word &= word - 1
					img.startAct[b] = append(img.startAct[b], automata.StateID(s))
					img.startMask[b][sw] |= sb
				}
			}
			if !empty {
				img.allInputHot = append(img.allInputHot, automata.StateID(s))
			}
		}
	}

	img.denseCut = denseWordsFactor * img.words
	if img.denseCut < minDenseCut {
		img.denseCut = minDenseCut
	}
	return img
}

// Footprint estimates the resident bytes of the compiled image: the CSR
// successor arrays, the state-major match words, the 256 transposed
// symbol bitmaps, and the flag words. A serving process admits sessions
// against a memory budget, and the images — shared across every tenant
// streaming the same application — are the dominant resident term.
func (img *Image) Footprint() int64 {
	b := int64(len(img.succOff))*4 + int64(len(img.succ))*4
	b += int64(len(img.match)) * 8
	b += 256 * int64(img.words) * 8 // symMask
	if img.hasAllInput {
		b += 256 * int64(img.words) * 8 // startMask (aliases one row otherwise)
	} else {
		b += int64(img.words) * 8
	}
	b += 2 * int64(img.words) * 8 // report + allInput
	for _, l := range img.startAct {
		b += int64(len(l)) * 4
	}
	return b
}

// EngineFootprint estimates the per-engine dynamic bytes: two frontier
// bitmaps plus, in the worst case, two full sparse frontier lists. The
// admission controller charges this per live session on top of the
// shared image.
func (img *Image) EngineFootprint() int64 {
	return 2*int64(img.words)*8 + 2*int64(img.n)*4
}

// EngineFootprintBounded is EngineFootprint under a certified frontier
// bound: the two bitmaps are words-sized regardless, but the sparse
// frontier lists only ever grow to the largest frontier the engine
// observes, so a sound worst-case width from internal/worstcase caps
// them. The admission controller charges this instead of the nominal
// full-state estimate when a bound is available.
func (img *Image) EngineFootprintBounded(bound int) int64 {
	if bound < 0 || bound > img.n {
		bound = img.n
	}
	return 2*int64(img.words)*8 + 2*int64(bound)*4
}

// BatchEngineFootprint estimates the per-batch-engine dynamic bytes: the
// three lane-transposed n-word arrays (current/next frontier lane masks
// and the per-cycle activation accumulator), the two union bitmaps, and,
// in the worst case, full frontier/activation lists plus the per-lane
// bookkeeping. One batch engine serves up to MaxLanes concurrent streams,
// so per admitted stream the charge is BatchLaneFootprint.
func (img *Image) BatchEngineFootprint() int64 {
	b := 3 * int64(img.n) * 8     // curLane + nxtLane + actLane
	b += 2 * int64(img.words) * 8 // union bitmaps
	b += 4 * int64(img.n) * 4     // frontier, next, actList, repBuf
	b += 64 * 64                  // lane bookkeeping
	return b
}

// BatchLaneFootprint is the per-stream share of a fully loaded batch
// engine — what the admission controller charges a batched session
// instead of EngineFootprint.
func (img *Image) BatchLaneFootprint() int64 {
	return (img.BatchEngineFootprint() + 63) / 64
}

// BatchEngineFootprintBounded is BatchEngineFootprint under a certified
// frontier bound. The three lane-transposed arrays are allocated
// n-sized up front regardless, so only the union frontier/activation
// lists shrink with the bound.
func (img *Image) BatchEngineFootprintBounded(bound int) int64 {
	if bound < 0 || bound > img.n {
		bound = img.n
	}
	b := 3 * int64(img.n) * 8     // curLane + nxtLane + actLane
	b += 2 * int64(img.words) * 8 // union bitmaps
	b += 4 * int64(bound) * 4     // frontier, next, actList, repBuf
	b += 64 * 64                  // lane bookkeeping
	return b
}

// BatchLaneFootprintBounded is the per-stream share of
// BatchEngineFootprintBounded.
func (img *Image) BatchLaneFootprintBounded(bound int) int64 {
	return (img.BatchEngineFootprintBounded(bound) + 63) / 64
}

// Read-only structural accessors for static analyses (internal/worstcase
// walks the image to synthesize adversarial inputs). All returned slices
// alias the image's immutable arrays and must not be mutated.

// NumStates returns the number of states in the compiled network.
func (img *Image) NumStates() int { return img.n }

// Words returns the length of every state-indexed bitmap (ceil(n/64)).
func (img *Image) Words() int { return img.words }

// SymMaskRow returns the transposed match bitmap for symbol b: bit s set
// iff state s matches b.
func (img *Image) SymMaskRow(b byte) []uint64 { return img.symMask[b] }

// StartMaskRow returns the all-input start states activated by symbol b
// as a bitmap (a shared zero row when the network has none).
func (img *Image) StartMaskRow(b byte) []uint64 { return img.startMask[b] }

// ReportMask returns the reporting-state flag words.
func (img *Image) ReportMask() []uint64 { return img.report }

// AllInputMask returns the all-input-start flag words.
func (img *Image) AllInputMask() []uint64 { return img.allInput }

// Successors returns state s's compiled successor list with edges into
// all-input start states already filtered out — exactly the states the
// engine would enable when s activates.
func (img *Image) Successors(s automata.StateID) []automata.StateID {
	return img.succ[img.succOff[s]:img.succOff[s+1]]
}

// StartsOfData lists the start-of-data states (enabled at position 0).
func (img *Image) StartsOfData() []automata.StateID { return img.startsOfData }

// ImageOf returns net's cached execution image, compiling and caching it
// on first use. Safe for concurrent callers: a rare duplicate compile is
// benign (both images are equivalent and read-only; last store wins).
func ImageOf(net *automata.Network) *Image {
	if img, ok := net.ExecImage().(*Image); ok && img != nil && img.n == net.Len() {
		return img
	}
	img := Compile(net)
	net.StoreExecImage(img)
	return img
}

// Acquire returns a pooled engine over the image, reset and configured
// with opts. Release it when done to make its buffers reusable; engines
// never escape to a different image's pool.
func (img *Image) Acquire(opts Options) *Engine {
	e, _ := img.pool.Get().(*Engine)
	if e == nil {
		e = newEngine(img)
	}
	e.configure(opts)
	return e
}

// AcquireEngine returns a pooled engine for net (compiling the shared
// image on first use). The caller must not use the engine, or any slice
// obtained from it (Reports, EverEnabled), after Release.
func AcquireEngine(net *automata.Network, opts Options) *Engine {
	return ImageOf(net).Acquire(opts)
}

// maxPooledReportCap bounds the report-slice capacity a pooled engine
// retains: one report-dense run (a PEN-style storm collects tens of
// thousands of reports) must not pin a huge backing array in the pool for
// the rest of the process. 1<<14 reports is 256 KiB — big enough that
// steady-state runs never reallocate, small enough to keep pooled.
const maxPooledReportCap = 1 << 14

// Release returns the engine to its image's pool, scrubbing every
// run-scoped hook first: the report callback, the fault-injection hook,
// and the ever-enabled view. A recycled engine must behave exactly like a
// fresh one — in particular it must not replay a previous run's fault
// plan or deliver reports to a dead consumer. The engine, and any slice
// previously obtained from it, must not be used afterwards.
func (e *Engine) Release() {
	e.OnReport = nil
	e.Flips = nil
	e.ever = nil
	if cap(e.reports) > maxPooledReportCap {
		e.reports = nil
	} else {
		e.reports = e.reports[:0]
	}
	e.numReports = 0
	e.img.pool.Put(e)
}
