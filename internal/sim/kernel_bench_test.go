package sim

import (
	"math/rand"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// benchAlpha is the alphabet size both benchmark topologies use.
const benchAlpha = 64

// denseBenchNet builds the dense-frontier regime the hot fragments of
// SpAP partitioning create: one all-input hub per alphabet symbol fans
// out to every leaf, so each cycle re-enables the whole leaf population
// (frontier ≈ n) while only 1/benchAlpha of it activates. The sparse walk
// pays a match test per enabled leaf; the dense pass covers 64 of them
// per word op.
func denseBenchNet(leaves int) *automata.Network {
	m := automata.NewNFA()
	hubs := make([]automata.StateID, benchAlpha)
	for i := range hubs {
		hubs[i] = m.Add(symset.Single(byte(i)), automata.StartAllInput, false)
	}
	for l := 0; l < leaves; l++ {
		leaf := m.Add(symset.Single(byte(l%benchAlpha)), automata.StartNone, l%997 == 0)
		for _, h := range hubs {
			m.Connect(h, leaf)
		}
	}
	return automata.NewNetwork(m)
}

// sparseBenchNet builds the cold regime the paper's Table I workloads
// live in: many independent chains whose starts each match one rare
// symbol, so only a handful of states are ever enabled per cycle.
func sparseBenchNet(chains, depth int) *automata.Network {
	ms := make([]*automata.NFA, chains)
	for c := range ms {
		m := automata.NewNFA()
		prev := m.Add(symset.Single(byte(c%benchAlpha)), automata.StartAllInput, false)
		for d := 1; d < depth; d++ {
			nxt := m.Add(symset.Single(byte((c+d)%benchAlpha)), automata.StartNone, d == depth-1)
			m.Connect(prev, nxt)
			prev = nxt
		}
		ms[c] = m
	}
	return automata.NewNetwork(ms...)
}

func benchInput(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	input := make([]byte, n)
	for i := range input {
		input[i] = byte(r.Intn(benchAlpha))
	}
	return input
}

func benchKernel(b *testing.B, net *automata.Network, input []byte, k Kernel) {
	e := AcquireEngine(net, Options{Kernel: k})
	defer e.Release()
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Reset()
		for i, c := range input {
			e.Step(int64(i), c)
		}
	}
}

// BenchmarkDenseFrontier is the direction-optimizing win case: frontier ≈
// 8k states every cycle, ~1.5% of them activating. KernelDense/KernelAuto
// should beat KernelSparse by well over 2x (see DESIGN.md §8).
func BenchmarkDenseFrontier(b *testing.B) {
	net := denseBenchNet(8192)
	input := benchInput(2048, 1)
	for _, k := range []Kernel{KernelSparse, KernelDense, KernelAuto} {
		b.Run(k.String(), func(b *testing.B) { benchKernel(b, net, input, k) })
	}
}

// BenchmarkSparseFrontier is the regime the adaptive kernel must not
// regress: frontier of ~10 states in a 4k-state network, far below the
// dense threshold, so KernelAuto must track KernelSparse within noise.
func BenchmarkSparseFrontier(b *testing.B) {
	net := sparseBenchNet(512, 8)
	input := benchInput(1<<15, 2)
	for _, k := range []Kernel{KernelSparse, KernelDense, KernelAuto} {
		b.Run(k.String(), func(b *testing.B) { benchKernel(b, net, input, k) })
	}
}

// BenchmarkParallelRun measures the pooled chunk runtime end to end;
// allocs/op is the interesting column (steady state reuses pooled
// engines, and the k-way merge replaced the global sort).
func BenchmarkParallelRun(b *testing.B) {
	net := sparseBenchNet(512, 8)
	input := benchInput(1<<16, 3)
	if _, err := ParallelRun(net, input, ParallelOptions{Workers: 4}); err != nil {
		b.Fatal(err) // also warms the engine pool
	}
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := ParallelRun(net, input, ParallelOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotStates measures the profiling primitive on a pooled engine.
func BenchmarkHotStates(b *testing.B) {
	net := sparseBenchNet(512, 8)
	input := benchInput(1<<15, 4)
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		HotStates(net, input)
	}
}
