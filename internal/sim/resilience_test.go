package sim

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// everyA builds a one-state network reporting on every 'a'.
func everyA() *automata.Network {
	m := automata.NewNFA()
	m.Add(symset.Single('a'), automata.StartAllInput, true)
	return automata.NewNetwork(m)
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	input := bytes.Repeat([]byte("a"), 3*cancelCheckInterval)
	res, err := RunContext(ctx, everyA(), input, Options{CollectReports: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result must be non-nil")
	}
	if res.Symbols != 0 {
		t.Errorf("pre-cancelled run processed %d symbols, want 0", res.Symbols)
	}
	// The partial result stays internally consistent.
	if int64(len(res.Reports)) != res.NumReports {
		t.Errorf("reports %d != NumReports %d", len(res.Reports), res.NumReports)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	input := bytes.Repeat([]byte("a"), 64*cancelCheckInterval)
	// Cancel from the report callback partway through: deterministic, and
	// the loop must notice within one cancelCheckInterval.
	net := everyA()
	e := NewEngine(net, Options{})
	fired := int64(0)
	e.OnReport = func(pos int64, s automata.StateID) {
		if fired++; fired == 10*cancelCheckInterval {
			cancel()
		}
	}
	processed := int64(0)
	for i, b := range input {
		if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
			break
		}
		e.Step(int64(i), b)
		processed++
	}
	if processed >= int64(len(input)) {
		t.Fatal("run was not cut short by cancellation")
	}
	if processed > 11*cancelCheckInterval {
		t.Errorf("run overshot cancellation by %d symbols", processed-10*cancelCheckInterval)
	}
	cancel()
}

func TestParallelRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	input := bytes.Repeat([]byte("a"), 8*cancelCheckInterval)
	reports, err := ParallelRunContext(ctx, everyA(), input, ParallelOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Whatever partial reports came back must be sorted by position.
	for i := 1; i < len(reports); i++ {
		if reports[i].Pos < reports[i-1].Pos {
			t.Fatal("partial reports not sorted")
		}
	}
}

func TestStreamerOverflowAndResume(t *testing.T) {
	st := NewStreamerOpts(everyA(), StreamerOptions{BufferCap: 4})
	input := bytes.Repeat([]byte("a"), 10)
	n, err := st.Write(input)
	if !errors.Is(err, ErrReportOverflow) {
		t.Fatalf("err = %v, want ErrReportOverflow", err)
	}
	// The buffer holds exactly its cap; the overflowing symbol (the fifth)
	// was consumed, its report lost.
	if n != 5 || st.Buffered() != 4 {
		t.Fatalf("n = %d, buffered = %d; want 5 and 4", n, st.Buffered())
	}
	got := st.TakeReports()
	if len(got) != 4 || got[0].Pos != 0 || got[3].Pos != 3 {
		t.Fatalf("TakeReports = %v", got)
	}
	if st.Buffered() != 0 {
		t.Fatal("TakeReports did not drain the buffer")
	}
	// Draining frees capacity: the stream resumes where Write stopped and
	// overflows again on the last of the 5 remaining symbols.
	n, err = st.Write(input[n:])
	if !errors.Is(err, ErrReportOverflow) || n != 5 {
		t.Fatalf("resumed write: n = %d, err = %v", n, err)
	}
	if got := st.TakeReports(); len(got) != 4 || got[0].Pos != 5 || got[3].Pos != 8 {
		t.Fatalf("resumed reports = %v", got)
	}
	if st.NumReports() != 10 {
		t.Errorf("NumReports = %d, want 10 (every symbol reported, including lost ones)", st.NumReports())
	}
}

func TestStreamerNegativeCapCountsOnly(t *testing.T) {
	st := NewStreamerOpts(everyA(), StreamerOptions{BufferCap: -1})
	if n, err := st.Write(bytes.Repeat([]byte("a"), 100)); err != nil || n != 100 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if st.Buffered() != 0 || st.NumReports() != 100 {
		t.Errorf("buffered %d, reports %d; want 0 and 100", st.Buffered(), st.NumReports())
	}
}

func TestStreamerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := NewStreamerOpts(everyA(), StreamerOptions{Context: ctx})
	n, err := st.Write(bytes.Repeat([]byte("a"), 2*cancelCheckInterval))
	if !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("Write = %d, %v; want 0, context.Canceled", n, err)
	}
}

func TestDisableAndToggleState(t *testing.T) {
	// Chain: a (all-input start) -> b (report). "ab" normally reports at 1.
	build := func() (*Engine, automata.StateID) {
		m := automata.NewNFA()
		a := m.Add(symset.Single('a'), automata.StartAllInput, false)
		b := m.Add(symset.Single('b'), automata.StartNone, true)
		m.Connect(a, b)
		return NewEngine(automata.NewNetwork(m), Options{}), b
	}

	e, b := build()
	e.Step(0, 'a') // enables b for the next cycle
	e.DisableState(b)
	if e.FrontierLen() != 0 {
		t.Fatal("DisableState left b enabled")
	}
	e.Step(1, 'b')
	if e.NumReports() != 0 {
		t.Errorf("disabled state still reported")
	}

	// Toggle re-enables what Disable removed, and the double toggle is a
	// no-op overall.
	e, b = build()
	e.Step(0, 'a')
	e.ToggleState(b) // disable
	e.ToggleState(b) // re-enable
	e.Step(1, 'b')
	if e.NumReports() != 1 {
		t.Errorf("toggle pair broke the frontier: %d reports, want 1", e.NumReports())
	}

	// Toggling an idle state enables it (the constructive half of a flip).
	e, b = build()
	e.ToggleState(b)
	e.Step(0, 'b')
	if e.NumReports() != 1 {
		t.Errorf("toggle-enable did not take: %d reports, want 1", e.NumReports())
	}

	// Disabling a state that is not enabled, and disabling an all-input
	// start, are both no-ops.
	e, _ = build()
	e.DisableState(b)
	e.DisableState(0)
	e.Step(0, 'a')
	e.Step(1, 'b')
	if e.NumReports() != 1 {
		t.Errorf("no-op disables changed behaviour: %d reports, want 1", e.NumReports())
	}
}
