package sim

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// randomDAGNet builds a random acyclic network (edges only forward).
func randomDAGNet(r *rand.Rand, nfas int) *automata.Network {
	machines := make([]*automata.NFA, nfas)
	for u := range machines {
		n := 2 + r.Intn(8)
		m := automata.NewNFA()
		for s := 0; s < n; s++ {
			start := automata.StartNone
			if s == 0 {
				start = automata.StartAllInput
			}
			m.Add(symset.Single(byte('a'+r.Intn(4))), start, r.Intn(3) == 0)
		}
		for e := 0; e < 1+r.Intn(2*n); e++ {
			u := r.Intn(n - 1)
			v := u + 1 + r.Intn(n-u-1)
			m.Connect(automata.StateID(u), automata.StateID(v))
		}
		m.Dedup()
		machines[u] = m
	}
	return automata.NewNetwork(machines...)
}

// Property: parallel chunked execution with exact overlap equals serial
// execution on acyclic networks.
func TestPropParallelEqualsSerial(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		net := randomDAGNet(r, 1+r.Intn(4))
		input := make([]byte, 20+r.Intn(300))
		for i := range input {
			input[i] = byte('a' + r.Intn(4))
		}
		serial := Run(net, input, Options{CollectReports: true}).Reports
		par, err := ParallelRun(net, input, ParallelOptions{Workers: 1 + r.Intn(6)})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("trial %d: %d parallel vs %d serial reports", trial, len(par), len(serial))
		}
		counts := map[Report]int{}
		for _, rep := range serial {
			counts[rep]++
		}
		for _, rep := range par {
			counts[rep]--
			if counts[rep] < 0 {
				t.Fatalf("trial %d: extra report %+v", trial, rep)
			}
		}
	}
}

func TestParallelRejectsCycles(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	loop := m.Add(symset.All(), automata.StartNone, false)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, loop)
	m.Connect(loop, loop)
	m.Connect(loop, b)
	net := automata.NewNetwork(m)
	if _, err := ParallelRun(net, []byte("aXb"), ParallelOptions{Workers: 2}); err == nil {
		t.Fatal("cyclic network accepted without AllowCycles")
	}
	// With AllowCycles and a generous overlap it runs (approximately).
	if _, err := ParallelRun(net, []byte("aXb"), ParallelOptions{Workers: 2, Overlap: 3, AllowCycles: true}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelRejectsStartOfData(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartOfData, false)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, b)
	net := automata.NewNetwork(m)
	if _, err := ParallelRun(net, []byte("ab"), ParallelOptions{Workers: 2}); err == nil {
		t.Fatal("start-of-data network accepted")
	}
}

func TestParallelSingleWorkerFallback(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	net := randomDAGNet(r, 2)
	input := []byte("abcdabcd")
	got, err := ParallelRun(net, input, ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Run(net, input, Options{CollectReports: true}).Reports
	if len(got) != len(want) {
		t.Fatalf("reports %d vs %d", len(got), len(want))
	}
}

func TestStreamerMatchesBatch(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, b)
	net := automata.NewNetwork(m)

	var got []Report
	st := NewStreamer(net)
	st.OnReport = func(pos int64, s automata.StateID) {
		got = append(got, Report{Pos: pos, State: s})
	}
	// Feed in awkward fragments, crossing the "ab" boundary.
	if _, err := io.Copy(st, strings.NewReader("xa")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("bxxab")); err != nil {
		t.Fatal(err)
	}
	want := Run(net, []byte("xabxxab"), Options{CollectReports: true}).Reports
	if len(got) != len(want) {
		t.Fatalf("streaming reports %v, batch %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("streaming reports %v, batch %v", got, want)
		}
	}
	if st.Pos() != 7 {
		t.Fatalf("Pos = %d", st.Pos())
	}
	st.Reset()
	if st.Pos() != 0 {
		t.Fatal("Reset did not rewind position")
	}
	got = got[:0]
	st.Write([]byte("ab"))
	if len(got) != 1 || got[0].Pos != 1 {
		t.Fatalf("after Reset: %v", got)
	}
}
