package sim

import (
	"math/bits"
	"math/rand"
	"testing"

	"sparseap/internal/automata"
)

// randomLaneInputs builds 1..64 ragged inputs over a small alphabet.
func randomLaneInputs(r *rand.Rand, lanes int) [][]byte {
	alphabet := []byte("abcdx")
	out := make([][]byte, lanes)
	for l := range out {
		in := make([]byte, r.Intn(150)) // may be empty
		for i := range in {
			in[i] = alphabet[r.Intn(len(alphabet))]
		}
		out[l] = in
	}
	return out
}

func requireLaneEqualsSolo(t *testing.T, trial int, lane int, got, want []Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d lane %d: %d reports, solo %d", trial, lane, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trial %d lane %d: report[%d] = %+v, solo %+v",
				trial, lane, i, got[i], want[i])
		}
	}
}

// Property (the tentpole invariant): for random networks, random lane
// counts 1–64 with ragged lengths, and every kernel, each lane of a batch
// run produces a report stream bit-identical to a solo Run over the same
// input — same positions, same canonical within-cycle order.
func TestPropBatchLanesIdenticalToSolo(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	kernels := []Kernel{KernelSparse, KernelDense, KernelAuto}
	for trial := 0; trial < 60; trial++ {
		net := randomKernelNet(r)
		lanes := 1 + r.Intn(MaxLanes)
		inputs := randomLaneInputs(r, lanes)
		threshold := 1 + r.Intn(4)
		solo := make([][]Report, lanes)
		for l, in := range inputs {
			solo[l] = Run(net, in, Options{CollectReports: true, DenseThreshold: threshold}).Reports
		}
		for _, k := range kernels {
			results := RunBatch(net, inputs, BatchOptions{
				CollectReports: true, Kernel: k, DenseThreshold: threshold,
			})
			for l, res := range results {
				requireLaneEqualsSolo(t, trial, l, res.Reports, solo[l])
				if res.NumReports != int64(len(solo[l])) {
					t.Fatalf("trial %d lane %d kernel %v: NumReports %d, solo %d",
						trial, l, k, res.NumReports, len(solo[l]))
				}
				if res.Symbols != int64(len(inputs[l])) {
					t.Fatalf("trial %d lane %d: consumed %d symbols, input %d",
						trial, l, res.Symbols, len(inputs[l]))
				}
			}
		}
	}
}

// Property: lanes joining mid-batch (after the engine has ticked an
// arbitrary number of cycles) and lanes retiring mid-batch still produce
// solo-identical streams — a joining lane starts at its own position 0,
// a retiring lane never perturbs its neighbours.
func TestPropBatchMidBatchJoinAndRetire(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		net := randomKernelNet(r)
		lanes := 2 + r.Intn(MaxLanes-1)
		inputs := randomLaneInputs(r, lanes)
		threshold := 1 + r.Intn(4)
		be := AcquireBatchEngine(net, BatchOptions{CollectReports: true, DenseThreshold: threshold})
		laneOf := make(map[int]int)
		got := make([][]Report, lanes)
		nextJoin := 0
		for nextJoin < lanes || be.Running() > 0 {
			// Join a random number of pending streams at this point.
			for nextJoin < lanes && r.Intn(3) != 0 {
				lane, ok := be.Join(inputs[nextJoin])
				if !ok {
					break
				}
				laneOf[lane] = nextJoin
				nextJoin++
				if be.Done(lane) {
					got[laneOf[lane]] = append([]Report(nil), be.LaneReports(lane)...)
					be.Free(lane)
				}
			}
			if be.Running() == 0 && nextJoin < lanes {
				continue // roll the join dice again
			}
			ret := be.Tick()
			for m := ret; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				got[laneOf[lane]] = append([]Report(nil), be.LaneReports(lane)...)
				be.Free(lane)
			}
		}
		be.Release()
		for l, in := range inputs {
			want := Run(net, in, Options{CollectReports: true, DenseThreshold: threshold}).Reports
			requireLaneEqualsSolo(t, trial, l, got[l], want)
		}
	}
}

// An early Retire withdraws one lane without disturbing the others: the
// retired lane's reports are a strict prefix of its solo stream, and
// every surviving lane still matches solo exactly.
func TestBatchEarlyRetireIsolated(t *testing.T) {
	r := rand.New(rand.NewSource(7001))
	for trial := 0; trial < 40; trial++ {
		net := randomKernelNet(r)
		inputs := randomLaneInputs(r, 3+r.Intn(8))
		for l := range inputs {
			if len(inputs[l]) == 0 {
				inputs[l] = []byte("ab") // this test wants running lanes
			}
		}
		be := AcquireBatchEngine(net, BatchOptions{CollectReports: true, DenseThreshold: 1 + r.Intn(4)})
		laneOf := map[int]int{}
		for idx, in := range inputs {
			lane, ok := be.Join(in)
			if !ok {
				t.Fatal("join failed")
			}
			laneOf[lane] = idx
		}
		victimLane := r.Intn(len(inputs))
		retireAt := r.Intn(40)
		got := make([][]Report, len(inputs))
		retired := false
		for tick := 0; be.Running() > 0; tick++ {
			if tick == retireAt && !retired && !be.Done(victimLane) {
				got[laneOf[victimLane]] = append([]Report(nil), be.LaneReports(victimLane)...)
				be.Retire(victimLane)
				retired = true
			}
			ret := be.Tick()
			for m := ret; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				got[laneOf[lane]] = append([]Report(nil), be.LaneReports(lane)...)
			}
		}
		be.Release()
		for l, in := range inputs {
			want := Run(net, in, Options{CollectReports: true}).Reports
			if retired && l == laneOf[victimLane] {
				// Prefix property: everything emitted up to the retire
				// point matches solo.
				if len(got[l]) > len(want) {
					t.Fatalf("trial %d: retired lane emitted %d reports, solo only %d",
						trial, len(got[l]), len(want))
				}
				for i := range got[l] {
					if got[l][i] != want[i] {
						t.Fatalf("trial %d: retired lane report[%d] = %+v, solo %+v",
							trial, i, got[l][i], want[i])
					}
				}
				continue
			}
			requireLaneEqualsSolo(t, trial, l, got[l], want)
		}
	}
}

// Tick must not allocate in steady state, on any kernel: the batch step
// is the serving hot loop.
func TestBatchTickZeroAlloc(t *testing.T) {
	net := figure2()
	input := []byte("abcfacdcdfabcf")
	inputs := make([][]byte, MaxLanes)
	for l := range inputs {
		inputs[l] = input
	}
	for _, k := range []Kernel{KernelSparse, KernelDense, KernelAuto} {
		be := AcquireBatchEngine(net, BatchOptions{CollectReports: true, Kernel: k, DenseThreshold: 2})
		run := func() {
			be.Reset()
			for _, in := range inputs {
				if _, ok := be.Join(in); !ok {
					t.Fatal("join failed")
				}
			}
			for be.Running() > 0 {
				be.Tick()
			}
		}
		run() // warm up the lane, frontier, and report buffers
		allocs := testing.AllocsPerRun(10, run)
		be.Release()
		if allocs != 0 {
			t.Errorf("kernel %v: %v allocs per batch run, want 0", k, allocs)
		}
	}
}

// The pool must hand back scrubbed engines: no report callback, no stale
// lane state, and report buffers capped like the solo engine's.
func TestBatchReleaseScrubs(t *testing.T) {
	net := figure2()
	img := ImageOf(net)
	be := img.AcquireBatch(BatchOptions{CollectReports: true})
	be.OnReport = func(int, int64, automata.StateID) {}
	if _, ok := be.Join([]byte("abcfacdc")); !ok {
		t.Fatal("join failed")
	}
	be.Tick()
	be.Release()
	got := img.AcquireBatch(BatchOptions{CollectReports: true})
	defer got.Release()
	if got.OnReport != nil {
		t.Error("pooled engine kept OnReport")
	}
	if got.Running() != 0 || got.FreeLanes() != MaxLanes {
		t.Errorf("pooled engine kept lanes: running %d, free %d", got.Running(), got.FreeLanes())
	}
	for l := 0; l < MaxLanes; l++ {
		if got.Done(l) || got.LaneNumReports(l) != 0 || len(got.LaneReports(l)) != 0 {
			t.Fatalf("lane %d not scrubbed", l)
		}
	}
}

// A released engine must not pin huge per-lane report arrays in the pool.
func TestBatchReleaseCapsReportCap(t *testing.T) {
	net := figure2()
	img := ImageOf(net)
	be := img.AcquireBatch(BatchOptions{CollectReports: true})
	lane, _ := be.Join([]byte("a"))
	be.lanes[lane].reports = make([]Report, 0, maxPooledReportCap+1)
	be.Release()
	reused := img.AcquireBatch(BatchOptions{})
	defer reused.Release()
	if c := cap(reused.lanes[lane].reports); c > maxPooledReportCap {
		t.Fatalf("pooled lane report cap %d exceeds bound %d", c, maxPooledReportCap)
	}
}

// The adaptive batch kernel must actually use both passes across a run
// whose union frontier oscillates over the threshold.
func TestBatchAutoSwitches(t *testing.T) {
	net := figure2()
	be := AcquireBatchEngine(net, BatchOptions{Kernel: KernelAuto, DenseThreshold: 2})
	defer be.Release()
	for l := 0; l < 8; l++ {
		if _, ok := be.Join([]byte("abcfacdcdf")); !ok {
			t.Fatal("join failed")
		}
	}
	for be.Running() > 0 {
		be.Tick()
	}
	if be.DenseTicks()+be.SparseTicks() != be.Ticks() {
		t.Fatalf("dense %d + sparse %d != %d ticks", be.DenseTicks(), be.SparseTicks(), be.Ticks())
	}
	if be.DenseTicks() == 0 || be.SparseTicks() == 0 {
		t.Fatalf("auto batch kernel never switched: dense %d, sparse %d",
			be.DenseTicks(), be.SparseTicks())
	}
}

// RunBatch must schedule more streams than lanes by reusing retired
// slots, still solo-identical per stream.
func TestRunBatchMoreStreamsThanLanes(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	net := randomKernelNet(r)
	inputs := make([][]byte, MaxLanes+37)
	for i := range inputs {
		inputs[i] = randomLaneInputs(r, 1)[0]
	}
	results := RunBatch(net, inputs, BatchOptions{CollectReports: true})
	for i, res := range results {
		want := Run(net, inputs[i], Options{CollectReports: true}).Reports
		requireLaneEqualsSolo(t, 0, i, res.Reports, want)
	}
}

// BatchEngineFootprint must dominate the engine's real resident arrays so
// serve's memory-cap admission never undercounts a batch engine.
func TestBatchEngineFootprint(t *testing.T) {
	net := figure2()
	img := ImageOf(net)
	fp := img.BatchEngineFootprint()
	// Lane-transposed arrays alone: 3 n-length uint64 arrays.
	if min := 3 * int64(img.n) * 8; fp < min {
		t.Fatalf("BatchEngineFootprint %d below the lane arrays' %d bytes", fp, min)
	}
	if per := img.BatchLaneFootprint(); per <= 0 || per > fp {
		t.Fatalf("BatchLaneFootprint %d out of range (engine %d)", per, fp)
	}
	if img.EngineFootprint() <= 0 {
		t.Fatal("solo EngineFootprint must stay positive")
	}
}
