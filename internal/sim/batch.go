// Multi-stream bit-sliced batch execution.
//
// The AP's core economy is that one resident automaton image serves many
// independent input streams, yet a solo Engine walks the compiled image
// once per stream. BatchEngine runs up to 64 streams in lockstep against
// one Image by bit-slicing stream lanes: the frontier is transposed from
// "one bitmap per stream" into one lane word per state — curLane[s] is a
// 64-bit mask of the lanes in which state s is enabled — plus a union
// bitmap over states enabled in any lane. Per symbol position the kernel
// then touches each image cache line once for the whole batch:
//
//   - the CSR successor list of an activated state is walked once and
//     applied to the full activated-lane mask with a single OR per
//     successor, instead of once per stream;
//   - a state's 4 contiguous match words are loaded once and tested
//     against every distinct symbol the batch is reading this cycle;
//   - the dense pass scans the union frontier bitmap once per distinct
//     symbol (lanes reading the same byte share the scan), instead of
//     once per stream.
//
// Lanes are fully independent: distinct inputs, lengths, and join times.
// A late-arriving stream joins an empty lane mid-batch, a finished lane
// retires without stalling the rest, and each lane's report stream —
// lane-local positions, canonical ascending-state order within a cycle —
// is bit-identical to a solo Run over the same input (property-tested in
// batch_test.go).
//
// Like the solo engine the batch kernel is direction-optimizing per
// cycle: a sparse walk of the union frontier list while it is small, the
// word-parallel union pass when it is large. The crossover scales with
// the cycle's symbol diversity — the dense pass re-scans the union once
// per distinct byte read this cycle (and re-enumerates broad-symbol-class
// states under each of them), while the sparse walk enumerates each
// frontier state exactly once however many distinct bytes are in flight —
// so dense must clear denseCut × distinct-symbols to pay. With one
// running lane that degenerates to exactly the solo engine's crossover.
// See DESIGN.md §13.
package sim

import (
	"math/bits"

	"sparseap/internal/automata"
)

// MaxLanes is the lane capacity of a BatchEngine: one bit per lane in a
// machine word.
const MaxLanes = 64

// BatchOptions configures a batch run.
type BatchOptions struct {
	// CollectReports retains each lane's reports (LaneReports). Ignored
	// when the engine's OnReport callback is set.
	CollectReports bool
	// Kernel selects the per-cycle step strategy (default KernelAuto).
	Kernel Kernel
	// DenseThreshold overrides the union-frontier length at which
	// KernelAuto switches to the dense pass; 0 uses the image's default.
	DenseThreshold int
}

// batchLane is the per-stream state of one lane.
type batchLane struct {
	input      []byte
	pos        int64 // lane-local position of the next symbol
	reports    []Report
	numReports int64
	running    bool
	done       bool // finished, reports readable until Free
}

// cycleSym is one distinct input byte read by the batch this cycle and
// the mask of lanes reading it.
type cycleSym struct {
	b     byte
	lanes uint64
}

// BatchEngine executes up to MaxLanes independent input streams in
// lockstep over one shared Image. All mutable state is engine-local; any
// number of batch and solo engines may run concurrently over one image.
// Tick performs no allocation in steady state.
type BatchEngine struct {
	img *Image

	// curLane[s] is the lane-transposed frontier: bit L set iff state s
	// is enabled in lane L for the current cycle. nxtLane is the
	// next-cycle side; the two swap every Tick and the consumed side is
	// scrubbed back to all-zero during the pass.
	curLane []uint64
	nxtLane []uint64

	// unionCur is the state-word bitmap of states enabled in any lane
	// (bit s of word s>>6 set iff curLane[s] != 0), with curLen its
	// population count; frontier caches it as a list, valid only when
	// curListValid — the same lazy-list protocol as the solo engine.
	unionCur     []uint64
	unionNxt     []uint64
	curLen       int
	nxtLen       int
	frontier     []automata.StateID
	next         []automata.StateID
	curListValid bool
	buildNext    bool

	// Per-cycle scratch: actLane[s] accumulates the lanes in which s was
	// activated this cycle (merged across distinct symbols), actList the
	// touched states, repBuf the activated reporting states.
	actLane []uint64
	actList []automata.StateID
	repBuf  []automata.StateID

	// cycleSyms lists the distinct bytes read this cycle; symLanes is the
	// 256-entry dedup table, cleared back to zero through cycleSyms.
	cycleSyms []cycleSym
	symLanes  [256]uint64

	lanes        [MaxLanes]batchLane
	runningMask  uint64
	occupiedMask uint64 // running or done (slot not joinable)

	kernel        Kernel
	denseCut      int
	reportsWanted bool

	denseTicks  int64
	sparseTicks int64
	ticks       int64

	// OnReport, when non-nil, receives every report instead of the
	// per-lane report lists: lane index, lane-local position, state.
	OnReport func(lane int, pos int64, s automata.StateID)
}

// AcquireBatch returns a pooled batch engine over the image, reset and
// configured with opts. Release it when done; batch engines never escape
// to a different image's pool.
func (img *Image) AcquireBatch(opts BatchOptions) *BatchEngine {
	be, _ := img.batchPool.Get().(*BatchEngine)
	if be == nil {
		be = &BatchEngine{
			img:      img,
			curLane:  make([]uint64, img.n),
			nxtLane:  make([]uint64, img.n),
			actLane:  make([]uint64, img.n),
			unionCur: make([]uint64, img.words),
			unionNxt: make([]uint64, img.words),
		}
	}
	be.configure(opts)
	return be
}

// AcquireBatchEngine returns a pooled batch engine for net (compiling the
// shared image on first use).
func AcquireBatchEngine(net *automata.Network, opts BatchOptions) *BatchEngine {
	return ImageOf(net).AcquireBatch(opts)
}

// Release returns the engine to its image's pool, scrubbing every
// run-scoped hook and lane buffer. The engine, and any slice previously
// obtained from it (LaneReports), must not be used afterwards.
func (be *BatchEngine) Release() {
	be.OnReport = nil
	for l := range be.lanes {
		ln := &be.lanes[l]
		ln.input = nil
		if cap(ln.reports) > maxPooledReportCap {
			ln.reports = nil
		} else {
			ln.reports = ln.reports[:0]
		}
		ln.numReports = 0
		ln.pos = 0
		ln.running, ln.done = false, false
	}
	be.runningMask, be.occupiedMask = 0, 0
	be.img.batchPool.Put(be)
}

// configure applies opts to a fresh or pooled engine and resets it.
func (be *BatchEngine) configure(opts BatchOptions) {
	be.reportsWanted = opts.CollectReports
	be.kernel = opts.Kernel
	be.denseCut = opts.DenseThreshold
	if be.denseCut <= 0 {
		be.denseCut = be.img.denseCut
	}
	be.OnReport = nil
	be.denseTicks, be.sparseTicks, be.ticks = 0, 0, 0
	be.Reset()
}

// Reset clears all dynamic state: every lane is freed and the frontier
// emptied. (Lane buffers are retained for reuse.)
func (be *BatchEngine) Reset() {
	be.clearCur()
	for w := range be.unionNxt {
		be.unionNxt[w] = 0
	}
	// nxtLane entries are only ever set under a unionNxt bit, which the
	// swap-and-scrub protocol clears; after clearCur of both sides the
	// arrays are all-zero. Scrub defensively anyway so Reset recovers
	// from any state.
	for s := range be.nxtLane {
		be.nxtLane[s] = 0
	}
	be.next = be.next[:0]
	be.nxtLen = 0
	be.buildNext = true
	be.actList = be.actList[:0]
	be.repBuf = be.repBuf[:0]
	for l := range be.lanes {
		ln := &be.lanes[l]
		ln.input = nil
		ln.pos = 0
		ln.reports = ln.reports[:0]
		ln.numReports = 0
		ln.running, ln.done = false, false
	}
	be.runningMask, be.occupiedMask = 0, 0
}

// clearCur scrubs the current frontier side back to all-zero.
func (be *BatchEngine) clearCur() {
	for w, uw := range be.unionCur {
		if uw == 0 {
			continue
		}
		be.unionCur[w] = 0
		base := w << 6
		for uw != 0 {
			be.curLane[base|bits.TrailingZeros64(uw)] = 0
			uw &= uw - 1
		}
	}
	be.frontier = be.frontier[:0]
	be.curLen = 0
	be.curListValid = true
}

// Join attaches input to a free lane and returns its index; ok is false
// when all MaxLanes lanes are occupied. Joining is legal at any point
// between Ticks — a late stream starts at its own position 0 while the
// rest of the batch is mid-flight. An empty input completes immediately:
// the lane is returned already retired (Done reports true) and emits no
// reports.
func (be *BatchEngine) Join(input []byte) (int, bool) {
	free := ^be.occupiedMask
	if free == 0 {
		return -1, false
	}
	l := bits.TrailingZeros64(free)
	ln := &be.lanes[l]
	ln.input = input
	ln.pos = 0
	ln.reports = ln.reports[:0]
	ln.numReports = 0
	be.occupiedMask |= 1 << uint(l)
	if len(input) == 0 {
		ln.running, ln.done = false, true
		return l, true
	}
	ln.running, ln.done = true, false
	be.runningMask |= 1 << uint(l)
	laneBit := uint64(1) << uint(l)
	for _, s := range be.img.startsOfData {
		be.enableLane(s, laneBit)
	}
	return l, true
}

// Retire cancels a running lane early (deadline, disconnect): its enable
// bits are withdrawn from the frontier and the lane moves to done with
// the reports accumulated so far. Retiring a lane never perturbs the
// other lanes' streams.
func (be *BatchEngine) Retire(lane int) {
	ln := &be.lanes[lane]
	if !ln.running {
		return
	}
	laneBit := uint64(1) << uint(lane)
	for w, uw := range be.unionCur {
		base := w << 6
		for m := uw; m != 0; m &= m - 1 {
			s := base | bits.TrailingZeros64(m)
			if be.curLane[s]&laneBit == 0 {
				continue
			}
			be.curLane[s] &^= laneBit
			if be.curLane[s] == 0 {
				be.unionCur[w] &^= 1 << uint(s&63)
				be.curLen--
				be.curListValid = false // the list cache is now stale
			}
		}
	}
	ln.running, ln.done = false, true
	be.runningMask &^= laneBit
}

// Free releases a done (or running: it is retired first) lane slot for
// reuse by a later Join. The lane's reports become invalid.
func (be *BatchEngine) Free(lane int) {
	ln := &be.lanes[lane]
	if ln.running {
		be.Retire(lane)
	}
	ln.input = nil
	ln.reports = ln.reports[:0]
	ln.numReports = 0
	ln.pos = 0
	ln.done = false
	be.occupiedMask &^= 1 << uint(lane)
}

// Running returns the number of lanes still consuming input.
func (be *BatchEngine) Running() int { return bits.OnesCount64(be.runningMask) }

// RunningMask returns the bitmask of lanes still consuming input.
func (be *BatchEngine) RunningMask() uint64 { return be.runningMask }

// FreeLanes returns the number of joinable lane slots.
func (be *BatchEngine) FreeLanes() int { return MaxLanes - bits.OnesCount64(be.occupiedMask) }

// Done reports whether the lane has finished (input exhausted or
// retired); its reports stay readable until Free.
func (be *BatchEngine) Done(lane int) bool { return be.lanes[lane].done }

// LanePos returns the lane-local position of the next symbol the lane
// will consume (== symbols consumed so far).
func (be *BatchEngine) LanePos(lane int) int64 { return be.lanes[lane].pos }

// LaneReports returns the lane's collected reports (valid until the lane
// is freed or the engine released).
func (be *BatchEngine) LaneReports(lane int) []Report { return be.lanes[lane].reports }

// LaneNumReports returns the lane's total report count.
func (be *BatchEngine) LaneNumReports(lane int) int64 { return be.lanes[lane].numReports }

// DenseTicks returns how many Ticks ran the dense union pass.
func (be *BatchEngine) DenseTicks() int64 { return be.denseTicks }

// SparseTicks returns how many Ticks ran the sparse union walk.
func (be *BatchEngine) SparseTicks() int64 { return be.sparseTicks }

// Ticks returns the total lockstep cycles executed.
func (be *BatchEngine) Ticks() int64 { return be.ticks }

// enableLane enables state s in the lanes of mask for the current cycle
// (Join-time start-of-data activation). All-input starts are never
// tracked in the frontier, exactly as in the solo engine.
func (be *BatchEngine) enableLane(s automata.StateID, mask uint64) {
	w, m := int(s)>>6, uint64(1)<<(uint(s)&63)
	if be.img.allInput[w]&m != 0 {
		return
	}
	if be.curLane[s] == 0 {
		be.unionCur[w] |= m
		be.curLen++
		if be.curListValid {
			be.frontier = append(be.frontier, s)
		}
	}
	be.curLane[s] |= mask
}

// materializeFrontier rebuilds the union frontier list from the bitmap
// (ascending state order) after a dense pass or a Retire left it stale.
func (be *BatchEngine) materializeFrontier() {
	f := be.frontier[:0]
	for w, word := range be.unionCur {
		base := w << 6
		for word != 0 {
			f = append(f, automata.StateID(base|bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	be.frontier = f
	be.curListValid = true
}

// Tick advances every running lane by one symbol and returns the mask of
// lanes that finished on this cycle (their last symbol consumed). It
// returns retired == 0 and advances nothing once no lane is running;
// callers loop `for be.Running() > 0 { be.Tick() }`.
func (be *BatchEngine) Tick() (retired uint64) {
	if be.runningMask == 0 {
		return 0
	}
	be.ticks++

	// Bucket the running lanes by the byte each is reading: lanes that
	// share a byte share all per-symbol image traffic below.
	syms := be.cycleSyms[:0]
	for m := be.runningMask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		ln := &be.lanes[l]
		b := ln.input[ln.pos]
		if be.symLanes[b] == 0 {
			syms = append(syms, cycleSym{b: b})
		}
		be.symLanes[b] |= 1 << uint(l)
	}
	for i := range syms {
		syms[i].lanes = be.symLanes[syms[i].b]
		be.symLanes[syms[i].b] = 0
	}
	be.cycleSyms = syms

	// The dense pass costs one union scan per distinct symbol, so its
	// crossover point scales with the cycle's symbol diversity.
	if be.kernel == KernelDense ||
		(be.kernel == KernelAuto && be.curLen >= be.denseCut*len(syms)) {
		be.tickDense(syms)
	} else {
		be.tickSparse(syms)
	}
	return be.finishTick(syms)
}

// tickSparse consumes the union frontier state by state: the state's 4
// contiguous match words are loaded once and tested against each of the
// (≤ running lanes) distinct bytes of the cycle — the per-lane sparse
// fallback; with one running lane it degenerates to exactly the solo
// sparse walk's one test per state.
func (be *BatchEngine) tickSparse(syms []cycleSym) {
	be.sparseTicks++
	if !be.curListValid {
		be.materializeFrontier()
	}
	be.buildNext = true
	img := be.img
	for _, s := range be.frontier {
		lanesEn := be.curLane[s]
		be.curLane[s] = 0
		be.unionCur[int(s)>>6] &^= 1 << (uint(s) & 63)
		base := int(s) << 2
		var am uint64
		for _, cs := range syms {
			if img.match[base|int(cs.b>>6)]&(1<<(cs.b&63)) != 0 {
				am |= cs.lanes
			}
		}
		if am &= lanesEn; am != 0 {
			be.accumulate(s, am)
		}
	}
	be.frontier = be.frontier[:0]
	be.curLen = 0
	for _, cs := range syms {
		for _, s := range img.startAct[cs.b] {
			be.accumulate(s, cs.lanes)
		}
	}
}

// tickDense runs the word-parallel union pass once per distinct byte:
// candidate states are (unionFrontier AND symMask[b]) OR startMask[b],
// found 64 states per instruction, and each candidate contributes its
// enabled-lane mask restricted to the lanes reading b. The consumed
// frontier side is scrubbed in one final union walk.
func (be *BatchEngine) tickDense(syms []cycleSym) {
	be.denseTicks++
	be.buildNext = false
	img := be.img
	for _, cs := range syms {
		sm := img.symMask[cs.b]
		stm := img.startMask[cs.b]
		lm := cs.lanes
		for w, uw := range be.unionCur {
			cand := uw&sm[w] | stm[w]
			if cand == 0 {
				continue
			}
			ai := img.allInput[w]
			base := w << 6
			for cand != 0 {
				bit := cand & -cand
				s := automata.StateID(base | bits.TrailingZeros64(cand))
				cand &= cand - 1
				var am uint64
				if ai&bit != 0 {
					am = lm // all-input start: enabled in every lane
				} else {
					am = be.curLane[s] & lm
				}
				if am != 0 {
					be.accumulate(s, am)
				}
			}
		}
	}
	be.clearCur()
	be.curListValid = false // finishTick's swap decides validity
}

// accumulate merges an activation of state s in lanes am into the cycle's
// activated set. First touch registers the state (and, if it reports, a
// report-buffer entry); later touches from other symbols OR in their
// disjoint lane masks.
func (be *BatchEngine) accumulate(s automata.StateID, am uint64) {
	if be.actLane[s] == 0 {
		be.actList = append(be.actList, s)
		if be.img.report[int(s)>>6]&(1<<(uint(s)&63)) != 0 {
			be.repBuf = append(be.repBuf, s)
		}
	}
	be.actLane[s] |= am
}

// finishTick emits the cycle's reports in canonical order, scatters the
// activated states' successors once for the whole batch, advances lane
// positions, and swaps the frontier sides. Lanes that consumed their last
// symbol retire: their reports for this cycle are emitted but their
// successor activations are masked out, exactly as a solo run ends.
func (be *BatchEngine) finishTick(syms []cycleSym) (retired uint64) {
	// Lanes whose current symbol is their last.
	for m := be.runningMask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		ln := &be.lanes[l]
		if ln.pos+1 >= int64(len(ln.input)) {
			retired |= 1 << uint(l)
		}
	}
	surviving := be.runningMask &^ retired

	// Reports: ascending state order within the cycle; each lane's stream
	// picks out its subsequence, so every lane sees the canonical solo
	// order. repBuf is near-sorted (dense candidates ascend per symbol),
	// so the insertion sort is cheap and allocation-free.
	if rb := be.repBuf; len(rb) > 0 {
		for i := 1; i < len(rb); i++ {
			for j := i; j > 0 && rb[j] < rb[j-1]; j-- {
				rb[j], rb[j-1] = rb[j-1], rb[j]
			}
		}
		for _, s := range rb {
			for am := be.actLane[s]; am != 0; am &= am - 1 {
				l := bits.TrailingZeros64(am)
				ln := &be.lanes[l]
				ln.numReports++
				if be.OnReport != nil {
					be.OnReport(l, ln.pos, s)
				} else if be.reportsWanted {
					ln.reports = append(ln.reports, Report{Pos: ln.pos, State: s})
				}
			}
		}
		be.repBuf = rb[:0]
	}

	// Scatter: one CSR walk per activated state for the whole batch.
	// Successors of a retiring lane's final symbol would feed a cycle
	// that lane never runs, so its bits are dropped here.
	img := be.img
	nxt := be.nxtLane
	for _, s := range be.actList {
		am := be.actLane[s] & surviving
		be.actLane[s] = 0
		if am == 0 {
			continue
		}
		for _, v := range img.succ[img.succOff[s]:img.succOff[s+1]] {
			if nxt[v] == 0 {
				w := int(v) >> 6
				be.unionNxt[w] |= 1 << (uint(v) & 63)
				be.nxtLen++
				if be.buildNext {
					be.next = append(be.next, v)
				}
			}
			nxt[v] |= am
		}
	}
	be.actList = be.actList[:0]

	// Advance and retire lanes.
	for m := be.runningMask; m != 0; m &= m - 1 {
		be.lanes[bits.TrailingZeros64(m)].pos++
	}
	for m := retired; m != 0; m &= m - 1 {
		ln := &be.lanes[bits.TrailingZeros64(m)]
		ln.running, ln.done = false, true
	}
	be.runningMask = surviving

	// Swap the frontier sides. The consumed side was scrubbed to zero
	// during the pass, so it becomes a clean next side.
	be.curLane, be.nxtLane = be.nxtLane, be.curLane
	be.unionCur, be.unionNxt = be.unionNxt, be.unionCur
	be.curLen, be.nxtLen = be.nxtLen, 0
	be.frontier, be.next = be.next, be.frontier
	be.next = be.next[:0]
	be.curListValid = be.buildNext
	return retired
}

// RunBatch executes every input as one lane of a batch engine and returns
// the per-input results in input order — the drop-in batched counterpart
// of calling Run once per input. Inputs beyond MaxLanes are scheduled
// onto lanes as earlier streams retire, so any number of streams runs in
// one image walk pipeline.
func RunBatch(net *automata.Network, inputs [][]byte, opts BatchOptions) []*Result {
	be := AcquireBatchEngine(net, opts)
	defer be.Release()
	results := make([]*Result, len(inputs))
	laneOf := make(map[int]int, MaxLanes) // lane -> input index
	nextInput := 0
	finish := func(lane int) {
		idx := laneOf[lane]
		res := &Result{
			NumReports: be.LaneNumReports(lane),
			Symbols:    be.LanePos(lane),
		}
		if opts.CollectReports {
			res.Reports = append([]Report(nil), be.LaneReports(lane)...)
		}
		results[idx] = res
		delete(laneOf, lane)
		be.Free(lane)
	}
	for nextInput < len(inputs) || be.Running() > 0 {
		for nextInput < len(inputs) {
			lane, ok := be.Join(inputs[nextInput])
			if !ok {
				break
			}
			laneOf[lane] = nextInput
			nextInput++
			if be.Done(lane) { // empty input: completes without ticking
				finish(lane)
			}
		}
		if be.Running() == 0 {
			continue
		}
		ret := be.Tick()
		for m := ret; m != 0; m &= m - 1 {
			finish(bits.TrailingZeros64(m))
		}
	}
	return results
}
