// Package sim implements a functional simulator for homogeneous NFAs — the
// role VASim plays in the paper.
//
// Execution follows the AP semantics of Section II: each cycle the enabled
// states whose symbol set contains the current input symbol are *activated*;
// activated reporting states emit a report; the successors of activated
// states are *enabled* for the next cycle. All-input start states are
// enabled every cycle; start-of-data start states only at position 0.
//
// The Engine keeps the dynamically enabled states as a sparse frontier and
// precomputes, per input symbol, the list of all-input start states that
// symbol activates — so per-cycle cost is proportional to the frontier, not
// the network (critical for networks with 10^5 states, of which most are
// cold).
package sim

import (
	"context"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
)

// cancelCheckInterval is how many symbols an execution loop processes
// between context polls. At the modeled 7.5 ns cycle this is ~30 µs of
// simulated stream — far below one batch — so every entry point returns
// well within a batch of cancellation while keeping the common path free
// of per-symbol select overhead.
const cancelCheckInterval = 4096

// cancelled polls ctx without blocking.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Report is one match: reporting state s activated at input position Pos.
type Report struct {
	Pos   int64
	State automata.StateID
}

// Engine executes a network over an input stream one symbol per Step.
type Engine struct {
	net *automata.Network

	// startAct[b] lists all-input start states activated by symbol b.
	startAct [256][]automata.StateID

	frontier []automata.StateID // states enabled for the next Step
	inCur    *bitvec.Vec        // membership bitmap for frontier
	next     []automata.StateID
	inNext   *bitvec.Vec

	ever          *bitvec.Vec // ever-enabled set (nil unless tracking)
	startsOfData  []automata.StateID
	hasAllInput   bool
	reportsWanted bool
	reports       []Report
	numReports    int64

	// OnReport, when non-nil, is invoked for every activated reporting
	// state instead of appending to the internal report list.
	OnReport func(pos int64, s automata.StateID)
}

// Options configures a run.
type Options struct {
	// TrackEnabled records the ever-enabled (hot) state set.
	TrackEnabled bool
	// CollectReports appends each report to Result.Reports. Ignored when
	// the engine's OnReport callback is set.
	CollectReports bool
}

// Result summarizes a Run.
type Result struct {
	// Reports holds the collected reports in emission order.
	Reports []Report
	// NumReports counts all reports, collected or not.
	NumReports int64
	// EverEnabled is the hot-state set (nil unless requested).
	EverEnabled *bitvec.Vec
	// Symbols is the number of input symbols processed.
	Symbols int64
}

// NewEngine builds an engine for net with the given options.
func NewEngine(net *automata.Network, opts Options) *Engine {
	e := &Engine{
		net:           net,
		inCur:         bitvec.New(net.Len()),
		inNext:        bitvec.New(net.Len()),
		reportsWanted: opts.CollectReports,
	}
	if opts.TrackEnabled {
		e.ever = bitvec.New(net.Len())
	}
	for s := range net.States {
		switch net.States[s].Start {
		case automata.StartAllInput:
			e.hasAllInput = true
			syms := net.States[s].Match
			for c := 0; c < 256; c++ {
				if syms.Contains(byte(c)) {
					e.startAct[c] = append(e.startAct[c], automata.StateID(s))
				}
			}
		case automata.StartOfData:
			e.startsOfData = append(e.startsOfData, automata.StateID(s))
		}
	}
	e.Reset()
	return e
}

// Reset clears all dynamic state and re-enables start-of-data states for
// position 0. Ever-enabled tracking and report counts are also reset.
func (e *Engine) Reset() {
	for _, s := range e.frontier {
		e.inCur.Clear(int(s))
	}
	e.frontier = e.frontier[:0]
	for _, s := range e.next {
		e.inNext.Clear(int(s))
	}
	e.next = e.next[:0]
	if e.ever != nil {
		e.ever.Reset()
		// All-input starts are enabled on every cycle, hence hot by
		// definition (assuming a non-empty input).
		for c := 0; c < 256; c++ {
			for _, s := range e.startAct[c] {
				e.ever.Set(int(s))
			}
		}
	}
	for _, s := range e.startsOfData {
		e.enableCur(s)
	}
	e.reports = e.reports[:0]
	e.numReports = 0
}

// enableCur adds s to the frontier consumed by the next Step.
func (e *Engine) enableCur(s automata.StateID) {
	if e.net.States[s].Start == automata.StartAllInput {
		return // always enabled; never tracked in the frontier
	}
	if e.inCur.TestAndSet(int(s)) {
		e.frontier = append(e.frontier, s)
		if e.ever != nil {
			e.ever.Set(int(s))
		}
	}
}

// EnableState enables s for the next Step call. This is the SpAP "enable"
// operation (Section V-B).
func (e *Engine) EnableState(s automata.StateID) { e.enableCur(s) }

// DisableState removes s from the frontier consumed by the next Step. It
// models the destructive half of a transient enable-bit flip (soft error);
// all-input start states cannot be disabled, matching the hardware where
// their enable line is hard-wired. The frontier is compacted lazily, so
// the call is O(frontier) only when s was actually enabled.
func (e *Engine) DisableState(s automata.StateID) {
	if !e.inCur.Get(int(s)) {
		return
	}
	e.inCur.Clear(int(s))
	for i, f := range e.frontier {
		if f == s {
			last := len(e.frontier) - 1
			e.frontier[i] = e.frontier[last]
			e.frontier = e.frontier[:last]
			return
		}
	}
}

// ToggleState flips the enable bit of s: enabled states are disabled and
// vice versa — the SpAP-model view of a transient enable-bit flip.
func (e *Engine) ToggleState(s automata.StateID) {
	if e.inCur.Get(int(s)) {
		e.DisableState(s)
		return
	}
	e.enableCur(s)
}

// FrontierEmpty reports whether no state is dynamically enabled. For a
// network with no all-input start states this is the SpAP jump condition.
func (e *Engine) FrontierEmpty() bool { return len(e.frontier) == 0 }

// FrontierLen returns the number of dynamically enabled states.
func (e *Engine) FrontierLen() int { return len(e.frontier) }

// HasAllInputStarts reports whether any state is an all-input start (such
// states are enabled every cycle and preclude the jump optimization).
func (e *Engine) HasAllInputStarts() bool { return e.hasAllInput }

// Step processes one input symbol at position pos.
func (e *Engine) Step(pos int64, sym byte) {
	// Consume the current frontier and the always-enabled starts.
	for _, s := range e.frontier {
		e.inCur.Clear(int(s))
		if e.net.States[s].Match.Contains(sym) {
			e.activate(pos, s)
		}
	}
	e.frontier = e.frontier[:0]
	for _, s := range e.startAct[sym] {
		e.activate(pos, s)
	}
	// Swap frontiers.
	e.frontier, e.next = e.next, e.frontier
	e.inCur, e.inNext = e.inNext, e.inCur
}

// activate emits reports for s and enables its successors for the next
// cycle.
func (e *Engine) activate(pos int64, s automata.StateID) {
	st := &e.net.States[s]
	if st.Report {
		e.numReports++
		if e.OnReport != nil {
			e.OnReport(pos, s)
		} else if e.reportsWanted {
			e.reports = append(e.reports, Report{Pos: pos, State: s})
		}
	}
	for _, v := range st.Succ {
		if e.net.States[v].Start == automata.StartAllInput {
			continue
		}
		if e.inNext.TestAndSet(int(v)) {
			e.next = append(e.next, v)
			if e.ever != nil {
				e.ever.Set(int(v))
			}
		}
	}
}

// Reports returns the collected reports (valid until the next Reset).
func (e *Engine) Reports() []Report { return e.reports }

// NumReports returns the total number of reports emitted since Reset.
func (e *Engine) NumReports() int64 { return e.numReports }

// EverEnabled returns the hot-state set, or nil if tracking was off.
func (e *Engine) EverEnabled() *bitvec.Vec { return e.ever }

// Run executes net over input and returns the result summary.
func Run(net *automata.Network, input []byte, opts Options) *Result {
	res, _ := RunContext(context.Background(), net, input, opts)
	return res
}

// RunContext is Run with cancellation: the loop polls ctx every
// cancelCheckInterval symbols and, when cancelled, returns the partial
// result accumulated so far (Symbols records how far it got) together
// with ctx.Err(). The result is never nil.
func RunContext(ctx context.Context, net *automata.Network, input []byte, opts Options) (*Result, error) {
	e := NewEngine(net, opts)
	var err error
	processed := int64(0)
	for i, b := range input {
		if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
			err = ctx.Err()
			break
		}
		e.Step(int64(i), b)
		processed++
	}
	res := &Result{
		NumReports: e.numReports,
		Symbols:    processed,
	}
	if opts.CollectReports {
		res.Reports = append([]Report(nil), e.reports...)
	}
	if opts.TrackEnabled {
		res.EverEnabled = e.ever.Clone()
	}
	return res, err
}

// HotStates runs net over input and returns the ever-enabled set. This is
// the profiling primitive of Section IV-A.
func HotStates(net *automata.Network, input []byte) *bitvec.Vec {
	e := NewEngine(net, Options{TrackEnabled: true})
	for i, b := range input {
		e.Step(int64(i), b)
	}
	return e.ever
}
