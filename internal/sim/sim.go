// Package sim implements a functional simulator for homogeneous NFAs — the
// role VASim plays in the paper.
//
// Execution follows the AP semantics of Section II: each cycle the enabled
// states whose symbol set contains the current input symbol are *activated*;
// activated reporting states emit a report; the successors of activated
// states are *enabled* for the next cycle. All-input start states are
// enabled every cycle; start-of-data start states only at position 0.
//
// The hot path is a direction-optimizing kernel over a compiled network
// image (see compile.go): while the frontier is small, a sparse walk costs
// O(frontier) with contiguous match-word loads; when it crosses an adaptive
// threshold, a word-parallel dense pass ANDs the frontier bitmap against
// the symbol's transposed match bitmap, activating 64 states per
// instruction — the same sparse/dense switch direction-optimizing BFS
// applies to its frontier. Either way, per-cycle cost tracks the enabled
// set, never the network (critical for networks with 10^5 states, of which
// most are cold).
//
// Reports within a cycle are emitted in canonical ascending-state order,
// so every kernel — sparse, dense, adaptive, and the chunked parallel
// runner — produces bit-identical report streams.
package sim

import (
	"context"
	"math/bits"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
)

// cancelCheckInterval is how many symbols an execution loop processes
// between context polls. At the modeled 7.5 ns cycle this is ~30 µs of
// simulated stream — far below one batch — so every entry point returns
// well within a batch of cancellation while keeping the common path free
// of per-symbol select overhead.
const cancelCheckInterval = 4096

// cancelled polls ctx without blocking.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Report is one match: reporting state s activated at input position Pos.
type Report struct {
	Pos   int64
	State automata.StateID
}

// Kernel selects the per-cycle step strategy.
type Kernel int

const (
	// KernelAuto switches per cycle: sparse walk below the dense
	// threshold, word-parallel dense pass at or above it. The default.
	KernelAuto Kernel = iota
	// KernelSparse always walks the frontier list.
	KernelSparse
	// KernelDense always runs the word-parallel bitmap pass.
	KernelDense
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelSparse:
		return "sparse"
	case KernelDense:
		return "dense"
	}
	return "unknown"
}

// Engine executes a network over an input stream one symbol per Step.
// Engines are built over a shared read-only Image; all mutable state is
// engine-local, so any number of engines may run concurrently over one
// network. Engine.Step performs no allocation in steady state (after the
// frontier and report buffers have grown to their working size).
type Engine struct {
	img *Image

	// The frontier's authoritative representation is the bitmap cur plus
	// the population count curLen; the sparse list frontier is a cache of
	// it, valid only when curListValid. A sparse pass builds next-cycle
	// lists eagerly (buildNext) so steady-state sparse walks never scan
	// the bitmap; a dense pass skips list maintenance entirely — enabling
	// a state is then one bit-set — and the list is materialized from the
	// bitmap only when the kernel switches back to sparse.
	frontier     []automata.StateID
	cur          []uint64
	curLen       int
	curListValid bool
	next         []automata.StateID
	nxt          []uint64
	nxtLen       int
	buildNext    bool

	ever    *bitvec.Vec // ever-enabled set (nil unless tracking)
	everBuf *bitvec.Vec // retained across pooled reuse

	kernel   Kernel
	denseCut int

	reportsWanted bool
	reports       []Report
	// repBuf collects the reporting states activated in the current
	// cycle; finishStep sorts it (canonical ascending-state order) and
	// flushes it to reports / OnReport.
	repBuf     []automata.StateID
	numReports int64

	denseSteps  int64
	sparseSteps int64

	// OnReport, when non-nil, is invoked for every activated reporting
	// state instead of appending to the internal report list.
	OnReport func(pos int64, s automata.StateID)

	// Flips, when non-nil, is polled once per symbol by RunCheckpointed
	// with the input position; a hit toggles the returned state's enable
	// bit — the transient enable-flip fault class applied at the sim
	// layer, deterministic in the absolute position so a resumed run
	// replays the identical fault pattern. Release clears it: a pooled
	// engine must never replay a previous run's faults.
	Flips func(pos int64) (automata.StateID, bool)
}

// Options configures a run.
type Options struct {
	// TrackEnabled records the ever-enabled (hot) state set.
	TrackEnabled bool
	// CollectReports appends each report to Result.Reports. Ignored when
	// the engine's OnReport callback is set.
	CollectReports bool
	// Kernel selects the step strategy (default KernelAuto).
	Kernel Kernel
	// DenseThreshold overrides the frontier length at which KernelAuto
	// switches to the dense pass; 0 uses the image's compiled default.
	DenseThreshold int
}

// Result summarizes a Run.
type Result struct {
	// Reports holds the collected reports in emission order.
	Reports []Report
	// NumReports counts all reports, collected or not.
	NumReports int64
	// EverEnabled is the hot-state set (nil unless requested).
	EverEnabled *bitvec.Vec
	// Symbols is the number of input symbols processed.
	Symbols int64
}

// NewEngine builds a fresh engine for net with the given options. The
// compiled image is shared (and cached on the network); only the dynamic
// state is per-engine. Prefer AcquireEngine/Release for repeated runs.
func NewEngine(net *automata.Network, opts Options) *Engine {
	e := newEngine(ImageOf(net))
	e.configure(opts)
	return e
}

func newEngine(img *Image) *Engine {
	return &Engine{
		img: img,
		cur: make([]uint64, img.words),
		nxt: make([]uint64, img.words),
	}
}

// configure applies opts to a fresh or pooled engine and resets it.
func (e *Engine) configure(opts Options) {
	e.reportsWanted = opts.CollectReports
	e.kernel = opts.Kernel
	e.denseCut = opts.DenseThreshold
	if e.denseCut <= 0 {
		e.denseCut = e.img.denseCut
	}
	if opts.TrackEnabled {
		if e.everBuf == nil {
			e.everBuf = bitvec.New(e.img.n)
		}
		e.ever = e.everBuf
	} else {
		e.ever = nil
	}
	e.OnReport = nil
	e.Flips = nil
	e.denseSteps, e.sparseSteps = 0, 0
	e.Reset()
}

// Reset clears all dynamic state and re-enables start-of-data states for
// position 0. Ever-enabled tracking and report counts are also reset.
func (e *Engine) Reset() {
	if e.curListValid && e.curLen == len(e.frontier) {
		for _, s := range e.frontier {
			e.cur[int(s)>>6] &^= 1 << (uint(s) & 63)
		}
	} else {
		for w := range e.cur {
			e.cur[w] = 0
		}
	}
	e.frontier = e.frontier[:0]
	e.curLen = 0
	e.curListValid = true
	// Between Steps the next-cycle side is always empty; clear it anyway
	// so Reset recovers from any state.
	for w := range e.nxt {
		e.nxt[w] = 0
	}
	e.next = e.next[:0]
	e.nxtLen = 0
	e.buildNext = true
	if e.ever != nil {
		e.ever.Reset()
		// All-input starts are enabled on every cycle, hence hot by
		// definition (assuming a non-empty input).
		for _, s := range e.img.allInputHot {
			e.ever.Set(int(s))
		}
	}
	for _, s := range e.img.startsOfData {
		e.enableCur(s)
	}
	e.reports = e.reports[:0]
	e.repBuf = e.repBuf[:0]
	e.numReports = 0
}

// enableCur adds s to the frontier consumed by the next Step.
func (e *Engine) enableCur(s automata.StateID) {
	w, m := int(s)>>6, uint64(1)<<(uint(s)&63)
	if e.img.allInput[w]&m != 0 {
		return // always enabled; never tracked in the frontier
	}
	if e.cur[w]&m == 0 {
		e.cur[w] |= m
		e.curLen++
		if e.curListValid {
			e.frontier = append(e.frontier, s)
		}
		if e.ever != nil {
			e.ever.Set(int(s))
		}
	}
}

// materializeFrontier rebuilds the sparse frontier list from the bitmap
// (ascending state order) after a dense pass left the list stale.
func (e *Engine) materializeFrontier() {
	f := e.frontier[:0]
	for w, word := range e.cur {
		base := w << 6
		for word != 0 {
			f = append(f, automata.StateID(base|bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	e.frontier = f
	e.curListValid = true
}

// EnableState enables s for the next Step call. This is the SpAP "enable"
// operation (Section V-B).
func (e *Engine) EnableState(s automata.StateID) { e.enableCur(s) }

// DisableState removes s from the frontier consumed by the next Step. It
// models the destructive half of a transient enable-bit flip (soft error);
// all-input start states cannot be disabled, matching the hardware where
// their enable line is hard-wired. The frontier is compacted lazily, so
// the call is O(frontier) only when s was actually enabled.
func (e *Engine) DisableState(s automata.StateID) {
	w, m := int(s)>>6, uint64(1)<<(uint(s)&63)
	if e.cur[w]&m == 0 {
		return
	}
	e.cur[w] &^= m
	e.curLen--
	if !e.curListValid {
		return // the bitmap is authoritative; no list to compact
	}
	for i, f := range e.frontier {
		if f == s {
			last := len(e.frontier) - 1
			e.frontier[i] = e.frontier[last]
			e.frontier = e.frontier[:last]
			return
		}
	}
}

// ToggleState flips the enable bit of s: enabled states are disabled and
// vice versa — the SpAP-model view of a transient enable-bit flip.
func (e *Engine) ToggleState(s automata.StateID) {
	if e.cur[int(s)>>6]&(1<<(uint(s)&63)) != 0 {
		e.DisableState(s)
		return
	}
	e.enableCur(s)
}

// FrontierEmpty reports whether no state is dynamically enabled. For a
// network with no all-input start states this is the SpAP jump condition.
func (e *Engine) FrontierEmpty() bool { return e.curLen == 0 }

// FrontierLen returns the number of dynamically enabled states.
func (e *Engine) FrontierLen() int { return e.curLen }

// HasAllInputStarts reports whether any state is an all-input start (such
// states are enabled every cycle and preclude the jump optimization).
func (e *Engine) HasAllInputStarts() bool { return e.img.hasAllInput }

// Step processes one input symbol at position pos, dispatching to the
// sparse or dense kernel per the configured strategy.
func (e *Engine) Step(pos int64, sym byte) {
	if e.kernel == KernelDense ||
		(e.kernel == KernelAuto && e.curLen >= e.denseCut) {
		e.stepDense(pos, sym)
	} else {
		e.stepSparse(pos, sym)
	}
}

// stepSparse consumes the frontier state by state: one contiguous
// match-word load and test per enabled state, then the precomputed
// start-activation list for the symbol. It predicts the next cycle stays
// sparse and builds the next frontier list eagerly.
func (e *Engine) stepSparse(pos int64, sym byte) {
	e.sparseSteps++
	if !e.curListValid {
		e.materializeFrontier() // the previous cycle ran dense
	}
	e.buildNext = true
	img := e.img
	mw := int(sym >> 6)
	mb := uint64(1) << (sym & 63)
	for _, s := range e.frontier {
		e.cur[int(s)>>6] &^= 1 << (uint(s) & 63)
		if img.match[int(s)<<2|mw]&mb != 0 {
			e.activate(s)
		}
	}
	e.frontier = e.frontier[:0]
	e.curLen = 0
	for _, s := range img.startAct[sym] {
		e.activate(s)
	}
	e.finishStep(pos)
}

// stepDense consumes the frontier bitmap word-parallel: the activated set
// is (frontier AND symMask[sym]) OR startMask[sym], computed 64 states at
// a time, then scattered through the CSR successor arrays. Cost is
// O(words + activated), independent of frontier size. It predicts the
// next cycle stays dense and skips next-frontier list maintenance, so
// enabling a successor is a single bit-set.
func (e *Engine) stepDense(pos int64, sym byte) {
	e.denseSteps++
	e.buildNext = false
	img := e.img
	sm := img.symMask[sym]
	stm := img.startMask[sym]
	cur := e.cur
	for w, cw := range cur {
		act := cw&sm[w] | stm[w]
		if cw != 0 {
			cur[w] = 0
		}
		for act != 0 {
			s := automata.StateID(w<<6 | bits.TrailingZeros64(act))
			act &= act - 1
			e.activate(s)
		}
	}
	e.frontier = e.frontier[:0]
	e.curLen = 0
	e.finishStep(pos)
}

// activate buffers a report for s (if it reports) and enables its
// successors for the next cycle. The image's CSR successor lists already
// exclude all-input start targets.
func (e *Engine) activate(s automata.StateID) {
	img := e.img
	if img.report[int(s)>>6]&(1<<(uint(s)&63)) != 0 {
		e.repBuf = append(e.repBuf, s)
	}
	succ := img.succ[img.succOff[s]:img.succOff[s+1]]
	nxt := e.nxt
	n := e.nxtLen
	if e.ever == nil {
		if e.buildNext {
			// Sparse steady state: bitmap + eager list.
			next := e.next
			for _, v := range succ {
				w, m := int(v)>>6, uint64(1)<<(uint(v)&63)
				if nxt[w]&m == 0 {
					nxt[w] |= m
					n++
					next = append(next, v)
				}
			}
			e.next = next
		} else {
			// Dense steady state: membership is the bitmap alone.
			for _, v := range succ {
				w, m := int(v)>>6, uint64(1)<<(uint(v)&63)
				if nxt[w]&m == 0 {
					nxt[w] |= m
					n++
				}
			}
		}
		e.nxtLen = n
		return
	}
	next := e.next
	for _, v := range succ {
		w, m := int(v)>>6, uint64(1)<<(uint(v)&63)
		if nxt[w]&m == 0 {
			nxt[w] |= m
			n++
			if e.buildNext {
				next = append(next, v)
			}
			e.ever.Set(int(v))
		}
	}
	e.next = next
	e.nxtLen = n
}

// finishStep flushes the cycle's buffered reports in canonical order and
// swaps the frontiers. The caller has already consumed the current side.
func (e *Engine) finishStep(pos int64) {
	if len(e.repBuf) > 0 {
		e.flushReports(pos)
	}
	e.frontier, e.next = e.next, e.frontier
	e.cur, e.nxt = e.nxt, e.cur
	e.curLen, e.nxtLen = e.nxtLen, 0
	e.curListValid = e.buildNext
}

// flushReports emits the cycle's reports in ascending state order. The
// dense pass produces repBuf already sorted and the sparse walk nearly
// so; an insertion sort makes the canonical order allocation-free.
func (e *Engine) flushReports(pos int64) {
	rb := e.repBuf
	for i := 1; i < len(rb); i++ {
		for j := i; j > 0 && rb[j] < rb[j-1]; j-- {
			rb[j], rb[j-1] = rb[j-1], rb[j]
		}
	}
	for _, s := range rb {
		e.numReports++
		if e.OnReport != nil {
			e.OnReport(pos, s)
		} else if e.reportsWanted {
			e.reports = append(e.reports, Report{Pos: pos, State: s})
		}
	}
	e.repBuf = rb[:0]
}

// Reports returns the collected reports (valid until the next Reset,
// ClearReports, or Release).
func (e *Engine) Reports() []Report { return e.reports }

// ClearReports discards collected reports and resets the report counter
// without touching the frontier. Chunk workers use it to drop warm-up
// output before entering their owned input range.
func (e *Engine) ClearReports() {
	e.reports = e.reports[:0]
	e.numReports = 0
}

// NumReports returns the total number of reports emitted since Reset.
func (e *Engine) NumReports() int64 { return e.numReports }

// EverEnabled returns the hot-state set, or nil if tracking was off.
func (e *Engine) EverEnabled() *bitvec.Vec { return e.ever }

// DenseSteps returns how many Step calls ran the dense kernel since the
// engine was configured.
func (e *Engine) DenseSteps() int64 { return e.denseSteps }

// SparseSteps returns how many Step calls ran the sparse kernel since the
// engine was configured.
func (e *Engine) SparseSteps() int64 { return e.sparseSteps }

// Run executes net over input and returns the result summary.
func Run(net *automata.Network, input []byte, opts Options) *Result {
	res, _ := RunContext(context.Background(), net, input, opts)
	return res
}

// RunContext is Run with cancellation: the loop polls ctx every
// cancelCheckInterval symbols and, when cancelled, returns the partial
// result accumulated so far (Symbols records how far it got) together
// with ctx.Err(). The result is never nil.
func RunContext(ctx context.Context, net *automata.Network, input []byte, opts Options) (*Result, error) {
	e := AcquireEngine(net, opts)
	defer e.Release()
	var err error
	processed := int64(0)
	for i, b := range input {
		if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
			err = ctx.Err()
			break
		}
		e.Step(int64(i), b)
		processed++
	}
	res := &Result{
		NumReports: e.numReports,
		Symbols:    processed,
	}
	if opts.CollectReports {
		res.Reports = append([]Report(nil), e.reports...)
	}
	if opts.TrackEnabled {
		res.EverEnabled = e.ever.Clone()
	}
	return res, err
}

// HotStates runs net over input and returns the ever-enabled set. This is
// the profiling primitive of Section IV-A.
func HotStates(net *automata.Network, input []byte) *bitvec.Vec {
	hot, _ := HotStatesContext(context.Background(), net, input)
	return hot
}

// HotStatesContext is HotStates with cancellation. The profile runs on a
// pooled engine (profiling is repeated across partition sweeps, so the
// frontier and tracking buffers are reused); when cancelled it returns
// the partial hot set accumulated so far together with ctx.Err().
func HotStatesContext(ctx context.Context, net *automata.Network, input []byte) (*bitvec.Vec, error) {
	e := AcquireEngine(net, Options{TrackEnabled: true})
	defer e.Release()
	var err error
	for i, b := range input {
		if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
			err = ctx.Err()
			break
		}
		e.Step(int64(i), b)
	}
	return e.ever.Clone(), err
}
