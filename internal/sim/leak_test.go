package sim

import (
	"context"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
	"sparseap/internal/testleak"
)

// leakNet builds a small acyclic network shaped like the workload NFAs:
// an all-input start fanning into a chain, so every input symbol keeps
// the frontier non-empty and parallel chunks have real work.
func leakNet(t *testing.T) *automata.Network {
	t.Helper()
	nfa := automata.NewNFA()
	prev := nfa.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	for i := 0; i < 12; i++ {
		s := nfa.Add(symset.Range('a', 'z'), automata.StartNone, i == 11)
		nfa.Connect(prev, s)
		prev = s
	}
	return automata.NewNetwork(nfa)
}

func leakInput(n int) []byte {
	in := make([]byte, n)
	for i := range in {
		in[i] = byte('a' + i%26)
	}
	return in
}

// TestParallelRunContextCancelNoLeak cancels a chunked parallel run
// mid-flight — the tenant-disconnect shape — and requires every worker
// goroutine to unwind: a disconnect must never strand workers.
func TestParallelRunContextCancelNoLeak(t *testing.T) {
	testleak.Check(t)
	net := leakNet(t)
	input := leakInput(1 << 16)
	for trial := 0; trial < 4; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // cancelled before (or during) the workers' first poll
		if _, err := ParallelRunContext(ctx, net, input, ParallelOptions{Workers: 8}); err == nil {
			t.Fatal("expected cancellation error")
		}
	}
}

// TestParallelRunContextMidRunCancelNoLeak cancels from a concurrent
// goroutine while workers are streaming, covering the partially-complete
// path (some chunks done, some mid-warm-up).
func TestParallelRunContextMidRunCancelNoLeak(t *testing.T) {
	testleak.Check(t)
	net := leakNet(t)
	input := leakInput(1 << 18)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = ParallelRunContext(ctx, net, input, ParallelOptions{Workers: 8})
	}()
	cancel()
	<-done
}

// TestStreamerCancelNoLeak drives a Streamer under an already-expired
// context: Write must return promptly with the context error, consuming
// no further symbols and leaving nothing running.
func TestStreamerCancelNoLeak(t *testing.T) {
	testleak.Check(t)
	net := leakNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	st := NewStreamerOpts(net, StreamerOptions{Context: ctx})
	if _, err := st.Write(leakInput(8192)); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	cancel()
	n, err := st.Write(leakInput(1 << 16))
	if err == nil {
		t.Fatal("expected context error after cancel")
	}
	if n == 1<<16 {
		t.Fatal("cancelled write consumed the whole buffer")
	}
	// Rebinding to a live context resumes the stream where it stopped.
	st.SetContext(context.Background())
	if _, err := st.Write(leakInput(4096)); err != nil {
		t.Fatalf("write after SetContext: %v", err)
	}
}
