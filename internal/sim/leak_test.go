package sim

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
	"sparseap/internal/testleak"
)

// leakNet builds a small acyclic network shaped like the workload NFAs:
// an all-input start fanning into a chain, so every input symbol keeps
// the frontier non-empty and parallel chunks have real work.
func leakNet(t *testing.T) *automata.Network {
	t.Helper()
	nfa := automata.NewNFA()
	prev := nfa.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	for i := 0; i < 12; i++ {
		s := nfa.Add(symset.Range('a', 'z'), automata.StartNone, i == 11)
		nfa.Connect(prev, s)
		prev = s
	}
	return automata.NewNetwork(nfa)
}

func leakInput(n int) []byte {
	in := make([]byte, n)
	for i := range in {
		in[i] = byte('a' + i%26)
	}
	return in
}

// TestParallelRunContextCancelNoLeak cancels a chunked parallel run
// mid-flight — the tenant-disconnect shape — and requires every worker
// goroutine to unwind: a disconnect must never strand workers.
func TestParallelRunContextCancelNoLeak(t *testing.T) {
	testleak.Check(t)
	net := leakNet(t)
	input := leakInput(1 << 16)
	for trial := 0; trial < 4; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // cancelled before (or during) the workers' first poll
		if _, err := ParallelRunContext(ctx, net, input, ParallelOptions{Workers: 8}); err == nil {
			t.Fatal("expected cancellation error")
		}
	}
}

// TestParallelRunContextMidRunCancelNoLeak cancels from a concurrent
// goroutine while workers are streaming, covering the partially-complete
// path (some chunks done, some mid-warm-up).
func TestParallelRunContextMidRunCancelNoLeak(t *testing.T) {
	testleak.Check(t)
	net := leakNet(t)
	input := leakInput(1 << 18)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = ParallelRunContext(ctx, net, input, ParallelOptions{Workers: 8})
	}()
	cancel()
	<-done
}

// TestBatchAcquireReleaseSteadyStateNoAlloc drives the batch-engine pool
// through full acquire → join → run → release cycles: after one warm-up
// cycle the pool must serve every later cycle from retained scratch, so
// the steady state allocates nothing per batch.
func TestBatchAcquireReleaseSteadyStateNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; zero-alloc does not hold")
	}
	net := leakNet(t)
	img := ImageOf(net)
	inputs := make([][]byte, MaxLanes)
	for l := range inputs {
		inputs[l] = leakInput(256 + 16*l)
	}
	cycle := func() {
		be := img.AcquireBatch(BatchOptions{})
		for _, in := range inputs {
			be.Join(in)
		}
		for be.Running() > 0 {
			be.Tick()
		}
		be.Release()
	}
	cycle() // warm-up: first acquisition sizes the scratch
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("steady-state acquire/run/release allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestBatchAcquireReleaseSoak drives full batch cycles — acquire, lane
// join, tick to retirement, release — from several goroutines against
// one shared image. Unlike the zero-alloc cell above (which sync.Pool
// semantics force to skip under the race detector), this cell runs
// under -race too, so the pool handoff and lane join/retire paths get
// race coverage, and every lane's report count is checked against a
// solo run of the same input.
func TestBatchAcquireReleaseSoak(t *testing.T) {
	net := leakNet(t)
	img := ImageOf(net)
	const lanesPer = 6
	want := make([]int, lanesPer)
	for l := range want {
		want[l] = len(Run(net, leakInput(256+32*l), Options{CollectReports: true}).Reports)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := 0; trial < 8; trial++ {
				be := img.AcquireBatch(BatchOptions{CollectReports: true})
				lanes := make([]int, lanesPer)
				for l := range lanes {
					lane, ok := be.Join(leakInput(256 + 32*l))
					if !ok {
						errs <- fmt.Errorf("trial %d: lane %d join refused", trial, l)
						be.Release()
						return
					}
					lanes[l] = lane
				}
				for be.Running() > 0 {
					be.Tick()
				}
				for l, lane := range lanes {
					if got := len(be.LaneReports(lane)); got != want[l] {
						errs <- fmt.Errorf("trial %d: lane %d got %d reports, want %d", trial, l, got, want[l])
						be.Release()
						return
					}
				}
				be.Release()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchPoolIsolatedFromSoloPool checks the two engine pools of one
// image never hand each other's scratch back: interleaved acquire and
// release of solo and batch engines must keep both kinds usable.
func TestBatchPoolIsolatedFromSoloPool(t *testing.T) {
	net := leakNet(t)
	img := ImageOf(net)
	input := leakInput(4096)
	want := Run(net, input, Options{CollectReports: true}).Reports
	for trial := 0; trial < 4; trial++ {
		be := img.AcquireBatch(BatchOptions{CollectReports: true})
		eng := img.Acquire(Options{CollectReports: true})
		lane, _ := be.Join(input)
		for be.Running() > 0 {
			be.Tick()
		}
		for i, c := range input {
			eng.Step(int64(i), c)
		}
		if len(be.LaneReports(lane)) != len(want) || len(eng.Reports()) != len(want) {
			t.Fatalf("trial %d: batch %d / solo %d reports, want %d",
				trial, len(be.LaneReports(lane)), len(eng.Reports()), len(want))
		}
		eng.Release()
		be.Release()
	}
}

// TestStreamerCancelNoLeak drives a Streamer under an already-expired
// context: Write must return promptly with the context error, consuming
// no further symbols and leaving nothing running.
func TestStreamerCancelNoLeak(t *testing.T) {
	testleak.Check(t)
	net := leakNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	st := NewStreamerOpts(net, StreamerOptions{Context: ctx})
	if _, err := st.Write(leakInput(8192)); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	cancel()
	n, err := st.Write(leakInput(1 << 16))
	if err == nil {
		t.Fatal("expected context error after cancel")
	}
	if n == 1<<16 {
		t.Fatal("cancelled write consumed the whole buffer")
	}
	// Rebinding to a live context resumes the stream where it stopped.
	st.SetContext(context.Background())
	if _, err := st.Write(leakInput(4096)); err != nil {
		t.Fatalf("write after SetContext: %v", err)
	}
}
