// Crash-consistent snapshot/restore for the execution engine.
//
// A Snapshot captures the complete dynamic state of an Engine between two
// Step calls: the frontier bitmap (the authoritative representation — the
// sparse list is a cache rematerialized on restore), the ever-enabled
// vector, the report cursor, and the kernel counters. Because reports are
// flushed within Step and the per-cycle buffers are empty between steps,
// a snapshot at input position P contains exactly the execution history
// of positions < P; the engine is deterministic, so restoring it and
// re-streaming from P yields a report stream bit-identical to the
// uninterrupted run — the equivalence bar the checkpoint layer proves.
//
// Capture cost is O(bitmap words) plus O(collected reports) when the run
// persists them, with zero allocation in steady state (the Snapshot's
// buffers are reused across captures), so taking one every few thousand
// symbols is invisible next to the step kernel.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"sparseap/internal/automata"
	"sparseap/internal/checkpoint"
)

// SnapshotVersion is the binary format version of an encoded Snapshot.
// Bump it on any layout change; Decode rejects other versions.
const SnapshotVersion = 1

// ErrSnapshotMismatch is returned by Restore when the snapshot does not
// fit the engine's compiled image (different network or format drift).
var ErrSnapshotMismatch = errors.New("sim: snapshot does not match this engine's network")

// Snapshot is the serializable dynamic state of an Engine at an input
// position. Buffers are reused across captures into the same Snapshot.
type Snapshot struct {
	// N is the state count of the network the snapshot belongs to.
	N int
	// Pos is the number of input symbols fully processed.
	Pos int64
	// Frontier is the dynamic-enable bitmap (all-input starts excluded,
	// exactly as the engine tracks it).
	Frontier []uint64
	// FrontierLen is the bitmap's population count.
	FrontierLen int
	// Ever is the ever-enabled vector; nil when tracking was off.
	Ever []uint64
	// NumReports is the report cursor: reports emitted for positions
	// < Pos. Exactly-once delivery across a resume hinges on it — a
	// consumer that persists its progress as this cursor replays nothing
	// and skips nothing.
	NumReports int64
	// DenseSteps and SparseSteps are the kernel counters.
	DenseSteps, SparseSteps int64
}

// Snapshot captures the engine's dynamic state into `into` (allocated
// when nil) and stamps it with pos, the number of symbols processed so
// far. Must be called between Step calls, never from OnReport.
func (e *Engine) Snapshot(into *Snapshot, pos int64) *Snapshot {
	if into == nil {
		into = &Snapshot{}
	}
	into.N = e.img.n
	into.Pos = pos
	into.Frontier = append(into.Frontier[:0], e.cur...)
	into.FrontierLen = e.curLen
	if e.ever != nil {
		into.Ever = append(into.Ever[:0], e.ever.Words()...)
	} else {
		into.Ever = nil
	}
	into.NumReports = e.numReports
	into.DenseSteps = e.denseSteps
	into.SparseSteps = e.sparseSteps
	return into
}

// Restore loads a snapshot into the engine, replacing all dynamic state:
// the next Step must be for input position s.Pos. The engine must be
// built over the same network the snapshot was taken from, and with
// matching ever-enabled tracking. Collected reports are cleared — the
// caller owns the persisted report prefix (see Snapshot.NumReports).
func (e *Engine) Restore(s *Snapshot) error {
	if s.N != e.img.n || len(s.Frontier) != len(e.cur) {
		return fmt.Errorf("%w: snapshot for %d states, engine has %d", ErrSnapshotMismatch, s.N, e.img.n)
	}
	if (s.Ever != nil) != (e.ever != nil) {
		return fmt.Errorf("%w: ever-enabled tracking differs (snapshot %v, engine %v)",
			ErrSnapshotMismatch, s.Ever != nil, e.ever != nil)
	}
	copy(e.cur, s.Frontier)
	pop := 0
	for _, w := range e.cur {
		pop += bits.OnesCount64(w)
	}
	if pop != s.FrontierLen {
		return fmt.Errorf("%w: frontier popcount %d, recorded %d", ErrSnapshotMismatch, pop, s.FrontierLen)
	}
	e.curLen = pop
	e.materializeFrontier()
	for w := range e.nxt {
		e.nxt[w] = 0
	}
	e.next = e.next[:0]
	e.nxtLen = 0
	e.buildNext = true
	e.repBuf = e.repBuf[:0]
	e.reports = e.reports[:0]
	if e.ever != nil {
		e.ever.SetWords(s.Ever)
	}
	e.numReports = s.NumReports
	e.denseSteps = s.DenseSteps
	e.sparseSteps = s.SparseSteps
	return nil
}

// Encode appends the snapshot to a checkpoint record.
func (s *Snapshot) Encode(e *checkpoint.Enc) {
	e.U32(SnapshotVersion)
	e.I64(int64(s.N))
	e.I64(s.Pos)
	e.U64s(s.Frontier)
	e.I64(int64(s.FrontierLen))
	e.Bool(s.Ever != nil)
	if s.Ever != nil {
		e.U64s(s.Ever)
	}
	e.I64(s.NumReports)
	e.I64(s.DenseSteps)
	e.I64(s.SparseSteps)
}

// Decode reads a snapshot from a checkpoint record into s (buffers are
// replaced, not reused — decode is the rare path).
func (s *Snapshot) Decode(d *checkpoint.Dec) error {
	if v := d.U32(); v != SnapshotVersion && d.Err() == nil {
		return fmt.Errorf("%w: snapshot version %d, want %d", ErrSnapshotMismatch, v, SnapshotVersion)
	}
	s.N = int(d.I64())
	s.Pos = d.I64()
	s.Frontier = d.U64s()
	s.FrontierLen = int(d.I64())
	if d.Bool() {
		s.Ever = d.U64s()
	} else {
		s.Ever = nil
	}
	s.NumReports = d.I64()
	s.DenseSteps = d.I64()
	s.SparseSteps = d.I64()
	return d.Err()
}

// runStateVersion versions the engine-run checkpoint record (snapshot +
// collected report prefix + completion flag).
const runStateVersion = 1

// encodeRunState renders the full resumable state of an engine run:
// completion flag, snapshot at pos, and the collected report prefix
// (restored prefix + reports collected since).
func encodeRunState(enc *checkpoint.Enc, snap *Snapshot, done bool, prefix, cur []Report) {
	enc.Reset()
	enc.Bool(done)
	snap.Encode(enc)
	enc.U64(uint64(len(prefix) + len(cur)))
	for _, r := range prefix {
		enc.I64(r.Pos)
		enc.I32(int32(r.State))
	}
	for _, r := range cur {
		enc.I64(r.Pos)
		enc.I32(int32(r.State))
	}
}

// decodeRunState parses an engine-run checkpoint record.
func decodeRunState(payload []byte) (snap *Snapshot, done bool, reports []Report, err error) {
	d := checkpoint.NewDec(payload)
	done = d.Bool()
	snap = &Snapshot{}
	if err := snap.Decode(d); err != nil {
		return nil, false, nil, err
	}
	n := d.I64()
	if d.Err() == nil && (n < 0 || n > int64(len(payload))) {
		return nil, false, nil, fmt.Errorf("checkpoint: implausible report count %d", n)
	}
	for i := int64(0); i < n && d.Err() == nil; i++ {
		pos := d.I64()
		st := automata.StateID(d.I32())
		reports = append(reports, Report{Pos: pos, State: st})
	}
	if err := d.Done(); err != nil {
		return nil, false, nil, err
	}
	return snap, done, reports, nil
}

// CheckpointedResult is a Result with resume bookkeeping.
type CheckpointedResult struct {
	Result
	// Resumed reports whether the run continued from a stored checkpoint.
	Resumed bool
	// ResumePos is the input position execution restarted from (0 when
	// not resumed).
	ResumePos int64
	// Recovered reports whether the latest checkpoint slot was corrupt
	// and the run fell back to the previous good one.
	Recovered bool
	// Saves counts the checkpoints persisted during this call.
	Saves int64
}

// RunCheckpointed executes the engine over input with periodic durable
// snapshots through ck, resuming from the newest valid checkpoint when
// one exists. The final report stream (restored prefix + re-run suffix)
// is bit-identical to an uninterrupted run: reports for positions before
// the resume point come from the checkpoint, later ones from live
// execution, and the report cursor guarantees no duplicates across the
// boundary. The engine's Flips hook (when set) is applied each symbol, so
// seeded fault plans replay identically across resumes. On cancellation
// or injected crash the partial result is returned with the error; the
// last persisted checkpoint remains valid for the next attempt.
func (e *Engine) RunCheckpointed(ctx context.Context, input []byte, ck *checkpoint.Runner) (*CheckpointedResult, error) {
	res := &CheckpointedResult{}
	var prefix []Report
	start := int64(0)
	payload, _, fellback, err := ck.Load()
	switch {
	case err == nil:
		snap, done, reports, derr := decodeRunState(payload)
		if derr != nil {
			return nil, derr
		}
		if done {
			// The run already finished; rebuild its result without
			// re-executing anything.
			res.Resumed = true
			res.Recovered = fellback
			res.ResumePos = snap.Pos
			res.NumReports = snap.NumReports
			res.Symbols = snap.Pos
			if e.reportsWanted {
				res.Reports = reports
			}
			if e.ever != nil {
				if rerr := e.Restore(snap); rerr != nil {
					return nil, rerr
				}
				res.EverEnabled = e.ever.Clone()
			}
			return res, nil
		}
		if rerr := e.Restore(snap); rerr != nil {
			return nil, rerr
		}
		prefix = reports
		start = snap.Pos
		res.Resumed = true
		res.Recovered = fellback
		res.ResumePos = start
	case errors.Is(err, checkpoint.ErrNoCheckpoint):
		e.Reset()
	default:
		return nil, err
	}

	enc := &checkpoint.Enc{}
	snap := &Snapshot{}
	save := func(pos int64, done bool) error {
		e.Snapshot(snap, pos)
		encodeRunState(enc, snap, done, prefix, e.reports)
		if serr := ck.Save(runStateVersion, enc.Bytes()); serr != nil {
			return serr
		}
		res.Saves++
		return nil
	}
	finish := func(pos int64, runErr error) (*CheckpointedResult, error) {
		res.NumReports = e.numReports
		res.Symbols = pos
		if e.reportsWanted {
			res.Reports = append(append([]Report(nil), prefix...), e.reports...)
		}
		if e.ever != nil {
			res.EverEnabled = e.ever.Clone()
		}
		return res, runErr
	}
	n := int64(len(input))
	for i := start; i < n; i++ {
		if ck.Due(i) {
			if serr := save(i, false); serr != nil {
				return finish(i, serr)
			}
		}
		if cerr := ck.Check(i); cerr != nil {
			return finish(i, cerr)
		}
		if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
			return finish(i, ctx.Err())
		}
		if e.Flips != nil {
			if s, ok := e.Flips(i); ok {
				e.ToggleState(s)
			}
		}
		e.Step(i, input[i])
	}
	if ck.Enabled() {
		if serr := save(n, true); serr != nil {
			return finish(n, serr)
		}
	}
	return finish(n, nil)
}

// RunCheckpointedContext runs net over input on a pooled engine with
// periodic durable snapshots (see Engine.RunCheckpointed).
func RunCheckpointedContext(ctx context.Context, net *automata.Network, input []byte, opts Options, ck *checkpoint.Runner) (*CheckpointedResult, error) {
	e := AcquireEngine(net, opts)
	defer e.Release()
	return e.RunCheckpointed(ctx, input, ck)
}

// Snapshot captures the streamer's matcher state (engine plus stream
// position) between Write calls. Buffered undrained reports are NOT part
// of the snapshot — drain TakeReports and persist them alongside it, or
// deliver through OnReport; Restore starts with an empty buffer either
// way, so a report is never replayed into the buffer twice.
func (st *Streamer) Snapshot(into *Snapshot) *Snapshot {
	return st.eng.Snapshot(into, st.pos)
}

// Restore loads a streamer snapshot: the next Write continues from
// stream position s.Pos with an empty report buffer and a cleared
// overflow condition.
func (st *Streamer) Restore(s *Snapshot) error {
	if err := st.eng.Restore(s); err != nil {
		return err
	}
	st.pos = s.Pos
	st.buf = st.buf[:0]
	st.overflow = false
	return nil
}
